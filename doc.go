// Package fluke is the root of a full reproduction of "Interface and
// Execution Models in the Fluke Kernel" (Ford, Hibler, Lepreau, McGrath,
// Tullmann; OSDI 1999) as a deterministic full-system simulation in Go.
//
// The pieces live under internal/ (see DESIGN.md for the system
// inventory):
//
//   - internal/cpu, internal/mem, internal/mmu, internal/clock — the
//     simulated hardware substrate;
//   - internal/core — the Fluke kernel: the 107-entrypoint atomic system
//     call API running under either the interrupt or the process
//     execution model, with none/partial/full kernel preemption;
//   - internal/ipc — the connection-oriented reliable IPC engine;
//   - internal/pager, internal/checkpoint — the user-mode memory manager
//     and the user-level checkpoint/migration service the atomic API
//     enables;
//   - internal/workload, internal/experiments — the paper's three
//     evaluation applications and the harness regenerating every table
//     and figure.
//
// The benchmarks in bench_test.go regenerate the paper's tables under
// "go test -bench"; cmd/flukebench prints them in paper format.
package fluke
