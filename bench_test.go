package fluke_test

// One benchmark per table/figure of the paper's evaluation, built on the
// same experiment drivers cmd/flukebench uses. Wall-clock numbers measure
// the simulator; the paper-comparable results are the *virtual*-time
// metrics attached with b.ReportMetric (µs/op of simulated time, latency
// in simulated µs, bytes of kernel memory).

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
	"repro/internal/workload"
)

// BenchmarkTable1Inventory regenerates the API inventory (Table 1).
func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.Table1Counts()
		if c[sys.Short] != 68 {
			b.Fatal("inventory drifted")
		}
	}
}

// BenchmarkTable3RestartCosts regenerates the IPC restart-cost table; the
// virtual remedy costs are attached as metrics.
func BenchmarkTable3RestartCosts(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RemedyUS, "client-soft-us")
	b.ReportMetric(rows[1].RemedyUS, "client-hard-us")
	b.ReportMetric(rows[2].RemedyUS, "server-soft-us")
	b.ReportMetric(rows[3].RemedyUS, "server-hard-us")
}

// benchWorkload runs one workload/configuration cell of Table 5.
func benchWorkload(b *testing.B, mk func(*core.Kernel) (*workload.Workload, error)) {
	var virtual uint64
	for i := 0; i < b.N; i++ {
		k := core.New(benchCfg)
		w, err := mk(k)
		if err != nil {
			b.Fatal(err)
		}
		cyc, err := w.Run(1 << 62)
		if err != nil {
			b.Fatal(err)
		}
		virtual += cyc
	}
	b.ReportMetric(float64(virtual)/float64(b.N)/200, "virtual-us/op")
}

var benchCfg core.Config

// BenchmarkTable5 regenerates the application-performance table: one
// sub-benchmark per workload per kernel configuration.
func BenchmarkTable5(b *testing.B) {
	sc := experiments.FastTable5Scale()
	workloads := map[string]func(*core.Kernel) (*workload.Workload, error){
		"memtest": func(k *core.Kernel) (*workload.Workload, error) {
			return workload.NewMemtest(k, sc.MemtestBytes)
		},
		"flukeperf": func(k *core.Kernel) (*workload.Workload, error) {
			return workload.NewFlukeperf(k, sc.Flukeperf)
		},
		"gcc": func(k *core.Kernel) (*workload.Workload, error) {
			return workload.NewGCC(k, sc.GCC)
		},
	}
	for _, name := range []string{"memtest", "flukeperf", "gcc"} {
		for _, cfg := range core.Configurations() {
			cfg := cfg
			b.Run(fmt.Sprintf("%s/%s", name, cfg.Name()), func(b *testing.B) {
				benchCfg = cfg
				benchWorkload(b, workloads[name])
			})
		}
	}
}

// BenchmarkTable6PreemptionLatency regenerates the preemption-latency
// table: one sub-benchmark per configuration, reporting simulated
// latencies as metrics.
func BenchmarkTable6PreemptionLatency(b *testing.B) {
	sc := experiments.FastTable5Scale().Flukeperf
	for _, cfg := range core.Configurations() {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			var avg, max float64
			for i := 0; i < b.N; i++ {
				k := core.New(cfg)
				w, err := workload.NewFlukeperf(k, sc)
				if err != nil {
					b.Fatal(err)
				}
				p := workload.InstallProbe(k, 0, 0)
				if _, err := w.Run(1 << 62); err != nil {
					b.Fatal(err)
				}
				p.Stop()
				avg = p.Lat.Avg()
				max = p.Lat.Max()
			}
			b.ReportMetric(avg, "latency-avg-us")
			b.ReportMetric(max, "latency-max-us")
		})
	}
}

// BenchmarkTable7MemoryUse regenerates the per-thread memory-overhead
// table, attaching the measured sizes as metrics.
func BenchmarkTable7MemoryUse(b *testing.B) {
	var rows []experiments.Table7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table7()
	}
	for _, r := range rows {
		if r.Published {
			continue
		}
		b.ReportMetric(float64(r.Total), fmt.Sprintf("%s-%d-bytes", r.Model, r.Stack))
	}
}

// BenchmarkNullSyscall regenerates the §5.5 architectural-bias
// microbenchmark (Figure 1's axes made quantitative): the interrupt model
// pays ~6 extra cycles per kernel entry/exit.
func BenchmarkNullSyscall(b *testing.B) {
	for _, model := range []core.ExecModel{core.ModelProcess, core.ModelInterrupt} {
		model := model
		b.Run(model.String(), func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				k := core.New(core.Config{Model: model})
				s := k.NewSpace()
				pb := prog.New(0x0001_0000)
				pb.Movi(6, 0).Label("loop").
					Null().
					Addi(6, 6, 1).Movi(5, 2000).Blt(6, 5, "loop").
					Halt()
				if _, err := k.SpawnProgram(s, 0x0001_0000, pb.MustAssemble(), 8); err != nil {
					b.Fatal(err)
				}
				k.Run()
				per = float64(k.Stats().KernelCycles) / 2000
			}
			b.ReportMetric(per, "kernel-cycles/call")
		})
	}
}

// BenchmarkNullRPC measures the direct-handoff IPC fast path: a
// client/server null-RPC pair run with the fast path on and off,
// reporting virtual kernel cycles per call for each regime and the
// relative drop. Unlike the simulator caches, the fast path is an
// architectural change and *intentionally* moves virtual time.
func BenchmarkNullRPC(b *testing.B) {
	var on, off experiments.NullRPCResult
	var drop float64
	for i := 0; i < b.N; i++ {
		var err error
		on, off, drop, err = experiments.NullRPC(5000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(on.KernelCycles, "kernel-cycles/call-on")
	b.ReportMetric(off.KernelCycles, "kernel-cycles/call-off")
	b.ReportMetric(drop, "drop-%")
	b.ReportMetric(float64(on.Hits)/5000, "handoffs/call")
}

// BenchmarkNullSyscallMetricsOverhead measures the wall-clock cost the
// metrics registry adds to the hottest path (the null syscall): "off"
// pays only the k.Metrics == nil branch at each instrumented site, "on"
// pays the counter increments and one histogram observation per call.
// Virtual time is identical in both (TestMetricsDoNotPerturbVirtualTime).
func BenchmarkNullSyscallMetricsOverhead(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			const calls = 20_000 // amortize kernel + registry setup
			for i := 0; i < b.N; i++ {
				k := core.New(core.Config{Model: core.ModelProcess})
				if enabled {
					k.EnableMetrics()
				}
				s := k.NewSpace()
				pb := prog.New(0x0001_0000)
				pb.Movi(6, 0).Label("loop").
					Null().
					Addi(6, 6, 1).Movi(5, calls).Blt(6, 5, "loop").
					Halt()
				if _, err := k.SpawnProgram(s, 0x0001_0000, pb.MustAssemble(), 8); err != nil {
					b.Fatal(err)
				}
				k.Run()
			}
		})
	}
}

// BenchmarkBandwidth measures bulk-IPC bandwidth at 64 KiB with the
// zero-copy frame-sharing path on and off. Like the direct-handoff fast
// path, zero copy is an architectural change that *intentionally* moves
// virtual time: the paper-comparable metrics are simulated MB/s per
// regime and the speedup, which TestBandwidthZeroCopySpeedup pins at ≥4×.
func BenchmarkBandwidth(b *testing.B) {
	results := map[string]experiments.BandwidthResult{}
	for _, mode := range []string{"zerocopy", "copy"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var r experiments.BandwidthResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = experiments.BandwidthCell(64<<10, mode, 1, core.LockBig)
				if err != nil {
					b.Fatal(err)
				}
			}
			results[mode] = r
			b.ReportMetric(r.MBps, "virtual-MB/s")
			if cp := results["copy"]; mode == "zerocopy" && cp.MBps > 0 {
				b.ReportMetric(r.MBps/cp.MBps, "speedup")
			} else if zc := results["zerocopy"]; mode == "copy" && zc.MBps > 0 {
				b.ReportMetric(zc.MBps/r.MBps, "speedup")
			}
			b.ReportMetric(float64(r.Shares), "page-shares")
		})
	}
}

// BenchmarkNetload measures the NIC + network-server stack at the
// CI-smoke scale with the tuned and naive disciplines. Coalescing and
// zero-copy replies are architectural changes that *intentionally* move
// virtual time: the paper-comparable metrics are simulated MB/s per
// regime and the speedup, which TestNetloadSpeedup pins at ≥3× for
// 64 KiB responses.
func BenchmarkNetload(b *testing.B) {
	sc := experiments.FastNetloadScale()
	results := map[string]experiments.NetloadResult{}
	for _, mode := range []string{experiments.NetloadTuned, experiments.NetloadNaive} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var r experiments.NetloadResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = experiments.NetloadCell(mode, 1, core.LockBig, sc)
				if err != nil {
					b.Fatal(err)
				}
			}
			results[mode] = r
			b.ReportMetric(r.MBPerVirtualS, "virtual-MB/s")
			b.ReportMetric(r.P99, "p99-us")
			if nv := results[experiments.NetloadNaive]; mode == experiments.NetloadTuned && nv.MBPerVirtualS > 0 {
				b.ReportMetric(r.MBPerVirtualS/nv.MBPerVirtualS, "speedup")
			} else if tn := results[experiments.NetloadTuned]; mode == experiments.NetloadNaive && r.MBPerVirtualS > 0 {
				b.ReportMetric(tn.MBPerVirtualS/r.MBPerVirtualS, "speedup")
			}
		})
	}
}

// BenchmarkMigrate measures the pre-copy live-migration path on the
// 4 MiB / 32-hot-page writer cell. Wall-clock ns/op measures the
// simulator; the paper-comparable results are the attached metrics:
// simulated downtime, the stop-and-copy downtime the same space would
// have been frozen for, and their ratio (TestMigrationSpeedup and
// TestMigratePrecopy pin the underlying invariants).
func BenchmarkMigrate(b *testing.B) {
	var r experiments.MigrateResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.MigrateCell(4<<20, 32, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.DowntimeCycles)/clock.CyclesPerMicrosecond, "downtime-virtual-us")
	b.ReportMetric(float64(r.StopCopyCycles)/clock.CyclesPerMicrosecond, "stopcopy-virtual-us")
	b.ReportMetric(r.Ratio, "downtime-ratio")
}

// BenchmarkIPCRoundTrip measures the simulator's full RPC path (connect,
// 8-word request, turnaround, 8-word reply, disconnect) — wall-clock
// cost per simulated RPC.
func BenchmarkIPCRoundTrip(b *testing.B) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			k := core.New(cfg)
			w, err := workload.NewFlukeperf(k, workload.FlukeperfScale{
				Nulls: 1, MutexPairs: 1, PingPong: 1, RPCs: b.N,
				BigTransfers: 0, BigWords: 256, Searches: 0,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := w.Run(1 << 62); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkIPCScaling regenerates the multiprocessor scaling matrix: one
// sub-benchmark per (CPU count, lock model) cell of the parallel-IPC-pairs
// workload. Wall-clock ns/op measures the simulator; the paper-comparable
// results are the attached metrics: simulated throughput (RPCs per virtual
// millisecond), speedup over the same lock model at 1 CPU, and the lock
// contention that explains it.
func BenchmarkIPCScaling(b *testing.B) {
	sc := experiments.FastScalingScale()
	base := map[core.LockModel]float64{}
	for _, lm := range []core.LockModel{core.LockBig, core.LockPerSubsystem} {
		for _, n := range []int{1, 2, 4} {
			lm, n := lm, n
			b.Run(fmt.Sprintf("cpus=%d/%s", n, lm), func(b *testing.B) {
				var row experiments.ScalingRow
				for i := 0; i < b.N; i++ {
					var err error
					row, err = experiments.IPCScalingCell(n, lm, sc)
					if err != nil {
						b.Fatal(err)
					}
				}
				if n == 1 {
					base[lm] = row.RPCsPerVirtualMS
				}
				b.ReportMetric(row.RPCsPerVirtualMS, "rpcs/virtual-ms")
				if bs := base[lm]; bs > 0 {
					b.ReportMetric(row.RPCsPerVirtualMS/bs, "speedup")
				}
				var contended, wait uint64
				for _, ls := range row.Locks {
					contended += ls.Contended
					wait += ls.WaitCycles
				}
				b.ReportMetric(float64(contended), "lock-contended")
				b.ReportMetric(float64(wait)/1000, "lock-wait-kcycles")
			})
		}
	}
}

// BenchmarkInterpreter measures raw simulated-CPU throughput
// (instructions of guest code per wall second).
func BenchmarkInterpreter(b *testing.B) {
	benchInterpreter(b, core.Config{Model: core.ModelInterrupt})
}

// BenchmarkInterpreterProfiled is the same hot loop with the cycle
// profiler attributing every charged cycle — the bench.sh comparison
// against BenchmarkInterpreter measures the profiler's host-side
// overhead (virtual time is identical by TestProfilerEquivalence).
func BenchmarkInterpreterProfiled(b *testing.B) {
	benchInterpreter(b, core.Config{Model: core.ModelInterrupt, EnableProfiler: true})
}

// BenchmarkInterpreterDecodeCache is the same counted loop with the
// threaded-code tier off — the decode-cache tier alone. The ratio
// against BenchmarkInterpreter is the fused-block speedup; bench.sh
// records both and the CI smoke asserts the fused tier stays ahead.
func BenchmarkInterpreterDecodeCache(b *testing.B) {
	benchInterpreter(b, core.Config{Model: core.ModelInterrupt, DisableThreadedCode: true})
}

// BenchmarkInterpreterStraightLine runs 30 ALU instructions per loop
// pass — long fused blocks, the threaded tier's best case. ns/op is per
// loop pass (32 instructions), not per instruction.
func BenchmarkInterpreterStraightLine(b *testing.B) {
	benchInterpreterLoop(b, core.Config{Model: core.ModelInterrupt}, func(pb *prog.Builder) {
		pb.Movi(1, 1)
		for i := 0; i < 10; i++ {
			pb.Add(2, 2, 1).Xor(3, 3, 2).Addi(4, 4, 5)
		}
	})
}

// BenchmarkInterpreterBranchHeavy takes a branch on every instruction
// (eight always-taken hops per pass) — blocks cannot fuse anything, so
// this pins the threaded tier's overhead on its worst case.
func BenchmarkInterpreterBranchHeavy(b *testing.B) {
	n := 0
	benchInterpreterLoop(b, core.Config{Model: core.ModelInterrupt}, func(pb *prog.Builder) {
		for i := 0; i < 8; i++ {
			lbl := fmt.Sprintf("bh%d.%d", n, i)
			pb.Bge(6, 0, lbl).Label(lbl)
		}
		n++
	})
}

// BenchmarkInterpreterSelfModifying stores into the executing code page
// every pass, invalidating the page's decode slots and fused blocks each
// time around — the adversarial shape the block-thrash guard exists for.
func BenchmarkInterpreterSelfModifying(b *testing.B) {
	benchInterpreterLoop(b, core.Config{Model: core.ModelInterrupt}, func(pb *prog.Builder) {
		pb.St(0, 0x0001_0F00, 6)
	})
}

func benchInterpreter(b *testing.B, cfg core.Config) {
	benchInterpreterLoop(b, cfg, nil)
}

// benchInterpreterLoop runs b.N passes of a counted loop whose body is
// emitted by body (nil for the bare counter), measuring host time only —
// virtual time is pinned elsewhere.
func benchInterpreterLoop(b *testing.B, cfg core.Config, body func(pb *prog.Builder)) {
	k := core.New(cfg)
	s := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, 0x0004_0000, 0, 0x10000, mmu.PermRW); err != nil {
		b.Fatal(err)
	}
	pb := prog.New(0x0001_0000)
	pb.Movi(6, 0).Movi(5, uint32(b.N)).
		Label("loop")
	if body != nil {
		body(pb)
	}
	pb.Addi(6, 6, 1).
		Blt(6, 5, "loop").
		Halt()
	th, err := k.SpawnProgram(s, 0x0001_0000, pb.MustAssemble(), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	k.Run()
	if !th.Exited {
		b.Fatal("loop did not finish")
	}
}
