#!/bin/sh
# Run the PR-tracked benchmark set: the interpreter hot loop, the null
# system call (wall-clock and virtual kernel-cycles/call), the IPC
# round-trip under every kernel configuration, and the multiprocessor
# IPC-scaling matrix (CPU count x lock model).
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime   value for -benchtime (default 1s; use e.g. 5x for smoke)
#
# The kernel-cycles/call metric must NOT move across fast-path changes:
# the simulator caches are required to be invisible to virtual time
# (see ARCHITECTURE.md, "Simulator fast paths"). Only ns/op may change.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
exec go test -run='^$' \
    -bench='BenchmarkInterpreter$|BenchmarkNullSyscall$|BenchmarkIPCRoundTrip$|BenchmarkIPCScaling$' \
    -benchtime="$BENCHTIME" .
