#!/bin/sh
# Run the PR-tracked benchmark set: the interpreter hot loop, the null
# system call (wall-clock and virtual kernel-cycles/call), the null RPC
# with the IPC direct-handoff fast path on vs off, the IPC round-trip
# under every kernel configuration, the multiprocessor IPC-scaling
# matrix (CPU count x lock model), the 1-64 CPU lock-model crossover
# sweep (big vs persub vs fine), the bulk-IPC bandwidth sweep with
# zero-copy frame sharing on vs off, the NIC netload sweep
# (interrupt coalescing x zero-copy replies, then CPUs x lock models),
# and the pre-copy live-migration cell (simulated downtime vs the
# stop-and-copy freeze the same space would have eaten).
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime   value for -benchtime (default 1s; use e.g. 5x for smoke)
#
# Two kinds of "fast path" with opposite invariants:
#  - Simulator fast paths (software TLB, decode cache) are host-side
#    caches and must be invisible to virtual time: kernel-cycles/call in
#    BenchmarkNullSyscall must NOT move across simulator changes (see
#    ARCHITECTURE.md, "Simulator fast paths"). Only ns/op may change.
#  - The IPC direct-handoff fast path is an architectural change and
#    *intentionally* moves virtual time; BenchmarkNullRPC tracks the
#    on/off kernel-cycle comparison, and the flukebench -nullrpc run
#    below prints the same comparison as a table. User-visible state
#    must stay identical either way (TestIPCFastPathEquivalence).
#    Zero-copy bulk IPC is the same kind of change one level up:
#    BenchmarkBandwidth and the flukebench -bandwidth sweep track the
#    on/off bandwidth comparison (TestZeroCopyEquivalence pins state).
#
# The cycle profiler is a simulator-side observer: BenchmarkInterpreter
# vs BenchmarkInterpreterProfiled measures its host-side ns/op overhead,
# and virtual time must not move at all (TestProfilerEquivalence pins
# bit-identical final state with the profiler on vs off).
#
# The threaded-code tier (fused superinstruction blocks) is a simulator
# fast path too: BenchmarkInterpreter vs BenchmarkInterpreterDecodeCache
# is the fused-vs-decode-cache host-time ratio, and the StraightLine /
# BranchHeavy / SelfModifying variants cover the tier's best, worst, and
# adversarial guest shapes. Virtual time must not move with the tier on
# or off (TestThreadedCodeEquivalence); the flukebench -interp table
# prints the same three shapes against all three tiers.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
go test -run='^$' \
    -bench='BenchmarkInterpreter$|BenchmarkInterpreterProfiled$|BenchmarkInterpreterDecodeCache$|BenchmarkInterpreterStraightLine$|BenchmarkInterpreterBranchHeavy$|BenchmarkInterpreterSelfModifying$|BenchmarkNullSyscall$|BenchmarkNullRPC$|BenchmarkBandwidth$|BenchmarkIPCRoundTrip$|BenchmarkIPCScaling$|BenchmarkNetload$|BenchmarkMigrate$' \
    -benchtime="$BENCHTIME" .

# Stats snapshot cost on a 64-CPU fine-model kernel: the StatsInto row
# must report 0 allocs/op (the aggregation scans reuse pre-sized
# buffers; TestStatsIntoAllocs pins the zero).
go test -run='^$' -bench='BenchmarkStatsSnapshot' -benchtime="$BENCHTIME" ./internal/core/

echo
go run ./cmd/flukebench -interp -fast
echo
go run ./cmd/flukebench -nullrpc
echo
go run ./cmd/flukebench -bandwidth
echo
go run ./cmd/flukebench -crossover
echo
go run ./cmd/flukebench -netload
echo
go run ./cmd/flukebench -migrate -fast
echo
exec go run ./cmd/flukebench -critpath -fast
