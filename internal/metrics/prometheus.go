package metrics

// Prometheus text exposition of a registry snapshot — the /metrics
// endpoint of flukerun -listen. Instrument names map to the Prometheus
// namespace by prefixing "fluke_" and folding every non-identifier rune
// to '_' ("ipc.fastpath.hits" → fluke_ipc_fastpath_hits). Histograms
// render as summaries: the memoized log2-bucket quantiles as
// {quantile="..."} series plus _sum and _count, all in virtual cycles.

import (
	"fmt"
	"io"
	"strings"
)

// promName sanitizes an instrument name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("fluke_")
	for _, r := range name {
		switch {
		// The fluke_ prefix guarantees a legal leading rune, so digits
		// are fine anywhere in the remainder.
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Deterministic: the snapshot is already sorted
// by name within each instrument kind.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(h.Name) + "_cycles"
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     uint64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", n, q.label, q.v); err != nil {
				return err
			}
		}
		// Sum is reconstructed from the exact mean the snapshot carries.
		if _, err := fmt.Fprintf(w, "%s_sum %.0f\n%s_count %d\n",
			n, h.MeanCycles*float64(h.Count), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
