package metrics

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ipc.fastpath.hits":    "fluke_ipc_fastpath_hits",
		"lock.hold_cycles.big": "fluke_lock_hold_cycles_big",
		"trace.dropped":        "fluke_trace_dropped",
		"weird-name:0/x":       "fluke_weird_name_0_x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheus renders a small registry and checks the exposition
// shape: typed counters/gauges, histograms as summaries with quantile
// labels, and an empty histogram rendered as clean zeros (no NaN).
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("ipc.transfers").Add(42)
	r.Gauge("threads.live").Set(-3)
	h := r.Histogram("syscall.latency.null")
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	r.Histogram("sched.preempt_latency") // stays empty

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE fluke_ipc_transfers counter\nfluke_ipc_transfers 42\n",
		"# TYPE fluke_threads_live gauge\nfluke_threads_live -3\n",
		"# TYPE fluke_syscall_latency_null_cycles summary\n",
		`fluke_syscall_latency_null_cycles{quantile="0.5"} `,
		`fluke_syscall_latency_null_cycles{quantile="0.99"} `,
		"fluke_syscall_latency_null_cycles_sum 5050\n",
		"fluke_syscall_latency_null_cycles_count 100\n",
		`fluke_sched_preempt_latency_cycles{quantile="0.5"} 0` + "\n",
		"fluke_sched_preempt_latency_cycles_sum 0\n",
		"fluke_sched_preempt_latency_cycles_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("exposition contains NaN:\n%s", out)
	}
}
