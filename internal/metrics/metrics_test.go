package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("a") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	// Bucket layout: 0 -> bucket 0, 1 -> bucket 1, [2,3] -> bucket 2.
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(2) != 2 {
		t.Fatalf("buckets %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2))
	}
}

// Property: Quantile is a true upper bound of the nearest-rank value, no
// looser than 2x, and clamped to the observed max.
func TestPropertyQuantileBounds(t *testing.T) {
	f := func(vals []uint32, qv uint8) bool {
		if len(vals) == 0 {
			return true
		}
		q := float64(qv%101) / 100
		var h Histogram
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		got := h.Quantile(q)
		if got > h.Max() {
			return false
		}
		// Exact nearest-rank for comparison.
		sorted := append([]uint32(nil), vals...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		// Same nearest-rank convention as Histogram.Quantile.
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		exact := uint64(sorted[rank-1])
		// Upper bound, and within one power of two.
		return got >= exact && (exact == 0 || got < 2*exact+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotDeterministicAndRendered(t *testing.T) {
	r := New()
	r.Counter("z.second").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("threads.live").Set(3)
	h := r.Histogram("lat")
	h.Observe(200) // 1 µs
	h.Observe(400)
	r.Histogram("empty") // registered but never observed
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.first" || s.Counters[1].Name != "z.second" {
		t.Fatalf("counters %+v", s.Counters)
	}
	if len(s.Histograms) != 2 {
		t.Fatalf("histograms %+v", s.Histograms)
	}
	out := r.Render("snap")
	for _, want := range []string{"a.first", "z.second", "threads.live", "lat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "empty") {
		t.Fatalf("render includes empty histogram:\n%s", out)
	}
}

func TestRenderEmptyRegistry(t *testing.T) {
	if out := New().Render("nothing"); !strings.Contains(out, "no metrics") {
		t.Fatalf("empty render: %q", out)
	}
}

// instrumented mimics a kernel-side metrics bundle: a nil pointer means
// metrics are disabled and every hot-path site degrades to one branch.
type instrumented struct {
	c Counter
	h Histogram
}

var sink uint64

// BenchmarkDisabledBranch measures the cost a hot path pays when no
// registry is attached: the nil check alone.
func BenchmarkDisabledBranch(b *testing.B) {
	var m *instrumented
	for i := 0; i < b.N; i++ {
		if m != nil {
			m.c.Inc()
		}
		sink++
	}
}

// BenchmarkCounterInc measures the enabled-counter hot path.
func BenchmarkCounterInc(b *testing.B) {
	m := &instrumented{}
	for i := 0; i < b.N; i++ {
		if m != nil {
			m.c.Inc()
		}
	}
	sink = m.c.Value()
}

// BenchmarkHistogramObserve measures the enabled-histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	m := &instrumented{}
	for i := 0; i < b.N; i++ {
		m.h.Observe(uint64(i))
	}
	sink = m.h.Count()
}

// TestUpdatesDoNotAllocate pins the allocation-free-after-setup
// property: registration allocates, updates never do.
func TestUpdatesDoNotAllocate(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	g := r.Gauge("g")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("hot-path updates allocate: %v allocs/run", allocs)
	}
}
