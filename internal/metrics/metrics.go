// Package metrics is the kernel's first-class measurement layer: a
// registry of named counters, gauges, and fixed-bucket log2-cycle
// histograms. Every instrument is allocated at registration time and
// updated in place, so the hot paths never allocate; a kernel with no
// registry attached pays exactly one nil-check branch per would-be
// update (verified by the benchmarks in this package).
//
// Histograms bucket virtual-cycle values by bit length (bucket i holds
// values in [2^(i-1), 2^i)), which keeps Observe to a handful of
// instructions while still answering p50/p95/p99 questions to within a
// factor of two — plenty for the order-of-magnitude spreads the paper's
// tables care about (Table 6 spans three orders of magnitude).
//
// Like the rest of the simulation, the registry is single-threaded by
// construction and is not safe for concurrent use.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level that can move both ways (live threads,
// frames in use).
type Gauge struct {
	v int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// NumBuckets is the number of log2 histogram buckets: bucket 0 holds the
// value 0, bucket i (1..64) holds values in [2^(i-1), 2^i).
const NumBuckets = 65

// Histogram accumulates uint64 samples (virtual cycles, by convention)
// into log2 buckets, tracking exact count, sum, min, and max.
type Histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [NumBuckets]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest sample, or 0 with none.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample, or 0 with none.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the exact mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Quantile returns an upper bound for the q-th quantile (q in 0..1) by
// nearest rank: the top of the log2 bucket holding that rank, clamped to
// the observed max.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			top := uint64(1)<<uint(i) - 1
			if top > h.max {
				top = h.max
			}
			return top
		}
	}
	return h.max
}

// Registry names and owns a set of instruments. Registration (the
// Counter/Gauge/Histogram methods) allocates; updates through the
// returned pointers never do.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string
	Value uint64
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string
	Value int64
}

// HistSnap is one histogram in a snapshot; the quantiles are cycle
// values (upper bounds, see Histogram.Quantile).
type HistSnap struct {
	Name          string
	Count         uint64
	MeanCycles    float64
	MinCycles     uint64
	P50, P95, P99 uint64
	MaxCycles     uint64
}

// Snapshot is a stable, name-sorted copy of every instrument's state.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistSnap
}

// Snapshot captures the registry. The result is deterministic: sorted by
// name within each instrument kind.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistSnap{
			Name:       name,
			Count:      h.Count(),
			MeanCycles: h.Mean(),
			MinCycles:  h.Min(),
			P50:        h.Quantile(0.50),
			P95:        h.Quantile(0.95),
			P99:        h.Quantile(0.99),
			MaxCycles:  h.Max(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// CounterTable renders the snapshot's counters and gauges (zero-valued
// ones omitted) as a fixed-width table.
func (s Snapshot) CounterTable(title string) *stats.Table {
	t := stats.NewTable(title, "counter", "value")
	for _, c := range s.Counters {
		if c.Value == 0 {
			continue
		}
		t.Row(c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		if g.Value == 0 {
			continue
		}
		t.Row(g.Name+" (gauge)", g.Value)
	}
	return t
}

// HistogramTable renders the snapshot's non-empty histograms with
// cycle values converted to microseconds of virtual time.
func (s Snapshot) HistogramTable(title string) *stats.Table {
	t := stats.NewTable(title, "histogram", "count", "mean µs", "p50 µs", "p95 µs", "p99 µs", "max µs")
	for _, h := range s.Histograms {
		if h.Count == 0 {
			continue
		}
		t.Row(h.Name, h.Count,
			clock.Micros(uint64(h.MeanCycles)),
			clock.Micros(h.P50),
			clock.Micros(h.P95),
			clock.Micros(h.P99),
			clock.Micros(h.MaxCycles))
	}
	return t
}

// Render returns both tables of a snapshot of r, skipping empty
// sections — the flukerun -metrics output.
func (r *Registry) Render(title string) string {
	s := r.Snapshot()
	var b strings.Builder
	if ct := s.CounterTable(title + " — counters"); len(ct.Rows()) > 0 {
		b.WriteString(ct.String())
	}
	if ht := s.HistogramTable(title + " — latency histograms"); len(ht.Rows()) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(ht.String())
	}
	if b.Len() == 0 {
		return title + ": no metrics recorded\n"
	}
	return b.String()
}
