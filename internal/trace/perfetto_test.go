package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sys"
)

// parsedEvent mirrors the trace_event fields the tests check.
type parsedEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  uint32            `json:"pid"`
	Tid  uint32            `json:"tid"`
	Args map[string]string `json:"args"`
}

type parsedTrace struct {
	TraceEvents     []parsedEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

func exportParsed(t *testing.T, events []Event) parsedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := ExportJSON(&buf, events); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	var p parsedTrace
	if err := json.Unmarshal(buf.Bytes(), &p); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return p
}

func TestExportJSONSyscallSpans(t *testing.T) {
	events := []Event{
		{Time: 200, TID: 1, Kind: SyscallEnter, A: uint32(sys.NNull)},
		{Time: 600, TID: 1, Kind: SyscallExit, A: uint32(sys.NNull), B: uint32(sys.KOK)},
		{Time: 800, TID: 2, Kind: Wake, A: 1},
		{Time: 1000, TID: 2, Kind: Fault, A: 0x4000, B: 1},
	}
	p := exportParsed(t, events)
	if p.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", p.DisplayTimeUnit)
	}
	var span *parsedEvent
	for i := range p.TraceEvents {
		e := &p.TraceEvents[i]
		if e.Ph == "X" {
			span = e
		}
	}
	if span == nil {
		t.Fatal("no complete span for the enter/exit pair")
	}
	if span.Name != sys.Name(sys.NNull) || span.Tid != 1 {
		t.Fatalf("span %+v", *span)
	}
	if span.Ts != 1.0 || span.Dur != 2.0 { // 200 cyc = 1 µs, 400 cyc = 2 µs
		t.Fatalf("span timing ts=%v dur=%v", span.Ts, span.Dur)
	}
	if span.Args["result"] != sys.KOK.String() {
		t.Fatalf("span args %v", span.Args)
	}
}

func TestExportJSONEveryEventWellFormed(t *testing.T) {
	// One of every kind, including an exit whose enter is missing (as
	// after a ring wrap) and an enter that never exits.
	events := []Event{
		{Time: 0, TID: 3, Kind: SyscallExit, A: uint32(sys.NNull), B: uint32(sys.KOK)},
		{Time: 100, TID: 1, Kind: CtxSwitch, A: 1},
		{Time: 200, TID: 1, Kind: SyscallEnter, A: uint32(sys.NThreadSelf)},
		{Time: 300, TID: 1, Kind: Preempt, A: 1},
		{Time: 400, TID: 1, Kind: IRQ, A: 5},
		{Time: 500, TID: 1, Kind: ThreadExit, A: 7},
	}
	p := exportParsed(t, events)
	if len(p.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	names := map[uint32]string{}
	var lastTs float64
	for _, e := range p.TraceEvents {
		switch e.Ph {
		case "M":
			names[e.Tid] = e.Args["name"]
			continue
		case "X", "i":
		default:
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
		if e.Ts < lastTs {
			t.Fatalf("events not time-sorted: %v after %v", e.Ts, lastTs)
		}
		lastTs = e.Ts
		if e.Name == "" {
			t.Fatalf("unnamed event %+v", e)
		}
		if e.Pid != 1 {
			t.Fatalf("pid %d", e.Pid)
		}
	}
	// Every tid that appears has a thread_name metadata record.
	for _, e := range p.TraceEvents {
		if e.Ph != "M" {
			if _, ok := names[e.Tid]; !ok {
				t.Fatalf("tid %d has no thread_name metadata", e.Tid)
			}
		}
	}
	// The orphaned exit and the in-flight enter must both degrade to
	// instants, never unbalanced B/E phases.
	var orphanExit, inFlight bool
	for _, e := range p.TraceEvents {
		if e.Ph == "i" && strings.HasPrefix(e.Name, "sys- ") {
			orphanExit = true
		}
		if e.Ph == "i" && strings.HasPrefix(e.Name, "sys+ ") {
			inFlight = true
		}
	}
	if !orphanExit || !inFlight {
		t.Fatalf("orphan handling missing: exit=%v enter=%v", orphanExit, inFlight)
	}
}

func TestExportJSONFromWrappedRing(t *testing.T) {
	r := NewRing(8)
	for i := uint64(0); i < 50; i++ {
		kind := SyscallEnter
		if i%2 == 1 {
			kind = SyscallExit
		}
		r.Add(Event{Time: i * 100, TID: uint32(i % 3), Kind: kind, A: uint32(sys.NNull)})
	}
	var buf bytes.Buffer
	if err := r.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	var p parsedTrace
	if err := json.Unmarshal(buf.Bytes(), &p); err != nil {
		t.Fatalf("wrapped ring export not valid JSON: %v", err)
	}
	if len(p.TraceEvents) == 0 {
		t.Fatal("no events from wrapped ring")
	}
	// The export must declare how much of the trace the wrap lost:
	// 50 events into an 8-slot ring drops 42 and retains 8.
	if got := p.OtherData["droppedEvents"]; got != "42" {
		t.Fatalf("otherData.droppedEvents = %q, want \"42\"", got)
	}
	if got := p.OtherData["retainedEvents"]; got != "8" {
		t.Fatalf("otherData.retainedEvents = %q, want \"8\"", got)
	}
}
