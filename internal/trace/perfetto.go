package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/clock"
	"repro/internal/sys"
)

// This file exports the typed event ring in Chrome trace_event JSON (the
// "JSON Array Format" both chrome://tracing and ui.perfetto.dev open
// natively): one trace "process" per simulated CPU (its lane group), one
// track per thread ID within it, syscalls as complete ("X") spans from
// enter to exit, everything else as thread-scoped instants. Timestamps
// are virtual microseconds via clock.CyclesPerMicrosecond.

// jsonEvent is one trace_event record — the field subset we emit.
type jsonEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  uint32            `json:"pid"`
	Tid  uint32            `json:"tid"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"` // flow-event binding ID
	BP   string            `json:"bp,omitempty"` // flow binding point ("e")
	Args map[string]string `json:"args,omitempty"`
}

// jsonTrace is the trace_event JSON Object Format envelope. OtherData is
// the format's free-form metadata map; the ring export records its drop
// count there so a wrapped trace is visibly incomplete.
type jsonTrace struct {
	TraceEvents     []jsonEvent       `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// pidOf maps a simulated CPU to its trace process ID. CPU 0 is pid 1, so
// uniprocessor traces look exactly as they did before CPU lanes existed.
func pidOf(cpu uint32) uint32 { return cpu + 1 }

// usOf converts a cycle timestamp to trace microseconds.
func usOf(cycles uint64) float64 { return clock.Micros(cycles) }

// instant builds a thread-scoped instant event.
func instant(e Event, name string, args map[string]string) jsonEvent {
	return jsonEvent{
		Name: name, Cat: "kernel", Ph: "i", S: "t",
		Ts: usOf(e.Time), Pid: pidOf(e.CPU), Tid: e.TID, Args: args,
	}
}

// ExportJSON writes events (chronological, as returned by Ring.Events)
// as Chrome trace_event JSON. SyscallEnter/SyscallExit pairs on the same
// thread become complete spans; an exit whose enter fell off the ring
// (or vice versa) degrades to an instant, so wrapped rings still export
// a well-formed trace.
func ExportJSON(w io.Writer, events []Event) error {
	return ExportJSONMeta(w, events, nil)
}

// ExportJSONMeta is ExportJSON with extra envelope metadata (the format's
// otherData map) — the ring export stamps its drop count there.
func ExportJSONMeta(w io.Writer, events []Event, meta map[string]string) error {
	out := make([]jsonEvent, 0, len(events)+8)

	// One process_name metadata record per CPU lane and one thread_name
	// record per (CPU, thread) track.
	type track struct{ cpu, tid uint32 }
	cpus := map[uint32]bool{}
	tracks := map[track]bool{}
	for _, e := range events {
		cpus[e.CPU] = true
		tracks[track{e.CPU, e.TID}] = true
	}
	sortedCPUs := make([]uint32, 0, len(cpus))
	for c := range cpus {
		sortedCPUs = append(sortedCPUs, c)
	}
	sort.Slice(sortedCPUs, func(i, j int) bool { return sortedCPUs[i] < sortedCPUs[j] })
	for _, c := range sortedCPUs {
		out = append(out, jsonEvent{
			Name: "process_name", Ph: "M", Pid: pidOf(c),
			Args: map[string]string{"name": fmt.Sprintf("cpu %d", c)},
		})
	}
	sortedTracks := make([]track, 0, len(tracks))
	for tr := range tracks {
		sortedTracks = append(sortedTracks, tr)
	}
	sort.Slice(sortedTracks, func(i, j int) bool {
		if sortedTracks[i].cpu != sortedTracks[j].cpu {
			return sortedTracks[i].cpu < sortedTracks[j].cpu
		}
		return sortedTracks[i].tid < sortedTracks[j].tid
	})
	for _, tr := range sortedTracks {
		name := fmt.Sprintf("thread %d", tr.tid)
		if tr.tid == 0 {
			name = "scheduler"
		}
		out = append(out, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf(tr.cpu), Tid: tr.tid,
			Args: map[string]string{"name": name},
		})
	}

	open := map[track][]Event{} // per-track stack of unmatched SyscallEnter
	for _, e := range events {
		key := track{e.CPU, e.TID}
		switch e.Kind {
		case SyscallEnter:
			open[key] = append(open[key], e)
		case SyscallExit:
			stack := open[key]
			if n := len(stack); n > 0 && stack[n-1].A == e.A {
				enter := stack[n-1]
				open[key] = stack[:n-1]
				args := map[string]string{"result": sys.KErr(e.B).String()}
				if enter.B == 1 {
					args["redispatch"] = "true"
				}
				out = append(out, jsonEvent{
					Name: sys.Name(int(e.A)), Cat: "syscall", Ph: "X",
					Ts: usOf(enter.Time), Dur: usOf(e.Time - enter.Time),
					Pid: pidOf(e.CPU), Tid: e.TID, Args: args,
				})
			} else {
				out = append(out, instant(e, "sys- "+sys.Name(int(e.A)),
					map[string]string{"result": sys.KErr(e.B).String(), "note": "enter dropped from ring"}))
			}
		case CtxSwitch:
			out = append(out, instant(e, "switch",
				map[string]string{"incoming": fmt.Sprintf("t%d", e.A)}))
		case Wake:
			out = append(out, instant(e, "wake",
				map[string]string{"woken": fmt.Sprintf("t%d", e.A)}))
		case Fault:
			side := "client"
			if e.B>>8 != 0 {
				side = "server"
			}
			class := fmt.Sprintf("class%d", e.B&0xFF)
			if names := [...]string{"fatal", "soft", "hard", "cow"}; e.B&0xFF < uint32(len(names)) {
				class = names[e.B&0xFF]
			}
			out = append(out, instant(e, "fault "+class,
				map[string]string{"va": fmt.Sprintf("%#x", e.A), "class": class, "side": side}))
		case Preempt:
			kind := [...]string{"user-boundary", "explicit-point", "in-kernel"}[e.A]
			out = append(out, instant(e, "preempt", map[string]string{"at": kind}))
		case ThreadExit:
			out = append(out, instant(e, "exit",
				map[string]string{"code": fmt.Sprintf("%#x", e.A)}))
		case IRQ:
			out = append(out, instant(e, fmt.Sprintf("irq %d", e.A), nil))
		case IPI:
			out = append(out, instant(e, "ipi",
				map[string]string{"target": fmt.Sprintf("cpu%d", e.A)}))
		case Steal:
			out = append(out, instant(e, "steal",
				map[string]string{"thread": fmt.Sprintf("t%d", e.B), "victim": fmt.Sprintf("cpu%d", e.A)}))
		case Handoff:
			out = append(out, instant(e, "handoff",
				map[string]string{"incoming": fmt.Sprintf("t%d", e.A)}))
		case Share:
			out = append(out, instant(e, "share",
				map[string]string{"va": fmt.Sprintf("%#x", e.A), "pfn": fmt.Sprintf("%d", e.B)}))
		case NICDrain:
			out = append(out, instant(e, fmt.Sprintf("nic drain q%d", e.A),
				map[string]string{"queue": fmt.Sprintf("%d", e.A), "frames": fmt.Sprintf("%d", e.B)}))
		case COWBreak:
			mode := "upgrade"
			if e.B != 0 {
				mode = "copy"
			}
			out = append(out, instant(e, "cowbreak",
				map[string]string{"va": fmt.Sprintf("%#x", e.A), "mode": mode}))
		case Flow:
			// A causal IPC span checkpoint: a flow event (the viewer draws
			// arrows between same-ID flow records across tracks) plus args
			// naming the checkpoint. begin opens the flow ("s"), end closes
			// it ("f" binding to the enclosing slice), middles step ("t").
			ph, bp := "t", ""
			switch e.B {
			case FlowBegin:
				ph = "s"
			case FlowEnd:
				ph, bp = "f", "e"
			}
			out = append(out, jsonEvent{
				Name: "ipc-span", Cat: "ipc", Ph: ph, ID: fmt.Sprintf("%d", e.A), BP: bp,
				Ts: usOf(e.Time), Pid: pidOf(e.CPU), Tid: e.TID,
				Args: map[string]string{"span": fmt.Sprintf("%d", e.A), "point": FlowPointName(e.B)},
			})
		default:
			out = append(out, instant(e, e.Kind.String(), nil))
		}
	}
	// Syscalls still in flight when the ring was captured: instants, so
	// the viewer shows them without an unbalanced begin.
	for _, stack := range open {
		for _, enter := range stack {
			out = append(out, instant(enter, "sys+ "+sys.Name(int(enter.A)),
				map[string]string{"note": "still in flight"}))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })

	return json.NewEncoder(w).Encode(jsonTrace{TraceEvents: out, DisplayTimeUnit: "ms", OtherData: meta})
}

// ExportJSON writes the ring's retained events in Chrome trace_event
// JSON, ready for ui.perfetto.dev. The envelope's otherData records how
// many earlier events the ring overwrote, so a wrapped trace declares its
// own incompleteness.
func (r *Ring) ExportJSON(w io.Writer) error {
	meta := map[string]string{
		"droppedEvents":  fmt.Sprintf("%d", r.Dropped()),
		"retainedEvents": fmt.Sprintf("%d", r.Len()),
	}
	return ExportJSONMeta(w, r.Events(), meta)
}
