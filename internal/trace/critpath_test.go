package trace

import (
	"strings"
	"testing"
)

func flowEvent(t uint64, cpu, span, point uint32) Event {
	return Event{Time: t, CPU: cpu, TID: span + 100, Kind: Flow, A: span, B: point}
}

// TestCritPathFullAccounting pins the telescoping invariant: a complete
// span's hop cycles sum to exactly its wall-cycle length, so the
// decomposition accounts for 100% of the measured interval.
func TestCritPathFullAccounting(t *testing.T) {
	events := []Event{
		flowEvent(100, 0, 1, FlowBegin),
		flowEvent(130, 0, 1, FlowCopy),
		flowEvent(150, 1, 1, FlowWake),
		flowEvent(155, 1, 1, FlowHandoff),
		flowEvent(300, 1, 1, FlowEnd),
		// interleaved second span
		flowEvent(120, 1, 2, FlowBegin),
		flowEvent(180, 1, 2, FlowCopy),
		flowEvent(200, 0, 2, FlowEnd),
		// an unrelated non-flow event must be ignored
		{Time: 140, CPU: 0, Kind: SyscallEnter, A: 3},
	}
	spans := SpanPaths(events)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if !s.Complete {
			t.Fatalf("span %d not complete", s.ID)
		}
		var sum uint64
		for _, h := range s.Hops {
			sum += h.Cycles
		}
		if sum != s.Cycles() {
			t.Fatalf("span %d: hop sum %d != span cycles %d", s.ID, sum, s.Cycles())
		}
	}
	if got := spans[0].Cycles(); got != 200 {
		t.Fatalf("span 1 length = %d, want 200", got)
	}
	if got, want := len(spans[0].Hops), 4; got != want {
		t.Fatalf("span 1 hops = %d, want %d", got, want)
	}
	if spans[0].Hops[2].Point != "handoff" || spans[0].Hops[2].CPU != 1 {
		t.Fatalf("span 1 hop 2 = %+v, want handoff on cpu 1", spans[0].Hops[2])
	}

	hops, total := Decompose(spans)
	if total != 200+80 {
		t.Fatalf("decomposed span total = %d, want 280", total)
	}
	var hopSum uint64
	for _, h := range hops {
		hopSum += h.Cycles
	}
	if hopSum != total {
		t.Fatalf("aggregate hop cycles %d != span total %d (lost or double-counted)", hopSum, total)
	}

	long, ok := Longest(spans)
	if !ok || long.ID != 1 {
		t.Fatalf("Longest = %+v ok=%v, want span 1", long, ok)
	}
	line := FormatChain(long)
	for _, want := range []string{"span 1", "begin@c0", "(handoff 5)c1", "(end 145)c1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("FormatChain %q missing %q", line, want)
		}
	}
}

// TestCritPathIncompleteSpans: a span whose end was never emitted (still
// running) is reconstructed but excluded from Decompose totals, and one
// whose begin was dropped by ring wraparound is discarded entirely.
func TestCritPathIncompleteSpans(t *testing.T) {
	events := []Event{
		flowEvent(10, 0, 1, FlowBegin),
		flowEvent(40, 0, 1, FlowCopy), // no end: still in flight
		flowEvent(50, 0, 2, FlowCopy), // begin lost to wraparound
		flowEvent(90, 0, 2, FlowEnd),
	}
	spans := SpanPaths(events)
	if len(spans) != 1 || spans[0].ID != 1 {
		t.Fatalf("spans = %+v, want just span 1", spans)
	}
	if spans[0].Complete {
		t.Fatal("span 1 reported complete without a FlowEnd")
	}
	hops, total := Decompose(spans)
	if len(hops) != 0 || total != 0 {
		t.Fatalf("incomplete span leaked into Decompose: hops=%v total=%d", hops, total)
	}
	if _, ok := Longest(spans); ok {
		t.Fatal("Longest returned an incomplete span")
	}
	if !strings.Contains(FormatChain(spans[0]), "incomplete") {
		t.Fatal("FormatChain did not flag the incomplete span")
	}
}

// TestCritPathEventsAfterEnd: checkpoints recorded after a span's FlowEnd
// (a non-owning carrier reusing the ID before it is re-minted) must not
// extend the completed chain.
func TestCritPathEventsAfterEnd(t *testing.T) {
	events := []Event{
		flowEvent(10, 0, 1, FlowBegin),
		flowEvent(30, 0, 1, FlowEnd),
		flowEvent(70, 0, 1, FlowCopy), // stale carrier echo
	}
	spans := SpanPaths(events)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if !s.Complete || s.Cycles() != 20 || len(s.Hops) != 1 {
		t.Fatalf("span = %+v, want complete 20-cycle single-hop chain", s)
	}
}
