package trace

// Critical-path analysis of causal IPC spans. The kernel's span tracker
// (Config.EnableIPCSpans) emits one Flow event at every causal checkpoint
// of a request — mint, data copies, rendezvous wakes, handoffs, steals,
// completion. SpanPaths groups a trace's Flow events by span ID and
// decomposes each span's begin→end interval into hops: the stretch of
// virtual time between consecutive checkpoints, named by the checkpoint
// that ends it. Because consecutive hop lengths telescope, the hop cycles
// of a complete span sum to exactly its wall-cycle length — every cycle
// of the request is accounted to some hop, none twice (pinned by
// TestCritPathFullAccounting and the experiments-level coverage test).

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
)

// Hop is one segment of a span's causal chain: the virtual time from the
// previous checkpoint (or the span's begin) up to the checkpoint named by
// Point, which lands on CPU at virtual time End.
type Hop struct {
	Point  string // flow-point name of the checkpoint ending the hop
	CPU    uint32 // CPU the ending checkpoint was observed on
	TID    uint32 // thread the ending checkpoint was observed from
	End    uint64 // virtual time of the ending checkpoint
	Cycles uint64 // End minus the previous checkpoint's time
}

// SpanPath is one span's reconstructed causal chain.
type SpanPath struct {
	ID       uint32
	Begin    uint64 // virtual time of FlowBegin
	BeginCPU uint32 // CPU the span was minted on
	End      uint64 // virtual time of FlowEnd (== Begin+sum of hop cycles)
	// Hops are the begin→end segments in time order. Complete spans
	// satisfy sum(Hops[i].Cycles) == End-Begin exactly.
	Hops []Hop
	// Complete marks spans whose FlowEnd was retained; a wrapped ring or
	// a still-running request leaves Complete false and End at the last
	// retained checkpoint.
	Complete bool
}

// Cycles returns the span's wall-cycle length (last checkpoint minus
// begin).
func (s SpanPath) Cycles() uint64 { return s.End - s.Begin }

// SpanPaths reconstructs every span present in events. Spans whose
// FlowBegin was dropped (ring wraparound) are discarded — without the
// mint point the first hop length is unknowable. The result is sorted by
// span ID, and each span's checkpoints by virtual time (emission order
// breaking ties, so one-CPU traces decompose in exactly causal order).
func SpanPaths(events []Event) []SpanPath {
	flows := make(map[uint32][]Event)
	for _, e := range events {
		if e.Kind == Flow {
			flows[e.A] = append(flows[e.A], e)
		}
	}
	out := make([]SpanPath, 0, len(flows))
	for id, evs := range flows {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
		if evs[0].B != FlowBegin {
			continue // mint point lost to ring wraparound
		}
		sp := SpanPath{ID: id, Begin: evs[0].Time, BeginCPU: evs[0].CPU, End: evs[0].Time}
		for _, e := range evs[1:] {
			sp.Hops = append(sp.Hops, Hop{
				Point:  FlowPointName(e.B),
				CPU:    e.CPU,
				TID:    e.TID,
				End:    e.Time,
				Cycles: e.Time - sp.End,
			})
			sp.End = e.Time
			if e.B == FlowEnd {
				sp.Complete = true
				break
			}
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Longest returns the complete span with the largest wall-cycle length
// (ties to the lowest ID), and false if no span completed.
func Longest(spans []SpanPath) (SpanPath, bool) {
	var best SpanPath
	found := false
	for _, s := range spans {
		if !s.Complete {
			continue
		}
		if !found || s.Cycles() > best.Cycles() {
			best = s
			found = true
		}
	}
	return best, found
}

// HopTotal aggregates one hop kind across spans.
type HopTotal struct {
	Point  string
	Count  uint64
	Cycles uint64
}

// Decompose aggregates the complete spans' hops by point name, returning
// the totals sorted by cycles descending (ties by name) plus the summed
// wall-cycle length of all complete spans. By the telescoping invariant,
// the returned totals' cycles sum to exactly the returned span total —
// the decomposition accounts for 100% of the measured interval.
func Decompose(spans []SpanPath) (hops []HopTotal, spanCycles uint64) {
	agg := make(map[string]*HopTotal)
	for _, s := range spans {
		if !s.Complete {
			continue
		}
		spanCycles += s.Cycles()
		for _, h := range s.Hops {
			t := agg[h.Point]
			if t == nil {
				t = &HopTotal{Point: h.Point}
				agg[h.Point] = t
			}
			t.Count++
			t.Cycles += h.Cycles
		}
	}
	for _, t := range agg {
		hops = append(hops, *t)
	}
	sort.Slice(hops, func(i, j int) bool {
		if hops[i].Cycles != hops[j].Cycles {
			return hops[i].Cycles > hops[j].Cycles
		}
		return hops[i].Point < hops[j].Point
	})
	return hops, spanCycles
}

// FormatChain renders one span's chain as a single line:
//
//	span 7: 414 cycles  begin@c0 →(copy 120)c0 →(wake 80)c1 →(end 214)c1
func FormatChain(s SpanPath) string {
	var b strings.Builder
	fmt.Fprintf(&b, "span %d: %d cycles (%.2f µs)  begin@c%d",
		s.ID, s.Cycles(), clock.Micros(s.Cycles()), s.BeginCPU)
	for _, h := range s.Hops {
		fmt.Fprintf(&b, " →(%s %d)c%d", h.Point, h.Cycles, h.CPU)
	}
	if !s.Complete {
		b.WriteString(" …incomplete")
	}
	return b.String()
}
