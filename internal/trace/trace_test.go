package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := uint32(1); i <= 6; i++ {
		r.Add(Event{Time: uint64(i), Kind: Wake, A: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len=%d", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped=%d", r.Dropped())
	}
	ev := r.Events()
	for i, e := range ev {
		if e.A != uint32(i+3) {
			t.Fatalf("events %v not chronological", ev)
		}
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	r.Add(Event{Kind: IRQ, A: 3})
	r.Add(Event{Kind: CtxSwitch, A: 9})
	ev := r.Events()
	if len(ev) != 2 || ev[0].Kind != IRQ || ev[1].Kind != CtxSwitch {
		t.Fatalf("events %v", ev)
	}
	if r.Dropped() != 0 {
		t.Fatal("phantom drops")
	}
}

func TestEventStrings(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Time: 200, TID: 3, Kind: SyscallEnter, A: 0}, "null"},
		{Event{Kind: SyscallEnter, A: 0, B: 1}, "redispatch"},
		{Event{Kind: SyscallExit, A: 76, B: 1}, "KWouldBlock"},
		{Event{Kind: Fault, A: 0x1000, B: 1}, "soft/client"},
		{Event{Kind: Fault, A: 0x1000, B: 2 | 1<<8}, "hard/server"},
		{Event{Kind: Preempt, A: 1}, "explicit-point"},
		{Event{Kind: IRQ, A: 5}, "line 5"},
		{Event{Kind: ThreadExit, A: 7}, "code=0x7"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("%v rendered %q, want substring %q", c.e.Kind, got, c.want)
		}
	}
}

func TestDumpMentionsDrops(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Add(Event{Kind: Wake})
	}
	if !strings.Contains(r.Dump(), "3 earlier events dropped") {
		t.Fatalf("dump: %q", r.Dump())
	}
}

func TestRingExactCapacityBoundary(t *testing.T) {
	r := NewRing(4)
	for i := uint32(1); i <= 4; i++ {
		r.Add(Event{Time: uint64(i), Kind: Wake, A: i})
	}
	// Exactly at capacity: everything retained, nothing dropped.
	if r.Len() != 4 || r.Dropped() != 0 {
		t.Fatalf("at capacity: Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	if ev := r.Events(); len(ev) != 4 || ev[0].A != 1 || ev[3].A != 4 {
		t.Fatalf("at capacity events %v", ev)
	}
	// One past capacity: the single oldest event is dropped.
	r.Add(Event{Time: 5, Kind: Wake, A: 5})
	if r.Len() != 4 || r.Dropped() != 1 {
		t.Fatalf("past capacity: Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	if ev := r.Events(); ev[0].A != 2 || ev[3].A != 5 {
		t.Fatalf("past capacity events %v", ev)
	}
}

func TestRingMultipleWraps(t *testing.T) {
	const capacity, total = 4, 19 // 4 full wraps plus a partial lap
	r := NewRing(capacity)
	for i := uint32(1); i <= total; i++ {
		r.Add(Event{Time: uint64(i), Kind: Wake, A: i})
	}
	if want := uint64(total - capacity); r.Dropped() != want {
		t.Fatalf("Dropped=%d want %d", r.Dropped(), want)
	}
	if r.Len() != capacity {
		t.Fatalf("Len=%d", r.Len())
	}
	ev := r.Events()
	for i, e := range ev {
		if e.A != uint32(total-capacity+1+i) {
			t.Fatalf("after %d wraps events %v not chronological", total/capacity, ev)
		}
		if i > 0 && ev[i-1].Time >= e.Time {
			t.Fatalf("times out of order: %v", ev)
		}
	}
}

// Property: the ring retains exactly the last min(n, cap) events, in
// order.
func TestPropertyRingRetention(t *testing.T) {
	f := func(capacity uint8, n uint8) bool {
		c := int(capacity%32) + 1
		r := NewRing(c)
		for i := 0; i < int(n); i++ {
			r.Add(Event{A: uint32(i)})
		}
		ev := r.Events()
		want := int(n)
		if want > c {
			want = c
		}
		if len(ev) != want {
			return false
		}
		for i, e := range ev {
			if e.A != uint32(int(n)-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
