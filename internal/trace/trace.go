// Package trace is the kernel's typed event tracer: a fixed-capacity ring
// of timestamped events the kernel emits at syscall, scheduling, fault,
// and IPC boundaries. Tracing is allocation-free after setup and costs
// one branch when disabled, so it can stay attached during benchmarks.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/sys"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// SyscallEnter: A = syscall number, B = 1 if a kernel-internal
	// re-dispatch of a continuation.
	SyscallEnter Kind = iota
	// SyscallExit: A = syscall number, B = kernel-internal result code.
	SyscallExit
	// CtxSwitch: A = incoming thread ID.
	CtxSwitch
	// Fault: A = faulting VA, B = class (mmu.FaultClass) | side<<8.
	Fault
	// Wake: A = woken thread ID.
	Wake
	// Preempt: A = 0 user boundary, 1 explicit point, 2 in-kernel (FP).
	Preempt
	// ThreadExit: A = exit code.
	ThreadExit
	// IRQ: A = line.
	IRQ
	// IPI: A = target CPU (cross-CPU reschedule request).
	IPI
	// Steal: A = victim CPU, B = stolen thread ID.
	Steal
	// Handoff: A = incoming thread ID — an IPC fast-path direct switch:
	// the blocking donor hands its remaining slice straight to the peer,
	// bypassing the run queue (emitted instead of CtxSwitch).
	Handoff
	// Share: A = receiver-side VA, B = shared frame's PFN — one page
	// moved by the zero-copy IPC path (copy-on-write frame aliasing
	// instead of a word copy).
	Share
	// COWBreak: A = faulting VA, B = 1 if the page was copied (the share
	// was still live), 0 if write permission was simply restored.
	COWBreak
	// Flow: A = causal IPC span ID, B = flow point (FlowBegin..FlowEnd).
	// Emitted by the kernel's span tracker (Config.EnableIPCSpans) at
	// every causal checkpoint of a request: mint at IPC send, copy and
	// zero-copy transfers, rendezvous wakes, direct handoffs, donation
	// steals, and completion. Exported as Perfetto flow events, consumed
	// by the flukebench -critpath analyzer.
	Flow
	// NICDrain: A = NIC queue index, B = frames the device handed to the
	// driver since the previous drain boundary (the arm write that
	// re-enabled the queue's interrupt). B > 1 means the drain coalesced
	// that many frame deliveries behind one interrupt.
	NICDrain
)

// Flow points (Event.B of a Flow event): where along its causal chain a
// span was observed.
const (
	// FlowBegin: the span was minted — an IPC send syscall entered.
	FlowBegin uint32 = iota
	// FlowCopy: a CopyWords transfer moved data along the span.
	FlowCopy
	// FlowShare: informational alias of FlowCopy for zero-copy runs
	// (reserved; the copy checkpoint covers both today).
	FlowShare
	// FlowWake: a rendezvous completion woke the span's next hop.
	FlowWake
	// FlowHandoff: the next hop was dispatched by direct handoff.
	FlowHandoff
	// FlowSteal: the next hop was stolen by another CPU.
	FlowSteal
	// FlowEnd: the owning thread's IPC syscall completed.
	FlowEnd

	// NumFlowPoints bounds the enum.
	NumFlowPoints
)

// FlowPointNames are the flow-point labels in constant order.
var FlowPointNames = [NumFlowPoints]string{
	"begin", "copy", "share", "wake", "handoff", "steal", "end",
}

// FlowPointName renders a flow point, tolerating out-of-range values.
func FlowPointName(p uint32) string {
	if p < NumFlowPoints {
		return FlowPointNames[p]
	}
	return fmt.Sprintf("point%d", p)
}

func (k Kind) String() string {
	switch k {
	case SyscallEnter:
		return "sys+"
	case SyscallExit:
		return "sys-"
	case CtxSwitch:
		return "switch"
	case Fault:
		return "fault"
	case Wake:
		return "wake"
	case Preempt:
		return "preempt"
	case ThreadExit:
		return "exit"
	case IRQ:
		return "irq"
	case IPI:
		return "ipi"
	case Steal:
		return "steal"
	case Handoff:
		return "handoff"
	case Share:
		return "share"
	case COWBreak:
		return "cowbreak"
	case Flow:
		return "flow"
	case NICDrain:
		return "nicdrain"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one trace record.
type Event struct {
	Time uint64 // virtual cycles (emitting CPU's local clock)
	TID  uint32 // current thread (0 = scheduler context)
	CPU  uint32 // emitting simulated CPU (its Perfetto lane)
	Kind Kind
	A, B uint32
}

// String renders an event one-per-line, times in µs.
func (e Event) String() string {
	detail := ""
	switch e.Kind {
	case SyscallEnter:
		detail = sys.Name(int(e.A))
		if e.B == 1 {
			detail += " (redispatch)"
		}
	case SyscallExit:
		detail = fmt.Sprintf("%s -> %v", sys.Name(int(e.A)), sys.KErr(e.B))
	case CtxSwitch, Wake, Handoff:
		detail = fmt.Sprintf("t%d", e.A)
	case Fault:
		side := "client"
		if e.B>>8 != 0 {
			side = "server"
		}
		class := fmt.Sprintf("class%d", e.B&0xFF)
		if names := [...]string{"fatal", "soft", "hard", "cow"}; e.B&0xFF < uint32(len(names)) {
			class = names[e.B&0xFF]
		}
		detail = fmt.Sprintf("%#x %s/%s", e.A, class, side)
	case Share:
		detail = fmt.Sprintf("%#x pfn=%d", e.A, e.B)
	case COWBreak:
		mode := "upgrade"
		if e.B != 0 {
			mode = "copy"
		}
		detail = fmt.Sprintf("%#x %s", e.A, mode)
	case Preempt:
		detail = [...]string{"user-boundary", "explicit-point", "in-kernel"}[e.A]
	case ThreadExit:
		detail = fmt.Sprintf("code=%#x", e.A)
	case IRQ:
		detail = fmt.Sprintf("line %d", e.A)
	case IPI:
		detail = fmt.Sprintf("-> cpu%d", e.A)
	case Steal:
		detail = fmt.Sprintf("t%d from cpu%d", e.B, e.A)
	case Flow:
		detail = fmt.Sprintf("span=%d %s", e.A, FlowPointName(e.B))
	case NICDrain:
		detail = fmt.Sprintf("queue %d frames=%d", e.A, e.B)
	}
	return fmt.Sprintf("[%12.2fus] c%d t%-3d %-7s %s", clock.Micros(e.Time), e.CPU, e.TID, e.Kind, detail)
}

// Ring is a bounded event buffer; when full, the oldest events are
// overwritten and counted as dropped.
type Ring struct {
	buf     []Event
	next    int
	filled  bool
	dropped uint64
}

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Add records an event.
func (r *Ring) Add(e Event) {
	if r.filled {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
}

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	if !r.filled {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Dump renders all retained events.
func (r *Ring) Dump() string {
	var b strings.Builder
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, "... %d earlier events dropped ...\n", d)
	}
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
