package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/obj"
)

func th(id uint32, prio int) *obj.Thread {
	return &obj.Thread{ID: id, Priority: prio, State: obj.ThReady}
}

func TestPickHighestPriority(t *testing.T) {
	rq := NewRunQueue()
	rq.Enqueue(th(1, 5))
	rq.Enqueue(th(2, 20))
	rq.Enqueue(th(3, 10))
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want 2", got.ID)
	}
	if got := rq.Pick(); got.ID != 3 {
		t.Fatalf("picked %d, want 3", got.ID)
	}
	if got := rq.Pick(); got.ID != 1 {
		t.Fatalf("picked %d, want 1", got.ID)
	}
	if rq.Pick() != nil {
		t.Fatal("empty queue returned a thread")
	}
}

func TestFIFOWithinLevel(t *testing.T) {
	rq := NewRunQueue()
	for i := uint32(1); i <= 4; i++ {
		rq.Enqueue(th(i, 7))
	}
	for i := uint32(1); i <= 4; i++ {
		if got := rq.Pick(); got.ID != i {
			t.Fatalf("picked %d, want %d", got.ID, i)
		}
	}
}

func TestEnqueueFront(t *testing.T) {
	rq := NewRunQueue()
	rq.Enqueue(th(1, 7))
	rq.EnqueueFront(th(2, 7))
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want preempted thread 2 first", got.ID)
	}
}

func TestStoppedThreadsSkipped(t *testing.T) {
	rq := NewRunQueue()
	a := th(1, 9)
	b := th(2, 9)
	a.Stopped = true
	rq.Enqueue(a)
	rq.Enqueue(b)
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want 2 (1 stopped)", got.ID)
	}
	if rq.Pick() != nil {
		t.Fatal("stopped thread was picked")
	}
}

func TestBlockedThreadsSkipped(t *testing.T) {
	rq := NewRunQueue()
	a := th(1, 9)
	rq.Enqueue(a)
	a.State = obj.ThBlocked
	if rq.Pick() != nil {
		t.Fatal("blocked thread was picked")
	}
}

func TestRemove(t *testing.T) {
	rq := NewRunQueue()
	a, b := th(1, 3), th(2, 3)
	rq.Enqueue(a)
	rq.Enqueue(b)
	if !rq.Remove(a) {
		t.Fatal("Remove(a) = false")
	}
	if rq.Remove(a) {
		t.Fatal("second Remove(a) = true")
	}
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want 2", got.ID)
	}
}

func TestTopPriority(t *testing.T) {
	rq := NewRunQueue()
	if _, ok := rq.TopPriority(); ok {
		t.Fatal("TopPriority on empty queue ok")
	}
	s := th(9, 31)
	s.Stopped = true
	rq.Enqueue(s)
	rq.Enqueue(th(1, 4))
	p, ok := rq.TopPriority()
	if !ok || p != 4 {
		t.Fatalf("TopPriority = %d,%v want 4,true (31 is stopped)", p, ok)
	}
}

func TestWakePolicy(t *testing.T) {
	if !WakePolicy(10, 5) {
		t.Fatal("higher priority should preempt")
	}
	if WakePolicy(5, 5) {
		t.Fatal("equal priority should not preempt")
	}
	if WakePolicy(4, 5) {
		t.Fatal("lower priority should not preempt")
	}
}

func TestPriorityRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range priority did not panic")
		}
	}()
	rq := NewRunQueue()
	rq.Enqueue(th(1, NumPriorities))
}

// Property: Pick drains threads in nonincreasing priority order.
func TestPropertyPickOrdering(t *testing.T) {
	f := func(prios []uint8) bool {
		rq := NewRunQueue()
		for i, p := range prios {
			rq.Enqueue(th(uint32(i), int(p)%NumPriorities))
		}
		last := NumPriorities
		for {
			x := rq.Pick()
			if x == nil {
				break
			}
			if x.Priority > last {
				return false
			}
			last = x.Priority
		}
		return rq.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every enqueued runnable thread is eventually picked exactly
// once.
func TestPropertyNoLossNoDup(t *testing.T) {
	f := func(prios []uint8) bool {
		rq := NewRunQueue()
		for i, p := range prios {
			rq.Enqueue(th(uint32(i), int(p)%NumPriorities))
		}
		seen := map[uint32]bool{}
		for {
			x := rq.Pick()
			if x == nil {
				break
			}
			if seen[x.ID] {
				return false
			}
			seen[x.ID] = true
		}
		return len(seen) == len(prios)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
