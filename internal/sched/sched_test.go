package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/obj"
)

func th(id uint32, prio int) *obj.Thread {
	return &obj.Thread{ID: id, Priority: prio, State: obj.ThReady}
}

func TestPickHighestPriority(t *testing.T) {
	rq := NewRunQueue()
	rq.Enqueue(th(1, 5))
	rq.Enqueue(th(2, 20))
	rq.Enqueue(th(3, 10))
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want 2", got.ID)
	}
	if got := rq.Pick(); got.ID != 3 {
		t.Fatalf("picked %d, want 3", got.ID)
	}
	if got := rq.Pick(); got.ID != 1 {
		t.Fatalf("picked %d, want 1", got.ID)
	}
	if rq.Pick() != nil {
		t.Fatal("empty queue returned a thread")
	}
}

func TestFIFOWithinLevel(t *testing.T) {
	rq := NewRunQueue()
	for i := uint32(1); i <= 4; i++ {
		rq.Enqueue(th(i, 7))
	}
	for i := uint32(1); i <= 4; i++ {
		if got := rq.Pick(); got.ID != i {
			t.Fatalf("picked %d, want %d", got.ID, i)
		}
	}
}

func TestEnqueueFront(t *testing.T) {
	rq := NewRunQueue()
	rq.Enqueue(th(1, 7))
	rq.EnqueueFront(th(2, 7))
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want preempted thread 2 first", got.ID)
	}
}

func TestStoppedThreadsSkipped(t *testing.T) {
	rq := NewRunQueue()
	a := th(1, 9)
	b := th(2, 9)
	a.Stopped = true
	rq.Enqueue(a)
	rq.Enqueue(b)
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want 2 (1 stopped)", got.ID)
	}
	if rq.Pick() != nil {
		t.Fatal("stopped thread was picked")
	}
}

func TestBlockedThreadsSkipped(t *testing.T) {
	rq := NewRunQueue()
	a := th(1, 9)
	rq.Enqueue(a)
	a.State = obj.ThBlocked
	if rq.Pick() != nil {
		t.Fatal("blocked thread was picked")
	}
}

func TestRemove(t *testing.T) {
	rq := NewRunQueue()
	a, b := th(1, 3), th(2, 3)
	rq.Enqueue(a)
	rq.Enqueue(b)
	if !rq.Remove(a) {
		t.Fatal("Remove(a) = false")
	}
	if rq.Remove(a) {
		t.Fatal("second Remove(a) = true")
	}
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked %d, want 2", got.ID)
	}
}

func TestTopPriority(t *testing.T) {
	rq := NewRunQueue()
	if _, ok := rq.TopPriority(); ok {
		t.Fatal("TopPriority on empty queue ok")
	}
	s := th(9, 31)
	s.Stopped = true
	rq.Enqueue(s)
	rq.Enqueue(th(1, 4))
	p, ok := rq.TopPriority()
	if !ok || p != 4 {
		t.Fatalf("TopPriority = %d,%v want 4,true (31 is stopped)", p, ok)
	}
}

func TestWakePolicy(t *testing.T) {
	if !WakePolicy(10, 5) {
		t.Fatal("higher priority should preempt")
	}
	if WakePolicy(5, 5) {
		t.Fatal("equal priority should not preempt")
	}
	if WakePolicy(4, 5) {
		t.Fatal("lower priority should not preempt")
	}
}

func TestPriorityRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range priority did not panic")
		}
	}()
	rq := NewRunQueue()
	rq.Enqueue(th(1, NumPriorities))
}

// Pick must skip — and drop — entries that went non-runnable while
// queued, in every combination: stopped, blocked, dead.
func TestPickSkipsNonRunnable(t *testing.T) {
	rq := NewRunQueue()
	stopped, blocked, dead, ok := th(1, 9), th(2, 9), th(3, 9), th(4, 9)
	rq.Enqueue(stopped)
	rq.Enqueue(blocked)
	rq.Enqueue(dead)
	rq.Enqueue(ok)
	stopped.Stopped = true
	blocked.State = obj.ThBlocked
	dead.State = obj.ThDead
	if got := rq.Pick(); got != ok {
		t.Fatalf("picked t%d, want t4", got.ID)
	}
	if rq.Pick() != nil {
		t.Fatal("non-runnable entry was picked")
	}
	if rq.Len() != 0 {
		t.Fatalf("stale entries not dropped: Len = %d", rq.Len())
	}
}

// EnqueueFront entries within one level come out LIFO relative to each
// other and ahead of every plain Enqueue, which stays FIFO.
func TestEnqueueFrontOrderingWithinLevel(t *testing.T) {
	rq := NewRunQueue()
	rq.Enqueue(th(1, 7))
	rq.Enqueue(th(2, 7))
	rq.EnqueueFront(th(3, 7))
	rq.EnqueueFront(th(4, 7))
	rq.Enqueue(th(5, 7))
	for _, want := range []uint32{4, 3, 1, 2, 5} {
		if got := rq.Pick(); got.ID != want {
			t.Fatalf("picked t%d, want t%d", got.ID, want)
		}
	}
}

// Stealing from an empty victim returns nil without disturbing counts.
func TestStealEmptyVictim(t *testing.T) {
	rq := NewRunQueue()
	if rq.Steal() != nil {
		t.Fatal("stole from an empty queue")
	}
	if rq.Len() != 0 {
		t.Fatalf("Len = %d after failed steal", rq.Len())
	}
	// A queue holding only stale entries is empty for Steal's purposes.
	s := th(1, 5)
	rq.Enqueue(s)
	s.Stopped = true
	if rq.Steal() != nil {
		t.Fatal("stole a stopped thread")
	}
	if rq.Len() != 0 {
		t.Fatalf("stale entry not dropped: Len = %d", rq.Len())
	}
}

// Steal takes the highest-priority runnable thread, from the tail of its
// level (the opposite end from Pick).
func TestStealPriorityAndEnd(t *testing.T) {
	rq := NewRunQueue()
	rq.Enqueue(th(1, 4))
	rq.Enqueue(th(2, 9))
	rq.Enqueue(th(3, 9))
	if got := rq.Steal(); got.ID != 3 {
		t.Fatalf("stole t%d, want tail t3 of top level", got.ID)
	}
	if got := rq.Pick(); got.ID != 2 {
		t.Fatalf("picked t%d, want t2", got.ID)
	}
	if got := rq.Steal(); got.ID != 1 {
		t.Fatalf("stole t%d, want t1", got.ID)
	}
}

// Remove must find a thread whose priority changed after it was queued.
func TestRemoveAfterPriorityChange(t *testing.T) {
	rq := NewRunQueue()
	a := th(1, 3)
	rq.Enqueue(a)
	a.Priority = 12
	if !rq.Remove(a) {
		t.Fatal("Remove lost a thread whose priority changed while queued")
	}
	if rq.Len() != 0 {
		t.Fatalf("Len = %d", rq.Len())
	}
}

// The EnqueueFront fix: re-queueing a preempted thread must not allocate
// (it used to prepend with append([]*obj.Thread{t}, ...) — one fresh
// slice per preemption).
func TestEnqueueFrontDoesNotAllocate(t *testing.T) {
	rq := NewRunQueue()
	ts := make([]*obj.Thread, 64)
	for i := range ts {
		ts[i] = th(uint32(i), 7)
		rq.Enqueue(ts[i]) // warm the ring
	}
	for range ts {
		rq.Pick()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, t := range ts {
			rq.EnqueueFront(t)
		}
		for range ts {
			rq.Pick()
		}
	})
	if allocs != 0 {
		t.Fatalf("EnqueueFront allocates: %v allocs/run, want 0", allocs)
	}
}

func BenchmarkEnqueueFront(b *testing.B) {
	rq := NewRunQueue()
	ts := make([]*obj.Thread, 256)
	for i := range ts {
		ts[i] = th(uint32(i), 7)
		rq.Enqueue(ts[i])
	}
	for range ts {
		rq.Pick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ts[i%len(ts)]
		rq.EnqueueFront(t)
		rq.Pick()
	}
}

func BenchmarkEnqueuePick(b *testing.B) {
	rq := NewRunQueue()
	ts := make([]*obj.Thread, 256)
	for i := range ts {
		ts[i] = th(uint32(i), i%NumPriorities)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq.Enqueue(ts[i%len(ts)])
		rq.Pick()
	}
}

// Property: Pick drains threads in nonincreasing priority order.
func TestPropertyPickOrdering(t *testing.T) {
	f := func(prios []uint8) bool {
		rq := NewRunQueue()
		for i, p := range prios {
			rq.Enqueue(th(uint32(i), int(p)%NumPriorities))
		}
		last := NumPriorities
		for {
			x := rq.Pick()
			if x == nil {
				break
			}
			if x.Priority > last {
				return false
			}
			last = x.Priority
		}
		return rq.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every enqueued runnable thread is eventually picked exactly
// once.
func TestPropertyNoLossNoDup(t *testing.T) {
	f := func(prios []uint8) bool {
		rq := NewRunQueue()
		for i, p := range prios {
			rq.Enqueue(th(uint32(i), int(p)%NumPriorities))
		}
		seen := map[uint32]bool{}
		for {
			x := rq.Pick()
			if x == nil {
				break
			}
			if seen[x.ID] {
				return false
			}
			seen[x.ID] = true
		}
		return len(seen) == len(prios)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
