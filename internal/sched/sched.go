// Package sched implements the kernel scheduler substrate: fixed-priority
// run queues with round-robin within a priority level, plus the preemption
// bookkeeping the five kernel configurations of the paper (Table 4) hook
// into.
package sched

import (
	"fmt"

	"repro/internal/obj"
)

// NumPriorities is the number of priority levels. Higher number = more
// urgent. The Table 6 high-priority latency thread runs at MaxPriority.
const NumPriorities = 32

// Priority aliases.
const (
	MinPriority     = 0
	DefaultPriority = 8
	MaxPriority     = NumPriorities - 1
)

// DefaultQuantum is the round-robin time slice in cycles (10 ms at
// 200 cycles/µs), in the spirit of a '90s kernel tick-based scheduler.
const DefaultQuantum = 10 * 1000 * 200

// RunQueue holds runnable threads ordered by priority, FIFO within a
// level.
type RunQueue struct {
	levels [NumPriorities][]*obj.Thread
	count  int
}

// NewRunQueue returns an empty run queue.
func NewRunQueue() *RunQueue { return &RunQueue{} }

func checkPrio(p int) {
	if p < 0 || p >= NumPriorities {
		panic(fmt.Sprintf("sched: priority %d out of range", p))
	}
}

// Enqueue appends t at the tail of its priority level.
func (rq *RunQueue) Enqueue(t *obj.Thread) {
	checkPrio(t.Priority)
	rq.levels[t.Priority] = append(rq.levels[t.Priority], t)
	rq.count++
}

// EnqueueFront puts t at the head of its priority level (a preempted
// thread that has not consumed its quantum).
func (rq *RunQueue) EnqueueFront(t *obj.Thread) {
	checkPrio(t.Priority)
	rq.levels[t.Priority] = append([]*obj.Thread{t}, rq.levels[t.Priority]...)
	rq.count++
}

// Pick removes and returns the highest-priority runnable thread, or nil.
// Threads that are stopped or no longer ready are dropped from the queue
// as they are encountered.
func (rq *RunQueue) Pick() *obj.Thread {
	for p := NumPriorities - 1; p >= 0; p-- {
		for len(rq.levels[p]) > 0 {
			t := rq.levels[p][0]
			copy(rq.levels[p], rq.levels[p][1:])
			rq.levels[p][len(rq.levels[p])-1] = nil
			rq.levels[p] = rq.levels[p][:len(rq.levels[p])-1]
			rq.count--
			if t.Runnable() {
				return t
			}
		}
	}
	return nil
}

// TopPriority returns the priority of the most urgent queued runnable
// thread and true, or 0 and false if the queue is empty.
func (rq *RunQueue) TopPriority() (int, bool) {
	for p := NumPriorities - 1; p >= 0; p-- {
		for _, t := range rq.levels[p] {
			if t.Runnable() {
				return p, true
			}
		}
	}
	return 0, false
}

// Remove unlinks t wherever it is queued. It reports whether t was found.
func (rq *RunQueue) Remove(t *obj.Thread) bool {
	for p := range rq.levels {
		for i, x := range rq.levels[p] {
			if x == t {
				copy(rq.levels[p][i:], rq.levels[p][i+1:])
				rq.levels[p][len(rq.levels[p])-1] = nil
				rq.levels[p] = rq.levels[p][:len(rq.levels[p])-1]
				rq.count--
				return true
			}
		}
	}
	return false
}

// Len returns the number of queued threads (including any stale entries
// not yet skipped by Pick).
func (rq *RunQueue) Len() int { return rq.count }

// WakePolicy decides whether a newly runnable thread at priority p should
// preempt the currently running thread at priority cur.
func WakePolicy(p, cur int) bool { return p > cur }
