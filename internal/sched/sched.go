// Package sched implements the kernel scheduler substrate: fixed-priority
// run queues with round-robin within a priority level, plus the preemption
// bookkeeping the five kernel configurations of the paper (Table 4) hook
// into. With NumCPUs > 1 the kernel holds one RunQueue per simulated CPU
// and rebalances with Steal.
package sched

import (
	"fmt"

	"repro/internal/obj"
)

// NumPriorities is the number of priority levels. Higher number = more
// urgent. The Table 6 high-priority latency thread runs at MaxPriority.
const NumPriorities = 32

// Priority aliases.
const (
	MinPriority     = 0
	DefaultPriority = 8
	MaxPriority     = NumPriorities - 1
)

// DefaultQuantum is the round-robin time slice in cycles (10 ms at
// 200 cycles/µs), in the spirit of a '90s kernel tick-based scheduler.
const DefaultQuantum = 10 * 1000 * 200

// deque is a growable ring buffer of threads: O(1) push/pop at both ends
// with no per-operation allocation once warm. A preempted thread re-queued
// at the front (EnqueueFront) therefore costs the same as a plain enqueue,
// instead of the O(n) slice prepend it used to be.
type deque struct {
	buf  []*obj.Thread
	head int // index of the first element
	n    int
}

func (d *deque) at(i int) *obj.Thread { return d.buf[(d.head+i)%len(d.buf)] }

func (d *deque) grow() {
	if d.n < len(d.buf) {
		return
	}
	newCap := 2 * len(d.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]*obj.Thread, newCap)
	for i := 0; i < d.n; i++ {
		buf[i] = d.at(i)
	}
	d.buf, d.head = buf, 0
}

func (d *deque) pushBack(t *obj.Thread) {
	d.grow()
	d.buf[(d.head+d.n)%len(d.buf)] = t
	d.n++
}

func (d *deque) pushFront(t *obj.Thread) {
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = t
	d.n++
}

func (d *deque) popFront() *obj.Thread {
	t := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return t
}

func (d *deque) popBack() *obj.Thread {
	i := (d.head + d.n - 1) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = nil
	d.n--
	return t
}

// removeAt unlinks position i preserving FIFO order of the rest.
func (d *deque) removeAt(i int) {
	for ; i < d.n-1; i++ {
		d.buf[(d.head+i)%len(d.buf)] = d.at(i + 1)
	}
	d.popBack()
}

// RunQueue holds runnable threads ordered by priority, FIFO within a
// level. It also carries the IPC fast path's donation slot: a single
// thread staged for a direct handoff, dispatched ahead of every queued
// thread (it inherits the donor's remaining slice rather than competing
// for a fresh one) and invisible to Steal (the donation is to *this*
// CPU; migrating it would forfeit the warm-cache win the handoff models).
type RunQueue struct {
	levels  [NumPriorities]deque
	count   int
	donated *obj.Thread
}

// NewRunQueue returns an empty run queue.
func NewRunQueue() *RunQueue { return &RunQueue{} }

func checkPrio(p int) {
	if p < 0 || p >= NumPriorities {
		panic(fmt.Sprintf("sched: priority %d out of range", p))
	}
}

// Enqueue appends t at the tail of its priority level.
func (rq *RunQueue) Enqueue(t *obj.Thread) {
	checkPrio(t.Priority)
	rq.levels[t.Priority].pushBack(t)
	rq.count++
}

// EnqueueFront puts t at the head of its priority level (a preempted
// thread that has not consumed its quantum).
func (rq *RunQueue) EnqueueFront(t *obj.Thread) {
	checkPrio(t.Priority)
	rq.levels[t.Priority].pushFront(t)
	rq.count++
}

// Donate stages t in the donation slot for a direct handoff. It reports
// whether the slot was free; on false the caller must fall back to a
// plain Enqueue (at most one handoff can be pending per CPU).
func (rq *RunQueue) Donate(t *obj.Thread) bool {
	if rq.donated != nil {
		return false
	}
	rq.donated = t
	t.Donated = true
	return true
}

// TakeDonation removes and returns the staged handoff target, or nil.
// A thread that went non-runnable while staged is dropped, exactly as
// Pick drops stale queue entries.
func (rq *RunQueue) TakeDonation() *obj.Thread {
	t := rq.donated
	rq.donated = nil
	if t == nil {
		return nil
	}
	t.Donated = false
	if !t.Runnable() {
		return nil
	}
	return t
}

// Donation returns the staged handoff target without removing it.
func (rq *RunQueue) Donation() *obj.Thread { return rq.donated }

// Pick removes and returns the highest-priority runnable thread, or nil.
// Threads that are stopped or no longer ready are dropped from the queue
// as they are encountered.
func (rq *RunQueue) Pick() *obj.Thread {
	for p := NumPriorities - 1; p >= 0; p-- {
		for rq.levels[p].n > 0 {
			t := rq.levels[p].popFront()
			rq.count--
			if t.Runnable() {
				return t
			}
		}
	}
	return nil
}

// Steal removes and returns the highest-priority runnable thread from the
// tail of its level — the cold end, opposite the one Pick drains — or nil
// if the queue holds no runnable thread. Stale entries encountered at the
// tail are dropped, exactly as Pick drops them at the head.
func (rq *RunQueue) Steal() *obj.Thread {
	for p := NumPriorities - 1; p >= 0; p-- {
		for rq.levels[p].n > 0 {
			t := rq.levels[p].popBack()
			rq.count--
			if t.Runnable() {
				return t
			}
		}
	}
	return nil
}

// TopPriority returns the priority of the most urgent queued runnable
// thread and true, or 0 and false if the queue is empty.
func (rq *RunQueue) TopPriority() (int, bool) {
	for p := NumPriorities - 1; p >= 0; p-- {
		d := &rq.levels[p]
		for i := 0; i < d.n; i++ {
			if d.at(i).Runnable() {
				return p, true
			}
		}
	}
	return 0, false
}

// Remove unlinks t wherever it is queued. It reports whether t was found.
func (rq *RunQueue) Remove(t *obj.Thread) bool {
	if rq.donated == t {
		rq.donated = nil
		t.Donated = false
		return true
	}
	d := &rq.levels[t.Priority]
	for i := 0; i < d.n; i++ {
		if d.at(i) == t {
			d.removeAt(i)
			rq.count--
			return true
		}
	}
	// The thread's priority may have changed while queued; sweep the rest.
	for p := range rq.levels {
		if p == t.Priority {
			continue
		}
		d := &rq.levels[p]
		for i := 0; i < d.n; i++ {
			if d.at(i) == t {
				d.removeAt(i)
				rq.count--
				return true
			}
		}
	}
	return false
}

// Len returns the number of queued threads (including any stale entries
// not yet skipped by Pick, and a staged donation if one is pending).
func (rq *RunQueue) Len() int {
	if rq.donated != nil {
		return rq.count + 1
	}
	return rq.count
}

// WakePolicy decides whether a newly runnable thread at priority p should
// preempt the currently running thread at priority cur.
func WakePolicy(p, cur int) bool { return p > cur }
