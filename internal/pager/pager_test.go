package pager_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/pager"
	"repro/internal/prog"
	"repro/internal/sys"
)

// setup builds a kernel with a pager-backed region mapped at base in a
// client space, with the pager living in the same space.
func setup(t *testing.T, cfg core.Config, pages int, base uint32) (*core.Kernel, *obj.Space, *pager.Pager) {
	t.Helper()
	k := core.New(cfg)
	s := k.NewSpace()
	reg := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(uint32(pages)*mem.PageSize, false)}
	k.BindFresh(s, reg)
	if _, err := k.MapInto(s, reg, base, 0, uint32(pages)*mem.PageSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	p, err := pager.Install(k, s, reg, pager.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k, s, p
}

func TestPagerServesSequentialTouches(t *testing.T) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			const base = 0x0200_0000
			const pages = 6
			k, s, p := setup(t, cfg, pages, base)
			// Client walks one byte per page, writing then reading.
			b := prog.New(0x0001_0000)
			b.Movi(6, 0). // page index
					Label("loop").
					Movi(5, pages)
			b.Beq(6, 5, "done")
			b.Movi(4, base).
				Movi(3, 12).Shl(2, 6, 3). // r2 = idx << 12
				Add(4, 4, 2).
				Movi(5, 0xA5).Stb(4, 0, 5).
				Ldb(5, 4, 0).
				Addi(6, 6, 1).
				Jmp("loop").
				Label("done").Halt()
			th, err := k.SpawnProgram(s, 0x0001_0000, b.MustAssemble(), 8)
			if err != nil {
				t.Fatal(err)
			}
			k.RunFor(2_000_000_000)
			if !th.Exited {
				t.Fatalf("client stuck: state=%v pc=%#x r0=%d pager=%v",
					th.State, th.Regs.PC, th.Regs.R[0], p.Thread.State)
			}
			if got := p.PresentPages(); got != pages {
				t.Fatalf("pages served = %d, want %d", got, pages)
			}
			hard := k.Stats().FaultCount[core.FaultKey{Class: mmu.FaultHard, Side: core.FaultSame}]
			if hard < pages {
				t.Fatalf("hard faults %d < %d", hard, pages)
			}
		})
	}
}

func TestPagerRemedyTimeRecorded(t *testing.T) {
	const base = 0x0200_0000
	k, s, _ := setup(t, core.Config{Model: core.ModelProcess}, 2, base)
	b := prog.New(0x0001_0000)
	b.Movi(4, base).Ldb(5, 4, 0).Halt()
	th, err := k.SpawnProgram(s, 0x0001_0000, b.MustAssemble(), 8)
	if err != nil {
		t.Fatal(err)
	}
	k.RunFor(1_000_000_000)
	if !th.Exited {
		t.Fatal("client stuck")
	}
	key := core.FaultKey{Class: mmu.FaultHard, Side: core.FaultSame}
	if k.Stats().FaultCount[key] == 0 {
		t.Fatal("no hard fault")
	}
	remedy := float64(k.Stats().FaultRemedy[key]) / float64(k.Stats().FaultCount[key]) / 200
	// Table 3 target: ~118 µs for a client-side hard fault. Accept a
	// generous band here; EXPERIMENTS.md records the precise value.
	if remedy < 60 || remedy > 400 {
		t.Fatalf("hard fault remedy = %.1f µs, outside plausible band", remedy)
	}
}

func TestPagerDiesOnPortsetDestroy(t *testing.T) {
	const base = 0x0200_0000
	k, _, p := setup(t, core.Config{Model: core.ModelInterrupt}, 2, base)
	k.RunFor(1_000_000) // pager blocks accepting
	if p.Thread.State != obj.ThBlocked {
		t.Fatalf("pager state %v", p.Thread.State)
	}
	// Destroying the portset wakes the pager, which observes the error
	// and exits.
	p.Portset.Dead = true
	for p.Portset.Servers.Len() > 0 {
		k.WakeThread(p.Portset.Servers.Peek())
	}
	k.RunFor(10_000_000)
	if !p.Thread.Exited {
		t.Fatalf("pager did not exit: %v pc=%#x", p.Thread.State, p.Thread.Regs.PC)
	}
}
