// Package pager provides a reusable user-mode memory manager: a guest
// program that serves hard page faults on a region over exception IPC,
// exactly the arrangement the paper's memtest workload runs under ("a
// memory manager which allocates memory on demand, exercising kernel
// fault handling and the exception IPC facility", §5.3).
//
// The kernel converts a hard fault into a two-word notification message
// queued on the pager port; the pager thread receives it with
// ipc_wait_receive, installs a zero page with mem_allocate, and the
// faulting thread restarts transparently from its rolled-forward state.
package pager

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Config places the pager's code and data in its space.
type Config struct {
	// CodeBase is where the pager program is loaded.
	CodeBase uint32
	// DataBase is a one-page scratch window for fault messages.
	DataBase uint32
	// Priority of the pager thread; it should exceed its clients' so
	// fault service is prompt.
	Priority int
}

// DefaultConfig returns placement that avoids the usual client layout.
func DefaultConfig() Config {
	return Config{CodeBase: 0x00F0_0000, DataBase: 0x00F8_0000, Priority: 16}
}

// Pager is an installed user-mode memory manager.
type Pager struct {
	Thread  *obj.Thread
	Port    *obj.Port
	Portset *obj.Portset
	Region  *obj.Region

	// Served can be read after a run: the number of fault messages the
	// pager processed, exported via the region's populated page count.
	k *core.Kernel
}

// Install attaches a new user-mode pager (port, portset, and server
// thread in space s) to the given region object. Hard faults anywhere the
// region is mapped are serviced by the pager thread.
func Install(k *core.Kernel, s *obj.Space, reg *obj.Region, cfg Config) (*Pager, error) {
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port := po.(*obj.Port)
	ps := pso.(*obj.Portset)
	k.BindFresh(s, port)
	psVA := k.BindFresh(s, ps)
	if e := ps.AddPort(port); e != sys.EOK {
		return nil, fmt.Errorf("pager: portset add: %v", e)
	}
	regVA := k.BindFresh(s, reg)
	k.AttachPager(reg, port)

	// Scratch page for fault messages.
	scratch := &obj.Region{
		Header: obj.Header{Type: sys.ObjRegion},
		R:      mmu.NewRegion(mem.PageSize, true),
	}
	k.BindFresh(s, scratch)
	if _, err := k.MapInto(s, scratch, cfg.DataBase, 0, mem.PageSize, mmu.PermRW); err != nil {
		return nil, err
	}
	// Pre-touch the scratch page so fault-message delivery never takes
	// a fault of its own (keeps experiment fault counts clean).
	if err := k.WriteMem(s, cfg.DataBase, make([]byte, 8)); err != nil {
		return nil, err
	}

	b := Program(cfg.CodeBase, cfg.DataBase, psVA, regVA)
	th, err := k.SpawnProgram(s, cfg.CodeBase, b.MustAssemble(), cfg.Priority)
	if err != nil {
		return nil, err
	}
	return &Pager{Thread: th, Port: port, Portset: ps, Region: reg, k: k}, nil
}

// Program builds the pager service loop: receive a fault notification,
// install a zero page at the faulting offset, repeat.
func Program(codeBase, buf, psVA, regVA uint32) *prog.Builder {
	b := prog.New(codeBase)
	b.Label("loop").
		IPCWaitReceive(buf, 2, psVA).
		// R0 != EOK (e.g. portset destroyed): exit.
		Movi(5, 0)
	b.Bne(0, 5, "die")
	b.Movi(1, regVA).
		Movi(4, buf).Ld(2, 4, 0). // faulting offset from the message
		Movi(3, 1).
		Syscall(sys.NMemAllocate).
		Jmp("loop").
		Label("die").
		Halt()
	return b
}

// PresentPages reports how many pages of the managed region have been
// populated (a proxy for faults served).
func (p *Pager) PresentPages() int { return p.Region.R.PresentPages() }
