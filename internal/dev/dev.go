// Package dev implements a virtual DMA block device and its user-mode
// driver — the paper's §5.6 scenario made concrete: device driver code
// runs as an ordinary thread ("in user mode but in the kernel's address
// space" in Fluke; an ordinary space here), fields interrupts through
// irq_wait (interrupt dispatch to threads, as in L3/VSTa, §5.2), and
// serves clients over the same IPC the rest of the system uses. Driver
// service latency is therefore exactly the preemption latency Table 6
// measures.
//
// The device exposes a word-addressed register window (mapped with
// mmu.MapIO), masters DMA into an ordinary memory Region, and raises a
// virtual interrupt line on completion after a configurable latency in
// simulated cycles.
package dev

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// SectorSize is the device's sector size in bytes.
const SectorSize = 512

// Device register offsets (bytes, word-aligned).
const (
	RegCmd    = 0x00 // write CmdRead/CmdWrite to start an operation
	RegSector = 0x04 // first sector number
	RegCount  = 0x08 // sectors to transfer (0 treated as 1)
	RegStatus = 0x0C // read-only: see Status* constants
	RegDMAOff = 0x10 // byte offset into the DMA region
	RegIRQAck = 0x14 // write 1 to acknowledge a completion
)

// Commands.
const (
	CmdRead  = 1 // medium -> DMA region
	CmdWrite = 2 // DMA region -> medium
)

// Status values.
const (
	StatusIdle = 0
	StatusBusy = 1
	StatusDone = 2
	StatusErr  = 3
)

// DefaultLatency is the per-operation completion latency: 200 µs of
// simulated time, a fast late-90s disk cache hit.
const DefaultLatency = 200 * clock.CyclesPerMicrosecond

// BlockDevice is the virtual device. It implements mmu.IOHandler.
type BlockDevice struct {
	clk     *clock.Clock
	alloc   *mem.Allocator
	raise   func() // completion interrupt
	store   []byte // the medium
	dma     *mmu.Region
	latency uint64

	sector, count, dmaoff uint32
	status                uint32
	pendingCmd            uint32

	// Stats.
	Reads, Writes, Errors uint64
}

// New creates a device with capacity sectors of backing medium, mastering
// DMA into dma, raising completions via raise. latency 0 selects
// DefaultLatency.
func New(clk *clock.Clock, alloc *mem.Allocator, capacity int, dma *mmu.Region, latency uint64, raise func()) *BlockDevice {
	if latency == 0 {
		latency = DefaultLatency
	}
	return &BlockDevice{
		clk: clk, alloc: alloc, raise: raise,
		store: make([]byte, capacity*SectorSize),
		dma:   dma, latency: latency,
	}
}

// Capacity returns the medium size in sectors.
func (d *BlockDevice) Capacity() int { return len(d.store) / SectorSize }

// LoadMedium writes host bytes onto the medium (formatting/test fixture).
func (d *BlockDevice) LoadMedium(sector int, data []byte) error {
	off := sector * SectorSize
	if off < 0 || off+len(data) > len(d.store) {
		return fmt.Errorf("dev: LoadMedium beyond capacity")
	}
	copy(d.store[off:], data)
	return nil
}

// ReadMedium returns a copy of n bytes of the medium at sector.
func (d *BlockDevice) ReadMedium(sector, n int) []byte {
	out := make([]byte, n)
	copy(out, d.store[sector*SectorSize:])
	return out
}

// IORead32 implements mmu.IOHandler.
func (d *BlockDevice) IORead32(off uint32) uint32 {
	switch off {
	case RegCmd:
		return d.pendingCmd
	case RegSector:
		return d.sector
	case RegCount:
		return d.count
	case RegStatus:
		return d.status
	case RegDMAOff:
		return d.dmaoff
	default:
		return 0xFFFF_FFFF
	}
}

// IOWrite32 implements mmu.IOHandler.
func (d *BlockDevice) IOWrite32(off uint32, v uint32) {
	switch off {
	case RegSector:
		d.sector = v
	case RegCount:
		d.count = v
	case RegDMAOff:
		d.dmaoff = v
	case RegIRQAck:
		if d.status == StatusDone || d.status == StatusErr {
			d.status = StatusIdle
		}
	case RegCmd:
		d.startOp(v)
	}
}

func (d *BlockDevice) startOp(cmd uint32) {
	if d.status == StatusBusy {
		d.status = StatusErr
		d.Errors++
		d.raise()
		return
	}
	if cmd != CmdRead && cmd != CmdWrite {
		d.status = StatusErr
		d.Errors++
		d.raise()
		return
	}
	d.pendingCmd = cmd
	d.status = StatusBusy
	d.clk.After(d.latency, func(uint64) { d.complete() })
}

func (d *BlockDevice) complete() {
	cmd := d.pendingCmd
	d.pendingCmd = 0
	n := d.count
	if n == 0 {
		n = 1
	}
	bytes := int(n) * SectorSize
	mediumOff := int(d.sector) * SectorSize
	if mediumOff+bytes > len(d.store) || d.dmaoff%4 != 0 {
		d.status = StatusErr
		d.Errors++
		d.raise()
		return
	}
	var err error
	if cmd == CmdRead {
		err = d.dmaWrite(d.dmaoff, d.store[mediumOff:mediumOff+bytes])
		d.Reads++
	} else {
		err = d.dmaRead(d.dmaoff, d.store[mediumOff:mediumOff+bytes])
		d.Writes++
	}
	if err != nil {
		d.status = StatusErr
		d.Errors++
	} else {
		d.status = StatusDone
	}
	d.raise()
}

// dmaWrite masters data into the DMA region, allocating zero frames for
// absent pages (the device writes RAM; no faulting is possible).
func (d *BlockDevice) dmaWrite(off uint32, data []byte) error {
	for i := 0; i < len(data); {
		po := mem.PageTrunc(off + uint32(i))
		f := d.dma.FrameAt(po)
		if f == nil {
			var err error
			f, err = d.alloc.Alloc()
			if err != nil {
				return err
			}
			d.dma.Populate(po, f)
		}
		inPage := int(off) + i - int(po)
		n := copy(f.Data[inPage:], data[i:])
		f.Bump()            // direct write: invalidate derived decodes
		d.dma.MarkDirty(po) // DMA bypasses the MMU's dirty-page log too
		i += n
	}
	return nil
}

// dmaRead masters data out of the DMA region; absent pages read as zero.
func (d *BlockDevice) dmaRead(off uint32, dst []byte) error {
	for i := 0; i < len(dst); {
		po := mem.PageTrunc(off + uint32(i))
		inPage := int(off) + i - int(po)
		f := d.dma.FrameAt(po)
		var n int
		if f == nil {
			end := int(mem.PageSize) - inPage
			if end > len(dst)-i {
				end = len(dst) - i
			}
			for j := 0; j < end; j++ {
				dst[i+j] = 0
			}
			n = end
		} else {
			n = copy(dst[i:], f.Data[inPage:])
		}
		i += n
	}
	return nil
}

var _ mmu.IOHandler = (*BlockDevice)(nil)
