package dev_test

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// --- Unit tests against the bare device (no kernel). ---

type devRig struct {
	clk   *clock.Clock
	d     *dev.BlockDevice
	irqs  int
	alloc *mem.Allocator
	dma   *mmu.Region
}

func newRig(t *testing.T, sectors int) *devRig {
	t.Helper()
	r := &devRig{clk: clock.New(), alloc: mem.NewAllocator(64)}
	r.dma = mmu.NewRegion(mem.PageSize, true)
	r.d = dev.New(r.clk, r.alloc, sectors, r.dma, 1000, func() { r.irqs++ })
	return r
}

func TestDeviceReadDMA(t *testing.T) {
	r := newRig(t, 8)
	want := bytes.Repeat([]byte{0xA5}, dev.SectorSize)
	if err := r.d.LoadMedium(3, want); err != nil {
		t.Fatal(err)
	}
	r.d.IOWrite32(dev.RegSector, 3)
	r.d.IOWrite32(dev.RegCount, 1)
	r.d.IOWrite32(dev.RegDMAOff, 0)
	r.d.IOWrite32(dev.RegCmd, dev.CmdRead)
	if got := r.d.IORead32(dev.RegStatus); got != dev.StatusBusy {
		t.Fatalf("status %d, want busy", got)
	}
	r.clk.Advance(999)
	if r.irqs != 0 {
		t.Fatal("completed early")
	}
	r.clk.Advance(1)
	if r.irqs != 1 {
		t.Fatal("no completion IRQ")
	}
	if got := r.d.IORead32(dev.RegStatus); got != dev.StatusDone {
		t.Fatalf("status %d, want done", got)
	}
	f := r.dma.FrameAt(0)
	if f == nil || !bytes.Equal(f.Data[:dev.SectorSize], want) {
		t.Fatal("DMA data wrong")
	}
	// Ack clears the status.
	r.d.IOWrite32(dev.RegIRQAck, 1)
	if got := r.d.IORead32(dev.RegStatus); got != dev.StatusIdle {
		t.Fatalf("status after ack %d, want idle", got)
	}
	if r.d.Reads != 1 {
		t.Fatalf("Reads=%d", r.d.Reads)
	}
}

func TestDeviceWriteDMA(t *testing.T) {
	r := newRig(t, 8)
	// Put data in the DMA region, write it to sector 5.
	f, _ := r.alloc.Alloc()
	for i := range f.Data[:dev.SectorSize] {
		f.Data[i] = byte(i)
	}
	r.dma.Populate(0, f)
	r.d.IOWrite32(dev.RegSector, 5)
	r.d.IOWrite32(dev.RegCmd, dev.CmdWrite) // count 0 -> 1
	r.clk.Advance(1000)
	got := r.d.ReadMedium(5, dev.SectorSize)
	if got[0] != 0 || got[17] != 17 || got[255] != 255 {
		t.Fatalf("medium contents wrong: %v...", got[:4])
	}
	if r.d.Writes != 1 {
		t.Fatalf("Writes=%d", r.d.Writes)
	}
}

func TestDeviceErrors(t *testing.T) {
	r := newRig(t, 2)
	// Out-of-range sector.
	r.d.IOWrite32(dev.RegSector, 99)
	r.d.IOWrite32(dev.RegCmd, dev.CmdRead)
	r.clk.Advance(2000)
	if got := r.d.IORead32(dev.RegStatus); got != dev.StatusErr {
		t.Fatalf("status %d, want error", got)
	}
	r.d.IOWrite32(dev.RegIRQAck, 1)
	// Bad command.
	r.d.IOWrite32(dev.RegCmd, 77)
	if got := r.d.IORead32(dev.RegStatus); got != dev.StatusErr {
		t.Fatalf("bad command status %d, want error", got)
	}
	r.d.IOWrite32(dev.RegIRQAck, 1)
	// Command while busy.
	r.d.IOWrite32(dev.RegSector, 0)
	r.d.IOWrite32(dev.RegCmd, dev.CmdRead)
	r.d.IOWrite32(dev.RegCmd, dev.CmdRead)
	if got := r.d.IORead32(dev.RegStatus); got != dev.StatusErr {
		t.Fatalf("busy-collision status %d, want error", got)
	}
	if r.d.Errors != 3 {
		t.Fatalf("Errors=%d, want 3", r.d.Errors)
	}
}

func TestMMIOWindowSemantics(t *testing.T) {
	r := newRig(t, 2)
	as := mmu.NewAddrSpace(r.alloc)
	if err := as.MapIO(0xD000_0000, mem.PageSize, r.d); err != nil {
		t.Fatal(err)
	}
	if as.IOWindows() != 1 {
		t.Fatal("window not installed")
	}
	// Word access reaches the device.
	if f := as.Store32(0xD000_0000+dev.RegSector, 1); f != nil {
		t.Fatal(f)
	}
	if v, f := as.Load32(0xD000_0000 + dev.RegSector); f != nil || v != 1 {
		t.Fatalf("register readback v=%d f=%v", v, f)
	}
	// Misaligned word access faults.
	if _, f := as.Load32(0xD000_0002); f == nil {
		t.Fatal("misaligned MMIO load did not fault")
	}
	// Overlapping windows rejected.
	if err := as.MapIO(0xD000_0000, mem.PageSize, r.d); err == nil {
		t.Fatal("overlapping IO window accepted")
	}
}

// --- Full-stack integration: client -> IPC -> driver -> MMIO/IRQ/DMA. ---

const (
	cliCode = 0x0001_0000
	cliData = 0x0004_0000
)

func TestDriverServesSectorReads(t *testing.T) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			k := core.New(cfg)
			dr, err := dev.Attach(k, 64, 5, 0, 16)
			if err != nil {
				t.Fatal(err)
			}
			// Format sector 7 with a recognizable pattern.
			pattern := make([]byte, dev.SectorSize)
			for i := range pattern {
				pattern[i] = byte(i * 3)
			}
			if err := dr.Device.LoadMedium(7, pattern); err != nil {
				t.Fatal(err)
			}

			// Client space.
			cs := k.NewSpace()
			data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(4*mem.PageSize, true)}
			k.BindFresh(cs, data)
			if _, err := k.MapInto(cs, data, cliData, 0, 4*mem.PageSize, mmu.PermRW); err != nil {
				t.Fatal(err)
			}
			refVA := dr.ClientRef(k, cs)

			const (
				req = cliData + 0x100
				rep = cliData + 0x1000
			)
			b := prog.New(cliCode)
			b.Movi(4, req).Movi(5, 7).St(4, 0, 5). // sector 7
								IPCClientConnectSendOverReceive(req, 1, refVA, rep, dev.SectorSize/4).
								Movi(6, cliData).St(6, 0, 0). // RPC errno
								IPCClientDisconnect().
								Halt()
			client, err := k.SpawnProgram(cs, cliCode, b.MustAssemble(), 10)
			if err != nil {
				t.Fatal(err)
			}
			k.RunFor(2_000_000_000)
			if !client.Exited {
				t.Fatalf("client stuck: state=%v pc=%#x driver=%v/%#x",
					client.State, client.Regs.PC, dr.Thread.State, dr.Thread.Regs.PC)
			}
			out, err := k.ReadMem(cs, rep, dev.SectorSize)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, pattern) {
				t.Fatalf("sector data corrupted in flight: got %v... want %v...", out[:8], pattern[:8])
			}
			if dr.Device.Reads != 1 {
				t.Fatalf("device reads = %d", dr.Device.Reads)
			}
		})
	}
}

func TestDriverServesManyClients(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial})
	dr, err := dev.Attach(k, 64, 5, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		sec := make([]byte, dev.SectorSize)
		for i := range sec {
			sec[i] = byte(s)
		}
		if err := dr.Device.LoadMedium(s, sec); err != nil {
			t.Fatal(err)
		}
	}
	// Three clients each read "their" sector several times.
	var clients []*obj.Thread
	spaces := make([]*obj.Space, 3)
	for c := 0; c < 3; c++ {
		cs := k.NewSpace()
		spaces[c] = cs
		data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(4*mem.PageSize, true)}
		k.BindFresh(cs, data)
		if _, err := k.MapInto(cs, data, cliData, 0, 4*mem.PageSize, mmu.PermRW); err != nil {
			t.Fatal(err)
		}
		refVA := dr.ClientRef(k, cs)
		b := prog.New(cliCode)
		b.Movi(6, 0).Label("loop").
			Movi(4, cliData+0x100).Movi(5, uint32(c)).St(4, 0, 5).
			IPCClientConnectSendOverReceive(cliData+0x100, 1, refVA, cliData+0x1000, dev.SectorSize/4).
			IPCClientDisconnect().
			Addi(6, 6, 1).Movi(5, 4).Blt(6, 5, "loop").
			// Publish first reply byte for checking.
			Movi(4, cliData+0x1000).Ldb(5, 4, 0).
			Movi(4, cliData).Stb(4, 0, 5).
			Halt()
		th, err := k.SpawnProgram(cs, cliCode, b.MustAssemble(), 10)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, th)
	}
	k.RunFor(4_000_000_000)
	for c, th := range clients {
		if !th.Exited {
			t.Fatalf("client %d stuck (state=%v pc=%#x)", c, th.State, th.Regs.PC)
		}
		out, err := k.ReadMem(spaces[c], cliData, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != byte(c) {
			t.Fatalf("client %d read sector byte %d", c, out[0])
		}
	}
	if dr.Device.Reads != 12 {
		t.Fatalf("device reads = %d, want 12", dr.Device.Reads)
	}
}

func TestIRQLatchPreventsLostCompletion(t *testing.T) {
	// Raise with no waiter, then wait: the latched edge must complete the
	// wait immediately (the driver race the latch exists for).
	k := core.New(core.Config{Model: core.ModelProcess})
	s := k.NewSpace()
	b := prog.New(cliCode)
	b.ThreadSleepUS(1000). // IRQ fires while we sleep
				IRQWait(2).
				Movi(1, 99).
				Halt()
	th, err := k.SpawnProgram(s, cliCode, b.MustAssemble(), 10)
	if err != nil {
		t.Fatal(err)
	}
	k.Clock.After(100*200, func(uint64) { k.RaiseIRQ(2) }) // at 100 µs
	k.RunFor(1_000_000_000)
	if !th.Exited || th.ExitCode != 99 {
		t.Fatalf("latched IRQ lost: state=%v exited=%v", th.State, th.Exited)
	}
}
