package dev

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/sys"
)

// Attach glue shared by every simulated device: the block device below
// and the NIC (and its user-mode network server in internal/netsrv)
// build their driver spaces from the same parts — an IRQ raiser, a DMA
// region mapped and pre-touched, a register window, a scratch page, and
// a service port on a fresh portset. Each helper does exactly what the
// original block-device Attach did inline, in the same order, so handle
// VAs and memory layout are unchanged.

// IRQRaiser validates line against the kernel's interrupt lines and
// returns a closure raising it. Devices must only call the closure from
// timer callbacks (which fire under the kernel gate), never directly
// from an IOWrite32 — register writes arrive on the guest's execution
// path, outside the gate under ParallelHost.
func IRQRaiser(k *core.Kernel, line int) (func(), error) {
	if line < 0 || line >= core.NumIRQLines {
		return nil, fmt.Errorf("dev: IRQ line %d out of range", line)
	}
	return func() { k.RaiseIRQ(line) }, nil
}

// MapDMA binds a fresh demand-zero region of dmaBytes to s, maps it RW
// at va, and pre-touches every page so driver code sending replies
// straight out of the DMA window never faults on it.
func MapDMA(k *core.Kernel, s *obj.Space, va, dmaBytes uint32) (*obj.Region, error) {
	dmaBytes = mem.PageRound(dmaBytes)
	reg := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(dmaBytes, true)}
	k.BindFresh(s, reg)
	if _, err := k.MapInto(s, reg, va, 0, dmaBytes, mmu.PermRW); err != nil {
		return nil, err
	}
	if err := k.WriteMem(s, va, make([]byte, dmaBytes)); err != nil {
		return nil, err
	}
	return reg, nil
}

// MapRegisters installs a device register window of ioBytes (rounded up
// to whole pages) at va.
func MapRegisters(s *obj.Space, va, ioBytes uint32, h mmu.IOHandler) error {
	return s.AS.MapIO(va, mem.PageRound(ioBytes), h)
}

// MapScratch binds a one-page demand-zero scratch/request region at va
// and touches its head so request buffers are resident.
func MapScratch(k *core.Kernel, s *obj.Space, va uint32) (*obj.Region, error) {
	reg := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(mem.PageSize, true)}
	k.BindFresh(s, reg)
	if _, err := k.MapInto(s, reg, va, 0, mem.PageSize, mmu.PermRW); err != nil {
		return nil, err
	}
	if err := k.WriteMem(s, va, make([]byte, 64)); err != nil {
		return nil, err
	}
	return reg, nil
}

// NewServicePort binds a fresh port and a portset holding it to s and
// returns them with the portset's handle VA — the service loop's
// wait_receive anchor. Clients reach the port through a Reference (see
// BindClientRef).
func NewServicePort(k *core.Kernel, s *obj.Space) (*obj.Port, *obj.Portset, uint32) {
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port := po.(*obj.Port)
	ps := pso.(*obj.Portset)
	k.BindFresh(s, port)
	psVA := k.BindFresh(s, ps)
	ps.AddPort(port)
	return port, ps, psVA
}

// BindClientRef binds a Reference to port into a client space and
// returns its handle VA.
func BindClientRef(k *core.Kernel, client *obj.Space, port *obj.Port) uint32 {
	ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
	return k.BindFresh(client, ref)
}
