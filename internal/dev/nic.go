package dev

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/mmu"
	"repro/internal/trace"
)

// NIC is a simulated multi-queue network interface with TX/RX descriptor
// rings in guest memory. Each queue owns a DMA region (rings plus frame
// buffers — ordinary pages, so the mem/mmu machinery applies unchanged),
// a doorbell register block reached through mmu.MapIO, and a virtual
// interrupt line. The device side of the wire is pluggable: consumed TX
// frames go to the OnTransmit hook, and the simulated remote end injects
// RX frames with Deliver — typically from a timer on the queue's clock,
// after a modeled wire latency (internal/netsrv provides such a peer).
//
// # Descriptor protocol
//
// 4 words per descriptor, in the DMA region:
//
//	+0  buffer offset into the DMA region (RX: page-aligned if the
//	    zero-copy reply path is to engage; the device takes any)
//	+4  frame length in bytes (TX: set by driver; RX: set by device)
//	+8  tag (TX: set by driver, echoed by netsrv peers; RX: set by device)
//	+12 own: 1 = published to the device, 0 = device done
//
// Indices are free-running uint32 counts; slot = index mod ring slots, so
// ring wrap is just modular arithmetic and "ring full" is tail-head
// reaching the slot count. The driver publishes descriptors (own=1) and
// rings the tail doorbell with its new count; the device consumes in
// order and hands descriptors back with own=0.
//
// # Interrupt discipline
//
// The perf headline, chosen at construction (latched from
// core.Config.DisableNICCoalesce by internal/netsrv):
//
//   - Coalescing on (NAPI-style): delivering a frame raises the line only
//     if the queue is armed, and raising auto-masks it. The driver drains
//     the ring, then re-arms by writing its consumed count to
//     NICRegIntrArm; if deliveries slipped in meanwhile the device
//     re-raises immediately, so no frame is ever stranded — but every
//     frame delivered while masked rides a drain someone already paid the
//     interrupt for.
//   - Coalescing off: one frame per interrupt/acknowledge cycle. A
//     delivery raises the line and holds further deliveries until the
//     driver writes NICRegIRQAck — the honest pre-NAPI cost model.
//
// # Execution contexts and synchronization
//
// Register writes arrive on the guest execution path — under ParallelHost
// that is outside the kernel gate, where the global frame allocator and
// RaiseIRQ must not be touched. Timer callbacks fire under the gate. The
// device therefore splits its work:
//
//   - TX consumption runs synchronously in the doorbell write. It only
//     reads/writes the caller's own DMA pages (present and unshared by
//     construction — see consumeTX) and hands frames to OnTransmit, which
//     may arm timers but must not deliver inline.
//   - RX delivery — the part that allocates frames (COW unsharing) and
//     raises interrupts — runs only in timer context: Deliver lands there
//     already, and the doorbell/ack writes that unblock stalled frames
//     schedule a short "kick" timer instead of delivering inline.
//   - Queue bookkeeping shared between the two contexts (posted counts,
//     arm/ack flags, the pending-frame list) is guarded by a host-side
//     mutex, invisible to virtual time.
//
// The driver never reads a register the timer context writes. Instead,
// each raise first publishes the filled-descriptor count to a word in
// guest DMA (HeadShadowOff); the interrupt wake that follows gives the
// driver a happens-before edge to that snapshot, exactly as BlockDevice
// drivers order their status-register read behind the completion IRQ.
// Frames delivered during a drain pass are beyond the snapshot, so the
// driver does not look at them until the re-raise that follows its arm
// write. NICRegTxHead/RxHead/Stalls remain readable for host-side tests
// and debugging, but a ParallelHost guest must not poll them.
const (
	NICDescBytes = 16 // descriptor stride
	NICDescOff   = 0x0
	NICDescLen   = 0x4
	NICDescTag   = 0x8
	NICDescOwn   = 0xC
)

// Per-queue register block (byte offsets inside the queue's window).
const (
	NICRegTxTail  = 0x00 // W: free-running count of published TX descriptors
	NICRegRxTail  = 0x04 // W: free-running count of posted RX descriptors
	NICRegIntrArm = 0x08 // W: driver's consumed-frame count; re-arms the RX interrupt
	NICRegIRQAck  = 0x0C // W: acknowledge the outstanding interrupt
	NICRegTxHead  = 0x10 // R: TX descriptors the device has consumed (host/debug)
	NICRegRxHead  = 0x14 // R: RX descriptors the device has filled (host/debug)
	NICRegStalls  = 0x18 // R: ring-full delivery stalls, low 32 bits (host/debug)
)

// DefaultNICIRQLatency is the delay between a queue deciding to
// interrupt and the line actually rising: 0.2 µs of simulated time.
const DefaultNICIRQLatency = 40

// NICKickLatency is the doorbell-processing delay: a register write that
// unblocks stalled RX frames (RxTail repost, IRQ ack) takes effect this
// many cycles later, in timer context.
const NICKickLatency = 1

// NICQueueConfig describes one queue at construction.
type NICQueueConfig struct {
	Clock *clock.Clock // the queue's home-CPU clock (timers, raises)
	DMA   *mmu.Region  // rings, buffers, and the head-shadow word live here
	Raise func()       // raises the queue's interrupt line
	CPU   uint32       // home CPU, for trace events

	TxRingOff, RxRingOff uint32 // descriptor array offsets in DMA
	TxSlots, RxSlots     uint32 // ring sizes in descriptors

	// HeadShadowOff is the DMA offset of the word where each raise
	// publishes the filled-descriptor count — the driver's drain bound.
	// Its page must stay resident and unshared (keep it beside the rings).
	HeadShadowOff uint32
}

// NICCounters is one queue's (or, summed, the whole device's) traffic
// and interrupt accounting. Plain fields like BlockDevice's and
// cpu.ExecStats'; read them after the run, or from timer context.
type NICCounters struct {
	IRQs           uint64 // interrupts raised
	Drains         uint64 // drain passes ended by an arm write
	TxFrames       uint64
	RxFrames       uint64
	TxBytes        uint64
	RxBytes        uint64
	RingFullStalls uint64 // deliveries that had to wait for a posted descriptor
	Coalesced      uint64 // frames delivered while the interrupt was masked
	Unshares       uint64 // COW-shared buffer pages replaced before DMA overwrite
}

func (c *NICCounters) add(d NICCounters) {
	c.IRQs += d.IRQs
	c.Drains += d.Drains
	c.TxFrames += d.TxFrames
	c.RxFrames += d.RxFrames
	c.TxBytes += d.TxBytes
	c.RxBytes += d.RxBytes
	c.RingFullStalls += d.RingFullStalls
	c.Coalesced += d.Coalesced
	c.Unshares += d.Unshares
}

type nicPending struct {
	tag     uint32
	payload []byte
	stalled bool // already counted as a ring-full stall
}

type nicQueue struct {
	cfg NICQueueConfig

	// TX state: touched only from the queue's register writes (the
	// driver space's execution path, one goroutine under ParallelHost).
	txHead uint32 // TX descriptors consumed
	txTail uint32 // TX doorbell (driver's published count)

	// RX and interrupt state, guarded by mu: register writes flip flags
	// and counts here; timer context does the actual delivery.
	mu             sync.Mutex
	rxPosted       uint32 // RX descriptors posted (driver's RxTail doorbell)
	rxNext         uint32 // RX descriptors filled by the device
	consumed       uint32 // driver's drain position (last IntrArm write)
	lastArm        uint32 // rxNext boundary of the previous drain (trace accounting)
	armed          bool   // coalescing: deliveries may interrupt
	irqOutstanding bool   // no-coalescing: an unacknowledged interrupt
	raisePending   bool   // a deferred raise timer is in flight
	raiseAt        uint64
	kickPending    bool // a deferred delivery kick is in flight
	kickAt         uint64
	pending        []nicPending // frames waiting for a descriptor (or, coalescing off, the ack)

	c NICCounters
}

// NIC is the device; see the package comment block above for protocol
// and concurrency rules.
type NIC struct {
	alloc      *mem.Allocator
	coalesce   bool
	irqLatency uint64
	qs         []*nicQueue

	// OnTransmit receives every consumed TX frame (queue, descriptor
	// tag, payload copy). Called synchronously from the TX doorbell
	// write, i.e. on the driver space's execution path — a peer wanting
	// wire latency schedules its Deliver on the queue's clock.
	OnTransmit func(queue int, tag uint32, frame []byte)

	// Tracer, when non-nil, receives NICDrain instants (one per drain
	// pass that handled frames). Attach only in deterministic mode: the
	// ring is not goroutine-safe and arm writes happen on the guest
	// execution path.
	Tracer *trace.Ring
}

// NewNIC builds a device with the given queues. coalesce selects the
// interrupt discipline (pass !cfg.DisableNICCoalesce); irqLatency 0
// selects DefaultNICIRQLatency.
func NewNIC(alloc *mem.Allocator, coalesce bool, irqLatency uint64, queues []NICQueueConfig) (*NIC, error) {
	if len(queues) == 0 {
		return nil, fmt.Errorf("dev: NIC needs at least one queue")
	}
	if irqLatency == 0 {
		irqLatency = DefaultNICIRQLatency
	}
	n := &NIC{alloc: alloc, coalesce: coalesce, irqLatency: irqLatency}
	for i, qc := range queues {
		if qc.Clock == nil || qc.DMA == nil || qc.Raise == nil {
			return nil, fmt.Errorf("dev: NIC queue %d missing clock/DMA/raise", i)
		}
		if qc.TxSlots == 0 || qc.RxSlots == 0 {
			return nil, fmt.Errorf("dev: NIC queue %d has empty rings", i)
		}
		for _, r := range [][2]uint32{
			{qc.TxRingOff, qc.TxSlots}, {qc.RxRingOff, qc.RxSlots},
		} {
			if r[0]%4 != 0 || r[0]+r[1]*NICDescBytes > qc.DMA.Size {
				return nil, fmt.Errorf("dev: NIC queue %d ring [%#x,+%d descs) outside DMA region", i, r[0], r[1])
			}
		}
		if qc.HeadShadowOff%4 != 0 || qc.HeadShadowOff+4 > qc.DMA.Size {
			return nil, fmt.Errorf("dev: NIC queue %d head shadow %#x outside DMA region", i, qc.HeadShadowOff)
		}
		n.qs = append(n.qs, &nicQueue{cfg: qc})
	}
	return n, nil
}

// Queues returns the queue count.
func (n *NIC) Queues() int { return len(n.qs) }

// Coalescing reports the interrupt discipline the device was built with.
func (n *NIC) Coalescing() bool { return n.coalesce }

// QueueCounters returns queue q's accounting.
func (n *NIC) QueueCounters(q int) NICCounters {
	n.qs[q].mu.Lock()
	defer n.qs[q].mu.Unlock()
	return n.qs[q].c
}

// Counters returns the device-wide accounting (all queues summed).
func (n *NIC) Counters() NICCounters {
	var out NICCounters
	for i := range n.qs {
		out.add(n.QueueCounters(i))
	}
	return out
}

// PublishMetrics copies the NIC's aggregate counters into reg as
// dev.nic.* gauges — Set, not Add, so the publisher can refresh them at
// every snapshot without double counting.
func (n *NIC) PublishMetrics(reg *metrics.Registry) {
	c := n.Counters()
	reg.Gauge("dev.nic.irqs").Set(int64(c.IRQs))
	reg.Gauge("dev.nic.drains").Set(int64(c.Drains))
	reg.Gauge("dev.nic.coalesced").Set(int64(c.Coalesced))
	reg.Gauge("dev.nic.ring_full_stalls").Set(int64(c.RingFullStalls))
	reg.Gauge("dev.nic.tx_frames").Set(int64(c.TxFrames))
	reg.Gauge("dev.nic.rx_frames").Set(int64(c.RxFrames))
	reg.Gauge("dev.nic.tx_bytes").Set(int64(c.TxBytes))
	reg.Gauge("dev.nic.rx_bytes").Set(int64(c.RxBytes))
	reg.Gauge("dev.nic.unshares").Set(int64(c.Unshares))
}

// QueueIO returns the mmu.IOHandler for queue q's register window.
func (n *NIC) QueueIO(q int) mmu.IOHandler { return &nicQueueIO{n: n, q: q} }

type nicQueueIO struct {
	n *NIC
	q int
}

func (io *nicQueueIO) IORead32(off uint32) uint32 {
	q := io.n.qs[io.q]
	switch off {
	case NICRegTxTail:
		return q.txTail
	case NICRegTxHead:
		return q.txHead
	case NICRegRxTail, NICRegRxHead, NICRegStalls:
		q.mu.Lock()
		defer q.mu.Unlock()
		switch off {
		case NICRegRxTail:
			return q.rxPosted
		case NICRegRxHead:
			return q.rxNext
		default:
			return uint32(q.c.RingFullStalls)
		}
	default:
		return 0xFFFF_FFFF
	}
}

func (io *nicQueueIO) IOWrite32(off uint32, v uint32) {
	n, q := io.n, io.n.qs[io.q]
	switch off {
	case NICRegTxTail:
		q.txTail = v
		n.consumeTX(io.q)
	case NICRegRxTail:
		q.mu.Lock()
		q.rxPosted = v
		if len(q.pending) > 0 {
			n.kickLocked(q)
		}
		q.mu.Unlock()
	case NICRegIntrArm:
		// End of a drain pass: v is the driver's consumed-frame count.
		q.mu.Lock()
		q.consumed = v
		q.c.Drains++
		if frames := v - q.lastArm; frames > 0 {
			q.lastArm = v
			if n.Tracer != nil {
				n.Tracer.Add(trace.Event{
					Time: q.cfg.Clock.Now(), CPU: q.cfg.CPU,
					Kind: trace.NICDrain, A: uint32(io.q), B: frames,
				})
			}
		}
		if n.coalesce {
			q.armed = true
			if q.rxNext != q.consumed {
				// Frames were delivered while masked; the NAPI arm-check
				// closes the race by re-raising instead of stranding them.
				q.armed = false
				n.scheduleRaiseLocked(q)
			}
		}
		q.mu.Unlock()
	case NICRegIRQAck:
		q.mu.Lock()
		if !n.coalesce {
			q.irqOutstanding = false
			if len(q.pending) > 0 {
				n.kickLocked(q)
			}
		}
		q.mu.Unlock()
	}
}

// consumeTX drains published TX descriptors in order, stopping at the
// first one not yet owned by the device (that is the TX-side
// backpressure: the doorbell count can run ahead of publication, and
// consumption resumes at the next doorbell). It runs on the guest
// execution path, so it must not allocate frames: TX descriptors and
// buffers have to be the driver space's own resident private pages
// (writing own=0 to an absent or shared page would allocate — keep TX
// pages private, as internal/netsrv does).
func (n *NIC) consumeTX(qi int) {
	q := n.qs[qi]
	for q.txHead != q.txTail {
		da := q.cfg.TxRingOff + (q.txHead%q.cfg.TxSlots)*NICDescBytes
		if n.read32(q, da+NICDescOwn) != 1 {
			return
		}
		off := n.read32(q, da+NICDescOff)
		length := n.read32(q, da+NICDescLen)
		tag := n.read32(q, da+NICDescTag)
		frame := make([]byte, length)
		n.dmaRead(q, off, frame)
		n.write32(q, da+NICDescOwn, 0)
		q.txHead++
		q.mu.Lock()
		q.c.TxFrames++
		q.c.TxBytes += uint64(length)
		q.mu.Unlock()
		if n.OnTransmit != nil {
			n.OnTransmit(qi, tag, frame)
		}
	}
}

// Deliver injects an RX frame for queue q tagged tag — the simulated
// remote end's half of the wire. Call it in timer context on the
// queue's clock (or from host code while the kernel is stopped);
// payload is copied into guest memory when a descriptor is available,
// so the caller may reuse it only after the frame lands.
func (n *NIC) Deliver(q int, tag uint32, payload []byte) {
	qq := n.qs[q]
	qq.mu.Lock()
	qq.pending = append(qq.pending, nicPending{tag: tag, payload: payload})
	n.deliverLocked(qq)
	qq.mu.Unlock()
}

// kickLocked schedules a delivery pass in timer context. Register writes
// that unblock pending frames call this instead of delivering inline —
// delivery allocates frames and raises interrupts, which the guest
// execution path must not do.
func (n *NIC) kickLocked(q *nicQueue) {
	if q.kickPending {
		return
	}
	q.kickPending = true
	q.kickAt = q.cfg.Clock.Now() + NICKickLatency
	q.cfg.Clock.After(NICKickLatency, func(uint64) {
		q.mu.Lock()
		q.kickPending = false
		n.deliverLocked(q)
		q.mu.Unlock()
	})
}

// deliverLocked moves pending frames into posted RX descriptors. The
// caller holds q.mu and runs in timer context (or host setup code).
func (n *NIC) deliverLocked(q *nicQueue) {
	for len(q.pending) > 0 {
		if !n.coalesce && q.irqOutstanding {
			return // one frame per interrupt/ack cycle
		}
		if q.rxNext == q.rxPosted {
			// Full ring (or no buffers posted yet): the frame waits, and
			// the RxTail doorbell resumes delivery.
			if !q.pending[0].stalled {
				q.pending[0].stalled = true
				q.c.RingFullStalls++
			}
			return
		}
		da := q.cfg.RxRingOff + (q.rxNext%q.cfg.RxSlots)*NICDescBytes
		if n.read32(q, da+NICDescOwn) != 1 {
			// Posted count ran ahead of descriptor publication; same
			// backpressure as ring-full.
			if !q.pending[0].stalled {
				q.pending[0].stalled = true
				q.c.RingFullStalls++
			}
			return
		}
		p := q.pending[0]
		q.pending = q.pending[1:]
		bufOff := n.read32(q, da+NICDescOff)
		n.dmaWrite(q, bufOff, p.payload)
		n.write32(q, da+NICDescLen, uint32(len(p.payload)))
		n.write32(q, da+NICDescTag, p.tag)
		n.write32(q, da+NICDescOwn, 0)
		q.rxNext++
		q.c.RxFrames++
		q.c.RxBytes += uint64(len(p.payload))
		if n.coalesce {
			if q.armed {
				q.armed = false
				n.scheduleRaiseLocked(q)
			} else {
				q.c.Coalesced++
			}
		} else {
			q.irqOutstanding = true
			n.scheduleRaiseLocked(q)
		}
	}
}

// scheduleRaiseLocked commits to raising the queue's line after
// IRQLatency. At most one raise is in flight per queue; the raise
// publishes the head shadow before touching the interrupt controller,
// so the driver's post-wake read of the shadow is ordered behind every
// delivery the raise announces.
func (n *NIC) scheduleRaiseLocked(q *nicQueue) {
	if q.raisePending {
		return
	}
	q.raisePending = true
	q.raiseAt = q.cfg.Clock.Now() + n.irqLatency
	q.cfg.Clock.After(n.irqLatency, func(uint64) {
		q.mu.Lock()
		q.raisePending = false
		q.c.IRQs++
		n.write32(q, q.cfg.HeadShadowOff, q.rxNext)
		q.mu.Unlock()
		q.cfg.Raise()
	})
}

// cowFrame returns the writable frame backing the DMA page at po,
// allocating absent pages and replacing copy-on-write or shared frames
// with private copies first. Device DMA bypasses the MMU's store path,
// so the COW discipline the zero-copy IPC path relies on is enforced
// here: a buffer page whose frame was shared into a receiver is
// replaced (old contents preserved, receivers keep the original frame)
// before the device overwrites it.
func (n *NIC) cowFrame(q *nicQueue, po uint32) *mem.Frame {
	// Every caller is about to write the returned frame, and device DMA
	// bypasses the MMU's dirty-page log as well as its COW discipline, so
	// this choke point also reports the write to the tracker. (Populate
	// and Repoint below mark on their own; the in-place branches must.)
	q.cfg.DMA.MarkDirty(po)
	f := q.cfg.DMA.FrameAt(po)
	switch {
	case f == nil:
		nf, err := n.alloc.Alloc()
		if err != nil {
			panic(fmt.Sprintf("dev: NIC DMA out of memory at +%#x: %v", po, err))
		}
		q.cfg.DMA.Populate(po, nf)
		return nf
	case f.Shared():
		nf, err := n.alloc.Alloc()
		if err != nil {
			panic(fmt.Sprintf("dev: NIC DMA out of memory at +%#x: %v", po, err))
		}
		copy(nf.Data, f.Data)
		nf.Bump()
		// Repoint, not Populate: watchers' translations are re-derived in
		// place, so the driver's next zero-copy reply out of this page does
		// not eat a soft fault per unshared page.
		old := q.cfg.DMA.Repoint(po, nf)
		n.alloc.Free(old) // the ring's reference; receivers keep theirs
		q.c.Unshares++
		return nf
	case f.Cow:
		// Marked copy-on-write but this ring holds the last reference: the
		// receivers already dropped theirs, so nobody observes the coming
		// overwrite. Clear the marker and write in place (mirrors the
		// last-reference case of mmu.ResolveCOW); write-protected guest
		// translations upgrade lazily through ordinary soft faults.
		f.Cow = false
		return f
	default:
		return f
	}
}

func (n *NIC) dmaWrite(q *nicQueue, off uint32, data []byte) {
	for i := 0; i < len(data); {
		po := mem.PageTrunc(off + uint32(i))
		f := n.cowFrame(q, po)
		inPage := int(off) + i - int(po)
		m := copy(f.Data[inPage:], data[i:])
		f.Bump()
		i += m
	}
}

func (n *NIC) dmaRead(q *nicQueue, off uint32, dst []byte) {
	for i := 0; i < len(dst); {
		po := mem.PageTrunc(off + uint32(i))
		inPage := int(off) + i - int(po)
		f := q.cfg.DMA.FrameAt(po)
		var m int
		if f == nil {
			m = int(mem.PageSize) - inPage
			if m > len(dst)-i {
				m = len(dst) - i
			}
			for j := 0; j < m; j++ {
				dst[i+j] = 0
			}
		} else {
			m = copy(dst[i:], f.Data[inPage:])
		}
		i += m
	}
}

func (n *NIC) read32(q *nicQueue, off uint32) uint32 {
	f := q.cfg.DMA.FrameAt(mem.PageTrunc(off))
	if f == nil {
		return 0
	}
	b := f.Data[off&mem.PageMask:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (n *NIC) write32(q *nicQueue, off uint32, v uint32) {
	f := n.cowFrame(q, mem.PageTrunc(off))
	b := f.Data[off&mem.PageMask:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	f.Bump()
}

// NICPendingFrame is one queued-but-undelivered RX frame in a state
// snapshot.
type NICPendingFrame struct {
	Tag     uint32
	Payload []byte
	Stalled bool
}

// NICQueueState is one queue's checkpointable device state. Ring and
// buffer *memory* is not here — it lives in the DMA region, which the
// checkpoint layer captures with the driver space like any other guest
// memory; this is the state the registers and pending queue hold.
type NICQueueState struct {
	TxHead, TxTail    uint32
	RxPosted, RxNext  uint32
	Consumed, LastArm uint32
	Armed             bool
	IRQOutstanding    bool
	RaiseDue          uint64 // 0 = no deferred raise; else cycles until it fires
	KickDue           uint64 // 0 = no deferred delivery kick; else cycles until it fires
	Pending           []NICPendingFrame
	Counters          NICCounters
}

// NICState is the whole device's checkpointable state.
type NICState struct {
	Coalesce   bool
	IRQLatency uint64
	Queues     []NICQueueState
}

func remaining(at, now uint64) uint64 {
	if at > now {
		return at - now
	}
	return 1
}

// SaveState snapshots device state for a checkpoint: indices, interrupt
// state, queued frames, counters, and the remaining delays of any
// deferred raise or kick. Pair it with a checkpoint of the driver space
// (which carries the rings and buffers) for a full in-flight round trip.
// Call it while the kernel is stopped.
func (n *NIC) SaveState() *NICState {
	st := &NICState{Coalesce: n.coalesce, IRQLatency: n.irqLatency}
	for _, q := range n.qs {
		q.mu.Lock()
		qs := NICQueueState{
			TxHead: q.txHead, TxTail: q.txTail,
			RxPosted: q.rxPosted, RxNext: q.rxNext,
			Consumed: q.consumed, LastArm: q.lastArm,
			Armed: q.armed, IRQOutstanding: q.irqOutstanding,
			Counters: q.c,
		}
		now := q.cfg.Clock.Now()
		if q.raisePending {
			qs.RaiseDue = remaining(q.raiseAt, now)
		}
		if q.kickPending {
			qs.KickDue = remaining(q.kickAt, now)
		}
		for _, p := range q.pending {
			qs.Pending = append(qs.Pending, NICPendingFrame{
				Tag: p.tag, Payload: append([]byte(nil), p.payload...), Stalled: p.stalled,
			})
		}
		q.mu.Unlock()
		st.Queues = append(st.Queues, qs)
	}
	return st
}

// LoadState restores a SaveState snapshot onto a freshly constructed
// device with the same queue shape (typically attached to a restored
// driver space's DMA region on a new kernel). Deferred raises and kicks
// are re-armed with their remaining delays. Call it while the kernel is
// stopped.
func (n *NIC) LoadState(st *NICState) error {
	if len(st.Queues) != len(n.qs) {
		return fmt.Errorf("dev: NIC state has %d queues, device has %d", len(st.Queues), len(n.qs))
	}
	if st.Coalesce != n.coalesce {
		return fmt.Errorf("dev: NIC state coalesce=%v, device built with %v", st.Coalesce, n.coalesce)
	}
	for i, qs := range st.Queues {
		q := n.qs[i]
		q.mu.Lock()
		q.txHead, q.txTail = qs.TxHead, qs.TxTail
		q.rxPosted, q.rxNext = qs.RxPosted, qs.RxNext
		q.consumed, q.lastArm = qs.Consumed, qs.LastArm
		q.armed, q.irqOutstanding = qs.Armed, qs.IRQOutstanding
		q.c = qs.Counters
		q.pending = nil
		for _, p := range qs.Pending {
			q.pending = append(q.pending, nicPending{
				tag: p.Tag, payload: append([]byte(nil), p.Payload...), stalled: p.Stalled,
			})
		}
		now := q.cfg.Clock.Now()
		if qs.RaiseDue > 0 {
			q.raisePending = true
			q.raiseAt = now + qs.RaiseDue
			q.cfg.Clock.After(qs.RaiseDue, func(uint64) {
				q.mu.Lock()
				q.raisePending = false
				q.c.IRQs++
				n.write32(q, q.cfg.HeadShadowOff, q.rxNext)
				q.mu.Unlock()
				q.cfg.Raise()
			})
		}
		if qs.KickDue > 0 {
			q.kickPending = true
			q.kickAt = now + qs.KickDue
			q.cfg.Clock.After(qs.KickDue, func(uint64) {
				q.mu.Lock()
				q.kickPending = false
				n.deliverLocked(q)
				q.mu.Unlock()
			})
		}
		q.mu.Unlock()
	}
	return nil
}
