package dev

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obj"
	"repro/internal/prog"
)

// Driver-space guest layout.
const (
	drvCode = 0x0001_0000
	drvData = 0x0004_0000 // request buffer + scratch
	drvMMIO = 0x00D0_0000 // device register window
	drvDMA  = 0x00E0_0000 // DMA region window
	drvReq  = drvData + 0x100
)

// Driver is an attached device + its service thread.
type Driver struct {
	Device *BlockDevice
	Thread *obj.Thread
	Space  *obj.Space
	Port   *obj.Port
	// IRQLine is the virtual interrupt line the device raises.
	IRQLine int
}

// Attach creates the whole §5.6 arrangement on kernel k: a block device
// with `capacity` sectors, a driver space with the device registers and
// DMA window mapped, and a driver thread serving single-sector read RPCs
// on a fresh port. Clients connect through a Reference to that port.
//
// Protocol: request = 1 word (sector number); reply = 128 words (the
// sector's 512 bytes), sent straight out of the DMA window.
func Attach(k *core.Kernel, capacity int, irqLine int, latency uint64, priority int) (*Driver, error) {
	raise, err := IRQRaiser(k, irqLine)
	if err != nil {
		return nil, err
	}
	s := k.NewSpace()

	// DMA region: one page is plenty for single-sector transfers.
	dmaReg, err := MapDMA(k, s, drvDMA, mem.PageSize)
	if err != nil {
		return nil, err
	}

	d := New(k.Clock, k.Alloc, capacity, dmaReg.R, latency, raise)
	if err := MapRegisters(s, drvMMIO, mem.PageSize, d); err != nil {
		return nil, err
	}

	if _, err := MapScratch(k, s, drvData); err != nil {
		return nil, err
	}

	port, _, psVA := NewServicePort(k, s)

	b := DriverProgram(psVA, uint32(irqLine))
	th, err := k.SpawnProgram(s, drvCode, b.MustAssemble(), priority)
	if err != nil {
		return nil, err
	}
	return &Driver{Device: d, Thread: th, Space: s, Port: port, IRQLine: irqLine}, nil
}

// ClientRef binds a Reference to the driver's port into a client space
// and returns its handle VA.
func (dr *Driver) ClientRef(k *core.Kernel, client *obj.Space) uint32 {
	return BindClientRef(k, client, dr.Port)
}

// DriverProgram builds the driver service loop:
//
//	receive a sector-read request
//	program the device (SECTOR, DMAOFF=0, COUNT=1, CMD=READ)
//	irq_wait for completion, acknowledge it
//	reply with the 128 words the device DMA'd, wait for the next request
//
// The loop never touches the medium directly — only device registers and
// the DMA window, like a real driver.
func DriverProgram(psVA, irqLine uint32) *prog.Builder {
	b := prog.New(drvCode)
	b.IPCWaitReceive(drvReq, 1, psVA)
	b.Label("serve")
	// r6 = requested sector (survives syscalls).
	b.Movi(4, drvReq).Ld(6, 4, 0)
	// Program the device registers.
	b.Movi(4, drvMMIO).
		St(4, RegSector, 6).
		Movi(5, 1).St(4, RegCount, 5).
		Movi(5, 0).St(4, RegDMAOff, 5).
		Movi(5, CmdRead).St(4, RegCmd, 5)
	// Wait for the completion interrupt.
	b.IRQWait(irqLine)
	// Check status and acknowledge.
	b.Movi(4, drvMMIO).Ld(5, 4, RegStatus).
		Movi(2, StatusDone)
	b.Bne(5, 2, "fail")
	b.Movi(5, 1).St(4, RegIRQAck, 5)
	// Reply straight from the DMA window; then wait for the next request.
	b.IPCReplyWaitReceive(drvDMA, SectorSize/4, psVA, drvReq, 1).
		Jmp("serve")
	// Error: reply with one word 0xDEADDEAD.
	b.Label("fail").
		Movi(5, 1).St(4, RegIRQAck, 5).
		Movi(4, drvData+0x80).Movi(5, 0xDEADDEAD).St(4, 0, 5).
		IPCReplyWaitReceive(drvData+0x80, 1, psVA, drvReq, 1).
		Jmp("serve")
	return b
}
