package dev_test

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// --- Bare-NIC rig: one queue, registers driven host-side, no kernel. ---

// Queue layout inside the rig's DMA region.
const (
	nicTxRing = 0x000            // 4 descriptors
	nicRxRing = 0x100            // 4 descriptors
	nicTxBuf  = 0x800            // TX frame staging
	nicRxBuf  = mem.PageSize * 2 // page-aligned RX buffers, one page each
	nicSlots  = 4
	nicShadow = 0xFF0 // head-shadow word
)

type nicRig struct {
	t     *testing.T
	clk   *clock.Clock
	alloc *mem.Allocator
	dma   *mmu.Region
	n     *dev.NIC
	io    mmu.IOHandler
	irqs  int
	tx    []rigFrame // frames OnTransmit saw
}

type rigFrame struct {
	tag     uint32
	payload []byte
}

func newNICRig(t *testing.T, coalesce bool) *nicRig {
	t.Helper()
	r := &nicRig{t: t, clk: clock.New(), alloc: mem.NewAllocator(256)}
	r.dma = mmu.NewRegion(mem.PageSize*16, true)
	n, err := dev.NewNIC(r.alloc, coalesce, 0, []dev.NICQueueConfig{{
		Clock: r.clk, DMA: r.dma, Raise: func() { r.irqs++ },
		TxRingOff: nicTxRing, TxSlots: nicSlots,
		RxRingOff: nicRxRing, RxSlots: nicSlots,
		HeadShadowOff: nicShadow,
	}})
	if err != nil {
		t.Fatal(err)
	}
	n.OnTransmit = func(q int, tag uint32, frame []byte) {
		r.tx = append(r.tx, rigFrame{tag, frame})
	}
	r.n = n
	r.io = n.QueueIO(0)
	return r
}

// w32/r32 access the DMA region host-side, allocating absent pages.
func (r *nicRig) w32(off, v uint32) {
	f := r.dma.FrameAt(mem.PageTrunc(off))
	if f == nil {
		nf, err := r.alloc.Alloc()
		if err != nil {
			r.t.Fatal(err)
		}
		r.dma.Populate(mem.PageTrunc(off), nf)
		f = nf
	}
	b := f.Data[off&mem.PageMask:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func (r *nicRig) r32(off uint32) uint32 {
	f := r.dma.FrameAt(mem.PageTrunc(off))
	if f == nil {
		return 0
	}
	b := f.Data[off&mem.PageMask:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *nicRig) bytesAt(off uint32, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		f := r.dma.FrameAt(mem.PageTrunc(off + uint32(i)))
		if f != nil {
			out[i] = f.Data[(off+uint32(i))&mem.PageMask]
		}
	}
	return out
}

func (r *nicRig) putBytes(off uint32, data []byte) {
	for i, c := range data {
		o := off + uint32(i)
		r.w32(mem.PageTrunc(o), r.r32(mem.PageTrunc(o))) // ensure page
		f := r.dma.FrameAt(mem.PageTrunc(o))
		f.Data[o&mem.PageMask] = c
	}
}

// publishTX writes TX descriptor slot (by free-running index) and returns
// the new doorbell count.
func (r *nicRig) publishTX(idx, bufOff, n, tag uint32) uint32 {
	da := uint32(nicTxRing) + (idx%nicSlots)*dev.NICDescBytes
	r.w32(da+dev.NICDescOff, bufOff)
	r.w32(da+dev.NICDescLen, n)
	r.w32(da+dev.NICDescTag, tag)
	r.w32(da+dev.NICDescOwn, 1)
	return idx + 1
}

// postRX publishes RX descriptor slot idx pointing at its own page buffer.
func (r *nicRig) postRX(idx uint32) uint32 {
	da := uint32(nicRxRing) + (idx%nicSlots)*dev.NICDescBytes
	r.w32(da+dev.NICDescOff, nicRxBuf+(idx%nicSlots)*mem.PageSize)
	r.w32(da+dev.NICDescLen, 0)
	r.w32(da+dev.NICDescTag, 0)
	r.w32(da+dev.NICDescOwn, 1)
	return idx + 1
}

func (r *nicRig) rxDesc(idx uint32) (off, length, tag, own uint32) {
	da := uint32(nicRxRing) + (idx%nicSlots)*dev.NICDescBytes
	return r.r32(da + dev.NICDescOff), r.r32(da + dev.NICDescLen),
		r.r32(da + dev.NICDescTag), r.r32(da + dev.NICDescOwn)
}

// fire advances far enough for a doorbell kick plus the raise latency.
func (r *nicRig) fire() { r.clk.Advance(dev.NICKickLatency + dev.DefaultNICIRQLatency) }

// kick advances just the doorbell-processing delay.
func (r *nicRig) kick() { r.clk.Advance(dev.NICKickLatency) }

// TestNICTxWraparound pushes three batches of TX frames through a
// 4-slot ring — indices wrap twice — and checks order, tags, and
// payload integrity end to end.
func TestNICTxWraparound(t *testing.T) {
	r := newNICRig(t, true)
	var idx uint32
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < nicSlots; i++ {
			n := uint32(batch*nicSlots + i)
			payload := bytes.Repeat([]byte{byte(0x10 + n)}, 24+int(n))
			r.putBytes(nicTxBuf+uint32(i)*64, payload)
			idx = r.publishTX(idx, nicTxBuf+uint32(i)*64, uint32(len(payload)), 0x700+n)
		}
		r.io.IOWrite32(dev.NICRegTxTail, idx)
		if got := r.io.IORead32(dev.NICRegTxHead); got != idx {
			t.Fatalf("batch %d: TxHead=%d, want %d", batch, got, idx)
		}
	}
	if len(r.tx) != 12 {
		t.Fatalf("transmitted %d frames, want 12", len(r.tx))
	}
	for n, fr := range r.tx {
		if fr.tag != uint32(0x700+n) {
			t.Fatalf("frame %d: tag %#x, want %#x (order broken)", n, fr.tag, 0x700+n)
		}
		want := bytes.Repeat([]byte{byte(0x10 + n)}, 24+n)
		if !bytes.Equal(fr.payload, want) {
			t.Fatalf("frame %d: payload corrupt", n)
		}
	}
	c := r.n.Counters()
	if c.TxFrames != 12 {
		t.Fatalf("TxFrames=%d", c.TxFrames)
	}
}

// TestNICTxBackpressure rings the TX doorbell past the published
// descriptors: the device must stop at the first own!=1 slot and resume
// when it is published and the doorbell rung again.
func TestNICTxBackpressure(t *testing.T) {
	r := newNICRig(t, true)
	r.putBytes(nicTxBuf, []byte{1, 2, 3, 4})
	r.publishTX(0, nicTxBuf, 4, 1)
	// Slot 1 not published (own=0), but doorbell says two frames.
	r.io.IOWrite32(dev.NICRegTxTail, 2)
	if got := r.io.IORead32(dev.NICRegTxHead); got != 1 {
		t.Fatalf("TxHead=%d, want 1 (stopped at unpublished slot)", got)
	}
	if len(r.tx) != 1 {
		t.Fatalf("transmitted %d, want 1", len(r.tx))
	}
	// Publish slot 1 and re-ring.
	r.publishTX(1, nicTxBuf, 4, 2)
	r.io.IOWrite32(dev.NICRegTxTail, 2)
	if got := r.io.IORead32(dev.NICRegTxHead); got != 2 {
		t.Fatalf("TxHead=%d, want 2 after publication", got)
	}
	if len(r.tx) != 2 || r.tx[1].tag != 2 {
		t.Fatalf("second frame not consumed: %v", r.tx)
	}
}

// TestNICRxOverrun delivers more frames than posted RX descriptors:
// the overflow stalls (counted once per frame), survives in order, and
// drains when the driver reposts buffers.
func TestNICRxOverrun(t *testing.T) {
	r := newNICRig(t, true)
	r.io.IOWrite32(dev.NICRegIntrArm, 0) // driver init: arm
	var posted uint32
	for i := 0; i < 2; i++ {
		posted = r.postRX(posted)
	}
	r.io.IOWrite32(dev.NICRegRxTail, posted)
	for i := 0; i < 5; i++ {
		r.n.Deliver(0, uint32(0x40+i), bytes.Repeat([]byte{byte(i + 1)}, 16))
	}
	if got := r.io.IORead32(dev.NICRegRxHead); got != 2 {
		t.Fatalf("RxHead=%d, want 2 (ring exhausted)", got)
	}
	c := r.n.Counters()
	if c.RingFullStalls != 1 {
		t.Fatalf("RingFullStalls=%d, want 1 (head-of-line frame counted once)", c.RingFullStalls)
	}
	// Repost the ring: everything drains (after the doorbell kick),
	// order preserved, wrap included.
	for i := 0; i < 3; i++ {
		posted = r.postRX(posted)
	}
	r.io.IOWrite32(dev.NICRegRxTail, posted)
	r.kick()
	if got := r.io.IORead32(dev.NICRegRxHead); got != 5 {
		t.Fatalf("RxHead=%d, want 5 after repost", got)
	}
	// Frame 4 wrapped onto slot 0, so slots 1,2,3,0 now hold frames 1..4.
	for i := uint32(1); i < 5; i++ {
		off, length, tag, own := r.rxDesc(i)
		if own != 0 || tag != 0x40+i || length != 16 {
			t.Fatalf("desc %d: off=%#x len=%d tag=%#x own=%d", i, off, length, tag, own)
		}
		if got := r.bytesAt(off, 16); !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 16)) {
			t.Fatalf("frame %d payload corrupt: %v", i, got)
		}
	}
	// Delivering 3 more stalled frames re-counts only new head-of-line
	// stalls; total stalls stays small and deliberate.
	if c := r.n.Counters(); c.RxFrames != 5 {
		t.Fatalf("RxFrames=%d", c.RxFrames)
	}
}

// TestNICZeroLengthFrames sends and receives zero-length frames: legal
// on both rings, delivered (and interrupting) like any other frame.
func TestNICZeroLengthFrames(t *testing.T) {
	r := newNICRig(t, true)
	r.io.IOWrite32(dev.NICRegIntrArm, 0)
	r.publishTX(0, nicTxBuf, 0, 0x99)
	r.io.IOWrite32(dev.NICRegTxTail, 1)
	if len(r.tx) != 1 || len(r.tx[0].payload) != 0 || r.tx[0].tag != 0x99 {
		t.Fatalf("zero-length TX mishandled: %+v", r.tx)
	}
	r.io.IOWrite32(dev.NICRegRxTail, r.postRX(0))
	r.n.Deliver(0, 0xAA, nil)
	if got := r.io.IORead32(dev.NICRegRxHead); got != 1 {
		t.Fatalf("RxHead=%d, want 1", got)
	}
	_, length, tag, own := r.rxDesc(0)
	if own != 0 || length != 0 || tag != 0xAA {
		t.Fatalf("zero-length RX desc: len=%d tag=%#x own=%d", length, tag, own)
	}
	r.fire()
	if r.irqs != 1 {
		t.Fatalf("irqs=%d, want 1 (zero-length frames still interrupt)", r.irqs)
	}
}

// TestNICCoalescingDiscipline checks the NAPI arm/mask protocol: one
// interrupt per drain no matter how many frames arrive while masked,
// and an arm write that races a delivery re-raises instead of
// stranding the frame.
func TestNICCoalescingDiscipline(t *testing.T) {
	r := newNICRig(t, true)
	var posted uint32
	for i := 0; i < nicSlots; i++ {
		posted = r.postRX(posted)
	}
	r.io.IOWrite32(dev.NICRegRxTail, posted)
	r.io.IOWrite32(dev.NICRegIntrArm, 0) // driver init: arm, nothing consumed

	r.n.Deliver(0, 1, []byte{1})
	r.fire()
	if r.irqs != 1 {
		t.Fatalf("irqs=%d, want 1", r.irqs)
	}
	// Two more while masked: delivered, no interrupt.
	r.n.Deliver(0, 2, []byte{2})
	r.n.Deliver(0, 3, []byte{3})
	r.fire()
	if r.irqs != 1 {
		t.Fatalf("irqs=%d, want still 1 (masked)", r.irqs)
	}
	if got := r.io.IORead32(dev.NICRegRxHead); got != 3 {
		t.Fatalf("RxHead=%d, want 3 (frames ride the masked window)", got)
	}
	c := r.n.Counters()
	if c.Coalesced != 2 {
		t.Fatalf("Coalesced=%d, want 2", c.Coalesced)
	}
	// Driver drained everything: repost the ring, then arm with
	// consumed=3. Quiet, so no raise.
	for i := 0; i < 3; i++ {
		posted = r.postRX(posted)
	}
	r.io.IOWrite32(dev.NICRegRxTail, posted)
	r.io.IOWrite32(dev.NICRegIntrArm, 3)
	r.fire()
	if r.irqs != 1 {
		t.Fatalf("irqs=%d after quiet arm, want 1", r.irqs)
	}
	// Frame arrives before the driver armed: arm write must re-raise.
	r.n.Deliver(0, 4, []byte{4}) // armed -> raise
	r.fire()
	if r.irqs != 2 {
		t.Fatalf("irqs=%d, want 2", r.irqs)
	}
	r.n.Deliver(0, 5, []byte{5}) // masked again
	r.io.IOWrite32(dev.NICRegIntrArm, 4)
	r.fire()
	if r.irqs != 3 {
		t.Fatalf("irqs=%d, want 3 (arm saw undrained frame 5)", r.irqs)
	}
	if c := r.n.Counters(); c.Drains != 3 {
		t.Fatalf("Drains=%d, want 3", c.Drains)
	}
}

// TestNICNoCoalesceDiscipline checks the coalescing-off model: exactly
// one frame per interrupt/ack cycle.
func TestNICNoCoalesceDiscipline(t *testing.T) {
	r := newNICRig(t, false)
	var posted uint32
	for i := 0; i < nicSlots; i++ {
		posted = r.postRX(posted)
	}
	r.io.IOWrite32(dev.NICRegRxTail, posted)
	for i := 0; i < 3; i++ {
		r.n.Deliver(0, uint32(i), []byte{byte(i)})
	}
	r.fire()
	if r.irqs != 1 {
		t.Fatalf("irqs=%d, want 1", r.irqs)
	}
	if got := r.io.IORead32(dev.NICRegRxHead); got != 1 {
		t.Fatalf("RxHead=%d, want 1 (later frames gated on ack)", got)
	}
	// Ack releases the next frame, which interrupts in turn.
	r.io.IOWrite32(dev.NICRegIRQAck, 1)
	r.fire()
	if r.irqs != 2 || r.io.IORead32(dev.NICRegRxHead) != 2 {
		t.Fatalf("irqs=%d RxHead=%d after first ack", r.irqs, r.io.IORead32(dev.NICRegRxHead))
	}
	r.io.IOWrite32(dev.NICRegIRQAck, 1)
	r.fire()
	if r.irqs != 3 || r.io.IORead32(dev.NICRegRxHead) != 3 {
		t.Fatalf("irqs=%d RxHead=%d after second ack", r.irqs, r.io.IORead32(dev.NICRegRxHead))
	}
	if c := r.n.Counters(); c.Coalesced != 0 {
		t.Fatalf("Coalesced=%d, want 0 with coalescing off", c.Coalesced)
	}
}

// TestNICDMABreaksShares delivers into an RX buffer whose frame is
// COW-shared (as the zero-copy reply path leaves it): the device must
// replace the ring's page, not scribble on the receiver's copy.
func TestNICDMABreaksShares(t *testing.T) {
	r := newNICRig(t, true)
	r.io.IOWrite32(dev.NICRegIntrArm, 0)
	r.io.IOWrite32(dev.NICRegRxTail, r.postRX(0))
	r.n.Deliver(0, 1, bytes.Repeat([]byte{0xEE}, 64))

	// "Zero-copy reply": the receiver now aliases the buffer frame.
	shared := r.dma.FrameAt(nicRxBuf)
	if shared == nil {
		t.Fatal("no frame at RX buffer")
	}
	r.alloc.Share(shared)
	shared.Cow = true

	// Repost slots 1,2,3 and — wrapping — slot 0 again, then deliver four
	// more frames. The fourth lands in slot 0's buffer: the shared page.
	posted := uint32(1)
	for i := 0; i < 4; i++ {
		posted = r.postRX(posted)
	}
	r.io.IOWrite32(dev.NICRegRxTail, posted)
	for i := 0; i < 4; i++ {
		r.n.Deliver(0, uint32(2+i), bytes.Repeat([]byte{byte(0x11 * (i + 1))}, 64))
	}
	if got := r.io.IORead32(dev.NICRegRxHead); got != 5 {
		t.Fatalf("RxHead=%d, want 5", got)
	}
	if got := shared.Data[0]; got != 0xEE {
		t.Fatalf("receiver's aliased frame overwritten: %#x", got)
	}
	if shared.Refs != 1 {
		t.Fatalf("aliased frame refs=%d, want 1 (ring dropped its ref)", shared.Refs)
	}
	fresh := r.dma.FrameAt(nicRxBuf)
	if fresh == shared {
		t.Fatal("ring still maps the shared frame")
	}
	if fresh == nil || fresh.Data[0] != 0x44 {
		t.Fatal("replacement frame missing the new payload")
	}
	c := r.n.Counters()
	if c.Unshares == 0 {
		t.Fatal("no Unshares counted")
	}
}

// TestNICPagerBackedBuffer evicts RX buffer pages mid-stream — the
// pager-backed case, where a frame is gone between posting and DMA —
// and delivers across the absent page boundary.
func TestNICPagerBackedBuffer(t *testing.T) {
	r := newNICRig(t, true)
	r.io.IOWrite32(dev.NICRegIntrArm, 0)
	var posted uint32
	for i := 0; i < 3; i++ {
		posted = r.postRX(posted)
	}
	r.io.IOWrite32(dev.NICRegRxTail, posted)
	r.n.Deliver(0, 1, bytes.Repeat([]byte{0x5A}, 32))

	// The pager steals both the filled buffer page and the next slot's.
	for _, off := range []uint32{nicRxBuf, nicRxBuf + mem.PageSize} {
		if f := r.dma.Evict(off); f != nil {
			r.alloc.Free(f)
		}
	}
	// Delivery into the evicted slot repopulates on demand.
	r.n.Deliver(0, 2, bytes.Repeat([]byte{0x6B}, 48))
	off, length, tag, own := r.rxDesc(1)
	if own != 0 || tag != 2 || length != 48 {
		t.Fatalf("post-evict desc: len=%d tag=%d own=%d", length, tag, own)
	}
	if got := r.bytesAt(off, 48); !bytes.Equal(got, bytes.Repeat([]byte{0x6B}, 48)) {
		t.Fatalf("post-evict payload corrupt: %v", got[:8])
	}
	if r.dma.FrameAt(nicRxBuf) != nil {
		t.Fatal("evicted filled page came back by itself")
	}
}

// TestNICSaveRestore snapshots a queue mid-flight — frames pending on a
// full ring, an interrupt latched but not yet fired — restores it onto
// a fresh device over a copied DMA image, and lets it complete.
func TestNICSaveRestore(t *testing.T) {
	r := newNICRig(t, true)
	r.io.IOWrite32(dev.NICRegIntrArm, 0)
	r.io.IOWrite32(dev.NICRegRxTail, r.postRX(0))
	r.n.Deliver(0, 1, bytes.Repeat([]byte{0xA1}, 16)) // fills the ring, schedules the raise
	r.n.Deliver(0, 2, bytes.Repeat([]byte{0xB2}, 16)) // pends: ring full
	r.n.Deliver(0, 3, bytes.Repeat([]byte{0xC3}, 16)) // pends behind it
	st := r.n.SaveState()
	if len(st.Queues[0].Pending) != 2 || st.Queues[0].RaiseDue == 0 {
		t.Fatalf("unexpected snapshot: pending=%d raiseDue=%d",
			len(st.Queues[0].Pending), st.Queues[0].RaiseDue)
	}

	// New world: fresh clock, fresh device, DMA image copied page by page
	// (the checkpoint layer does this for real driver spaces).
	r2 := newNICRig(t, true)
	for off := uint32(0); off < mem.PageSize*16; off += mem.PageSize {
		if f := r.dma.FrameAt(off); f != nil {
			nf, err := r2.alloc.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			copy(nf.Data, f.Data)
			r2.dma.Populate(off, nf)
		}
	}
	if err := r2.n.LoadState(st); err != nil {
		t.Fatal(err)
	}
	// The in-flight interrupt fires in the restored world.
	r2.fire()
	if r2.irqs != 1 {
		t.Fatalf("restored irqs=%d, want 1 (deferred raise re-armed)", r2.irqs)
	}
	// Drain frame 1, repost: the two pending frames land in order.
	if got := r2.io.IORead32(dev.NICRegRxHead); got != 1 {
		t.Fatalf("restored RxHead=%d, want 1", got)
	}
	off, _, tag, _ := r2.rxDesc(0)
	if tag != 1 || !bytes.Equal(r2.bytesAt(off, 16), bytes.Repeat([]byte{0xA1}, 16)) {
		t.Fatal("restored in-ring frame corrupt")
	}
	posted := uint32(1)
	for i := 0; i < 2; i++ {
		posted = r2.postRX(posted)
	}
	r2.io.IOWrite32(dev.NICRegRxTail, posted)
	r2.kick()
	if got := r2.io.IORead32(dev.NICRegRxHead); got != 3 {
		t.Fatalf("restored RxHead=%d, want 3 (pending frames delivered)", got)
	}
	for i := uint32(1); i < 3; i++ {
		_, _, tag, _ := r2.rxDesc(i)
		if tag != i+1 {
			t.Fatalf("restored pending order broken: desc %d tag %d", i, tag)
		}
	}
	// Counters carried over and kept counting.
	if c := r2.n.Counters(); c.RxFrames != 3 || c.RingFullStalls != 1 {
		t.Fatalf("restored counters: %+v", c)
	}
	// Shape mismatches are rejected, not silently mis-restored.
	if err := r2.n.LoadState(&dev.NICState{Coalesce: false, Queues: st.Queues}); err == nil {
		t.Fatal("coalesce-mismatch LoadState succeeded")
	}
	bad := *st
	bad.Queues = append(bad.Queues, st.Queues[0])
	if err := r2.n.LoadState(&bad); err == nil {
		t.Fatal("queue-count-mismatch LoadState succeeded")
	}
}
