// Package ipc implements Fluke's connection-oriented reliable IPC — the
// richest multi-stage part of the atomic API, and the subject of the
// paper's Figures 2–4 and Tables 3/5/6.
//
// Every operation follows the Figure-4 style the paper contrasts with
// process-model (Figure 2) and continuation-model (Figure 3) kernels:
//
//   - transfer parameters live in user registers: R1 is the buffer
//     pointer, R2 the word count, and both roll forward as data moves;
//   - stage transitions rewrite the user PC to the next entrypoint
//     (ipc_client_connect_send becomes ipc_client_send once the
//     connection exists, send_over_receive becomes receive after the
//     turnaround), so the user-visible register state is the
//     continuation;
//   - a handler that must wait returns a kernel-internal code after
//     leaving the registers consistent; nothing about the operation
//     lives on a kernel stack.
//
// Each thread carries two independent connection halves — client
// (initiated) and server (accepted) — so servers can hold a request open
// while making RPCs downstream. The ipc_client_* entrypoints operate on
// the client half, the ipc_server_*/wait entrypoints on the server half;
// a thread's registers describe at most one in-progress transfer at a
// time, whichever half it is currently blocked on.
//
// The engine is written against the Kern interface so it is independent
// of the kernel's execution model: under the interrupt model blocking
// unwinds and the operation restarts from its registers; under the
// process model blocking parks the thread's kernel-stack context and the
// same code continues in place.
package ipc

import (
	"repro/internal/obj"
	"repro/internal/sys"
)

// anyObjType matches any object type in Kern.ObjAt.
const anyObjType sys.ObjType = 0xFF

// FaultMsgMagic is the second word of a kernel-generated page-fault
// notification message delivered to a pager's portset (the first word is
// the faulting page's byte offset within the managed region).
const FaultMsgMagic uint32 = 0x464C4B46 // "FLKF"

// FaultMsgWords is the length of a fault notification in words.
const FaultMsgWords = 2

// Kern is the kernel-services surface the IPC engine runs on;
// *core.Kernel implements it.
type Kern interface {
	Current() *obj.Thread
	ChargeKernel(cycles uint64)
	ChargeConnect()
	Block(q *obj.WaitQueue, interruptible bool) sys.KErr
	WakeThread(t *obj.Thread)
	// HandoffWake wakes t at a rendezvous-completion point: the caller
	// has just finished a transfer into/out of t and is itself about to
	// block, so the kernel may stage t for a direct time-slice-donating
	// context switch instead of a run-queue pass (the IPC fast path).
	// Semantically identical to WakeThread; only scheduling order and
	// cycle cost differ, and only when the fast path is enabled.
	HandoffWake(t *obj.Thread)
	// CountIPCMiss records that a rendezvous found no peer ready and the
	// caller is about to block — the complement of a fast-path hit.
	CountIPCMiss()
	Return(t *obj.Thread, e sys.Errno)
	SetPC(t *obj.Thread, sysno int)
	CommitProgress(t *obj.Thread)
	CountInterrupt()
	ObjAt(t *obj.Thread, va uint32, want sys.ObjType, allowDead bool) (obj.Obj, sys.Errno, sys.KErr)
	StoreUser32(t *obj.Thread, spc *obj.Space, va uint32, v uint32) sys.KErr
	CopyWords(src, dst *obj.Thread) sys.KErr
	// DeliverFault writes the oldest pending page-fault notification of
	// p.FaultRegion into t's receive buffer as a FaultMsgWords-word
	// message, rolling R1/R2 forward and completing the receive.
	DeliverFault(t *obj.Thread, p *obj.Port) (delivered bool, e sys.Errno, kerr sys.KErr)
}

// role selects a thread's connection half.
type role bool

const (
	asClient role = false
	asServer role = true
)

// half returns t's connection half for the role.
func half(t *obj.Thread, r role) *obj.IPCState {
	if r == asServer {
		return &t.IPCServer
	}
	return &t.IPCClient
}

// peerHalf returns the peer's half of the same connection: the opposite
// role.
func peerHalf(p *obj.Thread, r role) *obj.IPCState {
	return half(p, !r)
}

// derefPort accepts a Port handle or a Reference-to-Port handle — the
// usual client-side arrangement is a Reference pointing at the server's
// Port (Table 2).
func derefPort(o obj.Obj) *obj.Port {
	switch x := o.(type) {
	case *obj.Port:
		return x
	case *obj.Ref:
		if p, ok := x.Target.(*obj.Port); ok && !p.Dead {
			return p
		}
	}
	return nil
}

// connectRewrite maps a connect-combining entrypoint to its post-connect
// stage, for rewriting a blocked connector's PC at accept time.
func connectRewrite(pc uint32) int {
	switch sysNumOfEntry(pc) {
	case sys.NIPCClientConnectSend:
		return sys.NIPCClientSend
	case sys.NIPCClientConnectSendOverReceive:
		return sys.NIPCClientSendOverReceive
	default:
		return -1 // e.g. ipc_send_oneway: its handler checks the phase
	}
}

// sysNumOfEntry decodes which syscall entry a PC names (mirrors
// cpu.SyscallNum without importing cpu for one constant).
func sysNumOfEntry(pc uint32) int {
	const base, size = 0xFFF0_0000, 8
	if pc < base || pc >= base+256*size || (pc-base)%size != 0 {
		return -1
	}
	return int(pc-base) / size
}

// resetConn clears one connection half, keeping the wait queue's ring
// storage so steady-state connection reuse stays allocation-free.
func resetConn(st *obj.IPCState) {
	if st.Wait.Len() != 0 {
		panic("ipc: resetting connection with parked peer")
	}
	wait := st.Wait
	*st = obj.IPCState{}
	st.Wait = wait
}

// establish links client and server into a connection with the client
// holding the send direction: the client's client-half pairs with the
// server's server-half. The non-running side stays blocked, parked on its
// own half's wait queue with its Want flag set, so the running side can
// transfer against its rolled-forward registers.
func establish(k Kern, client, server *obj.Thread) {
	k.ChargeConnect()
	runner := k.Current()

	ch := &client.IPCClient
	sh := &server.IPCServer
	ch.Phase = obj.IPCSend
	ch.Peer = server
	sh.Phase = obj.IPCRecv
	sh.Peer = client
	sh.Accepting = false

	if runner == client {
		// The server was found waiting on its portset: repark it on
		// its own connection queue, ready to receive.
		if server.WaitQ != nil {
			server.WaitQ.Remove(server)
		}
		sh.Wait.Enqueue(server)
		sh.WantRecv = true
	} else {
		// The client was found queued on the port: repark it as a
		// ready sender and rewrite its continuation to the
		// post-connect stage (ipc_client_connect_send ->
		// ipc_client_send, §4.3).
		if client.WaitQ != nil {
			client.WaitQ.Remove(client)
		}
		ch.Wait.Enqueue(client)
		ch.WantSend = true
		if n := connectRewrite(client.Regs.PC); n >= 0 {
			k.SetPC(client, n)
		}
	}
}

// findAccepting returns a server thread blocked accepting on the port's
// set, if any.
func findAccepting(port *obj.Port) *obj.Thread {
	if port.Set == nil {
		return nil
	}
	q := &port.Set.Servers
	for i, n := 0, q.Len(); i < n; i++ {
		if s := q.At(i); s.IPCServer.Accepting {
			return s
		}
	}
	return nil
}

// connect is the client-half connection stage: resolve the port (via
// handle or reference) from portArgVA, pair with an accepting server or
// queue on the port. On success the client half holds the send direction.
func connect(k Kern, t *obj.Thread, portArgVA uint32) (sys.Errno, sys.KErr) {
	for t.IPCClient.Phase == obj.IPCIdle {
		o, e, kerr := k.ObjAt(t, portArgVA, anyObjType, false)
		if kerr != sys.KOK {
			return 0, kerr
		}
		if e != sys.EOK {
			return e, sys.KOK
		}
		port := derefPort(o)
		if port == nil || port.Dead {
			return sys.ESRCH, sys.KOK
		}
		if srv := findAccepting(port); srv != nil {
			establish(k, t, srv)
			return sys.EOK, sys.KOK
		}
		// No server ready: wake portset_wait observers (they will see
		// us queued once we block) and wait on the port.
		if port.Set != nil {
			// Threads() snapshots the queue: WakeThread dequeues as we go.
			for _, s := range port.Set.Servers.Threads() {
				if !s.IPCServer.Accepting {
					k.WakeThread(s)
				}
			}
		}
		if kerr := k.Block(&port.Connectors, true); kerr != sys.KOK {
			return 0, kerr
		}
		// Woken: either a server established the connection (phase
		// changed; loop exits) or the port died (retry observes it).
	}
	return sys.EOK, sys.KOK
}

// sendLoop transfers the caller's [R1, R2 words) to the connection peer
// of half r, rolling R1/R2 forward. It returns EOK with R2 == 0 on
// success.
func sendLoop(k Kern, t *obj.Thread, r role) (sys.Errno, sys.KErr) {
	if t.Regs.R[1]%4 != 0 {
		return sys.EINVAL, sys.KOK
	}
	st := half(t, r)
	for t.Regs.R[2] > 0 {
		switch {
		case st.PeerDied:
			resetConn(st)
			return sys.EDEAD, sys.KOK
		case st.Closed:
			resetConn(st)
			return sys.ECONN, sys.KOK
		case st.Peer == nil:
			return sys.ENOTCONN, sys.KOK
		case st.Phase != obj.IPCSend:
			return sys.ESTATE, sys.KOK
		}
		p := st.Peer
		ph := peerHalf(p, r)
		if p.State != obj.ThRunning && ph.WantRecv {
			if p.Regs.R[2] == 0 {
				// Receiver's buffer is full; its call completes.
				k.HandoffWake(p)
			} else {
				if kerr := k.CopyWords(t, p); kerr != sys.KOK {
					return 0, kerr
				}
				if p.Regs.R[2] == 0 {
					k.HandoffWake(p)
				}
				continue
			}
		}
		st.WantSend = true
		k.CountIPCMiss()
		kerr := k.Block(&st.Wait, true)
		if kerr == sys.KOK {
			st.WantSend = false
			continue
		}
		if kerr == sys.KIntr {
			st.WantSend = false
		}
		return 0, kerr
	}
	st.WantSend = false
	if st.Peer == nil && st.Phase != obj.IPCIdle {
		// The peer completed and tore down its side while we sent the
		// last words; the connection is over.
		resetConn(st)
	}
	return sys.EOK, sys.KOK
}

// recvLoop fills the caller's [R1, R2 words) from the peer of half r,
// rolling R1/R2 forward. It completes when the buffer fills or the peer
// ends its message.
func recvLoop(k Kern, t *obj.Thread, r role) (sys.Errno, sys.KErr) {
	if t.Regs.R[1]%4 != 0 {
		return sys.EINVAL, sys.KOK
	}
	st := half(t, r)
	for {
		if t.Regs.R[2] == 0 {
			break
		}
		if st.MsgEnd {
			st.MsgEnd = false
			break
		}
		switch {
		case st.PeerDied:
			resetConn(st)
			return sys.EDEAD, sys.KOK
		case st.Closed:
			resetConn(st)
			return sys.ECONN, sys.KOK
		case st.Peer == nil:
			return sys.ENOTCONN, sys.KOK
		case st.Phase != obj.IPCRecv:
			return sys.ESTATE, sys.KOK
		}
		p := st.Peer
		ph := peerHalf(p, r)
		if p.State != obj.ThRunning && ph.WantSend && p.Regs.R[2] > 0 {
			if kerr := k.CopyWords(p, t); kerr != sys.KOK {
				return 0, kerr
			}
			if p.Regs.R[2] == 0 {
				k.HandoffWake(p)
			}
			continue
		}
		st.WantRecv = true
		k.CountIPCMiss()
		kerr := k.Block(&st.Wait, true)
		if kerr == sys.KOK {
			st.WantRecv = false
			continue
		}
		if kerr == sys.KIntr {
			st.WantRecv = false
		}
		return 0, kerr
	}
	st.WantRecv = false
	if st.Peer == nil && st.Phase != obj.IPCIdle {
		// Message complete and the sender already disconnected (a
		// oneway or reply): the connection is over.
		resetConn(st)
	}
	return sys.EOK, sys.KOK
}

// flip is the "over" turnaround on half r: the sender ends its message
// and the transfer direction reverses.
func flip(k Kern, t *obj.Thread, r role) sys.Errno {
	st := half(t, r)
	if st.PeerDied {
		resetConn(st)
		return sys.EDEAD
	}
	if st.Peer == nil || st.Phase != obj.IPCSend {
		return sys.ENOTCONN
	}
	p := st.Peer
	ph := peerHalf(p, r)
	st.Phase = obj.IPCRecv
	ph.Phase = obj.IPCSend
	endMessage(k, p, ph)
	return sys.EOK
}

// endMessage marks the message toward p (on its half ph) as complete,
// waking p if it is waiting for data on that half. The wake is a handoff
// candidate: p's receive completes with this message end, and the caller
// (a sender turning the connection around or finishing a reply) is about
// to block on the reverse direction — the rendezvous pattern the direct
// switch exists for.
func endMessage(k Kern, p *obj.Thread, ph *obj.IPCState) {
	ph.MsgEnd = true
	if p.State == obj.ThBlocked && ph.WantRecv {
		k.HandoffWake(p)
	}
}

// disconnect tears down the caller's half r of the connection; the peer
// observes ECONN on its next operation on the paired half.
func disconnect(k Kern, t *obj.Thread, r role) {
	st := half(t, r)
	p := st.Peer
	if p != nil {
		ph := peerHalf(p, r)
		if ph.Peer == t {
			ph.Peer = nil
			ph.Closed = true
			if p.State == obj.ThBlocked && (ph.WantRecv || ph.WantSend) {
				k.WakeThread(p)
			}
		}
	}
	st.Peer = nil
	resetConn(st)
}

// OnThreadDeath severs both of t's connection halves when t dies; each
// peer observes EDEAD. Called by the kernel's thread teardown.
func OnThreadDeath(k Kern, t *obj.Thread) {
	for _, r := range []role{asClient, asServer} {
		st := half(t, r)
		p := st.Peer
		if p != nil {
			ph := peerHalf(p, r)
			if ph.Peer == t {
				ph.Peer = nil
				ph.PeerDied = true
				if p.State == obj.ThBlocked && (ph.WantRecv || ph.WantSend) {
					k.WakeThread(p)
				}
			}
		}
		st.Peer = nil
		st.Phase = obj.IPCIdle
	}
}
