package ipc

// Engine tests against a mock Kern with interrupt-model semantics:
// blocking returns KWouldBlock and the caller re-dispatches, exactly like
// core's dispatch loop, but with every kernel service stubbed to simple
// deterministic behaviour. (Full-stack behaviour is covered by
// internal/core's tests across all five configurations.)

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/obj"
	"repro/internal/sys"
)

// fakeKern implements Kern over a single flat word-addressed memory.
type fakeKern struct {
	cur     *obj.Thread
	objs    map[uint32]obj.Obj
	mem     map[uint32]uint32
	charges uint64
	intrs   int
}

func newFakeKern() *fakeKern {
	return &fakeKern{objs: map[uint32]obj.Obj{}, mem: map[uint32]uint32{}}
}

func (f *fakeKern) Current() *obj.Thread       { return f.cur }
func (f *fakeKern) ChargeKernel(c uint64)      { f.charges += c }
func (f *fakeKern) ChargeConnect()             { f.charges += 100 }
func (f *fakeKern) CommitProgress(*obj.Thread) {}
func (f *fakeKern) CountInterrupt()            { f.intrs++ }

func (f *fakeKern) Block(q *obj.WaitQueue, interruptible bool) sys.KErr {
	t := f.cur
	if interruptible && t.Interrupted {
		t.Interrupted = false
		f.intrs++
		return sys.KIntr
	}
	t.State = obj.ThBlocked
	q.Enqueue(t)
	return sys.KWouldBlock
}

func (f *fakeKern) WakeThread(t *obj.Thread) {
	if t.WaitQ != nil {
		t.WaitQ.Remove(t)
	}
	t.State = obj.ThReady
}

// The mock has no scheduler, so a handoff wake is just a wake.
func (f *fakeKern) HandoffWake(t *obj.Thread) { f.WakeThread(t) }
func (f *fakeKern) CountIPCMiss()             {}

func (f *fakeKern) Return(t *obj.Thread, e sys.Errno) {
	t.Regs.R[0] = uint32(e)
	t.Regs.PC = t.Regs.R[cpu.LR]
}

func (f *fakeKern) SetPC(t *obj.Thread, n int) { t.Regs.PC = cpu.SyscallEntry(n) }

func (f *fakeKern) ObjAt(t *obj.Thread, va uint32, want sys.ObjType, allowDead bool) (obj.Obj, sys.Errno, sys.KErr) {
	o := f.objs[va]
	if o == nil || (o.Hdr().Dead && !allowDead) {
		return nil, sys.ESRCH, sys.KOK
	}
	if want != anyObjType && obj.TypeOf(o) != want {
		return nil, sys.ESRCH, sys.KOK
	}
	return o, sys.EOK, sys.KOK
}

func (f *fakeKern) StoreUser32(t *obj.Thread, spc *obj.Space, va uint32, v uint32) sys.KErr {
	f.mem[va] = v
	return sys.KOK
}

func (f *fakeKern) CopyWords(src, dst *obj.Thread) sys.KErr {
	for src.Regs.R[2] > 0 && dst.Regs.R[2] > 0 {
		f.mem[dst.Regs.R[1]] = f.mem[src.Regs.R[1]]
		src.Regs.R[1] += 4
		src.Regs.R[2]--
		dst.Regs.R[1] += 4
		dst.Regs.R[2]--
	}
	return sys.KOK
}

func (f *fakeKern) DeliverFault(t *obj.Thread, p *obj.Port) (bool, sys.Errno, sys.KErr) {
	reg := p.FaultRegion
	if reg == nil || len(reg.PendingFaults) == 0 {
		return false, sys.EOK, sys.KOK
	}
	if t.Regs.R[2] < FaultMsgWords {
		return true, sys.EINVAL, sys.KOK
	}
	f.mem[t.Regs.R[1]] = reg.PendingFaults[0]
	f.mem[t.Regs.R[1]+4] = FaultMsgMagic
	reg.PendingFaults = reg.PendingFaults[1:]
	t.Regs.R[1] += FaultMsgWords * 4
	t.Regs.R[2] -= FaultMsgWords
	return true, sys.EOK, sys.KOK
}

var _ Kern = (*fakeKern)(nil)

// rig builds a port+portset+ref namespace and two threads.
func rig(f *fakeKern) (client, server *obj.Thread, port *obj.Port, ps *obj.Portset) {
	port = &obj.Port{Header: obj.Header{Type: sys.ObjPort}}
	ps = &obj.Portset{Header: obj.Header{Type: sys.ObjPortset}}
	ps.AddPort(port)
	ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
	f.objs[0x100] = ref
	f.objs[0x104] = ps
	client = &obj.Thread{ID: 1, State: obj.ThRunning}
	server = &obj.Thread{ID: 2, State: obj.ThRunning}
	return
}

// fillWords writes n sequential words at base.
func (f *fakeKern) fillWords(base uint32, n int) {
	for i := 0; i < n; i++ {
		f.mem[base+uint32(i)*4] = uint32(i + 1)
	}
}

func TestEngineConnectQueuesWithoutServer(t *testing.T) {
	f := newFakeKern()
	client, _, port, _ := rig(f)
	f.cur = client
	client.Regs.R[1] = 0x1000
	client.Regs.R[2] = 4
	client.Regs.R[3] = 0x100
	if kerr := ClientConnectSend(f, client); kerr != sys.KWouldBlock {
		t.Fatalf("kerr=%v, want KWouldBlock", kerr)
	}
	if port.Connectors.Peek() != client {
		t.Fatal("client not queued on the port")
	}
	if client.IPCClient.Phase != obj.IPCIdle {
		t.Fatal("phase changed before acceptance")
	}
}

func TestEngineServerAcceptsQueuedClient(t *testing.T) {
	f := newFakeKern()
	client, server, _, _ := rig(f)
	f.fillWords(0x1000, 4)
	// Client queued on the port (as the previous test established).
	f.cur = client
	client.Regs.R[1] = 0x1000
	client.Regs.R[2] = 4
	client.Regs.R[3] = 0x100
	client.Regs.PC = cpu.SyscallEntry(sys.NIPCClientConnectSend)
	ClientConnectSend(f, client)

	// Server accepts with a big enough buffer: the engine copies from
	// the parked client's rolled-forward registers.
	f.cur = server
	server.Regs.R[1] = 0x2000
	server.Regs.R[2] = 8
	server.Regs.R[3] = 0x104
	if kerr := WaitReceive(f, server); kerr != sys.KWouldBlock {
		// All four words fit, so the server waits for more data or
		// message end — KWouldBlock is the expected unwind.
		t.Fatalf("kerr=%v", kerr)
	}
	// The client's words landed.
	for i := uint32(0); i < 4; i++ {
		if f.mem[0x2000+i*4] != i+1 {
			t.Fatalf("word %d = %d", i, f.mem[0x2000+i*4])
		}
	}
	// The client's continuation was rewritten to the post-connect stage
	// and its transfer registers rolled forward to completion.
	if client.Regs.PC != cpu.SyscallEntry(sys.NIPCClientSend) {
		t.Fatalf("client PC %#x", client.Regs.PC)
	}
	if client.Regs.R[2] != 0 {
		t.Fatalf("client words left %d", client.Regs.R[2])
	}
	// The client was woken to complete its send.
	if client.State != obj.ThReady {
		t.Fatalf("client state %v", client.State)
	}
}

func TestEngineOnewayThroughAcceptingServer(t *testing.T) {
	f := newFakeKern()
	client, server, _, _ := rig(f)
	f.fillWords(0x1000, 2)
	// Server parks accepting.
	f.cur = server
	server.Regs.R[1] = 0x2000
	server.Regs.R[2] = 8
	server.Regs.R[3] = 0x104
	if kerr := WaitReceive(f, server); kerr != sys.KWouldBlock {
		t.Fatalf("kerr=%v", kerr)
	}
	if !server.IPCServer.Accepting {
		t.Fatal("server not accepting")
	}
	// Client oneway: connects, copies, ends, disconnects in one go.
	f.cur = client
	client.Regs.R[1] = 0x1000
	client.Regs.R[2] = 2
	client.Regs.R[3] = 0x100
	client.Regs.R[cpu.LR] = 0x5555
	if kerr := SendOneway(f, client); kerr != sys.KOK {
		t.Fatalf("kerr=%v", kerr)
	}
	if sys.Errno(client.Regs.R[0]) != sys.EOK || client.Regs.PC != 0x5555 {
		t.Fatalf("completion R0=%v PC=%#x", sys.Errno(client.Regs.R[0]), client.Regs.PC)
	}
	if client.IPCClient.Phase != obj.IPCIdle {
		t.Fatal("client half not reset")
	}
	// Server observes message end on re-dispatch.
	f.cur = server
	if kerr := WaitReceive(f, server); kerr != sys.KOK {
		t.Fatalf("server kerr=%v", kerr)
	}
	if f.mem[0x2000] != 1 || f.mem[0x2004] != 2 {
		t.Fatal("payload missing")
	}
	if server.IPCServer.Phase != obj.IPCIdle {
		t.Fatal("server half not reset after sender disconnect")
	}
}

func TestEngineReplyWrongDirection(t *testing.T) {
	f := newFakeKern()
	client, server, _, _ := rig(f)
	// Hand-establish a connection with the server still receiving.
	client.IPCClient = obj.IPCState{Phase: obj.IPCSend, Peer: server}
	server.IPCServer = obj.IPCState{Phase: obj.IPCRecv, Peer: client}
	f.cur = server
	server.Regs.R[1] = 0x2000
	server.Regs.R[2] = 1
	if kerr := Reply(f, server); kerr != sys.KOK {
		t.Fatalf("kerr=%v", kerr)
	}
	if sys.Errno(server.Regs.R[0]) != sys.ESTATE {
		t.Fatalf("errno %v, want ESTATE", sys.Errno(server.Regs.R[0]))
	}
}

func TestEngineAlertAndDeath(t *testing.T) {
	f := newFakeKern()
	client, server, _, _ := rig(f)
	client.IPCClient = obj.IPCState{Phase: obj.IPCSend, Peer: server}
	server.IPCServer = obj.IPCState{Phase: obj.IPCRecv, Peer: client}

	f.cur = client
	if kerr := ClientAlert(f, client); kerr != sys.KOK {
		t.Fatalf("kerr=%v", kerr)
	}
	if !server.Interrupted {
		t.Fatal("peer not interrupted")
	}

	OnThreadDeath(f, client)
	if !server.IPCServer.PeerDied || server.IPCServer.Peer != nil {
		t.Fatalf("server half after peer death: %+v", server.IPCServer)
	}
	// Server's next receive reports EDEAD.
	f.cur = server
	server.Regs.R[1] = 0x2000
	server.Regs.R[2] = 1
	if kerr := ServerReceive(f, server); kerr != sys.KOK {
		t.Fatalf("kerr=%v", kerr)
	}
	if sys.Errno(server.Regs.R[0]) != sys.EDEAD {
		t.Fatalf("errno %v, want EDEAD", sys.Errno(server.Regs.R[0]))
	}
}

func TestEngineInterruptedConnect(t *testing.T) {
	f := newFakeKern()
	client, _, _, _ := rig(f)
	client.Interrupted = true
	f.cur = client
	client.Regs.R[1] = 0x1000
	client.Regs.R[2] = 1
	client.Regs.R[3] = 0x100
	if kerr := ClientConnectSend(f, client); kerr != sys.KIntr {
		t.Fatalf("kerr=%v, want KIntr", kerr)
	}
}

func TestEngineDeliverFaultPath(t *testing.T) {
	f := newFakeKern()
	_, server, port, _ := rig(f)
	reg := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}}
	reg.PendingFaults = []uint32{0x3000}
	port.FaultRegion = reg
	f.cur = server
	server.Regs.R[1] = 0x2000
	server.Regs.R[2] = 4
	server.Regs.R[3] = 0x104
	if kerr := WaitReceive(f, server); kerr != sys.KOK {
		t.Fatalf("kerr=%v", kerr)
	}
	if f.mem[0x2000] != 0x3000 || f.mem[0x2004] != FaultMsgMagic {
		t.Fatalf("fault message wrong: %#x %#x", f.mem[0x2000], f.mem[0x2004])
	}
	if len(reg.PendingFaults) != 0 {
		t.Fatal("fault not consumed")
	}
	if server.IPCServer.Phase != obj.IPCIdle {
		t.Fatal("fault delivery must not create a connection")
	}
}

func TestEngineBadPortRef(t *testing.T) {
	f := newFakeKern()
	client, _, _, _ := rig(f)
	f.cur = client
	client.Regs.R[3] = 0xBAD // no handle
	if kerr := ClientConnectSend(f, client); kerr != sys.KOK {
		t.Fatalf("kerr=%v", kerr)
	}
	if sys.Errno(client.Regs.R[0]) != sys.ESRCH {
		t.Fatalf("errno %v", sys.Errno(client.Regs.R[0]))
	}
}
