package ipc

// White-box unit tests for the IPC engine's pure helpers. The engine's
// end-to-end behaviour (transfers, turnarounds, faults mid-copy, peer
// death, the §4.3 register pictures) is covered by internal/core's tests,
// which run it on the real kernel under all five configurations.

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/obj"
	"repro/internal/sys"
)

func TestDerefPort(t *testing.T) {
	p := &obj.Port{Header: obj.Header{Type: sys.ObjPort}}
	if derefPort(p) != p {
		t.Fatal("direct port handle not accepted")
	}
	r := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: p}
	if derefPort(r) != p {
		t.Fatal("reference-to-port not dereferenced")
	}
	p.Dead = true
	if derefPort(r) != nil {
		t.Fatal("reference to dead port accepted")
	}
	m := &obj.Mutex{Header: obj.Header{Type: sys.ObjMutex}}
	if derefPort(m) != nil {
		t.Fatal("non-port accepted")
	}
	rm := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: m}
	if derefPort(rm) != nil {
		t.Fatal("reference-to-mutex accepted")
	}
	if derefPort(&obj.Ref{}) != nil {
		t.Fatal("null reference accepted")
	}
}

func TestConnectRewrite(t *testing.T) {
	cases := []struct {
		from int
		want int
	}{
		{sys.NIPCClientConnectSend, sys.NIPCClientSend},
		{sys.NIPCClientConnectSendOverReceive, sys.NIPCClientSendOverReceive},
		{sys.NIPCSendOneway, -1}, // phase-checked, not rewritten
		{sys.NMutexLock, -1},
	}
	for _, c := range cases {
		if got := connectRewrite(cpu.SyscallEntry(c.from)); got != c.want {
			t.Errorf("connectRewrite(%s) = %d, want %d", sys.Name(c.from), got, c.want)
		}
	}
	if connectRewrite(0x1000) != -1 {
		t.Error("non-entry PC rewritten")
	}
}

func TestSysNumOfEntryMatchesCPU(t *testing.T) {
	for n := 0; n < sys.NumSyscalls; n++ {
		if got := sysNumOfEntry(cpu.SyscallEntry(n)); got != n {
			t.Fatalf("sysNumOfEntry(entry(%d)) = %d", n, got)
		}
	}
	for _, pc := range []uint32{0, 0x1000, cpu.SyscallBase + 2, cpu.SyscallBase - 4} {
		if sysNumOfEntry(pc) != -1 {
			t.Errorf("pc %#x treated as entry", pc)
		}
	}
}

func TestResetConnClearsEverything(t *testing.T) {
	th := &obj.Thread{}
	peer := &obj.Thread{}
	th.IPCClient = obj.IPCState{
		Phase: obj.IPCSend, Peer: peer,
		WantSend: true, MsgEnd: true, Closed: true, PeerDied: true,
	}
	resetConn(&th.IPCClient)
	st := th.IPCClient
	if st.Phase != obj.IPCIdle || st.Peer != nil || st.WantSend ||
		st.MsgEnd || st.Closed || st.PeerDied {
		t.Fatalf("state not cleared: %+v", st)
	}
}

func TestResetConnPanicsWithParkedPeer(t *testing.T) {
	th := &obj.Thread{}
	peer := &obj.Thread{}
	th.IPCClient.Wait.Enqueue(peer)
	defer func() {
		if recover() == nil {
			t.Fatal("resetConn with parked peer did not panic")
		}
	}()
	resetConn(&th.IPCClient)
}

func TestHalfSelection(t *testing.T) {
	th := &obj.Thread{}
	if half(th, asClient) != &th.IPCClient || half(th, asServer) != &th.IPCServer {
		t.Fatal("half selects the wrong state")
	}
	// The peer of my client half is their server half, and vice versa.
	if peerHalf(th, asClient) != &th.IPCServer || peerHalf(th, asServer) != &th.IPCClient {
		t.Fatal("peerHalf selects the wrong state")
	}
}

func TestFaultMsgConstants(t *testing.T) {
	if FaultMsgWords != 2 {
		t.Fatal("fault messages are two words (offset, magic)")
	}
	if FaultMsgMagic == 0 {
		t.Fatal("magic must be nonzero so pagers can sanity-check")
	}
}
