package ipc

import (
	"repro/internal/obj"
	"repro/internal/sys"
)

// The 21 IPC entrypoints. Per the paper (§4.2), "most of these calls
// simply represent different options and combinations of the basic send
// and receive primitives": the API prefers "several simple, narrow
// entrypoints with few parameters rather than one large, complex
// entrypoint with many parameters".
//
// Register conventions:
//
//	R1 buffer pointer (rolled forward)     R4 next-stage buffer pointer
//	R2 word count (rolled forward)         R5 next-stage word count
//	R3 port reference / portset handle
//
// Combined operations move R4/R5 into R1/R2 at the stage transition and
// rewrite the PC to the follow-on entrypoint, so the registers alone
// always describe exactly what remains to be done.
//
// ipc_client_* entrypoints operate on the thread's client connection
// half; ipc_server_*, ipc_setup_wait, ipc_wait_receive and ipc_reply* on
// its server half.

// finish completes a call with errno e unless a kernel-internal condition
// must propagate.
func finish(k Kern, t *obj.Thread, e sys.Errno, kerr sys.KErr) sys.KErr {
	if kerr != sys.KOK {
		return kerr
	}
	k.Return(t, e)
	return sys.KOK
}

// ClientConnectSend connects to the port referenced at R3 and sends
// [R1, R2 words). Once connected the continuation is rewritten to
// ipc_client_send (the paper's flagship example of entrypoint rewriting).
func ClientConnectSend(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCClient.Phase == obj.IPCIdle {
		e, kerr := connect(k, t, t.Regs.R[3])
		if kerr != sys.KOK || e != sys.EOK {
			return finish(k, t, e, kerr)
		}
		k.SetPC(t, sys.NIPCClientSend)
	}
	return ClientSend(k, t)
}

// ClientSend sends [R1, R2 words) on the established client connection.
func ClientSend(k Kern, t *obj.Thread) sys.KErr {
	e, kerr := sendLoop(k, t, asClient)
	return finish(k, t, e, kerr)
}

// ClientConnectSendOverReceive is the full RPC: connect, send the request,
// turn the connection around, and receive the reply into [R4, R5 words).
// This is the "ipc_client_connect_send_over_receive" path Table 3
// measures restart costs on.
func ClientConnectSendOverReceive(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCClient.Phase == obj.IPCIdle {
		e, kerr := connect(k, t, t.Regs.R[3])
		if kerr != sys.KOK || e != sys.EOK {
			return finish(k, t, e, kerr)
		}
		k.SetPC(t, sys.NIPCClientSendOverReceive)
	}
	return ClientSendOverReceive(k, t)
}

// ClientSendOverReceive sends [R1, R2 words), ends the message, and
// receives the reply into [R4, R5 words).
func ClientSendOverReceive(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCClient.Phase == obj.IPCSend {
		e, kerr := sendLoop(k, t, asClient)
		if kerr != sys.KOK || e != sys.EOK {
			return finish(k, t, e, kerr)
		}
		if e := flip(k, t, asClient); e != sys.EOK {
			return finish(k, t, e, sys.KOK)
		}
		// Stage transition: the receive buffer becomes the current
		// buffer and the continuation becomes ipc_client_receive.
		t.Regs.R[1] = t.Regs.R[4]
		t.Regs.R[2] = t.Regs.R[5]
		k.SetPC(t, sys.NIPCClientReceive)
	}
	return ClientReceive(k, t)
}

// ClientOverReceive ends the outgoing message immediately and receives
// into [R1, R2 words).
func ClientOverReceive(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCClient.Phase == obj.IPCSend {
		if e := flip(k, t, asClient); e != sys.EOK {
			return finish(k, t, e, sys.KOK)
		}
		k.SetPC(t, sys.NIPCClientReceive)
	}
	return ClientReceive(k, t)
}

// ClientReceive receives into [R1, R2 words) on the client connection.
func ClientReceive(k Kern, t *obj.Thread) sys.KErr {
	e, kerr := recvLoop(k, t, asClient)
	return finish(k, t, e, kerr)
}

// ClientDisconnect tears down the client connection half.
func ClientDisconnect(k Kern, t *obj.Thread) sys.KErr {
	disconnect(k, t, asClient)
	return finish(k, t, sys.EOK, sys.KOK)
}

// ClientAlert delivers an out-of-band interrupt to the client-connection
// peer, breaking it out of its current operation with EINTR.
func ClientAlert(k Kern, t *obj.Thread) sys.KErr {
	p := t.IPCClient.Peer
	if p == nil {
		return finish(k, t, sys.ENOTCONN, sys.KOK)
	}
	p.Interrupted = true
	if p.State == obj.ThBlocked {
		k.WakeThread(p)
	}
	return finish(k, t, sys.EOK, sys.KOK)
}

// ---------------------------------------------------------------------------
// Server side.

// acceptOrDeliver is the accept stage shared by ipc_setup_wait and
// ipc_wait_receive: wait on the portset at R3 until either a client
// connects (establishing a server-half connection with this thread
// receiving) or the kernel has queued a page-fault notification
// (delivered as a two-word message with no connection).
//
// It returns (delivered=true) if a fault message completed the call.
func acceptOrDeliver(k Kern, t *obj.Thread) (delivered bool, e sys.Errno, kerr sys.KErr) {
	for t.IPCServer.Phase == obj.IPCIdle {
		o, e, kerr := k.ObjAt(t, t.Regs.R[3], sys.ObjPortset, false)
		if kerr != sys.KOK {
			return false, 0, kerr
		}
		if e != sys.EOK {
			return false, e, sys.KOK
		}
		ps := o.(*obj.Portset)
		if p := ps.PendingPort(); p != nil {
			if p.FaultRegion != nil && len(p.FaultRegion.PendingFaults) > 0 {
				return k.DeliverFault(t, p)
			}
			if c := p.Connectors.Peek(); c != nil {
				establish(k, c, t)
				break
			}
		}
		t.IPCServer.Accepting = true
		switch kerr := k.Block(&ps.Servers, true); kerr {
		case sys.KOK:
			t.IPCServer.Accepting = false
		case sys.KIntr:
			t.IPCServer.Accepting = false
			return false, 0, kerr
		default:
			return false, 0, kerr
		}
	}
	return false, sys.EOK, sys.KOK
}

// SetupWait begins service: wait on the portset at R3 for a connection or
// fault notification, then receive into [R1, R2 words).
func SetupWait(k Kern, t *obj.Thread) sys.KErr {
	return WaitReceive(k, t)
}

// WaitReceive waits for the next request: accepts a connection (or
// delivers a queued fault notification) from the portset at R3 and
// receives into [R1, R2 words).
func WaitReceive(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCServer.Phase == obj.IPCIdle {
		delivered, e, kerr := acceptOrDeliver(k, t)
		if kerr != sys.KOK || e != sys.EOK || delivered {
			return finish(k, t, e, kerr)
		}
	}
	return ServerReceive(k, t)
}

// ServerReceive continues receiving the current request into [R1, R2
// words).
func ServerReceive(k Kern, t *obj.Thread) sys.KErr {
	e, kerr := recvLoop(k, t, asServer)
	return finish(k, t, e, kerr)
}

// ServerOverReceive ends the server's outgoing message and receives into
// [R1, R2 words).
func ServerOverReceive(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCServer.Phase == obj.IPCSend {
		if e := flip(k, t, asServer); e != sys.EOK {
			return finish(k, t, e, sys.KOK)
		}
		k.SetPC(t, sys.NIPCServerReceive)
	}
	return ServerReceive(k, t)
}

// ServerSend sends [R1, R2 words) on the server connection (direction
// must already be server-to-client).
func ServerSend(k Kern, t *obj.Thread) sys.KErr {
	e, kerr := sendLoop(k, t, asServer)
	return finish(k, t, e, kerr)
}

// ServerSendOverReceive sends [R1, R2 words), turns the connection
// around, and receives into [R4, R5 words).
func ServerSendOverReceive(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCServer.Phase == obj.IPCSend {
		e, kerr := sendLoop(k, t, asServer)
		if kerr != sys.KOK || e != sys.EOK {
			return finish(k, t, e, kerr)
		}
		if e := flip(k, t, asServer); e != sys.EOK {
			return finish(k, t, e, sys.KOK)
		}
		t.Regs.R[1] = t.Regs.R[4]
		t.Regs.R[2] = t.Regs.R[5]
		k.SetPC(t, sys.NIPCServerReceive)
	}
	return ServerReceive(k, t)
}

// ServerAckSend acknowledges the received request and sends the reply
// [R1, R2 words), keeping the connection open with the server sending.
func ServerAckSend(k Kern, t *obj.Thread) sys.KErr {
	return ServerSend(k, t)
}

// ServerAckSendOverReceive replies with [R1, R2 words), ends the reply,
// and waits for the client's next request into [R4, R5 words).
func ServerAckSendOverReceive(k Kern, t *obj.Thread) sys.KErr {
	return ServerSendOverReceive(k, t)
}

// replyCommon sends [R1, R2 words) on the server half, ends the message,
// and disconnects. Calling it while holding the receive direction is a
// protocol error (the peer must turn the connection around first).
func replyCommon(k Kern, t *obj.Thread) (sys.Errno, sys.KErr) {
	return sendEndDisconnect(k, t, asServer)
}

// sendEndDisconnect is the shared "final message" sequence on half r.
func sendEndDisconnect(k Kern, t *obj.Thread, r role) (sys.Errno, sys.KErr) {
	st := half(t, r)
	switch st.Phase {
	case obj.IPCRecv:
		return sys.ESTATE, sys.KOK
	case obj.IPCSend:
		e, kerr := sendLoop(k, t, r)
		if kerr != sys.KOK || e != sys.EOK {
			return e, kerr
		}
		if p := st.Peer; p != nil {
			endMessage(k, p, peerHalf(p, r))
		}
		disconnect(k, t, r)
	}
	return sys.EOK, sys.KOK
}

// Reply sends the final reply [R1, R2 words) and disconnects.
func Reply(k Kern, t *obj.Thread) sys.KErr {
	e, kerr := replyCommon(k, t)
	return finish(k, t, e, kerr)
}

// ReplyWaitReceive replies with [R1, R2 words), disconnects, and waits on
// the portset at R3 for the next request, receiving into [R4, R5 words) —
// the inner loop of every Fluke server.
func ReplyWaitReceive(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCServer.Phase == obj.IPCSend {
		e, kerr := replyCommon(k, t)
		if kerr != sys.KOK || e != sys.EOK {
			return finish(k, t, e, kerr)
		}
		// Stage transition into the accept+receive stage.
		t.Regs.R[1] = t.Regs.R[4]
		t.Regs.R[2] = t.Regs.R[5]
		k.SetPC(t, sys.NIPCWaitReceive)
	}
	return WaitReceive(k, t)
}

// ServerAckSendWaitReceive is the combined serve-next form: reply with
// [R1, R2 words), disconnect, and accept the next request from the
// portset at R3 into [R4, R5 words).
func ServerAckSendWaitReceive(k Kern, t *obj.Thread) sys.KErr {
	return ReplyWaitReceive(k, t)
}

// ServerDisconnect tears down the server side of the connection.
func ServerDisconnect(k Kern, t *obj.Thread) sys.KErr {
	disconnect(k, t, asServer)
	return finish(k, t, sys.EOK, sys.KOK)
}

// SendOneway is the connectionless datagram form: connect to the port
// referenced at R3 if not already connected, send [R1, R2 words), end the
// message, and disconnect — all on the client half.
func SendOneway(k Kern, t *obj.Thread) sys.KErr {
	if t.IPCClient.Phase == obj.IPCIdle {
		e, kerr := connect(k, t, t.Regs.R[3])
		if kerr != sys.KOK || e != sys.EOK {
			return finish(k, t, e, kerr)
		}
	}
	e, kerr := sendEndDisconnect(k, t, asClient)
	return finish(k, t, e, kerr)
}
