package checkpoint_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// imageMemEqual compares the memory side of two images the way Restore
// consumes it: region shapes, present-page sets, page contents, per-page
// COW marks, and the sharing partition (which slots alias one frame).
// Frame *indexes* are allowed to differ — they are an encoding detail.
func imageMemEqual(a, b *checkpoint.Image) error {
	if len(a.Regions) != len(b.Regions) {
		return fmt.Errorf("region count %d vs %d", len(a.Regions), len(b.Regions))
	}
	type site struct {
		reg int
		off uint32
	}
	partA := map[int][]site{}
	partB := map[int][]site{}
	for i := range a.Regions {
		ra, rb := a.Regions[i], b.Regions[i]
		if ra.Size != rb.Size || ra.DemandZero != rb.DemandZero || ra.PagerPortVA != rb.PagerPortVA {
			return fmt.Errorf("region %d shape differs", i)
		}
		if len(ra.Pages) != len(rb.Pages) {
			return fmt.Errorf("region %d: %d vs %d present pages", i, len(ra.Pages), len(rb.Pages))
		}
		for off, fa := range ra.Pages {
			fb, ok := rb.Pages[off]
			if !ok {
				return fmt.Errorf("region %d page +%#x present only in first image", i, off)
			}
			if !bytes.Equal(a.Frames[fa].Data, b.Frames[fb].Data) {
				return fmt.Errorf("region %d page +%#x contents differ", i, off)
			}
			if a.Frames[fa].Cow != b.Frames[fb].Cow {
				return fmt.Errorf("region %d page +%#x cow %v vs %v", i, off, a.Frames[fa].Cow, b.Frames[fb].Cow)
			}
			partA[fa] = append(partA[fa], site{i, off})
			partB[fb] = append(partB[fb], site{i, off})
		}
	}
	// Same partition: the groups of sites sharing one frame must match.
	groups := map[int][]site{}
	for i := range a.Regions {
		for off, fa := range a.Regions[i].Pages {
			fb := b.Regions[i].Pages[off]
			if g, seen := groups[fa]; seen {
				if !reflect.DeepEqual(g, partB[fb]) {
					return fmt.Errorf("sharing partition differs at region %d +%#x", i, off)
				}
			} else {
				groups[fa] = partB[fb]
			}
			if len(partA[fa]) != len(partB[fb]) {
				return fmt.Errorf("frame alias count differs at region %d +%#x: %d vs %d",
					i, off, len(partA[fa]), len(partB[fb]))
			}
		}
	}
	return nil
}

// deltaChain runs the workload with three snapshot points — a warm
// memory baseline, a warm delta, and a final full-stop delta capture —
// and returns the materialized final image plus the raw deltas.
func deltaChain(t *testing.T, cfg core.Config, rounds int, cutA, cutB, cutC uint64) (*checkpoint.Image, *checkpoint.Image, *checkpoint.DeltaImage, *checkpoint.DeltaImage) {
	t.Helper()
	k := core.New(cfg)
	s, _ := buildWorkload(t, k, rounds)
	k.RunFor(cutA)
	base, err := checkpoint.SnapshotMemory(k, s)
	if err != nil {
		t.Fatal(err)
	}
	k.RunFor(cutB - cutA)
	d1, img1, err := checkpoint.SnapshotMemoryDelta(k, s, base)
	if err != nil {
		t.Fatal(err)
	}
	k.RunFor(cutC - cutB)
	d2, final, err := checkpoint.CaptureDelta(k, s, img1)
	if err != nil {
		t.Fatal(err)
	}
	return base, final, d1, d2
}

// TestDeltaEquivalence pins the incremental path bit-identical to the
// full path, the way every fast path in this repo is pinned: a base +
// delta chain taken while the space runs must materialize exactly the
// image a plain Capture takes at the same point — same page bytes, same
// COW sharing structure — and the restored runs must be byte- and
// stats-identical. Swept across the five paper configurations crossed
// with the three lock models (at 1, 2, and 4 CPUs).
func TestDeltaEquivalence(t *testing.T) {
	const rounds = 10
	const cutA, cutB, cutC = 250_000, 600_000, 1_100_000
	locks := []struct {
		lm   core.LockModel
		cpus int
	}{
		{core.LockBig, 1},
		{core.LockPerSubsystem, 2},
		{core.LockFine, 4},
	}
	for _, base := range core.Configurations() {
		for _, l := range locks {
			cfg := base
			cfg.LockModel = l.lm
			cfg.NumCPUs = l.cpus
			t.Run(fmt.Sprintf("%s/%s/%dcpu", cfg.Name(), l.lm, l.cpus), func(t *testing.T) {
				// Twin kernel, identical run, full capture at the same cut
				// (determinism makes the twin bit-identical; a single
				// kernel cannot take both captures because Capture stops
				// the space).
				kRef := core.New(cfg)
				sRef, _ := buildWorkload(t, kRef, rounds)
				kRef.RunFor(cutA)
				kRef.RunFor(cutB - cutA)
				kRef.RunFor(cutC - cutB)
				imgFull, err := checkpoint.Capture(kRef, sRef)
				if err != nil {
					t.Fatal(err)
				}

				baseImg, imgDelta, d1, d2 := deltaChain(t, cfg, rounds, cutA, cutB, cutC)
				if err := imageMemEqual(imgFull, imgDelta); err != nil {
					t.Fatalf("base+delta chain diverges from full capture: %v", err)
				}

				// The public Apply fold over the same chain must reproduce
				// the materialized image too (the migration receiver's path).
				alt1, err := d1.Apply(baseImg)
				if err != nil {
					t.Fatal(err)
				}
				alt2, err := d2.Apply(alt1)
				if err != nil {
					t.Fatal(err)
				}
				if err := imageMemEqual(imgFull, alt2); err != nil {
					t.Fatalf("Apply-fold replay diverges from full capture: %v", err)
				}

				// Restore both and finish: identical logs, identical final
				// memory, identical kernel stats.
				run := func(img *checkpoint.Image) ([]byte, []byte, core.Stats) {
					k := core.New(cfg)
					s, threads, err := checkpoint.Restore(k, img)
					if err != nil {
						t.Fatal(err)
					}
					checkpoint.StartAll(k, img, threads)
					k.RunFor(20_000_000_000)
					for _, th := range threads {
						if !th.Exited {
							t.Fatalf("restored worker stuck: state=%v pc=%#x", th.State, th.Regs.PC)
						}
					}
					memDump, err := k.ReadMem(s, dataBase, int(dataLen))
					if err != nil {
						t.Fatal(err)
					}
					return finalLog(t, k, s, rounds), memDump, k.Stats()
				}
				logF, memF, statsF := run(imgFull)
				logD, memD, statsD := run(imgDelta)
				if !bytes.Equal(logF, logD) {
					t.Fatalf("restored logs differ\n full %v\ndelta %v", logF, logD)
				}
				if !bytes.Equal(memF, memD) {
					t.Fatal("restored final memory differs")
				}
				if !reflect.DeepEqual(statsF, statsD) {
					t.Fatalf("restored kernel stats differ:\n full %+v\ndelta %+v", statsF, statsD)
				}
			})
		}
	}
}

// TestDeltaChainRestoreAcrossCPUAndLockModel captures a base + two-delta
// chain on a 4-CPU fine-locked kernel and restores it on a 1-CPU big-
// lock kernel: exported state is CPU-count- and lock-model-independent,
// and HomeCPU folds mod the target's CPU count.
func TestDeltaChainRestoreAcrossCPUAndLockModel(t *testing.T) {
	const rounds = 10
	want := undisturbedResult(t, core.Config{Model: core.ModelProcess}, rounds)

	cfg := core.Config{
		Model: core.ModelInterrupt, NumCPUs: 4, LockModel: core.LockFine,
	}
	_, final, _, _ := deltaChain(t, cfg, rounds, 200_000, 500_000, 900_000)

	k2 := core.New(core.Config{Model: core.ModelProcess, NumCPUs: 1, LockModel: core.LockBig})
	s2, threads, err := checkpoint.Restore(k2, final)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range threads {
		if th.HomeCPU != 0 {
			t.Fatalf("restored HomeCPU %d on a 1-CPU kernel", th.HomeCPU)
		}
	}
	checkpoint.StartAll(k2, final, threads)
	k2.RunFor(20_000_000_000)
	for _, th := range threads {
		if !th.Exited {
			t.Fatalf("restored worker stuck: state=%v pc=%#x", th.State, th.Regs.PC)
		}
	}
	if got := finalLog(t, k2, s2, rounds); !bytes.Equal(got, want) {
		t.Fatalf("4cpu-fine → 1cpu-big delta-chain restore differs\n got %v\nwant %v", got, want)
	}
}

// TestMigratePrecopyParallelHost runs the whole pre-copy loop — warm
// snapshots and delta captures interleaved with RunFor on a live
// kernel — under real host parallelism on both ends (4 CPUs, fine
// locks), so a race between the capture walk and executing CPUs fails
// under -race with a pointed test. The migrated run must still finish
// with the undisturbed result.
func TestMigratePrecopyParallelHost(t *testing.T) {
	const rounds = 12
	cfg := core.Config{
		Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
		NumCPUs: 4, LockModel: core.LockFine, ParallelHost: true,
	}
	want := undisturbedResult(t, cfg, rounds)

	k1 := core.New(cfg)
	s1, _ := buildWorkload(t, k1, rounds)
	k1.RunFor(100_000)

	k2 := core.New(cfg)
	s2, threads, rep, err := checkpoint.MigratePrecopy(k1, s1, k2, checkpoint.MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k2.RunFor(20_000_000_000)
	for _, th := range threads {
		if !th.Exited {
			t.Fatalf("migrated worker stuck: state=%v pc=%#x", th.State, th.Regs.PC)
		}
	}
	if got := finalLog(t, k2, s2, rounds); !bytes.Equal(got, want) {
		t.Fatalf("parallel-host pre-copy migrated result differs\n got %v\nwant %v", got, want)
	}
	if sc := rep.StopAndCopyDowntime(checkpoint.MigrateOptions{}); rep.DowntimeCycles >= sc {
		t.Fatalf("pre-copy downtime %d ≥ stop-and-copy downtime %d", rep.DowntimeCycles, sc)
	}
}

const (
	bigBase  = 0x0010_0000
	bigLen   = 4 << 20 // the mostly-idle 4 MiB working set
	hotPages = 4
)

// buildIdleWriter creates a space with a fully resident 4 MiB region and
// one thread that keeps rewriting a small hot set of pages — the
// pre-copy sweet spot: a writable working set far smaller than residency.
func buildIdleWriter(t *testing.T, k *core.Kernel) (*obj.Space, *obj.Thread) {
	t.Helper()
	s := k.NewSpace()
	big := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(bigLen, true)}
	k.BindFresh(s, big)
	if _, err := k.MapInto(s, big, bigBase, 0, bigLen, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	// Touch every page so the full snapshot really is O(4 MiB).
	if err := k.WriteMem(s, bigBase, make([]byte, bigLen)); err != nil {
		t.Fatal(err)
	}

	b := prog.New(codeBase)
	b.Label("w").Movi(6, 1).Label("w.loop")
	for p := uint32(0); p < hotPages; p++ {
		b.Movi(4, bigBase+p*mem.PageSize).St(4, 0, 6)
	}
	b.ThreadSleepUS(50).Addi(6, 6, 1).Jmp("w.loop")
	img := b.MustAssemble()
	if _, err := k.LoadImage(s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	th := k.NewThread(s, 10)
	th.Regs.PC = b.Addr("w")
	k.StartThread(th)
	return s, th
}

// TestMigrationSpeedup pins the tentpole's perf claim: on a mostly-idle
// 4 MiB space, each incremental round captures ≥5× fewer frame-bytes
// than a full snapshot (in practice it is two orders of magnitude). Also
// checks the ckpt.* metrics move.
func TestMigrationSpeedup(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelProcess})
	k.EnableMetrics()
	s, _ := buildIdleWriter(t, k)
	k.RunFor(200_000)

	full, err := checkpoint.SnapshotMemory(k, s)
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := full.FrameBytes()
	if fullBytes < bigLen {
		t.Fatalf("full snapshot holds %d bytes; the 4 MiB region alone is %d", fullBytes, bigLen)
	}

	parent := full
	for round := 1; round <= 3; round++ {
		k.RunFor(300_000)
		d, img, err := checkpoint.SnapshotMemoryDelta(k, s, parent)
		if err != nil {
			t.Fatal(err)
		}
		parent = img
		db := d.FrameBytes()
		if db == 0 {
			t.Fatalf("round %d: hot writer ran but the delta is empty", round)
		}
		if fullBytes < 5*db {
			t.Fatalf("round %d: delta %d bytes vs full %d — under the pinned 5× reduction",
				round, db, fullBytes)
		}
		if d.CleanFrames == 0 {
			t.Fatalf("round %d: no frame was parent-referenced", round)
		}
	}

	m := k.Metrics
	if m.CkptSnapshots.Value() == 0 || m.CkptDeltaSnapshots.Value() != 3 {
		t.Fatalf("ckpt snapshot counters: full=%d delta=%d", m.CkptSnapshots.Value(), m.CkptDeltaSnapshots.Value())
	}
	if m.CkptFramesClean.Value() <= m.CkptFramesCaptured.Value() {
		t.Fatalf("mostly-idle space captured more frames (%d) than it skipped (%d)",
			m.CkptFramesCaptured.Value(), m.CkptFramesClean.Value())
	}
}

// TestMigratePrecopy migrates the alternating-worker space mid-run with
// the pre-copy loop and checks (a) the restored run finishes with the
// undisturbed result, (b) downtime covers only the residual — strictly
// less than what stop-and-copy would have frozen the space for.
func TestMigratePrecopy(t *testing.T) {
	const rounds = 12
	cfg := core.Config{Model: core.ModelProcess}
	want := undisturbedResult(t, cfg, rounds)

	k1 := core.New(cfg)
	k1.EnableMetrics()
	s1, _ := buildWorkload(t, k1, rounds)
	k1.RunFor(100_000)
	live := 0
	for _, th := range s1.Threads {
		if !th.Exited {
			live++
		}
	}
	if live == 0 {
		t.Fatal("workload finished before the migration point; nothing in flight to pre-copy")
	}

	k2 := core.New(cfg)
	s2, threads, rep, err := checkpoint.MigratePrecopy(k1, s1, k2, checkpoint.MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Dead {
		t.Fatal("source space survived the migration")
	}
	k2.RunFor(20_000_000_000)
	for _, th := range threads {
		if !th.Exited {
			t.Fatalf("migrated worker stuck: state=%v pc=%#x", th.State, th.Regs.PC)
		}
	}
	if got := finalLog(t, k2, s2, rounds); !bytes.Equal(got, want) {
		t.Fatalf("pre-copy migrated result differs\n got %v\nwant %v", got, want)
	}

	if len(rep.Rounds) < 2 || !rep.Rounds[len(rep.Rounds)-1].Final {
		t.Fatalf("malformed report rounds: %+v", rep.Rounds)
	}
	sc := rep.StopAndCopyDowntime(checkpoint.MigrateOptions{})
	if rep.DowntimeCycles >= sc {
		t.Fatalf("pre-copy downtime %d ≥ stop-and-copy downtime %d", rep.DowntimeCycles, sc)
	}
	if rep.DowntimeCycles == 0 || rep.TotalCycles < rep.DowntimeCycles {
		t.Fatalf("inconsistent report: total=%d downtime=%d", rep.TotalCycles, rep.DowntimeCycles)
	}
	if got := k1.Metrics.CkptDowntimeCycles.Value(); got != rep.DowntimeCycles {
		t.Fatalf("ckpt.migrate.downtime_cycles=%d, report says %d", got, rep.DowntimeCycles)
	}
}
