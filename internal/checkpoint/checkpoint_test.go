package checkpoint_test

import (
	"bytes"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	dataLen  = 8 * mem.PageSize

	mtxVA  = dataBase + 0x10
	cndVA  = dataBase + 0x14
	turnVA = dataBase + 0x100
	curVA  = dataBase + 0x104 // shared log cursor (word index)
	logVA  = dataBase + 0x200 // shared log
)

// buildWorkload creates a space with a deterministic two-thread program:
// strict cond-variable alternation appending (1000+round) and (2000+round)
// to a shared log, with periodic sleeps thrown in so captures land inside
// thread_sleep, mutex_lock, and cond_wait at different times.
func buildWorkload(t *testing.T, k *core.Kernel, rounds int) (*obj.Space, []*obj.Thread) {
	t.Helper()
	s := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(dataLen, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, dataBase, 0, dataLen, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	for _, h := range []struct {
		va uint32
		ot sys.ObjType
	}{{mtxVA, sys.ObjMutex}, {cndVA, sys.ObjCond}} {
		o, _ := obj.New(h.ot)
		if err := k.Bind(s, h.va, o); err != nil {
			t.Fatal(err)
		}
	}

	b := prog.New(codeBase)
	worker := func(name string, myTurn, nextTurn, tag uint32) {
		b.Label(name).Movi(6, 0).
			Label(name+".round").
			MutexLock(mtxVA).
			Label(name+".wait").
			Movi(4, turnVA).Ld(5, 4, 0).
			Movi(2, myTurn)
		b.Beq(5, 2, name+".go")
		b.CondWait(cndVA, mtxVA).
			Jmp(name+".wait").
			Label(name+".go").
			// log[cur] = tag + round; cur++
			Movi(4, curVA).Ld(5, 4, 0).
			Movi(2, 2).Shl(3, 5, 2).Addi(3, 3, logVA). // &log[cur]
			Addi(5, 5, 1).St(4, 0, 5).
			Movi(2, tag).Add(2, 2, 6).St(3, 0, 2).
			// turn = nextTurn; broadcast; unlock
			Movi(4, turnVA).Movi(5, nextTurn).St(4, 0, 5).
			CondBroadcast(cndVA).
			MutexUnlock(mtxVA).
			ThreadSleepUS(50).
			Addi(6, 6, 1).Movi(5, uint32(rounds)).Blt(6, 5, name+".round").
			Halt()
	}
	worker("wA", 0, 1, 1000)
	worker("wB", 1, 0, 2000)
	img := b.MustAssemble()
	if _, err := k.LoadImage(s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	var threads []*obj.Thread
	for _, label := range []string{"wA", "wB"} {
		th := k.NewThread(s, 10)
		th.Regs.PC = b.Addr(label)
		k.StartThread(th)
		threads = append(threads, th)
	}
	return s, threads
}

// finalLog reads the shared log after completion.
func finalLog(t *testing.T, k *core.Kernel, s *obj.Space, rounds int) []byte {
	t.Helper()
	out, err := k.ReadMem(s, logVA, rounds*2*4)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runToCompletion runs until both workers exit.
func runToCompletion(t *testing.T, k *core.Kernel, threads []*obj.Thread) {
	t.Helper()
	k.RunFor(20_000_000_000)
	for _, th := range threads {
		if !th.Exited {
			t.Fatalf("worker %d stuck: state=%v pc=%#x", th.ID, th.State, th.Regs.PC)
		}
	}
}

func undisturbedResult(t *testing.T, cfg core.Config, rounds int) []byte {
	k := core.New(cfg)
	s, threads := buildWorkload(t, k, rounds)
	runToCompletion(t, k, threads)
	return finalLog(t, k, s, rounds)
}

// TestCheckpointRestoreCorrectness is the paper's correctness property
// (§4.1): capture at an arbitrary time, destroy, re-create from the
// captured state — the result must be indistinguishable from an
// undisturbed run. Capture points sweep across the run so they land
// inside cond_wait (PC rewritten to mutex_lock), thread_sleep (deadline
// rolled into R2/R3), mutex_lock waits, and plain user code.
func TestCheckpointRestoreCorrectness(t *testing.T) {
	const rounds = 12
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			want := undisturbedResult(t, cfg, rounds)
			for _, cut := range []uint64{
				50_000, 120_000, 300_000, 700_000, 1_500_000,
				3_000_000, 6_000_000, 12_000_000,
			} {
				k1 := core.New(cfg)
				s1, _ := buildWorkload(t, k1, rounds)
				k1.RunFor(cut)

				img, err := checkpoint.Capture(k1, s1)
				if err != nil {
					t.Fatalf("cut %d: capture: %v", cut, err)
				}
				// Destroy the original entirely.
				for _, th := range append([]*obj.Thread(nil), s1.Threads...) {
					k1.DestroyThread(th)
				}

				// Restore onto a fresh kernel (a different instance:
				// this is migration).
				k2 := core.New(cfg)
				s2, threads, err := checkpoint.Restore(k2, img)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				checkpoint.StartAll(k2, img, threads)
				k2.RunFor(20_000_000_000)
				for _, th := range threads {
					if !th.Exited {
						t.Fatalf("cut %d: restored worker %d stuck: state=%v pc=%#x r=%v",
							cut, th.ID, th.State, th.Regs.PC, th.Regs.R)
					}
				}
				got := finalLog(t, k2, s2, rounds)
				if !bytes.Equal(got, want) {
					t.Fatalf("cut %d: restored result differs\n got %v\nwant %v", cut, got, want)
				}
			}
		})
	}
}

// TestMigrationAcrossExecutionModels captures from one execution model
// and restores into the other — the exported thread state is model-
// independent, since no kernel stack state exists to translate (the
// paper's central claim put to work).
func TestMigrationAcrossExecutionModels(t *testing.T) {
	const rounds = 10
	want := undisturbedResult(t, core.Config{Model: core.ModelProcess}, rounds)

	pairs := []struct{ from, to core.Config }{
		{core.Config{Model: core.ModelProcess, Preempt: core.PreemptFull},
			core.Config{Model: core.ModelInterrupt}},
		{core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial},
			core.Config{Model: core.ModelProcess}},
	}
	for _, pair := range pairs {
		k1 := core.New(pair.from)
		s1, _ := buildWorkload(t, k1, rounds)
		k1.RunFor(800_000)

		k2 := core.New(pair.to)
		s2, threads, err := checkpoint.Migrate(k1, s1, k2)
		if err != nil {
			t.Fatal(err)
		}
		if !s1.Dead {
			t.Fatal("source space not dead after migration")
		}
		k2.RunFor(20_000_000_000)
		for _, th := range threads {
			if !th.Exited {
				t.Fatalf("%s->%s: migrated worker stuck: state=%v pc=%#x",
					pair.from.Name(), pair.to.Name(), th.State, th.Regs.PC)
			}
		}
		got := finalLog(t, k2, s2, rounds)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s->%s: migrated result differs", pair.from.Name(), pair.to.Name())
		}
	}
}

// TestCaptureIsPrompt verifies the promptness property: capture completes
// immediately (without running the workload further) even while threads
// are blocked inside long and multi-stage syscalls.
func TestCaptureIsPrompt(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelProcess})
	s, _ := buildWorkload(t, k, 8)
	k.RunFor(200_000)
	before := k.Clock.Now()
	if _, err := checkpoint.Capture(k, s); err != nil {
		t.Fatal(err)
	}
	if k.Clock.Now() != before {
		t.Fatalf("capture consumed %d guest cycles; promptness means it needs none",
			k.Clock.Now()-before)
	}
}

// TestRestoredBlockedThreadStateNamesEntrypoint: a thread captured while
// blocked restores with its PC at a syscall entrypoint — the explicit
// continuation.
func TestRestoredBlockedThreadStateNamesEntrypoint(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelInterrupt})
	s, _ := buildWorkload(t, k, 8)
	k.RunFor(400_000)
	img, err := checkpoint.Capture(k, s)
	if err != nil {
		t.Fatal(err)
	}
	sawEntry := false
	for _, tr := range img.Threads {
		pc := tr.State[core.TSPc]
		if n := sysNumOfEntry(pc); n >= 0 {
			sawEntry = true
			if _, ok := sys.Lookup(n); !ok {
				t.Fatalf("captured PC %#x names invalid syscall %d", pc, n)
			}
		}
	}
	if !sawEntry {
		t.Skip("no thread happened to be in-kernel at this cut (timing)")
	}
}

func sysNumOfEntry(pc uint32) int {
	const base, size = 0xFFF0_0000, 8
	if pc < base || pc >= base+256*size || (pc-base)%size != 0 {
		return -1
	}
	return int(pc-base) / size
}
