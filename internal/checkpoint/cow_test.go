package checkpoint_test

// Shared-frame fidelity: a checkpoint of a space whose regions alias a
// frame copy-on-write (the zero-copy IPC state) must record the frame
// once and restore the same sharing structure — one backing frame, the
// right refcount, the COW write protection — not a silent deep copy that
// would leak memory and lose the break-on-store semantics.

import (
	"bytes"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/sys"
)

const (
	cowABase = 0x0100_0000 // "sender" window
	cowBBase = 0x0200_0000 // "receiver" window
)

// buildSharedSpace creates a space with two 2-page regions where region
// B's page 0 COW-shares region A's page 0 (A's page 1 stays private), and
// returns the space plus both region handles' VAs.
func buildSharedSpace(t *testing.T, k *core.Kernel) (*obj.Space, uint32, uint32) {
	t.Helper()
	s := k.NewSpace()
	mk := func(base uint32) *obj.Region {
		r := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(2*mem.PageSize, true)}
		k.BindFresh(s, r)
		if _, err := k.MapInto(s, r, base, 0, 2*mem.PageSize, mmu.PermRW); err != nil {
			t.Fatal(err)
		}
		return r
	}
	ra := mk(cowABase)
	rb := mk(cowBBase)
	for _, page := range []uint32{0, mem.PageSize} {
		f, err := k.Alloc.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			f.Data[i] = byte(0x40 + int(page>>12) + i%7)
		}
		ra.R.Populate(page, f)
	}
	if !mmu.ShareCOW(s.AS, cowABase, s.AS, cowBBase) {
		t.Fatal("ShareCOW refused the setup transfer")
	}
	return s, ra.Hdr().VA, rb.Hdr().VA
}

// driveStore plays the fault-restart loop the kernel runs for a guest
// store, so the restored space's COW protection can be exercised without
// spinning up threads.
func driveStore(t *testing.T, as *mmu.AddrSpace, va, v uint32) (cowBreaks int) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if f := as.Store32(va, v); f == nil {
			return cowBreaks
		}
		switch cl, _ := as.Classify(va, cpu.Write); cl {
		case mmu.FaultSoft:
			if err := as.ResolveSoft(va, cpu.Write); err != nil {
				t.Fatal(err)
			}
		case mmu.FaultCOW:
			if _, err := as.ResolveCOW(va); err != nil {
				t.Fatal(err)
			}
			cowBreaks++
		default:
			t.Fatalf("store %#x: unexpected fault class %v", va, cl)
		}
	}
	t.Fatalf("store %#x: fault loop did not converge", va)
	return
}

func TestCheckpointSharedFrameIdentity(t *testing.T) {
	cfg := core.Configurations()[0]
	k := core.New(cfg)
	s, vaA, vaB := buildSharedSpace(t, k)

	img, err := checkpoint.Capture(k, s)
	if err != nil {
		t.Fatal(err)
	}
	// The image must hold exactly the two distinct frames (shared page 0
	// once, private page 1 once), with the COW bit recorded.
	if len(img.Frames) != 2 {
		t.Fatalf("image holds %d frames, want 2 (shared page deduplicated)", len(img.Frames))
	}
	cows := 0
	for _, fr := range img.Frames {
		if fr.Cow {
			cows++
		}
	}
	if cows != 1 {
		t.Fatalf("image records %d COW frames, want 1", cows)
	}

	// Baseline: what a bare space costs in frames (the reserved handle
	// window), so the image's own footprint can be isolated.
	k2 := core.New(cfg)
	base := k2.Alloc.InUse()
	k2.NewSpace()
	spaceCost := k2.Alloc.InUse() - base

	k2 = core.New(cfg)
	before := k2.Alloc.InUse()
	s2, _, err := checkpoint.Restore(k2, img)
	if err != nil {
		t.Fatal(err)
	}
	if got := k2.Alloc.InUse() - before - spaceCost; got != 2 {
		t.Fatalf("restore allocated %d image frames, want 2 (no silent deep copy)", got)
	}
	ra2 := s2.At(vaA).(*obj.Region)
	rb2 := s2.At(vaB).(*obj.Region)
	fa := ra2.R.FrameAt(0)
	fb := rb2.R.FrameAt(0)
	if fa == nil || fa != fb {
		t.Fatalf("restored regions do not alias one frame: a=%p b=%p", fa, fb)
	}
	if fa.Refs != 2 || !fa.Cow {
		t.Fatalf("restored shared frame Refs=%d Cow=%v, want 2 true", fa.Refs, fa.Cow)
	}
	if priv := ra2.R.FrameAt(mem.PageSize); priv == nil || priv.Refs != 1 || priv.Cow {
		t.Fatalf("restored private frame wrong: %+v", priv)
	}
	want, err := k.ReadMem(s, cowBBase, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k2.ReadMem(s2, cowBBase, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restored shared page contents differ from the original")
	}

	// The restored share still breaks on store: writing through B copies
	// the page, leaves A's view intact, and drops the refcount to 1.
	if n := driveStore(t, s2.AS, cowBBase, 0xDEAD); n != 1 {
		t.Fatalf("store through restored share took %d COW breaks, want 1", n)
	}
	if ra2.R.FrameAt(0) == rb2.R.FrameAt(0) {
		t.Fatal("COW break did not separate the restored frames")
	}
	if fa2 := ra2.R.FrameAt(0); fa2.Refs != 1 {
		t.Fatalf("original frame Refs=%d after break, want 1", fa2.Refs)
	}
	a0, err := k2.ReadMem(s2, cowABase, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a0, want) {
		t.Fatal("COW break through B corrupted A's view of the page")
	}
	if v, flt := s2.AS.Load32(cowBBase); flt != nil || v != 0xDEAD {
		t.Fatalf("B's post-break read = %#x, fault=%v; want 0xDEAD", v, flt)
	}
}

// TestCheckpointSharedFrameSurvivesDoubleHop round-trips the image twice:
// sharing structure must be stable under repeated capture/restore.
func TestCheckpointSharedFrameSurvivesDoubleHop(t *testing.T) {
	cfg := core.Configurations()[0]
	k := core.New(cfg)
	s, vaA, vaB := buildSharedSpace(t, k)

	img1, err := checkpoint.Capture(k, s)
	if err != nil {
		t.Fatal(err)
	}
	k2 := core.New(cfg)
	s2, _, err := checkpoint.Restore(k2, img1)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := checkpoint.Capture(k2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(img2.Frames) != len(img1.Frames) {
		t.Fatalf("second capture holds %d frames, first %d", len(img2.Frames), len(img1.Frames))
	}
	k3 := core.New(cfg)
	s3, _, err := checkpoint.Restore(k3, img2)
	if err != nil {
		t.Fatal(err)
	}
	fa := s3.At(vaA).(*obj.Region).R.FrameAt(0)
	fb := s3.At(vaB).(*obj.Region).R.FrameAt(0)
	if fa == nil || fa != fb || fa.Refs != 2 || !fa.Cow {
		t.Fatalf("after two hops: a=%p b=%p Refs=%d — sharing structure decayed",
			fa, fb, fa.Refs)
	}
}
