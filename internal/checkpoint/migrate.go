// Pre-copy live migration: move a space between kernels while it keeps
// running, using delta snapshots to shrink each round until only a
// small residual must be stop-and-copied.
//
// The loop is the classic one (Clark et al. adapted to simulated time):
// a warm baseline snapshot is taken without stopping the space, its
// transfer is modeled as cycles during which the source keeps executing
// (RunFor on the source kernel), then successive delta rounds capture
// only what the previous round's transfer window dirtied. When a round
// is small enough — or the round budget is spent — the space is stopped
// and the residual delta plus thread state crosses during downtime.
//
// Downtime is reported in simulated cycles, separately from total
// migration time. It is a model of the transfer link (XferCyclesPerPage
// etc.), not time burned on either kernel's clock: the source is
// destroyed at the stop point and the destination resumes from zero
// perturbation, exactly like the instantaneous Migrate. What pre-copy
// buys is that the *source* kept running through every warm round —
// RunFor advanced it through the modeled transfer — so the work lost to
// the freeze is the residual's downtime, not the full image's.
package checkpoint

import (
	"repro/internal/core"
	"repro/internal/obj"
)

// Transfer-model defaults: a page crossing the wire costs
// DefaultXferCyclesPerPage simulated cycles (4 KiB at ~390 MB/s on the
// 200 MHz clock — late-90s gigabit-class interconnect), a thread's
// exported state a flat DefaultXferCyclesPerThread.
const (
	DefaultXferCyclesPerPage   = 2048
	DefaultXferCyclesPerThread = 256
	DefaultPrecopyRounds       = 3
	DefaultStopEarlyPages      = 8
)

// MigrateOptions tunes the pre-copy loop. The zero value selects the
// defaults above.
type MigrateOptions struct {
	Rounds              int    // max warm delta rounds after the baseline
	XferCyclesPerPage   uint64 // modeled cycles to ship one frame
	XferCyclesPerThread uint64 // modeled cycles to ship one thread state
	StopEarlyPages      int    // stop-and-copy once a warm round leaves ≤ this many dirty frames
}

func (o MigrateOptions) withDefaults() MigrateOptions {
	if o.Rounds == 0 {
		o.Rounds = DefaultPrecopyRounds
	}
	if o.XferCyclesPerPage == 0 {
		o.XferCyclesPerPage = DefaultXferCyclesPerPage
	}
	if o.XferCyclesPerThread == 0 {
		o.XferCyclesPerThread = DefaultXferCyclesPerThread
	}
	if o.StopEarlyPages == 0 {
		o.StopEarlyPages = DefaultStopEarlyPages
	}
	return o
}

// MigrateRound describes one transfer round of a pre-copy migration.
type MigrateRound struct {
	Frames int    // frames shipped this round
	Bytes  int    // payload bytes shipped this round
	Cycles uint64 // modeled transfer cycles (source running, except the final round)
	Final  bool   // the stop-and-copy residual
}

// MigrateReport is the accounting of one pre-copy migration.
type MigrateReport struct {
	Rounds         []MigrateRound // [0] is the warm baseline
	TotalCycles    uint64         // all rounds, warm and final
	DowntimeCycles uint64         // stop-to-resume: residual frames + thread states
	Threads        int            // thread states shipped during downtime
	FullFrames     int            // resident frames at the stop point (what stop-and-copy ships)
	FullBytes      int            // their payload (stop-and-copy's downtime numerator)
}

// StopAndCopyDowntime models what a non-incremental Migrate of the same
// space would have frozen it for under the same transfer model — the
// baseline DowntimeCycles is compared against.
func (rep *MigrateReport) StopAndCopyDowntime(opt MigrateOptions) uint64 {
	opt = opt.withDefaults()
	return uint64(rep.FullFrames)*opt.XferCyclesPerPage +
		uint64(rep.Threads)*opt.XferCyclesPerThread
}

// MigratePrecopy live-migrates space s from k1 to k2. The source keeps
// running (k1.RunFor models each warm transfer) until the residual
// dirty set is small, then the space is stopped, the residual shipped,
// and the space restored and restarted on k2. Returns the restored
// space, its threads, and the transfer report.
func MigratePrecopy(k1 *core.Kernel, s *obj.Space, k2 *core.Kernel, opt MigrateOptions) (*obj.Space, []*obj.Thread, *MigrateReport, error) {
	opt = opt.withDefaults()
	rep := &MigrateReport{}

	// Warm baseline: full memory snapshot, space running.
	parent, err := SnapshotMemory(k1, s)
	if err != nil {
		return nil, nil, nil, err
	}
	cost := uint64(len(parent.Frames)) * opt.XferCyclesPerPage
	rep.Rounds = append(rep.Rounds, MigrateRound{
		Frames: len(parent.Frames), Bytes: parent.FrameBytes(), Cycles: cost,
	})
	rep.TotalCycles += cost
	k1.RunFor(cost)

	// Warm delta rounds: each ships what the previous transfer window
	// dirtied; each shrinks if the writable working set is smaller than
	// what a full round can ship.
	for i := 0; i < opt.Rounds; i++ {
		d, img, err := SnapshotMemoryDelta(k1, s, parent)
		if err != nil {
			return nil, nil, nil, err
		}
		parent = img
		cost = uint64(len(d.Frames)) * opt.XferCyclesPerPage
		rep.Rounds = append(rep.Rounds, MigrateRound{
			Frames: len(d.Frames), Bytes: d.FrameBytes(), Cycles: cost,
		})
		rep.TotalCycles += cost
		if len(d.Frames) <= opt.StopEarlyPages {
			break // converged: the residual is cheap, stop now
		}
		k1.RunFor(cost)
	}

	// Stop-and-copy the residual: threads freeze here; everything the
	// last warm round missed crosses during downtime.
	d, finalImg, err := CaptureDelta(k1, s, parent)
	if err != nil {
		return nil, nil, nil, err
	}
	down := uint64(len(d.Frames))*opt.XferCyclesPerPage +
		uint64(len(finalImg.Threads))*opt.XferCyclesPerThread
	rep.Rounds = append(rep.Rounds, MigrateRound{
		Frames: len(d.Frames), Bytes: d.FrameBytes(), Cycles: down, Final: true,
	})
	rep.TotalCycles += down
	rep.DowntimeCycles = down
	rep.Threads = len(finalImg.Threads)
	rep.FullFrames = len(finalImg.Frames)
	rep.FullBytes = finalImg.FrameBytes()
	if k1.Metrics != nil {
		k1.Metrics.CkptDowntimeCycles.Add(down)
	}

	for _, t := range append([]*obj.Thread(nil), s.Threads...) {
		k1.DestroyThread(t)
	}
	s.Dead = true

	s2, threads, err := Restore(k2, finalImg)
	if err != nil {
		return nil, nil, nil, err
	}
	StartAll(k2, finalImg, threads)
	return s2, threads, rep, nil
}
