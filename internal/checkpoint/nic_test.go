package checkpoint_test

import (
	"bytes"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
)

// A netserve-shaped rig, by hand: one NIC queue whose rings and buffers
// live in an ordinary space's DMA region. The checkpoint carries the DMA
// pages with the space's memory and the device-side state (indices,
// pending frames, in-flight timers) in Image.NIC.
const (
	nicDMABase  = 0x0030_0000
	nicDMALen   = 16 * mem.PageSize
	nicMMIOBase = 0x00D0_0000

	nicTxRing = 0x000
	nicRxRing = 0x100
	nicShadow = 0xFF0
	nicTxBuf  = 0x800
	nicRxBuf  = 2 * mem.PageSize
	nicSlots  = 4
)

func le32(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

// TestNICCheckpointInFlight checkpoints a space whose NIC has traffic in
// every state at once — consumed TX, filled-but-undrained RX, a pending
// frame stalled on a full ring, and a raise timer in flight — restores
// it onto a fresh kernel, and watches the traffic complete.
func TestNICCheckpointInFlight(t *testing.T) {
	cfg := core.Config{Model: core.ModelProcess}
	k1 := core.New(cfg)
	s1 := k1.NewSpace()
	dmaReg, err := dev.MapDMA(k1, s1, nicDMABase, nicDMALen)
	if err != nil {
		t.Fatal(err)
	}
	qcfg := func(k *core.Kernel, r *dev.NICQueueConfig) {
		r.Clock = k.Clock
		r.Raise = func() {}
		r.TxRingOff, r.RxRingOff = nicTxRing, nicRxRing
		r.TxSlots, r.RxSlots = nicSlots, nicSlots
		r.HeadShadowOff = nicShadow
	}
	var qc1 dev.NICQueueConfig
	qcfg(k1, &qc1)
	qc1.DMA = dmaReg.R
	nic1, err := dev.NewNIC(k1.Alloc, true, 0, []dev.NICQueueConfig{qc1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.MapRegisters(s1, nicMMIOBase, mem.PageSize, nic1.QueueIO(0)); err != nil {
		t.Fatal(err)
	}
	var gotTX []byte
	nic1.OnTransmit = func(q int, tag uint32, frame []byte) {
		gotTX = append([]byte(nil), frame...)
	}

	wd := func(da, off, length, tag, own uint32) {
		for i, v := range []uint32{off, length, tag, own} {
			if err := k1.WriteMem(s1, nicDMABase+da+uint32(i)*4, le32(v)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Post 2 of 4 RX descriptors and ring the doorbell.
	wd(nicRxRing+0*dev.NICDescBytes, nicRxBuf, 0, 0, 1)
	wd(nicRxRing+1*dev.NICDescBytes, nicRxBuf+mem.PageSize, 0, 0, 1)
	if f := s1.AS.Store32(nicMMIOBase+dev.NICRegRxTail, 2); f != nil {
		t.Fatalf("RxTail doorbell faulted: %v", f)
	}

	// Publish one TX frame; the doorbell consumes it synchronously.
	txPayload := []byte("checkpoint me: tx")
	if err := k1.WriteMem(s1, nicDMABase+nicTxBuf, txPayload); err != nil {
		t.Fatal(err)
	}
	wd(nicTxRing, nicTxBuf, uint32(len(txPayload)), 7, 1)
	if f := s1.AS.Store32(nicMMIOBase+dev.NICRegTxTail, 1); f != nil {
		t.Fatalf("TxTail doorbell faulted: %v", f)
	}
	if !bytes.Equal(gotTX, txPayload) {
		t.Fatalf("TX frame not consumed before capture: %q", gotTX)
	}

	// Arm the RX interrupt (the driver's initial arm write), then three
	// deliveries: two land, the third stalls on the full ring; the raise
	// timer for the landed pair is now in flight.
	if f := s1.AS.Store32(nicMMIOBase+dev.NICRegIntrArm, 0); f != nil {
		t.Fatalf("IntrArm write faulted: %v", f)
	}
	pay := [][]byte{[]byte("rx-frame-zero"), []byte("rx-frame-one!"), []byte("rx-frame-two.")}
	for i, p := range pay {
		nic1.Deliver(0, 100+uint32(i), p)
	}

	img, err := checkpoint.CaptureWithNIC(k1, s1, nic1)
	if err != nil {
		t.Fatal(err)
	}
	if img.NIC == nil || len(img.NIC.Queues) != 1 {
		t.Fatal("image carries no NIC state")
	}
	if qs := img.NIC.Queues[0]; len(qs.Pending) != 1 || qs.RaiseDue == 0 {
		t.Fatalf("expected 1 pending frame and an in-flight raise, got %d pending, raiseDue=%d",
			len(qs.Pending), qs.RaiseDue)
	}

	// Restore on a fresh kernel; rebuild the device attachment the way
	// the original was built, then load its state.
	k2 := core.New(cfg)
	s2, _, err := checkpoint.Restore(k2, img)
	if err != nil {
		t.Fatal(err)
	}
	m := s2.AS.MappingAt(nicDMABase)
	if m == nil {
		t.Fatal("restored space lost its DMA mapping")
	}
	var qc2 dev.NICQueueConfig
	qcfg(k2, &qc2)
	qc2.DMA = m.Region
	nic2, err := dev.NewNIC(k2.Alloc, true, 0, []dev.NICQueueConfig{qc2})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.MapRegisters(s2, nicMMIOBase, mem.PageSize, nic2.QueueIO(0)); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.RestoreNIC(img, nic2); err != nil {
		t.Fatal(err)
	}

	// The two landed frames crossed inside the DMA pages.
	for i := 0; i < 2; i++ {
		got, err := k2.ReadMem(s2, nicDMABase+nicRxBuf+uint32(i)*mem.PageSize, len(pay[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pay[i]) {
			t.Fatalf("restored RX buffer %d: %q, want %q", i, got, pay[i])
		}
	}

	// The in-flight raise fires on the new kernel and publishes the head
	// shadow the driver would drain against.
	k2.RunFor(2 * dev.DefaultNICIRQLatency)
	shadow, err := k2.ReadMem(s2, nicDMABase+nicShadow, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shadow, le32(2)) {
		t.Fatalf("restored raise did not publish head shadow: %v", shadow)
	}

	// Repost a descriptor: the carried-over pending frame lands, in order.
	for i, v := range []uint32{nicRxBuf + 2*mem.PageSize, 0, 0, 1} {
		if err := k2.WriteMem(s2, nicDMABase+nicRxRing+2*dev.NICDescBytes+uint32(i)*4, le32(v)); err != nil {
			t.Fatal(err)
		}
	}
	if f := s2.AS.Store32(nicMMIOBase+dev.NICRegRxTail, 3); f != nil {
		t.Fatalf("restored RxTail doorbell faulted: %v", f)
	}
	k2.RunFor(10 * dev.DefaultNICIRQLatency)
	got, err := k2.ReadMem(s2, nicDMABase+nicRxBuf+2*mem.PageSize, len(pay[2]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pay[2]) {
		t.Fatalf("pending frame did not land after restore: %q, want %q", got, pay[2])
	}

	// Counters crossed the checkpoint and kept counting.
	c := nic2.Counters()
	if c.TxFrames != 1 || c.RxFrames != 3 || c.RingFullStalls == 0 {
		t.Fatalf("restored counters off: %+v", c)
	}
}
