// Incremental (delta) snapshots: checkpoint cost proportional to what
// changed, not what exists.
//
// A snapshot taken against a parent image re-captures the cheap
// structural state in full — threads, handle table, mappings, region
// shapes are a few hundred bytes — but frame payloads, the dominant
// cost, only for pages the dirty tracker cannot prove unchanged. A page
// may reference its parent's frame record instead of carrying bytes
// when three things hold: its region has been tracking since the parent
// was taken, the tracker never logged the page (no store, no
// frame-identity or sharing change — see internal/mmu), and the parent
// actually captured the backing frame. Because any change of a page's
// backing frame is logged, a clean page has referenced the same pinned
// frame continuously since arming, so the parent's identity map (live)
// cannot be fooled by a freed-and-recycled frame pointer.
//
// The decision is made per frame, globally: a frame aliased into
// several region slots by zero-copy IPC is parent-referenced only if
// every aliasing page is clean, and captured exactly once otherwise —
// so the restored sharing structure (refcounts, copy-on-write marks)
// is identical whichever path a page took. TestDeltaEquivalence pins
// base+delta restore bit-identical to full-image restore, the same way
// every fast path in this repo is pinned against its slow path.
package checkpoint

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/obj"
)

// PageRef names the backing frame for one present page of a delta
// snapshot: an index into the delta's own Frames when Delta is set, or
// into the parent image's Frames when the page was provably unchanged.
type PageRef struct {
	Delta bool
	Idx   int
}

// DeltaRegionRecord is a RegionRecord whose pages may reference parent
// frames. Every present page appears — a page absent here but present
// in the parent was evicted and stays absent after restore.
type DeltaRegionRecord struct {
	Size        uint32
	DemandZero  bool
	PagerPortVA uint32
	Pages       map[uint32]PageRef
}

// DeltaImage is a snapshot taken against a parent Image. Structure is
// complete (Apply needs nothing from the parent but frame bytes), so a
// delta restores anywhere the parent could, given the parent image.
type DeltaImage struct {
	Threads  []ThreadRecord
	Objects  []ObjectRecord
	Frames   []FrameRecord // dirty frames only
	Regions  []DeltaRegionRecord
	Mappings []MappingRecord
	NIC      *dev.NICState

	// CleanFrames counts the distinct frames referenced from the parent
	// instead of captured — the frames the dirty tracker saved.
	CleanFrames int
}

// FrameBytes returns the frame payload the delta actually carries: the
// transfer cost of shipping this snapshot given the receiver already
// holds the parent.
func (d *DeltaImage) FrameBytes() int {
	n := 0
	for _, f := range d.Frames {
		n += len(f.Data)
	}
	return n
}

// finalizeDelta records every present page of every walked region as a
// PageRef against parent. It returns identity maps for the frames it
// captured (frame → delta Frames index) and the frames it referenced
// from the parent (frame → parent Frames index), so the caller can
// build the applied image's live map. Tracking is re-armed.
func (c *memCap) finalizeDelta(d *DeltaImage, parent *Image) (deltaIdx, parentRef map[*mem.Frame]int) {
	// Sweep 1: decide per frame, across every region that references it.
	must := map[*mem.Frame]bool{}
	for _, r := range c.regs {
		tracking := r.DirtyTracking()
		for off := uint32(0); off < r.Size; off += mem.PageSize {
			f := r.FrameAt(off)
			if f == nil {
				continue
			}
			_, inParent := parent.live[f]
			if !tracking || r.IsDirty(off) || !inParent {
				must[f] = true
			}
		}
	}

	// Sweep 2: assign references.
	deltaIdx = map[*mem.Frame]int{}
	parentRef = map[*mem.Frame]int{}
	d.Regions = make([]DeltaRegionRecord, 0, len(c.regs))
	for _, r := range c.regs {
		rec := DeltaRegionRecord{
			Size: r.Size, DemandZero: r.DemandZero,
			PagerPortVA: c.pagerVA(r), Pages: map[uint32]PageRef{},
		}
		for off := uint32(0); off < r.Size; off += mem.PageSize {
			f := r.FrameAt(off)
			if f == nil {
				continue
			}
			if must[f] {
				i, ok := deltaIdx[f]
				if !ok {
					i = len(d.Frames)
					deltaIdx[f] = i
					d.Frames = append(d.Frames, FrameRecord{
						Data: append([]byte(nil), f.Data...), Cow: f.Cow,
					})
				}
				rec.Pages[off] = PageRef{Delta: true, Idx: i}
			} else {
				pi := parent.live[f]
				parentRef[f] = pi
				rec.Pages[off] = PageRef{Delta: false, Idx: pi}
			}
		}
		d.Regions = append(d.Regions, rec)
	}
	d.CleanFrames = len(parentRef)
	c.rearm()
	return deltaIdx, parentRef
}

// apply materializes the delta against parent into a plain Image,
// returning also the map from parent frame index to new frame index so
// CaptureDelta can graft an identity live map onto the result. Delta
// frames occupy indexes [0, len(d.Frames)); parent frames are appended
// on first reference.
func (d *DeltaImage) apply(parent *Image) (*Image, map[int]int, error) {
	img := &Image{
		Threads:  d.Threads,
		Objects:  d.Objects,
		Mappings: d.Mappings,
		NIC:      d.NIC,
		Frames:   append([]FrameRecord(nil), d.Frames...),
	}
	parentMap := map[int]int{}
	img.Regions = make([]RegionRecord, 0, len(d.Regions))
	for _, rr := range d.Regions {
		rec := RegionRecord{
			Size: rr.Size, DemandZero: rr.DemandZero,
			PagerPortVA: rr.PagerPortVA, Pages: map[uint32]int{},
		}
		// Walk pages in address order: parent frames are appended on
		// first reference, and a chained delta captured against this
		// image names them by index, so the order must be a function of
		// the delta alone — not of map iteration.
		offs := make([]uint32, 0, len(rr.Pages))
		for off := range rr.Pages {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, off := range offs {
			pr := rr.Pages[off]
			if pr.Delta {
				if pr.Idx < 0 || pr.Idx >= len(d.Frames) {
					return nil, nil, fmt.Errorf("checkpoint: delta frame %d out of range", pr.Idx)
				}
				rec.Pages[off] = pr.Idx
				continue
			}
			ni, ok := parentMap[pr.Idx]
			if !ok {
				if parent == nil || pr.Idx < 0 || pr.Idx >= len(parent.Frames) {
					return nil, nil, fmt.Errorf("checkpoint: parent frame %d not available", pr.Idx)
				}
				ni = len(img.Frames)
				img.Frames = append(img.Frames, parent.Frames[pr.Idx])
				parentMap[pr.Idx] = ni
			}
			rec.Pages[off] = ni
		}
		img.Regions = append(img.Regions, rec)
	}
	return img, parentMap, nil
}

// Apply materializes the delta against its parent into a plain Image,
// restorable with Restore like any full snapshot. Applying a chain is
// just folding: Apply each delta onto the image produced by the last.
func (d *DeltaImage) Apply(parent *Image) (*Image, error) {
	img, _, err := d.apply(parent)
	return img, err
}

// graftLive builds img.live from the walker's identity maps and apply's
// parent index remapping, so img can itself parent the next delta.
func graftLive(img *Image, deltaIdx, parentRef map[*mem.Frame]int, parentMap map[int]int) {
	img.live = make(map[*mem.Frame]int, len(deltaIdx)+len(parentRef))
	for f, i := range deltaIdx {
		img.live[f] = i
	}
	for f, pi := range parentRef {
		img.live[f] = parentMap[pi]
	}
}

// CaptureDelta checkpoints space s against parent (an Image previously
// captured from the same live space): a full Capture whose frame
// payload holds only what changed. It returns both the delta (what a
// migration would ship) and the materialized image (delta applied to
// parent, ready for Restore or to parent the next delta). Threads are
// left stopped, exactly like Capture.
func CaptureDelta(k *core.Kernel, s *obj.Space, parent *Image) (*DeltaImage, *Image, error) {
	d := &DeltaImage{}
	c := newMemCap(s)
	d.Threads, d.Objects, d.Mappings = captureStruct(k, s, c)
	deltaIdx, parentRef := c.finalizeDelta(d, parent)
	img, parentMap, err := d.apply(parent)
	if err != nil {
		return nil, nil, err
	}
	graftLive(img, deltaIdx, parentRef, parentMap)
	countDelta(k, d)
	return d, img, nil
}

// walkRegions registers every region reachable from s's mappings and
// region handles without touching thread state — the enumeration
// captureStruct performs, minus stopping the space.
func walkRegions(s *obj.Space, c *memCap) {
	for _, m := range s.AS.Mappings() {
		if m.Base == core.KObjBase {
			continue
		}
		c.regionOf(m.Region)
	}
	for _, o := range s.Objects {
		if r, ok := o.(*obj.Region); ok && !r.Hdr().Dead {
			c.regionOf(r.R)
		}
	}
}

// SnapshotMemory captures only the memory of s — no thread is stopped,
// no structural state is recorded. The simulator is host-driven, so
// between RunFor slices guest memory is quiescent and the copy is
// consistent; the space keeps running (in simulated time) entirely
// unperturbed. The result arms dirty tracking and can parent deltas:
// this is the warm baseline of a pre-copy migration.
func SnapshotMemory(k *core.Kernel, s *obj.Space) (*Image, error) {
	img := &Image{}
	c := newMemCap(s)
	walkRegions(s, c)
	c.finalizeFull(img)
	if k.Metrics != nil {
		k.Metrics.CkptSnapshots.Inc()
		k.Metrics.CkptFramesCaptured.Add(uint64(len(img.Frames)))
	}
	return img, nil
}

// SnapshotMemoryDelta is SnapshotMemory against a parent: it captures
// the frames dirtied since the parent was taken, again without stopping
// the space. Returns the delta and the materialized image.
func SnapshotMemoryDelta(k *core.Kernel, s *obj.Space, parent *Image) (*DeltaImage, *Image, error) {
	d := &DeltaImage{}
	c := newMemCap(s)
	walkRegions(s, c)
	deltaIdx, parentRef := c.finalizeDelta(d, parent)
	img, parentMap, err := d.apply(parent)
	if err != nil {
		return nil, nil, err
	}
	graftLive(img, deltaIdx, parentRef, parentMap)
	countDelta(k, d)
	return d, img, nil
}

func countDelta(k *core.Kernel, d *DeltaImage) {
	if k.Metrics == nil {
		return
	}
	k.Metrics.CkptDeltaSnapshots.Inc()
	k.Metrics.CkptFramesCaptured.Add(uint64(len(d.Frames)))
	k.Metrics.CkptFramesClean.Add(uint64(d.CleanFrames))
}
