// Package checkpoint implements user-level checkpointing, restore, and
// migration — the services the paper's atomic API exists to enable (§1,
// §4.1, and the companion work cited as [31], "User-level Checkpointing
// Through Exportable Kernel State").
//
// The checkpointer plays the role of an ordinary user-mode manager. It
// relies on exactly the two API guarantees the paper names:
//
//   - promptness: every thread's state can be captured without waiting on
//     any other user-mode activity, no matter what the thread is doing —
//     including sleeping inside a "long" system call or mid-way through a
//     multi-stage IPC;
//   - correctness: a thread destroyed and re-created from its captured
//     state "behaves indistinguishably from the original". No kernel
//     stack needs saving because there is nothing on it worth saving: a
//     blocked thread's user PC names the syscall entrypoint that
//     transparently resumes its operation (mutex_lock re-waits,
//     thread_sleep re-arms from the rolled-forward deadline in R2/R3, an
//     interrupted IPC continues from its rolled-forward buffer registers).
//
// Because wait-queue membership is never part of a thread's exported
// state, restore does not reconstruct wait queues at all: a thread that
// was blocked simply restarts its interrupted system call and re-blocks
// by itself. This is the paper's continuation-in-the-registers design
// doing its job.
package checkpoint

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/sys"
)

// ThreadRecord captures one thread.
type ThreadRecord struct {
	OldID    uint32
	HandleVA uint32
	State    [core.ThreadStateWords]uint32
	// HomeCPU is the simulated CPU the thread last ran on. Restore maps
	// it mod the target kernel's CPU count, so an image taken on a
	// 4-CPU kernel restores sensibly on a uniprocessor and vice versa.
	HomeCPU int
	// Both IPC connection halves, for intra-image relinking (peer IDs
	// are pre-capture thread IDs).
	CliPhase  obj.IPCPhase
	CliPeerID uint32
	SrvPhase  obj.IPCPhase
	SrvPeerID uint32
}

// ObjectRecord captures one handle-table entry (non-thread, non-space).
type ObjectRecord struct {
	VA   uint32
	Type sys.ObjType
	Name string

	// Type-specific state.
	MutexLocked   bool
	MutexHolderID uint32
	RegionIdx     int    // Regions index for region objects (-1 otherwise)
	MappingIdx    int    // Mappings index for mapping objects (-1 otherwise)
	RefTargetVA   uint32 // handle VA of the referenced object (same space)
	RefValid      bool
	PortsetPorts  []uint32 // handle VAs of member ports
}

// FrameRecord captures one physical frame's contents. Regions reference
// frames by index rather than embedding bytes so that a frame aliased
// into several region slots by the zero-copy IPC path is captured once
// and restored as one frame with the same sharing structure (refcount,
// copy-on-write protection) — not silently deep-copied.
type FrameRecord struct {
	Data []byte
	Cow  bool // stores must fault so the share can be broken
}

// RegionRecord captures an exportable memory region and its present
// pages, each page naming its backing frame in Image.Frames.
type RegionRecord struct {
	Size        uint32
	DemandZero  bool
	PagerPortVA uint32 // handle VA of the pager port within the image, 0 if none
	Pages       map[uint32]int
}

// MappingRecord captures one installed mapping.
type MappingRecord struct {
	Base      uint32
	Size      uint32
	RegionIdx int
	RegionOff uint32
	Perm      mmu.Perm
}

// Image is a complete space checkpoint.
type Image struct {
	Threads  []ThreadRecord
	Objects  []ObjectRecord
	Frames   []FrameRecord
	Regions  []RegionRecord
	Mappings []MappingRecord

	// NIC, when non-nil, carries the saved state of a network interface
	// whose rings live in this space's memory (CaptureWithNIC). The DMA
	// pages themselves are ordinary region pages and travel in Frames;
	// this is the device-side state: ring indexes, interrupt posture,
	// in-flight timers and pending wire frames.
	NIC *dev.NICState

	// live maps the physical frames this capture walked to their Frames
	// indexes. It is transient (identity-based, meaningless outside the
	// source kernel) and exists so the image can serve as the parent of
	// a later delta snapshot: a page still backed by a frame in live,
	// and clean per the dirty tracker, need not be captured again.
	live map[*mem.Frame]int
}

// FrameBytes returns the frame payload carried by the image — the
// dominant cost of a snapshot, and the quantity delta snapshots shrink.
func (img *Image) FrameBytes() int {
	n := 0
	for _, f := range img.Frames {
		n += len(f.Data)
	}
	return n
}

// memCap accumulates the distinct regions reachable from a space's
// mappings and region handles. Page contents are recorded in a finalize
// sweep (finalizeFull or finalizeDelta) so that full and delta snapshots
// share one enumeration, and so the delta sweep can decide captured-vs-
// parent-referenced per *frame* globally — a frame aliased into several
// regions by zero-copy IPC must resolve the same way at every site.
type memCap struct {
	s    *obj.Space
	idx  map[*mmu.Region]int
	regs []*mmu.Region
}

func newMemCap(s *obj.Space) *memCap {
	return &memCap{s: s, idx: map[*mmu.Region]int{}}
}

func (c *memCap) regionOf(r *mmu.Region) int {
	if i, ok := c.idx[r]; ok {
		return i
	}
	c.idx[r] = len(c.regs)
	c.regs = append(c.regs, r)
	return c.idx[r]
}

func (c *memCap) pagerVA(r *mmu.Region) uint32 {
	if p, ok := r.Pager.(*obj.Port); ok && p != nil && p.Owner == c.s {
		return p.VA
	}
	return 0
}

// finalizeFull records every present page of every walked region,
// deduplicating frames by identity, and leaves img able to parent a
// delta (live map filled, dirty tracking re-armed on all regions).
func (c *memCap) finalizeFull(img *Image) {
	frameIdx := map[*mem.Frame]int{}
	frameOf := func(f *mem.Frame) int {
		if i, ok := frameIdx[f]; ok {
			return i
		}
		frameIdx[f] = len(img.Frames)
		img.Frames = append(img.Frames, FrameRecord{
			Data: append([]byte(nil), f.Data...), Cow: f.Cow,
		})
		return frameIdx[f]
	}
	img.Regions = make([]RegionRecord, 0, len(c.regs))
	for _, r := range c.regs {
		rec := RegionRecord{
			Size: r.Size, DemandZero: r.DemandZero,
			PagerPortVA: c.pagerVA(r), Pages: map[uint32]int{},
		}
		for off := uint32(0); off < r.Size; off += mem.PageSize {
			if f := r.FrameAt(off); f != nil {
				rec.Pages[off] = frameOf(f)
			}
		}
		img.Regions = append(img.Regions, rec)
	}
	img.live = frameIdx
	c.rearm()
}

// rearm restarts dirty tracking on every walked region, making the
// snapshot just taken a valid delta parent. Arming costs no simulated
// cycles (see internal/mmu), so every capture does it unconditionally.
func (c *memCap) rearm() {
	for _, r := range c.regs {
		r.StartDirtyTracking()
	}
}

// Capture checkpoints space s: stops every thread (promptly — settling
// any thread the full-preemption configuration parked mid-kernel), then
// records threads, handle table, mappings, and memory. Threads are left
// stopped; call ResumeAll or discard the space.
func Capture(k *core.Kernel, s *obj.Space) (*Image, error) {
	img := &Image{}
	c := newMemCap(s)
	img.Threads, img.Objects, img.Mappings = captureStruct(k, s, c)
	c.finalizeFull(img)
	if k.Metrics != nil {
		k.Metrics.CkptSnapshots.Inc()
		k.Metrics.CkptFramesCaptured.Add(uint64(len(img.Frames)))
	}
	return img, nil
}

// captureStruct stops every thread of s (promptly), then records the
// structural side of a checkpoint — threads, handle table, mappings —
// registering every reachable region with c. Page contents are left to
// the caller's finalize sweep (full or delta).
func captureStruct(k *core.Kernel, s *obj.Space, c *memCap) (threads []ThreadRecord, objects []ObjectRecord, mappings []MappingRecord) {
	// Remember which threads were suspended *before* the checkpointer
	// froze the space: those stay stopped on restore; the rest run.
	preStopped := map[*obj.Thread]bool{}
	for _, t := range s.Threads {
		preStopped[t] = t.Stopped
		k.Settle(t)
		t.Stopped = true
	}

	mapIdx := map[*mmu.Mapping]int{}
	for _, m := range s.AS.Mappings() {
		if m.Base == core.KObjBase {
			continue // the reserved kernel-handle window is rebuilt by NewSpace
		}
		mapIdx[m] = len(mappings)
		mappings = append(mappings, MappingRecord{
			Base: m.Base, Size: m.Size,
			RegionIdx: c.regionOf(m.Region), RegionOff: m.RegionOff, Perm: m.Perm,
		})
	}

	for va, o := range s.Objects {
		h := o.Hdr()
		if h.Dead {
			continue
		}
		switch x := o.(type) {
		case *obj.Space:
			continue // the self handle is rebuilt
		case *obj.Thread:
			st := core.EncodeThreadState(x)
			if !preStopped[x] {
				st[core.TSCtl] &^= 1 // stopped only by the capture itself
			}
			tr := ThreadRecord{
				OldID: x.ID, HandleVA: va, State: st, HomeCPU: x.HomeCPU,
				CliPhase: x.IPCClient.Phase, SrvPhase: x.IPCServer.Phase,
			}
			if x.IPCClient.Peer != nil {
				tr.CliPeerID = x.IPCClient.Peer.ID
			}
			if x.IPCServer.Peer != nil {
				tr.SrvPeerID = x.IPCServer.Peer.ID
			}
			threads = append(threads, tr)
		default:
			rec := ObjectRecord{VA: va, Type: h.Type, Name: h.Name, RegionIdx: -1, MappingIdx: -1}
			switch x := o.(type) {
			case *obj.Mutex:
				rec.MutexLocked = x.Locked
				if x.Holder != nil {
					rec.MutexHolderID = x.Holder.ID
				}
			case *obj.Region:
				rec.RegionIdx = c.regionOf(x.R)
			case *obj.Mapping:
				if i, ok := mapIdx[x.M]; ok {
					rec.MappingIdx = i
				}
			case *obj.Ref:
				if x.Target != nil && x.Target.Hdr().Owner == s {
					rec.RefTargetVA = x.Target.Hdr().VA
					rec.RefValid = true
				}
			case *obj.Portset:
				for _, p := range x.Ports {
					if p.Owner == s {
						rec.PortsetPorts = append(rec.PortsetPorts, p.VA)
					}
				}
			}
			objects = append(objects, rec)
		}
		_ = h
	}
	return threads, objects, mappings
}

// CaptureWithNIC is Capture plus the device-side state of a NIC whose
// rings live in s's memory: the returned image restores to a space whose
// in-flight transmit/receive traffic resumes where it left off (pair
// with RestoreNIC after Restore).
func CaptureWithNIC(k *core.Kernel, s *obj.Space, nic *dev.NIC) (*Image, error) {
	img, err := Capture(k, s)
	if err != nil {
		return nil, err
	}
	img.NIC = nic.SaveState()
	return img, nil
}

// RestoreNIC loads the image's saved NIC state into nic, which the
// caller has attached to the restored space exactly as the original was
// attached to the source (same queue shapes, same DMA region layout —
// the DMA pages themselves were restored with the space's memory).
func RestoreNIC(img *Image, nic *dev.NIC) error {
	if img.NIC == nil {
		return fmt.Errorf("checkpoint: image carries no NIC state")
	}
	return nic.LoadState(img.NIC)
}

// Restore materializes an image as a new space on kernel k2 (which may be
// a different kernel instance — that is migration). Restored threads are
// stopped; start them with StartAll.
func Restore(k2 *core.Kernel, img *Image) (*obj.Space, []*obj.Thread, error) {
	s := k2.NewSpace()

	// Regions and their contents. Frames are materialized once, on first
	// reference; a later slot naming the same frame index shares it, so
	// the image's COW structure (one backing frame, refcount = number of
	// region slots) survives the round trip.
	frames := make([]*mem.Frame, len(img.Frames))
	regions := make([]*mmu.Region, len(img.Regions))
	for i, rr := range img.Regions {
		r := mmu.NewRegion(rr.Size, rr.DemandZero)
		for off, fi := range rr.Pages {
			f := frames[fi]
			if f == nil {
				var err error
				f, err = k2.Alloc.Alloc()
				if err != nil {
					return nil, nil, err
				}
				copy(f.Data, img.Frames[fi].Data)
				f.Cow = img.Frames[fi].Cow
				frames[fi] = f
			} else {
				k2.Alloc.Share(f)
			}
			r.Populate(off, f)
		}
		regions[i] = r
	}

	// Mappings.
	mappings := make([]*mmu.Mapping, len(img.Mappings))
	for i, mr := range img.Mappings {
		m := &mmu.Mapping{
			Region: regions[mr.RegionIdx], RegionOff: mr.RegionOff,
			Base: mr.Base, Size: mr.Size, Perm: mr.Perm,
		}
		if err := s.AS.Map(m); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: remap [%#x,+%#x): %w", mr.Base, mr.Size, err)
		}
		mappings[i] = m
	}

	// Objects, first pass: create and bind.
	created := map[uint32]obj.Obj{}
	for _, or := range img.Objects {
		var o obj.Obj
		switch or.Type {
		case sys.ObjRegion:
			o = &obj.Region{Header: obj.Header{Type: or.Type}, R: regions[or.RegionIdx]}
		case sys.ObjMapping:
			om := &obj.Mapping{Header: obj.Header{Type: or.Type}, Dst: s}
			if or.MappingIdx >= 0 {
				om.M = mappings[or.MappingIdx]
			}
			o = om
		default:
			var e sys.Errno
			o, e = obj.New(or.Type)
			if e != sys.EOK {
				return nil, nil, fmt.Errorf("checkpoint: recreate %v: %v", or.Type, e)
			}
		}
		o.Hdr().Name = or.Name
		if e := s.Insert(or.VA, o); e != sys.EOK {
			return nil, nil, fmt.Errorf("checkpoint: rebind %v at %#x: %v", or.Type, or.VA, e)
		}
		created[or.VA] = o
	}

	// Threads: create, then apply states.
	idMap := map[uint32]*obj.Thread{}
	var threads []*obj.Thread
	for _, tr := range img.Threads {
		t := k2.NewThread(s, int(tr.State[core.TSPriority]))
		// Rebind at the original handle VA so handle-bearing code
		// (thread_wait, interrupts between threads) still works.
		if t.VA != tr.HandleVA {
			s.Remove(t.VA)
			t.VA = 0
			if e := s.Insert(tr.HandleVA, t); e != sys.EOK {
				return nil, nil, fmt.Errorf("checkpoint: rebind thread at %#x: %v", tr.HandleVA, e)
			}
		}
		t.HomeCPU = tr.HomeCPU % k2.NumCPUs()
		idMap[tr.OldID] = t
		threads = append(threads, t)
	}
	for i, tr := range img.Threads {
		// Old peer IDs must not alias unrelated threads on the target
		// kernel; the relink pass below reconnects image-internal
		// pairs explicitly.
		st := tr.State
		st[core.TSIPCPhase] = 0
		st[core.TSIPCPeer] = 0
		st[core.TSIPCSrvPhase] = 0
		st[core.TSIPCSrvPeer] = 0
		k2.ApplyThreadState(threads[i], st)
	}

	// Objects, second pass: internal linkage and type-specific state.
	for _, or := range img.Objects {
		o := created[or.VA]
		switch x := o.(type) {
		case *obj.Mutex:
			x.Locked = or.MutexLocked
			if t, ok := idMap[or.MutexHolderID]; ok {
				x.Holder = t
			}
		case *obj.Ref:
			if or.RefValid {
				if target, ok := created[or.RefTargetVA]; ok {
					x.Target = target
					target.Hdr().Refs++
				} else if t := s.At(or.RefTargetVA); t != nil {
					x.Target = t
					t.Hdr().Refs++
				}
			}
		case *obj.Portset:
			for _, pva := range or.PortsetPorts {
				if p, ok := created[pva].(*obj.Port); ok {
					x.AddPort(p)
				}
			}
		}
	}
	// Pager linkage.
	for i, rr := range img.Regions {
		if rr.PagerPortVA == 0 {
			continue
		}
		if p, ok := created[rr.PagerPortVA].(*obj.Port); ok {
			regions[i].Pager = p
			// Find the region object wrapping regions[i] for the
			// port's fault linkage.
			for _, or := range img.Objects {
				if or.Type == sys.ObjRegion && or.RegionIdx == i {
					p.FaultRegion = created[or.VA].(*obj.Region)
				}
			}
		}
	}

	// IPC relink: reconnect pairs captured together; halves whose peer
	// is outside the image lose their connection (the restarted
	// operation observes ENOTCONN, a clean, documented outcome).
	for i, tr := range img.Threads {
		if tr.CliPhase != obj.IPCIdle {
			if peer, ok := idMap[tr.CliPeerID]; ok {
				threads[i].IPCClient.Phase = tr.CliPhase
				threads[i].IPCClient.Peer = peer
			}
		}
		if tr.SrvPhase != obj.IPCIdle {
			if peer, ok := idMap[tr.SrvPeerID]; ok {
				threads[i].IPCServer.Phase = tr.SrvPhase
				threads[i].IPCServer.Peer = peer
			}
		}
	}
	return s, threads, nil
}

// StartAll resumes restored threads. Threads whose captured control word
// had the stopped bit set stay stopped (they were suspended at capture
// time and should remain so).
func StartAll(k2 *core.Kernel, img *Image, threads []*obj.Thread) {
	for i, t := range threads {
		if img.Threads[i].State[core.TSCtl]&1 != 0 {
			continue
		}
		k2.StartThread(t)
	}
}

// Migrate captures space s from k1, destroys it there, and restores it
// onto k2, starting its threads — transparent process migration as an
// ordinary user-level operation (paper §1).
func Migrate(k1 *core.Kernel, s *obj.Space, k2 *core.Kernel) (*obj.Space, []*obj.Thread, error) {
	img, err := Capture(k1, s)
	if err != nil {
		return nil, nil, err
	}
	for _, t := range append([]*obj.Thread(nil), s.Threads...) {
		k1.DestroyThread(t)
	}
	s.Dead = true
	s2, threads, err := Restore(k2, img)
	if err != nil {
		return nil, nil, err
	}
	StartAll(k2, img, threads)
	return s2, threads, nil
}
