package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/netsrv"
	"repro/internal/obj"
	"repro/internal/prog"
)

// Netserve client layout (one client space per NIC queue).
const (
	nwCode = 0x0001_0000 // + i*0x1000
	nwData = 0x0004_0000 // + i*64: request words @0, error count @16
	nwBuf  = 0x0020_0000 // + i*bufPages*PageSize, page-aligned for zero-copy
)

// NetserveScale parameterizes the network-server workload.
type NetserveScale struct {
	Queues    int // NIC queues (one driver thread each)
	Workers   int // worker threads per queue
	Clients   int // client threads per queue
	RPCs      int // requests per client
	RespWords int // response size in 32-bit words
}

// DefaultNetserveScale keeps the rings and workers busy long enough for
// coalescing and zero-copy to matter: 16 KiB responses, 256 connections.
func DefaultNetserveScale() NetserveScale {
	return NetserveScale{Queues: 2, Workers: 4, Clients: 8, RPCs: 16, RespWords: 4096}
}

// SmallNetserveScale is a fast variant for tests and -fast runs.
func SmallNetserveScale() NetserveScale {
	return NetserveScale{Queues: 1, Workers: 2, Clients: 2, RPCs: 4, RespWords: 1024}
}

// NewNetserve builds the network-server workload: the simulated NIC and
// the user-mode network server attach to the kernel, then client threads
// fire framed request/response RPCs at it. Every response crosses the
// RX descriptor ring as device DMA, is dispatched by the driver thread
// to a worker, and travels back to the client over IPC — zero-copy when
// the kernel allows it. Clients verify the per-page response stamps and
// count mismatches; Check reports them after the run.
func NewNetserve(k *core.Kernel, sc NetserveScale) (*Workload, error) {
	if sc.Queues <= 0 || sc.Workers <= 0 || sc.Clients <= 0 || sc.RPCs <= 0 || sc.RespWords <= 0 {
		return nil, fmt.Errorf("netserve: bad scale %+v", sc)
	}
	bufPages := (sc.RespWords*4 + int(mem.PageSize) - 1) / int(mem.PageSize)
	sv, err := netsrv.Attach(k, netsrv.Config{
		Queues: sc.Queues, Workers: sc.Workers, BufPages: bufPages,
	})
	if err != nil {
		return nil, err
	}

	scratchSz := mem.PageRound(uint32(sc.Clients * 64))
	bufSz := uint32(sc.Clients * bufPages * int(mem.PageSize))
	var done []*obj.Thread
	var cspaces []*obj.Space
	for q := 0; q < sc.Queues; q++ {
		cs := k.NewSpace()
		k.SetSpaceHome(cs, (q+sc.Queues)%k.NumCPUs())
		for _, m := range []struct {
			handle, va, size uint32
		}{
			{core.KObjBase + 0x900, nwData, scratchSz},
			{core.KObjBase + 0x908, nwBuf, bufSz},
		} {
			r, err := k.NewBoundRegion(cs, m.handle, m.size, true)
			if err != nil {
				return nil, err
			}
			if _, err := k.MapInto(cs, r, m.va, 0, m.size, mmu.PermRW); err != nil {
				return nil, err
			}
			if err := k.WriteMem(cs, m.va, make([]byte, m.size)); err != nil {
				return nil, err
			}
		}
		for i := 0; i < sc.Clients; i++ {
			refVA := sv.ClientRef(k, cs, q, i)
			conn := uint32(q*256 + i + 1)
			pb := netserveClientProgram(i, conn, refVA, sc, bufPages)
			th, err := k.SpawnProgram(cs, uint32(nwCode+i*0x1000), pb.MustAssemble(), 10)
			if err != nil {
				return nil, err
			}
			done = append(done, th)
		}
		cspaces = append(cspaces, cs)
	}

	check := func() error {
		errs := 0
		for _, cs := range cspaces {
			for i := 0; i < sc.Clients; i++ {
				eb, err := k.ReadMem(cs, uint32(nwData+i*64+16), 4)
				if err != nil {
					return err
				}
				errs += int(binary.LittleEndian.Uint32(eb))
			}
		}
		if errs != 0 {
			return fmt.Errorf("netserve: %d response stamp mismatches", errs)
		}
		return nil
	}
	return &Workload{Name: "netserve", K: k, Done: done, NIC: sv.NIC, Check: check}, nil
}

// netserveClientProgram is client i's loop: stamp a request, RPC it to
// the server, verify the first and last response pages, repeat. R6 holds
// the iteration count (the only register syscalls preserve).
func netserveClientProgram(i int, conn, refVA uint32, sc NetserveScale, bufPages int) *prog.Builder {
	slot := uint32(nwData + i*64)
	errW := slot + 16
	rbuf := uint32(nwBuf + i*bufPages*int(mem.PageSize))
	lastPage := uint32((sc.RespWords*4 - 1) / int(mem.PageSize))

	b := prog.New(uint32(nwCode + i*0x1000))
	checkStamp := func(p uint32, ok string) {
		b.Movi(1, rbuf+p*mem.PageSize).Ld(2, 1, 0).
			Movi(3, 255).And(3, 6, 3).
			Movi(4, 8).Shl(3, 3, 4).
			Movi(4, netsrv.ResponseStamp(conn, 0, p)).Add(3, 3, 4).
			Beq(2, 3, ok).
			Movi(1, errW).Ld(2, 1, 0).Addi(2, 2, 1).St(1, 0, 2).
			Label(ok)
	}

	b.Movi(6, 0)
	b.Label("loop").
		Movi(1, slot).Movi(2, conn).St(1, 0, 2).St(1, 4, 6).
		Movi(2, uint32(sc.RespWords)).St(1, 8, 2)
	b.IPCClientConnectSendOverReceive(slot, 3, refVA, rbuf, uint32(sc.RespWords)).
		IPCClientDisconnect()
	checkStamp(0, "ok0")
	if lastPage > 0 {
		checkStamp(lastPage, "ok1")
	}
	b.Addi(6, 6, 1).Movi(5, uint32(sc.RPCs)).Blt(6, 5, "loop").
		Halt()
	return b
}
