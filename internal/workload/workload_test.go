package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/workload"
)

const testBudget = 10_000_000_000 // 50 virtual seconds

func TestFlukeperfCompletesAllConfigs(t *testing.T) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			k := core.New(cfg)
			w, err := workload.NewFlukeperf(k, workload.SmallFlukeperfScale())
			if err != nil {
				t.Fatal(err)
			}
			cycles, err := w.Run(testBudget)
			if err != nil {
				t.Fatal(err)
			}
			if cycles == 0 {
				t.Fatal("no virtual time elapsed")
			}
			if k.Stats().Syscalls < 1000 {
				t.Fatalf("flukeperf made only %d syscalls", k.Stats().Syscalls)
			}
		})
	}
}

func TestMemtestCompletesAllConfigs(t *testing.T) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			k := core.New(cfg)
			const bytes = 256 << 10 // scaled-down 256 KB working set
			w, err := workload.NewMemtest(k, bytes)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Run(testBudget); err != nil {
				t.Fatal(err)
			}
			hard := k.Stats().FaultCount[core.FaultKey{Class: mmu.FaultHard, Side: core.FaultSame}]
			if hard != bytes/4096 {
				t.Fatalf("hard faults = %d, want %d (one per page)", hard, bytes/4096)
			}
		})
	}
}

func TestGCCPipelineCompletesAllConfigs(t *testing.T) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			k := core.New(cfg)
			w, err := workload.NewGCC(k, workload.SmallGCCScale())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Run(testBudget); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGCCIsMostlyUserMode(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelProcess})
	w, err := workload.NewGCC(k, workload.DefaultGCCScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	u, kk := k.Stats().UserCycles, k.Stats().KernelCycles
	if u < 3*kk {
		t.Fatalf("gcc user/kernel = %d/%d; want mostly user-mode", u, kk)
	}
}

func TestMemtestIsFaultDominated(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelProcess})
	w, err := workload.NewMemtest(k, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if k.Stats().KernelCycles < k.Stats().UserCycles/4 {
		t.Fatalf("memtest kernel share too small: u=%d k=%d", k.Stats().UserCycles, k.Stats().KernelCycles)
	}
}

func TestProbeMeasuresLatency(t *testing.T) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			k := core.New(cfg)
			w, err := workload.NewFlukeperf(k, workload.SmallFlukeperfScale())
			if err != nil {
				t.Fatal(err)
			}
			p := workload.InstallProbe(k, 0, 0)
			if _, err := w.Run(testBudget); err != nil {
				t.Fatal(err)
			}
			if p.Runs == 0 {
				t.Fatal("probe never ran")
			}
			if p.Lat.Count() == 0 {
				t.Fatal("no latency samples")
			}
			if p.Lat.Max() > 100_000 {
				t.Fatalf("absurd max latency %v µs", p.Lat.Max())
			}
			p.Stop()
		})
	}
}

func TestProbeFullPreemptionBoundsLatency(t *testing.T) {
	// FP must bound preemption latency to roughly the fpChunk size
	// (~10 µs) plus switching; NP must show much larger maxima on the
	// same workload (the Table 6 headline).
	run := func(cfg core.Config) float64 {
		k := core.New(cfg)
		w, err := workload.NewFlukeperf(k, workload.FlukeperfScale{
			Nulls: 100, MutexPairs: 100, PingPong: 10, RPCs: 10,
			BigTransfers: 1, BigWords: 256 << 10 / 4, Searches: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := workload.InstallProbe(k, 0, 0)
		if _, err := w.Run(testBudget); err != nil {
			t.Fatal(err)
		}
		defer p.Stop()
		if p.Lat.Count() == 0 {
			t.Fatal("no samples")
		}
		return p.Lat.Max()
	}
	fp := run(core.Config{Model: core.ModelProcess, Preempt: core.PreemptFull})
	np := run(core.Config{Model: core.ModelProcess, Preempt: core.PreemptNone})
	if fp > 100 {
		t.Fatalf("FP max latency %v µs, want small", fp)
	}
	if np < 5*fp {
		t.Fatalf("NP max %v µs not >> FP max %v µs", np, fp)
	}
}

func TestModelEquivalenceOnWorkloads(t *testing.T) {
	// User-visible outcomes must match across configurations; compare
	// syscall counts by the completing threads' exit states.
	type outcome struct{ exits int }
	res := map[string]outcome{}
	for _, cfg := range core.Configurations() {
		k := core.New(cfg)
		w, err := workload.NewGCC(k, workload.SmallGCCScale())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(testBudget); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, th := range w.Done {
			if th.Exited {
				n++
			}
		}
		res[cfg.Name()] = outcome{exits: n}
	}
	for name, o := range res {
		if o != res["Process NP"] {
			t.Errorf("%s outcome %+v != Process NP %+v", name, o, res["Process NP"])
		}
	}
}

var _ = obj.ThReady
