// Package workload implements the three applications of the paper's
// Table 5 evaluation — flukeperf, memtest, and gcc — plus the
// high-priority periodic probe thread of Table 6, all as guest programs
// (or kernel threads) running on the simulated Fluke kernel.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/obj"
)

// Workload is a configured guest application ready to run on its kernel.
type Workload struct {
	Name string
	K    *core.Kernel
	// Done lists the threads that must exit for the run to count as
	// complete (service threads may run forever).
	Done []*obj.Thread
	// NIC is the simulated network device behind the workload, when it
	// has one (netserve) — the harness reads its counters for the stats
	// line and the dev.nic.* metrics.
	NIC *dev.NIC
	// Check, when set, validates guest-visible results after the run
	// (payload stamps, error counters) — correctness the exit codes
	// alone cannot express.
	Check func() error
}

// Run executes the workload until its Done threads exit (with a
// virtual-cycle budget as a backstop, so a wedged workload reports an
// error instead of hanging — service threads and measurement timers may
// keep the system from ever quiescing on their own) and returns the
// elapsed virtual cycles.
func (w *Workload) Run(budget uint64) (uint64, error) {
	return w.RunPolling(budget, nil)
}

// RunPolling is Run with a hook called at every stop check of the
// scheduler loop — between dispatches, on the simulation goroutine, with
// the kernel at a consistent boundary. The live observation endpoint
// (internal/observe) hangs its snapshot service off this hook; a nil
// poll is exactly Run.
func (w *Workload) RunPolling(budget uint64, poll func()) (uint64, error) {
	start := w.K.Clock.Now()
	end := start + budget
	if end < start {
		end = ^uint64(0)
	}
	allDone := func() bool {
		for _, t := range w.Done {
			if !t.Exited {
				return false
			}
		}
		return true
	}
	w.K.RunUntil(func() bool {
		if poll != nil {
			poll()
		}
		return w.K.Clock.Now() >= end || allDone()
	})
	for _, t := range w.Done {
		if !t.Exited {
			return 0, fmt.Errorf("workload %s: thread %d did not finish (state=%v pc=%#x r0=%d)",
				w.Name, t.ID, t.State, t.Regs.PC, t.Regs.R[0])
		}
	}
	return w.K.Clock.Now() - start, nil
}

// MustRun is Run panicking on failure (benchmark harness use).
func (w *Workload) MustRun(budget uint64) uint64 {
	n, err := w.Run(budget)
	if err != nil {
		panic(err)
	}
	return n
}
