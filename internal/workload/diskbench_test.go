package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestDiskbenchCompletesAllConfigs(t *testing.T) {
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			k := core.New(cfg)
			w, err := workload.NewDiskbench(k, workload.SmallDiskbenchScale())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Run(testBudget); err != nil {
				t.Fatal(err)
			}
			// Every request is at least two IPC connects.
			if k.Stats().Syscalls < 50 {
				t.Fatalf("suspiciously few syscalls: %d", k.Stats().Syscalls)
			}
		})
	}
}

func TestDiskbenchModelEquivalence(t *testing.T) {
	times := map[string]uint64{}
	for _, cfg := range core.Configurations() {
		k := core.New(cfg)
		w, err := workload.NewDiskbench(k, workload.SmallDiskbenchScale())
		if err != nil {
			t.Fatal(err)
		}
		cyc, err := w.Run(testBudget)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		times[cfg.Name()] = cyc
	}
	// All configurations complete the same logical work; their runtimes
	// must be within a modest band of one another.
	base := times["Process NP"]
	for name, cyc := range times {
		ratio := float64(cyc) / float64(base)
		if ratio < 0.8 || ratio > 1.3 {
			t.Errorf("%s runtime ratio %.2f vs Process NP", name, ratio)
		}
	}
}
