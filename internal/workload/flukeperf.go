package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Guest memory layout for flukeperf.
const (
	fpCode    = 0x0001_0000
	fpData    = 0x0004_0000
	fpDataLen = 16 * mem.PageSize
	fpBigSend = 0x0100_0000
	fpBigRecv = 0x0200_0000
	fpSearch  = 0x4000_0000 // empty range scanned by region_search

	// Handle slots and buffers inside the data window.
	fpMtx     = fpData + 0x10
	fpMtx2    = fpData + 0x14
	fpCnd     = fpData + 0x18
	fpEchoRef = fpData + 0x1C
	fpSinkRef = fpData + 0x20
	fpTurn    = fpData + 0x100
	fpSBuf    = fpData + 0x200
	fpRBuf    = fpData + 0x240
	fpEBuf    = fpData + 0x280
)

// FlukeperfScale sets the iteration counts of the microbenchmark suite.
type FlukeperfScale struct {
	Nulls        int
	MutexPairs   int
	PingPong     int
	RPCs         int
	BigTransfers int
	BigWords     uint32 // words per large IPC transfer
	Searches     int
}

// DefaultFlukeperfScale mirrors the role of the paper's full suite: "a
// large number of kernel calls and context switches" plus a few large,
// long-running IPC operations "ideal for inducing preemption latencies"
// (§5.3). The single 3 MB transfer burst is what bounds NP preemption
// latency; region_search bounds PP latency.
func DefaultFlukeperfScale() FlukeperfScale {
	return FlukeperfScale{
		Nulls:        50_000,
		MutexPairs:   30_000,
		PingPong:     20_000,
		RPCs:         20_000,
		BigTransfers: 2,
		BigWords:     3 << 20 / 4, // 3 MB
		Searches:     8,
	}
}

// SmallFlukeperfScale is a fast variant for tests and testing.B loops.
func SmallFlukeperfScale() FlukeperfScale {
	return FlukeperfScale{
		Nulls:        500,
		MutexPairs:   300,
		PingPong:     50,
		RPCs:         50,
		BigTransfers: 1,
		BigWords:     16 << 10 / 4, // 16 KB
		Searches:     1,
	}
}

// counted emits a counted loop over body using R6 as the counter; body
// must preserve R6 (syscall stubs do). A non-positive count emits
// nothing (the loop body is a do-while).
func counted(b *prog.Builder, label string, n int, body func()) {
	if n <= 0 {
		return
	}
	b.Movi(6, 0).Label(label)
	body()
	b.Addi(6, 6, 1).Movi(5, uint32(n)).Blt(6, 5, label)
}

// pretouch emits a loop touching one byte per page of [base, base+size).
func pretouch(b *prog.Builder, label string, base, size uint32) {
	b.Movi(6, base).Label(label).
		Movi(5, 1).Stb(6, 0, 5).
		Addi(6, 6, mem.PageSize).
		Movi(5, base+size).
		Blt(6, 5, label)
}

// NewFlukeperf builds the flukeperf suite on k.
func NewFlukeperf(k *core.Kernel, sc FlukeperfScale) (*Workload, error) {
	s := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(fpDataLen, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, fpData, 0, fpDataLen, mmu.PermRW); err != nil {
		return nil, err
	}
	bigBytes := mem.PageRound(sc.BigWords * 4)
	for _, base := range []uint32{fpBigSend, fpBigRecv} {
		r := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(bigBytes, true)}
		k.BindFresh(s, r)
		if _, err := k.MapInto(s, r, base, 0, bigBytes, mmu.PermRW); err != nil {
			return nil, err
		}
	}

	// IPC plumbing: echo and sink services.
	newSvc := func(refVA uint32) (uint32, error) {
		po, _ := obj.New(sys.ObjPort)
		pso, _ := obj.New(sys.ObjPortset)
		port := po.(*obj.Port)
		ps := pso.(*obj.Portset)
		k.BindFresh(s, port)
		psVA := k.BindFresh(s, ps)
		ps.AddPort(port)
		ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
		if err := k.Bind(s, refVA, ref); err != nil {
			return 0, err
		}
		return psVA, nil
	}
	echoPS, err := newSvc(fpEchoRef)
	if err != nil {
		return nil, err
	}
	sinkPS, err := newSvc(fpSinkRef)
	if err != nil {
		return nil, err
	}

	// Synchronization objects.
	for _, h := range []struct {
		va uint32
		ot sys.ObjType
	}{{fpMtx, sys.ObjMutex}, {fpMtx2, sys.ObjMutex}, {fpCnd, sys.ObjCond}} {
		o, _ := obj.New(h.ot)
		if err := k.Bind(s, h.va, o); err != nil {
			return nil, err
		}
	}

	b := prog.New(fpCode)

	// --- main: the driver thread ---
	b.Label("main")
	counted(b, "nulls", sc.Nulls, func() { b.Null() })
	counted(b, "mutexes", sc.MutexPairs, func() { b.MutexLock(fpMtx).MutexUnlock(fpMtx) })
	// Request payload for the small RPCs.
	for i := uint32(0); i < 8; i++ {
		b.Movi(4, fpSBuf+i*4).Movi(5, 100+i).St(4, 0, 5)
	}
	counted(b, "rpcs", sc.RPCs, func() {
		b.IPCClientConnectSendOverReceive(fpSBuf, 8, fpEchoRef, fpRBuf, 8).
			IPCClientDisconnect()
	})
	pretouch(b, "touch_send", fpBigSend, bigBytes)
	counted(b, "bigs", sc.BigTransfers, func() {
		b.IPCClientConnectSend(fpBigSend, sc.BigWords, fpSinkRef).
			IPCClientDisconnect()
	})
	counted(b, "searches", sc.Searches, func() {
		b.RegionSearch(fpSearch, 16<<20)
	})
	b.Halt()

	// --- ping-pong pair: cond-variable turn taking ---
	pingpong := func(name string, myTurn, nextTurn uint32) {
		b.Label(name).Movi(6, 0).
			Label(name+".outer").
			MutexLock(fpMtx2).
			Label(name+".wait").
			Movi(4, fpTurn).Ld(5, 4, 0).
			Movi(2, myTurn)
		b.Beq(5, 2, name+".go")
		b.CondWait(fpCnd, fpMtx2).
			Jmp(name+".wait").
			Label(name+".go").
			Movi(4, fpTurn).Movi(5, nextTurn).St(4, 0, 5).
			CondBroadcast(fpCnd).
			MutexUnlock(fpMtx2).
			Addi(6, 6, 1).Movi(5, uint32(sc.PingPong)).Blt(6, 5, name+".outer").
			Halt()
	}
	pingpong("ppA", 0, 1)
	pingpong("ppB", 1, 0)

	// --- echo server: small-RPC service loop ---
	b.Label("echo").
		IPCWaitReceive(fpEBuf, 8, echoPS).
		Label("echo.loop").
		IPCReplyWaitReceive(fpEBuf, 8, echoPS, fpEBuf, 8).
		Jmp("echo.loop")

	// --- sink server: drains the large transfers ---
	b.Label("sink")
	pretouch(b, "touch_recv", fpBigRecv, bigBytes)
	b.Label("sink.loop").
		IPCWaitReceive(fpBigRecv, sc.BigWords, sinkPS).
		Jmp("sink.loop")

	img, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	if _, err := k.LoadImage(s, fpCode, img); err != nil {
		return nil, err
	}
	spawn := func(label string, prio int) *obj.Thread {
		t := k.NewThread(s, prio)
		t.Regs.PC = b.Addr(label)
		k.StartThread(t)
		return t
	}
	// Servers slightly above the clients so they drain promptly.
	spawn("echo", 9)
	spawn("sink", 9)
	main := spawn("main", 8)
	ppA := spawn("ppA", 8)
	ppB := spawn("ppB", 8)

	return &Workload{Name: "flukeperf", K: k, Done: []*obj.Thread{main, ppA, ppB}}, nil
}

var _ = fmt.Sprintf // reserved for debug helpers
