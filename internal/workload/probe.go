package workload

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sys"
)

// Probe is the Table 6 measurement apparatus: "a second, high-priority
// kernel thread which is scheduled every millisecond", whose observed
// preemption latencies are recorded, along with the number of times it
// ran and the number of times "it could not be scheduled because it was
// still running or queued from the previous interval" (§5.3).
type Probe struct {
	Lat    stats.Latency
	Runs   uint64
	Misses uint64

	Thread *obj.Thread

	k       *core.Kernel
	wq      obj.WaitQueue
	sched   uint64 // virtual time of the pending scheduling event
	pending bool
	stopped bool
}

// DefaultProbePeriod is 1 ms in cycles.
const DefaultProbePeriod = uint64(clock.CyclesPerMillisecond)

// DefaultProbeWork is the probe's per-activation work: 10 µs.
const DefaultProbeWork = uint64(10 * clock.CyclesPerMicrosecond)

// InstallProbe starts the periodic high-priority kernel thread on k. The
// probe runs at maximum priority in its own (empty) space.
func InstallProbe(k *core.Kernel, periodCycles, workCycles uint64) *Probe {
	if periodCycles == 0 {
		periodCycles = DefaultProbePeriod
	}
	if workCycles == 0 {
		workCycles = DefaultProbeWork
	}
	p := &Probe{k: k}
	s := k.NewSpace()
	th := k.NewThread(s, sched.MaxPriority)
	p.Thread = th
	th.HostFn = func() sys.KErr {
		for {
			if p.pending {
				p.Lat.Add(clock.Micros(k.Clock.Now() - p.sched))
				p.Runs++
				p.pending = false
				k.ChargeKernel(workCycles)
			}
			if kerr := k.Block(&p.wq, false); kerr != sys.KOK {
				return kerr
			}
		}
	}
	k.StartThread(th)

	var tick func(now uint64)
	tick = func(now uint64) {
		if p.stopped {
			return
		}
		k.Clock.After(periodCycles, tick)
		if th.State == obj.ThBlocked && th.WaitQ == &p.wq {
			p.sched = k.Clock.Now()
			p.pending = true
			k.WakeThread(th)
		} else {
			// Still running or queued from the previous interval.
			p.Misses++
		}
	}
	k.Clock.After(periodCycles, tick)
	return p
}

// Stop ends the periodic scheduling and destroys the probe thread.
func (p *Probe) Stop() {
	p.stopped = true
	p.k.DestroyThread(p.Thread)
}
