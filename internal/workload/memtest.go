package workload

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/pager"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Memtest layout.
const (
	mtCode = 0x0001_0000
	mtBase = 0x0200_0000
)

// MemtestBytes is the paper's memtest working-set size: 16 MB (§5.3).
const MemtestBytes = 16 << 20

// NewMemtest builds the paper's memtest workload on k: a thread that
// "accesses [bytes] of memory one byte at a time sequentially ... under a
// memory manager which allocates memory on demand, exercising kernel
// fault handling and the exception IPC facility" (§5.3). Every page of
// the working set takes a hard fault served by the user-mode pager.
func NewMemtest(k *core.Kernel, bytes uint32) (*Workload, error) {
	bytes = mem.PageRound(bytes)
	s := k.NewSpace()
	reg := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(bytes, false)}
	k.BindFresh(s, reg)
	if _, err := k.MapInto(s, reg, mtBase, 0, bytes, mmu.PermRW); err != nil {
		return nil, err
	}
	if _, err := pager.Install(k, s, reg, pager.DefaultConfig()); err != nil {
		return nil, err
	}

	b := prog.New(mtCode)
	// R6 = cursor, R5 = end, R3 = scratch: 3 instructions per byte.
	b.Movi(6, mtBase).
		Movi(5, mtBase+bytes).
		Label("loop").
		Ldb(3, 6, 0).
		Addi(6, 6, 1).
		Blt(6, 5, "loop").
		Halt()
	th, err := k.SpawnProgram(s, mtCode, b.MustAssemble(), 8)
	if err != nil {
		return nil, err
	}
	return &Workload{Name: "memtest", K: k, Done: []*obj.Thread{th}}, nil
}
