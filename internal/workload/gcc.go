package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// GCC pipeline layout (per stage space).
const (
	gccCode = 0x0001_0000
	gccData = 0x0004_0000
	gccIn   = gccData + 0x1000
	gccNext = gccData + 0x10 // handle slot for the next-stage port ref
)

// GCCScale parameterizes the synthetic compile pipeline.
type GCCScale struct {
	Files  int // translation units pushed through the pipeline
	Words  int // words per unit
	Passes int // compute passes per unit per stage
}

// DefaultGCCScale gives a mostly-user-mode workload with light IPC, the
// Table 5 role of the real gcc run ("running the front end, the C
// preprocessor, C compiler, assembler and linker").
func DefaultGCCScale() GCCScale { return GCCScale{Files: 40, Words: 256, Passes: 40} }

// SmallGCCScale is a fast variant for tests.
func SmallGCCScale() GCCScale { return GCCScale{Files: 4, Words: 64, Passes: 4} }

// gccStageNames mirror the real tool pipeline.
var gccStageNames = []string{"cpp", "cc1", "as", "ld"}

// NewGCC builds the synthetic compile pipeline: a driver space feeding
// "files" through four stage spaces (cpp -> cc1 -> as -> ld) connected by
// oneway IPC, each stage doing Passes compute sweeps over every unit.
// This substitutes for the paper's gcc run (see DESIGN.md §1): what
// matters for Table 5 is the kernel/user time ratio, not the compiler.
func NewGCC(k *core.Kernel, sc GCCScale) (*Workload, error) {
	if sc.Files <= 0 || sc.Words <= 0 || sc.Words*4 > 8*mem.PageSize {
		return nil, fmt.Errorf("gcc: bad scale %+v", sc)
	}
	nStages := len(gccStageNames)
	spaces := make([]*obj.Space, nStages+1) // [0] = driver
	ports := make([]*obj.Port, nStages)
	psVAs := make([]uint32, nStages)
	for i := 0; i <= nStages; i++ {
		s := k.NewSpace()
		spaces[i] = s
		data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(16*mem.PageSize, true)}
		k.BindFresh(s, data)
		if _, err := k.MapInto(s, data, gccData, 0, 16*mem.PageSize, mmu.PermRW); err != nil {
			return nil, err
		}
	}
	// Each stage i owns a port+portset; the previous hop gets a ref.
	for i := 0; i < nStages; i++ {
		po, _ := obj.New(sys.ObjPort)
		pso, _ := obj.New(sys.ObjPortset)
		port := po.(*obj.Port)
		ps := pso.(*obj.Portset)
		k.BindFresh(spaces[i+1], port)
		psVAs[i] = k.BindFresh(spaces[i+1], ps)
		ps.AddPort(port)
		ports[i] = port
		ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
		if err := k.Bind(spaces[i], gccNext, ref); err != nil {
			return nil, err
		}
	}

	words := uint32(sc.Words)
	var done []*obj.Thread

	// Driver: fill the unit once, then push Files copies downstream.
	drv := prog.New(gccCode)
	drv.Movi(6, 0).Label("fill").
		Movi(5, 2).Shl(4, 6, 5).Addi(4, 4, gccIn). // addr = gccIn + 4*i
		St(4, 0, 6).
		Addi(6, 6, 1).Movi(5, words).Blt(6, 5, "fill")
	counted(drv, "push", sc.Files, func() {
		drv.IPCSendOneway(gccIn, words, gccNext)
	})
	drv.Halt()
	dth, err := k.SpawnProgram(spaces[0], gccCode, drv.MustAssemble(), 8)
	if err != nil {
		return nil, err
	}
	done = append(done, dth)

	// Stages: receive a unit, grind over it, forward it.
	for i := 0; i < nStages; i++ {
		last := i == nStages-1
		st := prog.New(gccCode)
		st.Movi(6, 0).Label("unit").
			IPCWaitReceive(gccIn, words, psVAs[i]).
			// Release the inbound connection before forwarding: the
			// upstream oneway may not have disconnected yet.
			Syscall(sys.NIPCServerDisconnect).
			// Compute: Passes sweeps of multiply-accumulate over the
			// unit. R2 = pass counter, R4 = ptr, R5 = end, R3 = acc.
			Movi(2, 0).
			Label("pass").
			Movi(4, gccIn).Movi(5, gccIn+words*4).Movi(3, 0).
			Label("word").
			Ld(1, 4, 0).Mul(3, 3, 1).Add(3, 3, 1).
			Addi(4, 4, 4).Blt(4, 5, "word").
			Addi(2, 2, 1).Movi(5, uint32(sc.Passes)).Blt(2, 5, "pass").
			// Stash the digest into the unit so downstream work differs.
			Movi(4, gccIn).St(4, 0, 3)
		if !last {
			st.IPCSendOneway(gccIn, words, gccNext)
		}
		st.Addi(6, 6, 1).Movi(5, uint32(sc.Files)).Blt(6, 5, "unit").
			Halt()
		th, err := k.SpawnProgram(spaces[i+1], gccCode, st.MustAssemble(), 8)
		if err != nil {
			return nil, err
		}
		done = append(done, th)
	}
	return &Workload{Name: "gcc", K: k, Done: done}, nil
}
