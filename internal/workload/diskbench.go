package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Diskbench layout (client space).
const (
	dbCode = 0x0001_0000
	dbData = 0x0004_0000
	dbReq  = dbData + 0x100
	dbRep  = dbData + 0x1000
)

// DiskbenchScale parameterizes the multi-server disk workload.
type DiskbenchScale struct {
	Clients  int // concurrent reader threads
	Requests int // sector reads per client
	FileKB   int // size of the file being read
}

// DefaultDiskbenchScale keeps a few clients busy long enough for the
// preemption configurations to differentiate.
func DefaultDiskbenchScale() DiskbenchScale {
	return DiskbenchScale{Clients: 3, Requests: 40, FileKB: 64}
}

// SmallDiskbenchScale is a fast variant for tests.
func SmallDiskbenchScale() DiskbenchScale {
	return DiskbenchScale{Clients: 2, Requests: 4, FileKB: 4}
}

// NewDiskbench builds the extension workload that exercises the whole
// multi-server stack: client threads read file sectors through the
// filesystem server, which reads the disk through the user-mode driver,
// which programs the virtual device and fields its interrupts — every
// request is two IPC hops, one MMIO conversation, and one interrupt
// dispatch.
func NewDiskbench(k *core.Kernel, sc DiskbenchScale) (*Workload, error) {
	if sc.Clients <= 0 || sc.Requests <= 0 || sc.FileKB <= 0 {
		return nil, fmt.Errorf("diskbench: bad scale %+v", sc)
	}
	sectors := sc.FileKB * 1024 / dev.SectorSize
	dr, err := dev.Attach(k, sectors+8, 5, 0, 30)
	if err != nil {
		return nil, err
	}
	content := make([]byte, sc.FileKB*1024)
	for i := range content {
		content[i] = byte(i*13 + i>>8)
	}
	if _, err := fs.Format(dr.Device, []fs.File{{Name: "bench.dat", Data: content}}); err != nil {
		return nil, err
	}
	sv, err := fs.AttachServer(k, dr, 20)
	if err != nil {
		return nil, err
	}

	var done []*obj.Thread
	for c := 0; c < sc.Clients; c++ {
		cs := k.NewSpace()
		data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(8*mem.PageSize, true)}
		k.BindFresh(cs, data)
		if _, err := k.MapInto(cs, data, dbData, 0, 8*mem.PageSize, mmu.PermRW); err != nil {
			return nil, err
		}
		refVA := sv.ClientRef(k, cs)
		b := prog.New(dbCode)
		// Each client sweeps the file; r6 = request counter.
		b.Movi(6, 0).Label("loop").
			// sector-in-file = r6 mod sectors (file sectors are a power
			// of two only by luck; use a compare-and-wrap counter in
			// memory instead).
			Movi(4, dbData+0x40).Ld(5, 4, 0). // wrap counter
			Movi(4, dbReq).Movi(3, 0).St(4, 0, 3).St(4, 4, 5).
			IPCClientConnectSendOverReceive(dbReq, 2, refVA, dbRep, dev.SectorSize/4).
			IPCClientDisconnect().
			// wrap = (wrap+1 == sectors) ? 0 : wrap+1
			Movi(4, dbData+0x40).Ld(5, 4, 0).Addi(5, 5, 1).
			Movi(3, uint32(sectors))
		b.Bne(5, 3, "keep")
		b.Movi(5, 0).Label("keep").St(4, 0, 5).
			Addi(6, 6, 1).Movi(5, uint32(sc.Requests)).Blt(6, 5, "loop").
			Halt()
		th, err := k.SpawnProgram(cs, dbCode, b.MustAssemble(), 8)
		if err != nil {
			return nil, err
		}
		done = append(done, th)
	}
	return &Workload{Name: "diskbench", K: k, Done: done}, nil
}
