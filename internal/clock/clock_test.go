package clock

import (
	"testing"
	"testing/quick"
)

func TestUnitConversions(t *testing.T) {
	if got := Micros(200); got != 1 {
		t.Errorf("Micros(200) = %v, want 1", got)
	}
	if got := Cycles(1); got != 200 {
		t.Errorf("Cycles(1) = %v, want 200", got)
	}
	if CyclesPerMillisecond != 200000 {
		t.Errorf("CyclesPerMillisecond = %d, want 200000", CyclesPerMillisecond)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("after Advance(100), Now = %d", c.Now())
	}
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Fatalf("after AdvanceTo(250), Now = %d", c.Now())
	}
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	c := New()
	c.Advance(10)
	c.AdvanceTo(5)
}

func TestTimerFiresAtDeadline(t *testing.T) {
	c := New()
	var firedAt uint64
	c.After(50, func(now uint64) { firedAt = now })
	c.Advance(49)
	if firedAt != 0 {
		t.Fatalf("timer fired early at %d", firedAt)
	}
	c.Advance(1)
	if firedAt != 50 {
		t.Fatalf("timer fired at %d, want 50", firedAt)
	}
}

func TestTimerCallbackSeesExactDeadline(t *testing.T) {
	c := New()
	var at uint64
	c.After(30, func(now uint64) { at = now })
	// Advance far past: the callback must still observe now == 30.
	c.Advance(1000)
	if at != 30 {
		t.Fatalf("callback saw now=%d, want 30", at)
	}
	if c.Now() != 1000 {
		t.Fatalf("clock rests at %d, want 1000", c.Now())
	}
}

func TestTimersFireInDeadlineOrder(t *testing.T) {
	c := New()
	var order []int
	c.After(30, func(uint64) { order = append(order, 3) })
	c.After(10, func(uint64) { order = append(order, 1) })
	c.After(20, func(uint64) { order = append(order, 2) })
	c.Advance(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestEqualDeadlinesFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.After(10, func(uint64) { order = append(order, i) })
	}
	c.Advance(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: order = %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	tm := c.After(10, func(uint64) { fired = true })
	if !c.Cancel(tm) {
		t.Fatal("Cancel returned false for pending timer")
	}
	if c.Cancel(tm) {
		t.Fatal("second Cancel returned true")
	}
	c.Advance(100)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	c := New()
	var order []int
	t1 := c.After(10, func(uint64) { order = append(order, 1) })
	t2 := c.After(20, func(uint64) { order = append(order, 2) })
	c.After(30, func(uint64) { order = append(order, 3) })
	c.Cancel(t2)
	_ = t1
	c.Advance(100)
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order after cancel = %v, want [1 3]", order)
	}
}

func TestAdvanceToNextTimer(t *testing.T) {
	c := New()
	if c.AdvanceToNextTimer() {
		t.Fatal("AdvanceToNextTimer with empty heap returned true")
	}
	fired := false
	c.After(500, func(uint64) { fired = true })
	if !c.AdvanceToNextTimer() {
		t.Fatal("AdvanceToNextTimer returned false with pending timer")
	}
	if !fired || c.Now() != 500 {
		t.Fatalf("fired=%v now=%d, want true 500", fired, c.Now())
	}
}

func TestTimerRegisteredDuringCallbackDoesNotFireInSameBatchIfLater(t *testing.T) {
	c := New()
	var got []string
	c.After(10, func(uint64) {
		got = append(got, "a")
		c.After(5, func(uint64) { got = append(got, "b") })
	})
	c.Advance(12)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("got %v, want [a] (b due at 15 > 12)", got)
	}
	c.Advance(3)
	if len(got) != 2 || got[1] != "b" {
		t.Fatalf("got %v, want [a b]", got)
	}
}

func TestTimerRegisteredDuringCallbackFiresIfWithinRange(t *testing.T) {
	c := New()
	var got []string
	c.After(10, func(uint64) {
		got = append(got, "a")
		c.After(2, func(uint64) { got = append(got, "b") }) // due 12 <= 20
	})
	c.Advance(20)
	if len(got) != 2 || got[1] != "b" {
		t.Fatalf("got %v, want [a b]", got)
	}
}

func TestNextDeadline(t *testing.T) {
	c := New()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline on empty clock returned ok")
	}
	c.After(42, nil)
	d, ok := c.NextDeadline()
	if !ok || d != 42 {
		t.Fatalf("NextDeadline = %d,%v want 42,true", d, ok)
	}
}

// Property: for any sequence of timer registrations, advancing far enough
// fires every timer exactly once, in nondecreasing deadline order.
func TestPropertyAllTimersFireOnceInOrder(t *testing.T) {
	f := func(deltas []uint16) bool {
		c := New()
		var fires []uint64
		for _, d := range deltas {
			dd := uint64(d)
			c.After(dd, func(now uint64) { fires = append(fires, now) })
		}
		c.Advance(1 << 20)
		if len(fires) != len(deltas) {
			return false
		}
		for i := 1; i < len(fires); i++ {
			if fires[i] < fires[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved Advance calls never lose or duplicate timer fires.
func TestPropertyChunkedAdvanceEquivalent(t *testing.T) {
	f := func(deadlines []uint16, chunks []uint8) bool {
		c1, c2 := New(), New()
		n1, n2 := 0, 0
		for _, d := range deadlines {
			c1.At(uint64(d), func(uint64) { n1++ })
			c2.At(uint64(d), func(uint64) { n2++ })
		}
		c1.Advance(1 << 20)
		var total uint64
		for _, ch := range chunks {
			c2.Advance(uint64(ch))
			total += uint64(ch)
		}
		c2.Advance(1<<20 - total)
		return n1 == n2 && n1 == len(deadlines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
