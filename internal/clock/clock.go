// Package clock provides the deterministic virtual time base for the Fluke
// kernel simulation.
//
// All time in the simulation is measured in CPU cycles of a virtual 200 MHz
// processor (the 200 MHz Pentium Pro the paper's evaluation used), so
// 200 cycles == 1 µs. Every entity that consumes simulated CPU time charges
// cycles to a single Clock; timers fire at exact cycle counts, which makes
// every experiment in the paper's evaluation bit-for-bit reproducible.
package clock

import (
	"container/heap"
	"fmt"
)

// CyclesPerMicrosecond converts between cycles and microseconds for the
// simulated 200 MHz processor.
const CyclesPerMicrosecond = 200

// CyclesPerMillisecond is 1 ms of simulated time in cycles.
const CyclesPerMillisecond = 1000 * CyclesPerMicrosecond

// Micros converts a cycle count to (fractional) microseconds.
func Micros(cycles uint64) float64 {
	return float64(cycles) / CyclesPerMicrosecond
}

// Cycles converts microseconds of simulated time to cycles.
func Cycles(micros float64) uint64 {
	return uint64(micros * CyclesPerMicrosecond)
}

// Timer is a pending virtual-time event. When the clock advances to or past
// Deadline the timer fires and its callback runs exactly once.
type Timer struct {
	Deadline uint64
	Callback func(now uint64)

	owner *Clock // the clock the timer is armed on
	index int    // heap index; -1 when not queued
	seq   uint64
	fired bool
}

// Fired reports whether the timer has already fired.
func (t *Timer) Fired() bool { return t.fired }

// Stop cancels the timer on whichever clock armed it — with one clock per
// simulated CPU, the canceller no longer needs to know (or be on) the
// owning CPU. Stopping a nil, fired, or cancelled timer is a no-op. It
// reports whether the timer was pending.
func (t *Timer) Stop() bool {
	if t == nil || t.owner == nil {
		return false
	}
	return t.owner.Cancel(t)
}

// Clock is the global virtual time source. It is not safe for concurrent
// use; the simulation is single-threaded by construction (only one simulated
// CPU context runs at a time).
type Clock struct {
	now    uint64
	timers timerHeap
	seq    uint64
}

// New returns a Clock at cycle zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time in cycles.
func (c *Clock) Now() uint64 { return c.now }

// NowMicros returns the current virtual time in microseconds.
func (c *Clock) NowMicros() float64 { return Micros(c.now) }

// After registers a callback to fire delta cycles from now and returns the
// timer so it can be cancelled.
func (c *Clock) After(delta uint64, fn func(now uint64)) *Timer {
	return c.At(c.now+delta, fn)
}

// At registers a callback to fire when virtual time reaches deadline. A
// deadline at or before the current time fires on the next Advance(0).
func (c *Clock) At(deadline uint64, fn func(now uint64)) *Timer {
	t := &Timer{Deadline: deadline, Callback: fn, owner: c, seq: c.seq}
	c.seq++
	heap.Push(&c.timers, t)
	return t
}

// Cancel removes a pending timer. Cancelling an already-fired or cancelled
// timer is a no-op. It reports whether the timer was pending.
func (c *Clock) Cancel(t *Timer) bool {
	if t == nil || t.fired || t.index < 0 {
		return false
	}
	heap.Remove(&c.timers, t.index)
	t.fired = true // never fire
	return true
}

// NextDeadline returns the deadline of the earliest pending timer and true,
// or 0 and false if no timers are pending.
func (c *Clock) NextDeadline() (uint64, bool) {
	if len(c.timers) == 0 {
		return 0, false
	}
	return c.timers[0].Deadline, true
}

// Advance moves virtual time forward by delta cycles, firing every timer
// whose deadline falls within the advanced range, in deadline order (FIFO
// among equal deadlines). It returns the number of timers fired.
//
// Timer callbacks run with the clock set exactly to their deadline; after
// all due timers fire, time rests at the full advanced position.
func (c *Clock) Advance(delta uint64) int {
	target := c.now + delta
	fired := 0
	for len(c.timers) > 0 && c.timers[0].Deadline <= target {
		t := heap.Pop(&c.timers).(*Timer)
		if t.Deadline > c.now {
			c.now = t.Deadline
		}
		t.fired = true
		fired++
		if t.Callback != nil {
			t.Callback(c.now)
		}
	}
	if target > c.now {
		c.now = target
	}
	return fired
}

// AdvanceTo moves virtual time forward to the given absolute cycle count,
// firing due timers. Moving backwards is a programming error and panics.
func (c *Clock) AdvanceTo(deadline uint64) int {
	if deadline < c.now {
		panic(fmt.Sprintf("clock: AdvanceTo moving backwards: now=%d target=%d", c.now, deadline))
	}
	return c.Advance(deadline - c.now)
}

// AdvanceToNextTimer jumps virtual time to the earliest pending deadline and
// fires it (and any timers sharing that deadline). It reports whether any
// timer was pending. This models an idle CPU halting until the next
// interrupt.
func (c *Clock) AdvanceToNextTimer() bool {
	d, ok := c.NextDeadline()
	if !ok {
		return false
	}
	if d < c.now {
		d = c.now
	}
	c.AdvanceTo(d)
	return true
}

// Pending returns the number of timers waiting to fire.
func (c *Clock) Pending() int { return len(c.timers) }

// timerHeap orders timers by deadline, breaking ties by registration order
// so same-deadline timers fire FIFO (determinism).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].Deadline != h[j].Deadline {
		return h[i].Deadline < h[j].Deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
