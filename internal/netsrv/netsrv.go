// Package netsrv is the user-mode network server over the simulated NIC
// (internal/dev): the Fluke answer to "where does the network stack
// live". Each NIC queue gets a driver space holding a NAPI-style drain
// loop and a crew of worker threads; clients reach the workers through
// ordinary IPC references, so the whole stack — interrupt, drain,
// protocol worker, reply — runs as unprivileged user code over the
// kernel's atomic API, with the kernel contributing only IPC, irq_wait,
// and mutex/cond.
//
// # Request protocol
//
// A client RPC is a 3-word request [conn, seq, respWords] answered by a
// respWords-word body. The worker copies the request into a TX frame
// (its "outbound packet"), rings the TX doorbell, and sleeps on a cond
// until the driver hands it the matching RX frame (the "response from
// the wire"); it then replies to the client STRAIGHT OUT OF THE DMA
// WINDOW. Responses are delivered into page-aligned NIC buffers, so for
// multi-page bodies the reply rides the kernel's zero-copy path: the
// buffer's frames are COW-shared into the client, and the NIC's DMA
// engine breaks the share (dev.NIC cowFrame) only if the buffer is
// overwritten before the client is done — frames flow NIC ring → server
// → client without a payload copy.
//
// The simulated remote end (Responder) lives host-side: consumed TX
// frames come out of NIC.OnTransmit, and after a modeled wire latency
// the response frame is injected with NIC.Deliver on the queue's
// home-CPU clock. Pinning each queue — driver space, NIC timers, wire
// timers — to one CPU makes device DMA and guest execution naturally
// serial (they share the CPU's goroutine under ParallelHost), which is
// the same one-RX-ring-per-CPU shape real NAPI drivers want for cache
// locality; here it is also the memory-model discipline.
package netsrv

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Driver-space guest layout. The DMA window is organized so no page is
// ever touched by both execution contexts: page 0 is the TX ring
// (guest-written, device-read in the doorbell's synchronous consume),
// page 1 is the RX ring plus the head-shadow word (device-written from
// timer context, guest-read under the IRQ-wake ordering), page 2 holds
// the small TX frame staging buffers, and the page-aligned RX buffers
// follow — the zero-copy payload pages.
const (
	nsDriverCode = 0x0001_0000
	nsWorkerCode = 0x0002_0000 // + w*0x1000
	nsData       = 0x0004_0000
	nsMMIO       = 0x00D0_0000
	nsDMA        = 0x0100_0000

	// Scratch-page words (nsData offsets are VAs).
	nsTxTailW   = nsData + 0x10 // worker-side TX doorbell count
	nsRxPostedW = nsData + 0x14 // worker-side RX posted count
	nsConsumedW = nsData + 0x18 // driver's drained-frame count
	nsSlotBase  = nsData + 0x400
	nsSlotSize  = 64 // +0 state, +4 rxOff, +8 rxLen, +12 scratch
	nsReqBase   = nsData + 0x800
	nsReqSize   = 32

	// DMA-region offsets.
	dmaTxRing = 0x0000
	dmaRxRing = 0x1000
	dmaShadow = 0x1FF0 // head-shadow word, beside the RX ring
	dmaTxBuf  = 0x2000 // + w*16: 3-word request frames
	dmaRxBuf  = 0x3000 // + w*BufPages*PageSize: response buffers

	// Fixed kernel-object handle VAs (above BindFresh's dynamic slots).
	vaTxMutex = core.KObjBase + 0x3000
	vaRxMutex = core.KObjBase + 0x3040
	vaWMutex  = core.KObjBase + 0x4000 // + w*0x40; the cond sits at +0x20
	vaWCond   = 0x20
)

// MaxQueues is bounded by the interrupt lines left above the block
// device's; MaxWorkers by the TX buffer page and the scratch layout.
const (
	MaxQueues  = 8
	MaxWorkers = 32
	baseIRQ    = 8 // queue q raises line baseIRQ+q
)

// Config sizes the server.
type Config struct {
	Queues    int // NIC queues = driver spaces (default 1, max 8)
	Workers   int // worker threads per queue (default 4, max 32)
	BufPages  int // pages per RX buffer = max response size (default 16 = 64 KiB)
	RingSlots int // TX/RX descriptors per ring (default max(8, 2*Workers), power of two)

	// WireCycles is the modeled one-way wire+remote latency between a
	// TX frame leaving the doorbell and the response arriving;
	// 0 selects 4000 cycles (20 µs at the 200 MHz virtual clock).
	WireCycles uint64
	// IRQLatency is the NIC's raise delay; 0 selects the device default.
	IRQLatency uint64

	DriverPriority int // 0 selects 30 (the block-driver convention)
	WorkerPriority int // 0 selects 25
}

func (c Config) fill() (Config, error) {
	if c.Queues == 0 {
		c.Queues = 1
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.BufPages == 0 {
		c.BufPages = 16
	}
	if c.RingSlots == 0 {
		c.RingSlots = 2 * c.Workers
		if c.RingSlots < 8 {
			c.RingSlots = 8
		}
	}
	if c.WireCycles == 0 {
		c.WireCycles = 4000
	}
	if c.DriverPriority == 0 {
		c.DriverPriority = 30
	}
	if c.WorkerPriority == 0 {
		c.WorkerPriority = 25
	}
	if c.Queues < 0 || c.Queues > MaxQueues {
		return c, fmt.Errorf("netsrv: %d queues (max %d)", c.Queues, MaxQueues)
	}
	if c.Workers < 0 || c.Workers > MaxWorkers {
		return c, fmt.Errorf("netsrv: %d workers (max %d)", c.Workers, MaxWorkers)
	}
	if c.RingSlots&(c.RingSlots-1) != 0 {
		return c, fmt.Errorf("netsrv: ring slots %d not a power of two", c.RingSlots)
	}
	if uint32(c.RingSlots)*dev.NICDescBytes > mem.PageSize {
		return c, fmt.Errorf("netsrv: %d ring slots overflow the ring page", c.RingSlots)
	}
	if c.RingSlots < c.Workers {
		return c, fmt.Errorf("netsrv: %d ring slots < %d workers", c.RingSlots, c.Workers)
	}
	return c, nil
}

// Queue is one NIC queue's driver space and threads.
type Queue struct {
	Space   *obj.Space
	Driver  *obj.Thread
	Workers []*obj.Thread
	Ports   []*obj.Port // one per worker; clients round-robin
	IRQLine int
	Home    int // the CPU everything about this queue is pinned to
}

// Service is the attached NIC + user-mode network server.
type Service struct {
	Cfg    Config
	NIC    *dev.NIC
	Queues []*Queue
}

// Attach builds the NIC and its server on k: cfg.Queues driver spaces
// (queue q pinned to CPU q mod NumCPUs), each with a drain-loop driver
// thread, cfg.Workers protocol workers, and a host-side Responder wired
// to NIC.OnTransmit. Interrupt coalescing follows
// k.Config().DisableNICCoalesce.
func Attach(k *core.Kernel, cfg Config) (*Service, error) {
	cfg, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	sv := &Service{Cfg: cfg}

	dmaBytes := uint32(dmaRxBuf + cfg.Workers*cfg.BufPages*int(mem.PageSize))
	var qcfgs []dev.NICQueueConfig
	var qs []*Queue
	for qi := 0; qi < cfg.Queues; qi++ {
		home := qi % k.NumCPUs()
		s := k.NewSpace()
		k.SetSpaceHome(s, home)

		dmaReg, err := dev.MapDMA(k, s, nsDMA, dmaBytes)
		if err != nil {
			return nil, err
		}
		if _, err := dev.MapScratch(k, s, nsData); err != nil {
			return nil, err
		}
		raise, err := dev.IRQRaiser(k, baseIRQ+qi)
		if err != nil {
			return nil, err
		}
		qcfgs = append(qcfgs, dev.NICQueueConfig{
			Clock: k.CPUClock(home), DMA: dmaReg.R, Raise: raise, CPU: uint32(home),
			TxRingOff: dmaTxRing, RxRingOff: dmaRxRing,
			TxSlots: uint32(cfg.RingSlots), RxSlots: uint32(cfg.RingSlots),
			HeadShadowOff: dmaShadow,
		})
		qs = append(qs, &Queue{Space: s, IRQLine: baseIRQ + qi, Home: home})
	}

	nic, err := dev.NewNIC(k.Alloc, !k.Config().DisableNICCoalesce, cfg.IRQLatency, qcfgs)
	if err != nil {
		return nil, err
	}
	sv.NIC = nic
	sv.Queues = qs
	nic.OnTransmit = sv.respond(k)
	nic.Tracer = k.Tracer

	for qi, q := range qs {
		if err := dev.MapRegisters(q.Space, nsMMIO, mem.PageSize, nic.QueueIO(qi)); err != nil {
			return nil, err
		}
		if err := sv.populateQueue(k, qi); err != nil {
			return nil, err
		}
	}
	return sv, nil
}

// populateQueue binds queue qi's kernel objects, primes the RX ring, and
// spawns its threads.
func (sv *Service) populateQueue(k *core.Kernel, qi int) error {
	cfg, q := sv.Cfg, sv.Queues[qi]
	s := q.Space

	bindMutex := func(va uint32) error {
		m, _ := obj.New(sys.ObjMutex)
		return k.Bind(s, va, m)
	}
	if err := bindMutex(vaTxMutex); err != nil {
		return err
	}
	if err := bindMutex(vaRxMutex); err != nil {
		return err
	}
	for w := 0; w < cfg.Workers; w++ {
		if err := bindMutex(vaWMutex + uint32(w)*0x40); err != nil {
			return err
		}
		c, _ := obj.New(sys.ObjCond)
		if err := k.Bind(s, vaWMutex+uint32(w)*0x40+vaWCond, c); err != nil {
			return err
		}
	}

	// Prime the RX ring: one posted buffer per worker, so the first
	// response for each in-flight request always has a descriptor.
	desc := make([]byte, dev.NICDescBytes)
	for w := 0; w < cfg.Workers; w++ {
		binary.LittleEndian.PutUint32(desc[dev.NICDescOff:], sv.bufOff(w))
		binary.LittleEndian.PutUint32(desc[dev.NICDescLen:], 0)
		binary.LittleEndian.PutUint32(desc[dev.NICDescTag:], 0)
		binary.LittleEndian.PutUint32(desc[dev.NICDescOwn:], 1)
		if err := k.WriteMem(s, nsDMA+dmaRxRing+uint32(w)*dev.NICDescBytes, desc); err != nil {
			return err
		}
	}
	var posted [4]byte
	binary.LittleEndian.PutUint32(posted[:], uint32(cfg.Workers))
	if err := k.WriteMem(s, nsRxPostedW, posted[:]); err != nil {
		return err
	}
	sv.NIC.QueueIO(qi).IOWrite32(dev.NICRegRxTail, uint32(cfg.Workers))

	// The drain-loop driver.
	db := driverProgram(uint32(q.IRQLine), uint32(cfg.RingSlots-1))
	dth, err := k.SpawnProgram(s, nsDriverCode, db.MustAssemble(), cfg.DriverPriority)
	if err != nil {
		return err
	}
	q.Driver = dth

	// The workers, each with its own port (clients round-robin across
	// them via ClientRef).
	for w := 0; w < cfg.Workers; w++ {
		port, _, psVA := dev.NewServicePort(k, s)
		q.Ports = append(q.Ports, port)
		wb := workerProgram(uint32(w), psVA, uint32(cfg.RingSlots-1))
		base := uint32(nsWorkerCode + w*0x1000)
		th, err := k.SpawnProgram(s, base, wb.MustAssemble(), cfg.WorkerPriority)
		if err != nil {
			return err
		}
		q.Workers = append(q.Workers, th)
	}
	return nil
}

// bufOff is worker w's RX buffer offset in the DMA region.
func (sv *Service) bufOff(w int) uint32 {
	return uint32(dmaRxBuf + w*sv.Cfg.BufPages*int(mem.PageSize))
}

// respond is the simulated remote end: parse the consumed TX frame,
// build the response body, and inject it back after the wire latency.
// It runs in NIC.OnTransmit — the TX doorbell's execution path on the
// queue's home CPU — so arming the timer on that queue's clock keeps
// the whole exchange on one goroutine.
func (sv *Service) respond(k *core.Kernel) func(qi int, tag uint32, frame []byte) {
	return func(qi int, tag uint32, frame []byte) {
		var conn, seq, respWords uint32
		if len(frame) >= 12 {
			conn = binary.LittleEndian.Uint32(frame[0:])
			seq = binary.LittleEndian.Uint32(frame[4:])
			respWords = binary.LittleEndian.Uint32(frame[8:])
		}
		if respWords < 1 {
			respWords = 1
		}
		if max := uint32(sv.Cfg.BufPages) * mem.PageSize / 4; respWords > max {
			respWords = max
		}
		body := make([]byte, respWords*4)
		for p := uint32(0); p*mem.PageSize < uint32(len(body)); p++ {
			binary.LittleEndian.PutUint32(body[p*mem.PageSize:], ResponseStamp(conn, seq, p))
		}
		home := sv.Queues[qi].Home
		k.CPUClock(home).After(sv.Cfg.WireCycles, func(uint64) {
			sv.NIC.Deliver(qi, tag, body)
		})
	}
}

// ResponseStamp is the word the remote end writes at the top of response
// page p — what clients verify to prove the payload really crossed the
// share (netload checks the first and last page of every reply).
func ResponseStamp(conn, seq, page uint32) uint32 {
	return conn<<16 | (seq&0xFF)<<8 | (page & 0xFF)
}

// ClientRef binds a reference to one of queue q's worker ports into a
// client space and returns its handle VA. i picks the worker
// round-robin, so spreading clients over i spreads them over workers.
func (sv *Service) ClientRef(k *core.Kernel, client *obj.Space, q, i int) uint32 {
	ports := sv.Queues[q].Ports
	return dev.BindClientRef(k, client, ports[i%len(ports)])
}

// Counters returns the NIC's device-wide accounting.
func (sv *Service) Counters() dev.NICCounters { return sv.NIC.Counters() }

// driverProgram builds queue q's NAPI drain loop:
//
//	arm(consumed); ack; irq_wait
//	bound = head shadow (published by the raise, ordered by the wake)
//	while consumed != bound:
//	    read descriptor[consumed & mask] -> (rxOff, rxLen, tag)
//	    hand it to worker `tag` (slot write + cond signal)
//	    consumed++
//
// With coalescing on, one trip around the outer loop drains every frame
// the raise announced; with it off, the shadow admits exactly one frame
// per interrupt and the ack invites the next. Cross-syscall state lives
// in scratch memory (nsConsumedW) and R6 — everything else is reloaded,
// since syscalls clobber R1-R5.
func driverProgram(irqLine, mask uint32) *prog.Builder {
	b := prog.New(nsDriverCode)
	b.Label("wait").
		Movi(4, nsConsumedW).Ld(5, 4, 0).
		Movi(4, nsMMIO).St(4, dev.NICRegIntrArm, 5).
		Movi(5, 1).St(4, dev.NICRegIRQAck, 5).
		IRQWait(irqLine)
	b.Label("drain").
		Movi(4, nsDMA+dmaShadow).Ld(2, 4, 0).
		Movi(4, nsConsumedW).Ld(3, 4, 0).
		Beq(3, 2, "wait")
	// R5 = &rxRing[consumed & mask]
	b.Movi(5, mask).And(5, 3, 5).
		Movi(4, 4).Shl(5, 5, 4).
		Movi(4, nsDMA+dmaRxRing).Add(5, 5, 4).
		Ld(1, 5, dev.NICDescOff).
		Ld(2, 5, dev.NICDescLen).
		Ld(6, 5, dev.NICDescTag)
	// Publish (rxOff, rxLen, ready) into worker R6's slot. The state
	// write precedes the lock: the worker's check-and-wait is atomic
	// under its mutex, so it either sees ready or gets the signal.
	b.Movi(4, 6).Shl(4, 6, 4).
		Movi(5, nsSlotBase).Add(4, 4, 5).
		St(4, 4, 1).
		St(4, 8, 2).
		Movi(5, 1).St(4, 0, 5)
	// consumed++
	b.Movi(4, nsConsumedW).Ld(3, 4, 0).Addi(3, 3, 1).St(4, 0, 3)
	// R6 = worker mutex VA; signal the worker.
	b.Movi(4, 6).Shl(6, 6, 4).
		Movi(4, vaWMutex).Add(6, 6, 4).
		Mov(1, 6).Syscall(sys.NMutexLock).
		Addi(1, 6, vaWCond).Syscall(sys.NCondSignal).
		Mov(1, 6).Syscall(sys.NMutexUnlock).
		Jmp("drain")
	return b
}

// workerProgram builds worker w's request loop:
//
//	receive [conn, seq, respWords] from a client
//	stage it in the TX frame buffer; publish a TX descriptor (tag = w)
//	  and ring the doorbell, under the queue's TX mutex
//	sleep on the slot cond until the driver hands over the RX frame
//	reply respWords words straight out of the DMA window (zero-copy
//	  eligible: the buffer is page-aligned)
//	repost the buffer — after the reply, so the frames are shared into
//	  the client before the device may overwrite them — and loop
func workerProgram(w, psVA, mask uint32) *prog.Builder {
	slotVA := uint32(nsSlotBase) + w*nsSlotSize
	mVA := uint32(vaWMutex) + w*0x40
	reqBuf := uint32(nsReqBase) + w*nsReqSize
	txBufVA := uint32(nsDMA + dmaTxBuf + w*16)

	b := prog.New(nsWorkerCode + w*0x1000)
	b.Label("serve").
		IPCWaitReceive(reqBuf, 4, psVA)
	// Stage the request as the outbound frame.
	b.Movi(1, reqBuf).Movi(2, txBufVA).
		Ld(3, 1, 0).St(2, 0, 3).
		Ld(3, 1, 4).St(2, 4, 3).
		Ld(3, 1, 8).St(2, 8, 3)
	// Publish a TX descriptor and ring the doorbell.
	b.MutexLock(vaTxMutex).
		Movi(1, nsTxTailW).Ld(2, 1, 0).
		Movi(3, mask).And(3, 2, 3).
		Movi(4, 4).Shl(3, 3, 4).
		Movi(4, nsDMA+dmaTxRing).Add(3, 3, 4).
		Movi(4, dmaTxBuf+w*16).St(3, dev.NICDescOff, 4).
		Movi(4, 12).St(3, dev.NICDescLen, 4).
		Movi(4, w).St(3, dev.NICDescTag, 4).
		Movi(4, 1).St(3, dev.NICDescOwn, 4).
		Addi(2, 2, 1).St(1, 0, 2).
		Movi(1, nsMMIO).St(1, dev.NICRegTxTail, 2).
		MutexUnlock(vaTxMutex)
	// Sleep until the driver posts the response into our slot.
	b.MutexLock(mVA)
	b.Label("rspwait").
		Movi(1, slotVA).Ld(2, 1, 0).
		Movi(3, 0).
		Bne(2, 3, "got").
		CondWait(mVA+vaWCond, mVA).
		Jmp("rspwait")
	b.Label("got").
		Movi(1, slotVA).Ld(6, 1, 4). // R6 = rxOff, durable across syscalls
		Ld(3, 1, 8).
		Movi(2, 2).Shr(3, 3, 2). // bytes -> words
		St(1, 12, 3).
		Movi(2, 0).St(1, 0, 2).
		MutexUnlock(mVA)
	// Reply straight out of the DMA window.
	b.Movi(1, nsDMA).Add(1, 1, 6).
		Movi(2, slotVA).Ld(2, 2, 12).
		Syscall(sys.NIPCReply)
	// Repost the buffer for the next response.
	b.MutexLock(vaRxMutex).
		Movi(1, nsRxPostedW).Ld(2, 1, 0).
		Movi(3, mask).And(3, 2, 3).
		Movi(4, 4).Shl(3, 3, 4).
		Movi(4, nsDMA+dmaRxRing).Add(3, 3, 4).
		St(3, dev.NICDescOff, 6).
		Movi(4, 0).St(3, dev.NICDescLen, 4).
		St(3, dev.NICDescTag, 4).
		Movi(4, 1).St(3, dev.NICDescOwn, 4).
		Addi(2, 2, 1).St(1, 0, 2).
		Movi(1, nsMMIO).St(1, dev.NICRegRxTail, 2).
		MutexUnlock(vaRxMutex)
	b.Jmp("serve")
	return b
}
