package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// pprof-compatible protobuf export, hand-encoded against the pprof
// Profile schema (github.com/google/pprof/proto/profile.proto) so the
// repository keeps its zero-dependency rule. One pprof sample per
// attribution triple with a three-frame stack, leaf first:
//
//	path  ->  pc bucket  ->  syscall (root)
//
// so `go tool pprof -top` (flat = leaf) aggregates by kernel path and a
// flamegraph reads syscall -> path -> PC bucket. The gzip stream is
// written with a zero modification time, so equal snapshots produce
// byte-equal files (deterministic per seed).

// Profile message field numbers (profile.proto).
const (
	profSampleType  = 1
	profSample      = 2
	profLocation    = 4
	profFunction    = 5
	profStringTable = 6
	profPeriodType  = 11
	profPeriod      = 12
)

// Sub-message field numbers.
const (
	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2

	locID   = 1
	locLine = 4

	lineFunctionID = 1

	fnID         = 1
	fnName       = 2
	fnSystemName = 3
)

// pbuf is a minimal protobuf writer.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) key(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// uintField emits a varint field (omitted when zero, per proto3).
func (p *pbuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.key(field, 0)
	p.varint(v)
}

// bytesField emits a length-delimited field.
func (p *pbuf) bytesField(field int, b []byte) {
	p.key(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packed emits a packed repeated varint field (omitted when empty).
func (p *pbuf) packed(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner pbuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// WritePprof writes the snapshot as a gzipped pprof protobuf.
func (s Snapshot) WritePprof(w io.Writer) error {
	// String table: index 0 must be "".
	strIdx := map[string]uint64{"": 0}
	strs := []string{""}
	intern := func(str string) uint64 {
		if i, ok := strIdx[str]; ok {
			return i
		}
		i := uint64(len(strs))
		strIdx[str] = i
		strs = append(strs, str)
		return i
	}

	// One function and one location per distinct frame name.
	locIdx := map[string]uint64{}
	var locNames []string
	locOf := func(name string) uint64 {
		if id, ok := locIdx[name]; ok {
			return id
		}
		id := uint64(len(locNames) + 1) // ids are 1-based
		locIdx[name] = id
		locNames = append(locNames, name)
		return id
	}

	var body pbuf
	// sample_type: one value per sample, "cycles" of unit "count"
	// (virtual cycles; pprof has no cycles unit, count renders raw).
	var vt pbuf
	vt.uintField(vtType, intern("cycles"))
	vt.uintField(vtUnit, intern("count"))
	body.bytesField(profSampleType, vt.b)

	emitSample := func(stack []string, cycles uint64) {
		ids := make([]uint64, len(stack))
		for i, name := range stack {
			ids[i] = locOf(name)
		}
		var sm pbuf
		sm.packed(sampleLocationID, ids)
		sm.packed(sampleValue, []uint64{cycles})
		body.bytesField(profSample, sm.b)
	}
	for _, smp := range s.Samples {
		emitSample([]string{smp.Path.String(), smp.PCLabel(), smp.SysName()}, smp.Cycles)
	}
	if s.Overflow > 0 {
		emitSample([]string{"overflow"}, s.Overflow)
	}

	for i, name := range locNames {
		id := uint64(i + 1)
		var ln pbuf
		ln.uintField(lineFunctionID, id)
		var loc pbuf
		loc.uintField(locID, id)
		loc.bytesField(locLine, ln.b)
		body.bytesField(profLocation, loc.b)

		var fn pbuf
		fn.uintField(fnID, id)
		fn.uintField(fnName, intern(name))
		fn.uintField(fnSystemName, intern(name))
		body.bytesField(profFunction, fn.b)
	}
	for _, str := range strs {
		body.bytesField(profStringTable, []byte(str))
	}
	var pt pbuf
	pt.uintField(vtType, intern("cycles"))
	pt.uintField(vtUnit, intern("count"))
	body.bytesField(profPeriodType, pt.b)
	body.uintField(profPeriod, 1)

	gz := gzip.NewWriter(w) // zero ModTime: deterministic bytes
	if _, err := gz.Write(body.b); err != nil {
		return err
	}
	return gz.Close()
}

// ---------------------------------------------------------------------------
// Minimal decoder — enough to validate an exported profile and answer
// "which stack holds the most cycles" (the CI smoke assertion) without
// depending on the pprof module.

type pparser struct {
	b   []byte
	pos int
}

func (p *pparser) done() bool { return p.pos >= len(p.b) }

func (p *pparser) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if p.pos >= len(p.b) {
			return 0, fmt.Errorf("profile: truncated varint")
		}
		c := p.b[p.pos]
		p.pos++
		v |= uint64(c&0x7F) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("profile: varint overflow")
}

// field reads one key and its payload: wire 0 returns the varint in v,
// wire 2 returns the bytes in raw.
func (p *pparser) field() (field int, v uint64, raw []byte, err error) {
	k, err := p.varint()
	if err != nil {
		return 0, 0, nil, err
	}
	field, wire := int(k>>3), int(k&7)
	switch wire {
	case 0:
		v, err = p.varint()
		return field, v, nil, err
	case 2:
		n, err := p.varint()
		if err != nil {
			return 0, 0, nil, err
		}
		if uint64(p.pos)+n > uint64(len(p.b)) {
			return 0, 0, nil, fmt.Errorf("profile: truncated field %d", field)
		}
		raw = p.b[p.pos : p.pos+int(n)]
		p.pos += int(n)
		return field, 0, raw, nil
	case 5: // fixed32 (unused by our encoder; skip for robustness)
		if p.pos+4 > len(p.b) {
			return 0, 0, nil, fmt.Errorf("profile: truncated fixed32")
		}
		p.pos += 4
		return field, 0, nil, nil
	case 1: // fixed64
		if p.pos+8 > len(p.b) {
			return 0, 0, nil, fmt.Errorf("profile: truncated fixed64")
		}
		p.pos += 8
		return field, 0, nil, nil
	default:
		return 0, 0, nil, fmt.Errorf("profile: unsupported wire type %d", wire)
	}
}

func parsePacked(raw []byte) ([]uint64, error) {
	pp := pparser{b: raw}
	var out []uint64
	for !pp.done() {
		v, err := pp.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// DecodedSample is one pprof sample resolved back to frame names.
type DecodedSample struct {
	Stack  []string // leaf first
	Cycles int64
}

// DecodePprof parses a gzipped pprof protobuf (as written by WritePprof,
// but tolerant of any single-valued pprof profile) back into resolved
// samples. It validates the structural invariants the CI smoke test
// cares about: the stream gunzips, every location resolves to a named
// function, and every sample carries a value.
func DecodePprof(data []byte) ([]DecodedSample, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("profile: gunzip: %w", err)
	}
	defer gz.Close()
	raw, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("profile: gunzip read: %w", err)
	}

	var strs []string
	locFn := map[uint64]uint64{}   // location id -> function id
	fnNames := map[uint64]uint64{} // function id -> string index
	type rawSample struct {
		locs []uint64
		vals []uint64
	}
	var samples []rawSample

	p := pparser{b: raw}
	for !p.done() {
		field, _, msg, err := p.field()
		if err != nil {
			return nil, err
		}
		switch field {
		case profStringTable:
			strs = append(strs, string(msg))
		case profSample:
			sp := pparser{b: msg}
			var rs rawSample
			for !sp.done() {
				f, v, b, err := sp.field()
				if err != nil {
					return nil, err
				}
				switch f {
				case sampleLocationID:
					if b != nil {
						vs, err := parsePacked(b)
						if err != nil {
							return nil, err
						}
						rs.locs = append(rs.locs, vs...)
					} else {
						rs.locs = append(rs.locs, v)
					}
				case sampleValue:
					if b != nil {
						vs, err := parsePacked(b)
						if err != nil {
							return nil, err
						}
						rs.vals = append(rs.vals, vs...)
					} else {
						rs.vals = append(rs.vals, v)
					}
				}
			}
			samples = append(samples, rs)
		case profLocation:
			lp := pparser{b: msg}
			var id, fid uint64
			for !lp.done() {
				f, v, b, err := lp.field()
				if err != nil {
					return nil, err
				}
				switch f {
				case locID:
					id = v
				case locLine:
					llp := pparser{b: b}
					for !llp.done() {
						lf, lv, _, err := llp.field()
						if err != nil {
							return nil, err
						}
						if lf == lineFunctionID {
							fid = lv
						}
					}
				}
			}
			locFn[id] = fid
		case profFunction:
			fp := pparser{b: msg}
			var id, nameIdx uint64
			for !fp.done() {
				f, v, _, err := fp.field()
				if err != nil {
					return nil, err
				}
				switch f {
				case fnID:
					id = v
				case fnName:
					nameIdx = v
				}
			}
			fnNames[id] = nameIdx
		}
	}

	if len(samples) == 0 {
		return nil, fmt.Errorf("profile: no samples")
	}
	out := make([]DecodedSample, 0, len(samples))
	for _, rs := range samples {
		if len(rs.vals) == 0 {
			return nil, fmt.Errorf("profile: sample with no value")
		}
		ds := DecodedSample{Cycles: int64(rs.vals[0])}
		for _, lid := range rs.locs {
			fid, ok := locFn[lid]
			if !ok {
				return nil, fmt.Errorf("profile: sample references unknown location %d", lid)
			}
			nameIdx, ok := fnNames[fid]
			if !ok || nameIdx >= uint64(len(strs)) {
				return nil, fmt.Errorf("profile: location %d has no named function", lid)
			}
			ds.Stack = append(ds.Stack, strs[nameIdx])
		}
		out = append(out, ds)
	}
	return out, nil
}

// TopSample returns the decoded sample with the largest value.
func TopSample(samples []DecodedSample) DecodedSample {
	top := samples[0]
	for _, s := range samples[1:] {
		if s.Cycles > top.Cycles {
			top = s
		}
	}
	return top
}
