// Package profile is the kernel's cycle-accurate virtual-time profiler.
// Every cycle the kernel charges to a clock — user batches, kernel work,
// context switches, lock spins, idle gaps — is attributed to a
// (kernel path, syscall, guest PC-bucket) triple at the existing charge
// sites in internal/core, aggregated per-CPU into fixed-size
// open-addressing tables so the hot path never allocates. The sum of all
// attributed cycles equals Stats.TotalCycles exactly (pinned by
// TestProfilerEquivalence): a full table diverts further cycles into a
// per-shard overflow bucket rather than dropping them.
//
// Snapshots merge the shards deterministically and export as folded
// stacks (flamegraph input) or as a pprof-compatible gzipped protobuf
// that `go tool pprof` opens natively (pprof.go). Like the metrics and
// trace layers, the profiler never charges cycles itself, so the
// simulated timeline is bit-identical with it on or off.
package profile

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sys"
)

// Path names one kernel code path a cycle can be charged to — the first
// dimension of the attribution triple. Path 0 is the generic kernel
// bucket: handler work between the specifically-tagged stretches.
type Path uint8

// Kernel paths.
const (
	// PathKernel: untagged kernel work (syscall handler bookkeeping).
	PathKernel Path = iota
	// PathUser: user-mode instruction batches.
	PathUser
	// PathIdle: idle gaps (clock advanced to the next event).
	PathIdle
	// PathSyscallEntry / PathSyscallExit: the hardware-mandated
	// supervisor-mode crossing costs (and FP's kernel-lock traffic).
	PathSyscallEntry
	PathSyscallExit
	// PathCtxSwitch: the general context switch (run-queue pick).
	PathCtxSwitch
	// PathDirectSwitch: the IPC fast path's direct thread handoff.
	PathDirectSwitch
	// PathLockSpin: contended virtual-lock acquires (multiprocessor).
	PathLockSpin
	// PathIPCCopy: the IPC data copy loop (per-word charges).
	PathIPCCopy
	// PathIPCShare: the zero-copy page-share path (per-page charges).
	PathIPCShare
	// PathIPCConnect: IPC connection establishment.
	PathIPCConnect
	// PathFaultSoft / PathFaultCOW / PathFaultHard: the fault remedies.
	PathFaultSoft
	PathFaultCOW
	PathFaultHard
	// PathObjLookup: handle-table resolution.
	PathObjLookup
	// PathRegionSearch: the region_search page scan.
	PathRegionSearch
	// PathGetSetState: thread state-frame marshaling.
	PathGetSetState

	// NumPaths bounds the enum.
	NumPaths
)

// PathNames are the path labels in Path order (frame names in exports).
var PathNames = [NumPaths]string{
	"kernel", "user", "idle",
	"syscall.entry", "syscall.exit",
	"sched.ctxswitch", "sched.handoff", "lock.spin",
	"ipc.copy", "ipc.share", "ipc.connect",
	"fault.soft", "fault.cow", "fault.hard",
	"obj.lookup", "region.search", "thread.state",
}

func (p Path) String() string {
	if int(p) < len(PathNames) {
		return PathNames[p]
	}
	return fmt.Sprintf("path%d", uint8(p))
}

// BucketShift sets the guest-PC bucket granularity: 1 << BucketShift
// bytes per bucket (256 B — a handful of basic blocks).
const BucketShift = 8

// NoSyscall is the syscall dimension outside any syscall (scheduler,
// idle, user batches between traps).
const NoSyscall = -1

// shardSlots is each per-CPU table's capacity (power of two). At three
// dimensions of modest cardinality (≈17 paths × ≈100 syscalls × the hot
// PC buckets of a workload) real runs occupy a few hundred slots;
// overflow beyond maxUsed diverts to the overflow bucket, keeping Add
// allocation-free and the cycle sum exact.
const shardSlots = 1 << 13

// maxUsed caps the load factor at 3/4 so linear probes stay short.
const maxUsed = shardSlots * 3 / 4

// packKey packs an attribution triple into one non-zero uint64:
// bit 63 marks occupancy, bits 32..39 the path, 24..31 the syscall
// (+1, so "no syscall" packs as 0), 0..23 the PC bucket.
func packKey(p Path, sysno int, pc uint32) uint64 {
	return 1<<63 | uint64(p)<<32 | uint64(sysno+1)<<24 | uint64(pc>>BucketShift)
}

func unpackKey(k uint64) (p Path, sysno int, bucket uint32) {
	return Path(k >> 32 & 0xFF), int(k>>24&0xFF) - 1, uint32(k & 0xFF_FFFF)
}

// mix is the splitmix64 finalizer — the probe-start hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shard is one CPU's attribution table: open addressing with linear
// probing over a fixed backing array, so Add never allocates. Cycles
// that arrive once the table is at capacity land in overflow — counted,
// never lost.
type Shard struct {
	keys     []uint64
	cycles   []uint64
	used     int
	overflow uint64
}

func newShard() *Shard {
	return &Shard{
		keys:   make([]uint64, shardSlots),
		cycles: make([]uint64, shardSlots),
	}
}

// Add charges cycles to the (path, syscall, pc) triple.
func (s *Shard) Add(p Path, sysno int, pc uint32, cycles uint64) {
	key := packKey(p, sysno, pc)
	i := mix(key) & (shardSlots - 1)
	for {
		switch s.keys[i] {
		case key:
			s.cycles[i] += cycles
			return
		case 0:
			if s.used >= maxUsed {
				s.overflow += cycles
				return
			}
			s.keys[i] = key
			s.cycles[i] = cycles
			s.used++
			return
		}
		i = (i + 1) & (shardSlots - 1)
	}
}

// Profiler owns one shard per simulated CPU.
type Profiler struct {
	shards []*Shard
}

// New creates a profiler for ncpu CPUs. All allocation happens here.
func New(ncpu int) *Profiler {
	p := &Profiler{shards: make([]*Shard, ncpu)}
	for i := range p.shards {
		p.shards[i] = newShard()
	}
	return p
}

// Shard returns CPU i's table.
func (p *Profiler) Shard(i int) *Shard { return p.shards[i] }

// Sample is one merged attribution triple with its cycle total.
type Sample struct {
	Path     Path
	Sys      int    // syscall number, NoSyscall if none
	PCBucket uint32 // guest PC >> BucketShift
	Cycles   uint64
}

// SysName renders the sample's syscall dimension ("-" outside syscalls).
func (s Sample) SysName() string {
	if s.Sys < 0 {
		return "-"
	}
	return sys.Name(s.Sys)
}

// PCLabel renders the sample's PC bucket as its start address.
func (s Sample) PCLabel() string {
	return fmt.Sprintf("pc=%#x", uint64(s.PCBucket)<<BucketShift)
}

// Snapshot is a deterministic merged view of all shards.
type Snapshot struct {
	Samples []Sample
	// Overflow is the cycle total that arrived after a shard table
	// filled; still part of TotalCycles.
	Overflow uint64
}

// Snapshot merges the shards: samples sorted by (path, syscall, bucket),
// so equal executions produce byte-equal exports.
func (p *Profiler) Snapshot() Snapshot {
	merged := make(map[uint64]uint64)
	var snap Snapshot
	for _, s := range p.shards {
		snap.Overflow += s.overflow
		for i, k := range s.keys {
			if k != 0 {
				merged[k] += s.cycles[i]
			}
		}
	}
	snap.Samples = make([]Sample, 0, len(merged))
	for k, cyc := range merged {
		path, sysno, bucket := unpackKey(k)
		snap.Samples = append(snap.Samples, Sample{Path: path, Sys: sysno, PCBucket: bucket, Cycles: cyc})
	}
	sort.Slice(snap.Samples, func(i, j int) bool {
		a, b := snap.Samples[i], snap.Samples[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Sys != b.Sys {
			return a.Sys < b.Sys
		}
		return a.PCBucket < b.PCBucket
	})
	return snap
}

// TotalCycles sums every attributed cycle, overflow included.
func (s Snapshot) TotalCycles() uint64 {
	total := s.Overflow
	for _, smp := range s.Samples {
		total += smp.Cycles
	}
	return total
}

// Top returns the n largest samples by cycles (ties by the snapshot's
// deterministic order).
func (s Snapshot) Top(n int) []Sample {
	out := append([]Sample(nil), s.Samples...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// WriteFolded writes the snapshot as folded stacks (flamegraph.pl /
// speedscope input): root-to-leaf frames `syscall;path;pc`, one line per
// triple, plus an `overflow` line when any shard filled.
func (s Snapshot) WriteFolded(w io.Writer) error {
	for _, smp := range s.Samples {
		if _, err := fmt.Fprintf(w, "%s;%s;%s %d\n", smp.SysName(), smp.Path, smp.PCLabel(), smp.Cycles); err != nil {
			return err
		}
	}
	if s.Overflow > 0 {
		if _, err := fmt.Fprintf(w, "overflow %d\n", s.Overflow); err != nil {
			return err
		}
	}
	return nil
}
