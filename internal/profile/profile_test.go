package profile

import (
	"bytes"
	"strings"
	"testing"
)

func TestKeyPackRoundTrip(t *testing.T) {
	cases := []struct {
		p   Path
		sys int
		pc  uint32
	}{
		{PathKernel, NoSyscall, 0},
		{PathUser, NoSyscall, 0x1234_5678},
		{PathIPCCopy, 84, 0xFFF0_0000},
		{NumPaths - 1, 106, 0xFFFF_FFFF},
	}
	for _, c := range cases {
		k := packKey(c.p, c.sys, c.pc)
		if k == 0 {
			t.Fatalf("packKey(%v,%d,%#x) = 0 (collides with the empty slot)", c.p, c.sys, c.pc)
		}
		p, s, b := unpackKey(k)
		if p != c.p || s != c.sys || b != c.pc>>BucketShift {
			t.Fatalf("round trip (%v,%d,%#x) -> (%v,%d,%#x)", c.p, c.sys, c.pc, p, s, b)
		}
	}
}

func TestAddAggregatesAndSumsExactly(t *testing.T) {
	p := New(2)
	p.Shard(0).Add(PathUser, NoSyscall, 0x100, 10)
	p.Shard(0).Add(PathUser, NoSyscall, 0x1ff, 5) // same 256-byte bucket
	p.Shard(1).Add(PathUser, NoSyscall, 0x100, 7) // same triple, other CPU
	p.Shard(1).Add(PathIPCCopy, 84, 0x100, 3)

	snap := p.Snapshot()
	if got := snap.TotalCycles(); got != 25 {
		t.Fatalf("TotalCycles = %d, want 25", got)
	}
	if len(snap.Samples) != 2 {
		t.Fatalf("samples = %d, want 2 (%+v)", len(snap.Samples), snap.Samples)
	}
	for _, s := range snap.Samples {
		switch s.Path {
		case PathUser:
			if s.Cycles != 22 {
				t.Fatalf("user cycles = %d, want 22", s.Cycles)
			}
		case PathIPCCopy:
			if s.Cycles != 3 || s.Sys != 84 {
				t.Fatalf("ipc sample = %+v", s)
			}
		default:
			t.Fatalf("unexpected sample %+v", s)
		}
	}
}

func TestOverflowKeepsSumExact(t *testing.T) {
	p := New(1)
	s := p.Shard(0)
	var want uint64
	// Far more distinct triples than maxUsed: distinct PC buckets.
	for i := uint32(0); i < shardSlots*2; i++ {
		s.Add(PathUser, NoSyscall, i<<BucketShift, 2)
		want += 2
	}
	snap := p.Snapshot()
	if snap.Overflow == 0 {
		t.Fatal("expected overflow after exhausting the table")
	}
	if got := snap.TotalCycles(); got != want {
		t.Fatalf("TotalCycles = %d, want %d (overflow must not lose cycles)", got, want)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		p := New(4)
		for cpu := 0; cpu < 4; cpu++ {
			for i := 0; i < 100; i++ {
				p.Shard(cpu).Add(Path(i%int(NumPaths)), i%10-1, uint32(i*531), uint64(i+1))
			}
		}
		return p.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build().WriteFolded(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("folded output differs across identical builds")
	}
	var pa, pb bytes.Buffer
	if err := build().WritePprof(&pa); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Fatal("pprof bytes differ across identical builds")
	}
}

func TestFoldedFormat(t *testing.T) {
	p := New(1)
	p.Shard(0).Add(PathIPCConnect, 84, 0x4200, 120)
	var b bytes.Buffer
	if err := p.Snapshot().WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(b.String())
	if !strings.HasSuffix(line, " 120") {
		t.Fatalf("folded line %q lacks the cycle count", line)
	}
	if !strings.Contains(line, ";ipc.connect;pc=0x4200") {
		t.Fatalf("folded line %q lacks the path;pc frames", line)
	}
	if strings.Count(line, ";") != 2 {
		t.Fatalf("folded line %q should have 3 frames", line)
	}
}

func TestPprofRoundTrip(t *testing.T) {
	p := New(2)
	p.Shard(0).Add(PathIPCConnect, 84, 0x4200, 120)
	p.Shard(0).Add(PathUser, NoSyscall, 0x100, 990)
	p.Shard(1).Add(PathIdle, NoSyscall, 0, 40)
	snap := p.Snapshot()

	var buf bytes.Buffer
	if err := snap.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePprof(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snap.Samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(snap.Samples))
	}
	var total int64
	for _, s := range got {
		total += s.Cycles
		if len(s.Stack) != 3 {
			t.Fatalf("sample stack %v, want 3 frames", s.Stack)
		}
	}
	if uint64(total) != snap.TotalCycles() {
		t.Fatalf("decoded cycle total %d, want %d", total, snap.TotalCycles())
	}
	top := TopSample(got)
	if top.Stack[0] != "user" || top.Cycles != 990 {
		t.Fatalf("top sample = %+v, want the 990-cycle user sample", top)
	}
}
