package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestNetloadSmoke drives the CI-smoke scale end to end in every mode
// and checks the accounting identities: every connection completes,
// contributes exactly one latency sample, crosses the NIC exactly once
// in each direction, and verifies its payload stamps.
func TestNetloadSmoke(t *testing.T) {
	sc := FastNetloadScale()
	for _, mode := range NetloadModes {
		res, err := NetloadCell(mode, 1, core.LockBig, sc)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Errors != 0 {
			t.Errorf("%s: %d payload stamp errors", mode, res.Errors)
		}
		if res.Conns != sc.Conns() {
			t.Errorf("%s: %d conns, want %d", mode, res.Conns, sc.Conns())
		}
		if got := res.NIC.TxFrames; got != uint64(sc.Conns()) {
			t.Errorf("%s: %d TX frames, want %d", mode, got, sc.Conns())
		}
		if got := res.NIC.RxFrames; got != uint64(sc.Conns()) {
			t.Errorf("%s: %d RX frames, want %d", mode, got, sc.Conns())
		}
		if got := res.NIC.RxBytes; got != res.Bytes {
			t.Errorf("%s: NIC RxBytes %d != client bytes %d", mode, got, res.Bytes)
		}
	}
}

// TestNetloadSpeedup pins the perf headline: with 64 KiB responses, the
// tuned configuration (interrupt coalescing + zero-copy replies) must
// deliver at least 3x the simulated throughput of the naive one — and
// the latency distribution must account for 100% of connections, so the
// p99 is over every RPC, not a sampled subset.
func TestNetloadSpeedup(t *testing.T) {
	sc := NetloadScale{Queues: 1, Workers: 4, Clients: 8, RPCs: 8, RespWords: 16384}
	cellOf := func(mode string) *netloadCell {
		cell, err := runNetloadCell(mode, 1, core.LockBig, netloadBaseConfig(), sc, false)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if cell.Res.Errors != 0 {
			t.Fatalf("%s: %d payload stamp errors", mode, cell.Res.Errors)
		}
		if cell.Lat.Count() != sc.Conns() {
			t.Fatalf("%s: %d latency samples for %d conns — p99 not 100%% accounted",
				mode, cell.Lat.Count(), sc.Conns())
		}
		if cell.Res.P99 <= 0 || cell.Res.P99 < cell.Res.P50 {
			t.Fatalf("%s: implausible percentiles p50=%.1f p99=%.1f",
				mode, cell.Res.P50, cell.Res.P99)
		}
		return cell
	}
	naive := cellOf(NetloadNaive)
	tuned := cellOf(NetloadTuned)
	speedup := tuned.Res.MBPerVirtualS / naive.Res.MBPerVirtualS
	t.Logf("naive %.1f MB/s (p99 %.0f µs), tuned %.1f MB/s (p99 %.0f µs): %.2fx",
		naive.Res.MBPerVirtualS, naive.Res.P99,
		tuned.Res.MBPerVirtualS, tuned.Res.P99, speedup)
	if speedup < 3.0 {
		t.Fatalf("tuned/naive simulated throughput %.2fx, want >= 3x", speedup)
	}
	// The gates must actually have gated: the tuned run shares pages
	// zero-copy and coalesces interrupts; the naive run does neither.
	if tuned.Res.ZeroCopyShares == 0 {
		t.Error("tuned: no zero-copy shares — replies took the copy path")
	}
	if naive.Res.ZeroCopyShares != 0 {
		t.Errorf("naive: %d zero-copy shares with the path disabled", naive.Res.ZeroCopyShares)
	}
	if tuned.Res.NIC.Coalesced == 0 {
		t.Error("tuned: no coalesced frames — every frame paid an interrupt")
	}
	if naive.Res.NIC.Coalesced != 0 {
		t.Errorf("naive: %d coalesced frames with coalescing disabled", naive.Res.NIC.Coalesced)
	}
	if naive.Res.NIC.IRQs < uint64(sc.Conns()) {
		t.Errorf("naive: %d IRQs < %d frames — one-per-frame discipline broken",
			naive.Res.NIC.IRQs, sc.Conns())
	}
}

// TestNICCoalesceEquivalence pins the optimization's safety: interrupt
// coalescing may change timing, but everything a client can observe in
// memory — response payloads, stamp checks — must be bit-identical with
// it on and off, across the paper's kernel configurations and across
// CPU counts and lock models. Same-config runs must also be fully
// deterministic: samples, virtual clock, and kernel stats identical
// run to run.
func TestNICCoalesceEquivalence(t *testing.T) {
	sc := FastNetloadScale()

	check := func(name string, base core.Config, cpus int, lm core.LockModel) {
		off1, err := runNetloadCell(NetloadNoCoalesce, cpus, lm, base, sc, false)
		if err != nil {
			t.Fatalf("%s off#1: %v", name, err)
		}
		off2, err := runNetloadCell(NetloadNoCoalesce, cpus, lm, base, sc, false)
		if err != nil {
			t.Fatalf("%s off#2: %v", name, err)
		}
		on, err := runNetloadCell(NetloadTuned, cpus, lm, base, sc, false)
		if err != nil {
			t.Fatalf("%s on: %v", name, err)
		}
		if off1.FullDigest != off2.FullDigest {
			t.Errorf("%s: coalescing-off runs diverge (full digest %#x vs %#x) — determinism broken",
				name, off1.FullDigest, off2.FullDigest)
		}
		if off1.PayloadDigest != on.PayloadDigest {
			t.Errorf("%s: client-visible memory differs with coalescing on vs off (%#x vs %#x)",
				name, on.PayloadDigest, off1.PayloadDigest)
		}
		for _, c := range []*netloadCell{off1, on} {
			if c.Res.Errors != 0 {
				t.Errorf("%s: %d payload stamp errors (mode=%s)", name, c.Res.Errors, c.Res.Mode)
			}
		}
	}

	// The paper's five kernel configurations, uniprocessor.
	for _, cfg := range core.Configurations() {
		name := cfg.Model.String() + "/" + cfg.Preempt.String()
		check(name, cfg, 1, core.LockBig)
	}
	// CPU counts x lock models on the interrupt/PP base.
	for _, cpus := range []int{1, 2} {
		for _, lm := range NetloadLockModels {
			name := "interrupt/pp/" + lm.String()
			check(name, netloadBaseConfig(), cpus, lm)
		}
	}
}

// TestNetloadParallelHost runs the tuned cell under real host
// parallelism — the -race CI step's target. Timing-derived numbers are
// not deterministic there; the invariants that must survive are
// completion, payload integrity, and the accounting identities.
func TestNetloadParallelHost(t *testing.T) {
	sc := NetloadScale{Queues: 2, Workers: 2, Clients: 4, RPCs: 4, RespWords: 2048}
	cell, err := runNetloadCell(NetloadTuned, 4, core.LockFine, netloadBaseConfig(), sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Res.Errors != 0 {
		t.Errorf("%d payload stamp errors", cell.Res.Errors)
	}
	if cell.Lat.Count() != sc.Conns() {
		t.Errorf("%d latency samples, want %d", cell.Lat.Count(), sc.Conns())
	}
	if got := cell.Res.NIC.RxFrames; got != uint64(sc.Conns()) {
		t.Errorf("%d RX frames, want %d", got, sc.Conns())
	}
}

func BenchmarkNetload(b *testing.B) {
	sc := FastNetloadScale()
	for i := 0; i < b.N; i++ {
		if _, err := NetloadCell(NetloadTuned, 1, core.LockBig, sc); err != nil {
			b.Fatal(err)
		}
	}
}
