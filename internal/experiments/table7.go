package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Table 7: memory overhead per thread across systems and execution
// models. Rows for other systems quote the paper's published values; the
// Fluke rows are measured from this kernel: the TCB is the real size of
// our thread control block, and process-model rows add the configured
// kernel stack (4096-byte default / 1024-byte "production" build).

// Table7Row is one system/configuration.
type Table7Row struct {
	System    string
	Model     string
	TCB       int
	Stack     int
	Total     int
	Published bool
}

// Table7 assembles published comparators plus measured Fluke rows.
func Table7() []Table7Row {
	published := []Table7Row{
		{System: "FreeBSD", Model: "Process", TCB: 2132, Stack: 6700, Total: 8832, Published: true},
		{System: "Linux", Model: "Process", TCB: 2395, Stack: 4096, Total: 6491, Published: true},
		{System: "Mach", Model: "Process", TCB: 452, Stack: 4022, Total: 4474, Published: true},
		{System: "Mach", Model: "Interrupt", TCB: 690, Stack: 0, Total: 690, Published: true},
		{System: "L3", Model: "Process", TCB: 0, Stack: 1024, Total: 1024, Published: true},
	}
	kDefault := core.New(core.Config{Model: core.ModelProcess})
	tcb, stack, total := kDefault.MemOverhead()
	rows := append(published, Table7Row{
		System: "Fluke (this repro)", Model: "Process", TCB: tcb, Stack: stack, Total: total,
	})
	kProd := core.New(core.Config{Model: core.ModelProcess, KernelStackSize: core.ProductionKernelStackSize})
	tcb2, stack2, total2 := kProd.MemOverhead()
	rows = append(rows, Table7Row{
		System: "Fluke (this repro)", Model: "Process", TCB: tcb2, Stack: stack2, Total: total2,
	})
	kInt := core.New(core.Config{Model: core.ModelInterrupt})
	tcb3, stack3, total3 := kInt.MemOverhead()
	rows = append(rows, Table7Row{
		System: "Fluke (this repro)", Model: "Interrupt", TCB: tcb3, Stack: stack3, Total: total3,
	})
	return rows
}

// Table7Render formats the rows like the paper.
func Table7Render(rows []Table7Row) *stats.Table {
	t := stats.NewTable("Table 7: Per-thread memory overhead (bytes)",
		"System", "Execution Model", "TCB Size", "Stack Size", "Total Size", "Source")
	for _, r := range rows {
		src := "measured"
		if r.Published {
			src = "as published"
		}
		stack := fmt.Sprintf("%d", r.Stack)
		if r.Stack == 0 && r.Model == "Interrupt" {
			stack = "-"
		}
		tcb := fmt.Sprintf("%d", r.TCB)
		if r.TCB == 0 {
			tcb = ""
		}
		t.Row(r.System, r.Model, tcb, stack, r.Total, src)
	}
	return t
}
