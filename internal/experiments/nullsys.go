package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/stats"
)

// The §5.5 architectural-bias microbenchmark: on a process-model-biased
// CPU, an interrupt-model kernel must move the saved state between the
// per-CPU stack and the thread structure on every kernel entry and exit.
// The paper measures this at about six cycles against a ~70-cycle minimal
// kernel entry/exit — under 10% even for the fastest possible system
// call. We reproduce it by timing null system calls under both models.

// NullSyscallResult is the measured per-call kernel cost for one model.
type NullSyscallResult struct {
	Model        string
	KernelCycles float64 // kernel cycles per null syscall
	TotalCycles  float64 // total (user+kernel) cycles per iteration
}

// NullSyscall measures count null syscalls under both execution models
// and returns (process, interrupt, delta-cycles).
func NullSyscall(count int) (NullSyscallResult, NullSyscallResult, float64, error) {
	run := func(cfg core.Config) (NullSyscallResult, error) {
		k := core.New(cfg)
		s := k.NewSpace()
		b := prog.New(0x0001_0000)
		b.Movi(6, 0).Label("loop").
			Null().
			Addi(6, 6, 1).Movi(5, uint32(count)).Blt(6, 5, "loop").
			Halt()
		th, err := k.SpawnProgram(s, 0x0001_0000, b.MustAssemble(), 8)
		if err != nil {
			return NullSyscallResult{}, err
		}
		start := k.Clock.Now()
		k.RunFor(runBudget)
		if !th.Exited {
			return NullSyscallResult{}, fmt.Errorf("nullsys: thread stuck")
		}
		elapsed := k.Clock.Now() - start
		return NullSyscallResult{
			Model:        cfg.Model.String(),
			KernelCycles: float64(k.Stats().KernelCycles) / float64(count),
			TotalCycles:  float64(elapsed) / float64(count),
		}, nil
	}
	p, err := run(core.Config{Model: core.ModelProcess})
	if err != nil {
		return NullSyscallResult{}, NullSyscallResult{}, 0, err
	}
	i, err := run(core.Config{Model: core.ModelInterrupt})
	if err != nil {
		return NullSyscallResult{}, NullSyscallResult{}, 0, err
	}
	return p, i, i.KernelCycles - p.KernelCycles, nil
}

// NullSyscallRender formats the microbenchmark.
func NullSyscallRender(p, i NullSyscallResult, delta float64) *stats.Table {
	t := stats.NewTable("§5.5 microbenchmark: null system call cost by execution model",
		"Model", "kernel cycles/call", "total cycles/iter")
	t.Row("Process", p.KernelCycles, p.TotalCycles)
	t.Row("Interrupt", i.KernelCycles, i.TotalCycles)
	t.Row("Interrupt-model overhead", delta, "")
	return t
}
