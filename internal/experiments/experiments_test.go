package experiments

import (
	"strings"
	"testing"

	"repro/internal/sys"
	"repro/internal/workload"
)

func TestTable1MatchesPaper(t *testing.T) {
	c := Table1Counts()
	if c[sys.Trivial] != 8 || c[sys.Short] != 68 || c[sys.Long] != 8 || c[sys.MultiStage] != 23 {
		t.Fatalf("inventory %v does not match the paper's 8/68/8/23", c)
	}
	out := Table1().String()
	for _, want := range []string{"Trivial", "thread_self", "107", "64%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ListsNineTypes(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"Mutex", "Cond", "Mapping", "Region", "Port", "Portset", "Space", "Thread", "Ref"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFigure1MentionsBothAxes(t *testing.T) {
	f := Figure1()
	for _, want := range []string{"Interrupt", "Process", "Atomic", "Fluke", "Mach", "BSD"} {
		if !strings.Contains(f, want) {
			t.Errorf("Figure 1 missing %q", want)
		}
	}
}

// TestTable3Shape checks the qualitative results the paper reports:
// remedy costs dwarf rollback costs; hard faults cost several times soft
// faults; server-side faults cost more than client-side ones.
func TestTable3Shape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	cs, ch, ss, sh := rows[0], rows[1], rows[2], rows[3]
	for _, r := range rows {
		if r.Faults != 1 {
			t.Errorf("%s: %d faults recorded, want exactly 1", r.Cause, r.Faults)
		}
		if r.RemedyUS <= r.RollbackUS {
			t.Errorf("%s: remedy %.2f <= rollback %.2f", r.Cause, r.RemedyUS, r.RollbackUS)
		}
	}
	if ch.RemedyUS < 3*cs.RemedyUS {
		t.Errorf("client hard %.1f not >> client soft %.1f", ch.RemedyUS, cs.RemedyUS)
	}
	if sh.RemedyUS < 3*ss.RemedyUS {
		t.Errorf("server hard %.1f not >> server soft %.1f", sh.RemedyUS, ss.RemedyUS)
	}
	if ss.RemedyUS <= cs.RemedyUS {
		t.Errorf("server soft %.1f not > client soft %.1f", ss.RemedyUS, cs.RemedyUS)
	}
	if sh.RemedyUS <= ch.RemedyUS {
		t.Errorf("server hard %.1f not > client hard %.1f", sh.RemedyUS, ch.RemedyUS)
	}
	// Calibration bands around the paper's numbers (generous).
	if cs.RemedyUS < 10 || cs.RemedyUS > 40 {
		t.Errorf("client soft remedy %.1f µs outside band (paper: 18.9)", cs.RemedyUS)
	}
	if ch.RemedyUS < 60 || ch.RemedyUS > 250 {
		t.Errorf("client hard remedy %.1f µs outside band (paper: 118)", ch.RemedyUS)
	}
}

// TestTable3MetricsAgree is the acceptance check for the metrics
// registry's Table 3 cross-check: for every one of the four
// exception-cause classes, the fault.restarts.* counter from the
// instrumented run reports exactly the restart count the experiment's
// own Stats bookkeeping reports.
func TestTable3MetricsAgree(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want the four cause classes", len(rows))
	}
	for _, r := range rows {
		if r.MetricRestarts != r.Faults {
			t.Errorf("%s: metrics counted %d restarts, experiment counted %d",
				r.Cause, r.MetricRestarts, r.Faults)
		}
		if r.MetricRestarts == 0 {
			t.Errorf("%s: metrics restart counter never incremented", r.Cause)
		}
	}
	out := Table3MetricsAppendix(rows).String()
	if strings.Contains(out, "NO") {
		t.Errorf("appendix reports disagreement:\n%s", out)
	}
	for _, want := range []string{"fault.restarts", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("appendix missing %q:\n%s", want, out)
		}
	}
}

// TestTable5Shape checks the paper's qualitative Table 5 findings on the
// fast scale: FP is the slowest configuration on every workload, the
// interrupt model has an advantage on flukeperf, and memtest/gcc are
// nearly configuration-insensitive.
func TestTable5Shape(t *testing.T) {
	results, err := Table5(FastTable5Scale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]Table5Cell{}
	for _, r := range results {
		byName[r.Workload] = r.Cells
	}
	cfgIdx := map[string]int{}
	for i, c := range byName["memtest"] {
		cfgIdx[c.Config] = i
	}
	get := func(w, cfg string) float64 { return byName[w][cfgIdx[cfg]].Normalized }

	for _, w := range []string{"memtest", "flukeperf", "gcc"} {
		fp := get(w, "Process FP")
		for _, cfg := range []string{"Process NP", "Process PP", "Interrupt NP", "Interrupt PP"} {
			if fp < get(w, cfg) {
				t.Errorf("%s: FP (%.3f) should be slowest, but %s is %.3f", w, fp, cfg, get(w, cfg))
			}
		}
	}
	if v := get("flukeperf", "Interrupt NP"); v >= 1.0 {
		t.Errorf("flukeperf Interrupt NP = %.3f, want < 1.00 (paper: 0.94)", v)
	}
	if v := get("flukeperf", "Process FP"); v < 1.03 {
		t.Errorf("flukeperf Process FP = %.3f, want noticeably > 1 (paper: 1.20)", v)
	}
	for _, cfg := range []string{"Process PP", "Interrupt NP", "Interrupt PP"} {
		if v := get("memtest", cfg); v < 0.97 || v > 1.03 {
			t.Errorf("memtest %s = %.3f, want ~1.00", cfg, v)
		}
		if v := get("gcc", cfg); v < 0.95 || v > 1.06 {
			t.Errorf("gcc %s = %.3f, want ~1.00-1.03", cfg, v)
		}
	}
}

// TestTable6Shape checks the paper's headline latency ordering: FP gives
// small bounded latency with no misses; NP has maxima orders of magnitude
// larger; PP sits in between, bounded by the longest non-IPC kernel path.
func TestTable6Shape(t *testing.T) {
	sc := workload.FlukeperfScale{
		Nulls: 20_000, MutexPairs: 10_000, PingPong: 500, RPCs: 500,
		BigTransfers: 1, BigWords: 1 << 20 / 4, Searches: 2,
	}
	rows, err := Table6(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Two rows per configuration (fastpath on/off); the paper's ordering
	// claims are checked on the default (fastpath-on) regime.
	byCfg := map[string]Table6Row{}
	for _, r := range rows {
		if r.Fastpath {
			byCfg[r.Config] = r
		}
	}
	fp := byCfg["Process FP"]
	if fp.MaxUS > 40 {
		t.Errorf("FP max latency %.1f µs, want tightly bounded (paper: 19.6)", fp.MaxUS)
	}
	if fp.Misses != 0 {
		t.Errorf("FP missed %d events, want 0", fp.Misses)
	}
	for _, np := range []string{"Process NP", "Interrupt NP"} {
		if byCfg[np].MaxUS < 20*fp.MaxUS {
			t.Errorf("%s max %.1f µs not >> FP max %.1f µs", np, byCfg[np].MaxUS, fp.MaxUS)
		}
	}
	for _, pp := range []string{"Process PP", "Interrupt PP"} {
		if byCfg[pp].MaxUS >= byCfg["Process NP"].MaxUS {
			t.Errorf("%s max %.1f µs not < NP max %.1f µs", pp, byCfg[pp].MaxUS, byCfg["Process NP"].MaxUS)
		}
		if byCfg[pp].MaxUS <= fp.MaxUS {
			t.Errorf("%s max %.1f µs not > FP max %.1f µs", pp, byCfg[pp].MaxUS, fp.MaxUS)
		}
	}
	for _, r := range rows {
		if r.Runs == 0 {
			t.Errorf("%s: probe never ran", r.Config)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	rows := Table7()
	var flukeInt, flukeProc4k *Table7Row
	for i := range rows {
		r := &rows[i]
		if r.Published {
			continue
		}
		if r.Model == "Interrupt" {
			flukeInt = r
		}
		if r.Model == "Process" && r.Stack == 4096 {
			flukeProc4k = r
		}
	}
	if flukeInt == nil || flukeProc4k == nil {
		t.Fatal("missing measured Fluke rows")
	}
	if flukeInt.Total >= flukeProc4k.Total {
		t.Error("interrupt model should cost less per thread than process model")
	}
	// The paper's interrupt-model Fluke TCB was 300 bytes; ours should be
	// the same order of magnitude.
	if flukeInt.Total < 100 || flukeInt.Total > 1000 {
		t.Errorf("interrupt-model per-thread overhead %d bytes, want O(300)", flukeInt.Total)
	}
	out := Table7Render(rows).String()
	if !strings.Contains(out, "FreeBSD") || !strings.Contains(out, "as published") {
		t.Error("Table 7 rendering incomplete")
	}
}

func TestNullSyscallBias(t *testing.T) {
	p, i, delta, err := NullSyscall(5000)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §5.5: ~6 cycles of interrupt-model overhead against a
	// ~70-cycle minimal entry/exit; "even for the fastest possible
	// system call the interrupt-model overhead is less than 10%".
	if delta < 4 || delta > 10 {
		t.Errorf("interrupt-model overhead = %.1f cycles, want ~6", delta)
	}
	if p.KernelCycles < 60 || p.KernelCycles > 120 {
		t.Errorf("process-model null syscall = %.1f cycles, want ~70-ish", p.KernelCycles)
	}
	if delta/i.KernelCycles > 0.10 {
		t.Errorf("overhead fraction %.1f%%, want < 10%%", 100*delta/i.KernelCycles)
	}
}
