package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
	"repro/internal/stats"
)

// The interpreter-tier experiment compares the three execution tiers of
// the simulated CPU — the per-instruction slow path, the decode-cache
// fast path, and the threaded-code tier (fused superinstruction blocks)
// — on three guest shapes chosen to stress each tier differently:
//
//   - straight-line: long runs of ALU instructions, the best case for
//     fused blocks (one dispatch amortized over ~30 instructions);
//   - branch-heavy: a taken branch every instruction, so every block is
//     a single instruction plus its terminator — the worst case that
//     still engages the tier;
//   - self-modifying: a store into the executing code page every
//     iteration, invalidating the page's decode slots and fused blocks
//     each time around the loop (the DMA/self-modifying signal).
//
// The tiers are simulator-side: all three must retire the same guest
// work in exactly the same number of virtual cycles. Only host time may
// differ, and InterpreterTiers enforces that by failing if any tier's
// virtual-cycle count diverges.

// InterpTierNames are the tiers in InterpTierResult.Host order.
var InterpTierNames = [3]string{"slow", "decode-cache", "threaded"}

// InterpTierResult is one guest shape measured under all three tiers.
type InterpTierResult struct {
	Workload string
	Cycles   uint64           // virtual cycles, identical across tiers
	Host     [3]time.Duration // host time per tier, InterpTierNames order
	Exec     cpu.ExecStats    // threaded tier's decode/block counters
}

// interpProgram builds one of the three guest shapes running iters loop
// iterations at scCode.
func interpProgram(kind string, iters int) *prog.Builder {
	b := prog.New(scCode)
	switch kind {
	case "straight-line":
		b.Movi(6, 0).Movi(5, uint32(iters)).Movi(1, 1)
		b.Label("loop")
		for i := 0; i < 30; i++ {
			switch i % 3 {
			case 0:
				b.Add(2, 2, 1)
			case 1:
				b.Xor(3, 3, 2)
			case 2:
				b.Addi(4, 4, 5)
			}
		}
		b.Addi(6, 6, 1).Blt(6, 5, "loop").Halt()
	case "branch-heavy":
		b.Movi(6, 0).Movi(5, uint32(iters))
		b.Label("loop")
		for i := 0; i < 8; i++ {
			next := fmt.Sprintf("b%d", i)
			b.Bge(6, 0, next) // always taken, to the next instruction
			b.Label(next)
		}
		b.Addi(6, 6, 1).Blt(6, 5, "loop").Halt()
	case "self-modifying":
		// The store lands inside the executing code page (a scratch word
		// past the last instruction), bumping the page's store generation
		// and invalidating its decode slots and fused blocks every
		// iteration.
		b.Movi(6, 0).Movi(5, uint32(iters))
		b.Label("loop").
			Addi(6, 6, 1).
			St(0, scCode+0xF00, 6).
			Blt(6, 5, "loop").
			Halt()
	default:
		panic("unknown interp workload " + kind)
	}
	return b
}

// InterpreterTiers runs the three guest shapes under all three tiers and
// returns one row per shape. It fails if any tier observes a different
// virtual-cycle count than the slow path — the tiers' core invariant.
func InterpreterTiers(iters int) ([]InterpTierResult, error) {
	tiers := [3]core.Config{
		{Model: core.ModelProcess, DisableFastPath: true},
		{Model: core.ModelProcess, DisableThreadedCode: true},
		{Model: core.ModelProcess},
	}
	var rows []InterpTierResult
	for _, kind := range []string{"straight-line", "branch-heavy", "self-modifying"} {
		img := interpProgram(kind, iters).MustAssemble()
		row := InterpTierResult{Workload: kind}
		for ti, cfg := range tiers {
			k := core.New(cfg)
			s := k.NewSpace()
			th, err := k.SpawnProgram(s, scCode, img, 8)
			if err != nil {
				return nil, err
			}
			start := k.Clock.Now()
			host := time.Now()
			k.RunFor(runBudget)
			row.Host[ti] = time.Since(host)
			if !th.Exited {
				return nil, fmt.Errorf("interp: %s thread stuck under %s tier at pc=%#x",
					kind, InterpTierNames[ti], th.Regs.PC)
			}
			cycles := k.Clock.Now() - start
			if ti == 0 {
				row.Cycles = cycles
			} else if cycles != row.Cycles {
				return nil, fmt.Errorf("interp: %s tier retired %s in %d virtual cycles, slow path took %d — tiers must be invisible to virtual time",
					InterpTierNames[ti], kind, cycles, row.Cycles)
			}
			if ti == 2 {
				row.Exec = k.ExecStats()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// InterpreterTiersRender formats the tier comparison: identical virtual
// cycles, host time per tier, the threaded/decode-cache speedup, and the
// threaded tier's block activity.
func InterpreterTiersRender(rows []InterpTierResult) *stats.Table {
	t := stats.NewTable("Interpreter tiers: host time for identical virtual work (process model)",
		"workload", "virt cycles", "slow", "decode-cache", "threaded", "thr/dec speedup", "block hits", "invalidations")
	for _, r := range rows {
		speed := float64(r.Host[1]) / float64(r.Host[2])
		t.Row(r.Workload, r.Cycles,
			fmt.Sprintf("%.1fms", float64(r.Host[0].Microseconds())/1000),
			fmt.Sprintf("%.1fms", float64(r.Host[1].Microseconds())/1000),
			fmt.Sprintf("%.1fms", float64(r.Host[2].Microseconds())/1000),
			fmt.Sprintf("%.2fx", speed),
			r.Exec.BlockHits, r.Exec.BlockInvalidations)
	}
	return t
}
