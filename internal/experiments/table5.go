package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table 5: performance of the three applications under the five kernel
// configurations, normalized to Process NP.

// Table5Scale selects workload sizes.
type Table5Scale struct {
	Flukeperf    workload.FlukeperfScale
	MemtestBytes uint32
	GCC          workload.GCCScale
}

// FullTable5Scale approximates the paper's runs (16 MB memtest).
func FullTable5Scale() Table5Scale {
	return Table5Scale{
		Flukeperf:    workload.DefaultFlukeperfScale(),
		MemtestBytes: workload.MemtestBytes,
		GCC:          workload.DefaultGCCScale(),
	}
}

// FastTable5Scale runs in a few seconds of host time.
func FastTable5Scale() Table5Scale {
	return Table5Scale{
		Flukeperf: workload.FlukeperfScale{
			Nulls: 5_000, MutexPairs: 5_000, PingPong: 2_000, RPCs: 2_000,
			BigTransfers: 1, BigWords: 512 << 10 / 4, Searches: 2,
		},
		MemtestBytes: 2 << 20,
		GCC:          workload.GCCScale{Files: 10, Words: 128, Passes: 10},
	}
}

// Table5Cell is one workload / configuration measurement, run under both
// IPC-fastpath regimes (the Off fields are the Config.DisableIPCFastPath
// rerun, normalized against the off-regime Process NP base so each column
// stays internally consistent). The kernel activity counters come from the
// metrics registry attached to the fastpath-on run's kernel and feed
// Table5MetricsAppendix.
type Table5Cell struct {
	Config        string
	VirtualMS     float64
	Normalized    float64
	VirtualMSOff  float64
	NormalizedOff float64

	CtxSwitches  uint64
	Restarts     uint64
	IPCBytes     uint64
	FastpathHits uint64
}

// Table5Result holds one column (workload) of the table.
type Table5Result struct {
	Workload string
	Cells    []Table5Cell // in Configurations() order
}

const runBudget = 1 << 62

// Table5 runs the three workloads under every configuration.
func Table5(sc Table5Scale) ([]Table5Result, error) {
	mk := map[string]func(k *core.Kernel) (*workload.Workload, error){
		"memtest":   func(k *core.Kernel) (*workload.Workload, error) { return workload.NewMemtest(k, sc.MemtestBytes) },
		"flukeperf": func(k *core.Kernel) (*workload.Workload, error) { return workload.NewFlukeperf(k, sc.Flukeperf) },
		"gcc":       func(k *core.Kernel) (*workload.Workload, error) { return workload.NewGCC(k, sc.GCC) },
	}
	// One workload run on one configuration; returns (virtual ms, metrics).
	runOne := func(name string, cfg core.Config) (float64, *core.KernelMetrics, error) {
		// The paper's tables measure the copying kernel; zero-copy frame
		// sharing (PR 5) collapses flukeperf's big transfers and with them
		// the copy-bound ratios the tables reproduce. The Bandwidth
		// experiment is where zero-copy is exercised.
		cfg.DisableZeroCopy = true
		k := core.New(cfg)
		m := k.EnableMetrics()
		w, err := mk[name](k)
		if err != nil {
			return 0, nil, fmt.Errorf("table5 %s %s: %w", name, cfg.Name(), err)
		}
		cycles, err := w.Run(runBudget)
		if err != nil {
			return 0, nil, fmt.Errorf("table5 %s %s: %w", name, cfg.Name(), err)
		}
		return float64(cycles) / (clock.CyclesPerMicrosecond * 1000), m, nil
	}
	var out []Table5Result
	for _, name := range []string{"memtest", "flukeperf", "gcc"} {
		res := Table5Result{Workload: name}
		var base, baseOff float64
		for _, cfg := range core.Configurations() {
			ms, m, err := runOne(name, cfg)
			if err != nil {
				return nil, err
			}
			off := cfg
			off.DisableIPCFastPath = true
			msOff, _, err := runOne(name, off)
			if err != nil {
				return nil, err
			}
			if cfg.Name() == "Process NP" {
				base, baseOff = ms, msOff
			}
			res.Cells = append(res.Cells, Table5Cell{
				Config:       cfg.Name(),
				VirtualMS:    ms,
				VirtualMSOff: msOff,
				CtxSwitches:  m.CtxSwitches.Value(),
				Restarts:     m.RestartsTotal.Value(),
				IPCBytes:     m.IPCBytes.Value(),
				FastpathHits: m.FastpathHits.Value(),
			})
		}
		for i := range res.Cells {
			res.Cells[i].Normalized = res.Cells[i].VirtualMS / base
			res.Cells[i].NormalizedOff = res.Cells[i].VirtualMSOff / baseOff
		}
		out = append(out, res)
	}
	return out, nil
}

// Table5Render formats the results like the paper (configurations as
// rows, workloads as columns; absolute time on the Process NP row), with
// each workload column split into an IPC-fastpath on/off pair so the
// paper's table is reproducible under both regimes.
func Table5Render(results []Table5Result) *stats.Table {
	t := stats.NewTable("Table 5: Application performance across kernel configurations (normalized to Process NP; fastpath on/off)",
		"Configuration", "memtest on", "memtest off", "flukeperf on", "flukeperf off", "gcc on", "gcc off")
	for i, cfg := range core.Configurations() {
		cells := make([]any, 0, 7)
		cells = append(cells, cfg.Name())
		for _, r := range results {
			c := r.Cells[i]
			von := fmt.Sprintf("%.2f", c.Normalized)
			voff := fmt.Sprintf("%.2f", c.NormalizedOff)
			if cfg.Name() == "Process NP" {
				von = fmt.Sprintf("1.00 (%.0fms)", c.VirtualMS)
				voff = fmt.Sprintf("1.00 (%.0fms)", c.VirtualMSOff)
			}
			cells = append(cells, von, voff)
		}
		t.Row(cells...)
	}
	return t
}

// Table5MetricsAppendix tabulates the kernel activity counters behind
// each Table 5 cell — why the configurations differ, not just by how
// much: preemption shows up as extra context switches, fault pressure as
// restarts, and the IPC-bound workloads as bytes through CopyWords.
func Table5MetricsAppendix(results []Table5Result) *stats.Table {
	t := stats.NewTable("Table 5 appendix: kernel activity counters per run (from the metrics registry; fastpath-on runs)",
		"Workload", "Configuration", "ctx switches", "restarts", "IPC bytes", "direct handoffs")
	for _, r := range results {
		for _, c := range r.Cells {
			t.Row(r.Workload, c.Config, c.CtxSwitches, c.Restarts, c.IPCBytes, c.FastpathHits)
		}
	}
	return t
}
