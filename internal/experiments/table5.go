package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table 5: performance of the three applications under the five kernel
// configurations, normalized to Process NP.

// Table5Scale selects workload sizes.
type Table5Scale struct {
	Flukeperf    workload.FlukeperfScale
	MemtestBytes uint32
	GCC          workload.GCCScale
}

// FullTable5Scale approximates the paper's runs (16 MB memtest).
func FullTable5Scale() Table5Scale {
	return Table5Scale{
		Flukeperf:    workload.DefaultFlukeperfScale(),
		MemtestBytes: workload.MemtestBytes,
		GCC:          workload.DefaultGCCScale(),
	}
}

// FastTable5Scale runs in a few seconds of host time.
func FastTable5Scale() Table5Scale {
	return Table5Scale{
		Flukeperf: workload.FlukeperfScale{
			Nulls: 5_000, MutexPairs: 5_000, PingPong: 2_000, RPCs: 2_000,
			BigTransfers: 1, BigWords: 512 << 10 / 4, Searches: 2,
		},
		MemtestBytes: 2 << 20,
		GCC:          workload.GCCScale{Files: 10, Words: 128, Passes: 10},
	}
}

// Table5Cell is one workload / configuration measurement. The kernel
// activity counters come from the metrics registry attached to the run's
// kernel and feed Table5MetricsAppendix.
type Table5Cell struct {
	Config     string
	VirtualMS  float64
	Normalized float64

	CtxSwitches uint64
	Restarts    uint64
	IPCBytes    uint64
}

// Table5Result holds one column (workload) of the table.
type Table5Result struct {
	Workload string
	Cells    []Table5Cell // in Configurations() order
}

const runBudget = 1 << 62

// Table5 runs the three workloads under every configuration.
func Table5(sc Table5Scale) ([]Table5Result, error) {
	mk := map[string]func(k *core.Kernel) (*workload.Workload, error){
		"memtest":   func(k *core.Kernel) (*workload.Workload, error) { return workload.NewMemtest(k, sc.MemtestBytes) },
		"flukeperf": func(k *core.Kernel) (*workload.Workload, error) { return workload.NewFlukeperf(k, sc.Flukeperf) },
		"gcc":       func(k *core.Kernel) (*workload.Workload, error) { return workload.NewGCC(k, sc.GCC) },
	}
	var out []Table5Result
	for _, name := range []string{"memtest", "flukeperf", "gcc"} {
		res := Table5Result{Workload: name}
		var base float64
		for _, cfg := range core.Configurations() {
			k := core.New(cfg)
			m := k.EnableMetrics()
			w, err := mk[name](k)
			if err != nil {
				return nil, fmt.Errorf("table5 %s %s: %w", name, cfg.Name(), err)
			}
			cycles, err := w.Run(runBudget)
			if err != nil {
				return nil, fmt.Errorf("table5 %s %s: %w", name, cfg.Name(), err)
			}
			ms := float64(cycles) / (clock.CyclesPerMicrosecond * 1000)
			if cfg.Name() == "Process NP" {
				base = ms
			}
			res.Cells = append(res.Cells, Table5Cell{
				Config:      cfg.Name(),
				VirtualMS:   ms,
				CtxSwitches: m.CtxSwitches.Value(),
				Restarts:    m.RestartsTotal.Value(),
				IPCBytes:    m.IPCBytes.Value(),
			})
		}
		for i := range res.Cells {
			res.Cells[i].Normalized = res.Cells[i].VirtualMS / base
		}
		out = append(out, res)
	}
	return out, nil
}

// Table5Render formats the results like the paper (configurations as
// rows, workloads as columns; absolute time on the Process NP row).
func Table5Render(results []Table5Result) *stats.Table {
	t := stats.NewTable("Table 5: Application performance across kernel configurations (normalized to Process NP)",
		"Configuration", "memtest", "flukeperf", "gcc")
	for i, cfg := range core.Configurations() {
		cells := make([]any, 0, 4)
		cells = append(cells, cfg.Name())
		for _, r := range results {
			c := r.Cells[i]
			v := fmt.Sprintf("%.2f", c.Normalized)
			if cfg.Name() == "Process NP" {
				v = fmt.Sprintf("1.00 (%.0fms)", c.VirtualMS)
			}
			cells = append(cells, v)
		}
		t.Row(cells...)
	}
	return t
}

// Table5MetricsAppendix tabulates the kernel activity counters behind
// each Table 5 cell — why the configurations differ, not just by how
// much: preemption shows up as extra context switches, fault pressure as
// restarts, and the IPC-bound workloads as bytes through CopyWords.
func Table5MetricsAppendix(results []Table5Result) *stats.Table {
	t := stats.NewTable("Table 5 appendix: kernel activity counters per run (from the metrics registry)",
		"Workload", "Configuration", "ctx switches", "restarts", "IPC bytes")
	for _, r := range results {
		for _, c := range r.Cells {
			t.Row(r.Workload, c.Config, c.CtxSwitches, c.Restarts, c.IPCBytes)
		}
	}
	return t
}
