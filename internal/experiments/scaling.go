package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/sys"
)

// The multiprocessor scaling experiment: independent client/server RPC
// pairs, each in its own pair of spaces, streaming bulk IPC transfers.
// The total work is fixed; the CPU count and lock model vary. Under the
// big kernel lock every kernel episode serializes in virtual time, so
// adding CPUs buys little; under per-subsystem locking the bulk copies
// run outside the object-space lock (ipc_support.go) and overlap across
// CPUs, so simulated throughput scales. This is the classic
// big-lock-vs-fine-grained story told with the kernel's own virtual
// locks, with the contention counters to prove the diagnosis.

// ScalingRow is one (CPUs, lock model) cell of the experiment.
type ScalingRow struct {
	CPUs      int
	LockModel core.LockModel
	RPCs      int    // total RPCs completed across all pairs
	Frontier  uint64 // virtual-time frontier at completion (cycles)
	// RPCsPerVirtualMS is simulated throughput: total RPCs per
	// millisecond of virtual time.
	RPCsPerVirtualMS float64
	// Speedup is this cell's throughput relative to the same lock model
	// at one CPU.
	Speedup float64
	Locks   [core.NumLockKinds]core.LockStat
}

// ScalingScale sizes the experiment.
type ScalingScale struct {
	Pairs int // concurrent client/server pairs
	RPCs  int // RPCs per pair
	Words int // words transferred per RPC (the bulk payload)
}

// DefaultScalingScale keeps a full run in the hundreds of milliseconds.
func DefaultScalingScale() ScalingScale { return ScalingScale{Pairs: 4, RPCs: 24, Words: 1024} }

// FastScalingScale is the bench-smoke variant.
func FastScalingScale() ScalingScale { return ScalingScale{Pairs: 2, RPCs: 8, Words: 512} }

const (
	scCode   = 0x0001_0000
	scData   = 0x0004_0000
	scDataSz = 16 * 4096
	scPort   = core.KObjBase + 0x400
	scPset   = core.KObjBase + 0x404
	scRef    = core.KObjBase + 0x408
)

// runScalingCell runs the fixed workload on one kernel configuration and
// returns (total RPCs, frontier, lock stats).
func runScalingCell(cpus int, lm core.LockModel, sc ScalingScale) (ScalingRow, error) {
	row, _, err := runScalingCellK(cpus, lm, sc)
	return row, err
}

// runScalingCellK additionally returns the kernel for stats inspection.
func runScalingCellK(cpus int, lm core.LockModel, sc ScalingScale) (ScalingRow, *core.Kernel, error) {
	cfg := core.Config{
		Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
		NumCPUs: cpus, LockModel: lm,
	}
	return runScalingCellCfg(cfg, sc)
}

// runScalingCellCfg runs the workload on an explicit kernel config (the
// on/off comparisons toggle cfg.DisableIPCFastPath).
func runScalingCellCfg(cfg core.Config, sc ScalingScale) (ScalingRow, *core.Kernel, error) {
	cpus := cfg.NumCPUs
	if cpus == 0 {
		cpus = 1
	}
	lm := cfg.LockModel
	k := core.New(cfg)

	sbuf := uint32(scData + 0x1000)
	rbuf := uint32(scData + 0x2000)
	ebuf := uint32(scData + 0x4000)

	srv := prog.New(scCode)
	srv.Label("echo").
		IPCWaitReceive(ebuf, uint32(sc.Words), scPset).
		Label("echo.loop").
		Movi(4, ebuf).Ld(5, 4, 0).Add(5, 5, 5).St(4, 0, 5).
		IPCReplyWaitReceive(ebuf, 1, scPset, ebuf, uint32(sc.Words)).
		Jmp("echo.loop")
	srvImg := srv.MustAssemble()

	// R7 is the link register (clobbered by every syscall CALL), so the
	// loop bound is reloaded into R5 each iteration, flukeperf-style.
	cli := prog.New(scCode)
	cli.Label("cli").Movi(6, 0).
		Label("cli.loop").
		Movi(4, sbuf).St(4, 0, 6).
		IPCClientConnectSendOverReceive(sbuf, uint32(sc.Words), scRef, rbuf, 1).
		IPCClientDisconnect().
		Addi(6, 6, 1).Movi(5, uint32(sc.RPCs)).
		Blt(6, 5, "cli.loop").
		Halt()
	cliImg := cli.MustAssemble()

	mkSpace := func() (*obj.Space, error) {
		s := k.NewSpace()
		r, err := k.NewBoundRegion(s, core.KObjBase+0x900, scDataSz, true)
		if err != nil {
			return nil, err
		}
		if _, err := k.MapInto(s, r, scData, 0, scDataSz, mmu.PermRW); err != nil {
			return nil, err
		}
		return s, nil
	}

	var clients []*obj.Thread
	for p := 0; p < sc.Pairs; p++ {
		ss, err := mkSpace()
		if err != nil {
			return ScalingRow{}, nil, err
		}
		cs, err := mkSpace()
		if err != nil {
			return ScalingRow{}, nil, err
		}
		po, _ := obj.New(sys.ObjPort)
		pso, _ := obj.New(sys.ObjPortset)
		port := po.(*obj.Port)
		ps := pso.(*obj.Portset)
		if err := k.Bind(ss, scPort, port); err != nil {
			return ScalingRow{}, nil, err
		}
		if err := k.Bind(ss, scPset, ps); err != nil {
			return ScalingRow{}, nil, err
		}
		ps.AddPort(port)
		ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
		if err := k.Bind(cs, scRef, ref); err != nil {
			return ScalingRow{}, nil, err
		}
		if _, err := k.LoadImage(ss, scCode, srvImg); err != nil {
			return ScalingRow{}, nil, err
		}
		if _, err := k.LoadImage(cs, scCode, cliImg); err != nil {
			return ScalingRow{}, nil, err
		}
		st := k.NewThread(ss, 12)
		st.Regs.PC = srv.Addr("echo")
		k.StartThread(st)
		ct := k.NewThread(cs, 10)
		ct.Regs.PC = cli.Addr("cli")
		k.StartThread(ct)
		clients = append(clients, ct)
	}

	// Stop as soon as every client has exited: the frontier then measures
	// the RPC work itself, not the idle drain to the last armed slice
	// timer (a fixed ~one-quantum tail that would dilute the comparison).
	k.RunUntil(func() bool {
		for _, ct := range clients {
			if !ct.Exited {
				return false
			}
		}
		return true
	})
	for i, ct := range clients {
		if !ct.Exited {
			return ScalingRow{}, nil, fmt.Errorf("scaling: pair %d client stuck (cpus=%d lm=%v pc=%#x)",
				i, cpus, lm, ct.Regs.PC)
		}
	}
	total := sc.Pairs * sc.RPCs
	frontier := k.Now()
	row := ScalingRow{
		CPUs: cpus, LockModel: lm, RPCs: total, Frontier: frontier,
		RPCsPerVirtualMS: float64(total) / (float64(frontier) / 200_000.0),
		Locks:            k.LockStats(),
	}
	return row, k, nil
}

// IPCScalingCell runs a single (CPUs, lock model) cell — the benchmark
// entry point. Speedup is left zero; only the matrix driver can relate
// cells to their 1-CPU base.
func IPCScalingCell(cpus int, lm core.LockModel, sc ScalingScale) (ScalingRow, error) {
	return runScalingCell(cpus, lm, sc)
}

// IPCScaling runs the scaling matrix: cpus × both lock models, fixed
// total work. Speedups are computed against the 1-CPU cell of the same
// lock model.
func IPCScaling(sc ScalingScale, cpusList []int) ([]ScalingRow, error) {
	if len(cpusList) == 0 {
		cpusList = []int{1, 2, 4}
	}
	var rows []ScalingRow
	base := map[core.LockModel]float64{}
	for _, lm := range []core.LockModel{core.LockBig, core.LockPerSubsystem} {
		for _, n := range cpusList {
			row, err := runScalingCell(n, lm, sc)
			if err != nil {
				return nil, err
			}
			if n == 1 {
				base[lm] = row.RPCsPerVirtualMS
			}
			if b := base[lm]; b > 0 {
				row.Speedup = row.RPCsPerVirtualMS / b
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// IPCScalingRender formats the matrix with the contention evidence.
func IPCScalingRender(rows []ScalingRow) *stats.Table {
	t := stats.NewTable("Parallel IPC pairs: simulated throughput by CPU count and lock model",
		"CPUs", "Lock model", "RPCs/virtual-ms", "speedup", "contended acquires", "lock wait kcycles")
	for _, r := range rows {
		var contended, wait uint64
		for _, ls := range r.Locks {
			contended += ls.Contended
			wait += ls.WaitCycles
		}
		t.Row(r.CPUs, r.LockModel.String(), r.RPCsPerVirtualMS, r.Speedup,
			contended, float64(wait)/1000)
	}
	return t
}
