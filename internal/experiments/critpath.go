package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Critical-path decomposition (flukebench -critpath): run a workload with
// causal IPC spans enabled (Config.EnableIPCSpans), reconstruct every
// request's begin→end chain from the trace ring's Flow events, and
// account its wall-cycle length hop by hop. The telescoping invariant of
// trace.SpanPaths guarantees the hops of a complete span sum to exactly
// its length — the table always covers 100% of the measured interval
// (pinned by TestCritPathNullRPCFullCoverage).

// CritPathResult is one workload's aggregated span decomposition.
type CritPathResult struct {
	Name       string
	Spans      int // complete spans analyzed
	Incomplete int // spans still in flight (or truncated) at run end
	SpanCycles uint64
	Hops       []trace.HopTotal
	Longest    trace.SpanPath
	HasLongest bool
}

// CoveragePct is the share of the summed span intervals the hop table
// accounts for — 100 by construction; recomputed (not assumed) so the
// render and the acceptance test both measure rather than assert.
func (r CritPathResult) CoveragePct() float64 {
	if r.SpanCycles == 0 {
		return 0
	}
	var hopCycles uint64
	for _, h := range r.Hops {
		hopCycles += h.Cycles
	}
	return 100 * float64(hopCycles) / float64(r.SpanCycles)
}

// critPathAnalyze reduces a finished run's trace ring to a result.
func critPathAnalyze(name string, ring *trace.Ring) CritPathResult {
	spans := trace.SpanPaths(ring.Events())
	r := CritPathResult{Name: name}
	for _, s := range spans {
		if s.Complete {
			r.Spans++
		} else {
			r.Incomplete++
		}
	}
	r.Hops, r.SpanCycles = trace.Decompose(spans)
	r.Longest, r.HasLongest = trace.Longest(spans)
	return r
}

// critPathRing sizes the span ring: every RPC emits a handful of flow
// checkpoints, and the ring must also hold the interleaved non-flow
// events, so give each iteration generous headroom.
func critPathRing(iters int) *trace.Ring {
	n := 64 * iters
	if n < 1<<12 {
		n = 1 << 12
	}
	return trace.NewRing(n)
}

// CritPathNullRPC decomposes count null-RPC round trips, with the IPC
// direct-handoff fast path on or off — on, the chain shows the two
// handoff hops that replaced the run-queue passes.
func CritPathNullRPC(count int, disableFast bool) (CritPathResult, error) {
	cfg := core.Config{
		Model:              core.ModelProcess,
		DisableIPCFastPath: disableFast,
		EnableIPCSpans:     true,
	}
	ring := critPathRing(count)
	_, _, err := nullRPCKernel(cfg, count, func(k *core.Kernel) { k.Tracer = ring })
	if err != nil {
		return CritPathResult{}, err
	}
	name := "null-RPC, fastpath on"
	if disableFast {
		name = "null-RPC, fastpath off"
	}
	return critPathAnalyze(name, ring), nil
}

// CritPathBulk decomposes transfers one-way bulk sends of pages pages
// each (page-aligned, so the zero-copy share path is eligible), acked by
// a one-word reply — the bandwidth experiment's shape with spans on.
func CritPathBulk(pages, transfers int) (CritPathResult, error) {
	cfg := core.Config{Model: core.ModelProcess, EnableIPCSpans: true}
	ring := critPathRing(transfers)
	k := core.New(cfg)
	k.Tracer = ring
	s := k.NewSpace()
	if err := bindNullRPC(k, s); err != nil {
		return CritPathResult{}, err
	}

	// Page-aligned halves of the 16-page data window: send buffer in
	// pages 4..4+pages, receive buffer in pages 8..8+pages (pages ≤ 4
	// keeps both inside the window with the small ack buffers below).
	if pages < 1 || pages > 4 {
		return CritPathResult{}, fmt.Errorf("critpath: pages must be 1..4, got %d", pages)
	}
	words := uint32(pages) * 1024
	const (
		sbuf = scData + 0x4000
		ebuf = scData + 0x8000
		rbuf = scData + 0x100
		erep = scData + 0x140
	)
	b := prog.New(scCode)
	b.Label("cli").
		Movi(4, sbuf).Movi(5, 0xb1d).St(4, 0, 5).
		Movi(6, 0).Label("cli.loop").
		IPCClientConnectSendOverReceive(sbuf, words, scRef, rbuf, 1).
		IPCClientDisconnect().
		Addi(6, 6, 1).Movi(5, uint32(transfers)).Blt(6, 5, "cli.loop").
		Halt()
	b.Label("sink").
		IPCWaitReceive(ebuf, words+1, scPset).
		Label("sink.loop").
		Movi(4, ebuf).Ld(5, 4, 0).
		Movi(4, erep).St(4, 0, 5).
		IPCReplyWaitReceive(erep, 1, scPset, ebuf, words+1).
		Jmp("sink.loop")
	img, err := b.Assemble()
	if err != nil {
		return CritPathResult{}, err
	}
	if _, err := k.LoadImage(s, scCode, img); err != nil {
		return CritPathResult{}, err
	}
	srv := k.NewThread(s, 9)
	srv.Regs.PC = b.Addr("sink")
	k.StartThread(srv)
	cli := k.NewThread(s, 8)
	cli.Regs.PC = b.Addr("cli")
	k.StartThread(cli)
	k.RunUntil(func() bool { return cli.Exited })
	if !cli.Exited {
		return CritPathResult{}, fmt.Errorf("critpath: bulk client stuck at pc=%#x", cli.Regs.PC)
	}
	return critPathAnalyze(fmt.Sprintf("bulk %d-page send", pages), ring), nil
}

// CritPathRender formats one decomposition: the aggregated hop table with
// its coverage line and the longest complete chain.
func CritPathRender(r CritPathResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Critical path: %s (%d spans, %d in flight at end)",
			r.Name, r.Spans, r.Incomplete),
		"hop", "count", "cycles", "avg cycles/span", "% of span time")
	for _, h := range r.Hops {
		avg := float64(h.Cycles)
		if r.Spans > 0 {
			avg /= float64(r.Spans)
		}
		t.Row(h.Point, h.Count, h.Cycles, avg,
			fmt.Sprintf("%.1f%%", 100*float64(h.Cycles)/float64(max64(r.SpanCycles, 1))))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "accounted: %.1f%% of %d span cycles (%.1f cycles/span)\n",
		r.CoveragePct(), r.SpanCycles, float64(r.SpanCycles)/float64(max64(uint64(r.Spans), 1)))
	if r.HasLongest {
		b.WriteString("longest chain: ")
		b.WriteString(trace.FormatChain(r.Longest))
		b.WriteByte('\n')
	}
	return b.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
