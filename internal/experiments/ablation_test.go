package experiments

import "testing"

// TestAblationMonotonicity pins the design tradeoff both sweeps exist to
// show: coarser preemption checking can only increase worst-case latency.
func TestAblationMonotonicity(t *testing.T) {
	pp, err := AblatePreemptPointSpacing([]uint32{2048, 65536, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pp); i++ {
		if pp[i].MaxUS < pp[i-1].MaxUS {
			t.Errorf("PP spacing %s max %.1f < %s max %.1f (not monotone)",
				pp[i].Value, pp[i].MaxUS, pp[i-1].Value, pp[i-1].MaxUS)
		}
	}
	// The paper's point: widely spaced points wreck latency.
	if pp[len(pp)-1].MaxUS < 10*pp[0].MaxUS {
		t.Errorf("1 MB spacing max %.1f not >> 2 KB spacing max %.1f",
			pp[len(pp)-1].MaxUS, pp[0].MaxUS)
	}

	fp, err := AblateFPGranularity([]uint64{200, 20000})
	if err != nil {
		t.Fatal(err)
	}
	if fp[1].MaxUS < fp[0].MaxUS {
		t.Errorf("FP granularity: coarser checks gave lower max (%.2f < %.2f)",
			fp[1].MaxUS, fp[0].MaxUS)
	}
	// Runtime overhead moves the other way (finer checks cost more), but
	// only slightly; just sanity-check it does not explode.
	if fp[0].VirtualMS > 2*fp[1].VirtualMS {
		t.Errorf("1 µs FP checking doubled runtime: %.1f vs %.1f", fp[0].VirtualMS, fp[1].VirtualMS)
	}
}
