package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// The lock-model crossover study (ROADMAP item: Elphinstone et al.'s
// coarse- vs fine-grained locking evaluation retold on Fluke's atomic
// API). The scaling matrix (scaling.go) stops at 4 CPUs and two models;
// this sweep pushes to 64 CPUs and adds the fine model — per-run-queue
// and per-space lock instances — so the curve can actually cross: the
// big lock flattens first, per-subsystem locking carries to the low
// tens of CPUs, and the fine model keeps scaling once cross-CPU wakes
// and disjoint spaces stop funnelling through the global sched/obj
// locks. Work grows with the machine (pairs = CPU count), so the
// figure of merit is simulated throughput, not fixed-work runtime.

// CrossoverRow is one (workload, CPUs, lock model) cell.
type CrossoverRow struct {
	Workload  string // "ipc-pairs" (bulk payload) or "null-rpc"
	CPUs      int
	LockModel core.LockModel
	RPCs      int    // total RPCs completed across all pairs
	Frontier  uint64 // virtual-time frontier at completion (cycles)
	// RPCsPerVirtualMS is simulated throughput: total RPCs per
	// millisecond of virtual time.
	RPCsPerVirtualMS float64
	// Speedup is this cell's throughput relative to the same workload
	// and lock model at one CPU.
	Speedup float64
	// Contended / WaitKCycles aggregate the virtual-lock evidence.
	Contended   uint64
	WaitKCycles float64
}

// CrossoverScale sizes the sweep. Pairs are not a knob: each cell runs
// one client/server pair per CPU (minimum two), so utilization is
// comparable at every machine size.
type CrossoverScale struct {
	RPCs  int // RPCs per pair
	Words int // words per transfer in the bulk ipc-pairs workload
}

// DefaultCrossoverScale keeps the full 64-CPU sweep in tens of seconds.
func DefaultCrossoverScale() CrossoverScale { return CrossoverScale{RPCs: 16, Words: 1024} }

// FastCrossoverScale is the CI-smoke variant.
func FastCrossoverScale() CrossoverScale { return CrossoverScale{RPCs: 6, Words: 256} }

// CrossoverCPUs is the full sweep's CPU axis.
var CrossoverCPUs = []int{1, 2, 4, 8, 16, 32, 64}

// CrossoverModels is the lock-model axis.
var CrossoverModels = []core.LockModel{core.LockBig, core.LockPerSubsystem, core.LockFine}

// crossoverWorkloads: the bulk parallel-IPC-pairs workload stresses the
// data path (copies overlap outside the object lock under persub and
// fine); null-RPC (a 1-word payload) is pure control path, where the
// per-instance locks are the whole difference.
func crossoverWorkloads(sc CrossoverScale) []struct {
	Name  string
	Words int
} {
	return []struct {
		Name  string
		Words int
	}{
		{"ipc-pairs", sc.Words},
		{"null-rpc", 1},
	}
}

// LockCrossover runs the sweep: workloads × lock models × cpusList, on
// the deterministic interleaver (the virtual-time contention model is
// the object of study; ParallelHost measures host wall-clock instead).
func LockCrossover(sc CrossoverScale, cpusList []int) ([]CrossoverRow, error) {
	if len(cpusList) == 0 {
		cpusList = CrossoverCPUs
	}
	var rows []CrossoverRow
	for _, wl := range crossoverWorkloads(sc) {
		for _, lm := range CrossoverModels {
			base := 0.0
			for _, n := range cpusList {
				pairs := n
				if pairs < 2 {
					pairs = 2
				}
				cfg := core.Config{
					Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
					NumCPUs: n, LockModel: lm,
				}
				cell, _, err := runScalingCellCfg(cfg, ScalingScale{
					Pairs: pairs, RPCs: sc.RPCs, Words: wl.Words,
				})
				if err != nil {
					return nil, err
				}
				var contended, wait uint64
				for _, ls := range cell.Locks {
					contended += ls.Contended
					wait += ls.WaitCycles
				}
				row := CrossoverRow{
					Workload: wl.Name, CPUs: n, LockModel: lm,
					RPCs: cell.RPCs, Frontier: cell.Frontier,
					RPCsPerVirtualMS: cell.RPCsPerVirtualMS,
					Contended:        contended,
					WaitKCycles:      float64(wait) / 1000,
				}
				if n == cpusList[0] && cpusList[0] == 1 {
					base = row.RPCsPerVirtualMS
				}
				if base > 0 {
					row.Speedup = row.RPCsPerVirtualMS / base
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// LockCrossoverRender formats the sweep, one table section per workload.
func LockCrossoverRender(rows []CrossoverRow) *stats.Table {
	t := stats.NewTable("Lock-model crossover: simulated throughput, 1-64 CPUs x {big, persub, fine}",
		"workload", "CPUs", "Lock model", "RPCs/virtual-ms", "speedup", "contended acquires", "lock wait kcycles")
	for _, r := range rows {
		t.Row(r.Workload, r.CPUs, r.LockModel.String(), r.RPCsPerVirtualMS, r.Speedup,
			r.Contended, r.WaitKCycles)
	}
	return t
}
