package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table 6: the effect of the execution model on preemption latency. A
// high-priority kernel thread is scheduled every millisecond while
// flukeperf runs; we record its average and maximum observed latency, how
// many times it ran, and how many scheduling events it missed because the
// previous activation had not completed.

// Table6Row is one configuration's latency measurement under one IPC
// fastpath regime. The percentiles come from the probe's memoized latency
// distribution and extend the paper's avg/max with tail shape.
type Table6Row struct {
	Config   string
	Fastpath bool
	AvgUS    float64
	P50US    float64
	P95US    float64
	P99US    float64
	MaxUS    float64
	Runs     uint64
	Misses   uint64
}

// Table6 measures all five configurations running flukeperf at the given
// scale, each as an IPC-fastpath on/off pair (a donated time slice is not
// a scheduler decision, so the probe's latency distribution is where any
// fast-path effect on preemption would show up).
func Table6(sc workload.FlukeperfScale) ([]Table6Row, error) {
	var rows []Table6Row
	for _, base := range core.Configurations() {
		for _, disable := range []bool{false, true} {
			cfg := base
			cfg.DisableIPCFastPath = disable
			// Copying kernel: the probe latency table reproduces the
			// paper's preemption bounds, which assume word-by-word IPC.
			cfg.DisableZeroCopy = true
			k := core.New(cfg)
			w, err := workload.NewFlukeperf(k, sc)
			if err != nil {
				return nil, fmt.Errorf("table6 %s: %w", cfg.Name(), err)
			}
			p := workload.InstallProbe(k, workload.DefaultProbePeriod, workload.DefaultProbeWork)
			if _, err := w.Run(runBudget); err != nil {
				return nil, fmt.Errorf("table6 %s: %w", cfg.Name(), err)
			}
			p.Stop()
			rows = append(rows, Table6Row{
				Config:   cfg.Name(),
				Fastpath: !disable,
				AvgUS:    p.Lat.Avg(),
				P50US:    p.Lat.P50(),
				P95US:    p.Lat.P95(),
				P99US:    p.Lat.P99(),
				MaxUS:    p.Lat.Max(),
				Runs:     p.Runs,
				Misses:   p.Misses,
			})
		}
	}
	return rows, nil
}

// Table6Render formats the rows like the paper, one on/off pair per
// configuration.
func Table6Render(rows []Table6Row) *stats.Table {
	t := stats.NewTable("Table 6: Effect of execution model on preemption latency (flukeperf; fastpath on/off pairs)",
		"Configuration", "fastpath", "avg (µs)", "p50", "p95", "p99", "max (µs)", "runs", "missed")
	for _, r := range rows {
		fp := "on"
		if !r.Fastpath {
			fp = "off"
		}
		t.Row(r.Config, fp, r.AvgUS, r.P50US, r.P95US, r.P99US, r.MaxUS, r.Runs, r.Misses)
	}
	return t
}
