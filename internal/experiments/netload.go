package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/netsrv"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/stats"
)

// The network-server load experiment: a fleet of client threads hammers
// the user-mode network stack (internal/netsrv over the simulated NIC)
// with connect-send-over-receive RPCs and measures simulated throughput
// and latency percentiles. Two device/kernel optimizations carry the
// headline, each independently gated:
//
//   - NIC interrupt coalescing (Config.DisableNICCoalesce): with it off,
//     every response frame pays a full interrupt/drain/ack round.
//   - Zero-copy replies (Config.DisableZeroCopy): responses land in
//     page-aligned NIC buffers and the worker replies straight out of
//     the DMA window, so with the path on, multi-page bodies ride
//     COW-shared frames NIC ring -> server -> client; with it off, every
//     reply is a word-by-word copy at CycCopyWord.
//
// The four modes below toggle them in a 2x2; "tuned" vs "naive" at
// 64 KiB responses is the >=3x claim TestNetloadSpeedup pins. Clients
// stamp-check the first and last page of every reply against
// netsrv.ResponseStamp, so a reply that missed the share (or shared the
// wrong frame) counts as an error, and every RPC contributes exactly one
// latency sample — percentiles account for 100% of connections.

// Netload modes (the 2x2 of the two gates).
const (
	NetloadTuned      = "tuned"       // coalescing on, zero-copy on
	NetloadNoCoalesce = "no-coalesce" // zero-copy only
	NetloadNoZeroCopy = "no-zerocopy" // coalescing only
	NetloadNaive      = "naive"       // both off
)

// NetloadModes is the mode axis in presentation order.
var NetloadModes = []string{NetloadNaive, NetloadNoZeroCopy, NetloadNoCoalesce, NetloadTuned}

// NetloadCPUs is the default sweep CPU axis.
var NetloadCPUs = []int{1, 2, 4}

// NetloadLockModels is the default sweep lock-model axis.
var NetloadLockModels = []core.LockModel{core.LockBig, core.LockPerSubsystem, core.LockFine}

// NetloadScale sizes the workload.
type NetloadScale struct {
	Queues    int // NIC queues (= driver spaces, one per CPU when possible)
	Workers   int // server worker threads per queue
	Clients   int // client threads per queue
	RPCs      int // connections per client (connect/send/receive each)
	RespWords int // response body words (16384 = the 64 KiB headline)
}

// Conns is the total connection count the scale drives.
func (sc NetloadScale) Conns() int { return sc.Queues * sc.Clients * sc.RPCs }

// DefaultNetloadScale drives 1024 connections of 64 KiB responses.
func DefaultNetloadScale() NetloadScale {
	return NetloadScale{Queues: 2, Workers: 4, Clients: 16, RPCs: 32, RespWords: 16384}
}

// FastNetloadScale is the CI-smoke variant: 8 KiB responses, 24 conns.
func FastNetloadScale() NetloadScale {
	return NetloadScale{Queues: 1, Workers: 2, Clients: 4, RPCs: 6, RespWords: 2048}
}

// NetloadResult is one measured cell.
type NetloadResult struct {
	Mode      string
	CPUs      int
	LockModel core.LockModel
	Conns     int    // connections completed (== latency samples)
	Errors    int    // client-side payload stamp mismatches
	Bytes     uint64 // response payload bytes received
	ElapsedUS float64
	// MBPerVirtualS is simulated throughput: payload megabytes per
	// second of virtual time.
	MBPerVirtualS  float64
	P50, P95, P99  float64 // per-connection latency, virtual µs
	MaxUS          float64
	NIC            dev.NICCounters
	KernelCycles   uint64
	ZeroCopyShares uint64
}

// NetloadReport is the full experiment: the 2x2 mode comparison at one
// CPU under the big lock, plus the tuned-mode CPUs x lock-model sweep.
type NetloadReport struct {
	Scale   NetloadScale
	Modes   []NetloadResult
	Sweep   []NetloadResult
	Speedup float64 // tuned / naive simulated throughput
}

// Client-space guest layout: per-client code blocks, a scratch slot
// (request words, start time, error count), a latency-sample array, and
// a page-aligned receive buffer — page-aligned so multi-page replies are
// zero-copy eligible on the client side too.
const (
	nlCode = 0x0001_0000 // + i*0x1000
	nlData = 0x0004_0000 // + i*64: req@0, t0@16, err@20
	nlSamp = 0x0008_0000 // + i*RPCs*4: per-RPC latency, µs
	nlBuf  = 0x0020_0000 // + i*bufPages*PageSize
)

// netloadClientProgram builds client i's loop: RPCs iterations of
// stamp request -> clock_get -> connect/send-over/receive -> clock_get,
// store the latency sample, verify the response stamps, halt. The loop
// counter lives in R6 (the only register syscalls preserve).
func netloadClientProgram(i int, conn, refVA uint32, sc NetloadScale, bufPages int) *prog.Builder {
	slot := uint32(nlData + i*64)
	t0W := slot + 16
	errW := slot + 20
	samp := uint32(nlSamp + i*sc.RPCs*4)
	rbuf := uint32(nlBuf + i*bufPages*int(mem.PageSize))
	lastPage := uint32((sc.RespWords*4 - 1) / int(mem.PageSize))

	// checkStamp verifies the response word at the top of page p:
	// netsrv.ResponseStamp(conn, seq, p) with seq in R6.
	b := prog.New(uint32(nlCode + i*0x1000))
	checkStamp := func(p uint32, ok string) {
		b.Movi(1, rbuf+p*mem.PageSize).Ld(2, 1, 0).
			Movi(3, 255).And(3, 6, 3).
			Movi(4, 8).Shl(3, 3, 4).
			Movi(4, netsrv.ResponseStamp(conn, 0, p)).Add(3, 3, 4).
			Beq(2, 3, ok).
			Movi(1, errW).Ld(2, 1, 0).Addi(2, 2, 1).St(1, 0, 2).
			Label(ok)
	}

	b.Movi(6, 0)
	b.Label("loop").
		Movi(1, slot).Movi(2, conn).St(1, 0, 2).St(1, 4, 6).
		Movi(2, uint32(sc.RespWords)).St(1, 8, 2)
	b.ClockGet().Movi(2, t0W).St(2, 0, 1)
	b.IPCClientConnectSendOverReceive(slot, 3, refVA, rbuf, uint32(sc.RespWords)).
		IPCClientDisconnect()
	b.ClockGet().
		Movi(2, t0W).Ld(3, 2, 0).Sub(4, 1, 3).
		Movi(2, 2).Shl(5, 6, 2).
		Movi(2, samp).Add(5, 5, 2).St(5, 0, 4)
	checkStamp(0, "ok0")
	if lastPage > 0 {
		checkStamp(lastPage, "ok1")
	}
	b.Addi(6, 6, 1).Movi(5, uint32(sc.RPCs)).Blt(6, 5, "loop").
		Halt()
	return b
}

// netloadCell is one run's full yield: the public result plus the
// digests the equivalence test compares and the raw latency samples.
type netloadCell struct {
	Res NetloadResult
	Lat *stats.Latency
	// PayloadDigest hashes what clients can see: final receive-buffer
	// contents and error counts. It must not depend on the interrupt
	// discipline.
	PayloadDigest uint64
	// FullDigest additionally folds in every latency sample, the
	// virtual-time frontier, and the kernel stats — the determinism
	// fingerprint for run-twice comparisons.
	FullDigest uint64
}

// runNetloadCell builds a kernel in the given mode, attaches the network
// server, drives the client fleet to completion, and harvests results.
func runNetloadCell(mode string, cpus int, lm core.LockModel, base core.Config, sc NetloadScale, parallel bool) (*netloadCell, error) {
	bufPages := (sc.RespWords*4 + int(mem.PageSize) - 1) / int(mem.PageSize)
	if bufPages < 1 {
		bufPages = 1
	}
	cfg := base
	cfg.NumCPUs = cpus
	cfg.LockModel = lm
	cfg.ParallelHost = parallel
	cfg.DisableNICCoalesce = mode == NetloadNoCoalesce || mode == NetloadNaive
	cfg.DisableZeroCopy = mode == NetloadNoZeroCopy || mode == NetloadNaive
	k := core.New(cfg)

	sv, err := netsrv.Attach(k, netsrv.Config{
		Queues: sc.Queues, Workers: sc.Workers, BufPages: bufPages,
	})
	if err != nil {
		return nil, err
	}

	scratchSz := mem.PageRound(uint32(sc.Clients * 64))
	sampSz := mem.PageRound(uint32(sc.Clients * sc.RPCs * 4))
	bufSz := uint32(sc.Clients * bufPages * int(mem.PageSize))
	var clients []*obj.Thread
	var cspaces []*obj.Space
	for q := 0; q < sc.Queues; q++ {
		cs := k.NewSpace()
		// Clients live opposite their queue when there are CPUs to
		// spare, so the wire crosses CPUs like a real stack.
		k.SetSpaceHome(cs, (q+sc.Queues)%k.NumCPUs())
		for _, m := range []struct {
			handle, va, size uint32
		}{
			{core.KObjBase + 0x900, nlData, scratchSz},
			{core.KObjBase + 0x904, nlSamp, sampSz},
			{core.KObjBase + 0x908, nlBuf, bufSz},
		} {
			r, err := k.NewBoundRegion(cs, m.handle, m.size, true)
			if err != nil {
				return nil, err
			}
			if _, err := k.MapInto(cs, r, m.va, 0, m.size, mmu.PermRW); err != nil {
				return nil, err
			}
			if err := k.WriteMem(cs, m.va, make([]byte, m.size)); err != nil {
				return nil, err
			}
		}
		for i := 0; i < sc.Clients; i++ {
			refVA := sv.ClientRef(k, cs, q, i)
			conn := uint32(q*256 + i + 1)
			pb := netloadClientProgram(i, conn, refVA, sc, bufPages)
			th, err := k.SpawnProgram(cs, uint32(nlCode+i*0x1000), pb.MustAssemble(), 10)
			if err != nil {
				return nil, err
			}
			clients = append(clients, th)
		}
		cspaces = append(cspaces, cs)
	}

	k.RunUntil(func() bool {
		for _, ct := range clients {
			if !ct.Exited {
				return false
			}
		}
		return true
	})
	for i, ct := range clients {
		if !ct.Exited {
			return nil, fmt.Errorf("netload: client %d stuck (mode=%s cpus=%d lm=%v pc=%#x)",
				i, mode, cpus, lm, ct.Regs.PC)
		}
	}

	lat := &stats.Latency{}
	errs := 0
	payload := fnv.New64a()
	full := fnv.New64a()
	for _, cs := range cspaces {
		for i := 0; i < sc.Clients; i++ {
			eb, err := k.ReadMem(cs, uint32(nlData+i*64+20), 4)
			if err != nil {
				return nil, err
			}
			errs += int(binary.LittleEndian.Uint32(eb))
			payload.Write(eb)
			bb, err := k.ReadMem(cs, uint32(nlBuf+i*bufPages*int(mem.PageSize)), sc.RespWords*4)
			if err != nil {
				return nil, err
			}
			payload.Write(bb)
			sb, err := k.ReadMem(cs, uint32(nlSamp+i*sc.RPCs*4), sc.RPCs*4)
			if err != nil {
				return nil, err
			}
			for j := 0; j < sc.RPCs; j++ {
				lat.Add(float64(binary.LittleEndian.Uint32(sb[j*4:])))
			}
			full.Write(sb)
		}
	}
	st := k.Stats()
	var pd [8]byte
	binary.LittleEndian.PutUint64(pd[:], payload.Sum64())
	full.Write(pd[:])
	fmt.Fprintf(full, "|%d|%+v", k.Now(), st)

	conns := sc.Conns()
	bytes := uint64(conns) * uint64(sc.RespWords) * 4
	elapsed := clock.Micros(k.Now())
	cell := &netloadCell{
		Res: NetloadResult{
			Mode: mode, CPUs: cpus, LockModel: lm,
			Conns: conns, Errors: errs, Bytes: bytes,
			ElapsedUS:     elapsed,
			MBPerVirtualS: float64(bytes) / elapsed,
			P50:           lat.P50(), P95: lat.P95(), P99: lat.P99(),
			MaxUS:          lat.Max(),
			NIC:            sv.Counters(),
			KernelCycles:   st.KernelCycles,
			ZeroCopyShares: st.ZeroCopyShares,
		},
		Lat:           lat,
		PayloadDigest: payload.Sum64(),
		FullDigest:    full.Sum64(),
	}
	return cell, nil
}

// netloadBaseConfig is the default kernel shape for netload cells.
func netloadBaseConfig() core.Config {
	return core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial}
}

// NetloadCell runs a single (mode, CPUs, lock model) cell — the
// benchmark and smoke-test entry point.
func NetloadCell(mode string, cpus int, lm core.LockModel, sc NetloadScale) (NetloadResult, error) {
	cell, err := runNetloadCell(mode, cpus, lm, netloadBaseConfig(), sc, false)
	if err != nil {
		return NetloadResult{}, err
	}
	return cell.Res, nil
}

// Netload runs the full experiment: the four modes at one CPU under the
// big lock, then the tuned mode across cpusList x models.
func Netload(sc NetloadScale, cpusList []int, models []core.LockModel) (*NetloadReport, error) {
	if len(cpusList) == 0 {
		cpusList = NetloadCPUs
	}
	if len(models) == 0 {
		models = NetloadLockModels
	}
	rep := &NetloadReport{Scale: sc}
	var naive, tuned float64
	for _, mode := range NetloadModes {
		res, err := NetloadCell(mode, 1, core.LockBig, sc)
		if err != nil {
			return nil, err
		}
		rep.Modes = append(rep.Modes, res)
		switch mode {
		case NetloadNaive:
			naive = res.MBPerVirtualS
		case NetloadTuned:
			tuned = res.MBPerVirtualS
		}
	}
	if naive > 0 {
		rep.Speedup = tuned / naive
	}
	for _, lm := range models {
		for _, n := range cpusList {
			res, err := NetloadCell(NetloadTuned, n, lm, sc)
			if err != nil {
				return nil, err
			}
			rep.Sweep = append(rep.Sweep, res)
		}
	}
	return rep, nil
}

// NetloadRender formats the report: the mode 2x2 first, then the sweep.
func NetloadRender(rep *NetloadReport) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Netload: %d conns, %d KiB responses (modes at 1 CPU/big lock; then tuned sweep)",
			rep.Scale.Conns(), rep.Scale.RespWords*4/1024),
		"mode", "CPUs", "lock model", "MB/virtual-s", "p50 µs", "p95 µs", "p99 µs",
		"irqs", "coalesced", "stalls", "unshares", "zc shares", "errors")
	row := func(r NetloadResult) {
		t.Row(r.Mode, r.CPUs, r.LockModel.String(), r.MBPerVirtualS,
			r.P50, r.P95, r.P99,
			r.NIC.IRQs, r.NIC.Coalesced, r.NIC.RingFullStalls, r.NIC.Unshares,
			r.ZeroCopyShares, r.Errors)
	}
	for _, r := range rep.Modes {
		row(r)
	}
	t.Row("speedup (tuned/naive)", fmt.Sprintf("%.2fx", rep.Speedup),
		"", "", "", "", "", "", "", "", "", "", "")
	for _, r := range rep.Sweep {
		row(r)
	}
	return t
}
