package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestCalibrationDump(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	sc := FastTable5Scale().Flukeperf
	for _, cfg := range []core.Config{
		{Model: core.ModelProcess},
		{Model: core.ModelInterrupt},
	} {
		k := core.New(cfg)
		w, err := workload.NewFlukeperf(k, sc)
		if err != nil {
			t.Fatal(err)
		}
		cyc, err := w.Run(1 << 40)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-12s total=%d user=%d kernel=%d sys=%d switches=%d restarts=%d\n",
			cfg.Name(), cyc, k.Stats().UserCycles, k.Stats().KernelCycles,
			k.Stats().Syscalls, k.Stats().ContextSwitches, k.Stats().Restarts)
	}
}
