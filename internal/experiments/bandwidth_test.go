package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestBandwidthZeroCopySpeedup pins the PR's headline number: at 64 KiB
// the zero-copy kernel must deliver at least 4× the copying kernel's
// simulated bandwidth, while below ZeroCopyMinPages (4 KiB = 1 page) the
// zero-copy kernel must fall back to the word loop and match the copying
// kernel's number.
func TestBandwidthZeroCopySpeedup(t *testing.T) {
	cell := func(size uint32, mode string) BandwidthResult {
		r, err := BandwidthCell(size, mode, 1, core.LockBig)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	zc := cell(64<<10, "zerocopy")
	cp := cell(64<<10, "copy")
	if zc.Shares == 0 {
		t.Fatal("64 KiB zero-copy run shared no pages")
	}
	if cp.Shares != 0 {
		t.Fatalf("copying run shared %d pages", cp.Shares)
	}
	if zc.MBps < 4*cp.MBps {
		t.Fatalf("64 KiB zero-copy bandwidth %.1f MB/s < 4x copy %.1f MB/s", zc.MBps, cp.MBps)
	}

	// The copying kernel's number is the PR 4 baseline; the direct-handoff
	// fast path does not move bulk-transfer bandwidth, so all three copying
	// regimes must agree closely.
	fo := cell(64<<10, "fastpath-off")
	if ratio := cp.MBps / fo.MBps; ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("copy %.1f vs fastpath-off %.1f MB/s: copy path moved", cp.MBps, fo.MBps)
	}

	zc4 := cell(4<<10, "zerocopy")
	cp4 := cell(4<<10, "copy")
	if zc4.Shares != 0 {
		t.Fatalf("4 KiB (single page) run shared %d pages despite ZeroCopyMinPages", zc4.Shares)
	}
	if ratio := zc4.MBps / cp4.MBps; ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("4 KiB zero-copy %.1f vs copy %.1f MB/s: sub-threshold transfers should match", zc4.MBps, cp4.MBps)
	}
}
