// Package experiments regenerates every table and figure of the paper's
// evaluation: the syscall inventory (Table 1), the object types (Table 2),
// IPC restart costs (Table 3), the configuration matrix (Table 4),
// application performance across kernel configurations (Table 5),
// preemption latency (Table 6), per-thread memory overhead (Table 7), the
// API/execution-model continuum (Figure 1), and the §5.5 null-syscall
// architectural-bias microbenchmark.
//
// Each experiment builds fresh kernels, so results are deterministic and
// independent. cmd/flukebench prints them; bench_test.go wraps them in
// testing.B benchmarks; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/sys"
)

// Table1 regenerates the syscall inventory: 8 trivial / 68 short / 8 long
// / 23 multi-stage = 107.
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: Breakdown of the number and types of system calls in the Fluke API",
		"Type", "Examples", "Count", "Percent")
	counts := sys.CountByCategory()
	total := 0
	for _, n := range counts {
		total += n
	}
	examples := map[sys.Category]string{
		sys.Trivial:    "thread_self",
		sys.Short:      "mutex_trylock",
		sys.Long:       "mutex_lock",
		sys.MultiStage: "cond_wait, IPC",
	}
	for _, cat := range []sys.Category{sys.Trivial, sys.Short, sys.Long, sys.MultiStage} {
		n := counts[cat]
		t.Row(cat.String(), examples[cat], n, fmt.Sprintf("%d%%", (n*100+total/2)/total))
	}
	t.Row("Total", "", total, "100%")
	return t
}

// Table1Counts exposes the raw category counts for tests.
func Table1Counts() map[sys.Category]int { return sys.CountByCategory() }

// Table2 regenerates the primitive-object-type table.
func Table2() *stats.Table {
	t := stats.NewTable("Table 2: The primitive object types exported by the Fluke kernel",
		"Object", "Description")
	for ot := sys.ObjType(0); ot < sys.NumObjTypes; ot++ {
		name := strings.ToUpper(ot.String()[:1]) + ot.String()[1:]
		t.Row(name, sys.ObjTypeDescriptions[ot])
	}
	return t
}

// Table4 regenerates the kernel-configuration matrix.
func Table4() *stats.Table {
	t := stats.NewTable("Table 4: Kernel configurations", "Configuration", "Description")
	t.Row("Process NP", "Process model, no kernel preemption; no kernel locking.")
	t.Row("Process PP", "Process model, explicit preemption point on the IPC copy path every 8k.")
	t.Row("Process FP", "Process model, full kernel preemption; blocking kernel locks.")
	t.Row("Interrupt NP", "Interrupt model, no kernel preemption.")
	t.Row("Interrupt PP", "Interrupt model, same IPC preemption point as Process PP.")
	return t
}

// Figure1 renders the kernel execution-model / API-model continuum of
// Figure 1 as text.
func Figure1() string {
	return strings.TrimLeft(`
Figure 1: The kernel execution and API model continuums.

                    Execution Model
               Interrupt         Process
             +-----------------+-----------------+
  Atomic     |  Fluke          |  Fluke          |
  API        |  (interrupt-    |  (process-      |
             |   model)        |   model)        |
             |                 |  ITS            |
             +-----------------+-----------------+
  Conven-    |  V (original)   |  V (Carter)     |
  tional     |  Mach (Draves)  |  Mach (original)|
  API        |  QNX, exokernel |  BSD, Linux, NT |
             +-----------------+-----------------+

Fluke supports either execution model via compile-time options; this
reproduction selects it with core.Config.Model.
`, "\n")
}
