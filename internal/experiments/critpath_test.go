package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// TestCritPathNullRPCFullCoverage is the tentpole acceptance check for
// the analyzer: the hop decomposition of a null-RPC run accounts for
// exactly 100% of the summed span intervals — no cycle of any request's
// begin→end window is lost or double-counted — and the chain shapes match
// the fast-path regime (direct handoffs on, run-queue wakes off).
func TestCritPathNullRPCFullCoverage(t *testing.T) {
	const count = 40
	for _, disable := range []bool{false, true} {
		r, err := CritPathNullRPC(count, disable)
		if err != nil {
			t.Fatal(err)
		}
		if r.Spans < count {
			t.Fatalf("disable=%v: %d complete spans, want >= %d (one per RPC)", disable, r.Spans, count)
		}
		var hopCycles uint64
		for _, h := range r.Hops {
			hopCycles += h.Cycles
		}
		if hopCycles != r.SpanCycles {
			t.Fatalf("disable=%v: hops cover %d of %d span cycles", disable, hopCycles, r.SpanCycles)
		}
		if got := r.CoveragePct(); got != 100 {
			t.Fatalf("disable=%v: coverage %.4f%%, want exactly 100%%", disable, got)
		}
		if !r.HasLongest {
			t.Fatalf("disable=%v: no longest chain", disable)
		}
		points := map[string]bool{}
		for _, h := range r.Hops {
			points[h.Point] = true
		}
		if !points["end"] || !points["wake"] || !points["copy"] {
			t.Fatalf("disable=%v: hop set %v missing end/wake/copy", disable, points)
		}
		if !disable && !points["handoff"] {
			t.Fatalf("fastpath on: hop set %v has no direct handoffs", points)
		}
		if disable && points["handoff"] {
			t.Fatalf("fastpath off: hop set %v contains handoffs", points)
		}
		out := CritPathRender(r)
		if !strings.Contains(out, "accounted: 100.0%") {
			t.Fatalf("render missing full-coverage line:\n%s", out)
		}
		if !strings.Contains(out, "longest chain: span") {
			t.Fatalf("render missing longest chain:\n%s", out)
		}
	}
}

// TestCritPathBulkTransfers: the bulk one-way stream decomposes too, and
// every transfer's span completes.
func TestCritPathBulkTransfers(t *testing.T) {
	const transfers = 6
	r, err := CritPathBulk(4, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if r.Spans < transfers {
		t.Fatalf("%d complete spans, want >= %d", r.Spans, transfers)
	}
	if got := r.CoveragePct(); got != 100 {
		t.Fatalf("coverage %.4f%%, want exactly 100%%", got)
	}
	var hopCycles uint64
	for _, h := range r.Hops {
		hopCycles += h.Cycles
	}
	if hopCycles != r.SpanCycles {
		t.Fatalf("hops cover %d of %d span cycles", hopCycles, r.SpanCycles)
	}
}

// TestProfilerSmokeNullRPC is the CI profiler smoke assertion: run the
// null RPC with the profiler on, export the pprof protobuf, decode it,
// and check the top entry (most attributed cycles, aggregated by the
// stack's root syscall frame) is an IPC path.
func TestProfilerSmokeNullRPC(t *testing.T) {
	cfg := core.Config{Model: core.ModelProcess, EnableProfiler: true}
	k, _, err := nullRPCKernel(cfg, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := k.ProfileSnapshot()
	var buf bytes.Buffer
	if err := snap.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := profile.DecodePprof(buf.Bytes())
	if err != nil {
		t.Fatalf("exported pprof does not parse: %v", err)
	}
	var total uint64
	bySys := map[string]uint64{}
	for _, d := range dec {
		total += uint64(d.Cycles)
		root := d.Stack[len(d.Stack)-1]
		bySys[root] += uint64(d.Cycles)
	}
	if total != snap.TotalCycles() {
		t.Fatalf("decoded total %d != snapshot total %d", total, snap.TotalCycles())
	}
	top, topCycles := "", uint64(0)
	for root, cyc := range bySys {
		if root == "-" { // user batches and idle sit outside any syscall
			continue
		}
		if cyc > topCycles {
			top, topCycles = root, cyc
		}
	}
	if !strings.HasPrefix(top, "ipc_") {
		t.Fatalf("top syscall by attributed cycles is %q (%d cycles), want an ipc_* path; per-syscall: %v",
			top, topCycles, bySys)
	}
}
