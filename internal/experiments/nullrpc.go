package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/sys"
)

// The null-RPC microbenchmark behind the IPC fast path: a client connects,
// sends a one-word request, turns the connection around, and receives a
// one-word reply from an echo server — the rendezvous round trip that
// dominates Tables 5 and 6. With the fast path on, both directions of the
// round trip should complete as direct handoffs (register-carried payload,
// no run-queue pass, CycDirectSwitch instead of a full context switch), so
// kernel cycles per call drop sharply; with Config.DisableIPCFastPath they
// reproduce the slow-path cost exactly.

// NullRPCResult is the measured per-call cost for one regime.
type NullRPCResult struct {
	Fastpath     bool
	KernelCycles float64 // kernel cycles per RPC round trip
	TotalCycles  float64 // total (user+kernel) cycles per iteration
	Hits         uint64  // direct handoffs taken
}

// nullRPCKernel builds the null-RPC workload on cfg (client + echo server
// in one space, as in Tables 5/6's rendezvous round trip), runs count
// round trips, and returns the kernel plus the elapsed virtual cycles —
// the shared substrate of NullRPC, the critical-path decomposition, and
// the profiler smoke test. prep, when non-nil, runs on the fresh kernel
// before any thread starts (attach a trace ring, enable the profiler...).
func nullRPCKernel(cfg core.Config, count int, prep func(*core.Kernel)) (*core.Kernel, uint64, error) {
	k := core.New(cfg)
	if prep != nil {
		prep(k)
	}
	s := k.NewSpace()
	if err := bindNullRPC(k, s); err != nil {
		return nil, 0, err
	}

	const (
		sbuf = scData + 0x100
		rbuf = scData + 0x140
		ebuf = scData + 0x180
		erep = scData + 0x1C0
	)
	b := prog.New(scCode)
	b.Label("cli").
		Movi(4, sbuf).Movi(5, 0x7e57).St(4, 0, 5).
		Movi(6, 0).Label("cli.loop").
		IPCClientConnectSendOverReceive(sbuf, 1, scRef, rbuf, 1).
		IPCClientDisconnect().
		Addi(6, 6, 1).Movi(5, uint32(count)).Blt(6, 5, "cli.loop").
		Halt()
	// Echo server; the two-word receive for a one-word request makes
	// the receive complete on the client's message-end, and the reply
	// is staged separately so a retried reply is idempotent.
	b.Label("echo").
		IPCWaitReceive(ebuf, 2, scPset).
		Label("echo.loop").
		Movi(4, ebuf).Ld(5, 4, 0).
		Movi(4, erep).St(4, 0, 5).
		IPCReplyWaitReceive(erep, 1, scPset, ebuf, 2).
		Jmp("echo.loop")
	img, err := b.Assemble()
	if err != nil {
		return nil, 0, err
	}
	if _, err := k.LoadImage(s, scCode, img); err != nil {
		return nil, 0, err
	}
	srv := k.NewThread(s, 9)
	srv.Regs.PC = b.Addr("echo")
	k.StartThread(srv)
	cli := k.NewThread(s, 8)
	cli.Regs.PC = b.Addr("cli")
	k.StartThread(cli)

	start := k.Clock.Now()
	k.RunUntil(func() bool { return cli.Exited })
	if !cli.Exited {
		return nil, 0, fmt.Errorf("nullrpc: client stuck at pc=%#x", cli.Regs.PC)
	}
	return k, k.Clock.Now() - start, nil
}

// NullRPC measures count null RPCs in the process model with the IPC fast
// path on and off and returns both plus the relative kernel-cycle drop.
func NullRPC(count int) (on, off NullRPCResult, dropPct float64, err error) {
	run := func(disable bool) (NullRPCResult, error) {
		cfg := core.Config{Model: core.ModelProcess, DisableIPCFastPath: disable}
		k, elapsed, err := nullRPCKernel(cfg, count, nil)
		if err != nil {
			return NullRPCResult{}, err
		}
		st := k.Stats()
		return NullRPCResult{
			Fastpath:     !disable,
			KernelCycles: float64(st.KernelCycles) / float64(count),
			TotalCycles:  float64(elapsed) / float64(count),
			Hits:         st.FastpathHits,
		}, nil
	}
	if on, err = run(false); err != nil {
		return
	}
	if off, err = run(true); err != nil {
		return
	}
	dropPct = 100 * (off.KernelCycles - on.KernelCycles) / off.KernelCycles
	return
}

// bindNullRPC sets up the port/portset/ref triple and the data window in s
// using the scaling experiment's layout.
func bindNullRPC(k *core.Kernel, s *obj.Space) error {
	r, err := k.NewBoundRegion(s, core.KObjBase+0x900, scDataSz, true)
	if err != nil {
		return err
	}
	if _, err := k.MapInto(s, r, scData, 0, scDataSz, mmu.PermRW); err != nil {
		return err
	}
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port := po.(*obj.Port)
	ps := pso.(*obj.Portset)
	if err := k.Bind(s, scPort, port); err != nil {
		return err
	}
	if err := k.Bind(s, scPset, ps); err != nil {
		return err
	}
	ps.AddPort(port)
	ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
	return k.Bind(s, scRef, ref)
}

// NullRPCRender formats the comparison.
func NullRPCRender(on, off NullRPCResult, dropPct float64) *stats.Table {
	t := stats.NewTable("Null-RPC microbenchmark: direct-handoff fast path on vs off (process model)",
		"IPC fastpath", "kernel cycles/call", "total cycles/iter", "direct handoffs")
	t.Row("on", on.KernelCycles, on.TotalCycles, on.Hits)
	t.Row("off", off.KernelCycles, off.TotalCycles, off.Hits)
	t.Row("kernel-cycle drop", fmt.Sprintf("%.1f%%", dropPct), "", "")
	return t
}
