package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestScalingSpeedup pins the multiprocessor story the experiment exists
// to tell: with the work fixed, per-subsystem locking must scale (>= 1.5x
// simulated throughput at 4 CPUs) while the big kernel lock must not
// (every kernel episode serializes on the one lock), and the contention
// counters must show why.
func TestScalingSpeedup(t *testing.T) {
	rows, err := IPCScaling(DefaultScalingScale(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(cpus int, lm core.LockModel) ScalingRow {
		for _, r := range rows {
			if r.CPUs == cpus && r.LockModel == lm {
				return r
			}
		}
		t.Fatalf("missing cell cpus=%d lm=%v", cpus, lm)
		return ScalingRow{}
	}
	big := cell(4, core.LockBig)
	per := cell(4, core.LockPerSubsystem)
	if per.Speedup < 1.5 {
		t.Errorf("per-subsystem speedup at 4 CPUs = %.2f, want >= 1.5", per.Speedup)
	}
	if big.Speedup >= per.Speedup {
		t.Errorf("big-lock speedup %.2f not below per-subsystem %.2f", big.Speedup, per.Speedup)
	}
	// The big lock's failure to scale must be attributable: its contended
	// wait time should dwarf per-subsystem's.
	var bigWait, perWait uint64
	for i := range big.Locks {
		bigWait += big.Locks[i].WaitCycles
		perWait += per.Locks[i].WaitCycles
	}
	if bigWait <= perWait {
		t.Errorf("big-lock wait cycles %d not above per-subsystem %d", bigWait, perWait)
	}
	// Under LockBig only the big lock may move; under LockPerSubsystem the
	// big lock must stay idle.
	for i, ls := range big.Locks {
		if core.LockKindNames[i] != "big" && ls.Contended != 0 {
			t.Errorf("LockBig: lock %s contended %d times", ls.Name, ls.Contended)
		}
	}
	if per.Locks[3].Acquires != 0 {
		t.Errorf("LockPerSubsystem: big lock acquired %d times", per.Locks[3].Acquires)
	}
	// The 1-CPU cells must be lock-model-independent (no contention is
	// possible with one clock) — same frontier, speedup exactly 1.
	b1, p1 := cell(1, core.LockBig), cell(1, core.LockPerSubsystem)
	if b1.Frontier != p1.Frontier {
		t.Errorf("1-CPU frontier differs by lock model: big=%d persub=%d", b1.Frontier, p1.Frontier)
	}
}
