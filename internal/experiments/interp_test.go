package experiments

import "testing"

// TestInterpreterTiers checks the experiment's own invariant (identical
// virtual cycles across all three tiers — InterpreterTiers fails
// internally otherwise) and that each workload engages the machinery it
// was built to stress: fused blocks execute on the straight-line and
// branch-heavy shapes, and the self-modifying shape actually invalidates
// built blocks.
func TestInterpreterTiers(t *testing.T) {
	rows, err := InterpreterTiers(30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Cycles == 0 {
			t.Errorf("%s: zero virtual cycles; workload did not run", r.Workload)
		}
		switch r.Workload {
		case "straight-line", "branch-heavy":
			if r.Exec.BlockHits == 0 {
				t.Errorf("%s: threaded tier executed no fused blocks; test is vacuous", r.Workload)
			}
		case "self-modifying":
			if r.Exec.BlockInvalidations == 0 {
				t.Errorf("self-modifying: no block invalidations; the store is not hitting the code page")
			}
		}
	}
}

// TestInterpreterTierSmoke is the CI performance smoke: on a workload
// big enough to swamp timer noise, the fused-block tier must beat the
// decode-cache tier on host time. The margin is generous (the measured
// gap is ~3-4x; we only require it not to be slower) so the assertion is
// robust on loaded CI runners while still catching a tier that silently
// stopped engaging.
func TestInterpreterTierSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("host-time measurement; skipped in -short")
	}
	best := [2]float64{1e18, 1e18} // decode-cache, threaded
	for trial := 0; trial < 3; trial++ {
		rows, err := InterpreterTiers(400_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload != "straight-line" {
				continue
			}
			if d := float64(r.Host[1]); d < best[0] {
				best[0] = d
			}
			if d := float64(r.Host[2]); d < best[1] {
				best[1] = d
			}
		}
	}
	if best[1] > best[0] {
		t.Fatalf("threaded tier slower than decode-cache tier: %.1fms vs %.1fms",
			best[1]/1e6, best[0]/1e6)
	}
}
