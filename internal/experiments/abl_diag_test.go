package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/workload"
)

func TestAblationDiag(t *testing.T) {
	anomalies := 0
	core.DebugDispatch = func(th *obj.Thread, top int, ok bool) {
		if ok && top > th.Priority {
			anomalies++
			if anomalies < 10 {
				fmt.Printf("ANOMALY: dispatched t%d prio=%d while prio %d queued\n", th.ID, th.Priority, top)
			}
		}
	}
	defer func() { core.DebugDispatch = nil }()
	k := core.New(core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial, PreemptPointBytes: 2048})
	sc := workload.FlukeperfScale{Nulls: 2000, MutexPairs: 2000, PingPong: 200, RPCs: 200, BigTransfers: 0, BigWords: 4096, Searches: 0}
	w, err := workload.NewFlukeperf(k, sc)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.InstallProbe(k, 0, 0)
	if _, err := w.Run(1 << 62); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	fmt.Printf("max=%.1f avg=%.1f runs=%d miss=%d anomalies=%d\n", p.Lat.Max(), p.Lat.Avg(), p.Runs, p.Misses, anomalies)
}
