package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/pager"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/sys"
)

// Table 3: restart costs for the four kernel-internal exception flavours
// during a reliable IPC transfer (ipc_client_connect_send_over_receive),
// "the area of the kernel with the most internal synchronization", on the
// process model without kernel preemption — exactly the paper's setup.
//
// A "client-side" fault hits the client's address space during the copy,
// a "server-side" fault the server's; "soft" faults are remedied from the
// mapping hierarchy in the kernel, "hard" faults require an RPC to the
// user-level memory manager. "Cost to Remedy" is the time to service the
// fault; "Cost to Rollback" is the work thrown away and redone because
// the operation restarts from its rolled-forward registers.

// Table3Row is one measured flavour. Faults comes from the experiment's
// own Stats bookkeeping; MetricRestarts is the same quantity as counted
// by the metrics registry's fault.restarts.* counter for the flavour's
// cause class — the two must agree (pinned by TestTable3MetricsAgree).
type Table3Row struct {
	Cause          string
	RemedyUS       float64
	RollbackUS     float64
	Faults         uint64
	MetricRestarts uint64
}

const (
	t3Code   = 0x0001_0000
	t3Data   = 0x0004_0000 // pre-touched scratch (reply buffers)
	t3Buf    = 0x0010_0000 // 4-page transfer buffer (send or recv)
	t3Pages  = 4
	t3Words  = t3Pages * mem.PageSize / 4
	t3Target = 1 * mem.PageSize // the injected-fault page (byte offset)
)

// runTable3Flavor runs one RPC with a single injected fault and returns
// the measured costs.
func runTable3Flavor(hard, serverSide bool) (Table3Row, error) {
	name := "Client-side"
	side := core.FaultSame
	if serverSide {
		name = "Server-side"
		side = core.FaultCross
	}
	class := mmu.FaultSoft
	if hard {
		name += " hard page fault"
		class = mmu.FaultHard
	} else {
		name += " soft page fault"
	}
	row := Table3Row{Cause: name}

	k := core.New(core.Config{Model: core.ModelProcess, Preempt: core.PreemptNone})
	m := k.EnableMetrics()
	sCli := k.NewSpace()
	sSrv := k.NewSpace()

	// mkBuf installs the 4-page transfer region at t3Buf plus a
	// pre-touched scratch page at t3Data in space s. When target, one
	// page of the transfer buffer is left absent (soft) or pager-backed
	// and absent (hard).
	mkBuf := func(s *obj.Space, target bool) (*obj.Region, error) {
		scratch := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(mem.PageSize, true)}
		k.BindFresh(s, scratch)
		if _, err := k.MapInto(s, scratch, t3Data, 0, mem.PageSize, mmu.PermRW); err != nil {
			return nil, err
		}
		if err := k.WriteMem(s, t3Data, make([]byte, 64)); err != nil {
			return nil, err
		}
		demandZero := !(target && hard)
		reg := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(t3Pages*mem.PageSize, demandZero)}
		k.BindFresh(s, reg)
		if _, err := k.MapInto(s, reg, t3Buf, 0, t3Pages*mem.PageSize, mmu.PermRW); err != nil {
			return nil, err
		}
		// Pre-touch every page except the injected one (all pages when
		// this buffer is not the target).
		for p := uint32(0); p < t3Pages; p++ {
			if target && p*mem.PageSize == t3Target {
				continue
			}
			if demandZero {
				if err := k.WriteMem(s, t3Buf+p*mem.PageSize, []byte{1}); err != nil {
					return nil, err
				}
				continue
			}
			// Pager-backed: populate the frame and install the PTE
			// so no incidental fault occurs.
			f, err := k.Alloc.Alloc()
			if err != nil {
				return nil, err
			}
			reg.R.Populate(p*mem.PageSize, f)
			if err := s.AS.ResolveSoft(t3Buf+p*mem.PageSize, cpu.Write); err != nil {
				return nil, err
			}
		}
		return reg, nil
	}

	sendReg, err := mkBuf(sCli, !serverSide)
	if err != nil {
		return row, err
	}
	recvReg, err := mkBuf(sSrv, serverSide)
	if err != nil {
		return row, err
	}
	if hard {
		target, owner := sendReg, sCli
		if serverSide {
			target, owner = recvReg, sSrv
		}
		if _, err := pager.Install(k, owner, target, pager.DefaultConfig()); err != nil {
			return row, err
		}
	}

	// IPC plumbing.
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port := po.(*obj.Port)
	ps := pso.(*obj.Portset)
	k.BindFresh(sSrv, port)
	psVA := k.BindFresh(sSrv, ps)
	ps.AddPort(port)
	refVA := k.BindFresh(sCli, &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port})

	srv := prog.New(t3Code)
	srv.IPCWaitReceive(t3Buf, t3Words, psVA).
		IPCReply(t3Data+0x20, 4).
		Halt()
	cli := prog.New(t3Code)
	cli.IPCClientConnectSendOverReceive(t3Buf, t3Words, refVA, t3Data+0x20, 4).
		Halt()
	if _, err := k.SpawnProgram(sSrv, t3Code, srv.MustAssemble(), 10); err != nil {
		return row, err
	}
	client, err := k.SpawnProgram(sCli, t3Code, cli.MustAssemble(), 10)
	if err != nil {
		return row, err
	}
	k.RunFor(2_000_000_000)
	if !client.Exited {
		return row, fmt.Errorf("table3 %s: client stuck (state=%v pc=%#x r0=%d)",
			name, client.State, client.Regs.PC, client.Regs.R[0])
	}
	if e := sys.Errno(client.Regs.R[0]); e != sys.EOK {
		return row, fmt.Errorf("table3 %s: RPC errno %v", name, e)
	}
	key := core.FaultKey{Class: class, Side: side}
	n := k.Stats().FaultCount[key]
	if n == 0 {
		return row, fmt.Errorf("table3 %s: no %v/%v fault recorded", name, class, side)
	}
	row.Faults = n
	row.RemedyUS = float64(k.Stats().FaultRemedy[key]) / float64(n) / clock.CyclesPerMicrosecond
	row.RollbackUS = float64(k.Stats().FaultRollback[key]) / float64(n) / clock.CyclesPerMicrosecond
	ci := 0
	if hard {
		ci = 2
	}
	if serverSide {
		ci++
	}
	row.MetricRestarts = m.RestartsByCause()[ci]
	return row, nil
}

// Table3 measures all four flavours.
func Table3() ([]Table3Row, error) {
	flavours := []struct{ hard, server bool }{
		{false, false}, // client soft
		{true, false},  // client hard
		{false, true},  // server soft
		{true, true},   // server hard
	}
	var rows []Table3Row
	for _, f := range flavours {
		r, err := runTable3Flavor(f.hard, f.server)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	// Paper ordering: client soft, client hard, server soft, server hard.
	return rows, nil
}

// Table3Render formats the rows like the paper.
func Table3Render(rows []Table3Row) *stats.Table {
	t := stats.NewTable("Table 3: Restart costs (µs) for kernel-internal exceptions during a reliable IPC transfer (Process NP)",
		"Actual Cause of Exception", "Cost to Remedy", "Cost to Rollback")
	for _, r := range rows {
		rb := stats.FormatFloat(r.RollbackUS)
		if r.RollbackUS < 0.05 {
			rb = "none"
		}
		t.Row(r.Cause, r.RemedyUS, rb)
	}
	return t
}

// Table3MetricsAppendix cross-checks the experiment's fault bookkeeping
// against the kernel metrics registry: the fault.restarts.* counter for
// each cause class must report exactly the faults the experiment saw.
func Table3MetricsAppendix(rows []Table3Row) *stats.Table {
	t := stats.NewTable("Table 3 appendix: restart counters from the metrics registry",
		"Actual Cause of Exception", "Faults (experiment)", "fault.restarts.* (metrics)", "Agree")
	for _, r := range rows {
		agree := "yes"
		if r.Faults != r.MetricRestarts {
			agree = "NO"
		}
		t.Row(r.Cause, r.Faults, r.MetricRestarts, agree)
	}
	return t
}
