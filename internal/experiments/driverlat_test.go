package experiments

import (
	"testing"

	"repro/internal/workload"
)

// TestDriverLatencyShape pins the §5.2 claim the extension experiment
// exists for: with drivers as threads, preemption latency becomes
// interrupt-handling latency. FP keeps service time near the raw device
// latency; NP adds its multi-millisecond kernel bursts on top.
func TestDriverLatencyShape(t *testing.T) {
	sc := workload.FlukeperfScale{
		Nulls: 5_000, MutexPairs: 5_000, PingPong: 1_000, RPCs: 1_000,
		BigTransfers: 2, BigWords: 1 << 20 / 4, Searches: 2,
	}
	rows, err := DriverLatency(sc, 30)
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]DriverLatRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	fp := byCfg["Process FP"]
	// FP: device latency (200 µs) plus small bounded kernel delays.
	if fp.MaxUS > 500 {
		t.Errorf("FP max service %.0f µs, want near the 200 µs device latency", fp.MaxUS)
	}
	for _, np := range []string{"Process NP", "Interrupt NP"} {
		if byCfg[np].MaxUS < 3*fp.MaxUS {
			t.Errorf("%s max %.0f µs not >> FP %.0f µs", np, byCfg[np].MaxUS, fp.MaxUS)
		}
	}
	for _, r := range rows {
		if r.AvgUS < 200 {
			t.Errorf("%s avg %.0f µs below the raw device latency", r.Config, r.AvgUS)
		}
	}
}
