package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/prog"
	"repro/internal/stats"
)

// The pre-copy migration sweep: how far incremental checkpointing pulls
// migration downtime below stop-and-copy, as a function of resident set
// size, write rate (hot pages rewritten per scheduling period), and the
// pre-copy round budget. The mechanism under test is the dirty-page
// tracker (internal/mmu) feeding delta snapshots (internal/checkpoint):
// stop-and-copy downtime is O(resident memory); pre-copy downtime is
// O(pages dirtied during one transfer window) — the writable working
// set — plus thread state.

// MigrateResult is one (working set, write rate, rounds) cell.
type MigrateResult struct {
	WorkingSet uint32 // resident bytes
	HotPages   int    // pages rewritten per 20 µs period (write rate)
	Rounds     int    // pre-copy round budget

	BaselineFrames int     // frames shipped by the warm baseline (≈ resident set)
	ResidualFrames int     // frames shipped during downtime
	DowntimeCycles uint64  // pre-copy stop-to-resume
	StopCopyCycles uint64  // modeled stop-and-copy downtime of the same space
	Ratio          float64 // DowntimeCycles / StopCopyCycles
	TotalCycles    uint64  // whole migration, warm rounds included
}

const migWSBase = 0x0100_0000

// MigrateCell migrates one writer space and reports the accounting.
func MigrateCell(ws uint32, hot, rounds int) (MigrateResult, error) {
	cfg := core.Config{Model: core.ModelProcess}
	k1 := core.New(cfg)
	s := k1.NewSpace()
	reg, err := k1.NewBoundRegion(s, core.KObjBase+0x910, ws, true)
	if err != nil {
		return MigrateResult{}, err
	}
	if _, err := k1.MapInto(s, reg, migWSBase, 0, ws, mmu.PermRW); err != nil {
		return MigrateResult{}, err
	}
	// Touch every page: the space's residency is the full working set.
	if err := k1.WriteMem(s, migWSBase, make([]byte, ws)); err != nil {
		return MigrateResult{}, err
	}

	// The writer: each 20 µs period rewrites the first hot pages.
	b := prog.New(scCode)
	b.Label("w").Movi(6, 1).Label("w.loop")
	for p := 0; p < hot; p++ {
		b.Movi(4, migWSBase+uint32(p)*mem.PageSize).St(4, 0, 6)
	}
	b.ThreadSleepUS(20).Addi(6, 6, 1).Jmp("w.loop")
	img, err := b.Assemble()
	if err != nil {
		return MigrateResult{}, err
	}
	if _, err := k1.LoadImage(s, scCode, img); err != nil {
		return MigrateResult{}, err
	}
	th := k1.NewThread(s, 10)
	th.Regs.PC = b.Addr("w")
	k1.StartThread(th)
	k1.RunFor(100 * clock.CyclesPerMicrosecond)

	k2 := core.New(cfg)
	opt := checkpoint.MigrateOptions{Rounds: rounds}
	_, threads, rep, err := checkpoint.MigratePrecopy(k1, s, k2, opt)
	if err != nil {
		return MigrateResult{}, err
	}
	// The migrated writer must still be running over there.
	k2.RunFor(100 * clock.CyclesPerMicrosecond)
	for _, t := range threads {
		if t.Exited {
			return MigrateResult{}, fmt.Errorf("migrate %d/%d/%d: writer died on the destination", ws, hot, rounds)
		}
	}

	sc := rep.StopAndCopyDowntime(opt)
	res := rep.Rounds[len(rep.Rounds)-1]
	return MigrateResult{
		WorkingSet: ws, HotPages: hot, Rounds: rounds,
		BaselineFrames: rep.Rounds[0].Frames,
		ResidualFrames: res.Frames,
		DowntimeCycles: rep.DowntimeCycles,
		StopCopyCycles: sc,
		Ratio:          float64(rep.DowntimeCycles) / float64(sc),
		TotalCycles:    rep.TotalCycles,
	}, nil
}

// Migrate runs the sweep. fast trims it to the CI smoke shape.
func Migrate(fast bool) ([]MigrateResult, error) {
	wss := []uint32{1 << 20, 4 << 20}
	hots := []int{4, 32, 128}
	roundsSet := []int{1, 3, 5}
	if fast {
		wss = []uint32{1 << 20}
		hots = []int{4, 32}
		roundsSet = []int{3}
	}
	var out []MigrateResult
	for _, ws := range wss {
		for _, hot := range hots {
			for _, rounds := range roundsSet {
				r, err := MigrateCell(ws, hot, rounds)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// MigrateRender formats the sweep.
func MigrateRender(rows []MigrateResult) *stats.Table {
	t := stats.NewTable("Pre-copy live migration: downtime vs stop-and-copy (simulated cycles)",
		"resident", "hot/20µs", "rounds", "baseline", "residual", "downtime", "stop&copy", "ratio", "total")
	for _, r := range rows {
		t.Row(fmtBytes(r.WorkingSet), r.HotPages, r.Rounds,
			r.BaselineFrames, r.ResidualFrames,
			r.DowntimeCycles, r.StopCopyCycles,
			fmt.Sprintf("%.3f", r.Ratio), r.TotalCycles)
	}
	return t
}
