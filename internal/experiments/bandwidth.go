package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/prog"
	"repro/internal/stats"
)

// The bulk-transfer bandwidth sweep behind the zero-copy path: a client
// repeatedly sends a page-aligned message to a sink server and the
// simulated bandwidth (payload bytes over virtual time) is recorded for
// three kernels — the full one (zero-copy frame sharing plus the IPC fast
// path), the copying kernel (Config.DisableZeroCopy), and the PR 3-era
// baseline with the direct-handoff fast path off as well. Above
// ZeroCopyMinPages the zero-copy kernel moves each page for CycPageShare
// instead of PageWords·CycCopyWord, so bandwidth at 64 KiB should improve
// by well over 4× while the copying kernels' numbers stay put.

// BandwidthModes are the three kernels the sweep compares.
var BandwidthModes = []string{"zerocopy", "copy", "fastpath-off"}

// BandwidthResult is one (message size, kernel mode, CPU/lock shape)
// measurement.
type BandwidthResult struct {
	Bytes     uint32 // message size
	Mode      string // one of BandwidthModes
	NumCPUs   int
	LockModel string
	MBps      float64 // simulated MB/s (payload bytes / virtual time)
	Speedup   float64 // vs the "copy" mode of the same shape (1.0 for copy)
	Shares    uint64  // pages moved by frame sharing
	Fallbacks uint64
}

// bandwidthIters is how many times each message is sent; the first send
// soft-faults the demand-zero buffers into existence (a few thousand
// cycles per page, identical in every mode), the rest measure the steady
// state, so the iteration count has to be high enough to amortize that
// one-time cost below the per-transfer signal.
const bandwidthIters = 32

// bwSizes is the sweep: 4 KiB (below ZeroCopyMinPages, so the zero-copy
// kernel falls back to the word loop) up to 1 MiB.
var bwSizes = []uint32{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

const (
	bwSBase = 0x0100_0000 // client send window
	bwRBase = 0x0200_0000 // sink receive window
)

// BandwidthCell measures one cell of the sweep.
func BandwidthCell(size uint32, mode string, ncpu int, lm core.LockModel) (BandwidthResult, error) {
	cfg := core.Config{Model: core.ModelProcess, NumCPUs: ncpu, LockModel: lm}
	switch mode {
	case "zerocopy":
	case "copy":
		cfg.DisableZeroCopy = true
	case "fastpath-off":
		cfg.DisableZeroCopy = true
		cfg.DisableIPCFastPath = true
	default:
		return BandwidthResult{}, fmt.Errorf("bandwidth: unknown mode %q", mode)
	}
	k := core.New(cfg)
	s := k.NewSpace()
	if err := bindNullRPC(k, s); err != nil {
		return BandwidthResult{}, err
	}
	words := size / 4
	sreg, err := k.NewBoundRegion(s, core.KObjBase+0x910, size, true)
	if err != nil {
		return BandwidthResult{}, err
	}
	if _, err := k.MapInto(s, sreg, bwSBase, 0, size, mmu.PermRW); err != nil {
		return BandwidthResult{}, err
	}
	rreg, err := k.NewBoundRegion(s, core.KObjBase+0x914, size+mem.PageSize, true)
	if err != nil {
		return BandwidthResult{}, err
	}
	if _, err := k.MapInto(s, rreg, bwRBase, 0, size+mem.PageSize, mmu.PermRW); err != nil {
		return BandwidthResult{}, err
	}

	// One-way stream, the shape of flukeperf's big transfers: each send
	// rendezvouses with a buffer-full receive of exactly the same count,
	// so completion of the send means the data arrived — no reply leg.
	b := prog.New(scCode)
	b.Label("cli").
		Movi(6, 0).Label("cli.loop").
		IPCClientConnectSend(bwSBase, words, scRef).
		IPCClientDisconnect().
		Addi(6, 6, 1).Movi(5, bandwidthIters).Blt(6, 5, "cli.loop").
		Halt()
	b.Label("sink.loop").
		IPCWaitReceive(bwRBase, words, scPset).
		Jmp("sink.loop")
	img, err := b.Assemble()
	if err != nil {
		return BandwidthResult{}, err
	}
	if _, err := k.LoadImage(s, scCode, img); err != nil {
		return BandwidthResult{}, err
	}
	srv := k.NewThread(s, 9)
	srv.Regs.PC = b.Addr("sink.loop")
	k.StartThread(srv)
	cli := k.NewThread(s, 8)
	cli.Regs.PC = b.Addr("cli")
	k.StartThread(cli)

	start := k.Now()
	k.RunUntil(func() bool { return cli.Exited })
	if !cli.Exited {
		return BandwidthResult{}, fmt.Errorf("bandwidth %d/%s: client stuck at pc=%#x", size, mode, cli.Regs.PC)
	}
	cycles := k.Now() - start
	st := k.Stats()
	total := float64(size) * bandwidthIters
	return BandwidthResult{
		Bytes: size, Mode: mode, NumCPUs: ncpu, LockModel: lm.String(),
		MBps:      total / (float64(cycles) / clock.CyclesPerMicrosecond),
		Shares:    st.ZeroCopyShares,
		Fallbacks: st.ZeroCopyFallbacks,
	}, nil
}

// Bandwidth runs the full sweep: every message size × kernel mode ×
// NumCPUs {1, 2, 4} × both lock models, with Speedup filled in against
// the copying kernel of the same shape.
func Bandwidth() ([]BandwidthResult, error) {
	var out []BandwidthResult
	for _, size := range bwSizes {
		for _, ncpu := range []int{1, 2, 4} {
			for _, lm := range []core.LockModel{core.LockBig, core.LockPerSubsystem} {
				copyIdx := -1
				for _, mode := range BandwidthModes {
					r, err := BandwidthCell(size, mode, ncpu, lm)
					if err != nil {
						return nil, err
					}
					out = append(out, r)
					if mode == "copy" {
						copyIdx = len(out) - 1
					}
				}
				base := out[copyIdx].MBps
				for i := len(out) - len(BandwidthModes); i < len(out); i++ {
					out[i].Speedup = out[i].MBps / base
				}
			}
		}
	}
	return out, nil
}

// BandwidthRender formats the sweep, one row per (size, shape).
func BandwidthRender(rows []BandwidthResult) *stats.Table {
	t := stats.NewTable("Bulk IPC bandwidth: zero-copy frame sharing vs the copying kernels (simulated MB/s)",
		"message", "cpus", "locks", "zerocopy", "copy", "fastpath-off", "speedup", "shares")
	byKey := map[string]map[string]BandwidthResult{}
	var order []string
	for _, r := range rows {
		key := fmt.Sprintf("%s|%d|%s", fmtBytes(r.Bytes), r.NumCPUs, r.LockModel)
		if byKey[key] == nil {
			byKey[key] = map[string]BandwidthResult{}
			order = append(order, key)
		}
		byKey[key][r.Mode] = r
	}
	for _, key := range order {
		m := byKey[key]
		zc, cp, fo := m["zerocopy"], m["copy"], m["fastpath-off"]
		t.Row(fmtBytes(zc.Bytes), zc.NumCPUs, zc.LockModel,
			fmt.Sprintf("%.1f", zc.MBps), fmt.Sprintf("%.1f", cp.MBps), fmt.Sprintf("%.1f", fo.MBps),
			fmt.Sprintf("%.2fx", zc.Speedup), zc.Shares)
	}
	return t
}

func fmtBytes(b uint32) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%d MiB", b>>20)
	}
	return fmt.Sprintf("%d KiB", b>>10)
}
