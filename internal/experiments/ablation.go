package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/sys"
	"repro/internal/workload"
)

// Ablations on the two preemption design parameters the paper's Table 6
// turns on:
//
//   - how often the IPC copy path takes its explicit preemption point
//     (the paper chose 8 KB and notes "a few well-placed preemption
//     points can greatly reduce preemption latency" — but each check
//     costs a little copy throughput);
//   - how fine-grained the fully-preemptible kernel's preemption checks
//     are (finer = lower latency, more checking overhead; the paper's
//     "certain core component ... must still remain non-preemptible"
//     sets the floor).

// AblationRow is one parameter setting's latency/throughput measurement.
type AblationRow struct {
	Param     string
	Value     string
	AvgUS     float64
	MaxUS     float64
	VirtualMS float64
}

// ablationScale is a copy-heavy flukeperf slice so the parameter under
// study dominates.
func ablationScale() workload.FlukeperfScale {
	return workload.FlukeperfScale{
		Nulls: 2_000, MutexPairs: 2_000, PingPong: 200, RPCs: 200,
		BigTransfers: 2, BigWords: 1 << 20 / 4, Searches: 0,
	}
}

func runAblation(cfg core.Config) (AblationRow, error) {
	// Both sweeps vary copy-path preemption parameters, so they must run
	// the copying kernel: zero-copy sharing would move the big transfers
	// in a handful of page shares and erase the spacing effect under test.
	cfg.DisableZeroCopy = true
	k := core.New(cfg)
	w, err := workload.NewFlukeperf(k, ablationScale())
	if err != nil {
		return AblationRow{}, err
	}
	p := workload.InstallProbe(k, 0, 0)
	cycles, err := w.Run(1 << 62)
	if err != nil {
		return AblationRow{}, err
	}
	p.Stop()
	return AblationRow{
		AvgUS:     p.Lat.Avg(),
		MaxUS:     p.Lat.Max(),
		VirtualMS: float64(cycles) / 200_000,
	}, nil
}

// AblatePreemptPointSpacing sweeps the PP copy-path preemption-point
// spacing (Interrupt PP, the configuration whose latency it bounds).
func AblatePreemptPointSpacing(spacings []uint32) ([]AblationRow, error) {
	var rows []AblationRow
	for _, sp := range spacings {
		r, err := runAblation(core.Config{
			Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
			PreemptPointBytes: sp,
		})
		if err != nil {
			return nil, err
		}
		r.Param = "preempt-point spacing"
		r.Value = fmt.Sprintf("%d KB", sp/1024)
		rows = append(rows, r)
	}
	return rows, nil
}

// AblateFPGranularity sweeps the fully-preemptible kernel's
// preemption-check granularity (Process FP).
func AblateFPGranularity(chunks []uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, ch := range chunks {
		r, err := runAblation(core.Config{
			Model: core.ModelProcess, Preempt: core.PreemptFull,
			FPChunkCycles: ch,
		})
		if err != nil {
			return nil, err
		}
		r.Param = "FP check granularity"
		r.Value = fmt.Sprintf("%d cyc (%.0f µs)", ch, float64(ch)/200)
		rows = append(rows, r)
	}
	return rows, nil
}

// DefaultAblation runs both sweeps at standard points (the paper's
// choices marked by being in the middle of each sweep).
func DefaultAblation() ([]AblationRow, error) {
	pp, err := AblatePreemptPointSpacing([]uint32{2048, 8192, 65536, 1 << 20})
	if err != nil {
		return nil, err
	}
	fp, err := AblateFPGranularity([]uint64{200, 2000, 20000, 200000})
	if err != nil {
		return nil, err
	}
	return append(pp, fp...), nil
}

// ContRecRow is one continuation-recognition measurement.
type ContRecRow struct {
	Setting    string
	VirtualMS  float64
	Syscalls   uint64
	Switches   uint64
	Recognized uint64
}

// ContinuationRecognition measures the §2.2 optimization the explicit
// continuations enable: completing a blocked mutex_lock by mutating the
// waiter's register state. The workload is two threads hammering one
// mutex while holding it across a reschedule, so the unlock path always
// finds a blocked waiter whose continuation it can recognize. Interrupt
// model, optimization off vs on.
func ContinuationRecognition() ([]ContRecRow, error) {
	const (
		crCode   = 0x0001_0000
		crData   = 0x0004_0000
		crMtx    = crData + 0x10
		crCtr    = crData + 0x100
		crRounds = 5_000
	)
	build := func(k *core.Kernel) ([]*obj.Thread, error) {
		s := k.NewSpace()
		data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(mem.PageSize, true)}
		k.BindFresh(s, data)
		if _, err := k.MapInto(s, data, crData, 0, mem.PageSize, mmu.PermRW); err != nil {
			return nil, err
		}
		mo, _ := obj.New(sys.ObjMutex)
		if err := k.Bind(s, crMtx, mo); err != nil {
			return nil, err
		}
		b := prog.New(crCode)
		worker := func(entry string) {
			b.Label(entry).Movi(6, 0).
				Label(entry+".loop").
				MutexLock(crMtx).
				SchedYield(). // hold across a reschedule: real contention
				Movi(4, crCtr).Ld(5, 4, 0).Addi(5, 5, 1).St(4, 0, 5).
				MutexUnlock(crMtx).
				Addi(6, 6, 1).Movi(5, crRounds).Blt(6, 5, entry+".loop").
				Halt()
		}
		worker("t1")
		worker("t2")
		img, err := b.Assemble()
		if err != nil {
			return nil, err
		}
		if _, err := k.LoadImage(s, crCode, img); err != nil {
			return nil, err
		}
		var ths []*obj.Thread
		for _, l := range []string{"t1", "t2"} {
			th := k.NewThread(s, 10)
			th.Regs.PC = b.Addr(l)
			k.StartThread(th)
			ths = append(ths, th)
		}
		return ths, nil
	}
	var rows []ContRecRow
	for _, on := range []bool{false, true} {
		k := core.New(core.Config{Model: core.ModelInterrupt, ContinuationRecognition: on})
		ths, err := build(k)
		if err != nil {
			return nil, err
		}
		start := k.Clock.Now()
		k.RunFor(1 << 40)
		for _, th := range ths {
			if !th.Exited {
				return nil, fmt.Errorf("contrec: worker stuck (state %v)", th.State)
			}
		}
		name := "recognition off (base kernel)"
		if on {
			name = "recognition on"
		}
		rows = append(rows, ContRecRow{
			Setting:    name,
			VirtualMS:  float64(k.Clock.Now()-start) / 200_000,
			Syscalls:   k.Stats().Syscalls,
			Switches:   k.Stats().ContextSwitches,
			Recognized: k.Stats().ContinuationsRecognized,
		})
	}
	return rows, nil
}

// ContRecRender formats the comparison.
func ContRecRender(rows []ContRecRow) *stats.Table {
	t := stats.NewTable("Extension: §2.2 continuation recognition (interrupt model, lock-contended slice)",
		"Setting", "runtime (ms)", "syscalls", "switches", "recognized")
	for _, r := range rows {
		t.Row(r.Setting, r.VirtualMS, r.Syscalls, r.Switches, r.Recognized)
	}
	return t
}

// AblationRender formats the sweep results.
func AblationRender(rows []AblationRow) *stats.Table {
	t := stats.NewTable("Ablation: preemption design parameters vs latency (copy-heavy flukeperf slice)",
		"Parameter", "Setting", "latency avg (µs)", "latency max (µs)", "runtime (ms)")
	for _, r := range rows {
		t.Row(r.Param, r.Value, r.AvgUS, r.MaxUS, r.VirtualMS)
	}
	return t
}
