package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/sys"
	"repro/internal/workload"
)

// Extension experiment (motivated by §5.2): "microkernels ... that
// dispatch hardware interrupts to device drivers running as ordinary
// threads (in which case preemption latency effectively becomes
// interrupt-handling latency)". We measure it end-to-end: a client reads
// disk sectors through the user-mode driver while flukeperf hammers the
// kernel, under each of the five configurations. The driver and client
// outrank the workload, so every stall is kernel non-preemptibility.

// DriverLatRow is one configuration's service-time distribution.
type DriverLatRow struct {
	Config   string
	AvgUS    float64
	MaxUS    float64
	Requests int
}

const (
	dlCode = 0x0001_0000
	dlData = 0x0004_0000
	dlReq  = dlData + 0x100
	dlRep  = dlData + 0x1000
	dlSam  = dlData + 0x3000 // sample array (µs per request)
)

// driverLatClient builds the measuring client: n timed sector reads with
// a pause between them.
func driverLatClient(refVA uint32, n int, pauseUS uint32) *prog.Builder {
	b := prog.New(dlCode)
	b.Movi(6, 0).Label("loop").
		// t0 (µs) -> [dlData+0x40]
		ClockGet().
		Movi(4, dlData+0x40).St(4, 0, 1).
		// request sector (i mod 8)
		Movi(4, dlReq).Movi(5, 7).And(5, 6, 5).St(4, 0, 5).
		IPCClientConnectSendOverReceive(dlReq, 1, refVA, dlRep, dev.SectorSize/4).
		IPCClientDisconnect().
		// dt = now - t0 -> samples[i]
		ClockGet().
		Movi(4, dlData+0x40).Ld(5, 4, 0).
		Sub(1, 1, 5).
		Movi(5, 2).Shl(4, 6, 5).Addi(4, 4, dlSam).
		St(4, 0, 1).
		ThreadSleepUS(pauseUS).
		Addi(6, 6, 1).Movi(5, uint32(n)).Blt(6, 5, "loop").
		Halt()
	return b
}

// DriverLatency measures interrupt-handling (driver service) latency per
// configuration while flukeperf competes.
func DriverLatency(sc workload.FlukeperfScale, requests int) ([]DriverLatRow, error) {
	var rows []DriverLatRow
	for _, cfg := range core.Configurations() {
		// Copying kernel, as in Table 5/6: the latency bounds under test
		// come from the word-by-word transfer loop.
		cfg.DisableZeroCopy = true
		k := core.New(cfg)
		w, err := workload.NewFlukeperf(k, sc)
		if err != nil {
			return nil, err
		}
		dr, err := dev.Attach(k, 64, 5, 0, 30)
		if err != nil {
			return nil, err
		}
		cs := k.NewSpace()
		data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(8*mem.PageSize, true)}
		k.BindFresh(cs, data)
		if _, err := k.MapInto(cs, data, dlData, 0, 8*mem.PageSize, mmu.PermRW); err != nil {
			return nil, err
		}
		refVA := dr.ClientRef(k, cs)
		cb := driverLatClient(refVA, requests, 6000)
		client, err := k.SpawnProgram(cs, dlCode, cb.MustAssemble(), 28)
		if err != nil {
			return nil, err
		}
		// Run until both the workload and the client finish.
		w.Done = append(w.Done, client)
		if _, err := w.Run(1 << 62); err != nil {
			return nil, fmt.Errorf("driverlat %s: %w", cfg.Name(), err)
		}
		var lat stats.Latency
		raw, err := k.ReadMem(cs, dlSam, requests*4)
		if err != nil {
			return nil, err
		}
		for i := 0; i < requests; i++ {
			us := uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 | uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24
			lat.Add(float64(us))
		}
		rows = append(rows, DriverLatRow{
			Config:   cfg.Name(),
			AvgUS:    lat.Avg(),
			MaxUS:    lat.Max(),
			Requests: requests,
		})
	}
	return rows, nil
}

// DriverLatencyRender formats the rows.
func DriverLatencyRender(rows []DriverLatRow) *stats.Table {
	t := stats.NewTable("Extension: user-mode driver service latency under load (sector read RPC, device latency 200 µs)",
		"Configuration", "avg (µs)", "max (µs)", "requests")
	for _, r := range rows {
		t.Row(r.Config, r.AvgUS, r.MaxUS, r.Requests)
	}
	return t
}
