package obj

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/sys"
)

func newSpace() *Space {
	return NewSpace(mmu.NewAddrSpace(mem.NewAllocator(64)))
}

func TestWaitQueueFIFO(t *testing.T) {
	var q WaitQueue
	a, b, c := &Thread{ID: 1}, &Thread{ID: 2}, &Thread{ID: 3}
	q.Enqueue(a)
	q.Enqueue(b)
	q.Enqueue(c)
	if q.Len() != 3 || q.Peek() != a {
		t.Fatalf("Len=%d Peek=%v", q.Len(), q.Peek())
	}
	for _, want := range []*Thread{a, b, c} {
		got := q.Dequeue()
		if got != want {
			t.Fatalf("dequeued %d, want %d", got.ID, want.ID)
		}
		if got.WaitQ != nil {
			t.Fatal("dequeued thread still linked to queue")
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("empty dequeue returned thread")
	}
}

func TestWaitQueueRemove(t *testing.T) {
	var q WaitQueue
	a, b := &Thread{ID: 1}, &Thread{ID: 2}
	q.Enqueue(a)
	q.Enqueue(b)
	if !q.Remove(a) || a.WaitQ != nil {
		t.Fatal("Remove(a) failed")
	}
	if q.Remove(a) {
		t.Fatal("double remove succeeded")
	}
	if q.Dequeue() != b {
		t.Fatal("wrong head after remove")
	}
}

// The ring-buffer rewrite: a warmed WaitQueue must park and wake threads
// without allocating (it used to append to a slice on every Enqueue and
// re-slice on every Dequeue — one allocation per IPC rendezvous).
func TestWaitQueueEnqueueDequeueDoesNotAllocate(t *testing.T) {
	var q WaitQueue
	ts := make([]*Thread, 64)
	for i := range ts {
		ts[i] = &Thread{ID: uint32(i)}
		q.Enqueue(ts[i]) // warm the ring to its steady-state capacity
	}
	for range ts {
		q.Dequeue()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, th := range ts {
			q.Enqueue(th)
		}
		for range ts {
			q.Dequeue()
		}
	})
	if allocs != 0 {
		t.Fatalf("Enqueue/Dequeue allocates: %v allocs/run, want 0", allocs)
	}
}

// Remove from the middle (interrupted waiter) must be alloc-free too.
func TestWaitQueueRemoveDoesNotAllocate(t *testing.T) {
	var q WaitQueue
	ts := make([]*Thread, 16)
	for i := range ts {
		ts[i] = &Thread{ID: uint32(i)}
		q.Enqueue(ts[i])
	}
	for range ts {
		q.Dequeue()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, th := range ts {
			q.Enqueue(th)
		}
		for i := len(ts) - 1; i >= 0; i-- {
			q.Remove(ts[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("Remove allocates: %v allocs/run, want 0", allocs)
	}
}

func BenchmarkWaitQueueEnqueueDequeue(b *testing.B) {
	var q WaitQueue
	ts := make([]*Thread, 64)
	for i := range ts {
		ts[i] = &Thread{ID: uint32(i)}
		q.Enqueue(ts[i])
	}
	for range ts {
		q.Dequeue()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(ts[i%len(ts)])
		q.Dequeue()
	}
}

func TestDoubleEnqueuePanics(t *testing.T) {
	var q1, q2 WaitQueue
	a := &Thread{ID: 1}
	q1.Enqueue(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double enqueue did not panic")
		}
	}()
	q2.Enqueue(a)
}

func TestSpaceHandleTable(t *testing.T) {
	s := newSpace()
	m, e := New(sys.ObjMutex)
	if e != sys.EOK {
		t.Fatal(e)
	}
	if e := s.Insert(0x1000, m); e != sys.EOK {
		t.Fatal(e)
	}
	if got := s.At(0x1000); got != m {
		t.Fatal("At did not return inserted object")
	}
	if m.Hdr().VA != 0x1000 || m.Hdr().Owner != s {
		t.Fatal("header not updated on insert")
	}
	// Duplicate handle rejected.
	c, _ := New(sys.ObjCond)
	if e := s.Insert(0x1000, c); e != sys.EBUSY {
		t.Fatalf("duplicate insert = %v, want EBUSY", e)
	}
	// Unaligned handle rejected.
	if e := s.Insert(0x1001, c); e != sys.EINVAL {
		t.Fatalf("unaligned insert = %v, want EINVAL", e)
	}
	s.Remove(0x1000)
	if s.At(0x1000) != nil {
		t.Fatal("object survives Remove")
	}
}

func TestNewCoversUserCreatableTypes(t *testing.T) {
	creatable := []sys.ObjType{
		sys.ObjMutex, sys.ObjCond, sys.ObjMapping, sys.ObjRegion,
		sys.ObjPort, sys.ObjPortset, sys.ObjRef,
	}
	for _, ot := range creatable {
		o, e := New(ot)
		if e != sys.EOK {
			t.Fatalf("New(%v) = %v", ot, e)
		}
		if TypeOf(o) != ot {
			t.Fatalf("New(%v) has type %v", ot, TypeOf(o))
		}
	}
	// Space and Thread are kernel-mediated.
	if _, e := New(sys.ObjSpace); e != sys.EINVAL {
		t.Fatal("New(space) should be EINVAL")
	}
	if _, e := New(sys.ObjThread); e != sys.EINVAL {
		t.Fatal("New(thread) should be EINVAL")
	}
}

func TestPortsetMembership(t *testing.T) {
	ps := &Portset{Header: Header{Type: sys.ObjPortset}}
	p1 := &Port{Header: Header{Type: sys.ObjPort}}
	p2 := &Port{Header: Header{Type: sys.ObjPort}}
	if e := ps.AddPort(p1); e != sys.EOK {
		t.Fatal(e)
	}
	if e := ps.AddPort(p1); e != sys.EBUSY {
		t.Fatalf("re-add = %v, want EBUSY", e)
	}
	if e := ps.AddPort(p2); e != sys.EOK {
		t.Fatal(e)
	}
	if e := ps.RemovePort(p1); e != sys.EOK || p1.Set != nil {
		t.Fatal("remove failed")
	}
	if e := ps.RemovePort(p1); e != sys.ESRCH {
		t.Fatalf("double remove = %v, want ESRCH", e)
	}
}

func TestPendingPort(t *testing.T) {
	ps := &Portset{}
	p := &Port{}
	ps.AddPort(p)
	if ps.PendingPort() != nil {
		t.Fatal("pending on empty port")
	}
	cl := &Thread{ID: 9}
	p.Connectors.Enqueue(cl)
	if ps.PendingPort() != p {
		t.Fatal("pending connector not seen")
	}
	p.Connectors.Remove(cl)
	// Pager fault notifications also count as pending work.
	r := &Region{}
	p.FaultRegion = r
	if ps.PendingPort() != nil {
		t.Fatal("no faults queued yet")
	}
	r.PendingFaults = append(r.PendingFaults, 0x1000)
	if ps.PendingPort() != p {
		t.Fatal("pending fault not seen")
	}
}

func TestThreadRunnable(t *testing.T) {
	th := &Thread{State: ThReady}
	if !th.Runnable() {
		t.Fatal("ready thread not runnable")
	}
	th.Stopped = true
	if th.Runnable() {
		t.Fatal("stopped thread runnable")
	}
	th.Stopped = false
	th.State = ThBlocked
	if th.Runnable() {
		t.Fatal("blocked thread runnable")
	}
}

func TestObjectsOfType(t *testing.T) {
	s := newSpace()
	for i := uint32(0); i < 3; i++ {
		m, _ := New(sys.ObjMutex)
		s.Insert(0x1000+i*4, m)
	}
	c, _ := New(sys.ObjCond)
	s.Insert(0x2000, c)
	if n := s.ObjectsOfType(sys.ObjMutex); n != 3 {
		t.Fatalf("mutex count %d, want 3", n)
	}
	if n := s.ObjectsOfType(sys.ObjCond); n != 1 {
		t.Fatalf("cond count %d, want 1", n)
	}
	s.At(0x1000).Hdr().Dead = true
	if n := s.ObjectsOfType(sys.ObjMutex); n != 2 {
		t.Fatalf("mutex count after death %d, want 2", n)
	}
}

func TestStateStrings(t *testing.T) {
	if ThReady.String() != "ready" || ThDead.String() != "dead" {
		t.Fatal("thread state names")
	}
	if IPCIdle.String() != "idle" || IPCSend.String() != "send" || IPCRecv.String() != "recv" {
		t.Fatal("ipc phase names")
	}
}

// Property: any interleaving of enqueue/dequeue/remove keeps the queue
// consistent: Len matches, no thread is on two queues, dequeued order is a
// subsequence of enqueue order.
func TestPropertyWaitQueueConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		var q WaitQueue
		next := uint32(0)
		inQ := map[uint32]bool{}
		var order []uint32
		for _, op := range ops {
			switch op % 3 {
			case 0: // enqueue fresh thread
				th := &Thread{ID: next}
				next++
				q.Enqueue(th)
				inQ[th.ID] = true
				order = append(order, th.ID)
			case 1: // dequeue
				if th := q.Dequeue(); th != nil {
					if !inQ[th.ID] {
						return false
					}
					delete(inQ, th.ID)
				}
			case 2: // remove head-ish (peek then remove)
				if th := q.Peek(); th != nil {
					if !q.Remove(th) {
						return false
					}
					delete(inQ, th.ID)
				}
			}
			if q.Len() != len(inQ) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPendingFaultDedup: the pending-fault queue must suppress duplicate
// offsets in O(1), stay FIFO, and keep the dedup set consistent through
// Pop/Clear — including when PendingFaults was seeded directly (the lazy
// set build).
func TestPendingFaultDedup(t *testing.T) {
	r := &Region{}
	if !r.QueuePendingFault(0) {
		t.Fatal("first queue of offset 0 rejected")
	}
	if r.QueuePendingFault(0) {
		t.Fatal("duplicate offset 0 accepted")
	}
	if !r.QueuePendingFault(mem.PageSize) || !r.QueuePendingFault(2*mem.PageSize) {
		t.Fatal("distinct offsets rejected")
	}
	if len(r.PendingFaults) != 3 {
		t.Fatalf("queue length = %d, want 3", len(r.PendingFaults))
	}
	if off := r.PopPendingFault(); off != 0 {
		t.Fatalf("Pop = %#x, want 0 (FIFO)", off)
	}
	// After Pop the offset may be queued again.
	if !r.QueuePendingFault(0) {
		t.Fatal("re-queue after Pop rejected")
	}
	r.ClearPendingFault(mem.PageSize)
	if r.QueuePendingFault(2 * mem.PageSize) {
		t.Fatal("still-queued offset accepted after unrelated Clear")
	}
	if !r.QueuePendingFault(mem.PageSize) {
		t.Fatal("re-queue after Clear rejected")
	}
	want := []uint32{2 * mem.PageSize, 0, mem.PageSize}
	for i, w := range want {
		if off := r.PopPendingFault(); off != w {
			t.Fatalf("Pop #%d = %#x, want %#x", i, off, w)
		}
	}

	// Lazy build: code that seeded PendingFaults directly (older paths,
	// tests) must still get correct dedup afterwards.
	r2 := &Region{}
	r2.PendingFaults = []uint32{mem.PageSize, 3 * mem.PageSize}
	if r2.QueuePendingFault(mem.PageSize) {
		t.Fatal("duplicate of directly-seeded offset accepted")
	}
	if !r2.QueuePendingFault(0) {
		t.Fatal("fresh offset rejected after lazy build")
	}
}
