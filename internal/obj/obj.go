// Package obj implements the nine primitive object types the Fluke kernel
// exports (paper Table 2): Mutex, Cond, Mapping, Region, Port, Portset,
// Space, Thread, and Reference.
//
// As in Fluke, kernel objects are named by virtual addresses: an object is
// "mapped into the address space of an application with the virtual
// address serving as the handle" (§4.3, footnote 3). A Space therefore
// carries a handle table from VA to object; syscalls resolve handles
// through it, faulting (and restarting) if the handle's page is not
// mapped.
package obj

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sys"
)

// Header is the state common to every kernel object.
type Header struct {
	Type  sys.ObjType
	VA    uint32 // handle address in the owning space
	Owner *Space
	Name  string // set by the rename common op
	Dead  bool
	Refs  int // number of Reference objects pointing at this object
}

// Hdr returns the header; it makes *Header satisfy Obj via embedding.
func (h *Header) Hdr() *Header { return h }

// Obj is any kernel object.
type Obj interface {
	Hdr() *Header
}

// WaitQueue is a FIFO queue of blocked threads. It is part of kernel
// object state (mutex waiters, condition waiters, port queues, ...).
//
// Crucially for the atomic API, every thread on a wait queue has its user
// register state rolled forward to a consistent restart point *before*
// enqueueing, so the queue never holds hidden continuation state.
//
// Storage is a growable ring, like sched's run-queue deque: Enqueue and
// Dequeue are O(1) and allocation-free once the ring is warm, so the IPC
// rendezvous path (one park + one unpark per transfer leg) does not
// allocate per message. It used to be an append/copy-shift slice, which
// was alloc-free only until resetConn discarded the backing array with
// the rest of the connection state (see ipc.resetConn, which now
// preserves it).
type WaitQueue struct {
	Name string
	buf  []*Thread
	head int // index of the first element
	n    int
}

func (q *WaitQueue) at(i int) *Thread { return q.buf[(q.head+i)%len(q.buf)] }

func (q *WaitQueue) grow() {
	if q.n < len(q.buf) {
		return
	}
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 4
	}
	buf := make([]*Thread, newCap)
	for i := 0; i < q.n; i++ {
		buf[i] = q.at(i)
	}
	q.buf, q.head = buf, 0
}

// Enqueue appends t and records the queue on the thread.
func (q *WaitQueue) Enqueue(t *Thread) {
	if t.WaitQ != nil {
		panic(fmt.Sprintf("obj: thread %d already on queue %q", t.ID, t.WaitQ.Name))
	}
	t.WaitQ = q
	q.grow()
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
}

// Dequeue removes and returns the head, or nil if empty.
func (q *WaitQueue) Dequeue() *Thread {
	if q.n == 0 {
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	t.WaitQ = nil
	return t
}

// removeAt unlinks position i preserving FIFO order of the rest.
func (q *WaitQueue) removeAt(i int) {
	for ; i < q.n-1; i++ {
		q.buf[(q.head+i)%len(q.buf)] = q.at(i + 1)
	}
	q.buf[(q.head+q.n-1)%len(q.buf)] = nil
	q.n--
}

// Remove unlinks t from the queue (used by thread_interrupt and
// destruction). It reports whether t was queued here.
func (q *WaitQueue) Remove(t *Thread) bool {
	for i := 0; i < q.n; i++ {
		if q.at(i) == t {
			q.removeAt(i)
			t.WaitQ = nil
			return true
		}
	}
	return false
}

// Len returns the number of queued threads.
func (q *WaitQueue) Len() int { return q.n }

// Peek returns the head without removing it.
func (q *WaitQueue) Peek() *Thread {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// At returns the i-th queued thread (0 = head) without removing it —
// the allocation-free way to scan the queue when the scan itself does
// not dequeue (e.g. findAccepting on every IPC connect).
func (q *WaitQueue) At(i int) *Thread { return q.at(i) }

// Threads returns a snapshot of the queued threads in order. It
// allocates; use Len/At to iterate alloc-free, and this only where the
// iteration body may mutate the queue (wake-all paths).
func (q *WaitQueue) Threads() []*Thread {
	out := make([]*Thread, q.n)
	for i := range out {
		out[i] = q.at(i)
	}
	return out
}

// ThreadState is the run state of a thread.
type ThreadState uint8

const (
	// ThReady: runnable, on (or headed for) a run queue.
	ThReady ThreadState = iota
	// ThRunning: currently executing on the (virtual) CPU.
	ThRunning
	// ThBlocked: on a wait queue; registers are a consistent restart
	// point.
	ThBlocked
	// ThDead: destroyed.
	ThDead
)

func (s ThreadState) String() string {
	switch s {
	case ThReady:
		return "ready"
	case ThRunning:
		return "running"
	case ThBlocked:
		return "blocked"
	case ThDead:
		return "dead"
	}
	return "state?"
}

// IPCPhase is the exportable connection phase of a thread's IPC state.
type IPCPhase uint8

const (
	// IPCIdle: no connection.
	IPCIdle IPCPhase = iota
	// IPCSend: connected, this side currently holds the send direction.
	IPCSend
	// IPCRecv: connected, this side currently receives.
	IPCRecv
)

func (p IPCPhase) String() string {
	switch p {
	case IPCIdle:
		return "idle"
	case IPCSend:
		return "send"
	case IPCRecv:
		return "recv"
	}
	return "phase?"
}

// IPCState is one half of a thread's IPC connection state. As in Fluke,
// every thread has two independent halves — a *client* connection it
// initiated and a *server* connection it accepted — so a mid-chain server
// can hold its client's connection open while performing RPCs of its own
// downstream. The state lives in the thread control block ("The IPC
// connection state itself is stored as part of the current thread's
// control block in the kernel", §4.3) and is exportable through
// thread_get_state.
type IPCState struct {
	Phase IPCPhase
	// Peer is the connected thread; its *opposite* half points back.
	Peer *Thread

	// Accepting marks a thread blocked in ipc_wait_receive /
	// ipc_setup_wait, distinguishing it from portset_wait blockers on
	// the same queue (server half only).
	Accepting bool
	// WantSend/WantRecv mark a connected thread whose rolled-forward
	// registers describe a transfer buffer the peer may operate on
	// while this thread is not running.
	WantSend bool
	WantRecv bool
	// MsgEnd: the peer has ended its message toward this thread
	// ("over" or disconnect); the current receive completes when it is
	// consumed.
	MsgEnd bool
	// Closed: the peer disconnected gracefully.
	Closed bool
	// PeerDied: the peer thread was destroyed mid-connection.
	PeerDied bool

	// Wait is where the peer parks this thread when it must wait for
	// the other side's progress.
	Wait WaitQueue
}

// Thread is the thread control block — Fluke's Thread object. Everything a
// user-level manager may need is exportable: the register file (including
// the PR0/PR1 pseudo-registers), scheduling parameters, and the IPC phase.
type Thread struct {
	Header
	ID    uint32
	Space *Space
	Regs  cpu.Regs

	State       ThreadState
	Stopped     bool // thread_stop; excluded from scheduling until resumed
	Interrupted bool // thread_interrupt pending

	Priority int

	// HomeCPU is the simulated CPU the thread last ran on (and the queue
	// a wake re-enqueues it to); maintained by internal/core. Threads
	// migrate by work stealing, which updates it at dispatch.
	HomeCPU int

	// WaitQ is the wait queue the thread is blocked on, if any.
	WaitQ *WaitQueue

	// Donated marks a ready thread staged in a run queue's donation
	// slot: an IPC handoff target that will be dispatched directly,
	// inheriting the donor's remaining time slice, as soon as the donor
	// blocks. Maintained by sched's Donate/TakeDonation/Remove.
	Donated bool

	// SleepTimer is the pending wakeup for thread_sleep/clock_alarm_wait.
	SleepTimer *clock.Timer

	// IPCClient and IPCServer are the two exportable connection halves:
	// the connection this thread initiated and the one it accepted.
	IPCClient IPCState
	IPCServer IPCState

	// ExitWaiters holds threads in thread_wait (join) on this thread.
	ExitWaiters WaitQueue
	ExitCode    uint32
	Exited      bool

	// KCtx is the execution-model context (the process-model kernel
	// stack context); owned by internal/core.
	KCtx any

	// HostFn, when non-nil, makes this a kernel thread: instead of
	// interpreting user instructions, the kernel calls HostFn, which
	// charges simulated time and blocks via the normal kernel
	// primitives (used for the Table 6 high-priority latency thread).
	HostFn func() sys.KErr

	// InSyscall marks a system call in progress (dispatch re-entries
	// while set are counted as restarts).
	InSyscall bool

	// InKernelPark marks a process-model thread preempted in the middle
	// of kernel code (full-preemption configuration only); such a
	// thread must be settled before its state is exported.
	InKernelPark bool

	// EntryCycles counts cycles charged since the last committed
	// progress point of the current syscall; on a fault-induced restart
	// it is the work thrown away and redone (paper Table 3 rollback).
	EntryCycles uint64

	// PendingFault and PendingFaultSpace describe a fault a syscall
	// handler hit in user memory (KFault).
	PendingFault      cpu.Fault
	PendingFaultSpace *Space

	// FaultStart/FaultClass/FaultCross record an in-progress fault for
	// remedy-time accounting.
	FaultStart uint64
	FaultClass mmu.FaultClass
	FaultCross bool

	// CurSys is the syscall number the thread is currently dispatched
	// in, or -1 — the syscall dimension of profiler attribution
	// (maintained by internal/core when the profiler is enabled).
	CurSys int16

	// ProfPath is the kernel-path tag (a profile.Path) ambient kernel
	// charges on behalf of this thread are attributed to; 0 is the
	// generic kernel bucket. Set/restored around tagged stretches
	// (IPC copy, fault remedies, handle lookups) by internal/core.
	ProfPath uint8

	// Span is the causal IPC span the thread is currently part of
	// (0 = none), and SpanOwner marks the thread that minted it — the
	// client whose send opened the request. Maintained by internal/core
	// when Config.EnableIPCSpans is set.
	Span      uint32
	SpanOwner bool
}

// Runnable reports whether the scheduler may pick this thread.
func (t *Thread) Runnable() bool {
	return t.State == ThReady && !t.Stopped
}

// Mutex is Fluke's kernel-supported, cross-process mutex.
type Mutex struct {
	Header
	Locked  bool
	Holder  *Thread
	Waiters WaitQueue
}

// Cond is Fluke's kernel-supported condition variable.
type Cond struct {
	Header
	Waiters WaitQueue
}

// Region wraps an exportable mmu.Region; hard faults on it queue on
// FaultWaiters until a pager populates the page.
type Region struct {
	Header
	R *mmu.Region
	// FaultWaiters holds threads waiting for a user-mode pager to
	// populate a page of this region. Threads re-classify the fault on
	// wakeup, so a single queue per region suffices.
	FaultWaiters WaitQueue
	// PendingFaults are fault notifications queued for the pager, one
	// per (page) offset, delivered over the pager port.
	PendingFaults []uint32
	// pendingSet mirrors PendingFaults for O(1) duplicate suppression.
	// It is built lazily by QueuePendingFault so code (and tests) that
	// manipulate PendingFaults directly stay correct.
	pendingSet map[uint32]struct{}
}

// QueuePendingFault appends off to the pending-fault queue unless an
// identical notification is already queued; it reports whether the
// notification was newly queued.
func (r *Region) QueuePendingFault(off uint32) bool {
	if r.pendingSet == nil {
		r.pendingSet = make(map[uint32]struct{}, len(r.PendingFaults)+1)
		for _, o := range r.PendingFaults {
			r.pendingSet[o] = struct{}{}
		}
	}
	if _, dup := r.pendingSet[off]; dup {
		return false
	}
	r.pendingSet[off] = struct{}{}
	r.PendingFaults = append(r.PendingFaults, off)
	return true
}

// PopPendingFault removes and returns the oldest pending fault offset.
// The queue must be non-empty.
func (r *Region) PopPendingFault() uint32 {
	off := r.PendingFaults[0]
	r.PendingFaults = r.PendingFaults[1:]
	if r.pendingSet != nil {
		delete(r.pendingSet, off)
	}
	return off
}

// ClearPendingFault removes the queued notification for off, if any.
func (r *Region) ClearPendingFault(off uint32) {
	for j, pf := range r.PendingFaults {
		if pf == off {
			r.PendingFaults = append(r.PendingFaults[:j], r.PendingFaults[j+1:]...)
			if r.pendingSet != nil {
				delete(r.pendingSet, off)
			}
			return
		}
	}
}

// Mapping wraps an imported window of a Region in a destination space.
type Mapping struct {
	Header
	M *mmu.Mapping
	// Dst is the space the mapping is installed in (the mapping object
	// handle itself may live elsewhere).
	Dst *Space
}

// Port is the server-side endpoint of IPC connections.
type Port struct {
	Header
	Set *Portset
	// Connectors are client threads waiting for a server to accept.
	Connectors WaitQueue
	// FaultRegion, when non-nil, marks this port as the pager port for
	// that region: connection requests carry page-fault descriptors.
	FaultRegion *Region
}

// Portset is a set of ports a server thread waits on.
type Portset struct {
	Header
	Ports []*Port
	// Servers are threads in ipc_wait_receive / ipc_setup_wait.
	Servers WaitQueue
}

// AddPort links p into the set.
func (ps *Portset) AddPort(p *Port) sys.Errno {
	if p.Set != nil {
		return sys.EBUSY
	}
	p.Set = ps
	ps.Ports = append(ps.Ports, p)
	return sys.EOK
}

// RemovePort unlinks p.
func (ps *Portset) RemovePort(p *Port) sys.Errno {
	for i, x := range ps.Ports {
		if x == p {
			ps.Ports = append(ps.Ports[:i], ps.Ports[i+1:]...)
			p.Set = nil
			return sys.EOK
		}
	}
	return sys.ESRCH
}

// PendingPort returns a port in the set with a waiting connector, or nil.
func (ps *Portset) PendingPort() *Port {
	for _, p := range ps.Ports {
		if p.Connectors.Len() > 0 || (p.FaultRegion != nil && len(p.FaultRegion.PendingFaults) > 0) {
			return p
		}
	}
	return nil
}

// Ref is a cross-process handle on another object.
type Ref struct {
	Header
	Target Obj
}

// Space associates memory and threads (paper Table 2). It owns the handle
// table mapping virtual addresses to kernel objects.
type Space struct {
	Header
	AS      *mmu.AddrSpace
	Objects map[uint32]Obj
	Threads []*Thread
	// HomeCPU is the simulated CPU this space's threads are pinned to in
	// ParallelHost mode (threads of one space never step concurrently);
	// assigned round-robin by internal/core.
	HomeCPU int
	// StepMu serializes host access to AS in ParallelHost mode: the home
	// CPU holds it while batch-stepping a thread of this space outside the
	// kernel gate, and kernel code on another CPU takes it before touching
	// this space's memory (IPC copies, cross-space fault classification).
	// Unused (never contended) in the deterministic serial modes.
	StepMu sync.Mutex
	// ReapWaiters holds threads in space_reap_wait on this space.
	ReapWaiters WaitQueue
	// LockSlot is this space's object-lock slot in the kernel's lock
	// table under the fine-grained lock model (the paired MMU instance is
	// LockSlot+1); 0 means no per-space instances (coarser models, or the
	// sharded ParallelHost gate). Maintained by internal/core.
	LockSlot int
}

// NewSpace creates an empty space over the given address space.
func NewSpace(as *mmu.AddrSpace) *Space {
	s := &Space{AS: as, Objects: make(map[uint32]Obj)}
	s.Header = Header{Type: sys.ObjSpace, Owner: s}
	return s
}

// Insert binds an object to handle va in the space. The handle must be
// word-aligned and unused.
func (s *Space) Insert(va uint32, o Obj) sys.Errno {
	if va%4 != 0 {
		return sys.EINVAL
	}
	if _, exists := s.Objects[va]; exists {
		return sys.EBUSY
	}
	h := o.Hdr()
	h.VA = va
	h.Owner = s
	s.Objects[va] = o
	return sys.EOK
}

// Remove unbinds the handle at va.
func (s *Space) Remove(va uint32) {
	delete(s.Objects, va)
}

// At returns the object bound at va, or nil. Note: the *kernel's* handle
// resolution additionally requires the page holding va to be mapped (see
// core's objAt), which is what makes "short" syscalls fault and restart.
func (s *Space) At(va uint32) Obj {
	return s.Objects[va]
}

// ObjectsOfType counts live objects of type t in the space.
func (s *Space) ObjectsOfType(t sys.ObjType) int {
	n := 0
	for _, o := range s.Objects {
		if o.Hdr().Type == t && !o.Hdr().Dead {
			n++
		}
	}
	return n
}

// TypeOf returns the dynamic object type.
func TypeOf(o Obj) sys.ObjType { return o.Hdr().Type }

// New constructs an object of the given type with a zero-value body.
// Space and Thread objects need richer setup and are created by the
// kernel, not here.
func New(t sys.ObjType) (Obj, sys.Errno) {
	switch t {
	case sys.ObjMutex:
		return &Mutex{Header: Header{Type: t}}, sys.EOK
	case sys.ObjCond:
		return &Cond{Header: Header{Type: t}}, sys.EOK
	case sys.ObjPort:
		return &Port{Header: Header{Type: t}}, sys.EOK
	case sys.ObjPortset:
		return &Portset{Header: Header{Type: t}}, sys.EOK
	case sys.ObjRef:
		return &Ref{Header: Header{Type: t}}, sys.EOK
	case sys.ObjRegion:
		return &Region{Header: Header{Type: t}}, sys.EOK
	case sys.ObjMapping:
		return &Mapping{Header: Header{Type: t}}, sys.EOK
	default:
		// Space and Thread creation is kernel-mediated.
		return nil, sys.EINVAL
	}
}
