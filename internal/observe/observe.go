// Package observe is the live observation endpoint behind
// `flukerun -listen :PORT`: an HTTP server exposing a running
// simulation's metrics (Prometheus text), cycle profile (pprof
// protobuf), and kernel trace (Perfetto JSON) without stopping it.
//
// The simulation is single-goroutine by design (the deterministic
// interleaver), so HTTP handlers never touch kernel state. Instead each
// request parks on a channel; the simulation loop calls Server.Poll
// between dispatches (workload.RunPolling wires it into the RunUntil
// stop check), notices the waiters, renders one consistent snapshot of
// all three views on the simulation goroutine, and hands it over. The
// request therefore observes a clean inter-dispatch boundary — the same
// consistency point checkpoints use — and costs the simulation nothing
// when nobody is asking (one atomic load per poll).
package observe

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Snapshot is one consistent, pre-rendered view of the simulation.
type Snapshot struct {
	// Metrics is the Prometheus text exposition (may be empty when the
	// kernel runs without a metrics registry).
	Metrics []byte
	// Profile is the gzipped pprof protobuf of attributed virtual
	// cycles (empty without the profiler).
	Profile []byte
	// Trace is the Perfetto/Chrome trace_event JSON of the trace ring
	// (empty without a ring).
	Trace []byte
	// VirtualNow is the kernel's virtual-time frontier in cycles.
	VirtualNow uint64
}

// Server is the endpoint. Create with Listen, pump with Poll, stop with
// Close.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	pending atomic.Int32
	reqs    chan chan Snapshot
}

// Listen starts serving on addr (":0" picks a free port; see Addr).
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, reqs: make(chan chan Snapshot, 16)}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.view("text/plain; version=0.0.4", func(sn Snapshot) []byte { return sn.Metrics }))
	mux.HandleFunc("/profile", s.view("application/octet-stream", func(sn Snapshot) []byte { return sn.Profile }))
	mux.HandleFunc("/trace", s.view("application/json", func(sn Snapshot) []byte { return sn.Trace }))
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections. In-flight snapshot waiters get a
// 503 via their timeout.
func (s *Server) Close() error { return s.srv.Close() }

// Poll services any parked requests by rendering one snapshot with take
// and fanning it out. Call it from the simulation goroutine between
// dispatches; with no waiters it is one atomic load.
func (s *Server) Poll(take func() Snapshot) {
	if s.pending.Load() == 0 {
		return
	}
	var snap Snapshot
	taken := false
	for {
		select {
		case c := <-s.reqs:
			if !taken {
				snap = take()
				taken = true
			}
			c <- snap
		default:
			return
		}
	}
}

// snapshot parks until the simulation loop answers, or fails after a
// grace period (the simulation may have finished, or be stuck in one
// enormous dispatch).
func (s *Server) snapshot() (Snapshot, error) {
	c := make(chan Snapshot, 1)
	s.pending.Add(1)
	defer s.pending.Add(-1)
	deadline := time.After(5 * time.Second)
	select {
	case s.reqs <- c:
	case <-deadline:
		return Snapshot{}, fmt.Errorf("simulation did not reach a poll point in time")
	}
	select {
	case snap := <-c:
		return snap, nil
	case <-deadline:
		return Snapshot{}, fmt.Errorf("simulation did not reach a poll point in time")
	}
}

// view builds a handler serving one rendered section of the snapshot.
func (s *Server) view(contentType string, sel func(Snapshot) []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		body := sel(snap)
		if len(body) == 0 {
			http.Error(w, "not enabled for this run (see flukerun -metrics / -profile-out / -trace-out)",
				http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-Fluke-Virtual-Cycles", fmt.Sprintf("%d", snap.VirtualNow))
		w.Write(body)
	}
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `fluke live observation endpoint
  /metrics  Prometheus text exposition of the kernel metrics registry
  /profile  pprof protobuf of attributed virtual cycles (go tool pprof)
  /trace    Perfetto/Chrome trace_event JSON of the kernel trace ring
`)
}
