package observe

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotRoundTrip: requests park until the simulation's poll loop
// answers; every served view carries the snapshot the loop rendered, and
// rendering happens once per poll however many requests are waiting.
func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var takes atomic.Int32
	stop := make(chan struct{})
	defer close(stop)
	go func() { // the "simulation loop"
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Poll(func() Snapshot {
				n := takes.Add(1)
				return Snapshot{
					Metrics:    []byte(fmt.Sprintf("fluke_take %d\n", n)),
					Profile:    []byte("pprof-bytes"),
					VirtualNow: uint64(n) * 1000,
				}
			})
			time.Sleep(time.Millisecond)
		}
	}()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d, body %q", code, body)
	}
	if !strings.HasPrefix(body, "fluke_take ") {
		t.Fatalf("/metrics body = %q", body)
	}
	if hdr.Get("X-Fluke-Virtual-Cycles") == "" {
		t.Fatal("/metrics missing virtual-time header")
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	code, body, _ = get("/profile")
	if code != http.StatusOK || body != "pprof-bytes" {
		t.Fatalf("/profile: status %d body %q", code, body)
	}

	// Trace was never rendered by the loop: the endpoint must say so
	// rather than serve an empty document.
	code, _, _ = get("/trace")
	if code != http.StatusNotFound {
		t.Fatalf("/trace with no ring: status %d, want 404", code)
	}

	code, body, _ = get("/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d body %q", code, body)
	}
	if code, _, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatal("unknown path did not 404")
	}

	if takes.Load() == 0 {
		t.Fatal("take was never invoked")
	}
}

// TestPollWithoutWaiters: an idle Poll must not render anything.
func TestPollWithoutWaiters(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	called := false
	s.Poll(func() Snapshot { called = true; return Snapshot{} })
	if called {
		t.Fatal("Poll rendered a snapshot with no requests parked")
	}
}
