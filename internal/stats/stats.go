// Package stats provides the small measurement utilities the benchmark
// harness shares with the tools: latency recorders and fixed-width table
// rendering in the style of the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Latency accumulates latency samples in microseconds.
type Latency struct {
	samples []float64
	sorted  []float64 // memoized sorted copy; nil when samples changed since
}

// Add records one sample.
func (l *Latency) Add(us float64) {
	l.samples = append(l.samples, us)
	l.sorted = nil
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Avg returns the mean, or 0 with no samples.
func (l *Latency) Avg() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range l.samples {
		sum += s
	}
	return sum / float64(len(l.samples))
}

// Max returns the largest sample, or 0.
func (l *Latency) Max() float64 {
	m := 0.0
	for _, s := range l.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Min returns the smallest sample, or 0 with no samples.
func (l *Latency) Min() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, s := range l.samples {
		if s < m {
			m = s
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) by nearest-rank. The
// sorted sample view is computed once and memoized until the next Add,
// so repeated percentile queries (P50/P95/P99 of the same recorder) sort
// only once.
func (l *Latency) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	if l.sorted == nil {
		l.sorted = append(make([]float64, 0, len(l.samples)), l.samples...)
		sort.Float64s(l.sorted)
	}
	rank := int(math.Ceil(p / 100 * float64(len(l.sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(l.sorted) {
		rank = len(l.sorted)
	}
	return l.sorted[rank-1]
}

// P50 returns the median.
func (l *Latency) P50() float64 { return l.Percentile(50) }

// P95 returns the 95th percentile.
func (l *Latency) P95() float64 { return l.Percentile(95) }

// P99 returns the 99th percentile.
func (l *Latency) P99() float64 { return l.Percentile(99) }

// Table renders fixed-width tables like the paper's.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	aligned bool
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Rows returns the table's body rows (formatted cells, no header).
func (t *Table) Rows() [][]string { return t.rows }

// FormatFloat renders a float with sensible precision for table cells
// (3 significant-ish digits, like the paper's "18.9", "5.14", "7430").
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
