package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Avg() != 0 || l.Max() != 0 || l.Min() != 0 || l.Count() != 0 {
		t.Fatal("empty latency not zero")
	}
	for _, v := range []float64{5, 15, 10} {
		l.Add(v)
	}
	if l.Count() != 3 {
		t.Fatalf("count %d", l.Count())
	}
	if l.Avg() != 10 {
		t.Fatalf("avg %v", l.Avg())
	}
	if l.Max() != 15 || l.Min() != 5 {
		t.Fatalf("max %v min %v", l.Max(), l.Min())
	}
}

func TestPercentile(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(float64(i))
	}
	if p := l.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := l.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v", p)
	}
	if p := l.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
}

func TestPropertyAvgBetweenMinMax(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var l Latency
		for _, v := range vals {
			l.Add(float64(v))
		}
		return l.Min() <= l.Avg()+1e-9 && l.Avg() <= l.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5.138:  "5.14",
		18.94:  "18.9",
		7430.2: "7430",
		118.4:  "118",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Config", "avg", "max")
	tb.Row("Process NP", 28.9, 7430.0)
	tb.Row("Process FP", 5.14, 19.6)
	out := tb.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "Process NP") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if !strings.Contains(out, "28.9") || !strings.Contains(out, "5.14") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

// TestEmptyLatency: every statistic of a recorder with no samples is 0 —
// never NaN, never a panic. The render paths (tables, Prometheus
// summaries) format these values directly, so a NaN here would leak into
// every empty-histogram export.
func TestEmptyLatency(t *testing.T) {
	var l Latency
	checks := map[string]float64{
		"Avg": l.Avg(), "Min": l.Min(), "Max": l.Max(),
		"P50": l.P50(), "P95": l.P95(), "P99": l.P99(),
		"Percentile(0)":   l.Percentile(0),
		"Percentile(100)": l.Percentile(100),
	}
	for name, v := range checks {
		if v != 0 {
			t.Errorf("empty Latency %s = %v, want 0", name, v)
		}
		if math.IsNaN(v) {
			t.Errorf("empty Latency %s is NaN", name)
		}
	}
	if l.Count() != 0 {
		t.Errorf("empty Latency Count = %d", l.Count())
	}
}

// TestPercentileMemoInvalidation: the memoized sorted view must be
// rebuilt after an Add that follows a percentile query — a stale memo
// would silently report percentiles of the old sample set.
func TestPercentileMemoInvalidation(t *testing.T) {
	var l Latency
	l.Add(3)
	l.Add(1)
	l.Add(2)
	if got := l.P50(); got != 2 { // memoizes the sorted view
		t.Fatalf("P50 of {1,2,3} = %v, want 2", got)
	}
	l.Add(100) // must invalidate the memo
	if got := l.P99(); got != 100 {
		t.Fatalf("P99 after adding 100 = %v, want 100 (stale memo?)", got)
	}
	if got := l.P50(); got != 2 { // nearest rank 2 of 4
		t.Fatalf("P50 of {1,2,3,100} = %v, want 2", got)
	}
	l.Add(0.5)
	if got := l.Min(); got != 0.5 {
		t.Fatalf("Min = %v, want 0.5", got)
	}
	if got := l.Percentile(20); got != 0.5 { // rank 1 of 5
		t.Fatalf("Percentile(20) = %v, want 0.5", got)
	}
}
