// Package sys defines the Fluke system-call API surface: syscall numbers,
// names, and interruptibility categories (paper Table 1), the nine
// primitive object types (paper Table 2), user-visible error codes, and
// the kernel-internal result codes handlers use to signal blocking,
// faulting, and preemption to the dispatch layer.
//
// The package is pure data — it imports nothing from the kernel — so both
// the kernel core and user-level libraries (workloads, the pager, the
// checkpointer) can share it.
package sys

import "fmt"

// ObjType enumerates the nine primitive object types the Fluke kernel
// exports (paper Table 2).
type ObjType uint8

const (
	ObjMutex ObjType = iota
	ObjCond
	ObjMapping
	ObjRegion
	ObjPort
	ObjPortset
	ObjSpace
	ObjThread
	ObjRef

	// NumObjTypes is the number of primitive object types.
	NumObjTypes = 9
)

var objTypeNames = [NumObjTypes]string{
	"mutex", "cond", "mapping", "region", "port", "portset", "space", "thread", "ref",
}

func (t ObjType) String() string {
	if int(t) < len(objTypeNames) {
		return objTypeNames[t]
	}
	return fmt.Sprintf("objtype%d", uint8(t))
}

// ObjTypeDescriptions gives the Table 2 one-line description per type.
var ObjTypeDescriptions = [NumObjTypes]string{
	ObjMutex:   "A kernel-supported mutex which is safe for sharing between processes.",
	ObjCond:    "A kernel-supported condition variable.",
	ObjMapping: "Encapsulates an imported region of memory; associated with a Space (destination) and Region (source).",
	ObjRegion:  "Encapsulates an exportable region of memory; associated with a Space.",
	ObjPort:    "Server-side endpoint of an IPC.",
	ObjPortset: "A set of Ports on which a server thread waits.",
	ObjSpace:   "Associates memory and threads.",
	ObjThread:  "A thread of control, associated with a Space.",
	ObjRef:     "A cross-process handle on a Mapping, Region, Port, Thread or Space.",
}

// CommonOp enumerates the six operations every object type supports
// (paper §4.3: create, destroy, "rename", "point-a-reference-at",
// "getobjstate", "setobjstate").
type CommonOp uint8

const (
	OpCreate CommonOp = iota
	OpDestroy
	OpRename
	OpReference
	OpGetState
	OpSetState

	// NumCommonOps is the number of common operations per type.
	NumCommonOps = 6
)

var commonOpNames = [NumCommonOps]string{
	"create", "destroy", "rename", "reference", "get_state", "set_state",
}

func (o CommonOp) String() string {
	if int(o) < len(commonOpNames) {
		return commonOpNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Category classifies a system call by its potential length (paper
// Table 1).
type Category uint8

const (
	// Trivial system calls always run to completion without sleeping.
	Trivial Category = iota
	// Short system calls usually run to completion immediately but may
	// encounter page faults, roll back, and restart.
	Short
	// Long system calls can be expected to sleep indefinitely.
	Long
	// MultiStage system calls can sleep indefinitely and can be
	// interrupted at intermediate points in the operation.
	MultiStage
)

func (c Category) String() string {
	switch c {
	case Trivial:
		return "Trivial"
	case Short:
		return "Short"
	case Long:
		return "Long"
	case MultiStage:
		return "Multi-stage"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Syscall numbers. The layout is:
//
//	[0,8)    the eight trivial calls
//	[8,62)   the 54 common object operations (9 types x 6 ops)
//	[62,76)  the 14 type-specific short calls
//	[76,84)  the eight long calls
//	[84,107) the 23 multi-stage calls
//
// matching the paper's Table 1 inventory exactly:
// 8 trivial + 68 short + 8 long + 23 multi-stage = 107.
const (
	// Trivial.
	NNull = iota
	NThreadSelf
	NSpaceSelf
	NClockGet
	NCPUSelf
	NAPIVersion
	NThreadPrioritySelf
	NPerfRead

	// CommonBase is where the 9x6 common object operations begin.
	CommonBase // == 8
)

// CommonOpNum returns the syscall number of a common operation on a type.
func CommonOpNum(t ObjType, op CommonOp) int {
	return CommonBase + int(t)*NumCommonOps + int(op)
}

// CommonOpOf inverts CommonOpNum; ok is false if num is not a common op.
func CommonOpOf(num int) (t ObjType, op CommonOp, ok bool) {
	if num < CommonBase || num >= ShortSpecificBase {
		return 0, 0, false
	}
	n := num - CommonBase
	return ObjType(n / NumCommonOps), CommonOp(n % NumCommonOps), true
}

// ShortSpecificBase is where the 14 type-specific short calls begin.
const ShortSpecificBase = CommonBase + NumObjTypes*NumCommonOps // == 62

// Type-specific short calls.
const (
	NMutexTrylock = ShortSpecificBase + iota
	NMutexUnlock
	NCondSignal
	NCondBroadcast
	NThreadInterrupt
	NThreadStop
	NThreadResume
	NThreadSetPriority
	NSchedYield
	NRegionProtect
	NPortsetAdd
	NPortsetRemove
	NMemAllocate
	NMemFree
)

// LongBase is where the eight long calls begin.
const LongBase = NMemFree + 1 // == 76

// Long calls.
const (
	NMutexLock = LongBase + iota
	NThreadWait
	NThreadSleep
	NThreadSuspendSelf
	NClockAlarmWait
	NIRQWait
	NPortsetWait
	NSpaceReapWait
)

// MultiBase is where the 23 multi-stage calls begin.
const MultiBase = NSpaceReapWait + 1 // == 84

// Multi-stage calls.
const (
	NCondWait = MultiBase + iota
	NRegionSearch

	// Client-side IPC.
	NIPCClientConnectSend
	NIPCClientConnectSendOverReceive
	NIPCClientSend
	NIPCClientSendOverReceive
	NIPCClientOverReceive
	NIPCClientReceive
	NIPCClientDisconnect
	NIPCClientAlert

	// Server-side IPC.
	NIPCSetupWait
	NIPCServerReceive
	NIPCServerOverReceive
	NIPCServerSend
	NIPCServerSendOverReceive
	NIPCServerAckSend
	NIPCServerAckSendOverReceive
	NIPCServerAckSendWaitReceive
	NIPCServerDisconnect

	// Connectionless / combined forms.
	NIPCReply
	NIPCReplyWaitReceive
	NIPCSendOneway
	NIPCWaitReceive
)

// NumSyscalls is the size of the syscall table: 107, as in paper Table 1.
const NumSyscalls = NIPCWaitReceive + 1

// Info describes one syscall table entry.
type Info struct {
	Num  int
	Name string
	Cat  Category
}

// table is built at init.
var table [NumSyscalls]Info

func register(num int, name string, cat Category) {
	if table[num].Name != "" {
		panic(fmt.Sprintf("sys: duplicate syscall %d (%s vs %s)", num, table[num].Name, name))
	}
	table[num] = Info{Num: num, Name: name, Cat: cat}
}

func init() {
	register(NNull, "null", Trivial)
	register(NThreadSelf, "thread_self", Trivial)
	register(NSpaceSelf, "space_self", Trivial)
	register(NClockGet, "clock_get", Trivial)
	register(NCPUSelf, "cpu_self", Trivial)
	register(NAPIVersion, "api_version", Trivial)
	register(NThreadPrioritySelf, "thread_priority_self", Trivial)
	register(NPerfRead, "perf_read", Trivial)

	for t := ObjType(0); t < NumObjTypes; t++ {
		for op := CommonOp(0); op < NumCommonOps; op++ {
			register(CommonOpNum(t, op), fmt.Sprintf("%s_%s", t, op), Short)
		}
	}

	register(NMutexTrylock, "mutex_trylock", Short)
	register(NMutexUnlock, "mutex_unlock", Short)
	register(NCondSignal, "cond_signal", Short)
	register(NCondBroadcast, "cond_broadcast", Short)
	register(NThreadInterrupt, "thread_interrupt", Short)
	register(NThreadStop, "thread_stop", Short)
	register(NThreadResume, "thread_resume", Short)
	register(NThreadSetPriority, "thread_set_priority", Short)
	register(NSchedYield, "sched_yield", Short)
	register(NRegionProtect, "region_protect", Short)
	register(NPortsetAdd, "portset_add", Short)
	register(NPortsetRemove, "portset_remove", Short)
	register(NMemAllocate, "mem_allocate", Short)
	register(NMemFree, "mem_free", Short)

	register(NMutexLock, "mutex_lock", Long)
	register(NThreadWait, "thread_wait", Long)
	register(NThreadSleep, "thread_sleep", Long)
	register(NThreadSuspendSelf, "thread_suspend_self", Long)
	register(NClockAlarmWait, "clock_alarm_wait", Long)
	register(NIRQWait, "irq_wait", Long)
	register(NPortsetWait, "portset_wait", Long)
	register(NSpaceReapWait, "space_reap_wait", Long)

	register(NCondWait, "cond_wait", MultiStage)
	register(NRegionSearch, "region_search", MultiStage)
	register(NIPCClientConnectSend, "ipc_client_connect_send", MultiStage)
	register(NIPCClientConnectSendOverReceive, "ipc_client_connect_send_over_receive", MultiStage)
	register(NIPCClientSend, "ipc_client_send", MultiStage)
	register(NIPCClientSendOverReceive, "ipc_client_send_over_receive", MultiStage)
	register(NIPCClientOverReceive, "ipc_client_over_receive", MultiStage)
	register(NIPCClientReceive, "ipc_client_receive", MultiStage)
	register(NIPCClientDisconnect, "ipc_client_disconnect", MultiStage)
	register(NIPCClientAlert, "ipc_client_alert", MultiStage)
	register(NIPCSetupWait, "ipc_setup_wait", MultiStage)
	register(NIPCServerReceive, "ipc_server_receive", MultiStage)
	register(NIPCServerOverReceive, "ipc_server_over_receive", MultiStage)
	register(NIPCServerSend, "ipc_server_send", MultiStage)
	register(NIPCServerSendOverReceive, "ipc_server_send_over_receive", MultiStage)
	register(NIPCServerAckSend, "ipc_server_ack_send", MultiStage)
	register(NIPCServerAckSendOverReceive, "ipc_server_ack_send_over_receive", MultiStage)
	register(NIPCServerAckSendWaitReceive, "ipc_server_ack_send_wait_receive", MultiStage)
	register(NIPCServerDisconnect, "ipc_server_disconnect", MultiStage)
	register(NIPCReply, "ipc_reply", MultiStage)
	register(NIPCReplyWaitReceive, "ipc_reply_wait_receive", MultiStage)
	register(NIPCSendOneway, "ipc_send_oneway", MultiStage)
	register(NIPCWaitReceive, "ipc_wait_receive", MultiStage)

	for i, in := range table {
		if in.Name == "" {
			panic(fmt.Sprintf("sys: syscall %d unregistered", i))
		}
	}
}

// Lookup returns the table entry for a syscall number.
func Lookup(num int) (Info, bool) {
	if num < 0 || num >= NumSyscalls {
		return Info{}, false
	}
	return table[num], true
}

// Name returns the syscall's name, or "sys<num>".
func Name(num int) string {
	if in, ok := Lookup(num); ok {
		return in.Name
	}
	return fmt.Sprintf("sys%d", num)
}

// All returns a copy of the full syscall table in numeric order.
func All() []Info {
	out := make([]Info, NumSyscalls)
	copy(out[:], table[:])
	return out
}

// CountByCategory returns the number of syscalls per category — the
// paper's Table 1 row values.
func CountByCategory() map[Category]int {
	m := make(map[Category]int, 4)
	for _, in := range table {
		m[in.Cat]++
	}
	return m
}

// KErr is a kernel-internal result code, used only between syscall
// handlers and the dispatch/execution layer. These codes are never seen by
// user code: "Return values in the kernel are only used for kernel-internal
// exception processing; results intended to be seen by user code are
// returned by modifying the thread's saved user-mode register state"
// (paper §5.1).
type KErr uint8

const (
	// KOK: the handler completed (successfully or with a user-visible
	// error already written to the register save area).
	KOK KErr = iota
	// KWouldBlock: the thread has been placed on a wait queue with its
	// user register state rolled forward to a consistent restart point.
	// The dispatch layer unwinds; the registers are the continuation.
	KWouldBlock
	// KPreempted: the thread hit a preemption point with its registers
	// rolled forward; it remains runnable but the kernel stack unwinds
	// so a higher-priority thread can run.
	KPreempted
	// KFault: the handler touched unmapped user memory. The faulting
	// address and access are recorded in the thread; registers are
	// rolled forward so the operation restarts cleanly after the fault
	// is remedied.
	KFault
	// KDead: the current thread was destroyed during the call.
	KDead
	// KIntr: a pending thread_interrupt was consumed at a block point;
	// the dispatch layer completes the call with EINTR. The registers
	// name a valid restart point, so user code may simply retry.
	KIntr
)

func (e KErr) String() string {
	switch e {
	case KOK:
		return "KOK"
	case KWouldBlock:
		return "KWouldBlock"
	case KPreempted:
		return "KPreempted"
	case KFault:
		return "KFault"
	case KDead:
		return "KDead"
	case KIntr:
		return "KIntr"
	}
	return fmt.Sprintf("KErr(%d)", uint8(e))
}

// Errno is a user-visible system call result, returned in R0.
type Errno uint32

const (
	// EOK: success.
	EOK Errno = iota
	// EINVAL: bad argument.
	EINVAL
	// ESRCH: no object of the required type at the given handle address.
	ESRCH
	// EFAULT: unresolvable (fatal) memory fault on a syscall argument.
	EFAULT
	// ENOMEM: out of physical memory.
	ENOMEM
	// EINTR: the operation was interrupted by thread_interrupt; the
	// registers name the restart point, so the caller may simply retry.
	EINTR
	// EWOULDBLOCK: a non-blocking attempt (mutex_trylock) failed.
	EWOULDBLOCK
	// ESTATE: object in the wrong state for the operation.
	ESTATE
	// ENOTCONN: IPC operation without an established connection.
	ENOTCONN
	// ECONN: already connected.
	ECONN
	// EDEAD: peer thread or object died during the operation.
	EDEAD
	// EPERM: operation not permitted.
	EPERM
	// EBUSY: object busy (e.g., destroying a mutex with waiters).
	EBUSY
	// ENOTFOUND: region_search found nothing in the given range.
	ENOTFOUND
)

func (e Errno) String() string {
	names := [...]string{
		"EOK", "EINVAL", "ESRCH", "EFAULT", "ENOMEM", "EINTR",
		"EWOULDBLOCK", "ESTATE", "ENOTCONN", "ECONN", "EDEAD", "EPERM",
		"EBUSY", "ENOTFOUND",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("Errno(%d)", uint32(e))
}

// APIVersionValue is returned by the api_version trivial syscall.
const APIVersionValue = 0x0F_1999 // Fluke '99
