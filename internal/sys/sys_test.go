package sys

import (
	"strings"
	"testing"
)

// TestTable1Counts pins the API inventory to the paper's Table 1:
// 8 trivial, 68 short, 8 long, 23 multi-stage, 107 total.
func TestTable1Counts(t *testing.T) {
	c := CountByCategory()
	want := map[Category]int{Trivial: 8, Short: 68, Long: 8, MultiStage: 23}
	for cat, n := range want {
		if c[cat] != n {
			t.Errorf("%v count = %d, want %d", cat, c[cat], n)
		}
	}
	if NumSyscalls != 107 {
		t.Errorf("NumSyscalls = %d, want 107", NumSyscalls)
	}
	total := 0
	for _, n := range c {
		total += n
	}
	if total != NumSyscalls {
		t.Errorf("sum of categories = %d, want %d", total, NumSyscalls)
	}
}

func TestTable1Percentages(t *testing.T) {
	// Paper: 7% / 64% / 7% / 22%.
	c := CountByCategory()
	pct := func(n int) int { return (n*100 + NumSyscalls/2) / NumSyscalls }
	if p := pct(c[Trivial]); p != 7 {
		t.Errorf("trivial %% = %d, want 7", p)
	}
	if p := pct(c[Short]); p != 64 {
		t.Errorf("short %% = %d, want 64", p)
	}
	if p := pct(c[Long]); p != 7 {
		t.Errorf("long %% = %d, want 7", p)
	}
	if p := pct(c[MultiStage]); p != 21 && p != 22 {
		t.Errorf("multi-stage %% = %d, want ~22", p)
	}
}

func TestAllNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]int{}
	for _, in := range All() {
		if in.Name == "" {
			t.Fatalf("syscall %d has empty name", in.Num)
		}
		if prev, dup := seen[in.Name]; dup {
			t.Fatalf("name %q used by %d and %d", in.Name, prev, in.Num)
		}
		seen[in.Name] = in.Num
	}
}

func TestCommonOpNumRoundTrip(t *testing.T) {
	for ot := ObjType(0); ot < NumObjTypes; ot++ {
		for op := CommonOp(0); op < NumCommonOps; op++ {
			n := CommonOpNum(ot, op)
			gt, gop, ok := CommonOpOf(n)
			if !ok || gt != ot || gop != op {
				t.Fatalf("CommonOpOf(CommonOpNum(%v,%v)) = %v,%v,%v", ot, op, gt, gop, ok)
			}
			in, _ := Lookup(n)
			if in.Cat != Short {
				t.Fatalf("common op %s is %v, want Short", in.Name, in.Cat)
			}
		}
	}
	if _, _, ok := CommonOpOf(NNull); ok {
		t.Fatal("CommonOpOf accepted a trivial call")
	}
	if _, _, ok := CommonOpOf(NMutexLock); ok {
		t.Fatal("CommonOpOf accepted a long call")
	}
}

func TestPaperExampleCategories(t *testing.T) {
	// Table 1's example rows.
	cases := []struct {
		num  int
		name string
		cat  Category
	}{
		{NThreadSelf, "thread_self", Trivial},
		{NMutexTrylock, "mutex_trylock", Short},
		{NMutexLock, "mutex_lock", Long},
		{NCondWait, "cond_wait", MultiStage},
		{NRegionSearch, "region_search", MultiStage},
		{NIPCClientConnectSend, "ipc_client_connect_send", MultiStage},
	}
	for _, c := range cases {
		in, ok := Lookup(c.num)
		if !ok || in.Name != c.name || in.Cat != c.cat {
			t.Errorf("syscall %d = %+v, want %s/%v", c.num, in, c.name, c.cat)
		}
	}
}

func TestAllMultiStageAreIPCExceptCondWaitAndRegionSearch(t *testing.T) {
	// Paper §4.2: "Except for cond_wait and region_search ... all of the
	// multi-stage calls in the Fluke API are IPC-related."
	for _, in := range All() {
		if in.Cat != MultiStage {
			continue
		}
		if in.Name == "cond_wait" || in.Name == "region_search" {
			continue
		}
		if !strings.HasPrefix(in.Name, "ipc_") {
			t.Errorf("multi-stage syscall %q is not IPC-related", in.Name)
		}
	}
}

func TestLookupBounds(t *testing.T) {
	if _, ok := Lookup(-1); ok {
		t.Fatal("Lookup(-1) ok")
	}
	if _, ok := Lookup(NumSyscalls); ok {
		t.Fatal("Lookup(NumSyscalls) ok")
	}
	if Name(-5) != "sys-5" {
		t.Fatalf("Name(-5) = %q", Name(-5))
	}
}

func TestObjTypeStringsAndDescriptions(t *testing.T) {
	for ot := ObjType(0); ot < NumObjTypes; ot++ {
		if ot.String() == "" || strings.HasPrefix(ot.String(), "objtype") {
			t.Errorf("ObjType %d has no name", ot)
		}
		if ObjTypeDescriptions[ot] == "" {
			t.Errorf("ObjType %v has no description", ot)
		}
	}
}

func TestKErrAndErrnoStrings(t *testing.T) {
	for e := KErr(0); e <= KIntr; e++ {
		if strings.HasPrefix(e.String(), "KErr(") {
			t.Errorf("KErr %d unnamed", e)
		}
	}
	for e := Errno(0); e <= ENOTFOUND; e++ {
		if strings.HasPrefix(e.String(), "Errno(") {
			t.Errorf("Errno %d unnamed", e)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Trivial.String() != "Trivial" || MultiStage.String() != "Multi-stage" {
		t.Fatal("category names wrong")
	}
}
