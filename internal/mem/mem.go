// Package mem implements the simulated physical memory substrate: a
// page-frame allocator with accounting, used by the MMU to back regions and
// by the kernel to charge per-object memory overhead (paper Table 7).
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the simulated page size in bytes (4 KB, as on the x86 the
// paper evaluated on).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

// ErrNoMemory is returned when the allocator is exhausted.
var ErrNoMemory = errors.New("mem: out of physical memory")

// Frame is one physical page frame. The Data slice is the frame's contents;
// it is always exactly PageSize bytes.
//
// Gen is the frame's store-generation counter: every writer of Data must
// bump it (the MMU store paths do; DMA engines and other host-side writers
// call Bump). Derived caches of frame *contents* — the decoded-instruction
// cache — validate against Gen, so a stale decode can never be executed.
// Gen is simulator bookkeeping only and never feeds virtual time.
//
// Refs is the frame's reference count: the number of region slots holding
// the frame. Alloc hands out frames with Refs == 1; zero-copy IPC raises it
// via Allocator.Share, and Free only recycles the frame once the count
// drops back to zero.
//
// Cow marks a frame whose cached translations have been write-protected
// because it is (or recently was) shared: a store through any mapping of a
// Cow frame must fault so the MMU can break the share (or, once Refs has
// dropped back to 1, simply restore write permission). The flag is owned
// by the MMU layer; mem only clears it on recycle.
type Frame struct {
	PFN  uint32 // physical frame number, unique per allocator
	Gen  uint64 // store generation; bumped on every write to Data
	Refs int32  // region slots holding this frame; 0 = on the free list
	Cow  bool   // stores must fault so the share can be broken
	Data []byte
}

// Bump invalidates content caches derived from this frame. Writers that
// mutate Data directly (rather than through the MMU) must call it.
func (f *Frame) Bump() { f.Gen++ }

// Shared reports whether more than one region slot holds the frame.
func (f *Frame) Shared() bool { return f.Refs > 1 }

// Allocator hands out page frames from a fixed-size simulated physical
// memory, modelling the 64 MB machine of the paper's evaluation by default.
type Allocator struct {
	limit   int // max frames
	nextPFN uint32
	free    []*Frame
	inUse   int
	peak    int
}

// DefaultFrames is the default physical memory size: 64 MB, matching the
// 200 MHz Pentium Pro / 64 MB testbed in the paper.
const DefaultFrames = 64 << 20 / PageSize

// NewAllocator returns an allocator that will hand out at most maxFrames
// frames. maxFrames <= 0 selects DefaultFrames.
func NewAllocator(maxFrames int) *Allocator {
	if maxFrames <= 0 {
		maxFrames = DefaultFrames
	}
	return &Allocator{limit: maxFrames}
}

// Alloc returns a zeroed page frame, or ErrNoMemory when the configured
// physical memory is exhausted.
func (a *Allocator) Alloc() (*Frame, error) {
	if n := len(a.free); n > 0 {
		f := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		clear(f.Data)
		f.Bump() // recycled frame: contents changed, derived decodes are stale
		f.Refs = 1
		f.Cow = false
		a.inUse++
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		return f, nil
	}
	if a.inUse >= a.limit {
		return nil, ErrNoMemory
	}
	f := &Frame{PFN: a.nextPFN, Refs: 1, Data: make([]byte, PageSize)}
	a.nextPFN++
	a.inUse++
	if a.inUse > a.peak {
		a.peak = a.inUse
	}
	return f, nil
}

// Share raises f's reference count: one more region slot now holds the
// frame. Sharing a frame that is not live (already on the free list, or
// never allocated) is a programming error and panics with the frame's
// identity.
func (a *Allocator) Share(f *Frame) {
	if f == nil || f.Refs < 1 {
		panic(fmt.Sprintf("mem: share of dead frame %s", frameID(f)))
	}
	f.Refs++
}

// Unshare drops one reference from a frame that remains live afterwards.
// It is Free restricted to the Refs > 1 case: callers who know they are
// releasing a shared duplicate (and must not recycle the frame) use it to
// make that invariant explicit.
func (a *Allocator) Unshare(f *Frame) {
	if f == nil || f.Refs < 2 {
		panic(fmt.Sprintf("mem: unshare of unshared frame %s", frameID(f)))
	}
	f.Refs--
}

// Free drops one reference to a frame and recycles it once the count
// reaches zero. Freeing nil is a no-op; freeing a frame whose count is
// already zero (a double free, or an underflowing unshare) is a
// programming error and panics with the frame's identity.
func (a *Allocator) Free(f *Frame) {
	if f == nil {
		return
	}
	if f.Refs < 1 {
		panic(fmt.Sprintf("mem: double free of frame %s", frameID(f)))
	}
	f.Refs--
	if f.Refs > 0 {
		return
	}
	a.inUse--
	a.free = append(a.free, f)
}

// frameID renders a frame's identity for allocator panics.
func frameID(f *Frame) string {
	if f == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%d (refs=%d, gen=%d)", f.PFN, f.Refs, f.Gen)
}

// InUse returns the number of frames currently allocated.
func (a *Allocator) InUse() int { return a.inUse }

// Peak returns the high-water mark of allocated frames.
func (a *Allocator) Peak() int { return a.peak }

// Limit returns the total number of allocatable frames.
func (a *Allocator) Limit() int { return a.limit }

// BytesInUse returns allocated bytes.
func (a *Allocator) BytesInUse() int { return a.inUse * PageSize }

// PageRound rounds n up to the next page boundary.
func PageRound(n uint32) uint32 {
	return (n + PageMask) &^ uint32(PageMask)
}

// PageTrunc rounds n down to a page boundary.
func PageTrunc(n uint32) uint32 {
	return n &^ uint32(PageMask)
}

// VPN returns the virtual page number of an address.
func VPN(va uint32) uint32 { return va >> PageShift }
