// Package mem implements the simulated physical memory substrate: a
// page-frame allocator with accounting, used by the MMU to back regions and
// by the kernel to charge per-object memory overhead (paper Table 7).
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the simulated page size in bytes (4 KB, as on the x86 the
// paper evaluated on).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

// ErrNoMemory is returned when the allocator is exhausted.
var ErrNoMemory = errors.New("mem: out of physical memory")

// Frame is one physical page frame. The Data slice is the frame's contents;
// it is always exactly PageSize bytes.
//
// Gen is the frame's store-generation counter: every writer of Data must
// bump it (the MMU store paths do; DMA engines and other host-side writers
// call Bump). Derived caches of frame *contents* — the decoded-instruction
// cache — validate against Gen, so a stale decode can never be executed.
// Gen is simulator bookkeeping only and never feeds virtual time.
type Frame struct {
	PFN  uint32 // physical frame number, unique per allocator
	Gen  uint64 // store generation; bumped on every write to Data
	Data []byte
}

// Bump invalidates content caches derived from this frame. Writers that
// mutate Data directly (rather than through the MMU) must call it.
func (f *Frame) Bump() { f.Gen++ }

// Allocator hands out page frames from a fixed-size simulated physical
// memory, modelling the 64 MB machine of the paper's evaluation by default.
type Allocator struct {
	limit   int // max frames
	nextPFN uint32
	free    []*Frame
	inUse   int
	peak    int
}

// DefaultFrames is the default physical memory size: 64 MB, matching the
// 200 MHz Pentium Pro / 64 MB testbed in the paper.
const DefaultFrames = 64 << 20 / PageSize

// NewAllocator returns an allocator that will hand out at most maxFrames
// frames. maxFrames <= 0 selects DefaultFrames.
func NewAllocator(maxFrames int) *Allocator {
	if maxFrames <= 0 {
		maxFrames = DefaultFrames
	}
	return &Allocator{limit: maxFrames}
}

// Alloc returns a zeroed page frame, or ErrNoMemory when the configured
// physical memory is exhausted.
func (a *Allocator) Alloc() (*Frame, error) {
	if n := len(a.free); n > 0 {
		f := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		clear(f.Data)
		f.Bump() // recycled frame: contents changed, derived decodes are stale
		a.inUse++
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		return f, nil
	}
	if a.inUse >= a.limit {
		return nil, ErrNoMemory
	}
	f := &Frame{PFN: a.nextPFN, Data: make([]byte, PageSize)}
	a.nextPFN++
	a.inUse++
	if a.inUse > a.peak {
		a.peak = a.inUse
	}
	return f, nil
}

// Free returns a frame to the allocator. Freeing nil is a no-op; freeing a
// frame twice is a programming error and panics.
func (a *Allocator) Free(f *Frame) {
	if f == nil {
		return
	}
	for _, g := range a.free {
		if g == f {
			panic(fmt.Sprintf("mem: double free of frame %d", f.PFN))
		}
	}
	a.inUse--
	a.free = append(a.free, f)
}

// InUse returns the number of frames currently allocated.
func (a *Allocator) InUse() int { return a.inUse }

// Peak returns the high-water mark of allocated frames.
func (a *Allocator) Peak() int { return a.peak }

// Limit returns the total number of allocatable frames.
func (a *Allocator) Limit() int { return a.limit }

// BytesInUse returns allocated bytes.
func (a *Allocator) BytesInUse() int { return a.inUse * PageSize }

// PageRound rounds n up to the next page boundary.
func PageRound(n uint32) uint32 {
	return (n + PageMask) &^ uint32(PageMask)
}

// PageTrunc rounds n down to a page boundary.
func PageTrunc(n uint32) uint32 {
	return n &^ uint32(PageMask)
}

// VPN returns the virtual page number of an address.
func VPN(va uint32) uint32 { return va >> PageShift }
