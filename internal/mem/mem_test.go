package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocZeroed(t *testing.T) {
	a := NewAllocator(4)
	f, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data) != PageSize {
		t.Fatalf("frame size %d, want %d", len(f.Data), PageSize)
	}
	for i, b := range f.Data {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestReuseIsZeroed(t *testing.T) {
	a := NewAllocator(1)
	f, _ := a.Alloc()
	f.Data[17] = 0xAB
	a.Free(f)
	g, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[17] != 0 {
		t.Fatal("reused frame not zeroed")
	}
}

func TestExhaustion(t *testing.T) {
	a := NewAllocator(2)
	f1, _ := a.Alloc()
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err != ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	a.Free(f1)
	if _, err := a.Alloc(); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestAccounting(t *testing.T) {
	a := NewAllocator(8)
	var frames []*Frame
	for i := 0; i < 5; i++ {
		f, _ := a.Alloc()
		frames = append(frames, f)
	}
	if a.InUse() != 5 || a.Peak() != 5 {
		t.Fatalf("InUse=%d Peak=%d, want 5 5", a.InUse(), a.Peak())
	}
	a.Free(frames[0])
	a.Free(frames[1])
	if a.InUse() != 3 || a.Peak() != 5 {
		t.Fatalf("InUse=%d Peak=%d, want 3 5", a.InUse(), a.Peak())
	}
	if a.BytesInUse() != 3*PageSize {
		t.Fatalf("BytesInUse=%d", a.BytesInUse())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewAllocator(2)
	f, _ := a.Alloc()
	a.Free(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(f)
}

func TestUniquePFNs(t *testing.T) {
	a := NewAllocator(16)
	seen := map[uint32]bool{}
	for i := 0; i < 16; i++ {
		f, _ := a.Alloc()
		if seen[f.PFN] {
			t.Fatalf("duplicate PFN %d", f.PFN)
		}
		seen[f.PFN] = true
	}
}

func TestDefaultSize(t *testing.T) {
	a := NewAllocator(0)
	if a.Limit() != DefaultFrames {
		t.Fatalf("Limit=%d, want %d", a.Limit(), DefaultFrames)
	}
	if DefaultFrames*PageSize != 64<<20 {
		t.Fatal("DefaultFrames is not 64MB")
	}
}

func TestPageRoundTrunc(t *testing.T) {
	cases := []struct{ in, round, trunc uint32 }{
		{0, 0, 0},
		{1, PageSize, 0},
		{PageSize, PageSize, PageSize},
		{PageSize + 1, 2 * PageSize, PageSize},
		{3*PageSize - 1, 3 * PageSize, 2 * PageSize},
	}
	for _, c := range cases {
		if got := PageRound(c.in); got != c.round {
			t.Errorf("PageRound(%d)=%d want %d", c.in, got, c.round)
		}
		if got := PageTrunc(c.in); got != c.trunc {
			t.Errorf("PageTrunc(%d)=%d want %d", c.in, got, c.trunc)
		}
	}
}

// Property: PageTrunc(v) <= v < PageTrunc(v)+PageSize and VPN consistent.
func TestPropertyPageMath(t *testing.T) {
	f := func(v uint32) bool {
		tr := PageTrunc(v)
		return tr <= v && (v-tr) < PageSize && VPN(v) == tr>>PageShift
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: alloc/free in any pattern keeps InUse == allocs-frees and never
// exceeds the limit.
func TestPropertyAllocFreePattern(t *testing.T) {
	f := func(ops []bool) bool {
		a := NewAllocator(32)
		var live []*Frame
		for _, alloc := range ops {
			if alloc {
				fr, err := a.Alloc()
				if err != nil {
					if len(live) != 32 {
						return false
					}
					continue
				}
				live = append(live, fr)
			} else if len(live) > 0 {
				a.Free(live[len(live)-1])
				live = live[:len(live)-1]
			}
			if a.InUse() != len(live) || a.InUse() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Shared frames are recycled only when the last reference is dropped, and
// InUse counts frames, not references.
func TestShareRefcount(t *testing.T) {
	a := NewAllocator(4)
	f, _ := a.Alloc()
	if f.Refs != 1 || f.Shared() {
		t.Fatalf("fresh frame Refs=%d Shared=%v, want 1 false", f.Refs, f.Shared())
	}
	a.Share(f)
	a.Share(f)
	if f.Refs != 3 || !f.Shared() {
		t.Fatalf("Refs=%d Shared=%v after two shares, want 3 true", f.Refs, f.Shared())
	}
	if a.InUse() != 1 {
		t.Fatalf("InUse=%d, want 1 (refs are not frames)", a.InUse())
	}
	f.Data[3] = 0x5a
	a.Unshare(f)
	a.Free(f)
	if f.Refs != 1 || a.InUse() != 1 {
		t.Fatalf("Refs=%d InUse=%d after dropping two refs, want 1 1", f.Refs, a.InUse())
	}
	if f.Data[3] != 0x5a {
		t.Fatal("dropping a shared reference must not clear the frame")
	}
	a.Free(f)
	if f.Refs != 0 || a.InUse() != 0 {
		t.Fatalf("Refs=%d InUse=%d after final free, want 0 0", f.Refs, a.InUse())
	}
	g, _ := a.Alloc()
	if g != f {
		t.Fatal("frame not recycled after last reference dropped")
	}
	if g.Refs != 1 || g.Cow || g.Data[3] != 0 {
		t.Fatalf("recycled frame Refs=%d Cow=%v Data[3]=%d, want 1 false 0",
			g.Refs, g.Cow, g.Data[3])
	}
}

// Share and Unshare on frames in invalid states panic with the frame's
// identity rather than corrupting the count.
func TestShareUnsharePanics(t *testing.T) {
	a := NewAllocator(2)
	f, _ := a.Alloc()

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Unshare of unshared frame", func() { a.Unshare(f) })
	a.Free(f)
	mustPanic("Share of freed frame", func() { a.Share(f) })
	mustPanic("Unshare of freed frame", func() { a.Unshare(f) })
	mustPanic("Share of nil", func() { a.Share(nil) })
}

// A double free by way of refcount underflow reports the frame identity.
func TestDoubleFreeMentionsFrame(t *testing.T) {
	a := NewAllocator(2)
	f, _ := a.Alloc()
	f.PFN = 0 // deterministic identity
	a.Free(f)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double free did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "frame 0") {
			t.Fatalf("panic %v does not identify the frame", r)
		}
	}()
	a.Free(f)
}
