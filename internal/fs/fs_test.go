package fs_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// --- Format unit tests (host-side, no kernel). ---

func mkDevice(t *testing.T, sectors int) *dev.BlockDevice {
	t.Helper()
	return dev.New(clock.New(), mem.NewAllocator(64), sectors,
		mmu.NewRegion(mem.PageSize, true), 1, func() {})
}

func TestFormatLayout(t *testing.T) {
	d := mkDevice(t, 64)
	files := []fs.File{
		{Name: "hello.txt", Data: []byte("hello, fluke")},
		{Name: "big.bin", Data: bytes.Repeat([]byte{7}, 1500)}, // 3 sectors
	}
	idx, err := fs.Format(d, files)
	if err != nil {
		t.Fatal(err)
	}
	if idx["hello.txt"] != 0 || idx["big.bin"] != 1 {
		t.Fatalf("index map %v", idx)
	}
	super := d.ReadMedium(0, 16)
	if binary.LittleEndian.Uint32(super) != fs.Magic {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(super[4:]) != 2 {
		t.Fatal("bad file count")
	}
	table := d.ReadMedium(1, dev.SectorSize)
	if string(table[:9]) != "hello.txt" {
		t.Fatalf("entry 0 name %q", table[:9])
	}
	start0 := binary.LittleEndian.Uint32(table[16:])
	size0 := binary.LittleEndian.Uint32(table[20:])
	if start0 != 2 || size0 != 12 {
		t.Fatalf("entry 0 start=%d size=%d", start0, size0)
	}
	start1 := binary.LittleEndian.Uint32(table[32+16:])
	if start1 != 3 { // hello.txt used one sector
		t.Fatalf("entry 1 start=%d", start1)
	}
	if got := fs.ReadImage(d, start1, 1500); !bytes.Equal(got, files[1].Data) {
		t.Fatal("big.bin data corrupted")
	}
}

func TestFormatLimits(t *testing.T) {
	d := mkDevice(t, 8)
	var many []fs.File
	for i := 0; i < fs.MaxFiles+1; i++ {
		many = append(many, fs.File{Name: "f", Data: []byte{1}})
	}
	if _, err := fs.Format(d, many); err == nil {
		t.Fatal("too many files accepted")
	}
	if _, err := fs.Format(d, []fs.File{{Name: "", Data: nil}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := fs.Format(d, []fs.File{{Name: "x", Data: bytes.Repeat([]byte{1}, 8*dev.SectorSize)}}); err == nil {
		t.Fatal("overfull medium accepted")
	}
}

// --- Full-stack integration: client -> FS server -> driver -> device. ---

const (
	cliCode = 0x0001_0000
	cliData = 0x0004_0000
)

// buildStack assembles kernel + device + driver + fs server + one client
// space, returning the client ref and read helper addresses.
func buildStack(t *testing.T, cfg core.Config, files []fs.File) (*core.Kernel, *obj.Space, uint32, *fs.Server, *dev.Driver) {
	t.Helper()
	k := core.New(cfg)
	dr, err := dev.Attach(k, 64, 5, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Format(dr.Device, files); err != nil {
		t.Fatal(err)
	}
	sv, err := fs.AttachServer(k, dr, 20)
	if err != nil {
		t.Fatal(err)
	}
	cs := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(8*mem.PageSize, true)}
	k.BindFresh(cs, data)
	if _, err := k.MapInto(cs, data, cliData, 0, 8*mem.PageSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	refVA := sv.ClientRef(k, cs)
	return k, cs, refVA, sv, dr
}

// readProgram builds a client that reads (fileIdx, fileSector) and halts.
func readProgram(refVA, fileIdx, fileSector uint32) *prog.Builder {
	const (
		req = cliData + 0x100
		rep = cliData + 0x1000
	)
	b := prog.New(cliCode)
	b.Movi(4, req).Movi(5, fileIdx).St(4, 0, 5).
		Movi(5, fileSector).St(4, 4, 5).
		IPCClientConnectSendOverReceive(req, 2, refVA, rep, dev.SectorSize/4).
		Movi(6, cliData).St(6, 0, 0). // errno
		St(6, 4, 2).                  // words NOT received (R2 leftover)
		IPCClientDisconnect().
		Halt()
	return b
}

func TestFSReadThroughTwoServers(t *testing.T) {
	content := bytes.Repeat([]byte("fluke!"), 300) // 1800 bytes, 4 sectors
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			k, cs, refVA, sv, dr := buildStack(t, cfg, []fs.File{
				{Name: "readme", Data: []byte("hi")},
				{Name: "blob", Data: content},
			})
			_ = sv
			// Read sector 2 of file 1.
			b := readProgram(refVA, 1, 2)
			client, err := k.SpawnProgram(cs, cliCode, b.MustAssemble(), 10)
			if err != nil {
				t.Fatal(err)
			}
			k.RunFor(4_000_000_000)
			if !client.Exited {
				t.Fatalf("client stuck: state=%v pc=%#x fs=%v/%#x drv=%v/%#x",
					client.State, client.Regs.PC,
					sv.Thread.State, sv.Thread.Regs.PC,
					dr.Thread.State, dr.Thread.Regs.PC)
			}
			got, err := k.ReadMem(cs, cliData+0x1000, dev.SectorSize)
			if err != nil {
				t.Fatal(err)
			}
			want := content[2*dev.SectorSize : 3*dev.SectorSize]
			if !bytes.Equal(got, want) {
				t.Fatalf("file data wrong: got %q... want %q...", got[:12], want[:12])
			}
			// Two boot fetches + one data fetch.
			if dr.Device.Reads != 3 {
				t.Fatalf("device reads = %d, want 3", dr.Device.Reads)
			}
		})
	}
}

func TestFSErrorReplies(t *testing.T) {
	k, cs, refVA, _, _ := buildStack(t, core.Config{Model: core.ModelInterrupt}, []fs.File{
		{Name: "one", Data: []byte("x")},
	})
	cases := []struct {
		name     string
		idx, sec uint32
		want     uint32
	}{
		{"bad index", 5, 0, fs.ErrBadIndex},
		{"beyond eof", 0, 9, fs.ErrBadEOF},
	}
	base := uint32(cliCode)
	for _, c := range cases {
		b := readProgram(refVA, c.idx, c.sec)
		bb := prog.New(base)
		_ = bb
		img := b.MustAssemble()
		// Load each client at a distinct base is unnecessary: reuse the
		// same base with fresh threads sequentially.
		if _, err := k.LoadImage(cs, base, img); err != nil {
			// Already mapped from a previous iteration: overwrite.
			if err2 := k.WriteMem(cs, base, img); err2 != nil {
				t.Fatal(err, err2)
			}
		}
		th := k.NewThread(cs, 10)
		th.Regs.PC = base
		k.StartThread(th)
		k.RunFor(2_000_000_000)
		if !th.Exited {
			t.Fatalf("%s: client stuck", c.name)
		}
		got, err := k.ReadMem(cs, cliData+0x1000, 4)
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint32(got); v != c.want {
			t.Fatalf("%s: reply %#x, want %#x", c.name, v, c.want)
		}
	}
}

func TestFSWholeFileSweep(t *testing.T) {
	// Read every sector of a multi-sector file and reassemble it.
	content := make([]byte, 3*dev.SectorSize+100)
	for i := range content {
		content[i] = byte(i * 7)
	}
	k, cs, refVA, _, _ := buildStack(t, core.Config{Model: core.ModelProcess, Preempt: core.PreemptFull},
		[]fs.File{{Name: "sweep", Data: content}})
	sectors := (len(content) + dev.SectorSize - 1) / dev.SectorSize
	var got []byte
	for sct := 0; sct < sectors; sct++ {
		b := readProgram(refVA, 0, uint32(sct))
		img := b.MustAssemble()
		if _, err := k.LoadImage(cs, cliCode, img); err != nil {
			if err2 := k.WriteMem(cs, cliCode, img); err2 != nil {
				t.Fatal(err, err2)
			}
		}
		th := k.NewThread(cs, 10)
		th.Regs.PC = cliCode
		k.StartThread(th)
		k.RunFor(2_000_000_000)
		if !th.Exited {
			t.Fatalf("sector %d: client stuck", sct)
		}
		chunk, err := k.ReadMem(cs, cliData+0x1000, dev.SectorSize)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got[:len(content)], content) {
		t.Fatal("reassembled file differs")
	}
}
