package fs

import (
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// FS-server guest layout.
const (
	fsCode = 0x0001_0000
	fsData = 0x0004_0000

	fsSB   = fsData + 0x0000 // superblock buffer (512 B)
	fsTab  = fsData + 0x0200 // file-table buffer (512 B)
	fsDat  = fsData + 0x0400 // data sector buffer (512 B)
	fsReq  = fsData + 0x0600 // inbound request (2 words)
	fsReq2 = fsData + 0x0610 // outbound driver request (1 word)
	fsErr  = fsData + 0x0620 // error reply word
	fsNF   = fsData + 0x0630 // cached file count
	fsSec  = fsData + 0x0640 // fetch parameter: sector
	fsDst  = fsData + 0x0644 // fetch parameter: destination buffer
	fsLR   = fsData + 0x0648 // saved link register across fetch
)

// Server is an attached filesystem service.
type Server struct {
	Thread *obj.Thread
	Space  *obj.Space
	Port   *obj.Port
}

// AttachServer starts the filesystem server on kernel k, serving the BFS
// volume behind the given disk driver. The server boots by fetching the
// superblock and file table through the driver, then serves read RPCs:
// request = [file index, sector-in-file], reply = 128 words of data or a
// single error word.
func AttachServer(k *core.Kernel, driver *dev.Driver, priority int) (*Server, error) {
	s := k.NewSpace()
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(4*mem.PageSize, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, fsData, 0, 4*mem.PageSize, mmu.PermRW); err != nil {
		return nil, err
	}
	// Pre-touch the working page so server replies never fault.
	if err := k.WriteMem(s, fsData, make([]byte, 0x700)); err != nil {
		return nil, err
	}
	drvRef := driver.ClientRef(k, s)

	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port := po.(*obj.Port)
	ps := pso.(*obj.Portset)
	k.BindFresh(s, port)
	psVA := k.BindFresh(s, ps)
	ps.AddPort(port)

	b := ServerProgram(psVA, drvRef)
	th, err := k.SpawnProgram(s, fsCode, b.MustAssemble(), priority)
	if err != nil {
		return nil, err
	}
	return &Server{Thread: th, Space: s, Port: port}, nil
}

// ClientRef binds a Reference to the FS port into a client space.
func (sv *Server) ClientRef(k *core.Kernel, client *obj.Space) uint32 {
	ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: sv.Port}
	return k.BindFresh(client, ref)
}

// ServerProgram builds the filesystem server. It is the largest guest
// program in the repository and a faithful multi-server citizen: its
// *server* half holds the client connection while its *client* half runs
// driver RPCs.
func ServerProgram(psVA, drvRef uint32) *prog.Builder {
	b := prog.New(fsCode)

	// --- boot: superblock, then file table ---
	b.Jmp("boot")

	// fetch: read sector [fsSec] into buffer [fsDst] via a driver RPC.
	// Clobbers r1-r5, r7 (saved), preserves r6.
	b.Label("fetch").
		Movi(4, fsLR).St(4, 0, 7). // save LR (syscall stubs clobber it)
		Movi(4, fsSec).Ld(5, 4, 0).
		Movi(4, fsReq2).St(4, 0, 5). // driver request word = sector
		Movi(4, fsDst).Ld(4, 4, 0).  // R4 = receive buffer (stub's rbuf)
		Movi(1, fsReq2).Movi(2, 1).Movi(3, drvRef).Movi(5, dev.SectorSize/4).
		Syscall(sys.NIPCClientConnectSendOverReceive).
		IPCClientDisconnect().
		Movi(4, fsLR).Ld(7, 4, 0). // restore LR
		Ret()

	b.Label("boot").
		Movi(4, fsSec).Movi(5, superSector).St(4, 0, 5).
		Movi(4, fsDst).Movi(5, fsSB).St(4, 0, 5).
		Call("fetch").
		Movi(4, fsSec).Movi(5, tableSector).St(4, 0, 5).
		Movi(4, fsDst).Movi(5, fsTab).St(4, 0, 5).
		Call("fetch").
		// Cache the file count from superblock word 1.
		Movi(4, fsSB).Ld(5, 4, 4).
		Movi(4, fsNF).St(4, 0, 5)

	// --- service loop ---
	b.IPCWaitReceive(fsReq, 2, psVA)
	b.Label("serve").
		// r6 = file index
		Movi(4, fsReq).Ld(6, 4, 0).
		// bounds: idx < file count
		Movi(4, fsNF).Ld(5, 4, 0)
	b.Bge(6, 5, "badidx")
	// entry = fsTab + idx*32; r3 = start sector, r2 = size bytes
	b.Movi(5, 5).Shl(4, 6, 5).Addi(4, 4, fsTab).
		Ld(3, 4, 16).
		Ld(2, 4, 20)
	// r5 = requested sector-in-file; byte offset r1 = r5 << 9
	b.Movi(4, fsReq).Ld(5, 4, 4).
		Movi(1, 9).Shl(1, 5, 1)
	b.Bge(1, 2, "badeof")
	// absolute sector = start + sector-in-file
	b.Add(3, 3, 5).
		Movi(4, fsSec).St(4, 0, 3).
		Movi(4, fsDst).Movi(5, fsDat).St(4, 0, 5).
		Call("fetch").
		IPCReplyWaitReceive(fsDat, dev.SectorSize/4, psVA, fsReq, 2).
		Jmp("serve")

	reply1 := func(label string, word uint32) {
		b.Label(label).
			Movi(4, fsErr).Movi(5, word).St(4, 0, 5).
			IPCReplyWaitReceive(fsErr, 1, psVA, fsReq, 2).
			Jmp("serve")
	}
	reply1("badidx", ErrBadIndex)
	reply1("badeof", ErrBadEOF)
	return b
}
