// Package fs implements BFS, a minimal read-only filesystem on the
// virtual block device, served by a user-mode filesystem server — the
// multi-server arrangement Fluke was built for. A file read crosses two
// IPC hops: client -> FS server -> disk driver, with the FS server
// holding the client's connection open on its *server* half while it
// performs driver RPCs on its *client* half (the dual connection state
// real Fluke kept in each TCB).
//
// On-disk format (sector = 512 bytes):
//
//	sector 0   superblock: magic "BFS1", file count, table sector,
//	           first data sector
//	sector 1   file table: 16 entries x 32 bytes
//	           (name[16], start sector, size in bytes, reserved x2)
//	sector 2+  file data, each file contiguous
package fs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dev"
)

// Magic identifies a BFS superblock ("BFS1", little-endian).
const Magic uint32 = 0x31534642

// MaxFiles is the file-table capacity (one table sector).
const MaxFiles = 16

// MaxNameLen is the maximum file-name length in bytes.
const MaxNameLen = 16

// Table geometry.
const (
	superSector = 0
	tableSector = 1
	dataSector  = 2
	entryBytes  = 32
)

// Error replies from the server (first reply word).
const (
	ErrBadIndex = 0xBAD0_0001
	ErrBadEOF   = 0xBAD0_0002
	ErrDisk     = 0xBAD0_0003
)

// File is one input to Format.
type File struct {
	Name string
	Data []byte
}

// Format writes a BFS image onto the device medium and returns the
// name-to-index map the server will use.
func Format(d *dev.BlockDevice, files []File) (map[string]int, error) {
	if len(files) > MaxFiles {
		return nil, fmt.Errorf("fs: %d files > max %d", len(files), MaxFiles)
	}
	// Superblock.
	super := make([]byte, dev.SectorSize)
	binary.LittleEndian.PutUint32(super[0:], Magic)
	binary.LittleEndian.PutUint32(super[4:], uint32(len(files)))
	binary.LittleEndian.PutUint32(super[8:], tableSector)
	binary.LittleEndian.PutUint32(super[12:], dataSector)
	if err := d.LoadMedium(superSector, super); err != nil {
		return nil, err
	}

	table := make([]byte, dev.SectorSize)
	idx := map[string]int{}
	next := uint32(dataSector)
	for i, f := range files {
		if len(f.Name) == 0 || len(f.Name) > MaxNameLen {
			return nil, fmt.Errorf("fs: bad name %q", f.Name)
		}
		sectors := (uint32(len(f.Data)) + dev.SectorSize - 1) / dev.SectorSize
		if sectors == 0 {
			sectors = 1
		}
		if int(next+sectors) > d.Capacity() {
			return nil, fmt.Errorf("fs: medium full at %q", f.Name)
		}
		e := table[i*entryBytes:]
		copy(e[:MaxNameLen], f.Name)
		binary.LittleEndian.PutUint32(e[16:], next)
		binary.LittleEndian.PutUint32(e[20:], uint32(len(f.Data)))
		// Write the data, sector by sector.
		for s := uint32(0); s < sectors; s++ {
			chunk := make([]byte, dev.SectorSize)
			off := int(s) * dev.SectorSize
			if off < len(f.Data) {
				copy(chunk, f.Data[off:])
			}
			if err := d.LoadMedium(int(next+s), chunk); err != nil {
				return nil, err
			}
		}
		idx[f.Name] = i
		next += sectors
	}
	if err := d.LoadMedium(tableSector, table); err != nil {
		return nil, err
	}
	return idx, nil
}

// ReadImage reads a whole file back from the medium host-side (test
// oracle; the guest path goes through the servers).
func ReadImage(d *dev.BlockDevice, start uint32, size int) []byte {
	out := d.ReadMedium(int(start), (size+dev.SectorSize-1)/dev.SectorSize*dev.SectorSize)
	return out[:size]
}
