package core

import (
	"repro/internal/cpu"
	"repro/internal/obj"
	"repro/internal/sys"
)

// Exported wrappers completing the kernel-services surface the IPC engine
// (internal/ipc) programs against. Together with ChargeKernel, Block,
// PreemptPoint, Return, SetPC, Current and CommitProgress they satisfy
// ipc.Kern.

// WakeThread makes a blocked thread runnable (removing it from its wait
// queue and cancelling any sleep timer).
func (k *Kernel) WakeThread(t *obj.Thread) { k.wakeThread(t) }

// ObjAt resolves the object handle at va in t's space; see objAt.
func (k *Kernel) ObjAt(t *obj.Thread, va uint32, want sys.ObjType, allowDead bool) (obj.Obj, sys.Errno, sys.KErr) {
	return k.objAt(t, va, want, allowDead)
}

// FaultOut records a user-memory fault for the dispatch layer to remedy;
// the syscall restarts from its rolled-forward registers afterwards.
func (k *Kernel) FaultOut(t *obj.Thread, spc *obj.Space, f *cpu.Fault) sys.KErr {
	return k.faultOut(t, spc, f)
}

// CountInterrupt records a consumed thread_interrupt (EINTR delivery).
func (k *Kernel) CountInterrupt() { k.cur.stats.Interrupts++ }

// ModelName reports the kernel's configuration label (e.g. "Process NP").
func (k *Kernel) ModelName() string { return k.cfg.Name() }

// Settle drives a thread preempted mid-kernel (full-preemption process
// model) to a clean boundary so its exported state is consistent. It is a
// no-op for threads already at a boundary and in the interrupt model.
func (k *Kernel) Settle(t *obj.Thread) {
	if k.cfg.Model == ModelProcess && t.InKernelPark {
		k.settle(t)
	}
}

// ApplyThreadState restores an exported state frame into a stopped
// thread; see state.go for the frame layout.
func (k *Kernel) ApplyThreadState(target *obj.Thread, w [ThreadStateWords]uint32) {
	k.applyThreadState(target, w)
}
