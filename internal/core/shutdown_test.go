package core_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prog"
)

// TestShutdownReleasesKernelStacks checks that Shutdown unwinds every
// process-model kernel-stack context: the backing goroutines exit and the
// stack accounting returns to the per-CPU baseline.
func TestShutdownReleasesKernelStacks(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		before := runtime.NumGoroutine()
		e := newEnv(t, cfg)
		const mtx = dataBase + 0x100
		b := prog.New(codeBase)
		// A mix of states: one blocked forever, one spinning, one asleep.
		b.Label("blocker").MutexCreate(mtx).MutexLock(mtx).MutexLock(mtx).Halt()
		b.Label("spinner").Movi(6, 0).Label("s").Addi(6, 6, 1).Jmp("s")
		b.Label("sleeper").ThreadSleepUS(1 << 30).Halt()
		img := b.MustAssemble()
		if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
			t.Fatal(err)
		}
		for _, l := range []string{"blocker", "spinner", "sleeper"} {
			e.spawnAt(b.Addr(l), 10)
		}
		e.k.RunFor(2_000_000)
		if len(e.k.Threads()) != 3 {
			t.Fatalf("threads = %d", len(e.k.Threads()))
		}
		e.k.Shutdown()
		if len(e.k.Threads()) != 0 {
			t.Fatal("threads survive shutdown")
		}
		wantStacks := 0
		if cfg.Model == core.ModelInterrupt {
			wantStacks = 1 // the per-CPU stack
		}
		if got := e.k.StacksInUse(); got != wantStacks {
			t.Fatalf("stacks after shutdown = %d, want %d", got, wantStacks)
		}
		// Give exited goroutines a moment to be reaped before counting.
		if cfg.Model == core.ModelProcess {
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
				runtime.Gosched()
			}
			if g := runtime.NumGoroutine(); g > before+2 {
				t.Fatalf("goroutines leaked: %d -> %d", before, g)
			}
		}
	})
}
