package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Example boots an interrupt-model kernel, runs a guest program that
// takes a kernel mutex and stores a value, and reads the result back.
func Example() {
	k := core.New(core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial})
	s := k.NewSpace()

	// Map a demand-zero data window and bind a mutex handle inside it.
	data := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(0x10000, true)}
	k.BindFresh(s, data)
	if _, err := k.MapInto(s, data, 0x40000, 0, 0x10000, mmu.PermRW); err != nil {
		panic(err)
	}
	m, _ := obj.New(sys.ObjMutex)
	if err := k.Bind(s, 0x40010, m); err != nil {
		panic(err)
	}

	b := prog.New(0x10000)
	b.MutexLock(0x40010).
		Movi(4, 0x40100).Movi(5, 1999).St(4, 0, 5).
		MutexUnlock(0x40010).
		Halt()
	if _, err := k.SpawnProgram(s, 0x10000, b.MustAssemble(), 10); err != nil {
		panic(err)
	}
	k.Run()

	out, _ := k.ReadMem(s, 0x40100, 4)
	fmt.Println(uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24)
	// Output: 1999
}

// ExampleEncodeThreadState shows the atomic API's headline property: a
// thread blocked inside a system call exports a complete, consistent
// state whose PC names the entrypoint that will resume it.
func ExampleEncodeThreadState() {
	k := core.New(core.Config{Model: core.ModelProcess})
	s := k.NewSpace()
	b := prog.New(0x10000)
	b.ThreadSleepUS(1_000_000).Halt()
	th, err := k.SpawnProgram(s, 0x10000, b.MustAssemble(), 10)
	if err != nil {
		panic(err)
	}
	k.RunFor(500_000) // the thread is now asleep mid-syscall

	w := core.EncodeThreadState(th)
	fmt.Println(sys.Name(int((w[core.TSPc] - 0xFFF0_0000) / 8)))
	// Output: thread_sleep
}
