package core

import (
	"repro/internal/ipc"
	"repro/internal/obj"
	"repro/internal/sys"
)

// The IPC engine in internal/ipc programs against the ipc.Kern interface;
// assert the kernel satisfies it.
var _ ipc.Kern = (*Kernel)(nil)

// registerIPCHandlers binds the 21 IPC entrypoints (Table 1's IPC-related
// multi-stage calls) to the engine.
func (k *Kernel) registerIPCHandlers() {
	bind := func(num int, fn func(ipc.Kern, *obj.Thread) sys.KErr) {
		k.handlers[num] = func(k *Kernel, t *obj.Thread) sys.KErr { return fn(k, t) }
	}
	bind(sys.NIPCClientConnectSend, ipc.ClientConnectSend)
	bind(sys.NIPCClientConnectSendOverReceive, ipc.ClientConnectSendOverReceive)
	bind(sys.NIPCClientSend, ipc.ClientSend)
	bind(sys.NIPCClientSendOverReceive, ipc.ClientSendOverReceive)
	bind(sys.NIPCClientOverReceive, ipc.ClientOverReceive)
	bind(sys.NIPCClientReceive, ipc.ClientReceive)
	bind(sys.NIPCClientDisconnect, ipc.ClientDisconnect)
	bind(sys.NIPCClientAlert, ipc.ClientAlert)
	bind(sys.NIPCSetupWait, ipc.SetupWait)
	bind(sys.NIPCServerReceive, ipc.ServerReceive)
	bind(sys.NIPCServerOverReceive, ipc.ServerOverReceive)
	bind(sys.NIPCServerSend, ipc.ServerSend)
	bind(sys.NIPCServerSendOverReceive, ipc.ServerSendOverReceive)
	bind(sys.NIPCServerAckSend, ipc.ServerAckSend)
	bind(sys.NIPCServerAckSendOverReceive, ipc.ServerAckSendOverReceive)
	bind(sys.NIPCServerAckSendWaitReceive, ipc.ServerAckSendWaitReceive)
	bind(sys.NIPCServerDisconnect, ipc.ServerDisconnect)
	bind(sys.NIPCReply, ipc.Reply)
	bind(sys.NIPCReplyWaitReceive, ipc.ReplyWaitReceive)
	bind(sys.NIPCSendOneway, ipc.SendOneway)
	bind(sys.NIPCWaitReceive, ipc.WaitReceive)
}

// ipcOnDeath severs a dying thread's IPC connection.
func (k *Kernel) ipcOnDeath(t *obj.Thread) {
	ipc.OnThreadDeath(k, t)
}

// DeliverFault implements ipc.Kern: it formats the oldest pending fault of
// p.FaultRegion as a two-word message (page offset, magic) in t's receive
// buffer. The store may fault in the pager's own space — the notification
// is popped only after the message lands, so a restart re-delivers it.
func (k *Kernel) DeliverFault(t *obj.Thread, p *obj.Port) (bool, sys.Errno, sys.KErr) {
	reg := p.FaultRegion
	if reg == nil || len(reg.PendingFaults) == 0 {
		return false, sys.EOK, sys.KOK
	}
	if t.Regs.R[2] < ipc.FaultMsgWords {
		return true, sys.EINVAL, sys.KOK
	}
	if t.Regs.R[1]%4 != 0 {
		return true, sys.EINVAL, sys.KOK
	}
	off := reg.PendingFaults[0]
	if kerr := k.StoreUser32(t, t.Space, t.Regs.R[1], off); kerr != sys.KOK {
		return true, 0, kerr
	}
	if kerr := k.StoreUser32(t, t.Space, t.Regs.R[1]+4, ipc.FaultMsgMagic); kerr != sys.KOK {
		return true, 0, kerr
	}
	reg.PopPendingFault()
	t.Regs.R[1] += ipc.FaultMsgWords * 4
	t.Regs.R[2] -= ipc.FaultMsgWords
	k.CommitProgress(t)
	return true, sys.EOK, sys.KOK
}
