package core_test

// Tests for the full-preemption settle path: a thread preempted in the
// middle of kernel code (possible only under Process FP) must be driven
// to a clean boundary before its state is exported or it is stopped,
// without ever waiting on user-mode activity.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// parkVictimInKernel runs a victim into a long region_search under
// Process FP with a higher-priority manager becoming runnable mid-way, so
// the victim parks inside the kernel (InKernelPark).
func parkVictimInKernel(t *testing.T) (*env, *obj.Thread, *obj.Thread) {
	t.Helper()
	e := newEnv(t, core.Config{Model: core.ModelProcess, Preempt: core.PreemptFull})
	v := prog.New(codeBase)
	v.RegionSearch(0x4000_0000, 64<<20). // ~1M kernel cycles of scanning
						Movi(6, dataBase).St(6, 0, 0).
						Halt()
	victim := e.spawn(t, v, 5)

	// Manager: sleeps briefly (so the victim enters the search), then
	// wakes at high priority — preempting the victim inside the kernel —
	// and snapshots the victim's exported state via thread_get_state.
	m := prog.New(codeBase + 0x8000)
	m.ThreadSleepUS(500).
		Movi(1, victim.VA).Movi(2, dataBase+0x100).
		Syscall(sys.CommonOpNum(sys.ObjThread, sys.OpGetState)).
		Movi(6, dataBase+0x80).St(6, 0, 0). // get_state errno
		Halt()
	if _, err := e.k.LoadImage(e.s, m.Base(), m.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	manager := e.spawnAt(m.Base(), 25)
	return e, victim, manager
}

func TestFPGetStateSettlesMidKernelThread(t *testing.T) {
	e, victim, manager := parkVictimInKernel(t)
	e.run(t, 2_000_000_000, manager, victim)
	if got := e.word(t, dataBase+0x80); got != uint32(sys.EOK) {
		t.Fatalf("get_state errno %v", sys.Errno(got))
	}
	// The exported PC must be a clean restart point: either the
	// region_search entrypoint (rolled forward mid-search) or past it.
	pc := e.word(t, dataBase+0x100+core.TSPc*4)
	if n := cpu.SyscallNum(pc); n >= 0 && n != sys.NRegionSearch {
		t.Fatalf("exported PC names %s, not a region_search restart point", sys.Name(n))
	}
	// The victim still completed correctly afterwards.
	if got := e.word(t, dataBase); got != uint32(sys.ENOTFOUND) {
		t.Fatalf("victim search errno %v, want ENOTFOUND", sys.Errno(got))
	}
}

func TestFPDestroyMidKernelThread(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess, Preempt: core.PreemptFull})
	v := prog.New(codeBase)
	v.RegionSearch(0x4000_0000, 256<<20).Halt()
	victim := e.spawn(t, v, 5)
	// Let it get deep into the search, then preempt it from host side by
	// making a high-priority host thread runnable via a probe-like trick:
	// simplest is to run briefly and destroy — DestroyThread settles
	// whatever state the thread is in.
	e.k.RunFor(300_000)
	e.k.DestroyThread(victim)
	if victim.State != obj.ThDead {
		t.Fatal("victim survived destroy")
	}
	if victim.InKernelPark {
		t.Fatal("victim died still parked in kernel")
	}
	// Kernel still healthy.
	e.k.RunFor(1_000_000)
}

func TestFPStopSettlesAndFreezes(t *testing.T) {
	e, victim, manager := parkVictimInKernel(t)
	_ = manager
	// Host-side stop exercises the same settle path as the syscall.
	e.k.RunFor(200_000) // manager wakes at 500µs; stop before that
	if victim.State == obj.ThDead {
		t.Skip("victim finished too quickly")
	}
	e.k.Settle(victim)
	if victim.InKernelPark {
		t.Fatal("settle left the victim mid-kernel")
	}
	// Its register state is consistent now.
	w := core.EncodeThreadState(victim)
	if n := cpu.SyscallNum(w[core.TSPc]); n >= 0 && n != sys.NRegionSearch {
		t.Fatalf("settled PC names %s", sys.Name(n))
	}
	e.k.RunFor(2_000_000_000)
}
