// Package core implements the Fluke kernel: the atomic system-call API of
// the paper on top of both kernel execution models.
//
// A single set of system-call handlers — written in the paper's Figure-4
// "atomic API" style, where user registers are rolled forward to record
// partial progress and kernel-internal result codes signal blocking — runs
// under either execution model:
//
//   - the interrupt model, with one kernel stack per (virtual) CPU: a
//     handler that must wait simply unwinds, and the thread's explicit
//     user register state is its continuation;
//   - the process model, with one kernel stack per thread: a handler that
//     must wait parks in place on the thread's own kernel-stack context
//     and continues where it slept.
//
// The model is chosen by Config.Model, mirroring the paper's compile-time
// configuration option, and the difference is confined to the entry/exit
// and context-switch code (paper §3.1).
package core

import (
	"fmt"

	"repro/internal/sched"
)

// ExecModel selects the kernel's internal execution model (paper §3).
type ExecModel uint8

const (
	// ModelProcess gives each thread its own kernel stack.
	ModelProcess ExecModel = iota
	// ModelInterrupt uses one kernel stack per processor.
	ModelInterrupt
)

func (m ExecModel) String() string {
	switch m {
	case ModelProcess:
		return "process"
	case ModelInterrupt:
		return "interrupt"
	}
	return "model?"
}

// Preemption selects the kernel preemptibility configuration (paper
// Table 4).
type Preemption uint8

const (
	// PreemptNone: no kernel preemption; the kernel is preemptible only
	// on return to user mode. Comparable to a uniprocessor Unix system.
	PreemptNone Preemption = iota
	// PreemptPartial: a single explicit preemption point on the IPC
	// data copy path, checked after every 8 KB of data transferred.
	PreemptPartial
	// PreemptFull: the kernel is preemptible at any cycle-charge point.
	// Requires blocking kernel locks, and therefore the process model.
	PreemptFull
)

func (p Preemption) String() string {
	switch p {
	case PreemptNone:
		return "NP"
	case PreemptPartial:
		return "PP"
	case PreemptFull:
		return "FP"
	}
	return "preempt?"
}

// LockModel selects the kernel's locking discipline on multiprocessor
// configurations (NumCPUs > 1). With one CPU the two models are
// observationally identical — no lock is ever contended — which the
// multi-CPU equivalence tests pin bit-exactly.
type LockModel uint8

const (
	// LockBig is a single big kernel lock acquired at kernel entry
	// (syscall, fault, scheduler) and held for the whole kernel episode:
	// kernel execution is serialized across CPUs.
	LockBig LockModel = iota
	// LockPerSubsystem uses separate scheduler, object-space, and MMU
	// locks, held only around the matching subsystem's work; the IPC bulk
	// copy runs with the object-space lock released.
	LockPerSubsystem
	// LockFine splits the subsystem locks into instances: one scheduler
	// lock per run queue and one object-space/MMU lock pair per space, so
	// kernel episodes touching disjoint CPUs and spaces never contend.
	// Cross-queue operations (steals, remote enqueues) take the target
	// queue's lock. In ParallelHost mode this model also shards the host
	// gate (see parallel.go).
	LockFine
)

func (m LockModel) String() string {
	switch m {
	case LockBig:
		return "big"
	case LockPerSubsystem:
		return "persub"
	case LockFine:
		return "fine"
	}
	return "lockmodel?"
}

// ParseLockModel maps a flag string to a LockModel.
func ParseLockModel(s string) (LockModel, error) {
	switch s {
	case "big":
		return LockBig, nil
	case "persub":
		return LockPerSubsystem, nil
	case "fine":
		return LockFine, nil
	}
	return 0, fmt.Errorf("core: unknown lock model %q (want big, persub, or fine)", s)
}

// MaxCPUs bounds Config.NumCPUs.
const MaxCPUs = 64

// Config describes one kernel build configuration.
type Config struct {
	Model   ExecModel
	Preempt Preemption

	// NumCPUs is the number of simulated processors; 0 selects 1. The
	// default execution stays deterministic at any count: the scheduler
	// interleaves the CPUs serially in virtual-time order (see exec.go).
	NumCPUs int

	// LockModel selects the multiprocessor locking discipline; see the
	// LockModel constants. Irrelevant (but valid) at NumCPUs == 1.
	LockModel LockModel

	// ParallelHost opts into real host parallelism: one goroutine per
	// simulated CPU, kernel sections serialized under the lock-model
	// mutexes, user instruction batches running concurrently. Requires
	// the interrupt model (one kernel stack — one goroutine — per CPU is
	// exactly the paper's interrupt-model shape). Execution is no longer
	// deterministic; virtual time becomes per-CPU and skewed.
	ParallelHost bool

	// KernelStackSize is the per-stack size in bytes charged to the
	// memory accountant: per thread in the process model, per CPU in
	// the interrupt model. The paper's Table 7 uses 4096 (default,
	// debug-capable) and 1024 ("production") for the process model.
	KernelStackSize int

	// PhysFrames bounds simulated physical memory in pages; 0 selects
	// the 64 MB default.
	PhysFrames int

	// PreemptPointBytes sets how often the IPC copy path takes its
	// explicit preemption point in the PP configurations; 0 selects the
	// paper's 8 KB. Exposed for the preemption-point-spacing ablation.
	PreemptPointBytes uint32

	// FPChunkCycles sets the preemption-check granularity of
	// fully-preemptible kernel code; 0 selects the default (2000 cycles
	// = 10 µs). Exposed for the FP-granularity ablation.
	FPChunkCycles uint64

	// ContinuationRecognition enables the §2.2 optimization Draves
	// introduced in Mach and the atomic API makes trivial: when a
	// waiter's explicit continuation is recognizable (its PC names the
	// mutex_lock entrypoint), the kernel completes the operation "by
	// mutating the thread's state without transferring control to the
	// suspended thread's context" — granting the mutex and writing the
	// result registers directly, so the thread wakes straight into user
	// code. Interrupt model only (a process-model waiter resumes inside
	// its retained kernel stack, which is precisely why Mach's in-kernel
	// continuations could not expose this to user code).
	ContinuationRecognition bool

	// Quantum is the round-robin time slice in cycles; 0 selects
	// sched.DefaultQuantum.
	Quantum uint64

	// DisableFastPath turns off the simulator fast paths (software TLB,
	// decoded-instruction cache, run-to-next-event batching, page-run
	// IPC copies) and uses the reference per-instruction interpreter
	// loop. Results are bit-identical either way — the equivalence tests
	// compare both — so this exists only for that comparison and for
	// debugging the fast paths themselves.
	DisableFastPath bool

	// DisableThreadedCode turns off the threaded-code interpreter tier:
	// the fused superinstruction blocks StepN compiles from warm decode
	// pages and runs with one budget check per block. Like
	// DisableFastPath this is a simulator-side switch — results are
	// bit-identical either way (TestThreadedCodeEquivalence pins memory,
	// Stats, and the clock across every configuration) — so it exists
	// only for that comparison, for tiered benchmarking, and for
	// debugging the block builder. DisableFastPath implies it: with the
	// decode cache off there are no pages to fuse.
	DisableThreadedCode bool

	// DisableIPCFastPath turns off the kernel's IPC fast path: the
	// direct thread handoff that, when a sender completes its peer's
	// receive, donates the rest of its time slice and switches straight
	// to the peer without a run-queue round trip, carrying short
	// messages (≤ FastMsgWords) through the register file. Unlike
	// DisableFastPath this changes *virtual* time — the fast path is a
	// modeled kernel optimization, not a simulator cache — but it never
	// changes user-visible results: TestIPCFastPathEquivalence pins
	// memory, register results, payloads, and Table 3 cause counts
	// identical with the path on and off.
	DisableIPCFastPath bool

	// DisableZeroCopy turns off the zero-copy bulk-transfer path: the
	// copy-on-write frame sharing that moves page-aligned IPC runs of at
	// least ZeroCopyMinPages pages by aliasing the sender's frames into
	// the receiver's region (charged per page, not per word). Like
	// DisableIPCFastPath this changes virtual time — it is a modeled
	// kernel optimization — but never user-visible results:
	// TestZeroCopyEquivalence pins memory contents and Table 3 cause
	// counts identical with the path on and off.
	DisableZeroCopy bool

	// DisableNICCoalesce turns off the simulated NIC's interrupt
	// coalescing (NAPI-style polling): instead of one interrupt waking
	// the driver to drain the RX ring until empty before re-arming, the
	// NIC delivers one frame per interrupt/acknowledge cycle — the
	// pre-coalescing cost model. Like DisableIPCFastPath this changes
	// virtual time — coalescing is a modeled device optimization — but
	// never user-visible results: TestNICCoalesceEquivalence pins client
	// memory identical with it on and off, and the off configuration
	// bit-identical (memory, Stats, clock) run to run. The kernel core
	// never reads this field; internal/dev latches it at attach time.
	DisableNICCoalesce bool

	// TLBSize is the software-TLB capacity per address space, rounded up
	// to a power of two; 0 selects mmu.DefaultTLBSize (256). Purely a
	// simulator cache: the capacity changes wall-clock cost only, never
	// virtual time.
	TLBSize int

	// EnableProfiler attaches the cycle-accurate virtual-time profiler
	// (internal/profile): every charged cycle is attributed to a
	// (kernel path, syscall, guest PC-bucket) triple in per-CPU
	// allocation-free shards. Like the metrics layer it never charges
	// cycles — virtual time, user memory, and Stats are bit-identical
	// with it on or off (TestProfilerEquivalence) — and the attributed
	// total equals Stats.TotalCycles exactly.
	EnableProfiler bool

	// EnableIPCSpans mints a request-scoped causal trace ID at IPC send
	// and propagates it through rendezvous, direct handoff, donation
	// steals, and zero-copy transfers, emitting trace.Flow events into
	// the attached Tracer (exported as Perfetto flow events; consumed by
	// the flukebench -critpath analyzer). Free when no Tracer is
	// attached beyond a per-thread ID word; never charges cycles.
	EnableIPCSpans bool

	// TraceSyscalls, when set, receives one line per syscall completion
	// (debugging aid).
	TraceSyscalls func(line string)
}

// Name returns the paper's label for this configuration, e.g.
// "Process NP" or "Interrupt PP".
func (c Config) Name() string {
	model := "Process"
	if c.Model == ModelInterrupt {
		model = "Interrupt"
	}
	return model + " " + c.Preempt.String()
}

// Validate checks model/preemption compatibility: "full kernel
// preemptibility requires the ability to block within the kernel and is
// therefore incompatible with the interrupt model" (paper §5.3), giving
// the paper's five valid configurations.
func (c Config) Validate() error {
	if c.Model == ModelInterrupt && c.Preempt == PreemptFull {
		return fmt.Errorf("core: full preemption is incompatible with the interrupt model")
	}
	if c.KernelStackSize < 0 {
		return fmt.Errorf("core: negative kernel stack size")
	}
	if c.NumCPUs < 0 || c.NumCPUs > MaxCPUs {
		return fmt.Errorf("core: NumCPUs %d out of range [0,%d]", c.NumCPUs, MaxCPUs)
	}
	if c.LockModel != LockBig && c.LockModel != LockPerSubsystem && c.LockModel != LockFine {
		return fmt.Errorf("core: unknown lock model %d", c.LockModel)
	}
	if c.ParallelHost && c.Model != ModelInterrupt {
		return fmt.Errorf("core: ParallelHost requires the interrupt model (one kernel stack per CPU)")
	}
	if c.TLBSize < 0 {
		return fmt.Errorf("core: negative TLBSize")
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.NumCPUs == 0 {
		c.NumCPUs = 1
	}
	if c.KernelStackSize == 0 {
		c.KernelStackSize = DefaultKernelStackSize
	}
	if c.Quantum == 0 {
		c.Quantum = sched.DefaultQuantum
	}
	if c.PreemptPointBytes == 0 {
		c.PreemptPointBytes = PreemptPointBytes
	}
	if c.FPChunkCycles == 0 {
		c.FPChunkCycles = fpChunk
	}
	return c
}

// DefaultKernelStackSize is the default per-thread kernel stack size for
// the process model (paper Table 7's debug-capable configuration).
const DefaultKernelStackSize = 4096

// ProductionKernelStackSize is the reduced stack size of the paper's
// "production" kernel configuration (Table 7).
const ProductionKernelStackSize = 1024

// InterruptModelTCBOverhead is the extra per-thread bytes beyond the bare
// TCB that the interrupt model charges (none — the whole point).
const InterruptModelTCBOverhead = 0

// Configurations returns the paper's five kernel configurations in
// Table 4/5/6 order: Process NP, Process PP, Process FP, Interrupt NP,
// Interrupt PP.
func Configurations() []Config {
	return []Config{
		{Model: ModelProcess, Preempt: PreemptNone},
		{Model: ModelProcess, Preempt: PreemptPartial},
		{Model: ModelProcess, Preempt: PreemptFull},
		{Model: ModelInterrupt, Preempt: PreemptNone},
		{Model: ModelInterrupt, Preempt: PreemptPartial},
	}
}
