package core_test

// The model-equivalence fuzzer: randomized guest programs (computation,
// memory traffic, syscalls, blocking, sleeping, yielding) must produce
// bit-identical user-visible results under every kernel configuration —
// the paper's claim that the execution model is invisible to the API
// ("the configuration option to select between the two models has no
// impact on the functionality of the API", §3.1), checked mechanically.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	eqMtx    = dataBase + 0x10
	eqShared = dataBase + 0x80
	eqAreaA  = dataBase + 0x1000 // thread A's private area
	eqAreaB  = dataBase + 0x2000 // thread B's private area
	eqArea   = 0x1000
)

// genThread emits a random but schedule-independent action sequence:
// private-area stores and read-modify-writes, trivial syscalls, sleeps,
// yields, mutex-protected shared-counter increments, and echo RPCs. All
// cross-thread state is commutative (and echo replies depend only on the
// request), so every legal schedule yields the same final memory.
func genThread(b *prog.Builder, rng *rand.Rand, label string, area uint32, actions int) {
	b.Label(label)
	for i := 0; i < actions; i++ {
		switch rng.Intn(8) {
		case 0: // store a constant into a private slot
			slot := area + uint32(rng.Intn(eqArea/4))*4
			b.Movi(4, slot).Movi(5, rng.Uint32()).St(4, 0, 5)
		case 1: // read-modify-write a private slot
			slot := area + uint32(rng.Intn(eqArea/4))*4
			b.Movi(4, slot).Ld(5, 4, 0).Addi(5, 5, rng.Uint32()%1000).St(4, 0, 5)
		case 2: // trivial syscall
			b.Null()
		case 3: // short sleep
			b.ThreadSleepUS(uint32(1 + rng.Intn(40)))
		case 4: // voluntary yield
			b.SchedYield()
		case 5: // shared counter under the kernel mutex
			b.MutexLock(eqMtx).
				Movi(4, eqShared).Ld(5, 4, 0).Addi(5, 5, 1).St(4, 0, 5).
				MutexUnlock(eqMtx)
		case 6: // pure computation on a callee-kept register
			b.Addi(6, 6, rng.Uint32()%97)
		case 7: // echo RPC: reply depends only on the request
			sbuf := area + 0x40
			rbuf := area + uint32(0x60+4*rng.Intn(16))&^3
			b.Movi(4, sbuf).Movi(5, rng.Uint32()).St(4, 0, 5).
				IPCClientConnectSendOverReceive(sbuf, 1, refVA, rbuf, 1).
				IPCClientDisconnect()
		}
	}
	// Publish the register accumulator so it is part of the result.
	b.Movi(4, area+eqArea-4).St(4, 0, 6)
	b.Halt()
}

// runSeed builds the seeded two-thread program on cfg and returns the
// final observable memory and the kernel (for Stats / virtual-time
// comparison).
func runSeed(t *testing.T, cfg core.Config, seed int64) ([]byte, *core.Kernel) {
	t.Helper()
	e := newEnv(t, cfg)
	e.k.EnableMetrics() // metrics never perturb virtual time
	bindIPC(t, e.k, e.s, e.s)
	mo, _ := obj.New(sys.ObjMutex)
	if err := e.k.Bind(e.s, eqMtx, mo); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	b := prog.New(codeBase)
	// Echo server: receive one word, reply with it doubled, loop. The
	// receive buffer is two words for a one-word request so the receive
	// completes on the client's message-end (after its turnaround), never
	// on buffer-full — a buffer-full completion can beat the client's
	// flip, making reply_wait_receive's ESTATE depend on the schedule.
	// The reply is computed into a separate buffer so a retried reply is
	// idempotent. Both are needed for the schedule-independence the
	// equivalence tests rest on.
	const (
		ebuf = dataBase + 0x3000
		erep = dataBase + 0x3800
	)
	b.Label("echo").
		IPCWaitReceive(ebuf, 2, psVA).
		Label("echo.loop").
		Movi(4, ebuf).Ld(5, 4, 0).Add(5, 5, 5).
		Movi(4, erep).St(4, 0, 5).
		IPCReplyWaitReceive(erep, 1, psVA, ebuf, 2).
		Jmp("echo.loop")
	actions := 15 + rng.Intn(25)
	genThread(b, rng, "ta", eqAreaA, actions)
	genThread(b, rng, "tb", eqAreaB, actions)
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	e.spawnAt(b.Addr("echo"), 12)
	ta := e.spawnAt(b.Addr("ta"), 10)
	tb := e.spawnAt(b.Addr("tb"), 10)
	e.run(t, 4_000_000_000, ta, tb)
	out, err := e.k.ReadMem(e.s, dataBase+0x80, 4) // shared counter
	if err != nil {
		t.Fatal(err)
	}
	for _, area := range []uint32{eqAreaA, eqAreaB} {
		m, err := e.k.ReadMem(e.s, area, eqArea)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m...)
	}
	return out, e.k
}

func TestModelEquivalenceFuzz(t *testing.T) {
	seeds := []int64{1, 7, 42, 1999, 0xF1BE, 31337, 271828, 31415926}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var want []byte
			var wantCfg string
			for _, cfg := range core.Configurations() {
				got, _ := runSeed(t, cfg, seed)
				if want == nil {
					want, wantCfg = got, cfg.Name()
					continue
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s result differs from %s (seed %d)", cfg.Name(), wantCfg, seed)
				}
			}
		})
	}
}

// TestIPCFastPathEquivalence pins the IPC fast path's transparency: the
// direct handoff and register-carried transfers deliberately change
// virtual time (that is the optimisation), but nothing a user program can
// observe may differ with the path on vs off — final memory (message
// payloads and published register results included) and the Table 3
// restart-cause counts — across all five paper configurations ×
// NumCPUs {1,2,4} × both lock models.
func TestIPCFastPathEquivalence(t *testing.T) {
	seeds := []int64{1, 42, 31337}
	if testing.Short() {
		seeds = seeds[:1]
	}
	totalHits := uint64(0)
	for _, base := range core.Configurations() {
		for _, ncpu := range []int{1, 2, 4} {
			for _, lm := range []core.LockModel{core.LockBig, core.LockPerSubsystem} {
				cfg := base
				cfg.NumCPUs = ncpu
				cfg.LockModel = lm
				t.Run(fmt.Sprintf("%s/cpus=%d/%s", base.Name(), ncpu, lm), func(t *testing.T) {
					for _, seed := range seeds {
						onMem, onK := runSeed(t, cfg, seed)
						off := cfg
						off.DisableIPCFastPath = true
						offMem, offK := runSeed(t, off, seed)
						if !bytes.Equal(onMem, offMem) {
							t.Fatalf("seed %d: observable memory differs with IPC fast path on vs off", seed)
						}
						onR := onK.Metrics.RestartsByCause()
						offR := offK.Metrics.RestartsByCause()
						if onR != offR {
							t.Fatalf("seed %d: Table 3 restart causes differ: on=%v off=%v", seed, onR, offR)
						}
						totalHits += onK.Stats().FastpathHits
						if s := offK.Stats(); s.FastpathHits != 0 {
							t.Fatalf("seed %d: disabled run recorded %d handoffs", seed, s.FastpathHits)
						}
					}
				})
			}
		}
	}
	if totalHits == 0 {
		t.Fatal("no handoff fired anywhere in the matrix; the test is vacuous")
	}
}

// TestFastPathEquivalence pins the tentpole invariant: the simulator fast
// paths (software TLB, decoded-instruction cache, run-to-next-event
// batching, page-run IPC copies) are invisible to virtual time. Every
// configuration must produce bit-identical observable memory, Stats, and
// final clock with the caches on and off.
func TestFastPathEquivalence(t *testing.T) {
	seeds := []int64{1, 42, 31337}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cfg := range core.Configurations() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			for _, seed := range seeds {
				fastMem, fastK := runSeed(t, cfg, seed)
				slow := cfg
				slow.DisableFastPath = true
				slowMem, slowK := runSeed(t, slow, seed)
				if !bytes.Equal(fastMem, slowMem) {
					t.Fatalf("seed %d: observable memory differs with fast paths on vs off", seed)
				}
				if fastK.Clock.Now() != slowK.Clock.Now() {
					t.Fatalf("seed %d: virtual time differs: fast=%d slow=%d",
						seed, fastK.Clock.Now(), slowK.Clock.Now())
				}
				if !reflect.DeepEqual(fastK.Stats(), slowK.Stats()) {
					t.Fatalf("seed %d: Stats differ with fast paths on vs off:\nfast: %+v\nslow: %+v",
						seed, fastK.Stats(), slowK.Stats())
				}
			}
		})
	}
}
