package core_test

// Edge-path tests: error returns, faulting argument buffers, destruction
// with waiters, and wrong-direction IPC.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

func TestCreateAtBusyHandle(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	const h = dataBase + 0x100
	b := prog.New(codeBase)
	b.MutexCreate(h).
		Movi(6, dataBase).St(6, 0, 0).
		CondCreate(h). // same handle address
		Movi(6, dataBase).St(6, 4, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 50_000_000, th)
	if got := e.word(t, dataBase); got != uint32(sys.EOK) {
		t.Fatalf("first create %v", sys.Errno(got))
	}
	if got := e.word(t, dataBase+4); got != uint32(sys.EBUSY) {
		t.Fatalf("duplicate create %v, want EBUSY", sys.Errno(got))
	}
}

func TestRenameFromUntouchedPageRestarts(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const (
			mtx  = dataBase + 0x100
			name = dataBase + 10*mem.PageSize // never touched: soft fault
		)
		b := prog.New(codeBase)
		b.MutexCreate(mtx).
			Movi(1, mtx).Movi(2, name).Movi(3, 4).
			Syscall(sys.CommonOpNum(sys.ObjMutex, sys.OpRename)).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 50_000_000, th)
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("rename errno %v", sys.Errno(got))
		}
		// Name is four zero bytes from the fresh page.
		if got := e.s.At(mtx).Hdr().Name; got != "\x00\x00\x00\x00" {
			t.Fatalf("name %q", got)
		}
	})
}

func TestRenameTooLong(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	const mtx = dataBase + 0x100
	b := prog.New(codeBase)
	b.MutexCreate(mtx).
		Movi(1, mtx).Movi(2, dataBase+0x200).Movi(3, 100).
		Syscall(sys.CommonOpNum(sys.ObjMutex, sys.OpRename)).
		Movi(6, dataBase).St(6, 0, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 50_000_000, th)
	if got := e.word(t, dataBase); got != uint32(sys.EINVAL) {
		t.Fatalf("errno %v, want EINVAL", sys.Errno(got))
	}
}

func TestPortDestroyWakesConnectors(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		// Client connects; no server ever accepts; destroyer kills the
		// port; the client's connect observes ESRCH.
		cli := prog.New(codeBase)
		cli.Movi(4, dataBase+0x1000).Movi(5, 1).St(4, 0, 5).
			IPCClientConnectSend(dataBase+0x1000, 1, refVA).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		client := e.spawn(t, cli, 10)
		e.k.RunFor(2_000_000)
		if client.State != obj.ThBlocked {
			t.Fatalf("client state %v", client.State)
		}
		// Host-side destroy (the port handle lives in the kernel window).
		port := e.s.At(portVA).(*obj.Port)
		port.Dead = true
		e.k.WakeThread(port.Connectors.Peek())
		e.run(t, 100_000_000, client)
		if got := e.word(t, dataBase); got != uint32(sys.ESRCH) {
			t.Fatalf("connector errno %v, want ESRCH", sys.Errno(got))
		}
	})
}

func TestServerSendWrongDirection(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	bindIPC(t, e.k, e.s, e.s)
	const srvBuf = dataBase + 0x2000
	// Server accepts a plain connect_send (no turnaround) and then tries
	// to send while the direction is still client->server: ESTATE.
	srv := prog.New(codeBase + 0x8000)
	srv.IPCWaitReceive(srvBuf, 1, psVA).
		Movi(1, srvBuf).Movi(2, 1).Syscall(sys.NIPCServerSend).
		Movi(6, dataBase).St(6, 0, 0).
		Halt()
	cli := prog.New(codeBase)
	cli.Movi(4, dataBase+0x1000).Movi(5, 1).St(4, 0, 5).
		IPCClientConnectSend(dataBase+0x1000, 1, refVA).
		ThreadSleepUS(1 << 29).
		Halt()
	if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	server := e.spawnAt(srv.Base(), 10)
	e.spawn(t, cli, 10)
	e.k.RunFor(400_000_000)
	if !server.Exited {
		t.Fatalf("server stuck: %v pc=%#x", server.State, server.Regs.PC)
	}
	if got := e.word(t, dataBase); got != uint32(sys.ESTATE) {
		t.Fatalf("server_send errno %v, want ESTATE", sys.Errno(got))
	}
}

func TestThreadWaitInterruptible(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		// Joiner waits on a thread that never exits; gets interrupted.
		b := prog.New(codeBase)
		b.Label("immortal").ThreadSleepUS(1 << 29).Halt()
		b.Label("joiner").
			Movi(1, 0).Label("patch").
			Syscall(sys.NThreadWait).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		img := b.MustAssemble()
		if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
			t.Fatal(err)
		}
		immortal := e.spawnAt(b.Addr("immortal"), 10)
		joiner := e.spawnAt(b.Addr("joiner"), 10)
		patch := b.Addr("patch") - 4
		va := immortal.VA
		if err := e.k.WriteMem(e.s, patch, []byte{byte(va), byte(va >> 8), byte(va >> 16), byte(va >> 24)}); err != nil {
			t.Fatal(err)
		}
		e.k.RunFor(2_000_000)
		if joiner.State != obj.ThBlocked {
			t.Fatalf("joiner state %v", joiner.State)
		}
		joiner.Interrupted = true
		e.k.WakeThread(joiner)
		e.run(t, 100_000_000, joiner)
		if got := e.word(t, dataBase); got != uint32(sys.EINTR) {
			t.Fatalf("join errno %v, want EINTR", sys.Errno(got))
		}
	})
}

func TestMutexSetStateBusyWithWaiters(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	const (
		mtx = dataBase + 0x100
		buf = dataBase + 0x400
	)
	b := prog.New(codeBase)
	b.Label("holder").
		MutexCreate(mtx).MutexLock(mtx).
		ThreadSleepUS(5000).
		// With a waiter queued, set_state must refuse.
		Movi(4, buf).Movi(5, 0).St(4, 0, 5).
		SetState(sys.ObjMutex, mtx, buf).
		Movi(6, dataBase).St(6, 0, 0).
		MutexUnlock(mtx).
		Halt()
	b.Label("waiter").
		ThreadSleepUS(1000).
		MutexLock(mtx).
		MutexUnlock(mtx).
		Halt()
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	holder := e.spawnAt(b.Addr("holder"), 10)
	waiter := e.spawnAt(b.Addr("waiter"), 10)
	e.run(t, 400_000_000, holder, waiter)
	if got := e.word(t, dataBase); got != uint32(sys.EBUSY) {
		t.Fatalf("set_state errno %v, want EBUSY", sys.Errno(got))
	}
}

func TestPagerBufferTooSmallForFaultMessage(t *testing.T) {
	// A pager receiving with a 1-word buffer cannot take the 2-word
	// fault notification: EINVAL, and the fault stays queued.
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	port, _ := bindIPC(t, e.k, e.s, e.s)
	reg, err := e.k.NewBoundRegion(e.s, regVA, mem.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	e.k.AttachPager(reg, port)
	const pBase = 0x0100_0000
	if _, err := e.k.MapInto(e.s, reg, pBase, 0, mem.PageSize, 0x3); err != nil {
		t.Fatal(err)
	}
	pager := prog.New(codeBase + 0x8000)
	pager.IPCWaitReceive(dataBase+0x1000, 1, psVA). // too small
							Movi(6, dataBase).St(6, 0, 0).
							Halt()
	faulter := prog.New(codeBase)
	faulter.Movi(4, pBase).Ldb(5, 4, 0).Halt()
	if _, err := e.k.LoadImage(e.s, pager.Base(), pager.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	pt := e.spawnAt(pager.Base(), 15)
	e.spawn(t, faulter, 10)
	e.k.RunFor(100_000_000)
	if !pt.Exited {
		t.Fatalf("pager stuck: %v", pt.State)
	}
	if got := e.word(t, dataBase); got != uint32(sys.EINVAL) {
		t.Fatalf("pager errno %v, want EINVAL", sys.Errno(got))
	}
	if len(reg.PendingFaults) != 1 {
		t.Fatalf("fault not left queued: %v", reg.PendingFaults)
	}
}
