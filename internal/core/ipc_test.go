package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Handle slots in the eagerly-mapped kernel window used by IPC tests.
const (
	portVA = core.KObjBase + 0x400
	psVA   = core.KObjBase + 0x404
	refVA  = core.KObjBase + 0x408
	regVA  = core.KObjBase + 0x40C
)

// bindIPC creates a Port+Portset in serverSpace and a Reference to the
// port in clientSpace.
func bindIPC(t *testing.T, k *core.Kernel, serverSpace, clientSpace *obj.Space) (*obj.Port, *obj.Portset) {
	t.Helper()
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port := po.(*obj.Port)
	ps := pso.(*obj.Portset)
	if err := k.Bind(serverSpace, portVA, port); err != nil {
		t.Fatal(err)
	}
	if err := k.Bind(serverSpace, psVA, ps); err != nil {
		t.Fatal(err)
	}
	ps.AddPort(port)
	ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
	if err := k.Bind(clientSpace, refVA, ref); err != nil {
		t.Fatal(err)
	}
	return port, ps
}

func TestIPCPingPongRPC(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		const (
			reqBuf = dataBase + 0x1000
			repBuf = dataBase + 0x2000
			srvBuf = dataBase + 0x3000
		)
		// Server: receive 2 words, reply with [w0+1, w1+7], loop.
		srv := prog.New(codeBase + 0x8000)
		srv.IPCWaitReceive(srvBuf, 2, psVA).
			Label("serve").
			Movi(4, srvBuf).
			Ld(5, 4, 0).Addi(5, 5, 1).St(4, 0, 5).
			Ld(5, 4, 4).Addi(5, 5, 7).St(4, 4, 5).
			IPCReplyWaitReceive(srvBuf, 2, psVA, srvBuf, 2).
			Jmp("serve")

		// Client: write request [10, 20], RPC, store reply + errno.
		cli := prog.New(codeBase)
		cli.Movi(4, reqBuf).Movi(5, 10).St(4, 0, 5).Movi(5, 20).St(4, 4, 5).
			IPCClientConnectSendOverReceive(reqBuf, 2, refVA, repBuf, 2).
			Movi(6, dataBase).St(6, 0, 0). // errno
			Movi(4, repBuf).Ld(5, 4, 0).Movi(6, dataBase).St(6, 4, 5).
			Movi(4, repBuf).Ld(5, 4, 4).Movi(6, dataBase).St(6, 8, 5).
			Halt()

		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		server := e.spawnAt(srv.Base(), 10)
		client := e.spawn(t, cli, 10)
		e.run(t, 400_000_000, client)
		_ = server
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("RPC errno = %v", sys.Errno(got))
		}
		if got := e.word(t, dataBase+4); got != 11 {
			t.Fatalf("reply[0] = %d, want 11", got)
		}
		if got := e.word(t, dataBase+8); got != 27 {
			t.Fatalf("reply[1] = %d, want 27", got)
		}
	})
}

// TestIPCRollForwardRegisters reproduces the paper's §4.3 example: "if an
// IPC tries to send 8,192 bytes starting from address 0x08001800 and
// successfully transfers the first 6,144 bytes and then [stalls], the
// registers will be updated to reflect a 2,048 byte transfer starting at
// address 0x08003000" — and the continuation entrypoint has been rewritten
// from ipc_client_connect_send to ipc_client_send.
func TestIPCRollForwardRegisters(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		const (
			sendBuf   = dataBase + 0x1800 // mirrors the paper's ...1800
			srvBuf    = dataBase + 0x8000
			sendWords = 2048 // 8192 bytes
			recvWords = 1536 // server takes only 6144 bytes
		)
		srv := prog.New(codeBase + 0x8000)
		// Receive only part of the message, then go quiet (the
		// connection must stay alive for the client to stay mid-send).
		srv.IPCWaitReceive(srvBuf, recvWords, psVA).
			Movi(6, dataBase).St(6, 0, 0). // receive errno
			ThreadSleepUS(1 << 30).
			Halt()

		cli := prog.New(codeBase)
		cli.IPCClientConnectSend(sendBuf, sendWords, refVA).Halt()

		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		client := e.spawn(t, cli, 10)
		server := e.spawnAt(srv.Base(), 10)
		e.k.RunFor(200_000_000)
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("server receive errno = %v (server state %v)", sys.Errno(got), server.State)
		}
		if client.State != obj.ThBlocked {
			t.Fatalf("client state %v, want blocked mid-send", client.State)
		}
		// The paper's exact register picture.
		if got := client.Regs.R[1]; got != sendBuf+6144 {
			t.Fatalf("client R1 = %#x, want %#x (+6144)", got, sendBuf+6144)
		}
		if got := client.Regs.R[2]; got != sendWords-recvWords {
			t.Fatalf("client R2 = %d words, want %d", got, sendWords-recvWords)
		}
		if got := client.Regs.PC; got != cpu.SyscallEntry(sys.NIPCClientSend) {
			t.Fatalf("client PC = %#x, want rewritten ipc_client_send entry %#x",
				got, cpu.SyscallEntry(sys.NIPCClientSend))
		}
	})
}

func TestIPCOnewayAndWaitReceive(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		const (
			msg    = dataBase + 0x1000
			srvBuf = dataBase + 0x2000
		)
		srv := prog.New(codeBase + 0x8000)
		srv.IPCWaitReceive(srvBuf, 8, psVA).
			Movi(6, dataBase).St(6, 0, 0). // errno
			Movi(6, dataBase).St(6, 4, 2). // words remaining (R2)
			Movi(4, srvBuf).Ld(5, 4, 0).
			Movi(6, dataBase).St(6, 8, 5). // first word
			Halt()
		cli := prog.New(codeBase)
		cli.Movi(4, msg).Movi(5, 0xABCD).St(4, 0, 5).
			IPCSendOneway(msg, 1, refVA).
			Halt()
		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		server := e.spawnAt(srv.Base(), 10)
		client := e.spawn(t, cli, 10)
		e.run(t, 200_000_000, client, server)
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("server errno = %v", sys.Errno(got))
		}
		if got := e.word(t, dataBase+4); got != 7 {
			t.Fatalf("server words remaining = %d, want 7 (received 1 of 8)", got)
		}
		if got := e.word(t, dataBase+8); got != 0xABCD {
			t.Fatalf("payload = %#x", got)
		}
		// After the oneway both sides are disconnected: the client's
		// client half and the server's server half are idle again.
		if client.IPCClient.Phase != obj.IPCIdle || server.IPCServer.Phase != obj.IPCIdle {
			t.Fatalf("phases %v/%v, want idle/idle", client.IPCClient.Phase, server.IPCServer.Phase)
		}
	})
}

func TestIPCPeerDeathDeliversEDEAD(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		const srvBuf = dataBase + 0x2000
		// Server waits for a request that never completes: client
		// connects, sends one word, then halts mid-connection.
		srv := prog.New(codeBase + 0x8000)
		srv.IPCWaitReceive(srvBuf, 8, psVA).
			Movi(6, dataBase).St(6, 0, 0). // errno after peer death
			Halt()
		cli := prog.New(codeBase)
		cli.Movi(4, dataBase+0x1000).Movi(5, 1).St(4, 0, 5).
			IPCClientConnectSend(dataBase+0x1000, 1, refVA).
			Halt() // dies connected
		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		server := e.spawnAt(srv.Base(), 10)
		client := e.spawn(t, cli, 10)
		e.run(t, 200_000_000, client, server)
		if got := e.word(t, dataBase); got != uint32(sys.EDEAD) {
			t.Fatalf("server errno = %v, want EDEAD", sys.Errno(got))
		}
	})
}

func TestIPCDisconnectDeliversECONN(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		const srvBuf = dataBase + 0x2000
		srv := prog.New(codeBase + 0x8000)
		srv.IPCWaitReceive(srvBuf, 8, psVA).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		cli := prog.New(codeBase)
		cli.Movi(4, dataBase+0x1000).Movi(5, 1).St(4, 0, 5).
			IPCClientConnectSend(dataBase+0x1000, 1, refVA).
			IPCClientDisconnect().
			ThreadSleepUS(500_000). // stay alive so EDEAD is not the cause
			Halt()
		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		server := e.spawnAt(srv.Base(), 10)
		client := e.spawn(t, cli, 10)
		e.run(t, 400_000_000, server)
		_ = client
		if got := e.word(t, dataBase); got != uint32(sys.ECONN) {
			t.Fatalf("server errno = %v, want ECONN", sys.Errno(got))
		}
	})
}

// TestIPCCrossSpaceServerFault drives the Table 3 scenario: during the
// client's send, the server's receive buffer page is unmapped, so the
// copy takes a *server-side* (cross-space) fault, rolls the registers
// forward, remedies, and restarts without re-sending.
func TestIPCCrossSpaceServerFault(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		k := core.New(cfg)
		sSrv := k.NewSpace()
		sCli := k.NewSpace()
		bindIPC(t, k, sSrv, sCli)

		mkData := func(s *obj.Space) {
			r, err := k.NewBoundRegion(s, kernelDataHandle(), dataSize, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := k.MapInto(s, r, dataBase, 0, dataSize, mmu.PermRW); err != nil {
				t.Fatal(err)
			}
		}
		mkData(sSrv)
		mkData(sCli)

		const (
			cliBuf = dataBase + 0x1000
			srvBuf = dataBase + 0x4000 // untouched page: soft fault on first store
		)
		srv := prog.New(codeBase)
		srv.IPCWaitReceive(srvBuf, 4, psVA).
			Movi(4, srvBuf).Ld(5, 4, 0).
			Movi(6, dataBase).St(6, 0, 5).
			Halt()
		cli := prog.New(codeBase)
		// Touch the client buffer first so only the server side faults
		// during the copy.
		cli.Movi(4, cliBuf).Movi(5, 0x77).St(4, 0, 5).
			Movi(5, 0x88).St(4, 4, 5).Movi(5, 0x99).St(4, 8, 5).Movi(5, 0xAA).St(4, 12, 5).
			IPCClientConnectSend(cliBuf, 4, refVA).
			Halt()
		if _, err := k.SpawnProgram(sSrv, codeBase, srv.MustAssemble(), 10); err != nil {
			t.Fatal(err)
		}
		client, err := k.SpawnProgram(sCli, codeBase, cli.MustAssemble(), 10)
		if err != nil {
			t.Fatal(err)
		}
		k.RunFor(400_000_000)
		if !client.Exited {
			t.Fatalf("client did not finish (state %v pc %#x)", client.State, client.Regs.PC)
		}
		got, err := k.ReadMem(sSrv, dataBase, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 0x77 {
			t.Fatalf("server received %#x, want 0x77", got[0])
		}
		cross := k.Stats().FaultCount[core.FaultKey{Class: mmu.FaultSoft, Side: core.FaultCross}]
		if cross == 0 {
			t.Fatal("no cross-space (server-side) fault recorded")
		}
	})
}

// TestHardFaultPagerRoundTrip is the full user-mode memory-manager path:
// a thread touches a pager-backed page, the kernel turns the hard fault
// into an exception-IPC notification, the pager thread receives it via
// ipc_wait_receive, services it with mem_allocate, and the faulting
// thread resumes transparently.
func TestHardFaultPagerRoundTrip(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		port, _ := bindIPC(t, e.k, e.s, e.s)

		// A pager-backed region mapped at pBase.
		const pBase = 0x0100_0000
		reg, err := e.k.NewBoundRegion(e.s, regVA, 8*mem.PageSize, false)
		if err != nil {
			t.Fatal(err)
		}
		e.k.AttachPager(reg, port)
		if _, err := e.k.MapInto(e.s, reg, pBase, 0, 8*mem.PageSize, mmu.PermRW); err != nil {
			t.Fatal(err)
		}

		const fmBuf = dataBase + 0x1000 // pager's fault-message buffer
		pager := prog.New(codeBase + 0x8000)
		pager.Label("loop").
			IPCWaitReceive(fmBuf, 2, psVA).
			Movi(1, regVA).
			Movi(4, fmBuf).Ld(2, 4, 0). // offset from the message
			Movi(3, 1).
			Syscall(sys.NMemAllocate).
			Jmp("loop")

		// Client: store then load across three pager-backed pages.
		cli := prog.New(codeBase)
		cli.Movi(4, pBase).Movi(5, 0x1234).St(4, 0, 5).
			Movi(4, pBase+mem.PageSize).Movi(5, 0x5678).St(4, 0, 5).
			Movi(4, pBase).Ld(5, 4, 0).
			Movi(6, dataBase).St(6, 0, 5).
			Movi(4, pBase+mem.PageSize).Ld(5, 4, 0).
			Movi(6, dataBase).St(6, 4, 5).
			Halt()

		if _, err := e.k.LoadImage(e.s, pager.Base(), pager.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		pt := e.spawnAt(pager.Base(), 15) // pager above client priority
		client := e.spawn(t, cli, 10)
		e.run(t, 400_000_000, client)
		_ = pt
		if got := e.word(t, dataBase); got != 0x1234 {
			t.Fatalf("page0 word = %#x", got)
		}
		if got := e.word(t, dataBase+4); got != 0x5678 {
			t.Fatalf("page1 word = %#x", got)
		}
		hard := e.k.Stats().FaultCount[core.FaultKey{Class: mmu.FaultHard, Side: core.FaultSame}]
		if hard < 2 {
			t.Fatalf("hard faults = %d, want >= 2", hard)
		}
	})
}

// TestIPCStreamLargerThanReceiveBuffer checks streaming: the sender's
// 8 words arrive across two 4-word receives.
func TestIPCStreamLargerThanReceiveBuffer(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		const (
			sBuf = dataBase + 0x1000
			rBuf = dataBase + 0x2000
		)
		srv := prog.New(codeBase + 0x8000)
		srv.IPCWaitReceive(rBuf, 4, psVA).
			// Continue on the server half for the rest of the stream.
			Movi(1, rBuf+16).Movi(2, 4).Syscall(sys.NIPCServerReceive).
			Movi(4, rBuf).Ld(5, 4, 28).
			Movi(6, dataBase).St(6, 0, 5). // last word
			Halt()
		cli := prog.New(codeBase)
		// Fill 8 words with 1..8.
		for i := uint32(0); i < 8; i++ {
			cli.Movi(4, sBuf+i*4).Movi(5, i+1).St(4, 0, 5)
		}
		cli.IPCClientConnectSend(sBuf, 8, refVA).Halt()
		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		server := e.spawnAt(srv.Base(), 10)
		client := e.spawn(t, cli, 10)
		e.run(t, 200_000_000, client, server)
		if got := e.word(t, dataBase); got != 8 {
			t.Fatalf("last streamed word = %d, want 8", got)
		}
	})
}
