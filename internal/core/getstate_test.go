package core_test

// Guest-level coverage of get_state for every object type — the uniform
// "getobjstate" common op of §4.3.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/sys"
)

func TestGetStateAllObjectTypes(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	const (
		mtx  = dataBase + 0x100
		cnd  = dataBase + 0x104
		port = dataBase + 0x108
		ps   = dataBase + 0x10C
		ref  = dataBase + 0x110
		regH = dataBase + 0x114
		mapH = dataBase + 0x118
		spc  = dataBase + 0x11C
		buf  = dataBase + 0x400
		out  = dataBase + 0x800 // words-written per step
	)
	b := prog.New(codeBase)
	step := 0
	record := func() {
		b.Movi(6, out+uint32(step)*4).St(6, 0, 1) // R1 = words written
		step++
	}
	b.MutexCreate(mtx).CondCreate(cnd).
		Create(sys.ObjPort, port).Create(sys.ObjPortset, ps).Create(sys.ObjRef, ref)
	b.Movi(1, regH).Movi(2, 2*mem.PageSize).Movi(3, 1).
		Syscall(sys.CommonOpNum(sys.ObjRegion, sys.OpCreate))
	b.Movi(1, mapH).Movi(2, regH).Movi(3, 0x0090_0000).Movi(4, 2*mem.PageSize).Movi(5, 0).
		Syscall(sys.CommonOpNum(sys.ObjMapping, sys.OpCreate))
	b.Create(sys.ObjSpace, spc)
	// portset_add so the port shows membership.
	b.Movi(1, ps).Movi(2, port).Syscall(sys.NPortsetAdd)
	// point the ref at the port.
	b.Movi(1, port).Movi(2, ref).Syscall(sys.CommonOpNum(sys.ObjPort, sys.OpReference))

	b.GetState(sys.ObjMutex, mtx, buf)
	record()
	b.GetState(sys.ObjCond, cnd, buf)
	record()
	b.GetState(sys.ObjPort, port, buf)
	record()
	b.GetState(sys.ObjPortset, ps, buf)
	record()
	b.GetState(sys.ObjRef, ref, buf)
	record()
	b.GetState(sys.ObjRegion, regH, buf)
	record()
	b.GetState(sys.ObjMapping, mapH, buf)
	record()
	b.GetState(sys.ObjSpace, spc, buf)
	record()
	// Thread state of self.
	b.ThreadSelf().Mov(3, 1) // r3 = own handle
	b.Mov(1, 3).Movi(2, buf).Syscall(sys.CommonOpNum(sys.ObjThread, sys.OpGetState))
	record()
	b.Halt()

	th := e.spawn(t, b, 10)
	e.run(t, 200_000_000, th)
	wants := []uint32{
		3,                             // mutex: locked, holder, waiters
		1,                             // cond: waiters
		2,                             // port: inSet, pending
		2,                             // portset: ports, pending
		1,                             // ref: target type
		3,                             // region: size, flags, present
		4,                             // mapping: base, size, perm, off
		2,                             // space: objects, threads
		uint32(core.ThreadStateWords), // thread frame
	}
	for i, want := range wants {
		if got := e.word(t, out+uint32(i)*4); got != want {
			t.Errorf("step %d: get_state wrote %d words, want %d", i, got, want)
		}
	}
	// Spot-check content: the ref's target type word is port+1.
	b2 := prog.New(codeBase + 0x8000)
	b2.GetState(sys.ObjRef, ref, buf).
		Movi(4, buf).Ld(5, 4, 0).
		Movi(6, dataBase).St(6, 0, 5).
		Halt()
	if _, err := e.k.LoadImage(e.s, b2.Base(), b2.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	th2 := e.spawnAt(b2.Base(), 10)
	e.run(t, 50_000_000, th2)
	if got := e.word(t, dataBase); got != uint32(sys.ObjPort)+1 {
		t.Fatalf("ref target type word = %d, want %d", got, uint32(sys.ObjPort)+1)
	}
}

func TestSetStateMutexAndRegionViaSyscalls(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	const (
		mtx = dataBase + 0x100
		buf = dataBase + 0x400
	)
	b := prog.New(codeBase)
	b.MutexCreate(mtx)
	// set_state(mutex, [1]) -> locked.
	b.Movi(4, buf).Movi(5, 1).St(4, 0, 5).
		SetState(sys.ObjMutex, mtx, buf).
		Movi(6, dataBase).St(6, 0, 0). // errno
		MutexTrylock(mtx).
		Movi(6, dataBase).St(6, 4, 0). // should be EWOULDBLOCK
		// set_state(mutex, [0]) -> unlocked, then trylock succeeds.
		Movi(4, buf).Movi(5, 0).St(4, 0, 5).
		SetState(sys.ObjMutex, mtx, buf).
		MutexTrylock(mtx).
		Movi(6, dataBase).St(6, 8, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 100_000_000, th)
	for i, want := range []sys.Errno{sys.EOK, sys.EWOULDBLOCK, sys.EOK} {
		if got := e.word(t, dataBase+uint32(i)*4); got != uint32(want) {
			t.Errorf("step %d errno %v, want %v", i, sys.Errno(got), want)
		}
	}
}
