package core_test

// Tests for §2.2 continuation recognition: the kernel completes a blocked
// mutex_lock by rewriting the waiter's explicit continuation.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/prog"
)

// crWorkload runs a *contended* counter program — each thread yields
// inside its critical section so the other reliably blocks in mutex_lock
// — and returns (counter, continuations recognized, syscall count).
func crWorkload(t *testing.T, cfg core.Config, rounds uint32) (uint32, uint64, uint64) {
	t.Helper()
	e := newEnv(t, cfg)
	const (
		mtx = dataBase + 0x100
		ctr = dataBase + 0x200
	)
	b := prog.New(codeBase)
	worker := func(entry string) {
		b.Label(entry).Movi(6, 0).
			Label(entry+".loop").
			MutexLock(mtx).
			SchedYield(). // hold the lock across a reschedule
			Movi(4, ctr).Ld(5, 4, 0).Addi(5, 5, 1).St(4, 0, 5).
			MutexUnlock(mtx).
			Addi(6, 6, 1).Movi(5, rounds).Blt(6, 5, entry+".loop").
			Halt()
	}
	b.MutexCreate(mtx).Jmp("t1")
	worker("t1")
	worker("t2")
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	t1 := e.spawnAt(codeBase, 10)
	t2 := e.spawnAt(b.Addr("t2"), 10)
	e.run(t, 2_000_000_000, t1, t2)
	return e.word(t, ctr), e.k.Stats().ContinuationsRecognized, e.k.Stats().Syscalls
}

func TestContinuationRecognitionSemantics(t *testing.T) {
	// Identical results with the optimization on and off.
	const rounds = 200
	base, recBase, _ := crWorkload(t, core.Config{Model: core.ModelInterrupt}, rounds)
	opt, recOpt, _ := crWorkload(t, core.Config{Model: core.ModelInterrupt, ContinuationRecognition: true}, rounds)
	if base != opt || base != 2*rounds {
		t.Fatalf("results differ: base=%d opt=%d want=%d", base, opt, 2*rounds)
	}
	if recBase != 0 {
		t.Fatalf("recognition counted with the optimization off: %d", recBase)
	}
	if recOpt == 0 {
		t.Fatal("optimization on but nothing recognized under contention")
	}
}

func TestContinuationRecognitionSavesSyscalls(t *testing.T) {
	const rounds = 300
	_, _, sysBase := crWorkload(t, core.Config{Model: core.ModelInterrupt}, rounds)
	_, rec, sysOpt := crWorkload(t, core.Config{Model: core.ModelInterrupt, ContinuationRecognition: true}, rounds)
	if sysOpt >= sysBase {
		t.Fatalf("no syscall savings: %d -> %d (recognized %d)", sysBase, sysOpt, rec)
	}
	// Every recognized continuation eliminates (at least) one mutex_lock
	// re-dispatch.
	if sysBase-sysOpt < rec/2 {
		t.Fatalf("savings %d inconsistent with %d recognitions", sysBase-sysOpt, rec)
	}
}

func TestContinuationRecognitionIgnoredInProcessModel(t *testing.T) {
	// The flag is accepted but has no effect in the process model, where
	// waiters resume inside their retained kernel stacks.
	const rounds = 100
	res, rec, _ := crWorkload(t, core.Config{Model: core.ModelProcess, ContinuationRecognition: true}, rounds)
	if res != 2*rounds {
		t.Fatalf("result %d", res)
	}
	if rec != 0 {
		t.Fatalf("process model recognized %d continuations", rec)
	}
}

func TestContinuationRecognitionCondSignalChain(t *testing.T) {
	// cond_signal + free mutex: the waiter goes from cond queue straight
	// to holding the mutex without re-entering the kernel.
	e := newEnv(t, core.Config{Model: core.ModelInterrupt, ContinuationRecognition: true})
	const (
		mtx  = dataBase + 0x100
		cnd  = dataBase + 0x104
		flag = dataBase + 0x200
	)
	b := prog.New(codeBase)
	b.MutexCreate(mtx).CondCreate(cnd).
		MutexLock(mtx).
		Label("check").
		Movi(4, flag).Ld(5, 4, 0).Movi(6, 0)
	b.Bne(5, 6, "got")
	b.CondWait(cnd, mtx).Jmp("check").
		Label("got").MutexUnlock(mtx).Halt()
	b.Label("sig").
		ThreadSleepUS(500).
		MutexLock(mtx).
		Movi(4, flag).Movi(5, 1).St(4, 0, 5).
		MutexUnlock(mtx). // release BEFORE signal so the mutex is free
		CondSignal(cnd).
		Halt()
	w := e.spawn(t, b, 10)
	s := e.spawnAt(b.Addr("sig"), 10)
	e.run(t, 400_000_000, w, s)
	if e.k.Stats().ContinuationsRecognized == 0 {
		t.Fatal("signal chain not recognized")
	}
}
