package core_test

// Chaos test: threads issuing *random* sequences of IPC and sync syscalls
// — including protocol-violating ones (receives with no connection,
// replies in the wrong direction, disconnects mid-anything, alerts,
// interrupts, destroys) — must never panic the kernel or wedge it in a
// way Shutdown cannot unwind. Errors are expected; crashes are not.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// chaosProgram emits a random syscall soup for one thread.
func chaosProgram(b *prog.Builder, rng *rand.Rand, label string, n int) {
	const (
		buf = dataBase + 0x1000
		mtx = dataBase + 0x10
	)
	b.Label(label)
	for i := 0; i < n; i++ {
		switch rng.Intn(14) {
		case 0:
			b.IPCClientConnectSend(buf, uint32(1+rng.Intn(64)), refVA)
		case 1:
			b.IPCClientConnectSendOverReceive(buf, uint32(1+rng.Intn(32)), refVA, buf+0x400, uint32(1+rng.Intn(32)))
		case 2:
			b.IPCClientSend(buf, uint32(1+rng.Intn(16)))
		case 3:
			b.IPCClientReceive(buf, uint32(1+rng.Intn(16)))
		case 4:
			b.IPCClientDisconnect()
		case 5:
			b.Syscall(sys.NIPCClientAlert)
		case 6:
			b.IPCWaitReceive(buf+0x800, uint32(1+rng.Intn(32)), psVA)
		case 7:
			b.IPCReply(buf, uint32(1+rng.Intn(8)))
		case 8:
			b.Movi(1, buf).Movi(2, uint32(1+rng.Intn(8))).Syscall(sys.NIPCServerReceive)
		case 9:
			b.Syscall(sys.NIPCServerDisconnect)
		case 10:
			b.IPCSendOneway(buf, uint32(1+rng.Intn(16)), refVA)
		case 11:
			b.MutexTrylock(mtx)
		case 12:
			b.SchedYield()
		case 13:
			b.ThreadSleepUS(uint32(1 + rng.Intn(100)))
		}
	}
	b.Halt()
}

func TestIPCChaosNeverPanics(t *testing.T) {
	seeds := []int64{3, 99, 4242, 80486}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, cfg := range core.Configurations() {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("seed %d %s: kernel panicked: %v", seed, cfg.Name(), r)
					}
				}()
				e := newEnv(t, cfg)
				bindIPC(t, e.k, e.s, e.s)
				mo, _ := obj.New(sys.ObjMutex)
				if err := e.k.Bind(e.s, dataBase+0x10, mo); err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				b := prog.New(codeBase)
				var labels []string
				for i := 0; i < 4; i++ {
					l := fmt.Sprintf("t%d", i)
					labels = append(labels, l)
					chaosProgram(b, rng, l, 12+rng.Intn(20))
				}
				img := b.MustAssemble()
				if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
					t.Fatal(err)
				}
				var ths []*obj.Thread
				for _, l := range labels {
					ths = append(ths, e.spawnAt(b.Addr(l), 8+rng.Intn(4)))
				}
				// Random mid-run interference: interrupts and a destroy.
				e.k.RunFor(200_000)
				for _, th := range ths {
					if rng.Intn(2) == 0 && th.State != obj.ThDead {
						th.Interrupted = true
						if th.State == obj.ThBlocked {
							e.k.WakeThread(th)
						}
					}
				}
				e.k.RunFor(300_000)
				if victim := ths[rng.Intn(len(ths))]; victim.State != obj.ThDead {
					e.k.DestroyThread(victim)
				}
				// Let it run a while; deadlocks among chaos threads are
				// legitimate outcomes, so completion is not required.
				e.k.RunFor(50_000_000)
				// Shutdown must always unwind cleanly.
				e.k.Shutdown()
				if got := len(e.k.Threads()); got != 0 {
					t.Fatalf("seed %d %s: %d threads survived shutdown", seed, cfg.Name(), got)
				}
			}()
		}
	}
}
