package core

import (
	"sync"

	"repro/internal/obj"
	"repro/internal/profile"
)

// ParallelHost execution (Config.ParallelHost): one host goroutine per
// simulated CPU, giving real host parallelism for the user-mode batches.
//
// Under the big and per-subsystem lock models all kernel sections run
// under a single gate mutex — the host analogue of a kernel lock — so
// kernel state needs no finer-grained host locking; the only code outside
// the gate is cpu.StepN on a space's memory, guarded by that space's
// StepMu (exec.go stepUser). Threads are pinned to their space's home CPU
// (no stealing), so one space's threads never step concurrently.
//
// The fine lock model (Config.LockModel == LockFine) shards the gate:
//
//   - shards[i]   per-CPU gate shard. Owns CPU i's run queue, resched
//     flag, and mailbox application. Only CPU i's goroutine takes its own
//     shard; remote CPUs never do.
//   - kmu         the shared kernel mutex. Every kernel section — object
//     and IPC state, clock reads/advances, stats and profile charging,
//     k.cur — runs under kmu. What sharding buys is that the per-CPU hot
//     loop (mailbox drain, local queue pick) and the user-mode batches
//     stay off the shared mutex entirely.
//   - qmu[i]      leaf lock on CPU i's mailbox. Cross-CPU operations are
//     an ordered two-phase protocol: the initiating CPU posts the
//     operation under qmu[i] (phase one), and the owner applies it from
//     its loop under shards[i] (phase two). Remote wakes, removals, and
//     resched kicks (the IPI analogue) all travel this way, so no CPU
//     ever touches another CPU's queue or flags directly.
//   - p.mu        idle bookkeeping (idle count, done flag, the cond).
//
// Lock order: shards[self] → kmu → p.mu → qmu[any]. Each is only ever
// taken with the earlier ones (or none) held, so the order is total and
// deadlock-free; qmu and p.mu are leaves with respect to each other
// (wakeIdlers takes p.mu alone, mail posts take qmu alone).
//
// Requires the interrupt execution model: each CPU goroutine is exactly
// the paper's one-kernel-stack-per-processor, and blocking unwinds back to
// the CPU loop instead of parking a baton-passing goroutine. The
// deterministic-timeline guarantee is waived in this mode (wall-clock
// interleaving decides the schedule); everything else — correctness,
// stats, final memory state per workload — still holds, and the whole mode
// must pass `go test -race`.
type parState struct {
	mu   sync.Mutex
	cond *sync.Cond
	idle int
	done bool

	// Sharded gate (fine lock model only).
	sharded bool
	shards  []sync.Mutex
	kmu     sync.Mutex
	qmu     []sync.Mutex
	mail    []cpuMail
}

// mailOp is one posted cross-CPU operation: a remote wake (enqueue on the
// owner's queue) or a remote removal. Kept in one ordered list so a
// wake+drop or drop+wake pair applies in the order it was posted.
type mailOp struct {
	t    *obj.Thread
	drop bool
}

// cpuMail is one CPU's mailbox. ops/kicked/stamp are guarded by the
// owner's qmu; spare is the owner's drained-buffer scratch (owner-only,
// swapped in under qmu so steady-state drains never allocate).
type cpuMail struct {
	ops    []mailOp
	kicked bool
	stamp  uint64 // kicker's clock at the first pending kick
	spare  []mailOp
}

// newParState builds the gate. It is created once, in New, for any
// ParallelHost kernel with more than one CPU — not per run — so
// observation snapshots (Kernel.Stats, Kernel.ProfileSnapshot) can lock
// the same mutex the CPU goroutines hold and read live state race-free.
func newParState(ncpus int, sharded bool) *parState {
	p := &parState{sharded: sharded}
	p.cond = sync.NewCond(&p.mu)
	if sharded {
		p.shards = make([]sync.Mutex, ncpus)
		p.qmu = make([]sync.Mutex, ncpus)
		p.mail = make([]cpuMail, ncpus)
	}
	return p
}

// shardedPar reports whether this kernel is running the sharded
// ParallelHost gate (fine lock model on real host goroutines).
func (k *Kernel) shardedPar() bool { return k.par != nil && k.par.sharded }

// gateLock enters a kernel section on CPU c: takes the kernel gate (kmu
// under the sharded model, the single gate otherwise) and installs c as
// the acting CPU. k.cur is only meaningful while the gate is held.
func (k *Kernel) gateLock(c *CPU) {
	if k.par.sharded {
		k.par.kmu.Lock()
	} else {
		k.par.mu.Lock()
	}
	k.cur = c
}

// gateUnlock leaves a kernel section. The caller must re-enter with
// gateLock before touching any kernel state again. Under the sharded
// model the caller's own gate shard stays held across the unlock (it is
// owner-only; releasing it would buy nothing and cost a reacquire).
func (k *Kernel) gateUnlock() {
	if k.par.sharded {
		k.par.kmu.Unlock()
	} else {
		k.par.mu.Unlock()
	}
}

// snapLock takes the lock an observation snapshot (Stats, ProfileSnapshot)
// needs to read live kernel state race-free; snapUnlock releases it. All
// snapshot-visible state — per-CPU stats shards, profile shards, clocks —
// is written under kmu in sharded mode, so kmu alone gives a consistent
// cut without stalling the per-CPU shards.
func (k *Kernel) snapLock() {
	if k.par.sharded {
		k.par.kmu.Lock()
	} else {
		k.par.mu.Lock()
	}
}

func (k *Kernel) snapUnlock() {
	if k.par.sharded {
		k.par.kmu.Unlock()
	} else {
		k.par.mu.Unlock()
	}
}

// wakeIdlers pokes every CPU parked on the idle cond. Classic gate:
// caller already holds p.mu (the gate), so a bare broadcast suffices.
// Sharded gate: callers hold kmu (or less), so take p.mu for the
// broadcast (kmu → p.mu is in-order).
func (p *parState) wakeIdlers() {
	if !p.sharded {
		p.cond.Broadcast()
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *parState) isDone() bool {
	p.mu.Lock()
	d := p.done
	p.mu.Unlock()
	return d
}

func (p *parState) setDone() {
	p.mu.Lock()
	p.done = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// mailPostWake posts a remote enqueue of t to its home CPU's mailbox
// (phase one of the two-phase cross-CPU wake). The broadcast covers the
// case where the owner is already parked idle: a parked CPU always has an
// empty mailbox (it re-checks before waiting), so the post + broadcast
// pair cannot be missed.
func (k *Kernel) mailPostWake(c *CPU, t *obj.Thread) {
	p := k.par
	home := t.HomeCPU
	p.qmu[home].Lock()
	p.mail[home].ops = append(p.mail[home].ops, mailOp{t: t})
	p.qmu[home].Unlock()
	p.wakeIdlers()
}

// mailPostDrop posts a remote queue removal of t to its home CPU's
// mailbox. Until the owner drains it the entry sits stale in the queue;
// Pick's runnable check skips it, exactly like a thread that blocked
// while queued under the classic gate.
func (k *Kernel) mailPostDrop(c *CPU, t *obj.Thread) {
	p := k.par
	home := t.HomeCPU
	p.qmu[home].Lock()
	p.mail[home].ops = append(p.mail[home].ops, mailOp{t: t, drop: true})
	p.qmu[home].Unlock()
	p.wakeIdlers()
}

// mailPostKick posts the IPI analogue: the owner sets its own resched
// flag when it drains. The kicker's clock is stamped here (under kmu) so
// the preempt-latency histogram still measures wake-to-dispatch across
// CPUs, as in the classic path.
func (k *Kernel) mailPostKick(target *CPU) {
	p := k.par
	p.qmu[target.id].Lock()
	if !p.mail[target.id].kicked {
		p.mail[target.id].kicked = true
		p.mail[target.id].stamp = k.cur.clk.Now()
	}
	p.qmu[target.id].Unlock()
	p.wakeIdlers()
}

// mailPending reports whether c's mailbox holds undrained operations.
// Used by the idle path (under p.mu) and the quiescence check.
func (k *Kernel) mailPending(id int) bool {
	p := k.par
	p.qmu[id].Lock()
	pending := len(p.mail[id].ops) > 0 || p.mail[id].kicked
	p.qmu[id].Unlock()
	return pending
}

// runParallel drives the CPUs on one host goroutine each until stop()
// reports true or the system is quiescent. Mailboxes persist across runs:
// a stop() that lands between a post and its drain leaves the operation
// pending, and the next run's first drain applies it.
func (k *Kernel) runParallel(stop func() bool) {
	p := k.par // created in New; lives across runs (see newParState)
	p.mu.Lock()
	p.done = false
	p.idle = 0
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range k.cpus {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			if p.sharded {
				k.cpuLoopSharded(c, stop)
			} else {
				k.cpuLoop(c, stop)
			}
		}(c)
	}
	wg.Wait()
	k.cur = k.cpus[0]
}

// cpuLoop is one CPU's scheduler loop under the classic single gate.
// Invariant: the gate is held at the top of every iteration (and across
// everything except user-mode batches).
func (k *Kernel) cpuLoop(c *CPU, stop func() bool) {
	p := k.par
	k.gateLock(c)
	defer k.gateUnlock()
	for {
		if p.done {
			return
		}
		if stop() {
			p.done = true
			p.cond.Broadcast()
			return
		}
		if t := k.schedPick(c); t != nil {
			k.dispatch(c, t, false)
			continue
		}
		// Nothing runnable here: service the local timer queue, else wait
		// for a wake (kickCPU broadcasts) or system quiescence.
		if d, ok := c.clk.NextDeadline(); ok {
			if now := c.clk.Now(); d > now {
				c.stats.IdleCycles += d - now
				k.profCharge(c, nil, profile.PathIdle, d-now)
			}
			c.clk.AdvanceTo(d)
			continue
		}
		p.idle++
		if p.idle == len(k.cpus) && k.quiescent() {
			p.idle--
			p.done = true
			p.cond.Broadcast()
			return
		}
		p.cond.Wait()
		k.cur = c // another CPU held the gate while we slept
		p.idle--
	}
}

// cpuLoopSharded is one CPU's scheduler loop under the sharded gate. Each
// iteration: take the own shard, apply the mailbox, then enter a kernel
// section (kmu) only for the decision and dispatch. A kicked resched flag
// posted mid-batch is observed at the next loop top — preemption latency
// in this mode is bounded by one user batch, the same wall-clock
// granularity the classic gate already had.
func (k *Kernel) cpuLoopSharded(c *CPU, stop func() bool) {
	p := k.par
	for {
		p.shards[c.id].Lock()
		k.drainMail(c)
		p.kmu.Lock()
		k.cur = c
		if p.isDone() {
			p.kmu.Unlock()
			p.shards[c.id].Unlock()
			return
		}
		if stop() {
			p.kmu.Unlock()
			p.shards[c.id].Unlock()
			p.setDone()
			return
		}
		if t := k.schedPick(c); t != nil {
			k.dispatch(c, t, false)
			p.kmu.Unlock()
			p.shards[c.id].Unlock()
			continue
		}
		if d, ok := c.clk.NextDeadline(); ok {
			if now := c.clk.Now(); d > now {
				c.stats.IdleCycles += d - now
				k.profCharge(c, nil, profile.PathIdle, d-now)
			}
			c.clk.AdvanceTo(d)
			p.kmu.Unlock()
			p.shards[c.id].Unlock()
			continue
		}
		p.kmu.Unlock()
		p.shards[c.id].Unlock()
		// Idle: park on the global cond. Re-check the mailbox under p.mu
		// before every wait — a post lands under qmu first and broadcasts
		// under p.mu second, so a pending post is either visible here or
		// its broadcast is still owed to us.
		p.mu.Lock()
		for {
			if p.done {
				p.mu.Unlock()
				return
			}
			if k.mailPending(c.id) {
				break
			}
			p.idle++
			if p.idle == len(k.cpus) && k.quiescentSharded() {
				p.idle--
				p.done = true
				p.cond.Broadcast()
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			p.idle--
		}
		p.mu.Unlock()
	}
}

// quiescent reports whether no CPU has runnable or timed work left.
// Called under the classic gate.
func (k *Kernel) quiescent() bool {
	for _, c := range k.cpus {
		if c.current != nil || k.runnableQueuedOn(c) || c.clk.Pending() > 0 {
			return false
		}
	}
	return true
}

// quiescentSharded is the sharded-gate quiescence check, run by the last
// CPU to go idle while holding p.mu. With p.idle == NumCPUs every other
// CPU has released its shard and kmu and parked (or is re-acquiring p.mu
// inside Wait), and each one's state writes happened-before its idle++
// under p.mu — so reading queues, clocks, and current here is race-free
// without taking the shards. A pending mailbox defeats quiescence: its
// owner was broadcast-woken by the post and will drain it.
func (k *Kernel) quiescentSharded() bool {
	for _, c := range k.cpus {
		if c.current != nil || k.runnableQueuedOn(c) || c.clk.Pending() > 0 || k.mailPending(c.id) {
			return false
		}
	}
	return true
}
