package core

import (
	"sync"

	"repro/internal/profile"
)

// ParallelHost execution (Config.ParallelHost): one host goroutine per
// simulated CPU, giving real host parallelism for the user-mode batches.
// All kernel sections run under a single gate mutex — the host analogue of
// a kernel lock — so kernel state needs no finer-grained host locking; the
// only code outside the gate is cpu.StepN on a space's memory, guarded by
// that space's StepMu (exec.go stepUser). Threads are pinned to their
// space's home CPU (no stealing), so one space's threads never step
// concurrently with each other.
//
// Requires the interrupt execution model: each CPU goroutine is exactly
// the paper's one-kernel-stack-per-processor, and blocking unwinds back to
// the CPU loop instead of parking a baton-passing goroutine. The
// deterministic-timeline guarantee is waived in this mode (wall-clock
// interleaving decides the schedule); everything else — correctness,
// stats, final memory state per workload — still holds, and the whole mode
// must pass `go test -race`.
type parState struct {
	mu   sync.Mutex
	cond *sync.Cond
	idle int
	done bool
}

// newParState builds the gate. It is created once, in New, for any
// ParallelHost kernel with more than one CPU — not per run — so
// observation snapshots (Kernel.Stats, Kernel.ProfileSnapshot) can lock
// the same mutex the CPU goroutines hold and read live state race-free.
func newParState() *parState {
	p := &parState{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// gateLock enters a kernel section on CPU c: takes the gate and installs c
// as the acting CPU. k.cur is only meaningful while the gate is held.
func (k *Kernel) gateLock(c *CPU) {
	k.par.mu.Lock()
	k.cur = c
}

// gateUnlock leaves a kernel section. The caller must re-enter with
// gateLock before touching any kernel state again.
func (k *Kernel) gateUnlock() {
	k.par.mu.Unlock()
}

// runParallel drives the CPUs on one host goroutine each until stop()
// reports true or the system is quiescent.
func (k *Kernel) runParallel(stop func() bool) {
	p := k.par // created in New; lives across runs (see newParState)
	p.mu.Lock()
	p.done = false
	p.idle = 0
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range k.cpus {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			k.cpuLoop(c, stop)
		}(c)
	}
	wg.Wait()
	k.cur = k.cpus[0]
}

// cpuLoop is one CPU's scheduler loop. Invariant: the gate is held at the
// top of every iteration (and across everything except user-mode batches).
func (k *Kernel) cpuLoop(c *CPU, stop func() bool) {
	p := k.par
	k.gateLock(c)
	defer k.gateUnlock()
	for {
		if p.done {
			return
		}
		if stop() {
			p.done = true
			p.cond.Broadcast()
			return
		}
		if t := k.schedPick(c); t != nil {
			k.dispatch(c, t, false)
			continue
		}
		// Nothing runnable here: service the local timer queue, else wait
		// for a wake (kickCPU broadcasts) or system quiescence.
		if d, ok := c.clk.NextDeadline(); ok {
			if now := c.clk.Now(); d > now {
				c.stats.IdleCycles += d - now
				k.profCharge(c, nil, profile.PathIdle, d-now)
			}
			c.clk.AdvanceTo(d)
			continue
		}
		p.idle++
		if p.idle == len(k.cpus) && k.quiescent() {
			p.idle--
			p.done = true
			p.cond.Broadcast()
			return
		}
		p.cond.Wait()
		k.cur = c // another CPU held the gate while we slept
		p.idle--
	}
}

// quiescent reports whether no CPU has runnable or timed work left.
// Called under the gate.
func (k *Kernel) quiescent() bool {
	for _, c := range k.cpus {
		if c.current != nil || k.runnableQueuedOn(c) || c.clk.Pending() > 0 {
			return false
		}
	}
	return true
}
