package core

import "repro/internal/clock"

// The kernel cost model, in cycles of the simulated 200 MHz processor
// (200 cycles = 1 µs). Constants are calibrated so the regenerated tables
// land near the paper's published numbers; EXPERIMENTS.md records the
// calibration targets next to the measurements.
const (
	// CycSyscallEntry + CycSyscallExit model the "minimal
	// hardware-mandated cost of entering and leaving supervisor mode
	// [of] about 70 cycles" (paper §5.5).
	CycSyscallEntry = 40
	CycSyscallExit  = 30

	// CycInterruptEntryExtra/ExitExtra are the architectural-bias cost
	// of the interrupt model on a process-model-biased CPU: "moving the
	// saved state from the kernel stack to the thread structure on
	// entry, and back again on exit, amounts to about six cycles"
	// (paper §5.5).
	CycInterruptEntryExtra = 3
	CycInterruptExitExtra  = 3

	// CycCtxSwitchBase is the model-independent context switch cost
	// (queue manipulation, address space switch).
	CycCtxSwitchBase = 60

	// CycDirectSwitch is the cost of the IPC fast path's direct thread
	// handoff: when the peer is already blocked in the matching receive
	// phase the kernel switches to it straight from the sender's episode
	// — no run-queue enqueue, no scheduler pass, no slice-timer re-arm
	// (the peer inherits the donor's slice), and in the process model no
	// kernel-register save (the donor is blocking anyway, so its kernel
	// context is parked, not switched out). L4-family kernels report
	// this path at a fraction of the general switch; we model it at half
	// CycCtxSwitchBase.
	CycDirectSwitch = 30

	// FastMsgWords is the largest message (in 32-bit words) the fast
	// path carries through the peer's register file with no memory-copy
	// charge — the classic register-carried short-IPC window (8 words ≈
	// the general-purpose registers an L4-style kernel leaves free).
	FastMsgWords = 8

	// CycKernelRedispatch is the cost of re-entering a syscall handler
	// for a woken thread whose registers name a restart continuation:
	// the scheduler calls the handler directly, without crossing the
	// user/kernel privilege boundary.
	CycKernelRedispatch = 12

	// CycProcessKregSave is the process-model-only context-switch cost
	// the interrupt model eliminates: saving and restoring kernel-mode
	// register state ("six 32-bit memory reads and writes on every
	// context switch", §5.3) plus the stack switch and its associated
	// cache/TLB traffic. Calibration target: the interrupt model's
	// ~6% advantage on the switch-heavy flukeperf workload (Table 5).
	CycProcessKregSave = 90

	// CycKernelLock is the per-syscall cost of kernel locking in the
	// fully-preemptible configuration, which "requires blocking mutex
	// locks for kernel locking" (paper Table 4). NP and PP
	// configurations require no kernel locking and do not pay it.
	// Calibration target: FP's 5-20% slowdown in Table 5.
	CycKernelLock = 35

	// CycObjLookup is the handle-table lookup cost per object resolved.
	CycObjLookup = 12

	// CycCopyWord is the IPC data copy cost per 32-bit word.
	CycCopyWord = 2

	// PageWords is one page in 32-bit words (the unit of the zero-copy
	// share and COW-break charges).
	PageWords = 1024

	// CycPageShare is the zero-copy transfer cost per page: repointing
	// one region slot at the sender's frame, adjusting the refcount and
	// shooting write permission out of the cached translations — page-
	// table manipulation instead of a 1024-word copy (CycCopyWord would
	// charge 2048 cycles for the same page).
	CycPageShare = 40

	// CycCOWBreak is the fixed kernel cost of breaking a copy-on-write
	// share on the first store to a shared page — fault entry aside:
	// allocating the private frame and re-deriving translations. The
	// page copy itself is charged on top at CycCopyWord·PageWords.
	CycCOWBreak = 300

	// ZeroCopyMinPages is the smallest page-aligned run the zero-copy
	// path will share rather than copy. Below it the fixed per-page
	// share-and-protect work plus the risk of COW breaks is not worth
	// the saved copy.
	ZeroCopyMinPages = 2

	// CycPreemptPoint is the cost of one explicit preemption check on
	// the IPC copy path.
	CycPreemptPoint = 2

	// PreemptPointBytes is how often the IPC copy path checks for
	// preemption in the PP configurations: "checked after every 8k of
	// data" (paper Table 4).
	PreemptPointBytes = 8192

	// CycSoftFaultRemedy is the kernel-internal cost of deriving and
	// installing a PTE from the mapping hierarchy. Calibration target:
	// client-side soft fault remedy = 18.9 µs (Table 3).
	CycSoftFaultRemedy = 3700

	// CycCrossSpaceFaultExtra is the additional bookkeeping when the
	// fault is taken against the *other* side's address space during
	// IPC (server-side faults in Table 3: 29.3 µs vs 18.9 µs soft).
	CycCrossSpaceFaultExtra = 2100

	// CycHardFaultKernel is the kernel-side overhead of a hard fault —
	// building the exception IPC to the user-mode manager and waking
	// waiters afterwards — excluding the pager's own execution and the
	// context switches, which the simulation performs for real.
	// Calibration target: client-side hard fault remedy = 118 µs
	// (Table 3).
	CycHardFaultKernel = 23000

	// CycFaultLockSoftFP and CycFaultLockHardFP are the additional
	// kernel-lock traffic of the fault-handling path in the
	// fully-preemptible configuration (the mapping hierarchy must be
	// locked with blocking mutexes). Calibration target: FP's 11%
	// slowdown on the fault-dominated memtest workload (Table 5).
	CycFaultLockSoftFP = 1200
	CycFaultLockHardFP = 4800

	// CycFaultDeliver is the cost of queueing one fault notification to
	// the pager port.
	CycFaultDeliver = 400

	// CycTimerIRQ is the cost of fielding one timer interrupt.
	CycTimerIRQ = 80

	// CycIPCConnect is the connection-establishment work on the IPC
	// path beyond copying (port/portset queue manipulation).
	CycIPCConnect = 120

	// CycRegionSearchPage is the per-page scan cost of region_search,
	// the paper's example of a long-running non-IPC multi-stage call.
	// region_search has *stage* boundaries (its registers roll forward
	// every RegionSearchChunkPages) but no PP preemption point — in the
	// paper the single explicit preemption point is on the IPC data
	// copy path only — so it bounds PP preemption latency in Table 6.
	CycRegionSearchPage = 60

	// RegionSearchChunkPages is how many pages region_search scans per
	// atomic stage.
	RegionSearchChunkPages = 1024

	// CycGetSetState is the cost of marshaling a thread state frame.
	CycGetSetState = 150
)

// MicrosOf converts cycles to microseconds (convenience re-export).
func MicrosOf(cycles uint64) float64 { return clock.Micros(cycles) }
