package core

import (
	"repro/internal/clock"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/sys"
)

// This file implements the type-specific short calls, the long (sleeping)
// calls, and the two non-IPC multi-stage calls. Long calls follow the
// atomic-API discipline: before any sleep the registers are rolled forward
// to a state from which a restart completes correctly, so an interrupted
// or examined thread is never "inside" an operation.

// ---------------------------------------------------------------------------
// Short calls.

func (k *Kernel) sysMutexTrylock(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjMutex, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	m := o.(*obj.Mutex)
	if m.Locked {
		k.Return(t, sys.EWOULDBLOCK)
		return sys.KOK
	}
	m.Locked = true
	m.Holder = t
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysMutexUnlock(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjMutex, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	m := o.(*obj.Mutex)
	if !m.Locked {
		k.Return(t, sys.ESTATE)
		return sys.KOK
	}
	m.Locked = false
	m.Holder = nil
	if !k.grantMutexByContinuation(m) {
		k.wakeOne(&m.Waiters)
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// grantMutexByContinuation is §2.2 continuation recognition: if the head
// waiter's explicit continuation is the mutex_lock entrypoint (it always
// is — the atomic API put it there), the kernel completes the lock by
// rewriting the waiter's result registers directly, so it wakes straight
// into user code with the mutex held and never re-executes the syscall.
// Only meaningful in the interrupt model: a process-model waiter resumes
// inside its retained kernel stack regardless.
func (k *Kernel) grantMutexByContinuation(m *obj.Mutex) bool {
	if !k.cfg.ContinuationRecognition || k.cfg.Model != ModelInterrupt || m.Locked {
		return false
	}
	w := m.Waiters.Peek()
	if w == nil || w.Regs.PC != cpu.SyscallEntry(sys.NMutexLock) || w.Interrupted {
		return false
	}
	m.Locked = true
	m.Holder = w
	k.Return(w, sys.EOK)
	w.InSyscall = false
	// The waiter's mutex_lock completed here, not through doSyscall's exit
	// path: clear the profiler's syscall dimension so the user cycles it
	// runs next are not attributed to a call it is no longer inside.
	w.CurSys = profile.NoSyscall
	w.EntryCycles = 0
	k.cur.stats.ContinuationsRecognized++
	k.wakeOne(&m.Waiters)
	return true
}

func (k *Kernel) sysCondSignal(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjCond, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	// The woken thread's PC already points at mutex_lock (see
	// sysCondWait), so waking it sends it to reacquire the mutex — or,
	// with continuation recognition, the kernel grants the mutex by
	// rewriting the waiter's state and it skips the syscall entirely.
	c := o.(*obj.Cond)
	if !k.signalByContinuation(t, c) {
		k.wakeOne(&c.Waiters)
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// signalByContinuation recognizes a cond waiter's mutex_lock continuation:
// if the mutex named in its R1 is free, take it on the waiter's behalf
// and complete the call in its register state (§2.2).
func (k *Kernel) signalByContinuation(t *obj.Thread, c *obj.Cond) bool {
	if !k.cfg.ContinuationRecognition || k.cfg.Model != ModelInterrupt {
		return false
	}
	w := c.Waiters.Peek()
	if w == nil || w.Regs.PC != cpu.SyscallEntry(sys.NMutexLock) || w.Interrupted {
		return false
	}
	mo, ok := w.Space.At(w.Regs.R[1]).(*obj.Mutex)
	if !ok || mo.Dead || mo.Locked {
		return false
	}
	mo.Locked = true
	mo.Holder = w
	k.Return(w, sys.EOK)
	w.InSyscall = false
	// The waiter's mutex_lock completed here, not through doSyscall's exit
	// path: clear the profiler's syscall dimension so the user cycles it
	// runs next are not attributed to a call it is no longer inside.
	w.CurSys = profile.NoSyscall
	w.EntryCycles = 0
	k.cur.stats.ContinuationsRecognized++
	k.wakeOne(&c.Waiters)
	return true
}

func (k *Kernel) sysCondBroadcast(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjCond, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	k.wakeAll(&o.(*obj.Cond).Waiters)
	k.Return(t, sys.EOK)
	return sys.KOK
}

// lookupThreadArg resolves a thread handle argument.
func (k *Kernel) lookupThreadArg(t *obj.Thread, va uint32, allowDead bool) (*obj.Thread, sys.Errno, sys.KErr) {
	o, e, kerr := k.objAt(t, va, sys.ObjThread, allowDead)
	if kerr != sys.KOK || e != sys.EOK {
		return nil, e, kerr
	}
	return o.(*obj.Thread), sys.EOK, sys.KOK
}

// sysThreadInterrupt breaks the target out of its current or next blocking
// operation: if blocked it is woken with the interrupt pending; the
// pending interrupt is consumed at the target's next block point and
// delivered as EINTR. The target's registers always name a clean restart
// point, so nothing is lost (§4.2: "sleeping operations such as mutex_lock
// are interrupted and rolled back").
func (k *Kernel) sysThreadInterrupt(t *obj.Thread) sys.KErr {
	target, e, kerr := k.lookupThreadArg(t, t.Regs.R[1], false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	target.Interrupted = true
	if target.State == obj.ThBlocked {
		k.wakeThread(target)
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysThreadStop stops the target promptly. A target parked mid-kernel
// (full preemption) is settled to a clean boundary first — the wait is
// kernel-internal only, as promptness requires.
func (k *Kernel) sysThreadStop(t *obj.Thread) sys.KErr {
	target, e, kerr := k.lookupThreadArg(t, t.Regs.R[1], false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	if target == t {
		k.Return(t, sys.EINVAL) // use thread_suspend_self
		return sys.KOK
	}
	if k.cfg.Model == ModelProcess && target.InKernelPark {
		k.settle(target)
	}
	target.Stopped = true
	k.schedRemove(k.cur, target)
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysThreadResume(t *obj.Thread) sys.KErr {
	target, e, kerr := k.lookupThreadArg(t, t.Regs.R[1], false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	if target.Stopped {
		target.Stopped = false
		if target.State == obj.ThReady {
			k.schedEnqueue(k.cur, target)
			k.maybeResched(target)
		}
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysThreadSetPriority(t *obj.Thread) sys.KErr {
	target, e, kerr := k.lookupThreadArg(t, t.Regs.R[1], false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	p := int(t.Regs.R[2])
	if p < 0 || p >= 32 {
		k.Return(t, sys.EINVAL)
		return sys.KOK
	}
	onQueue := target.State == obj.ThReady && !target.Stopped && target != t
	if onQueue {
		k.schedRemove(k.cur, target)
	}
	target.Priority = p
	if onQueue {
		k.schedEnqueue(k.cur, target)
		k.maybeResched(target)
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysSchedYield completes (rolling the thread fully forward) and then
// gives up the CPU — the thread is never observable "inside" the yield.
func (k *Kernel) sysSchedYield(t *obj.Thread) sys.KErr {
	k.Return(t, sys.EOK)
	return k.yieldCPU(false)
}

// sysRegionProtect changes the protection of the mapping at R1 to the
// mmu.Perm bits in R2, flushing affected translations.
func (k *Kernel) sysRegionProtect(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjMapping, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	m := o.(*obj.Mapping)
	m.Dst.AS.SetProtection(m.M, mmu.Perm(t.Regs.R[2]&7))
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysPortsetAdd(t *obj.Thread) sys.KErr {
	pso, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjPortset, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	po, e, kerr := k.objAt(t, t.Regs.R[2], sys.ObjPort, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	ps := pso.(*obj.Portset)
	e = ps.AddPort(po.(*obj.Port))
	if e == sys.EOK && ps.PendingPort() != nil {
		k.wakeOne(&ps.Servers)
	}
	k.Return(t, e)
	return sys.KOK
}

func (k *Kernel) sysPortsetRemove(t *obj.Thread) sys.KErr {
	pso, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjPortset, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	po, e, kerr := k.objAt(t, t.Regs.R[2], sys.ObjPort, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	k.Return(t, pso.(*obj.Portset).RemovePort(po.(*obj.Port)))
	return sys.KOK
}

// sysMemAllocate populates R3 pages (default 1) of the region at R1
// starting at byte offset R2 with zero frames, waking any threads waiting
// on those pages. This is the call a user-mode memory manager uses to
// satisfy a hard page fault.
func (k *Kernel) sysMemAllocate(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjRegion, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	reg := o.(*obj.Region)
	off := mem.PageTrunc(t.Regs.R[2])
	n := t.Regs.R[3]
	if n == 0 {
		n = 1
	}
	if off+n*mem.PageSize > reg.R.Size {
		k.Return(t, sys.EINVAL)
		return sys.KOK
	}
	for i := uint32(0); i < n; i++ {
		po := off + i*mem.PageSize
		if reg.R.FrameAt(po) != nil {
			continue
		}
		f, err := k.Alloc.Alloc()
		if err != nil {
			k.Return(t, sys.ENOMEM)
			return sys.KOK
		}
		k.ChargeKernel(40) // frame grant bookkeeping
		reg.R.Populate(po, f)
		// Clear any pending pager notification for this page.
		reg.ClearPendingFault(po)
	}
	k.wakeAll(&reg.FaultWaiters)
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysMemFree evicts R3 pages (default 1) of the region at R1 starting at
// byte offset R2, flushing stale translations in every space.
func (k *Kernel) sysMemFree(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjRegion, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	reg := o.(*obj.Region)
	off := mem.PageTrunc(t.Regs.R[2])
	n := t.Regs.R[3]
	if n == 0 {
		n = 1
	}
	if off+n*mem.PageSize > reg.R.Size {
		k.Return(t, sys.EINVAL)
		return sys.KOK
	}
	for i := uint32(0); i < n; i++ {
		po := off + i*mem.PageSize
		// Evict flushes stale translations (PTE, TLB, decoded pages) in
		// every importing space through the region's watcher list.
		if f := reg.R.Evict(po); f != nil {
			k.Alloc.Free(f)
		}
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// ---------------------------------------------------------------------------
// Long calls: "can be expected to sleep indefinitely" (Table 1).

// sysMutexLock is the canonical long call (Table 1). Interrupted waiters
// are rolled back and return EINTR; in the process model a woken waiter
// continues in place, in the interrupt model it restarts the syscall —
// with identical user-visible semantics.
func (k *Kernel) sysMutexLock(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjMutex, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	m := o.(*obj.Mutex)
	for m.Locked {
		if kerr := k.block(&m.Waiters, true); kerr != sys.KOK {
			return kerr
		}
		if m.Dead {
			k.Return(t, sys.ESRCH)
			return sys.KOK
		}
	}
	m.Locked = true
	m.Holder = t
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysThreadWait joins the thread at R1, returning its exit code in R1.
// Dead-but-bound handles resolve so a joiner that restarts after the
// target's exit still completes.
func (k *Kernel) sysThreadWait(t *obj.Thread) sys.KErr {
	target, e, kerr := k.lookupThreadArg(t, t.Regs.R[1], true)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	if target == t {
		k.Return(t, sys.EINVAL)
		return sys.KOK
	}
	for !target.Exited {
		if kerr := k.block(&target.ExitWaiters, true); kerr != sys.KOK {
			return kerr
		}
	}
	t.Regs.R[1] = target.ExitCode
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sleepLoop blocks until virtual time reaches deadline (in cycles).
func (k *Kernel) sleepLoop(t *obj.Thread, deadline uint64) sys.KErr {
	for k.cur.clk.Now() < deadline {
		tt := t
		t.SleepTimer = k.cur.clk.At(deadline, func(uint64) {
			if tt.WaitQ == &k.sleepers {
				k.wakeThread(tt)
			}
		})
		kerr := k.block(&k.sleepers, true)
		if kerr == sys.KIntr {
			if t.SleepTimer != nil {
				t.SleepTimer.Stop()
				t.SleepTimer = nil
			}
			return sys.KIntr
		}
		if kerr != sys.KOK {
			return kerr
		}
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysThreadSleep sleeps for R1 microseconds. The absolute deadline is
// rolled forward into R2/R3 on first entry so a restart resumes the same
// sleep instead of starting a new one — the registers are the
// continuation.
func (k *Kernel) sysThreadSleep(t *obj.Thread) sys.KErr {
	if t.Regs.R[2] == 0 && t.Regs.R[3] == 0 {
		if t.Regs.R[1] == 0 {
			k.Return(t, sys.EOK)
			return sys.KOK
		}
		deadline := k.cur.clk.Now() + uint64(t.Regs.R[1])*clock.CyclesPerMicrosecond
		t.Regs.R[2] = uint32(deadline)
		t.Regs.R[3] = uint32(deadline >> 32)
		k.CommitProgress(t)
	}
	deadline := uint64(t.Regs.R[2]) | uint64(t.Regs.R[3])<<32
	return k.sleepLoop(t, deadline)
}

// sysClockAlarmWait sleeps until the absolute virtual time R2:R1
// microseconds. Being parameterized by an absolute time, it is naturally
// restart-idempotent.
func (k *Kernel) sysClockAlarmWait(t *obj.Thread) sys.KErr {
	us := uint64(t.Regs.R[1]) | uint64(t.Regs.R[2])<<32
	return k.sleepLoop(t, us*clock.CyclesPerMicrosecond)
}

// sysThreadSuspendSelf completes the call (so the thread is observable
// only before or after it), marks the thread stopped, and gives up the
// CPU until thread_resume.
func (k *Kernel) sysThreadSuspendSelf(t *obj.Thread) sys.KErr {
	k.Return(t, sys.EOK)
	t.Stopped = true
	t.State = obj.ThReady
	k.clearResched(k.cur)
	snap := k.parkRelease()
	if k.cfg.Model == ModelInterrupt {
		return sys.KWouldBlock
	}
	k.yieldProcess(t, yBlocked)
	k.parkReacquire(snap)
	return sys.KOK
}

// sysIRQWait blocks until the virtual interrupt line R1 is raised. R2 is
// an arming flag the kernel rolls forward: 0 on first entry, 1 once the
// thread has armed and slept, so a post-wake restart completes instead of
// re-blocking (the event would otherwise be lost).
func (k *Kernel) sysIRQWait(t *obj.Thread) sys.KErr {
	line := t.Regs.R[1]
	if line >= NumIRQLines {
		k.Return(t, sys.EINVAL)
		return sys.KOK
	}
	if t.Regs.R[2] == 1 {
		t.Regs.R[2] = 0
		k.Return(t, sys.EOK)
		return sys.KOK
	}
	if k.irqPending[line] {
		// A latched edge arrived before we waited; consume it.
		k.irqPending[line] = false
		k.Return(t, sys.EOK)
		return sys.KOK
	}
	t.Regs.R[2] = 1
	k.CommitProgress(t)
	kerr := k.block(&k.irq[line], true)
	if kerr != sys.KOK {
		if kerr == sys.KIntr {
			t.Regs.R[2] = 0
		}
		return kerr
	}
	t.Regs.R[2] = 0
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysPortsetWait blocks until some port in the portset at R1 has pending
// work, without receiving it.
func (k *Kernel) sysPortsetWait(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjPortset, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	ps := o.(*obj.Portset)
	for ps.PendingPort() == nil {
		if ps.Dead {
			k.Return(t, sys.ESRCH)
			return sys.KOK
		}
		if kerr := k.block(&ps.Servers, true); kerr != sys.KOK {
			return kerr
		}
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysSpaceReapWait blocks until the space at R1 has been destroyed.
func (k *Kernel) sysSpaceReapWait(t *obj.Thread) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjSpace, true)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	s := o.(*obj.Space)
	for !s.Dead {
		if kerr := k.block(&s.ReapWaiters, true); kerr != sys.KOK {
			return kerr
		}
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// ---------------------------------------------------------------------------
// Non-IPC multi-stage calls.

// sysCondWait atomically releases the mutex at R2 and waits on the
// condition variable at R1. It is the paper's flagship example (§4.3):
// before sleeping, the thread's PC is re-pointed at the mutex_lock
// entrypoint with the mutex in R1 — so an interrupted or woken thread
// automatically retries the mutex lock, not the whole wait, and its
// exported state is always a valid restart point.
func (k *Kernel) sysCondWait(t *obj.Thread) sys.KErr {
	co, e, kerr := k.objAt(t, t.Regs.R[1], sys.ObjCond, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	mo, e, kerr := k.objAt(t, t.Regs.R[2], sys.ObjMutex, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	c := co.(*obj.Cond)
	m := mo.(*obj.Mutex)
	if !m.Locked || m.Holder != t {
		k.Return(t, sys.ESTATE)
		return sys.KOK
	}

	// Stage 1 -> stage 2 transition: release the mutex and re-point the
	// continuation at mutex_lock before sleeping.
	mutexVA := t.Regs.R[2]
	m.Locked = false
	m.Holder = nil
	k.wakeOne(&m.Waiters)
	t.Regs.R[1] = mutexVA
	k.SetPC(t, sys.NMutexLock)

	if kerr := k.block(&c.Waiters, true); kerr != sys.KOK {
		return kerr
	}
	// Process model: continue in place with the mutex_lock stage (the
	// interrupt model reaches the same code by restarting at the
	// rewritten PC).
	return k.sysMutexLock(t)
}

// sysRegionSearch scans the address range [R1, R1+R2) of the caller's
// space for the first bound kernel-object handle, returning it in R1 (or
// ENOTFOUND). It can be passed an arbitrarily large range (paper §4.2),
// so it advances R1/R2 across chunk stages — the registers always show
// exactly how much range remains.
func (k *Kernel) sysRegionSearch(t *obj.Thread) sys.KErr {
	for t.Regs.R[2] > 0 {
		start := t.Regs.R[1]
		chunk := uint32(RegionSearchChunkPages) * mem.PageSize
		if t.Regs.R[2] < chunk {
			chunk = t.Regs.R[2]
		}
		pages := (chunk + mem.PageSize - 1) / mem.PageSize
		oldTag := profTag(t, profile.PathRegionSearch)
		k.ChargeKernel(uint64(pages) * CycRegionSearchPage)
		profRestore(t, oldTag)
		var best uint32
		found := false
		for va := range t.Space.Objects {
			if va >= start && va-start < chunk && (!found || va < best) {
				best = va
				found = true
			}
		}
		if found {
			t.Regs.R[1] = best
			t.Regs.R[2] = 0
			k.Return(t, sys.EOK)
			return sys.KOK
		}
		// Stage boundary: roll the range forward; an interrupted
		// search resumes exactly here.
		t.Regs.R[1] = start + chunk
		t.Regs.R[2] -= chunk
		k.CommitProgress(t)
		if t.Interrupted {
			t.Interrupted = false
			k.cur.stats.Interrupts++
			return sys.KIntr
		}
	}
	k.Return(t, sys.ENOTFOUND)
	return sys.KOK
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
