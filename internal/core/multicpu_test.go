package core_test

// Multiprocessor-layer tests: the NumCPUs==1 bit-exactness contract (both
// lock models degenerate to the uniprocessor kernel), run-to-run
// determinism of the serial interleaver at 2 and 4 CPUs, the scheduler
// state-access routing rule, and the ParallelHost mode (whose whole test
// value is under `go test -race`).

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// lockModels spans the pluggable locking models.
var lockModels = []core.LockModel{core.LockBig, core.LockPerSubsystem, core.LockFine}

// TestUniprocessorLockModelsBitIdentical pins the acceptance criterion
// that one simulated CPU under either lock model is bit-identical — final
// observable memory, merged Stats, and virtual clock — to the implicit
// uniprocessor kernel, across all five paper configurations.
func TestUniprocessorLockModelsBitIdentical(t *testing.T) {
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		for _, seed := range seeds {
			baseMem, baseK := runSeed(t, cfg, seed)
			for _, lm := range lockModels {
				v := cfg
				v.NumCPUs = 1
				v.LockModel = lm
				mem2, k2 := runSeed(t, v, seed)
				if !bytes.Equal(baseMem, mem2) {
					t.Fatalf("seed %d lockmodel %v: observable memory differs from baseline", seed, lm)
				}
				if baseK.Clock.Now() != k2.Clock.Now() {
					t.Fatalf("seed %d lockmodel %v: virtual time differs: base=%d got=%d",
						seed, lm, baseK.Clock.Now(), k2.Clock.Now())
				}
				if !reflect.DeepEqual(baseK.Stats(), k2.Stats()) {
					t.Fatalf("seed %d lockmodel %v: Stats differ:\nbase: %+v\ngot:  %+v",
						seed, lm, baseK.Stats(), k2.Stats())
				}
			}
		}
	})
}

// TestMultiCPUDeterministic pins run-to-run reproducibility of the serial
// interleaver: the same seed on the same (NumCPUs, LockModel) pair must
// give identical memory, Stats, and virtual-time frontier every run.
func TestMultiCPUDeterministic(t *testing.T) {
	cfgs := allConfigs()
	if testing.Short() {
		cfgs = cfgs[:2]
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			type cell struct {
				n  int
				lm core.LockModel
			}
			var cells []cell
			for _, n := range []int{2, 4} {
				for _, lm := range lockModels {
					cells = append(cells, cell{n, lm})
				}
			}
			// The high CPU counts exercise the clock heap and the
			// per-instance lock table at scale; fine is the model whose
			// slot fan-out could plausibly perturb the interleaving.
			if !testing.Short() {
				for _, n := range []int{8, 16, 64} {
					cells = append(cells, cell{n, core.LockFine})
				}
			}
			for _, cl := range cells {
				n, lm := cl.n, cl.lm
				{
					v := cfg
					v.NumCPUs = n
					v.LockModel = lm
					m1, k1 := runSeed(t, v, 1999)
					m2, k2 := runSeed(t, v, 1999)
					if !bytes.Equal(m1, m2) {
						t.Fatalf("cpus=%d lockmodel=%v: memory differs run-to-run", n, lm)
					}
					if k1.Now() != k2.Now() {
						t.Fatalf("cpus=%d lockmodel=%v: frontier differs: %d vs %d",
							n, lm, k1.Now(), k2.Now())
					}
					if !reflect.DeepEqual(k1.Stats(), k2.Stats()) {
						t.Fatalf("cpus=%d lockmodel=%v: Stats differ run-to-run:\n1: %+v\n2: %+v",
							n, lm, k1.Stats(), k2.Stats())
					}
				}
			}
		})
	}
}

// TestMultiCPUWorkConserving: at 4 CPUs with independent compute threads,
// more than one CPU must end up doing user work (the work-stealing path),
// and the per-CPU shards must sum to the merged Stats.
func TestMultiCPUWorkConserving(t *testing.T) {
	cfg := core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
		NumCPUs: 4, LockModel: core.LockPerSubsystem}
	e := newEnv(t, cfg)
	b := prog.New(codeBase)
	b.Label("spin")
	for i := 0; i < 64; i++ {
		b.Addi(6, 6, 1)
	}
	b.Movi(4, dataBase).St(4, 0, 6).Halt()
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	var threads []*obj.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, e.spawnAt(b.Addr("spin"), 10))
	}
	e.run(t, 1_000_000_000, threads...)
	busy := 0
	var sum uint64
	for i := 0; i < e.k.NumCPUs(); i++ {
		s := e.k.CPUStats(i)
		sum += s.UserCycles
		if s.UserCycles > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 CPUs executed user work", busy)
	}
	if merged := e.k.Stats(); merged.UserCycles != sum {
		t.Fatalf("shard sum %d != merged UserCycles %d", sum, merged.UserCycles)
	}
}

// TestSchedStateAccessRouting is the vet-style satellite: per-CPU
// scheduler state (run queue, resched flag, slice timer, resched stamp)
// may only be touched by cpu.go and schedops.go. Everything else must go
// through the lock-model accessors.
func TestSchedStateAccessRouting(t *testing.T) {
	allowed := map[string]bool{"cpu.go": true, "schedops.go": true}
	forbidden := regexp.MustCompile(`\.(runq|needResched|sliceTimer|reschedSince)\b`)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || allowed[name] {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		for i, line := range strings.Split(string(src), "\n") {
			if forbidden.MatchString(line) {
				t.Errorf("%s:%d: direct scheduler-state access outside cpu.go/schedops.go: %s",
					name, i+1, strings.TrimSpace(line))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no source files scanned")
	}
}

// ---------------------------------------------------------------------------
// ParallelHost: one host goroutine per CPU. These tests carry their weight
// under `go test -race` (the CI race job runs the full package).

// parSpace is one space in a parallel-host environment, with its own data
// window.
type parSpace struct {
	s *obj.Space
}

func newParSpace(t *testing.T, k *core.Kernel) *parSpace {
	t.Helper()
	s := k.NewSpace()
	r, err := k.NewBoundRegion(s, kernelDataHandle(), dataSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.MapInto(s, r, dataBase, 0, dataSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	return &parSpace{s: s}
}

// bindPairIPC wires a client space to a server space's port (same handle
// VAs as bindIPC, but cross-space).
func bindPairIPC(t *testing.T, k *core.Kernel, server, client *obj.Space) {
	t.Helper()
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	port := po.(*obj.Port)
	ps := pso.(*obj.Portset)
	if err := k.Bind(server, portVA, port); err != nil {
		t.Fatal(err)
	}
	if err := k.Bind(server, psVA, ps); err != nil {
		t.Fatal(err)
	}
	ps.AddPort(port)
	ref := &obj.Ref{Header: obj.Header{Type: sys.ObjRef}, Target: port}
	if err := k.Bind(client, refVA, ref); err != nil {
		t.Fatal(err)
	}
}

// runParallelPairs builds `pairs` disjoint echo-RPC client/server space
// pairs plus one compute space, runs them under ParallelHost, and checks
// every client observed correct replies.
func runParallelPairs(t *testing.T, cfg core.Config, pairs, rpcs int) *core.Kernel {
	return runParallelPairsHook(t, cfg, pairs, rpcs, nil)
}

// runParallelPairsHook is runParallelPairs with a hook invoked just
// before the run starts; the hook returns a stop function called after
// the run completes. Snapshot-concurrency tests use it to observe the
// kernel from another goroutine while the CPU goroutines step.
func runParallelPairsHook(t *testing.T, cfg core.Config, pairs, rpcs int, hook func(*core.Kernel) func()) *core.Kernel {
	t.Helper()
	k := core.New(cfg)

	const (
		ebuf = dataBase + 0x3000
		sbuf = dataBase + 0x100
		rbuf = dataBase + 0x200
		done = dataBase + 0x300
	)
	srv := prog.New(codeBase)
	srv.Label("echo").
		IPCWaitReceive(ebuf, 1, psVA).
		Label("echo.loop").
		Movi(4, ebuf).Ld(5, 4, 0).Add(5, 5, 5).St(4, 0, 5).
		IPCReplyWaitReceive(ebuf, 1, psVA, ebuf, 1).
		Jmp("echo.loop")
	srvImg := srv.MustAssemble()

	cli := prog.New(codeBase)
	cli.Label("cli")
	for i := 0; i < rpcs; i++ {
		v := uint32(1000*i + 7)
		cli.Movi(4, sbuf).Movi(5, v).St(4, 0, 5).
			IPCClientConnectSendOverReceive(sbuf, 1, refVA, rbuf, 1).
			IPCClientDisconnect().
			// Accumulate the replies so the final word checks them all.
			Movi(4, rbuf).Ld(5, 4, 0).Add(6, 6, 5)
	}
	cli.Movi(4, done).St(4, 0, 6).Halt()
	cliImg := cli.MustAssemble()

	comp := prog.New(codeBase)
	comp.Label("spin")
	for i := 0; i < 256; i++ {
		comp.Addi(6, 6, 3)
	}
	comp.Movi(4, done).St(4, 0, 6).Halt()
	compImg := comp.MustAssemble()

	var clients []*obj.Thread
	var clientSpaces []*parSpace
	for p := 0; p < pairs; p++ {
		se := newParSpace(t, k)
		ce := newParSpace(t, k)
		bindPairIPC(t, k, se.s, ce.s)
		if _, err := k.LoadImage(se.s, codeBase, srvImg); err != nil {
			t.Fatal(err)
		}
		if _, err := k.LoadImage(ce.s, codeBase, cliImg); err != nil {
			t.Fatal(err)
		}
		st := k.NewThread(se.s, 12)
		st.Regs.PC = srv.Addr("echo")
		k.StartThread(st)
		ct := k.NewThread(ce.s, 10)
		ct.Regs.PC = cli.Addr("cli")
		k.StartThread(ct)
		clients = append(clients, ct)
		clientSpaces = append(clientSpaces, ce)
	}
	we := newParSpace(t, k)
	if _, err := k.LoadImage(we.s, codeBase, compImg); err != nil {
		t.Fatal(err)
	}
	wt := k.NewThread(we.s, 10)
	wt.Regs.PC = comp.Addr("spin")
	k.StartThread(wt)

	var stop func()
	if hook != nil {
		stop = hook(k)
	}
	k.RunFor(8_000_000_000)
	if stop != nil {
		stop()
	}

	var want uint32
	for i := 0; i < rpcs; i++ {
		want += 2 * uint32(1000*i+7)
	}
	for i, ct := range clients {
		if !ct.Exited {
			t.Fatalf("pair %d: client did not exit (state=%v pc=%#x)", i, ct.State, ct.Regs.PC)
		}
		b, err := k.ReadMem(clientSpaces[i].s, done, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		if got != want {
			t.Fatalf("pair %d: reply accumulator = %d, want %d", i, got, want)
		}
	}
	if !wt.Exited {
		t.Fatal("compute thread did not exit")
	}
	return k
}

// TestParallelHostIPCPairs runs disjoint IPC pairs on 4 CPUs with one
// goroutine per CPU, under both lock models and both interrupt-model
// preemption settings. Race-freedom is the point: the CI race job runs
// this under -race.
func TestParallelHostIPCPairs(t *testing.T) {
	for _, pre := range []core.Preemption{core.PreemptNone, core.PreemptPartial} {
		for _, lm := range lockModels {
			pre, lm := pre, lm
			t.Run(fmt.Sprintf("preempt=%v/lockmodel=%v", pre, lm), func(t *testing.T) {
				cfg := core.Config{
					Model: core.ModelInterrupt, Preempt: pre,
					NumCPUs: 4, LockModel: lm, ParallelHost: true,
				}
				k := runParallelPairs(t, cfg, 3, 16)
				if k.NumCPUs() != 4 {
					t.Fatalf("NumCPUs = %d, want 4", k.NumCPUs())
				}
			})
		}
	}
}

// TestParallelHostSnapshotsDuringRun reads Stats() and ProfileSnapshot()
// from a separate goroutine while the per-CPU goroutines step — the live
// observation pattern. The gate mutex makes each read a consistent
// inter-dispatch view; -race (the CI race job runs TestParallelHost*)
// checks the synchronization, this test checks the semantics: snapshot
// totals never go backwards mid-run, and once the run quiesces the
// profiler's attributed cycles equal Stats().TotalCycles() exactly —
// the double-entry invariant holds across concurrent shard merges.
func TestParallelHostSnapshotsDuringRun(t *testing.T) {
	for _, lm := range lockModels {
		lm := lm
		t.Run(fmt.Sprintf("lockmodel=%v", lm), func(t *testing.T) {
			cfg := core.Config{
				Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
				NumCPUs: 4, LockModel: lm, ParallelHost: true,
				EnableProfiler: true,
			}
			var snaps atomic.Int64
			hook := func(k *core.Kernel) func() {
				done := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastProf, lastStats uint64
					for {
						select {
						case <-done:
							return
						default:
						}
						st := k.Stats()
						if tot := st.TotalCycles(); tot < lastStats {
							t.Errorf("Stats total went backwards: %d -> %d", lastStats, tot)
							return
						} else {
							lastStats = tot
						}
						if tot := k.ProfileSnapshot().TotalCycles(); tot < lastProf {
							t.Errorf("profile total went backwards: %d -> %d", lastProf, tot)
							return
						} else {
							lastProf = tot
						}
						snaps.Add(1)
					}
				}()
				return func() { close(done); wg.Wait() }
			}
			k := runParallelPairsHook(t, cfg, 3, 16, hook)
			if snaps.Load() == 0 {
				t.Fatal("snapshot goroutine never completed a read")
			}
			attributed := k.ProfileSnapshot().TotalCycles()
			if want := k.Stats().TotalCycles(); attributed != want {
				t.Fatalf("attributed cycles %d != Stats total %d after concurrent snapshots",
					attributed, want)
			}
		})
	}
}

// TestParallelHostFineSnapshotsDuringRun is the sharded-gate version of
// the snapshot test at the full 64-CPU count: under the fine lock model
// the ParallelHost gate splits into per-CPU shards plus a shared kernel
// mutex, and cross-CPU wakes travel through mailboxes. Snapshots must
// still see consistent, monotone totals, and the double-entry cycle
// invariant must hold at quiescence. The CI race job runs this under
// -race; with 64 CPU goroutines plus a snapshot goroutine it is the
// stress test for the shard/kmu/mailbox ordering.
func TestParallelHostFineSnapshotsDuringRun(t *testing.T) {
	cfg := core.Config{
		Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
		NumCPUs: 64, LockModel: core.LockFine, ParallelHost: true,
		EnableProfiler: true,
	}
	pairs, rpcs := 12, 8
	if testing.Short() {
		pairs, rpcs = 4, 4
	}
	var snaps atomic.Int64
	hook := func(k *core.Kernel) func() {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf core.Stats
			var lastProf, lastStats uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				k.StatsInto(&buf)
				if tot := buf.TotalCycles(); tot < lastStats {
					t.Errorf("Stats total went backwards: %d -> %d", lastStats, tot)
					return
				} else {
					lastStats = tot
				}
				if tot := k.ProfileSnapshot().TotalCycles(); tot < lastProf {
					t.Errorf("profile total went backwards: %d -> %d", lastProf, tot)
					return
				} else {
					lastProf = tot
				}
				snaps.Add(1)
			}
		}()
		return func() { close(done); wg.Wait() }
	}
	k := runParallelPairsHook(t, cfg, pairs, rpcs, hook)
	if snaps.Load() == 0 {
		t.Fatal("snapshot goroutine never completed a read")
	}
	attributed := k.ProfileSnapshot().TotalCycles()
	if want := k.Stats().TotalCycles(); attributed != want {
		t.Fatalf("attributed cycles %d != Stats total %d after concurrent snapshots",
			attributed, want)
	}
}

// TestStatsIntoAllocs pins the allocation-free Stats merge: at 64 CPUs a
// snapshot poll must reuse the caller's buffer (maps cleared, not
// reallocated) — a fresh merge per read would pay per-CPU map allocations
// at exactly the scale where polls are most frequent.
func TestStatsIntoAllocs(t *testing.T) {
	cfg := core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
		NumCPUs: 64, LockModel: core.LockFine}
	e := newEnv(t, cfg)
	b := prog.New(codeBase)
	b.Label("spin")
	for i := 0; i < 32; i++ {
		b.Addi(6, 6, 1)
	}
	b.Movi(4, dataBase).St(4, 0, 6).Halt()
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	var threads []*obj.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, e.spawnAt(b.Addr("spin"), 10))
	}
	e.run(t, 1_000_000_000, threads...)
	var buf core.Stats
	e.k.StatsInto(&buf) // first call sizes the maps
	if allocs := testing.AllocsPerRun(100, func() { e.k.StatsInto(&buf) }); allocs != 0 {
		t.Fatalf("StatsInto allocates %.1f objects per call at 64 CPUs, want 0", allocs)
	}
}

// BenchmarkStatsSnapshot measures the 64-CPU snapshot poll both ways:
// the allocating Stats() and the buffer-reusing StatsInto.
func BenchmarkStatsSnapshot(b *testing.B) {
	cfg := core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial,
		NumCPUs: 64, LockModel: core.LockFine}
	k := core.New(cfg)
	b.Run("Stats", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = k.Stats()
		}
	})
	b.Run("StatsInto", func(b *testing.B) {
		b.ReportAllocs()
		var buf core.Stats
		k.StatsInto(&buf)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.StatsInto(&buf)
		}
	})
}

// TestParallelHostRequiresInterruptModel pins the config validation.
func TestParallelHostRequiresInterruptModel(t *testing.T) {
	cfg := core.Config{Model: core.ModelProcess, Preempt: core.PreemptNone,
		NumCPUs: 2, ParallelHost: true}
	if err := cfg.Validate(); err == nil {
		t.Fatal("ParallelHost with the process model was accepted")
	}
}
