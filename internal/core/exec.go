package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/sys"
	"repro/internal/trace"
)

// This file is the execution-model machinery — the counterpart of the
// "two hundred assembly language instructions in the system call entry and
// exit code, and about fifty lines of C in the context switching ...
// code" that differ between Fluke's two builds (paper §3.1). Everything
// else in the kernel is model-independent.
//
// Multiprocessor execution: the kernel holds one CPU struct per simulated
// processor (cpu.go). By default the CPUs are interleaved *serially* and
// deterministically — the loop always runs the CPU with the smallest local
// virtual time — so every multi-CPU run is reproducible and the
// NumCPUs==1 case degenerates to exactly the uniprocessor loop.
// Config.ParallelHost (parallel.go) instead runs one host goroutine per
// CPU with kernel sections serialized under a gate mutex.
//
// Kernel code addresses "the CPU I am running on" through k.cur, never
// through a captured variable: a process-model thread can park on one CPU
// and — woken and stolen — resume on another, so the acting CPU must be
// re-read after every potential park point.

// fpChunk is the cycle granularity at which fully-preemptible kernel code
// checks for preemption; it bounds FP preemption latency (Table 6's
// 19.6 µs max).
const fpChunk = 2000

// killSignal unwinds a process-model kernel-stack context when its thread
// is destroyed while parked.
type killSignal struct{}

type resumeKind uint8

const (
	resumeRun resumeKind = iota
	resumeKill
)

type yieldKind uint8

const (
	yBlocked yieldKind = iota
	yReady
	yDead
)

// kctx is a process-model kernel-stack context: a goroutine whose retained
// Go stack plays the role of the thread's kernel stack. Exactly one
// context (or the scheduler) runs at a time — control passes by baton, so
// the simulation stays deterministic.
type kctx struct {
	t      *obj.Thread
	resume chan resumeKind
	yield  chan struct{}
	reason yieldKind
	done   bool
}

func (k *Kernel) newKctx(t *obj.Thread) {
	c := &kctx{t: t, resume: make(chan resumeKind), yield: make(chan struct{})}
	t.KCtx = c
	go k.threadBody(c)
}

// threadBody is the root of a process-model kernel stack.
func (k *Kernel) threadBody(c *kctx) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); !ok {
				panic(r)
			}
		}
		c.reason = yDead
		c.yield <- struct{}{}
	}()
	if <-c.resume == resumeKill {
		panic(killSignal{})
	}
	k.runThread(c.t)
}

// yieldProcess parks the current process-model context, handing the baton
// back to whoever resumed it. It panics with killSignal if the thread is
// destroyed while parked.
func (k *Kernel) yieldProcess(t *obj.Thread, reason yieldKind) {
	c := t.KCtx.(*kctx)
	c.reason = reason
	c.yield <- struct{}{}
	if <-c.resume == resumeKill {
		panic(killSignal{})
	}
}

// resumeCtx hands the baton to t's context and waits for its next yield.
func (k *Kernel) resumeCtx(t *obj.Thread, kind resumeKind) yieldKind {
	c := t.KCtx.(*kctx)
	c.resume <- kind
	<-c.yield
	return c.reason
}

// reapCtx releases the kernel-stack accounting for a dead context.
func (k *Kernel) reapCtx(t *obj.Thread) {
	c, ok := t.KCtx.(*kctx)
	if !ok || c.done {
		return
	}
	c.done = true
	k.stacksInUse--
}

// emit records a typed trace event when a tracer is attached, tagged with
// the acting CPU (its Perfetto lane) and that CPU's local clock.
func (k *Kernel) emit(kind trace.Kind, a, b uint32) {
	if k.Tracer == nil {
		return
	}
	c := k.cur
	var tid uint32
	if c.current != nil {
		tid = c.current.ID
	}
	k.Tracer.Add(trace.Event{Time: c.clk.Now(), TID: tid, CPU: uint32(c.id), Kind: kind, A: a, B: b})
}

// ---------------------------------------------------------------------------
// Scheduler loop.

// Run executes until the system is quiescent: no runnable threads and no
// pending timers on any CPU.
func (k *Kernel) Run() {
	k.RunUntil(func() bool { return false })
}

// RunFor executes for (approximately) the given number of cycles of
// virtual time; a running thread is descheduled at the next user-mode
// instruction boundary past the budget. With several CPUs the budget
// bounds the virtual-time frontier (the maximum of the local clocks).
func (k *Kernel) RunFor(cycles uint64) {
	end := k.Now() + cycles
	k.stopAt = end
	k.RunUntil(func() bool { return k.Now() >= end })
	k.stopAt = 0
}

// RunUntil executes until stop() reports true (checked between
// dispatches) or the system is quiescent. The deterministic interleaver
// always advances the CPU with the smallest local virtual time, so the
// whole execution is a pure function of the initial state at any CPU
// count; an idle CPU with nothing to run steals from its busiest peer.
func (k *Kernel) RunUntil(stop func() bool) {
	if k.cfg.ParallelHost && len(k.cpus) > 1 {
		k.runParallel(stop)
		return
	}
	// Multi-CPU: keep the CPUs in a min-clock heap so each episode pays
	// O(log n) chooser maintenance instead of the O(n) scan. Rebuilt at
	// every run boundary — host code may move clocks between runs — and
	// fixed up after each episode, when only the acting CPU's clock has
	// advanced. Bit-identical to the scan order (TestClockHeapMatchesScan).
	multi := len(k.cpus) > 1
	if multi {
		if k.chooser == nil {
			k.chooser = newClockHeap(k.cpus)
		} else {
			k.chooser.reset()
		}
	}
	for !stop() {
		c := k.cpus[0]
		if multi {
			c = k.chooser.pick()
		}
		k.cur = c
		// A staged IPC handoff outranks the run queue: the donor blocked,
		// and its remaining slice passes straight to the staged peer.
		t, direct := k.schedClaimDispatch(c)
		if t == nil && len(k.cpus) > 1 {
			t = k.schedSteal(c)
		}
		if t == nil {
			if !k.idleStep(c) {
				return // quiescent
			}
			if multi {
				k.chooser.fix(c.id)
			}
			continue
		}
		k.dispatch(c, t, direct)
		if multi {
			k.chooser.fix(c.id)
		}
	}
	// A RunFor budget can stop the loop with a handoff still staged;
	// demote it to a normal enqueue so no thread is stranded in the slot
	// across Run calls (the slot is not part of checkpointable state).
	for _, c := range k.cpus {
		k.cur = c
		k.schedFlushDonation(c)
	}
}

// DebugDispatch, when set, is called on every dispatch with the chosen
// thread and the highest queued runnable priority (testing diagnostics).
var DebugDispatch func(t *obj.Thread, topQueued int, ok bool)

func (k *Kernel) dispatch(c *CPU, t *obj.Thread, direct bool) {
	if DebugDispatch != nil {
		top, ok := k.schedTopPriority(c)
		DebugDispatch(t, top, ok)
	}
	k.ctxSwitch(c, t, direct)
	if k.cfg.Model == ModelInterrupt {
		k.runThread(t)
	} else {
		if k.resumeCtx(t, resumeRun) == yDead {
			k.reapCtx(t)
		}
	}
	c.current = nil
}

// ctxSwitch makes t the running thread on c, charging the model-dependent
// switch cost: the process model additionally saves/restores kernel-mode
// register state ("six 32-bit memory reads and writes on every context
// switch", §5.3). The switch itself is scheduler work, done under the
// scheduler lock of the configured lock model.
//
// A direct switch (IPC fast-path handoff) charges CycDirectSwitch instead:
// no run-queue traffic, and no kernel-register save even in the process
// model — the donor is blocking, so its kernel context parks rather than
// being switched out. The incoming thread inherits the donor's remaining
// slice: the slice timer is not re-armed (unless the old one already
// expired), and a pending resched request stays pending, serviced at the
// incoming thread's first boundary — so a handoff chain can never run past
// the quantum the donor originally received.
func (k *Kernel) ctxSwitch(c *CPU, t *obj.Thread, direct bool) {
	cost := uint64(CycCtxSwitchBase)
	if k.cfg.Model == ModelProcess {
		cost += CycProcessKregSave
	}
	if direct {
		cost = CycDirectSwitch
	}
	k.lockAcquire(c, lockSched)
	c.stats.KernelCycles += cost
	c.clk.Advance(cost)
	// Attribute the switch cost to the *incoming* thread explicitly:
	// c.current is still nil here, and the cost is scheduler work done on
	// t's behalf (its mid-syscall restarts keep their syscall dimension).
	if direct {
		k.profCharge(c, t, profile.PathDirectSwitch, cost)
	} else {
		k.profCharge(c, t, profile.PathCtxSwitch, cost)
	}
	c.stats.ContextSwitches++
	t.State = obj.ThRunning
	c.current = t
	t.HomeCPU = c.id
	k.lockRelease(c, lockSched)
	if k.Metrics != nil {
		k.Metrics.CtxSwitches.Inc()
	}
	if direct {
		c.stats.FastpathHits++
		if k.Metrics != nil {
			k.Metrics.FastpathHits.Inc()
		}
		k.emit(trace.Handoff, t.ID, 0)
		k.spanCheckpoint(t, trace.FlowHandoff)
		k.ensureSliceTimer(c)
		return
	}
	k.emit(trace.CtxSwitch, t.ID, 0)
	k.observePreemptLatency(c)
	k.clearResched(c)
	k.armSliceTimer(c)
}

// ---------------------------------------------------------------------------
// The per-thread execution loop, shared verbatim by both models. In the
// interrupt model it runs on the per-CPU stack (the scheduler's frame) and
// returns whenever the thread stops running. In the process model it runs
// on the thread's own kernel-stack context and blocking parks in place, so
// it returns only when the thread dies.

// maxUserBatch bounds one StepN batch so the execution loop periodically
// regains control even if no timer is pending (it always is: the slice
// timer stays armed while a thread runs).
const maxUserBatch = 1 << 20

// userBudget returns how many cycles of user code may run before anything
// observable can happen on this CPU: the distance to its earliest timer
// deadline and to the RunFor stop point. Executing a batch of instructions
// whose cycle total first crosses this budget is indistinguishable from
// stepping one instruction at a time — no timer can fire strictly inside
// the batch, so the per-instruction resched checks hoist out of the hot
// loop.
func (k *Kernel) userBudget(c *CPU) uint64 {
	now := c.clk.Now()
	budget := uint64(maxUserBatch)
	if d, ok := c.clk.NextDeadline(); ok {
		if d <= now {
			return 1 // overdue timer fires on the next charge
		}
		if d-now < budget {
			budget = d - now
		}
	}
	if k.stopAt != 0 {
		if k.stopAt <= now {
			return 1
		}
		if k.stopAt-now < budget {
			budget = k.stopAt - now
		}
	}
	return budget
}

func (k *Kernel) runThread(t *obj.Thread) {
	// fromUser tracks whether a user-mode instruction has executed since
	// the thread was scheduled. A syscall trap taken without one is a
	// kernel-internal re-dispatch of a rolled-forward continuation (a
	// woken interrupt-model thread restarting its operation): no
	// privilege boundary is crossed, so the hardware entry cost is not
	// paid again.
	fromUser := false
	for t.State == obj.ThRunning {
		c := k.cur // re-read every iteration: parks can migrate the thread
		if k.donationPending(c) {
			// The thread staged a handoff but kept running (EINTR, soft
			// fault remedied in place, or the call completed without
			// blocking): the donation never fires, so demote the staged
			// peer to a normal run-queue wake before executing on.
			k.schedFlushDonation(c)
		}
		if c.settling == t {
			// A settle drove us to a clean boundary; stop here.
			t.State = obj.ThReady
			k.schedEnqueueFront(c, t)
			k.yieldProcess(t, yReady)
			continue
		}
		if t.HostFn != nil {
			if !k.stepHost(t) {
				return
			}
			continue
		}
		var cycles, retired uint64
		var trap cpu.Trap
		if k.fastExec {
			// Run to the next event. A pending resched request must be
			// observed at the very next instruction boundary, exactly as
			// the per-instruction loop would.
			budget := uint64(1)
			if !k.needsResched(c) {
				budget = k.userBudget(c)
			}
			cycles, retired, trap = k.stepUser(c, t, budget)
		} else {
			cycles, trap = cpu.Step(&t.Regs, t.Space.AS)
			if trap.Kind == cpu.TrapNone {
				retired = 1
			}
		}
		k.chargeUser(cycles)
		if t.State != obj.ThRunning {
			return
		}
		if k.needsResched(k.cur) {
			if !k.preemptUser(t) {
				return
			}
		}
		if retired > 0 {
			fromUser = true
		}
		switch trap.Kind {
		case cpu.TrapNone:
			// Batch budget exhausted at an instruction boundary.
		case cpu.TrapSyscall:
			if !k.doSyscall(t, trap.Sys, fromUser) {
				return
			}
			fromUser = false
		case cpu.TrapFault:
			if !k.doFault(t, t.Space, trap.Fault) {
				return
			}
		case cpu.TrapHalt:
			k.exitThread(t, t.Regs.R[1])
			return
		case cpu.TrapBreak:
			// Trace point; ignored.
		case cpu.TrapIllegal:
			k.exitThread(t, uint32(0xFFFF_00FF))
			return
		}
	}
}

// stepUser executes one user batch. In ParallelHost mode the batch runs
// outside the kernel gate — that is the real host parallelism — guarded by
// the space's step mutex so kernel code on other CPUs touching this space
// (IPC copies into a blocked peer) stays race-free.
func (k *Kernel) stepUser(c *CPU, t *obj.Thread, budget uint64) (cycles, retired uint64, trap cpu.Trap) {
	if k.par == nil {
		return cpu.StepN(&t.Regs, t.Space.AS, budget)
	}
	k.gateUnlock()
	t.Space.StepMu.Lock()
	cycles, retired, trap = cpu.StepN(&t.Regs, t.Space.AS, budget)
	t.Space.StepMu.Unlock()
	k.gateLock(c)
	return cycles, retired, trap
}

// stepHost runs one activation of a kernel (host-function) thread.
func (k *Kernel) stepHost(t *obj.Thread) bool {
	switch kerr := t.HostFn(); kerr {
	case sys.KOK:
		return true
	case sys.KWouldBlock, sys.KPreempted:
		return false
	case sys.KDead:
		return false
	default:
		panic(fmt.Sprintf("core: host thread returned %v", kerr))
	}
}

// preemptUser handles preemption at a user-mode instruction boundary.
func (k *Kernel) preemptUser(t *obj.Thread) bool {
	c := k.cur
	c.stats.PreemptsUser++
	if k.Metrics != nil {
		k.Metrics.PreemptsUser.Inc()
	}
	k.emit(trace.Preempt, 0, 0)
	k.clearResched(c)
	t.State = obj.ThReady
	k.schedEnqueue(c, t)
	if k.cfg.Model == ModelInterrupt {
		return false
	}
	k.yieldProcess(t, yReady)
	return true
}

// ---------------------------------------------------------------------------
// Cycle charging. Kernel charges in the fully-preemptible configuration
// are chunked so a wakeup during a long kernel operation preempts within
// fpChunk cycles.

func (k *Kernel) chargeUser(cycles uint64) {
	c := k.cur
	c.stats.UserCycles += cycles
	c.clk.Advance(cycles)
	k.profCharge(c, c.current, profile.PathUser, cycles)
	if k.stopAt != 0 && c.clk.Now() >= k.stopAt {
		k.forceResched(c)
	}
}

// ChargeKernel charges kernel work to virtual time, honoring full kernel
// preemption. Syscall handlers and the IPC engine use it for all
// simulated kernel work.
func (k *Kernel) ChargeKernel(cycles uint64) {
	c := k.cur
	t := c.current
	if k.cfg.Preempt == PreemptFull && c.inHandler && t != nil && c.settling != t {
		for cycles > 0 {
			c = k.cur // a park below can migrate the thread to another CPU
			n := cycles
			if n > k.cfg.FPChunkCycles {
				n = k.cfg.FPChunkCycles
			}
			c.stats.KernelCycles += n
			t.EntryCycles += n
			c.clk.Advance(n)
			k.profChargeKernel(c, t, n)
			cycles -= n
			if k.needsResched(c) && t.State == obj.ThRunning {
				c.stats.PreemptsKernel++
				if k.Metrics != nil {
					k.Metrics.PreemptsKernel.Inc()
				}
				k.emit(trace.Preempt, 2, 0)
				k.clearResched(c)
				t.State = obj.ThReady
				t.InKernelPark = true
				k.schedEnqueueFront(c, t)
				snap := k.parkRelease() // an in-kernel park releases kernel locks
				k.yieldProcess(t, yReady)
				t.InKernelPark = false
				k.parkReacquire(snap)
			}
		}
		return
	}
	c.stats.KernelCycles += cycles
	if t != nil && c.inHandler {
		t.EntryCycles += cycles
	}
	c.clk.Advance(cycles)
	k.profChargeKernel(c, t, cycles)
}

// ---------------------------------------------------------------------------
// System call dispatch (entry/exit code — the model-dependent part).

func (k *Kernel) doSyscall(t *obj.Thread, num int, fromUser bool) bool {
	entry := uint64(CycSyscallEntry)
	exit := uint64(CycSyscallExit)
	if k.cfg.Model == ModelInterrupt {
		// Architectural bias (§5.5): the interrupt model moves saved
		// state between the per-CPU stack and the thread structure.
		entry += CycInterruptEntryExtra
		exit += CycInterruptExitExtra
	}
	if !fromUser {
		// Kernel-internal re-dispatch of a rolled-forward continuation:
		// the scheduler invokes the handler directly.
		entry = CycKernelRedispatch
	}
	if num < 0 || num >= sys.NumSyscalls || k.handlers[num] == nil {
		oldTag := profTag(t, profile.PathSyscallEntry)
		k.ChargeKernel(entry + exit)
		profRestore(t, oldTag)
		k.Return(t, sys.EINVAL)
		return true
	}
	c := k.cur
	c.stats.Syscalls++
	c.stats.SyscallsByNum[num]++
	episodeStart := c.clk.Now()
	redispatch := uint32(0)
	if !fromUser {
		redispatch = 1
	}
	k.emit(trace.SyscallEnter, uint32(num), redispatch)
	if t.InSyscall {
		c.stats.Restarts++
		if k.Metrics != nil {
			k.Metrics.RestartsTotal.Inc()
		}
	}
	t.InSyscall = true
	// The profiler's syscall dimension: set before the entry lock so a
	// contended acquire's spin already attributes here. It stays set
	// across blocks and faults (the thread is still inside the call) and
	// resets at KOK/KIntr completion below.
	t.CurSys = int16(num)
	c.inHandler = true
	// Kernel entry takes the syscall-side lock: the object-space lock
	// under per-subsystem locking, the big kernel lock under LockBig.
	k.lockAcquire(c, lockObj)
	oldTag := profTag(t, profile.PathSyscallEntry)
	k.ChargeKernel(entry)
	if k.cfg.Preempt == PreemptFull {
		// FP needs kernel locking (Table 4); charge the lock traffic.
		k.ChargeKernel(CycKernelLock)
	}
	profRestore(t, oldTag)
	k.spanSyscallEnter(t, num)
	kerr := k.handlers[num](k, t)
	k.emit(trace.SyscallExit, uint32(num), uint32(kerr))
	switch kerr {
	case sys.KOK:
		t.InSyscall = false
		t.EntryCycles = 0
		exitTag := profTag(t, profile.PathSyscallExit)
		k.ChargeKernel(exit)
		profRestore(t, exitTag)
		k.spanSyscallExit(t, num)
		t.CurSys = profile.NoSyscall
		k.releaseHeld()
		k.cur.inHandler = false
		if k.Metrics != nil {
			k.Metrics.SyscallLatency[num].Observe(k.cur.clk.Now() - episodeStart)
		}
		k.trace(t, num, "ok")
		return true
	case sys.KIntr:
		k.Return(t, sys.EINTR)
		t.InSyscall = false
		t.EntryCycles = 0
		exitTag := profTag(t, profile.PathSyscallExit)
		k.ChargeKernel(exit)
		profRestore(t, exitTag)
		k.spanSyscallExit(t, num)
		t.CurSys = profile.NoSyscall
		k.releaseHeld()
		k.cur.inHandler = false
		if k.Metrics != nil {
			k.Metrics.SyscallLatency[num].Observe(k.cur.clk.Now() - episodeStart)
		}
		k.trace(t, num, "eintr")
		return true
	case sys.KWouldBlock, sys.KPreempted, sys.KDead:
		// Parked paths released at the park; a KDead handler did not.
		k.releaseHeld()
		k.cur.inHandler = false
		k.trace(t, num, kerr.String())
		return false
	case sys.KFault:
		// Release the syscall-entry lock before the fault path takes the
		// MMU lock: obj and mmu never nest.
		k.releaseHeld()
		k.cur.inHandler = false
		k.trace(t, num, "fault")
		return k.doFault(t, t.PendingFaultSpace, t.PendingFault)
	default:
		panic(fmt.Sprintf("core: handler %s returned %v", sys.Name(num), kerr))
	}
}

func (k *Kernel) trace(t *obj.Thread, num int, outcome string) {
	if k.cfg.TraceSyscalls != nil {
		k.cfg.TraceSyscalls(fmt.Sprintf("[%10d] t%d %s -> %s", k.cur.clk.Now(), t.ID, sys.Name(num), outcome))
	}
}

// ---------------------------------------------------------------------------
// Fault handling: classify against the mapping hierarchy, remedy soft
// faults in the kernel, turn hard faults into pager notifications and
// wait. In all cases the faulting operation restarts from its
// rolled-forward register state afterwards.

func (k *Kernel) doFault(t *obj.Thread, spc *obj.Space, f cpu.Fault) bool {
	c := k.cur
	// The fault path's kernel entry takes the MMU-side lock — under the
	// fine model, the *faulted* space's instance (a cross-space IPC fault
	// locks the peer's MMU, not the faulter's).
	k.lockAcquireSlot(c, k.spaceMMUSlot(spc))
	if k.par != nil && spc != t.Space {
		// Cross-space fault in ParallelHost mode: the peer space's home
		// CPU may be stepping its other threads concurrently.
		spc.StepMu.Lock()
		defer spc.StepMu.Unlock()
	}
	class, m := spc.AS.Classify(f.VA, f.Access)
	side := FaultSame
	if spc != t.Space {
		side = FaultCross
	}
	key := FaultKey{Class: class, Side: side}
	sideBit := uint32(0)
	if side == FaultCross {
		sideBit = 1
	}
	k.emit(trace.Fault, f.VA, uint32(class)|sideBit<<8)
	switch class {
	case mmu.FaultSoft:
		c.stats.FaultCount[key]++
		c.stats.FaultRollback[key] += t.EntryCycles
		k.countFaultRestart(class, side, t.EntryCycles)
		t.EntryCycles = 0
		start := c.clk.Now()
		remedy := uint64(CycSoftFaultRemedy)
		if side == FaultCross {
			remedy += CycCrossSpaceFaultExtra
		}
		if k.cfg.Preempt == PreemptFull {
			// The fault path takes blocking kernel locks in the
			// fully-preemptible configuration.
			remedy += CycFaultLockSoftFP
		}
		oldTag := profTag(t, profile.PathFaultSoft)
		k.ChargeKernel(remedy)
		profRestore(t, oldTag)
		if err := spc.AS.ResolveSoft(f.VA, f.Access); err != nil {
			k.releaseHeld()
			k.exitThread(t, uint32(0xFFFF_0E00))
			return false
		}
		c = k.cur // an FP park inside ChargeKernel can migrate us
		c.stats.FaultRemedy[key] += c.clk.Now() - start
		k.countFaultRemedy(class, side, c.clk.Now()-start)
		k.releaseHeld()
		return true

	case mmu.FaultCOW:
		// A store hit a copy-on-write frame shared by zero-copy IPC.
		// Resolved in place like a soft fault — by copying the page
		// (breaking the share), or by restoring write permission when
		// this region holds the last reference — but it is *not* one of
		// Table 3's four causes: the copying kernel never raises it, so
		// countFaultRestart/Remedy (the four-cause instruments) stay
		// untouched and the zero-copy equivalence test can pin them
		// bit-identical with the path on and off.
		c.stats.FaultCount[key]++
		c.stats.FaultRollback[key] += t.EntryCycles
		t.EntryCycles = 0
		start := c.clk.Now()
		remedy := uint64(CycCOWBreak)
		if k.cfg.Preempt == PreemptFull {
			remedy += CycFaultLockSoftFP
		}
		oldTag := profTag(t, profile.PathFaultCOW)
		k.ChargeKernel(remedy)
		copied, err := spc.AS.ResolveCOW(f.VA)
		if err != nil {
			profRestore(t, oldTag)
			k.releaseHeld()
			k.exitThread(t, uint32(0xFFFF_0E00))
			return false
		}
		if copied {
			k.ChargeKernel(CycCopyWord * PageWords)
		}
		profRestore(t, oldTag)
		c = k.cur // an FP park inside ChargeKernel can migrate us
		c.stats.ZeroCopyCOWBreaks++
		if k.Metrics != nil {
			k.Metrics.ZeroCopyCOWBreaks.Inc()
		}
		var copiedBit uint32
		if copied {
			copiedBit = 1
		}
		k.emit(trace.COWBreak, f.VA, copiedBit)
		c.stats.FaultRemedy[key] += c.clk.Now() - start
		k.releaseHeld()
		return true

	case mmu.FaultHard:
		c.stats.FaultCount[key]++
		c.stats.FaultRollback[key] += t.EntryCycles
		k.countFaultRestart(class, side, t.EntryCycles)
		t.EntryCycles = 0
		port, _ := m.Region.Pager.(*obj.Port)
		if port == nil || port.FaultRegion == nil || port.Dead {
			k.releaseHeld()
			k.exitThread(t, uint32(0xFFFF_0E01))
			return false
		}
		reg := port.FaultRegion
		off := mem.PageTrunc(m.RegionOff + (f.VA - m.Base))
		t.FaultStart = c.clk.Now()
		t.FaultClass = class
		t.FaultCross = side == FaultCross
		oldTag := profTag(t, profile.PathFaultHard)
		k.ChargeKernel(CycHardFaultKernel)
		if side == FaultCross {
			k.ChargeKernel(CycCrossSpaceFaultExtra)
		}
		if k.cfg.Preempt == PreemptFull {
			k.ChargeKernel(CycFaultLockHardFP)
		}
		k.queueFault(reg, port, off)
		profRestore(t, oldTag)
		// Wait for the pager to populate the page. The wait is not
		// EINTR-interruptible — an instruction restart would just
		// re-fault — but the thread's exported state stays clean
		// throughout (registers at the faulting restart point).
		switch kerr := k.block(&reg.FaultWaiters, false); kerr {
		case sys.KWouldBlock:
			return false
		case sys.KOK:
			k.releaseHeld()
			return true
		case sys.KDead:
			k.releaseHeld()
			return false
		default:
			panic(fmt.Sprintf("core: fault block returned %v", kerr))
		}

	default: // fatal
		c.stats.FaultCount[key]++
		if k.Metrics != nil {
			k.Metrics.FaultsFatal.Inc()
		}
		k.releaseHeld()
		k.exitThread(t, uint32(0xFFFF_0E02))
		return false
	}
}

// queueFault records a pending fault notification for the pager and wakes
// a server waiting on the pager's portset.
func (k *Kernel) queueFault(reg *obj.Region, port *obj.Port, off uint32) {
	k.ChargeKernel(CycFaultDeliver)
	if !reg.QueuePendingFault(off) {
		return // already queued
	}
	if k.Metrics != nil {
		k.Metrics.PagerNotices.Inc()
	}
	if port.Set != nil {
		k.wakeOne(&port.Set.Servers)
	}
}

// ---------------------------------------------------------------------------
// Blocking and waking.

// block parks the current thread on q. In the interrupt model it returns
// KWouldBlock and the dispatch layer unwinds — the thread's rolled-forward
// registers are its continuation. In the process model it parks the
// thread's kernel-stack context in place and returns KOK when woken.
//
// Blocking releases every kernel lock the CPU holds (sleep releases the
// kernel lock); the process model reacquires on resume, on whichever CPU
// the thread was re-dispatched.
//
// If interruptible, a pending thread_interrupt is consumed and KIntr
// returned instead of (or after) blocking.
func (k *Kernel) block(q *obj.WaitQueue, interruptible bool) sys.KErr {
	c := k.cur
	t := c.current
	if interruptible && t.Interrupted {
		t.Interrupted = false
		c.stats.Interrupts++
		return sys.KIntr
	}
	t.State = obj.ThBlocked
	q.Enqueue(t)
	snap := k.parkRelease()
	if k.cfg.Model == ModelInterrupt {
		return sys.KWouldBlock
	}
	k.yieldProcess(t, yBlocked)
	k.parkReacquire(snap)
	if interruptible && t.Interrupted {
		t.Interrupted = false
		k.cur.stats.Interrupts++
		return sys.KIntr
	}
	return sys.KOK
}

// Block is the exported blocking primitive for the IPC engine and host
// threads.
func (k *Kernel) Block(q *obj.WaitQueue, interruptible bool) sys.KErr {
	return k.block(q, interruptible)
}

// wakeThread makes a specific (blocked or stopped-ready) thread runnable,
// removing it from any wait queue and cancelling its sleep timer. The
// thread is queued on its home CPU; a cross-CPU wake that should preempt
// (or un-idle) the home CPU sends an IPI-like kick.
func (k *Kernel) wakeThread(t *obj.Thread) {
	if !k.wakePrep(t) {
		return
	}
	k.schedEnqueue(k.cur, t)
	k.maybeResched(t)
}

// wakePrep does the state half of a wake — dequeue from the wait queue,
// cancel the sleep timer, close fault-remedy accounting, ThBlocked →
// ThReady — and reports whether the thread is now runnable (and should be
// handed to the scheduler). Shared by wakeThread and handoffWake, which
// differ only in how the runnable thread reaches a CPU.
func (k *Kernel) wakePrep(t *obj.Thread) bool {
	if t.State == obj.ThDead {
		return false
	}
	if t.WaitQ != nil {
		t.WaitQ.Remove(t)
	}
	if t.SleepTimer != nil {
		t.SleepTimer.Stop()
		t.SleepTimer = nil
	}
	c := k.cur
	if t.FaultStart != 0 {
		key := FaultKey{Class: t.FaultClass, Side: FaultSame}
		if t.FaultCross {
			key.Side = FaultCross
		}
		lat := uint64(0)
		if now := c.clk.Now(); now > t.FaultStart {
			lat = now - t.FaultStart
		}
		c.stats.FaultRemedy[key] += lat
		k.countFaultRemedy(key.Class, key.Side, lat)
		t.FaultStart = 0
	}
	if t.State == obj.ThBlocked {
		t.State = obj.ThReady
	}
	if !t.Runnable() {
		return false
	}
	k.emit(trace.Wake, t.ID, 0)
	if k.Metrics != nil {
		k.Metrics.Wakes.Inc()
	}
	return true
}

// handoffWake is the IPC fast-path wake: the caller just completed a
// rendezvous transfer into t and expects to block, so instead of queueing
// t it stages it in the acting CPU's donation slot — when the caller does
// block, the scheduler consumes the slot and switches to t directly,
// donating the rest of the caller's time slice (no run-queue pass, no
// scheduler pick). If the slot is occupied by another thread, or t is
// already staged (a full receiver can be re-woken by the sender's
// zero-length completion check), it degrades gracefully.
func (k *Kernel) handoffWake(t *obj.Thread) {
	if t.Donated {
		return // already staged; nothing more a second wake could add
	}
	// Rendezvous-completion wakes carry the causal span: the waker just
	// finished a transfer into (or out of) t, so t is the span's next hop
	// whichever dispatch path — handoff, run queue, or steal — it takes.
	k.spanTouch(k.cur.current, t, trace.FlowWake)
	if !k.ipcFast || k.par != nil {
		// ParallelHost runs CPUs on real goroutines with threads pinned to
		// their home CPU; cross-CPU donation would violate the pinning, so
		// the fast path is a deterministic-mode optimisation only.
		k.wakeThread(t)
		return
	}
	if !k.wakePrep(t) {
		return
	}
	c := k.cur
	// Donate only if t would have been the scheduler's next pick anyway:
	// a queued thread of equal or higher priority goes first under the
	// slow path's FIFO round-robin, and a handoff past it would starve
	// it for a whole donation chain while other CPUs may sit idle. (An
	// idle CPU can still steal a staged donation — see schedSteal — so
	// staging never strands work during imbalance.)
	if top, ok := k.schedTopPriority(c); ok && top >= t.Priority {
		k.countFastpathFallback()
		k.schedEnqueue(c, t)
		k.maybeResched(t)
		return
	}
	if !k.schedDonate(c, t) {
		k.countFastpathFallback()
		k.schedEnqueue(c, t)
		k.maybeResched(t)
	}
}

// HandoffWake exposes handoffWake to the IPC engine: a wake at a
// rendezvous-completion point that may ride the direct-handoff fast path.
func (k *Kernel) HandoffWake(t *obj.Thread) { k.handoffWake(t) }

// CountIPCMiss records a rendezvous block where the peer was not already
// waiting — the complement of a fast-path hit, counted in both on and off
// configurations so the hit rate is comparable across runs.
func (k *Kernel) CountIPCMiss() {
	k.cur.stats.FastpathMisses++
	if k.Metrics != nil {
		k.Metrics.FastpathMisses.Inc()
	}
}

// countFastpathFallback records a fast-path attempt that degraded to the
// slow path: a staged handoff demoted to a normal enqueue, a donation slot
// found occupied, or a register-carried transfer that faulted.
func (k *Kernel) countFastpathFallback() {
	k.cur.stats.FastpathFallbacks++
	if k.Metrics != nil {
		k.Metrics.FastpathFallbacks.Inc()
	}
}

// countZeroCopyFallback records a transfer whose page-aligned run had to
// take the copying path anyway (MMIO window, unwritable receiver mapping,
// or a share the MMU refused).
func (k *Kernel) countZeroCopyFallback() {
	k.cur.stats.ZeroCopyFallbacks++
	if k.Metrics != nil {
		k.Metrics.ZeroCopyFallbacks.Inc()
	}
}

// wakeOne wakes the head of q, returning it (nil if the queue was empty).
func (k *Kernel) wakeOne(q *obj.WaitQueue) *obj.Thread {
	t := q.Peek()
	if t == nil {
		return nil
	}
	k.wakeThread(t)
	return t
}

// wakeAll wakes every thread on q.
func (k *Kernel) wakeAll(q *obj.WaitQueue) int {
	n := 0
	for k.wakeOne(q) != nil {
		n++
	}
	return n
}

// maybeResched decides whether a wake preempts: locally by priority (the
// original uniprocessor rule), remotely by kicking the home CPU when the
// woken thread outranks whatever it is running.
func (k *Kernel) maybeResched(t *obj.Thread) {
	c := k.cur
	home := k.cpus[t.HomeCPU]
	if home == c {
		if c.current != nil && t.Priority > c.current.Priority {
			k.noteResched(c)
		}
		return
	}
	if home.current == nil || t.Priority > home.current.Priority {
		k.kickCPU(c, home)
	}
}

// ---------------------------------------------------------------------------
// Voluntary yield and explicit preemption points.

// yieldCPU gives up the CPU with the thread still runnable. The caller
// must already have rolled the thread's registers forward to a consistent
// restart point (or completed the syscall). front selects queue position.
func (k *Kernel) yieldCPU(front bool) sys.KErr {
	c := k.cur
	t := c.current
	t.State = obj.ThReady
	if front {
		k.schedEnqueueFront(c, t)
	} else {
		k.schedEnqueue(c, t)
	}
	k.clearResched(c)
	snap := k.parkRelease()
	if k.cfg.Model == ModelInterrupt {
		return sys.KPreempted
	}
	k.yieldProcess(t, yReady)
	k.parkReacquire(snap)
	return sys.KOK
}

// PreemptPoint is the explicit preemption point on the IPC data copy path
// (PP configurations; paper Table 4). The caller must have rolled the
// transfer registers forward first, so unwinding loses no state. In the
// process model the thread resumes in place; in the interrupt model
// KPreempted propagates and the operation restarts from the rolled-forward
// registers.
func (k *Kernel) PreemptPoint() sys.KErr {
	if k.cfg.Preempt != PreemptPartial {
		return sys.KOK
	}
	k.ChargeKernel(CycPreemptPoint)
	if !k.needsResched(k.cur) {
		return sys.KOK
	}
	k.cur.stats.PreemptsPoint++
	if k.Metrics != nil {
		k.Metrics.PreemptsPoint.Inc()
	}
	k.emit(trace.Preempt, 1, 0)
	return k.yieldCPU(true)
}

// ---------------------------------------------------------------------------
// Thread death and settling.

// exitThread terminates t in place: marks it dead, severs its queues,
// wakes joiners, and breaks its IPC connection.
func (k *Kernel) exitThread(t *obj.Thread, code uint32) {
	if t.State == obj.ThDead {
		return
	}
	t.Exited = true
	t.ExitCode = code
	t.State = obj.ThDead
	k.emit(trace.ThreadExit, code, 0)
	if k.Metrics != nil {
		k.Metrics.ThreadsLive.Add(-1)
	}
	if t.WaitQ != nil {
		t.WaitQ.Remove(t)
	}
	k.schedRemove(k.cur, t)
	if t.SleepTimer != nil {
		t.SleepTimer.Stop()
		t.SleepTimer = nil
	}
	k.ipcOnDeath(t)
	k.wakeAll(&t.ExitWaiters)
	delete(k.threads, t.ID)
	if t.Space != nil {
		for i, x := range t.Space.Threads {
			if x == t {
				t.Space.Threads = append(t.Space.Threads[:i], t.Space.Threads[i+1:]...)
				break
			}
		}
		// The handle stays bound (dead) so joiners that restart after
		// the exit still resolve it; the destroy common op unbinds it.
	}
	t.Dead = true
}

// DestroyThread destroys an arbitrary thread, promptly: a target parked
// mid-kernel (FP) is first settled to a clean boundary, then its kernel
// stack context is unwound.
func (k *Kernel) DestroyThread(t *obj.Thread) {
	if t.State == obj.ThDead {
		return
	}
	if t == k.cur.current {
		k.exitThread(t, 0)
		return
	}
	if k.cfg.Model == ModelProcess {
		k.settle(t)
	}
	k.exitThread(t, 0)
	if k.cfg.Model == ModelProcess && t.KCtx != nil {
		if c := t.KCtx.(*kctx); !c.done {
			if k.resumeCtx(t, resumeKill) != yDead {
				panic("core: killed context yielded alive")
			}
			k.reapCtx(t)
		}
	}
}

// settle drives a process-model thread that was preempted mid-kernel to a
// clean boundary (syscall completion or a block point), so its exported
// state is consistent. The wait involves only kernel-internal activity,
// preserving the API's promptness requirement. The settle runs on the
// acting CPU regardless of where the target parked.
func (k *Kernel) settle(target *obj.Thread) {
	if !target.InKernelPark {
		return
	}
	c := k.cur
	me := c.current
	c.settling = target
	k.schedRemove(c, target)
	target.State = obj.ThRunning
	c.current = target
	target.HomeCPU = c.id
	if k.resumeCtx(target, resumeRun) == yDead {
		k.reapCtx(target)
	}
	c.settling = nil
	c.current = me
	if me != nil {
		me.State = obj.ThRunning
	}
	if target.InKernelPark {
		panic("core: settle did not reach a clean boundary")
	}
}

// ---------------------------------------------------------------------------
// Register-state helpers (the Figure 4 primitives).

// Return completes the current system call: status in R0, resume at the
// address the CALL left in LR.
func (k *Kernel) Return(t *obj.Thread, e sys.Errno) {
	t.Regs.R[0] = uint32(e)
	t.Regs.PC = t.Regs.R[cpu.LR]
}

// SetPC re-points the thread's user PC at a different system call
// entrypoint — the set_pc of paper Figure 4, which turns the user-visible
// register state into the continuation (cond_wait -> mutex_lock, IPC stage
// chaining).
func (k *Kernel) SetPC(t *obj.Thread, sysno int) {
	t.Regs.PC = cpu.SyscallEntry(sysno)
	t.InSyscall = false
	t.EntryCycles = 0
}

// CommitProgress marks the thread's rolled-forward registers as committed:
// work charged before this point will not be redone by a restart.
func (k *Kernel) CommitProgress(t *obj.Thread) {
	t.EntryCycles = 0
	if k.Metrics != nil {
		k.Metrics.Commits.Inc()
	}
}
