package core_test

// Zero-copy transparency: sharing the sender's frames into the receiver's
// region copy-on-write instead of copying words deliberately changes
// virtual time (that is the optimisation), but nothing a user program can
// observe may differ with the path on vs off — final memory on both sides
// of the transfer (after COW breaks from both the receiver and the
// sender) and the Table 3 restart-cause counts — across all five paper
// configurations × NumCPUs {1,2,4} × both lock models, including a run
// whose receive region is pager-backed and unpopulated so a hard fault
// fires at every page boundary of the shared transfer.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	zcPages = 4
	zcWords = zcPages * mem.PageSize / 4
	zcSBase = 0x0100_0000 // client's page-aligned send window
	zcRBase = 0x0200_0000 // server's page-aligned receive window
)

type zcResult struct {
	memory   []byte // both buffers after all COW breaks settled
	restarts [4]uint64
	faults   map[core.FaultKey]uint64 // COW-class entries removed
	hard     uint64
	shares   uint64
	breaks   uint64
}

// runZeroCopyBulk runs one 4-page RPC: the client fills the first two
// pages of its send buffer (the rest stays demand-zero and is first
// touched by the transfer itself), sends all four pages, and — after the
// reply — stores into shared pages 1 and 3; the server stores
// into received pages 0 and 2 before replying. With pagerBacked the
// receive region starts empty and faults to a pager at every page.
func runZeroCopyBulk(t *testing.T, cfg core.Config, pagerBacked bool) zcResult {
	t.Helper()
	e := newEnv(t, cfg)
	e.k.EnableMetrics()
	bindIPC(t, e.k, e.s, e.s)

	sreg, err := e.k.NewBoundRegion(e.s, kernelDataHandle(), zcPages*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.k.MapInto(e.s, sreg, zcSBase, 0, zcPages*mem.PageSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	// The receive region has one page of slack so the receive count can
	// exceed the message and the receive completes on message-end, never
	// on buffer-full (which can race the reply on some schedules).
	rreg, err := e.k.NewBoundRegion(e.s, regVA, (zcPages+1)*mem.PageSize, !pagerBacked)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.k.MapInto(e.s, rreg, zcRBase, 0, (zcPages+1)*mem.PageSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	if pagerBacked {
		po, _ := obj.New(sys.ObjPort)
		pso, _ := obj.New(sys.ObjPortset)
		pgPort := po.(*obj.Port)
		pgPs := pso.(*obj.Portset)
		if err := e.k.Bind(e.s, pgPortVA, pgPort); err != nil {
			t.Fatal(err)
		}
		if err := e.k.Bind(e.s, pgPsVA, pgPs); err != nil {
			t.Fatal(err)
		}
		pgPs.AddPort(pgPort)
		e.k.AttachPager(rreg, pgPort)

		const fmBuf = dataBase + 0x400
		pager := prog.New(codeBase + 0x10000)
		pager.Label("pg.loop").
			IPCWaitReceive(fmBuf, 2, pgPsVA).
			Movi(1, regVA).
			Movi(4, fmBuf).Ld(2, 4, 0).
			Movi(3, 1).
			Syscall(sys.NMemAllocate).
			Jmp("pg.loop")
		if _, err := e.k.LoadImage(e.s, pager.Base(), pager.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		e.spawnAt(pager.Base(), 15)
	}

	const (
		ackBuf = dataBase + 0x200 // client's reply landing word
		repBuf = dataBase + 0x300 // server's reply staging word
	)

	// Server: receive the transfer, break shares on received pages 0 and
	// 2 with stores, stage a reply taken from the (unbroken) data, reply.
	srv := prog.New(codeBase + 0x8000)
	srv.IPCWaitReceive(zcRBase, zcWords+1, psVA).
		Movi(4, zcRBase).Movi(5, 0x77).St(4, 0, 5).
		Movi(4, zcRBase+2*mem.PageSize).Movi(5, 0x2222).St(4, 16, 5).
		Movi(4, zcRBase).Ld(5, 4, 4).
		Movi(4, repBuf).St(4, 0, 5).
		IPCReplyWaitReceive(repBuf, 1, psVA, zcRBase, zcWords+1)

	// Client: fill pages 0–1 with each word's own address, send all four
	// pages, then store into pages 1 and 3 — both shared (the tail-page
	// rule keeps the run open through the final page), so each store
	// breaks a COW pair.
	cli := prog.New(codeBase + 0x4000)
	cli.Movi(4, zcSBase).Movi(5, zcSBase+2*mem.PageSize).
		Label("fill").
		St(4, 0, 4).
		Addi(4, 4, 4).
		Blt(4, 5, "fill").
		IPCClientConnectSendOverReceive(zcSBase, zcWords, refVA, ackBuf, 1).
		IPCClientDisconnect().
		Movi(4, zcSBase+mem.PageSize).Movi(5, 0xAAAA).St(4, 8, 5).
		Movi(4, zcSBase+3*mem.PageSize).Movi(5, 0xBBBB).St(4, 12, 5).
		Halt()

	if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	e.spawnAt(srv.Base(), 12)
	client := e.spawn(t, cli, 10)
	e.run(t, 4_000_000_000, client)

	var res zcResult
	for _, base := range []uint32{zcSBase, zcRBase} {
		m, err := e.k.ReadMem(e.s, base, zcPages*mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		res.memory = append(res.memory, m...)
	}
	ack, err := e.k.ReadMem(e.s, ackBuf, 4)
	if err != nil {
		t.Fatal(err)
	}
	res.memory = append(res.memory, ack...)

	st := e.k.Stats()
	res.restarts = e.k.Metrics.RestartsByCause()
	res.faults = map[core.FaultKey]uint64{}
	for key, n := range st.FaultCount {
		if key.Class == mmu.FaultCOW {
			continue // the COW class exists only with the path on
		}
		res.faults[key] = n
		if key.Class == mmu.FaultHard {
			res.hard += n
		}
	}
	res.shares = st.ZeroCopyShares
	res.breaks = st.ZeroCopyCOWBreaks
	return res
}

// zcSanity pins absolute contents so a bug shared by both paths cannot
// hide in the on-vs-off comparison.
func zcSanity(t *testing.T, r zcResult, tag string) {
	t.Helper()
	word := func(off int) uint32 {
		b := r.memory[off : off+4]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	const rOff = zcPages * mem.PageSize // receive buffer's offset in res.memory
	checks := []struct {
		off  int
		want uint32
		what string
	}{
		{4, zcSBase + 4, "sender page 0 kept its fill"},
		{mem.PageSize + 8, 0xAAAA, "sender's post-transfer store landed"},
		{3*mem.PageSize + 12, 0xBBBB, "sender's copied-page store landed"},
		{rOff, 0x77, "receiver's page-0 break landed"},
		{rOff + 4, zcSBase + 4, "received page 0 carries the payload"},
		{rOff + mem.PageSize + 8, zcSBase + mem.PageSize + 8, "receiver kept pre-break page 1"},
		{rOff + 2*mem.PageSize + 16, 0x2222, "receiver's page-2 break landed"},
		{rOff + 2*mem.PageSize + 20, 0, "demand-zero source page arrived as zeros"},
		{2 * zcPages * mem.PageSize, zcSBase + 4, "reply delivered"},
	}
	for _, c := range checks {
		if got := word(c.off); got != c.want {
			t.Fatalf("%s: %s: word at %#x = %#x, want %#x", tag, c.what, c.off, got, c.want)
		}
	}
}

func TestZeroCopyEquivalence(t *testing.T) {
	totalShares := uint64(0)
	for _, base := range core.Configurations() {
		for _, ncpu := range []int{1, 2, 4} {
			for _, lm := range []core.LockModel{core.LockBig, core.LockPerSubsystem} {
				cfg := base
				cfg.NumCPUs = ncpu
				cfg.LockModel = lm
				t.Run(fmt.Sprintf("%s/cpus=%d/%s", base.Name(), ncpu, lm), func(t *testing.T) {
					for _, pager := range []bool{false, true} {
						tag := "demand-zero"
						if pager {
							tag = "pager-backed"
						}
						on := runZeroCopyBulk(t, cfg, pager)
						off := cfg
						off.DisableZeroCopy = true
						offR := runZeroCopyBulk(t, off, pager)

						zcSanity(t, on, tag+"/on")
						zcSanity(t, offR, tag+"/off")
						if !bytes.Equal(on.memory, offR.memory) {
							t.Fatalf("%s: observable memory differs with zero-copy on vs off", tag)
						}
						if on.restarts != offR.restarts {
							t.Fatalf("%s: Table 3 restart causes differ: on=%v off=%v",
								tag, on.restarts, offR.restarts)
						}
						for key, want := range offR.faults {
							if got := on.faults[key]; got != want {
								t.Fatalf("%s: fault count %v differs: on=%d off=%d",
									tag, key, got, want)
							}
						}
						for key := range on.faults {
							if _, ok := offR.faults[key]; !ok {
								t.Fatalf("%s: fault class %v only with zero-copy on", tag, key)
							}
						}
						if on.shares == 0 {
							t.Fatalf("%s: no pages were shared; the comparison is vacuous", tag)
						}
						if on.breaks == 0 {
							t.Fatalf("%s: no COW break fired; the comparison is vacuous", tag)
						}
						if offR.shares != 0 || offR.breaks != 0 {
							t.Fatalf("%s: disabled run shared %d pages, broke %d",
								tag, offR.shares, offR.breaks)
						}
						if pager && on.hard < zcPages {
							t.Fatalf("pager-backed run took %d hard faults, want one per page (%d)",
								on.hard, zcPages)
						}
						totalShares += on.shares
					}
				})
			}
		}
	}
	if totalShares == 0 {
		t.Fatal("no share fired anywhere in the matrix; the test is vacuous")
	}
}
