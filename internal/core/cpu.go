package core

import (
	"repro/internal/clock"
	"repro/internal/obj"
	"repro/internal/sched"
)

// CPU is one simulated processor: the kernel's per-CPU scheduler frame.
// Each CPU owns a local virtual clock (its TSC and local timer queue), a
// run queue, the currently running thread, and a Stats shard; the kernel
// merges the shards on read. In the interrupt execution model the CPU's
// scheduler frame doubles as its one kernel stack, exactly the paper's
// "one kernel stack per processor".
//
// In the default deterministic mode the CPUs execute serially — the
// scheduler loop always runs the CPU with the smallest local virtual time
// (ties broken by index) — so all per-CPU state is touched by one host
// goroutine at a time. In ParallelHost mode each CPU runs on its own host
// goroutine and every access to this struct happens under the lock-model
// mutexes (see locks.go, parallel.go).
type CPU struct {
	id  int
	clk *clock.Clock

	runq    *sched.RunQueue
	current *obj.Thread

	needResched bool
	sliceTimer  *clock.Timer
	inHandler   bool        // a syscall handler is on this CPU's kernel stack
	settling    *obj.Thread // settle() target; suppresses FP re-parking

	// reschedSince is the virtual time of the oldest unserviced
	// reschedule request (local quantum expiry, local wake, or a remote
	// CPU's IPI-like kick), feeding Metrics.PreemptLatency. 0 = none.
	reschedSince uint64

	// stats is this CPU's shard of the kernel counters; Kernel.Stats()
	// sums the shards.
	stats Stats

	// holds are the lock-model re-entrancy counts, indexed by lock slot:
	// holds[slot] > 0 means this CPU's kernel context holds that lock
	// instance. lockSince stamps the outermost acquire for the hold-time
	// histogram, and held lists the currently held slots so episode
	// epilogues release in O(held) rather than scanning the whole table
	// (the fine model's table grows with CPUs and spaces). Sized by
	// initLockTable/addLockSlot.
	holds     []int16
	lockSince []uint64
	held      []int32
}

func newCPU(id int) *CPU {
	return &CPU{
		id:    id,
		clk:   clock.New(),
		runq:  sched.NewRunQueue(),
		stats: newStats(),
		held:  make([]int32, 0, maxHeldSlots),
	}
}

// ID returns the CPU's index.
func (c *CPU) ID() int { return c.id }

// stopSliceTimer cancels the CPU's pending quantum timer, if any.
func (c *CPU) stopSliceTimer() {
	if c.sliceTimer != nil {
		c.clk.Cancel(c.sliceTimer)
		c.sliceTimer = nil
	}
}

// ---------------------------------------------------------------------------
// Kernel-level multi-CPU surface.

// NumCPUs returns the number of simulated processors.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// Now returns the frontier of virtual time: the maximum of the per-CPU
// clocks. At NumCPUs == 1 it equals k.Clock.Now().
func (k *Kernel) Now() uint64 {
	now := uint64(0)
	for _, c := range k.cpus {
		if n := c.clk.Now(); n > now {
			now = n
		}
	}
	return now
}

// CPUNow returns CPU i's local virtual time.
func (k *Kernel) CPUNow(i int) uint64 { return k.cpus[i].clk.Now() }

// Stats returns the kernel counters, merging the per-CPU shards. Maps in
// the result are freshly allocated — callers that snapshot in a loop and
// can reuse a buffer should call StatsInto instead, which allocates
// nothing. Safe to call while a ParallelHost run is live: the merge runs
// under the kernel gate, so it sees a consistent boundary between kernel
// sections (pinned by the -race merge test).
func (k *Kernel) Stats() Stats {
	out := newStats()
	k.StatsInto(&out)
	return out
}

// StatsInto merges the per-CPU shards into *out, reusing out's maps
// (cleared first; allocated if nil). Repeated snapshots through the same
// buffer are allocation-free once the maps have reached their steady-state
// size — the point at 64 CPUs, where a fresh merge per read would pay map
// allocations on every poll (pinned by TestStatsIntoAllocs).
func (k *Kernel) StatsInto(out *Stats) {
	if k.par != nil {
		k.snapLock()
		defer k.snapUnlock()
	}
	faultCount, faultRemedy, faultRollback := out.FaultCount, out.FaultRemedy, out.FaultRollback
	if faultCount == nil {
		faultCount = make(map[FaultKey]uint64)
	}
	if faultRemedy == nil {
		faultRemedy = make(map[FaultKey]uint64)
	}
	if faultRollback == nil {
		faultRollback = make(map[FaultKey]uint64)
	}
	clear(faultCount)
	clear(faultRemedy)
	clear(faultRollback)
	*out = Stats{FaultCount: faultCount, FaultRemedy: faultRemedy, FaultRollback: faultRollback}
	for _, c := range k.cpus {
		s := &c.stats
		out.Syscalls += s.Syscalls
		for i := range s.SyscallsByNum {
			out.SyscallsByNum[i] += s.SyscallsByNum[i]
		}
		out.ContextSwitches += s.ContextSwitches
		out.UserCycles += s.UserCycles
		out.KernelCycles += s.KernelCycles
		out.IdleCycles += s.IdleCycles
		out.Restarts += s.Restarts
		for key, v := range s.FaultCount {
			out.FaultCount[key] += v
		}
		for key, v := range s.FaultRemedy {
			out.FaultRemedy[key] += v
		}
		for key, v := range s.FaultRollback {
			out.FaultRollback[key] += v
		}
		out.PreemptsUser += s.PreemptsUser
		out.PreemptsPoint += s.PreemptsPoint
		out.PreemptsKernel += s.PreemptsKernel
		out.Interrupts += s.Interrupts
		out.TimerIRQs += s.TimerIRQs
		out.ContinuationsRecognized += s.ContinuationsRecognized
		out.IPIs += s.IPIs
		out.Steals += s.Steals
		out.FastpathHits += s.FastpathHits
		out.FastpathMisses += s.FastpathMisses
		out.FastpathFallbacks += s.FastpathFallbacks
		out.ZeroCopyShares += s.ZeroCopyShares
		out.ZeroCopyCOWBreaks += s.ZeroCopyCOWBreaks
		out.ZeroCopyFallbacks += s.ZeroCopyFallbacks
	}
}

// CPUStats returns CPU i's un-merged stats shard.
func (k *Kernel) CPUStats(i int) Stats { return k.cpus[i].stats }
