package core

import (
	"repro/internal/obj"
	"repro/internal/sys"
	"repro/internal/trace"
)

// Causal IPC spans (Config.EnableIPCSpans): a request-scoped trace ID
// minted when a thread enters a send-bearing IPC syscall with no span,
// carried in Thread.Span, and propagated to every thread the request's
// data or control reaches — through the rendezvous copy (CopyWords, both
// the word loop and the zero-copy share path), the rendezvous wake and
// direct handoff, and cross-CPU donation steals. Each checkpoint emits a
// trace.Flow event; the Perfetto export draws them as flow arrows across
// CPU lanes and flukebench -critpath decomposes the begin→end interval
// hop by hop. The span ends — FlowEnd, ID released — when the minting
// thread's IPC syscall completes (KOK or EINTR).
//
// Spans never charge cycles and write only Thread.Span/SpanOwner, which
// nothing else reads, so the simulated timeline and all kernel state stay
// bit-identical with them on or off (TestProfilerEquivalence covers the
// spans-on configuration too).

// spanSendBearing marks the IPC syscalls that carry data toward a peer —
// the mint points. Receive-only entries (setup_wait, wait_receive,
// client/server receive) never mint: they inherit the sender's span.
var spanSendBearing = func() [sys.NumSyscalls]bool {
	var m [sys.NumSyscalls]bool
	for _, n := range []int{
		sys.NIPCClientConnectSend,
		sys.NIPCClientConnectSendOverReceive,
		sys.NIPCClientSend,
		sys.NIPCClientSendOverReceive,
		sys.NIPCServerSend,
		sys.NIPCServerSendOverReceive,
		sys.NIPCServerAckSend,
		sys.NIPCServerAckSendOverReceive,
		sys.NIPCServerAckSendWaitReceive,
		sys.NIPCReply,
		sys.NIPCReplyWaitReceive,
		sys.NIPCSendOneway,
	} {
		m[n] = true
	}
	return m
}()

// spanFlow emits one flow checkpoint for span id.
func (k *Kernel) spanFlow(id, point uint32) {
	k.emit(trace.Flow, id, point)
}

// spanSyscallEnter mints a span when t enters a send-bearing IPC syscall
// unspanned. A thread already carrying a span (a server replying to a
// spanned request, or a faulted restart of the same send) never re-mints.
func (k *Kernel) spanSyscallEnter(t *obj.Thread, num int) {
	if !k.spans || !spanSendBearing[num] || t.Span != 0 {
		return
	}
	k.nextSpan++
	if k.nextSpan == 0 { // skip 0: it means "no span"
		k.nextSpan = 1
	}
	t.Span = k.nextSpan
	t.SpanOwner = true
	k.spanFlow(t.Span, trace.FlowBegin)
}

// spanSyscallExit ends t's span when the thread that minted it completes
// a syscall (KOK or EINTR). The completing number is not checked against
// spanSendBearing: stage chaining rewrites a blocked sender's PC to the
// next-stage entrypoint (ipc_client_connect_send_over_receive restarts as
// ipc_client_receive), so the owner's logical call often completes under
// a receive-only number — but the owner cannot run any other syscall
// while inside the minted one, so its first completion IS the RPC's end.
// Non-owning carriers (servers) keep the ID until the next request's
// copy overwrites it.
func (k *Kernel) spanSyscallExit(t *obj.Thread, num int) {
	if !k.spans || !t.SpanOwner || t.Span == 0 {
		return
	}
	k.spanFlow(t.Span, trace.FlowEnd)
	t.Span = 0
	t.SpanOwner = false
}

// spanTouch records that data or control flowed src → dst, propagating
// src's span (overwriting any stale one dst carried) and emitting the
// given checkpoint. Called with the acting CPU current, so the event
// lands on the emitting CPU's lane at its local time.
func (k *Kernel) spanTouch(src, dst *obj.Thread, point uint32) {
	if !k.spans || src == nil || dst == nil {
		return
	}
	id := src.Span
	if id == 0 {
		return
	}
	if dst != src && dst.Span != id {
		dst.Span = id
		dst.SpanOwner = false
	}
	k.spanFlow(id, point)
}

// spanCheckpoint emits a checkpoint for t's span, if it has one — used at
// hops that move a spanned thread without a peer (handoff dispatch,
// cross-CPU steal).
func (k *Kernel) spanCheckpoint(t *obj.Thread, point uint32) {
	if !k.spans || t == nil || t.Span == 0 {
		return
	}
	k.spanFlow(t.Span, point)
}
