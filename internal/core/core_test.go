package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

const (
	codeBase = 0x0001_0000
	dataBase = 0x0004_0000
	dataSize = 16 * mem.PageSize
)

// allConfigs are the paper's five kernel configurations.
func allConfigs() []core.Config { return core.Configurations() }

// env is a one-space test environment.
type env struct {
	k *core.Kernel
	s *obj.Space
}

func newEnv(t *testing.T, cfg core.Config) *env {
	t.Helper()
	k := core.New(cfg)
	s := k.NewSpace()
	// A demand-zero data window for guest handles and buffers.
	r, err := k.NewBoundRegion(s, kernelDataHandle(), dataSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.MapInto(s, r, dataBase, 0, dataSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}
	return &env{k: k, s: s}
}

var dataHandleCounter uint32

// kernelDataHandle hands out distinct handle slots in the reserved window
// for the data regions themselves.
func kernelDataHandle() uint32 {
	dataHandleCounter += 4
	return core.KObjBase + 0x800 + dataHandleCounter
}

// spawn loads the program and starts a thread at its base.
func (e *env) spawn(t *testing.T, b *prog.Builder, prio int) *obj.Thread {
	t.Helper()
	th, err := e.k.SpawnProgram(e.s, b.Base(), b.MustAssemble(), prio)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

// spawnAt creates a thread entering at an arbitrary address of an
// already-loaded image.
func (e *env) spawnAt(pc uint32, prio int) *obj.Thread {
	th := e.k.NewThread(e.s, prio)
	th.Regs.PC = pc
	e.k.StartThread(th)
	return th
}

// word reads a 32-bit little-endian guest word.
func (e *env) word(t *testing.T, va uint32) uint32 {
	t.Helper()
	b, err := e.k.ReadMem(e.s, va, 4)
	if err != nil {
		t.Fatal(err)
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// run runs the kernel with a generous budget and checks the given threads
// exited.
func (e *env) run(t *testing.T, budget uint64, threads ...*obj.Thread) {
	t.Helper()
	e.k.RunFor(budget)
	for _, th := range threads {
		if !th.Exited {
			t.Fatalf("thread %d did not exit (state=%v waitq=%v pc=%#x r0=%d)",
				th.ID, th.State, th.WaitQ != nil, th.Regs.PC, th.Regs.R[0])
		}
	}
}

// forEachConfig runs the subtest under all five configurations.
func forEachConfig(t *testing.T, fn func(t *testing.T, cfg core.Config)) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) { fn(t, cfg) })
	}
}

// ---------------------------------------------------------------------------

func TestConfigValidation(t *testing.T) {
	bad := core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptFull}
	if err := bad.Validate(); err == nil {
		t.Fatal("interrupt+full preemption accepted")
	}
	if len(core.Configurations()) != 5 {
		t.Fatal("expected the paper's five configurations")
	}
	names := map[string]bool{}
	for _, c := range core.Configurations() {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		names[c.Name()] = true
	}
	for _, want := range []string{"Process NP", "Process PP", "Process FP", "Interrupt NP", "Interrupt PP"} {
		if !names[want] {
			t.Fatalf("missing configuration %q", want)
		}
	}
}

func TestTrivialSyscalls(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		// api_version -> [data+0], thread_self id -> [data+4],
		// priority -> [data+8], null errno -> [data+12].
		b.Syscall(sys.NAPIVersion).
			Movi(6, dataBase).St(6, 0, 1).
			ThreadSelf().
			Movi(6, dataBase).St(6, 4, 2).
			Syscall(sys.NThreadPrioritySelf).
			Movi(6, dataBase).St(6, 8, 1).
			Null().
			Movi(6, dataBase).St(6, 12, 0).
			Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 50_000_000, th)
		if got := e.word(t, dataBase); got != sys.APIVersionValue {
			t.Errorf("api_version = %#x", got)
		}
		if got := e.word(t, dataBase+4); got != th.ID {
			t.Errorf("thread_self id = %d, want %d", got, th.ID)
		}
		if got := e.word(t, dataBase+8); got != 10 {
			t.Errorf("priority = %d", got)
		}
		if got := e.word(t, dataBase+12); got != uint32(sys.EOK) {
			t.Errorf("null errno = %d", got)
		}
	})
}

func TestObjectCreateDestroy(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	const mtx = dataBase + 0x100
	b := prog.New(codeBase)
	b.MutexCreate(mtx).
		Movi(6, dataBase).St(6, 0, 0). // create errno
		MutexTrylock(mtx).
		Movi(6, dataBase).St(6, 4, 0). // trylock errno (EOK)
		MutexTrylock(mtx).
		Movi(6, dataBase).St(6, 8, 0). // second trylock (EWOULDBLOCK)
		MutexUnlock(mtx).
		Destroy(sys.ObjMutex, mtx).
		Movi(6, dataBase).St(6, 12, 0). // destroy errno
		MutexTrylock(mtx).
		Movi(6, dataBase).St(6, 16, 0). // after destroy (ESRCH)
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 50_000_000, th)
	for i, want := range []sys.Errno{sys.EOK, sys.EOK, sys.EWOULDBLOCK, sys.EOK, sys.ESRCH} {
		if got := e.word(t, dataBase+uint32(i)*4); got != uint32(want) {
			t.Errorf("step %d errno = %v, want %v", i, sys.Errno(got), want)
		}
	}
}

// mutexCounterProgram builds the classic two-thread counter-under-mutex
// program; thread 2 enters at label "t2".
func mutexCounterProgram(n uint32) *prog.Builder {
	const (
		mtx = dataBase + 0x100
		ctr = dataBase + 0x200
	)
	b := prog.New(codeBase)
	body := func(entry, done string) {
		b.Label(entry).
			Movi(6, 0).
			Label(entry+".loop").
			Movi(5, n)
		b.Beq(6, 5, done)
		b.MutexLock(mtx).
			Movi(4, ctr).Ld(5, 4, 0).Addi(5, 5, 1).St(4, 0, 5).
			MutexUnlock(mtx).
			Addi(6, 6, 1).
			Jmp(entry + ".loop")
	}
	b.MutexCreate(mtx).Jmp("t1")
	body("t1", "t1.done")
	b.Label("t1.done").Halt()
	body("t2", "t2.done")
	b.Label("t2.done").Halt()
	return b
}

func TestMutexContention(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const n = 50
		b := mutexCounterProgram(n)
		t1 := e.spawn(t, b, 10)
		t2 := e.spawnAt(b.Addr("t2"), 10)
		e.run(t, 200_000_000, t1, t2)
		if got := e.word(t, dataBase+0x200); got != 2*n {
			t.Fatalf("counter = %d, want %d", got, 2*n)
		}
	})
}

func TestCondWaitSignal(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const (
			mtx  = dataBase + 0x100
			cnd  = dataBase + 0x104
			flag = dataBase + 0x200
		)
		b := prog.New(codeBase)
		// Waiter: lock; while flag==0 cond_wait; unlock; halt.
		b.MutexCreate(mtx).CondCreate(cnd).
			MutexLock(mtx).
			Label("check").
			Movi(4, flag).Ld(5, 4, 0).
			Movi(6, 0)
		b.Bne(5, 6, "got")
		b.CondWait(cnd, mtx).
			Jmp("check").
			Label("got").
			MutexUnlock(mtx).
			Halt()
		// Signaler: sleep a bit; lock; flag=1; signal; unlock; halt.
		b.Label("t2").
			ThreadSleepUS(500).
			MutexLock(mtx).
			Movi(4, flag).Movi(5, 1).St(4, 0, 5).
			CondSignal(cnd).
			MutexUnlock(mtx).
			Halt()
		t1 := e.spawn(t, b, 10)
		t2 := e.spawnAt(b.Addr("t2"), 10)
		e.run(t, 400_000_000, t1, t2)
	})
}

// TestCondWaitExportsMutexLockContinuation pins the paper's flagship §4.3
// mechanism: a thread blocked in cond_wait has its user PC re-pointed at
// the mutex_lock entrypoint with the mutex handle in R1, so its exported
// state is a clean restart point.
func TestCondWaitExportsMutexLockContinuation(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const (
			mtx = dataBase + 0x100
			cnd = dataBase + 0x104
		)
		b := prog.New(codeBase)
		b.MutexCreate(mtx).CondCreate(cnd).
			MutexLock(mtx).
			CondWait(cnd, mtx).
			Halt()
		th := e.spawn(t, b, 10)
		e.k.RunFor(10_000_000) // waiter blocks; system goes idle
		if th.State != obj.ThBlocked {
			t.Fatalf("thread state %v, want blocked in cond_wait", th.State)
		}
		if th.Regs.PC != cpu.SyscallEntry(sys.NMutexLock) {
			t.Fatalf("blocked PC = %#x, want mutex_lock entry %#x",
				th.Regs.PC, cpu.SyscallEntry(sys.NMutexLock))
		}
		if th.Regs.R[1] != mtx {
			t.Fatalf("blocked R1 = %#x, want mutex handle %#x", th.Regs.R[1], mtx)
		}
	})
}

func TestThreadSleepAdvancesVirtualTime(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		b.ThreadSleepUS(10_000). // 10 ms
						ClockGet().
						Movi(6, dataBase).St(6, 0, 1).
						Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 100_000_000, th)
		us := e.word(t, dataBase)
		if us < 10_000 {
			t.Fatalf("clock after sleep = %d µs, want >= 10000", us)
		}
		if us > 20_000 {
			t.Fatalf("clock after sleep = %d µs, way past deadline", us)
		}
	})
}

func TestInterruptDeliversEINTR(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const mtx = dataBase + 0x100
		b := prog.New(codeBase)
		// t1: create+lock mutex; then lock again (blocks forever) and
		// record the errno it eventually gets.
		b.MutexCreate(mtx).
			MutexLock(mtx).
			MutexLock(mtx).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		t1 := e.spawn(t, b, 10)
		e.k.RunFor(5_000_000)
		if t1.State != obj.ThBlocked {
			t.Fatalf("t1 not blocked: %v", t1.State)
		}
		// Host-side interrupt via a kernel thread calling the syscall
		// machinery indirectly: use the public thread object + a second
		// guest thread that interrupts t1 via its handle. Interrupting
		// needs t1's handle: the kernel window handle is host-known.
		t1Handle := t1.VA
		b2 := prog.New(codeBase + 0x4000)
		b2.Movi(1, t1Handle).Syscall(sys.NThreadInterrupt).Halt()
		img2 := b2.MustAssemble()
		if _, err := e.k.LoadImage(e.s, b2.Base(), img2); err != nil {
			t.Fatal(err)
		}
		t2 := e.spawnAt(b2.Base(), 10)
		e.run(t, 100_000_000, t1, t2)
		if got := e.word(t, dataBase); got != uint32(sys.EINTR) {
			t.Fatalf("blocked lock errno = %v, want EINTR", sys.Errno(got))
		}
		if e.k.Stats().Interrupts == 0 {
			t.Fatal("no interrupt recorded")
		}
	})
}

func TestSchedYieldRoundRobin(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		// Two threads alternately append their IDs via yields; both
		// finish.
		b := prog.New(codeBase)
		b.Label("t1").SchedYield().SchedYield().SchedYield().Halt()
		t1 := e.spawn(t, b, 10)
		t2 := e.spawnAt(b.Addr("t1"), 10)
		e.run(t, 50_000_000, t1, t2)
	})
}

func TestPriorityPreemptsOnWake(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		// Low-priority spinner; high-priority sleeper that records the
		// clock when it wakes. The wake must preempt the spinner
		// promptly (user-mode preemption).
		spin := prog.New(codeBase)
		spin.Movi(6, 0).
			Label("spin").
			Addi(6, 6, 1).
			Movi(5, 2_000_000).
			Blt(6, 5, "spin").
			Halt()
		hi := prog.New(codeBase + 0x8000)
		hi.ThreadSleepUS(1000).
			ClockGet().
			Movi(6, dataBase).St(6, 0, 1).
			Halt()
		tSpin := e.spawn(t, spin, 5)
		img := hi.MustAssemble()
		if _, err := e.k.LoadImage(e.s, hi.Base(), img); err != nil {
			t.Fatal(err)
		}
		tHi := e.spawnAt(hi.Base(), 20)
		e.run(t, 400_000_000, tHi)
		_ = tSpin
		wake := e.word(t, dataBase)
		if wake < 1000 || wake > 1200 {
			t.Fatalf("high-priority thread woke at %d µs, want ~1000 (prompt preemption)", wake)
		}
	})
}

func TestSoftFaultRestartsShortSyscall(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		// The mutex handle lives in a demand-zero page never touched
		// before: mutex_create must fault on the handle page, restart,
		// and succeed (paper §4.3's port_reference example).
		const mtx = dataBase + 8*mem.PageSize
		b := prog.New(codeBase)
		b.MutexCreate(mtx).
			MutexTrylock(mtx).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 50_000_000, th)
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("trylock after faulting create = %v", sys.Errno(got))
		}
		soft := e.k.Stats().FaultCount[core.FaultKey{Class: mmu.FaultSoft, Side: core.FaultSame}]
		if soft == 0 {
			t.Fatal("no soft fault recorded")
		}
		if e.k.Stats().Restarts == 0 {
			t.Fatal("no syscall restart recorded")
		}
	})
}

func TestRegionSearchFindsHandle(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	const mtx = dataBase + 0x300
	b := prog.New(codeBase)
	b.MutexCreate(mtx).
		RegionSearch(dataBase, dataSize).
		Movi(6, dataBase).St(6, 0, 1). // found VA
		RegionSearch(dataBase+0x400, dataSize-0x400).
		Movi(6, dataBase).St(6, 4, 0). // errno (ENOTFOUND)
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 100_000_000, th)
	if got := e.word(t, dataBase); got != mtx {
		t.Fatalf("region_search found %#x, want %#x", got, mtx)
	}
	if got := e.word(t, dataBase+4); got != uint32(sys.ENOTFOUND) {
		t.Fatalf("empty search errno = %v, want ENOTFOUND", sys.Errno(got))
	}
}

func TestThreadWaitJoin(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		// Child: exits with code 42 (halt takes R1 as exit code).
		b.Label("child").ThreadSleepUS(200).Movi(1, 42).Halt()
		// Parent entry placed after child.
		b.Label("parent").
			Movi(1, 0). // patched below with child handle
			Label("patch").
			Syscall(sys.NThreadWait).
			Movi(6, dataBase).St(6, 0, 1). // exit code
			Movi(6, dataBase).St(6, 4, 0). // errno
			Halt()
		img := b.MustAssemble()
		if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
			t.Fatal(err)
		}
		child := e.spawnAt(b.Addr("child"), 10)
		// Patch the parent's movi with the child's kernel-window handle.
		parent := e.spawnAt(b.Addr("parent"), 10)
		patch := b.Addr("patch") - 4 // imm word of the movi before the label
		if err := e.k.WriteMem(e.s, patch, []byte{
			byte(child.VA), byte(child.VA >> 8), byte(child.VA >> 16), byte(child.VA >> 24)}); err != nil {
			t.Fatal(err)
		}
		e.run(t, 100_000_000, child, parent)
		if got := e.word(t, dataBase); got != 42 {
			t.Fatalf("join exit code = %d, want 42", got)
		}
		if got := e.word(t, dataBase+4); got != uint32(sys.EOK) {
			t.Fatalf("join errno = %v", sys.Errno(got))
		}
	})
}

func TestModelEquivalence(t *testing.T) {
	// The same program must produce identical user-visible results under
	// every configuration (paper: the configuration option "has no impact
	// on the functionality of the API").
	results := map[string]uint32{}
	for _, cfg := range allConfigs() {
		e := newEnv(t, cfg)
		const n = 30
		b := mutexCounterProgram(n)
		t1 := e.spawn(t, b, 10)
		t2 := e.spawnAt(b.Addr("t2"), 10)
		e.run(t, 200_000_000, t1, t2)
		results[cfg.Name()] = e.word(t, dataBase+0x200)
	}
	want := results["Process NP"]
	for name, got := range results {
		if got != want {
			t.Errorf("%s result %d differs from Process NP %d", name, got, want)
		}
	}
}

func TestMemOverheadTable7Shape(t *testing.T) {
	// Interrupt model: per-thread cost is the TCB only. Process model:
	// TCB + stack. The paper's Fluke row: interrupt 300 B, process
	// 1024/4096 B stacks.
	ik := core.New(core.Config{Model: core.ModelInterrupt})
	pk := core.New(core.Config{Model: core.ModelProcess})
	itcb, istack, itotal := ik.MemOverhead()
	_, pstack, ptotal := pk.MemOverhead()
	if istack != 0 {
		t.Fatalf("interrupt model charges per-thread stack %d", istack)
	}
	if pstack != core.DefaultKernelStackSize {
		t.Fatalf("process stack = %d", pstack)
	}
	if ptotal <= itotal {
		t.Fatal("process model should cost more per thread")
	}
	if itcb <= 0 || itcb > 1024 {
		t.Fatalf("TCB size %d out of plausible range", itcb)
	}
	// Production configuration.
	pk2 := core.New(core.Config{Model: core.ModelProcess, KernelStackSize: core.ProductionKernelStackSize})
	_, s2, _ := pk2.MemOverhead()
	if s2 != 1024 {
		t.Fatalf("production stack = %d", s2)
	}
}

func TestKernelStackAccounting(t *testing.T) {
	for _, cfg := range allConfigs() {
		k := core.New(cfg)
		s := k.NewSpace()
		base := k.StacksInUse()
		var ths []*obj.Thread
		for i := 0; i < 5; i++ {
			ths = append(ths, k.NewThread(s, 10))
		}
		grew := k.StacksInUse() - base
		if cfg.Model == core.ModelProcess && grew != 5 {
			t.Errorf("%s: stacks grew %d, want 5", cfg.Name(), grew)
		}
		if cfg.Model == core.ModelInterrupt && grew != 0 {
			t.Errorf("%s: stacks grew %d, want 0 (per-CPU only)", cfg.Name(), grew)
		}
		for _, th := range ths {
			k.DestroyThread(th)
		}
		if k.StacksInUse() != base {
			t.Errorf("%s: stacks leak: %d != %d", cfg.Name(), k.StacksInUse(), base)
		}
	}
}

func TestDestroyBlockedThread(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const mtx = dataBase + 0x100
		b := prog.New(codeBase)
		b.MutexCreate(mtx).MutexLock(mtx).MutexLock(mtx).Halt()
		th := e.spawn(t, b, 10)
		e.k.RunFor(5_000_000)
		if th.State != obj.ThBlocked {
			t.Fatalf("state %v", th.State)
		}
		e.k.DestroyThread(th)
		if th.State != obj.ThDead {
			t.Fatal("thread not dead after destroy")
		}
		// The kernel remains healthy.
		e.k.RunFor(1_000_000)
	})
}

func TestGetStateOfBlockedThreadIsPromptAndConsistent(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		b.ThreadSleepUS(1_000_000). // sleeps ~forever
						Halt()
		th := e.spawn(t, b, 10)
		e.k.RunFor(2_000_000)
		if th.State != obj.ThBlocked {
			t.Fatalf("state %v", th.State)
		}
		// Host-side promptness check: the state must be immediately
		// consistent — PC at the thread_sleep entry (a restart point)
		// with the rolled-forward deadline in R2/R3.
		w := core.EncodeThreadState(th)
		if w[core.TSPc] != cpu.SyscallEntry(sys.NThreadSleep) {
			t.Fatalf("blocked PC %#x, want thread_sleep entry", w[core.TSPc])
		}
		deadline := uint64(w[core.TSR0+2]) | uint64(w[core.TSR0+3])<<32
		if deadline == 0 {
			t.Fatal("deadline not rolled forward into registers")
		}
	})
}

func TestIllegalInstructionKillsThread(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	b := prog.New(codeBase)
	b.Nop().Nop().Halt()
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	// Overwrite the second nop with an undecodable opcode.
	if err := e.k.WriteMem(e.s, codeBase+8, []byte{0, 0, 0, 0xFF, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	th := e.spawnAt(codeBase, 10)
	e.k.RunFor(1_000_000)
	if th.State != obj.ThDead {
		t.Fatal("thread survived illegal instruction")
	}
	if th.ExitCode != 0xFFFF_00FF {
		t.Fatalf("exit code %#x", th.ExitCode)
	}
}

func TestFatalFaultKillsThread(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		b.Movi(4, 0xDEAD0000).Ld(5, 4, 0).Halt()
		th := e.spawn(t, b, 10)
		e.k.RunFor(1_000_000)
		if th.State != obj.ThDead {
			t.Fatal("thread survived fatal fault")
		}
	})
}

func TestPerfReadCounters(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	b := prog.New(codeBase)
	b.Null().Null().Null().
		Movi(1, 0).Syscall(sys.NPerfRead).
		Movi(6, dataBase).St(6, 0, 1).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 50_000_000, th)
	if got := e.word(t, dataBase); got < 4 {
		t.Fatalf("perf_read syscall count = %d, want >= 4", got)
	}
}

func fmtRegs(r cpu.Regs) string {
	return fmt.Sprintf("PC=%#x R=%v", r.PC, r.R)
}
