package core

import (
	"math/rand"
	"testing"
)

// TestClockHeapMatchesScan pins the heap chooser to the O(n) reference
// scan: for randomized clock states — including deliberate ties and
// mixed cpuClass ranks from pending timers — pick() must return exactly
// the CPU chooseCPUScan would, at every CPU count the config admits.
// This is the equivalence that lets RunUntil swap the scan for the heap
// without perturbing a single existing seed.
func TestClockHeapMatchesScan(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16, 33, 64} {
		n := n
		rng := rand.New(rand.NewSource(int64(100 + n)))
		cfg := Config{Model: ModelInterrupt, Preempt: PreemptPartial,
			NumCPUs: n, LockModel: LockFine}
		k := New(cfg)
		// Give some CPUs pending timers so cpuClass ranks differ among
		// clock ties (class 1 vs the idle class 2).
		for _, c := range k.cpus {
			if rng.Intn(2) == 0 {
				c.clk.After(1_000_000_000, nil)
			}
		}
		h := newClockHeap(k.cpus)
		for step := 0; step < 2000; step++ {
			want := k.chooseCPUScan()
			got := h.pick()
			if got != want {
				t.Fatalf("n=%d step=%d: heap picked cpu%d (clk=%d), scan picked cpu%d (clk=%d)",
					n, step, got.id, got.clk.Now(), want.id, want.clk.Now())
			}
			// Advance the picked CPU like a dispatch episode would —
			// often by zero or onto another CPU's exact clock to keep the
			// tie paths hot — then fix up the heap.
			switch rng.Intn(4) {
			case 0:
				// Land exactly on a random peer's clock.
				o := k.cpus[rng.Intn(n)]
				if peer := o.clk.Now(); peer > got.clk.Now() {
					got.clk.AdvanceTo(peer)
				}
			case 1:
				// Stay put: repeated picks at one time must be stable.
			default:
				got.clk.Advance(uint64(rng.Intn(500)))
			}
			h.fix(got.id)
		}
		// A reset after host code moves clocks arbitrarily must restore
		// the full ordering.
		for _, c := range k.cpus {
			c.clk.Advance(uint64(rng.Intn(10_000)))
		}
		h.reset()
		if got, want := h.pick(), k.chooseCPUScan(); got != want {
			t.Fatalf("n=%d after reset: heap picked cpu%d, scan picked cpu%d", n, got.id, want.id)
		}
	}
}
