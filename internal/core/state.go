package core

import (
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/sys"
)

// ThreadStateWords is the size of the exported thread state frame in
// 32-bit words: the complete register file (including the PR0/PR1
// pseudo-registers), scheduling parameters, control flags, and both IPC
// connection halves. This frame is the whole story — there is no hidden
// kernel state behind it, which is what makes user-level checkpointing and
// migration possible (paper §4.1).
const ThreadStateWords = 20

// Thread state frame layout (word indexes). Spelled out explicitly: an
// earlier iota-based version silently aliased every constant after the
// register block to the same index (Go repeats the previous expression,
// not iota, for bare constants following an assignment) — caught by
// TestPropertyStateFrameRoundTrip.
const (
	TSPc          = 0
	TSSp          = 1
	TSR0          = 2 // .. TSR0+7 == 9
	TSPr0         = 10
	TSPr1         = 11
	TSFlags       = 12
	TSPriority    = 13
	TSCtl         = 14 // bit0 stopped, bit1 interrupted
	TSIPCPhase    = 15 // client connection half
	TSIPCPeer     = 16 // client peer thread ID
	TSIPCSrvPhase = 17 // server connection half
	TSIPCSrvPeer  = 18 // server peer thread ID
	tsReserved    = 19
)

// EncodeThreadState captures t's exported state frame.
func EncodeThreadState(t *obj.Thread) [ThreadStateWords]uint32 {
	var w [ThreadStateWords]uint32
	w[TSPc] = t.Regs.PC
	w[TSSp] = t.Regs.SP
	for i := 0; i < 8; i++ {
		w[TSR0+i] = t.Regs.R[i]
	}
	w[TSPr0] = t.Regs.PR0
	w[TSPr1] = t.Regs.PR1
	w[TSFlags] = t.Regs.Flags
	w[TSPriority] = uint32(t.Priority)
	var ctl uint32
	if t.Stopped {
		ctl |= 1
	}
	if t.Interrupted {
		ctl |= 2
	}
	w[TSCtl] = ctl
	w[TSIPCPhase] = uint32(t.IPCClient.Phase)
	if t.IPCClient.Peer != nil {
		w[TSIPCPeer] = t.IPCClient.Peer.ID
	}
	w[TSIPCSrvPhase] = uint32(t.IPCServer.Phase)
	if t.IPCServer.Peer != nil {
		w[TSIPCSrvPeer] = t.IPCServer.Peer.ID
	}
	return w
}

// applyThreadState restores a state frame into target (which is stopped).
func (k *Kernel) applyThreadState(target *obj.Thread, w [ThreadStateWords]uint32) {
	target.Regs.PC = w[TSPc]
	target.Regs.SP = w[TSSp]
	for i := 0; i < 8; i++ {
		target.Regs.R[i] = w[TSR0+i]
	}
	target.Regs.PR0 = w[TSPr0]
	target.Regs.PR1 = w[TSPr1]
	target.Regs.Flags = w[TSFlags]
	if p := int(w[TSPriority]); p >= 0 && p < 32 {
		target.Priority = p
	}
	target.Interrupted = w[TSCtl]&2 != 0
	// The stopped bit is ignored on restore: the manager resumes the
	// thread explicitly (thread_resume).

	k.relinkHalf(target, &target.IPCClient, obj.IPCPhase(w[TSIPCPhase]&0xFF), w[TSIPCPeer], false)
	k.relinkHalf(target, &target.IPCServer, obj.IPCPhase(w[TSIPCSrvPhase]&0xFF), w[TSIPCSrvPeer], true)
}

// relinkHalf restores one connection half: if the named peer still exists
// and its opposite half is vacant or pointed at a dead thread, reconnect;
// otherwise the half restores idle (the restarted operation observes
// ENOTCONN, a clean outcome).
func (k *Kernel) relinkHalf(target *obj.Thread, st *obj.IPCState, phase obj.IPCPhase, peerID uint32, server bool) {
	if phase == obj.IPCIdle {
		*st = obj.IPCState{}
		return
	}
	peer := k.threads[peerID]
	if peer == nil {
		*st = obj.IPCState{}
		return
	}
	other := &peer.IPCServer
	if server {
		other = &peer.IPCClient
	}
	if other.Phase != obj.IPCIdle &&
		(other.Peer == nil || other.Peer.State == obj.ThDead || other.Peer == target) {
		*st = obj.IPCState{Phase: phase, Peer: peer}
		other.Peer = target
	} else {
		*st = obj.IPCState{}
	}
}

// opGetState implements the get_state common op: R1 = handle, R2 = user
// buffer receiving the type-specific state words. For threads this is the
// checkpoint/migration primitive; the API guarantees it is prompt (never
// waits on user-mode activity) and correct (the frame fully describes the
// thread).
func (k *Kernel) opGetState(t *obj.Thread, ot sys.ObjType) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], ot, true)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	oldTag := profTag(t, profile.PathGetSetState)
	k.ChargeKernel(CycGetSetState)
	profRestore(t, oldTag)
	buf := t.Regs.R[2]
	var words []uint32
	switch x := o.(type) {
	case *obj.Thread:
		if k.cfg.Model == ModelProcess && x.InKernelPark {
			// Full preemption can park a thread mid-kernel; drive
			// it to a clean boundary first. This involves only
			// kernel-internal work, preserving promptness.
			k.settle(x)
		}
		w := EncodeThreadState(x)
		words = w[:]
	case *obj.Mutex:
		locked := uint32(0)
		if x.Locked {
			locked = 1
		}
		holder := uint32(0)
		if x.Holder != nil {
			holder = x.Holder.ID
		}
		words = []uint32{locked, holder, uint32(x.Waiters.Len())}
	case *obj.Cond:
		words = []uint32{uint32(x.Waiters.Len())}
	case *obj.Region:
		flags := uint32(0)
		if x.R.DemandZero {
			flags |= 1
		}
		if x.R.Pager != nil {
			flags |= 2
		}
		words = []uint32{x.R.Size, flags, uint32(x.R.PresentPages())}
	case *obj.Mapping:
		words = []uint32{x.M.Base, x.M.Size, uint32(x.M.Perm), x.M.RegionOff}
	case *obj.Port:
		inSet := uint32(0)
		if x.Set != nil {
			inSet = 1
		}
		words = []uint32{inSet, uint32(x.Connectors.Len())}
	case *obj.Portset:
		pending := uint32(0)
		if x.PendingPort() != nil {
			pending = 1
		}
		words = []uint32{uint32(len(x.Ports)), pending}
	case *obj.Space:
		words = []uint32{uint32(len(x.Objects)), uint32(len(x.Threads))}
	case *obj.Ref:
		tt := uint32(0)
		if x.Target != nil {
			tt = uint32(obj.TypeOf(x.Target)) + 1
		}
		words = []uint32{tt}
	}
	for i, w := range words {
		if kerr := k.StoreUser32(t, t.Space, buf+uint32(i)*4, w); kerr != sys.KOK {
			return kerr
		}
	}
	t.Regs.R[1] = uint32(len(words)) // words written
	k.Return(t, sys.EOK)
	return sys.KOK
}

// opSetState implements the set_state common op: R1 = handle, R2 = user
// buffer holding the state words. Thread targets must be stopped; the
// frame is read in full before any of it is applied, so a fault mid-read
// restarts without partial effects.
func (k *Kernel) opSetState(t *obj.Thread, ot sys.ObjType) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], ot, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	oldTag := profTag(t, profile.PathGetSetState)
	k.ChargeKernel(CycGetSetState)
	profRestore(t, oldTag)
	buf := t.Regs.R[2]
	switch x := o.(type) {
	case *obj.Thread:
		if x != t && !x.Stopped {
			k.Return(t, sys.ESTATE)
			return sys.KOK
		}
		if x == t {
			k.Return(t, sys.ESTATE) // cannot rewrite the running thread
			return sys.KOK
		}
		var w [ThreadStateWords]uint32
		for i := range w {
			v, kerr := k.LoadUser32(t, t.Space, buf+uint32(i)*4)
			if kerr != sys.KOK {
				return kerr
			}
			w[i] = v
		}
		k.applyThreadState(x, w)
	case *obj.Mutex:
		v, kerr := k.LoadUser32(t, t.Space, buf)
		if kerr != sys.KOK {
			return kerr
		}
		if x.Waiters.Len() > 0 {
			k.Return(t, sys.EBUSY)
			return sys.KOK
		}
		x.Locked = v&1 != 0
		if !x.Locked {
			x.Holder = nil
		}
	case *obj.Region:
		v, kerr := k.LoadUser32(t, t.Space, buf)
		if kerr != sys.KOK {
			return kerr
		}
		if x.R.Pager == nil { // pager-backed regions keep their pager
			x.R.DemandZero = v&1 != 0
		}
	default:
		// The remaining types have no settable state; accept and
		// ignore, as Fluke's uniform interface does.
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}
