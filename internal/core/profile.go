package core

import (
	"repro/internal/obj"
	"repro/internal/profile"
)

// This file wires the cycle-accurate profiler (internal/profile) into the
// kernel's charge sites. The design mirrors Metrics/Tracer: the profiler
// never charges cycles and each site costs one nil-check branch when it
// is detached, so the simulated timeline is bit-identical with it on or
// off (TestProfilerEquivalence).
//
// Attribution invariant: every increment of Stats.UserCycles,
// Stats.KernelCycles, or Stats.IdleCycles — all seven sites: the context
// switch, the user batch, both ChargeKernel branches, the contended lock
// spin, and the two idle advances — mirrors exactly the same cycle count
// into the acting CPU's shard, so Snapshot().TotalCycles() equals
// Stats().TotalCycles() exactly (also pinned by TestProfilerEquivalence).
//
// The triple's dimensions come from the charged thread: its ambient path
// tag (Thread.ProfPath, set around the specifically-tagged kernel
// stretches — IPC copy, fault remedies, object lookups...), its current
// syscall (Thread.CurSys, maintained by doSyscall), and its user PC
// bucketed to profile.BucketShift bytes. The tag/CurSys byte writes are
// unconditional — they never affect virtual time — while all profiler
// reads gate on k.prof.

// TotalCycles is the clock-advancing cycle total: user + kernel + idle.
// Every profiler attribution mirrors one of these three counters.
func (s Stats) TotalCycles() uint64 {
	return s.UserCycles + s.KernelCycles + s.IdleCycles
}

// EnableProfiler attaches a fresh profiler to the kernel (idempotent).
// Attach before running; cycles charged earlier are not attributed.
func (k *Kernel) EnableProfiler() *profile.Profiler {
	if k.prof == nil {
		k.prof = profile.New(len(k.cpus))
	}
	return k.prof
}

// ProfileEnabled reports whether a profiler is attached.
func (k *Kernel) ProfileEnabled() bool { return k.prof != nil }

// ProfileSnapshot merges the per-CPU shards into a deterministic
// snapshot. Safe to call while a ParallelHost run is live: the merge
// happens under the kernel gate, like any kernel section.
func (k *Kernel) ProfileSnapshot() profile.Snapshot {
	if k.prof == nil {
		return profile.Snapshot{}
	}
	if k.par != nil {
		k.snapLock()
		defer k.snapUnlock()
	}
	return k.prof.Snapshot()
}

// profCharge attributes cycles charged on CPU c to an explicit path,
// taking the syscall and PC dimensions from thread t (nil outside any
// thread: the idle loop, scheduler work before c.current is set).
func (k *Kernel) profCharge(c *CPU, t *obj.Thread, p profile.Path, cycles uint64) {
	if k.prof == nil || cycles == 0 {
		return
	}
	sysno, pc := profile.NoSyscall, uint32(0)
	if t != nil {
		sysno = int(t.CurSys)
		pc = t.Regs.PC
	}
	k.prof.Shard(c.id).Add(p, sysno, pc, cycles)
}

// profChargeKernel attributes kernel-path cycles using t's ambient path
// tag (PathKernel when untagged or t is nil) — the ChargeKernel mirror.
func (k *Kernel) profChargeKernel(c *CPU, t *obj.Thread, cycles uint64) {
	if k.prof == nil || cycles == 0 {
		return
	}
	p, sysno, pc := profile.PathKernel, profile.NoSyscall, uint32(0)
	if t != nil {
		p = profile.Path(t.ProfPath)
		sysno = int(t.CurSys)
		pc = t.Regs.PC
	}
	k.prof.Shard(c.id).Add(p, sysno, pc, cycles)
}

// profTag sets t's ambient kernel-path tag, returning the previous tag so
// nested stretches restore correctly (profRestore). The byte write is
// unconditional — cheaper than a branch, and invisible to virtual time.
func profTag(t *obj.Thread, p profile.Path) profile.Path {
	old := profile.Path(t.ProfPath)
	t.ProfPath = uint8(p)
	return old
}

// profRestore restores a tag saved by profTag.
func profRestore(t *obj.Thread, p profile.Path) { t.ProfPath = uint8(p) }
