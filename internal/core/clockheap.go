package core

// The deterministic interleaver's CPU chooser. PR 3's linear min-clock
// scan (chooseCPUScan, kept below as the reference implementation) is
// O(n) per dispatch episode, which at 64 CPUs puts the scheduler loop
// itself on the critical path. The heap keeps the CPUs ordered by
// (local clock, CPU index); between two picks only the acting CPU's
// clock moves (everything the episode charges — syscall work, lock
// spins, idle advances — lands on that one clock), so maintenance is a
// single O(log n) sift per episode.
//
// Tie-break rule: the scan picked the minimum of (clock, cpuClass,
// index) — runnable work beats a pending timer beats idle, then lowest
// index. cpuClass depends on mutable queue state, so it cannot live in
// the heap key (a wake on an idle CPU would have to reposition it). The
// heap keys on (clock, index) only, and pick() resolves class ties by
// walking the equal-min-clock *subtree*: the heap property makes every
// node with the minimum key reachable from the root through nodes of the
// same key, so the walk prunes on first key mismatch and visits exactly
// the tied CPUs. The result is the same total order as the scan —
// existing seeds reproduce bit-exactly at every CPU count, pinned by
// TestClockHeapMatchesScan and the determinism tests.

// clockHeap is an indexed binary min-heap of CPU ids keyed on
// (clk.Now(), id).
type clockHeap struct {
	cpus []*CPU
	heap []int32 // heap of CPU ids
	pos  []int32 // cpu id -> index in heap
}

func newClockHeap(cpus []*CPU) *clockHeap {
	h := &clockHeap{
		cpus: cpus,
		heap: make([]int32, len(cpus)),
		pos:  make([]int32, len(cpus)),
	}
	h.reset()
	return h
}

// reset re-heapifies from scratch: run boundaries are the one place where
// host code may have moved clocks behind the heap's back (tests and boot
// code advance k.Clock directly between runs).
func (h *clockHeap) reset() {
	for i := range h.heap {
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// less orders heap entries a, b (CPU ids) by (clock, id).
func (h *clockHeap) less(a, b int32) bool {
	ca, cb := h.cpus[a].clk.Now(), h.cpus[b].clk.Now()
	return ca < cb || (ca == cb && a < b)
}

func (h *clockHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *clockHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *clockHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.heap[l], h.heap[m]) {
			m = l
		}
		if r < n && h.less(h.heap[r], h.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// fix restores the heap order after CPU id's clock changed. Episodes only
// advance clocks, but host code between runs can set them arbitrarily, so
// sift both ways.
func (h *clockHeap) fix(id int) {
	h.siftUp(int(h.pos[id]))
	h.siftDown(int(h.pos[id]))
}

// pick returns the CPU the interleaver runs next: minimum (clock,
// cpuClass, index), identical to chooseCPUScan's order.
func (h *clockHeap) pick() *CPU {
	root := h.cpus[h.heap[0]]
	minClk := root.clk.Now()
	best, bestClass := root, cpuClass(root)
	h.walkTies(1, minClk, &best, &bestClass)
	h.walkTies(2, minClk, &best, &bestClass)
	return best
}

// walkTies visits the subtree under heap index i restricted to nodes
// whose clock equals minClk (the heap property guarantees any deeper
// equal-key node sits below an equal-key chain), improving *best on a
// smaller (class, id).
func (h *clockHeap) walkTies(i int, minClk uint64, best **CPU, bestClass *int) {
	if i >= len(h.heap) {
		return
	}
	c := h.cpus[h.heap[i]]
	if c.clk.Now() != minClk {
		return
	}
	if cl := cpuClass(c); cl < *bestClass || (cl == *bestClass && c.id < (*best).id) {
		*best, *bestClass = c, cl
	}
	h.walkTies(2*i+1, minClk, best, bestClass)
	h.walkTies(2*i+2, minClk, best, bestClass)
}
