package core_test

// Scheduling-behaviour tests: quantum round-robin, priority starvation,
// and streaming-IPC size properties.

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// TestQuantumRoundRobin: two CPU-bound threads at equal priority must
// share the processor via quantum expiry — neither finishes more than a
// whole quantum ahead of the other.
func TestQuantumRoundRobin(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		// Each thread bumps its own progress word 5M times.
		worker := func(name string, slot uint32) {
			b.Label(name).Movi(6, 0).
				Label(name+".l").
				Addi(6, 6, 1).
				Movi(4, slot).St(4, 0, 6).
				Movi(5, 3_000_000).
				Blt(6, 5, name+".l").
				Halt()
		}
		worker("a", dataBase)
		worker("b", dataBase+4)
		img := b.MustAssemble()
		if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
			t.Fatal(err)
		}
		ta := e.spawnAt(b.Addr("a"), 10)
		tb := e.spawnAt(b.Addr("b"), 10)
		// Run for roughly three quanta; both must have progressed.
		e.k.RunFor(3 * 10 * 1000 * 200)
		pa, pb := e.word(t, dataBase), e.word(t, dataBase+4)
		if pa == 0 || pb == 0 {
			t.Fatalf("starvation under round-robin: a=%d b=%d", pa, pb)
		}
		ratio := float64(pa) / float64(pb)
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("unfair sharing: a=%d b=%d", pa, pb)
		}
		_ = ta
		_ = tb
	})
}

// TestHighPriorityStarvesLow: strict priority — the higher thread runs to
// completion before the lower makes progress.
func TestHighPriorityStarvesLow(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	b := prog.New(codeBase)
	b.Label("hi").Movi(6, 0).
		Label("hi.l").Addi(6, 6, 1).Movi(5, 100_000).Blt(6, 5, "hi.l").
		Movi(4, dataBase).Movi(5, 1).St(4, 0, 5). // hi done marker
		Halt()
	b.Label("lo").
		Movi(4, dataBase).Ld(5, 4, 0).
		Movi(4, dataBase+4).St(4, 0, 5). // lo saw hi-done?
		Halt()
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	lo := e.spawnAt(b.Addr("lo"), 5)
	hi := e.spawnAt(b.Addr("hi"), 20)
	e.run(t, 100_000_000, lo, hi)
	if got := e.word(t, dataBase+4); got != 1 {
		t.Fatalf("low-priority thread ran before high finished (saw %d)", got)
	}
}

// TestPropertyIPCStreamSizes: for random (send words, receive cap)
// combinations, the full message arrives intact across however many
// receives it takes — the registers' roll-forward arithmetic never loses
// or duplicates a word.
func TestPropertyIPCStreamSizes(t *testing.T) {
	check := func(sendWords, cap8 uint8) bool {
		n := uint32(sendWords%61) + 1 // 1..61 words
		capWords := uint32(cap8%17) + 1
		e := newEnv(t, core.Config{Model: core.ModelInterrupt, Preempt: core.PreemptPartial})
		bindIPC(t, e.k, e.s, e.s)
		const (
			sBuf = dataBase + 0x1000
			rBuf = dataBase + 0x2000
			acc  = dataBase + 0x80
		)
		// Server: receive pieces of size capWords, summing every word
		// received, until the connection closes; publish the sum.
		srv := prog.New(codeBase + 0x8000)
		srv.Label("loop").
			IPCWaitReceive(rBuf, capWords, psVA).
			// r3 = words received = capWords - R2; sum words.
			Movi(3, capWords).Sub(3, 3, 2).
			Movi(4, rBuf).
			Movi(2, 0). // index
			Label("sum")
		srv.Beq(2, 3, "piece")
		srv.Ld(5, 4, 0).
			Movi(6, acc).Ld(1, 6, 0).Add(1, 1, 5).St(6, 0, 1).
			Addi(4, 4, 4).Addi(2, 2, 1).
			Jmp("sum").
			Label("piece").
			// Connection closed? errno ECONN means done -> halt; else loop.
			Jmp("loop")
		// Simplification: the server runs forever; the test just checks
		// the accumulated sum once the client exits.
		cli := prog.New(codeBase)
		for i := uint32(0); i < n; i++ {
			cli.Movi(4, sBuf+i*4).Movi(5, i+1).St(4, 0, 5)
		}
		cli.IPCClientConnectSend(sBuf, n, refVA).
			IPCClientDisconnect().
			Halt()
		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		e.spawnAt(srv.Base(), 12)
		client := e.spawn(t, cli, 10)
		e.k.RunFor(2_000_000_000)
		if !client.Exited {
			t.Logf("client stuck n=%d cap=%d", n, capWords)
			return false
		}
		// Let the server drain the tail.
		e.k.RunFor(50_000_000)
		want := n * (n + 1) / 2
		got := e.word(t, acc)
		if got != want {
			t.Logf("n=%d cap=%d sum=%d want=%d", n, capWords, got, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStatsAccounting sanity-checks the cycle ledger: user + kernel +
// idle cycles account for all elapsed virtual time.
func TestStatsAccounting(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		b.ThreadSleepUS(500)
		for i := 0; i < 50; i++ {
			b.Null()
		}
		b.Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 100_000_000, th)
		s := e.k.Stats()
		total := s.UserCycles + s.KernelCycles + s.IdleCycles
		now := e.k.Clock.Now()
		if total > now {
			t.Fatalf("ledger exceeds clock: %d > %d", total, now)
		}
		// Allow a small slack for uncharged scheduler bookkeeping.
		if now-total > now/10 {
			t.Fatalf("ledger hole: accounted %d of %d cycles", total, now)
		}
	})
}

var _ = obj.ThReady
var _ = sys.EOK
