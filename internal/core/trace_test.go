package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/trace"
)

// TestTracerRecordsKernelEvents attaches the typed tracer and checks that
// a short run emits the expected event kinds in a sane order.
func TestTracerRecordsKernelEvents(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		e.k.Tracer = trace.NewRing(4096)
		const mtx = dataBase + 0x100
		b := prog.New(codeBase)
		b.MutexCreate(mtx).
			MutexLock(mtx).
			ThreadSleepUS(100).
			MutexUnlock(mtx).
			Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 50_000_000, th)

		kinds := map[trace.Kind]int{}
		var last uint64
		for _, ev := range e.k.Tracer.Events() {
			kinds[ev.Kind]++
			if ev.Time < last {
				t.Fatalf("events out of order: %d after %d", ev.Time, last)
			}
			last = ev.Time
		}
		for _, want := range []trace.Kind{trace.SyscallEnter, trace.SyscallExit, trace.CtxSwitch, trace.Wake, trace.ThreadExit} {
			if kinds[want] == 0 {
				t.Errorf("no %v events recorded", want)
			}
		}
		// Enter/exit pair up.
		if kinds[trace.SyscallEnter] != kinds[trace.SyscallExit] {
			t.Errorf("enter %d != exit %d", kinds[trace.SyscallEnter], kinds[trace.SyscallExit])
		}
		// Soft faults from the demand-zero data page show up.
		if kinds[trace.Fault] == 0 {
			t.Error("no fault events recorded")
		}
		dump := e.k.Tracer.Dump()
		if !strings.Contains(dump, "mutex_lock") || !strings.Contains(dump, "thread_sleep") {
			t.Error("dump missing syscall names")
		}
	})
}

// TestTracerDisabledIsFree: no tracer, no events, no crash.
func TestTracerDisabledIsFree(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	b := prog.New(codeBase)
	b.Null().Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 10_000_000, th)
	if e.k.Tracer != nil {
		t.Fatal("tracer appeared from nowhere")
	}
}
