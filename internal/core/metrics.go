package core

import (
	"repro/internal/metrics"
	"repro/internal/mmu"
	"repro/internal/sys"
)

// This file wires the metrics registry (internal/metrics) into the
// kernel's hot paths. Every instrument is registered up front in
// NewKernelMetrics, so the paths in exec.go / ipc_support.go only ever
// dereference pre-built pointers — with no registry attached
// (k.Metrics == nil) each site costs a single branch, and the simulated
// timeline is bit-identical either way because metrics never charge
// cycles (pinned by TestMetricsDoNotPerturbVirtualTime).

// NumFaultCauses is the number of Table 3 exception-cause classes:
// {soft, hard} × {client-side, server-side}.
const NumFaultCauses = 4

// FaultCauseNames are the class names in causeIndex order.
var FaultCauseNames = [NumFaultCauses]string{
	"soft.client", "soft.server", "hard.client", "hard.server",
}

// causeIndex maps a restartable fault to its Table 3 cause class.
// Fatal faults have no restart semantics and are counted separately.
func causeIndex(class mmu.FaultClass, side FaultSide) int {
	i := 0
	if class == mmu.FaultHard {
		i = 2
	}
	if side == FaultCross {
		i++
	}
	return i
}

// KernelMetrics is the kernel's instrument bundle: every counter, gauge,
// and histogram the hot paths update, pre-registered so updates are
// pointer dereferences. Attach with Kernel.EnableMetrics (or build one
// on a shared registry with NewKernelMetrics and assign k.Metrics).
type KernelMetrics struct {
	Registry *metrics.Registry

	// SyscallLatency has one log2-cycle histogram per syscall number,
	// observing entry-to-completion time of each completed dispatch
	// episode (in the process model that includes any time parked on
	// the thread's kernel stack — the user-visible call latency).
	SyscallLatency [sys.NumSyscalls]*metrics.Histogram

	// Restarts counts restartable kernel-internal exceptions by Table 3
	// cause class; after each, the operation re-runs from its
	// rolled-forward registers. RollbackCycles accumulates the work
	// discarded (Table 3 "Cost to Rollback" numerator), RemedyCycles the
	// time to service the fault ("Cost to Remedy").
	Restarts       [NumFaultCauses]*metrics.Counter
	RollbackCycles [NumFaultCauses]*metrics.Counter
	RemedyCycles   [NumFaultCauses]*metrics.Counter
	RestartsTotal  *metrics.Counter // syscall re-entries after any fault
	FaultsFatal    *metrics.Counter

	CtxSwitches *metrics.Counter
	Wakes       *metrics.Counter
	TimerIRQs   *metrics.Counter

	// PreemptLatency observes, at each context switch, the cycles from
	// the moment a reschedule was requested (higher-priority wake or
	// quantum expiry) to the switch that serviced it — the in-kernel
	// view of Table 6's probe latency.
	PreemptLatency *metrics.Histogram
	PreemptsUser   *metrics.Counter
	PreemptsPoint  *metrics.Counter
	PreemptsKernel *metrics.Counter

	IPCBytes     *metrics.Counter // payload bytes moved by CopyWords
	IPCTransfers *metrics.Counter // CopyWords invocations
	Commits      *metrics.Counter // roll-forward progress commits

	// IPC fast-path counters (the direct thread handoff): hits are
	// handoffs dispatched, misses are rendezvous blocks where the peer was
	// not already waiting, fallbacks are staged handoffs demoted to a
	// normal wake (donor kept running, slot occupied) plus
	// register-carried transfers that faulted back to the slow path.
	FastpathHits      *metrics.Counter
	FastpathMisses    *metrics.Counter
	FastpathFallbacks *metrics.Counter

	// Zero-copy bulk-transfer counters: shares are pages moved by
	// aliasing the sender's frame into the receiver's region, cowbreaks
	// are stores that broke a share by copying the page, fallbacks are
	// page-aligned eligible pages that had to take the copying path
	// anyway (unresolvable translations, MMIO windows, self-transfers).
	ZeroCopyShares    *metrics.Counter
	ZeroCopyCOWBreaks *metrics.Counter
	ZeroCopyFallbacks *metrics.Counter

	PagerNotices *metrics.Counter // hard-fault notifications queued to pagers

	ThreadsLive    *metrics.Gauge
	ThreadsCreated *metrics.Counter

	// Lock-model instruments, one per lock kind (LockKindNames order).
	// Under LockBig everything maps to the "big" slot; under
	// LockPerSubsystem the sched/obj/mmu slots are live. Contention is
	// virtual-time contention: an acquire that found the lock's
	// busy-until point ahead of the acquiring CPU's clock.
	LockAcquires   [NumLockKinds]*metrics.Counter
	LockContended  [NumLockKinds]*metrics.Counter
	LockWaitCycles [NumLockKinds]*metrics.Counter
	LockHoldCycles [NumLockKinds]*metrics.Histogram

	IPIs   *metrics.Counter // cross-CPU reschedule kicks sent
	Steals *metrics.Counter // threads taken from a peer's run queue

	// Checkpoint/migration instruments, updated by internal/checkpoint
	// (a user-level manager, so these never sit on an execution hot
	// path): full and delta snapshots taken, frame payloads captured vs
	// skipped because the dirty tracker proved them unchanged, and the
	// simulated stop-to-resume cycles of pre-copy migrations.
	CkptSnapshots      *metrics.Counter
	CkptDeltaSnapshots *metrics.Counter
	CkptFramesCaptured *metrics.Counter
	CkptFramesClean    *metrics.Counter
	CkptDowntimeCycles *metrics.Counter

	// TraceDropped mirrors the trace ring's overwrite count
	// (trace.Ring.Dropped) so exported metric snapshots declare how much
	// of the trace a wrapped ring lost. The ring keeps its own counter
	// on the hot path; SyncTraceMetrics copies it in at snapshot time.
	TraceDropped *metrics.Gauge

	// Interpreter-tier mirrors (cpu.ExecStats aggregated over spaces):
	// decode-cache and fused-block activity. The address spaces keep the
	// live counters on the hot path; SyncTraceMetrics copies them in at
	// snapshot time, so the interpreter never touches the registry.
	DecodePages        *metrics.Gauge // cpu.decode.pages
	DecodeStaleResets  *metrics.Gauge // cpu.decode.stale_resets
	BlocksBuilt        *metrics.Gauge // cpu.blocks.built
	BlockHits          *metrics.Gauge // cpu.blocks.hits
	BlockBails         *metrics.Gauge // cpu.blocks.bails
	BlockInvalidations *metrics.Gauge // cpu.blocks.invalidations
}

// NewKernelMetrics registers the kernel's instruments on reg (a fresh
// registry if nil) and returns the bundle. All allocation happens here.
func NewKernelMetrics(reg *metrics.Registry) *KernelMetrics {
	if reg == nil {
		reg = metrics.New()
	}
	m := &KernelMetrics{Registry: reg}
	for n := 0; n < sys.NumSyscalls; n++ {
		m.SyscallLatency[n] = reg.Histogram("syscall.latency." + sys.Name(n))
	}
	for i, name := range FaultCauseNames {
		m.Restarts[i] = reg.Counter("fault.restarts." + name)
		m.RollbackCycles[i] = reg.Counter("fault.rollback_cycles." + name)
		m.RemedyCycles[i] = reg.Counter("fault.remedy_cycles." + name)
	}
	m.RestartsTotal = reg.Counter("syscall.restarts")
	m.FaultsFatal = reg.Counter("fault.fatal")
	m.CtxSwitches = reg.Counter("sched.context_switches")
	m.Wakes = reg.Counter("sched.wakes")
	m.TimerIRQs = reg.Counter("sched.timer_irqs")
	m.PreemptLatency = reg.Histogram("sched.preempt_latency")
	m.PreemptsUser = reg.Counter("sched.preempts.user_boundary")
	m.PreemptsPoint = reg.Counter("sched.preempts.explicit_point")
	m.PreemptsKernel = reg.Counter("sched.preempts.in_kernel")
	m.IPCBytes = reg.Counter("ipc.bytes")
	m.IPCTransfers = reg.Counter("ipc.transfers")
	m.Commits = reg.Counter("ipc.rollforward_commits")
	m.FastpathHits = reg.Counter("ipc.fastpath.hits")
	m.FastpathMisses = reg.Counter("ipc.fastpath.misses")
	m.FastpathFallbacks = reg.Counter("ipc.fastpath.fallbacks")
	m.ZeroCopyShares = reg.Counter("ipc.zerocopy.shares")
	m.ZeroCopyCOWBreaks = reg.Counter("ipc.zerocopy.cowbreaks")
	m.ZeroCopyFallbacks = reg.Counter("ipc.zerocopy.fallbacks")
	m.PagerNotices = reg.Counter("pager.fault_notices")
	m.ThreadsLive = reg.Gauge("threads.live")
	m.ThreadsCreated = reg.Counter("threads.created")
	for i, name := range LockKindNames {
		m.LockAcquires[i] = reg.Counter("lock.acquires." + name)
		m.LockContended[i] = reg.Counter("lock.contended." + name)
		m.LockWaitCycles[i] = reg.Counter("lock.wait_cycles." + name)
		m.LockHoldCycles[i] = reg.Histogram("lock.hold_cycles." + name)
	}
	m.IPIs = reg.Counter("sched.ipis")
	m.Steals = reg.Counter("sched.steals")
	m.CkptSnapshots = reg.Counter("ckpt.snapshots")
	m.CkptDeltaSnapshots = reg.Counter("ckpt.delta_snapshots")
	m.CkptFramesCaptured = reg.Counter("ckpt.frames_captured")
	m.CkptFramesClean = reg.Counter("ckpt.frames_skipped_clean")
	m.CkptDowntimeCycles = reg.Counter("ckpt.migrate.downtime_cycles")
	m.TraceDropped = reg.Gauge("trace.dropped")
	m.DecodePages = reg.Gauge("cpu.decode.pages")
	m.DecodeStaleResets = reg.Gauge("cpu.decode.stale_resets")
	m.BlocksBuilt = reg.Gauge("cpu.blocks.built")
	m.BlockHits = reg.Gauge("cpu.blocks.hits")
	m.BlockBails = reg.Gauge("cpu.blocks.bails")
	m.BlockInvalidations = reg.Gauge("cpu.blocks.invalidations")
	return m
}

// SyncTraceMetrics refreshes the metrics that mirror other observability
// layers: the trace ring's dropped-event count and the interpreter's
// decode/fused-block counters. Call before rendering or exporting a
// metrics snapshot.
func (k *Kernel) SyncTraceMetrics() {
	if k.Metrics == nil {
		return
	}
	if k.Tracer != nil {
		k.Metrics.TraceDropped.Set(int64(k.Tracer.Dropped()))
	}
	es := k.ExecStats()
	k.Metrics.DecodePages.Set(int64(es.PagesDecoded))
	k.Metrics.DecodeStaleResets.Set(int64(es.StaleResets))
	k.Metrics.BlocksBuilt.Set(int64(es.BlocksBuilt))
	k.Metrics.BlockHits.Set(int64(es.BlockHits))
	k.Metrics.BlockBails.Set(int64(es.BlockBails))
	k.Metrics.BlockInvalidations.Set(int64(es.BlockInvalidations))
}

// RestartsByCause returns the restart counts in FaultCauseNames order —
// the Table 3 cross-check surface.
func (m *KernelMetrics) RestartsByCause() [NumFaultCauses]uint64 {
	var out [NumFaultCauses]uint64
	for i, c := range m.Restarts {
		out[i] = c.Value()
	}
	return out
}

// EnableMetrics attaches a fresh metrics bundle to the kernel (idempotent:
// an already-attached bundle is returned unchanged). Enable before
// running; threads created earlier are not retroactively counted.
func (k *Kernel) EnableMetrics() *KernelMetrics {
	if k.Metrics == nil {
		k.Metrics = NewKernelMetrics(nil)
	}
	return k.Metrics
}

// countFaultRestart records a restartable fault's cause-class restart
// and the rolled-back cycles it discards.
func (k *Kernel) countFaultRestart(class mmu.FaultClass, side FaultSide, rollback uint64) {
	if k.Metrics == nil {
		return
	}
	ci := causeIndex(class, side)
	k.Metrics.Restarts[ci].Inc()
	k.Metrics.RollbackCycles[ci].Add(rollback)
}

// countFaultRemedy records cycles spent servicing a fault of the given
// cause class.
func (k *Kernel) countFaultRemedy(class mmu.FaultClass, side FaultSide, cycles uint64) {
	if k.Metrics == nil {
		return
	}
	k.Metrics.RemedyCycles[causeIndex(class, side)].Add(cycles)
}
