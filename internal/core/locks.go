package core

// The multiprocessor locking models (Config.LockModel). Locks here are
// *virtual*: they serialize simulated kernel execution in virtual time
// rather than host execution. Each lock keeps the virtual time its last
// holder released it (busyUntil); a CPU whose local clock is behind that
// time acquires by spinning — its clock advances to the release point and
// the spin cycles are charged as kernel time. With one CPU a lock can
// never be busy (the same clock both sets and tests busyUntil), so every
// acquire is free and the NumCPUs==1 timeline is bit-identical to the
// uniprocessor kernel under any model — pinned by the multicpu tests.
//
// Locks are *slots* in a kernel-wide table. The first four slots are the
// classic subsystem locks (sched, obj, mmu, big); the fine-grained model
// (LockFine) appends one slot per run queue and, in deterministic mode,
// one obj/mmu slot pair per space, so disjoint CPUs and spaces stop
// contending. Every slot carries its subsystem *kind*, which is what
// feeds the lock.* metrics and LockStats — the fine model fans a kind out
// across many instances but reports in the same four-row shape.
//
// Lock order (deadlock discipline, enforced by construction):
//
//	big  (outermost; the BigLock mapping of everything)
//	obj  (kernel entry for syscalls) | mmu (kernel entry for faults)
//	sched (innermost; run queues and resched flags)
//
// obj and mmu are never nested: a handler that faults returns KFault, the
// syscall epilogue releases obj, and only then does doFault take mmu.
// Within the fine model's sched kind, multi-queue paths (steal, remove)
// hold at most one extra queue lock at a time while scanning, so instance
// order never matters; the two-space zero-copy share takes its two mmu
// instances in ascending slot order.
//
// Blocking releases: a kernel path that parks (block, yieldCPU, the FP
// in-kernel park) releases every lock its CPU holds first — the classic
// "sleep releases the kernel lock" rule — and the process model reacquires
// on resume via a snapshot kept on the parked goroutine's own stack. In
// the interrupt model the unwind discards the snapshot and the next
// kernel entry reacquires from scratch.
//
// In ParallelHost mode the host gate (parallel.go) serializes kernel
// sections, so the virtual spin waits are disabled (wall-clock
// interleaving, not virtual-time modeling, decides contention there); the
// hold/acquire counters still run. Under the sharded gate (fine model)
// the per-queue slot counters are owner-CPU state updated outside the
// shared kernel mutex, so the non-atomic Metrics registry is skipped for
// lock events in that mode.

import (
	"repro/internal/obj"
	"repro/internal/profile"
)

// lockID names one kernel lock *kind*.
type lockID uint8

const (
	lockSched lockID = iota // run queues, resched flags
	lockObj                 // object space: syscall-entry lock
	lockMMU                 // address spaces: fault-entry lock
	lockBig                 // the big kernel lock (LockBig maps everything here)
	numLocks
)

// The fixed lock-table slots, one per kind, in lockID order. The fine
// model appends instance slots after these.
const (
	slotSched = int(lockSched)
	slotObj   = int(lockObj)
	slotMMU   = int(lockMMU)
	slotBig   = int(lockBig)

	numFixedSlots = int(numLocks)
)

// NumLockKinds is the number of distinct kernel lock kinds (for metrics).
const NumLockKinds = int(numLocks)

// LockKindNames are the lock names in lockID order.
var LockKindNames = [NumLockKinds]string{"sched", "obj", "mmu", "big"}

// lockHistory is how many recent hold intervals each lock remembers at
// the classic CPU counts. The serial interleaver bounds cross-CPU clock
// skew to roughly one dispatch episode, so only the holds of the last few
// episodes can ever overlap an acquirer's local time; older entries are
// dead weight. Overwriting a still-relevant interval errs toward *less*
// contention, so the ring is sized generously relative to the holds a
// single episode performs — and scaled with the CPU count past 4 CPUs
// (spanRingSize), where a shared slot can see a full system's worth of
// holds between one CPU's turns. The 1–4 CPU ring stays at the historic
// 64 so existing seeds reproduce bit-exactly.
const lockHistory = 64

// spanRingSize returns the hold-interval ring length for a kernel with
// ncpus processors.
func spanRingSize(ncpus int) int {
	if ncpus <= 4 {
		return lockHistory
	}
	return 16 * ncpus
}

// holdSpan is one completed [from, until) hold of a lock in virtual time.
type holdSpan struct {
	from, until uint64
}

// vlock is one virtual lock slot: a ring of its recent hold intervals
// plus contention counters. Access is serialized by the deterministic
// scheduler loop, by the ParallelHost gate, or — for a fine-model queue
// slot under the sharded gate — by the owning CPU's gate shard.
//
// Intervals — not just the last release time — matter because the serial
// interleaver is coarse: one dispatch can run a CPU's clock far ahead of
// its peers before they get a turn. A peer whose local clock is still
// behind the last release time did not necessarily contend — if no hold
// covered its local instant the lock was free then; the skew is an
// artifact of simulation order, not of simulated time. Contention is
// charged exactly when the acquirer's clock lands inside a remembered
// hold, which is when a real CPU would have spun.
type vlock struct {
	spans      []holdSpan
	next       int // ring write cursor
	acquires   uint64
	contended  uint64
	waitCycles uint64
}

// clearUntil returns the earliest time >= now at which no remembered hold
// of vl covers the clock — the moment a spinning CPU would get the lock.
func (vl *vlock) clearUntil(now uint64) uint64 {
	for {
		hit := false
		for i := range vl.spans {
			if s := &vl.spans[i]; s.from <= now && now < s.until {
				now = s.until
				hit = true
			}
		}
		if !hit {
			return now
		}
	}
}

// LockStat is one lock's contention counters, as reported by LockStats.
type LockStat struct {
	Name       string
	Acquires   uint64
	Contended  uint64
	WaitCycles uint64
}

// initLockTable builds the fixed slots plus, under the fine model, the
// per-run-queue instance slots. Per-space instances are appended later,
// as spaces are created (newSpaceInternal).
func (k *Kernel) initLockTable() {
	ring := spanRingSize(len(k.cpus))
	k.vlocks = make([]vlock, 0, numFixedSlots+len(k.cpus))
	k.lockKinds = make([]lockID, 0, cap(k.vlocks))
	k.lockNames = make([]string, 0, cap(k.vlocks))
	for id := lockID(0); id < numLocks; id++ {
		k.addLockSlot(id, LockKindNames[id], ring)
	}
	if k.cfg.LockModel == LockFine {
		for _, c := range k.cpus {
			k.addLockSlot(lockSched, "runq"+itoa(c.id), ring)
		}
	}
}

// addLockSlot appends one lock instance of the given kind, growing every
// CPU's hold-tracking arrays to match. Growing mid-run is safe in the
// deterministic modes (single-threaded); the sharded ParallelHost gate
// never grows the table after New (it uses the fixed obj/mmu slots — see
// fineSpaceLocks).
func (k *Kernel) addLockSlot(kind lockID, name string, ring int) int {
	slot := len(k.vlocks)
	k.vlocks = append(k.vlocks, vlock{spans: make([]holdSpan, ring)})
	k.lockKinds = append(k.lockKinds, kind)
	k.lockNames = append(k.lockNames, name)
	for _, c := range k.cpus {
		for len(c.holds) < len(k.vlocks) {
			c.holds = append(c.holds, 0)
			c.lockSince = append(c.lockSince, 0)
		}
	}
	return slot
}

// fineSpaceLocks reports whether spaces get their own obj/mmu lock
// instances: fine model, deterministic mode only. The sharded
// ParallelHost gate keeps the lock table fixed after New — per-space
// slots would grow every CPU's hold arrays while other host goroutines
// read them — and host-level concurrency, not the virtual-time model,
// decides contention there anyway.
func (k *Kernel) fineSpaceLocks() bool {
	return k.cfg.LockModel == LockFine && k.par == nil
}

// itoa is a dependency-free strconv.Itoa for small non-negative ints
// (lock slot names; avoids importing strconv into the hot-path file).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// LockStats returns the per-kind acquire/contention counters in
// LockKindNames order. Under LockBig only the "big" row moves; under
// LockPerSubsystem the "big" row stays zero; under LockFine each row sums
// that kind's instances (per-queue, per-space).
func (k *Kernel) LockStats() [NumLockKinds]LockStat {
	var out [NumLockKinds]LockStat
	for i := range out {
		out[i].Name = LockKindNames[i]
	}
	for i := range k.vlocks {
		o := &out[k.lockKinds[i]]
		o.Acquires += k.vlocks[i].acquires
		o.Contended += k.vlocks[i].contended
		o.WaitCycles += k.vlocks[i].waitCycles
	}
	return out
}

// FineLockStats returns one row per lock *instance* (slot), in slot
// order — "sched", "obj", ..., "runq3", "obj.s1" — for the fine model's
// per-instance contention breakdown. Rows with zero acquires are
// included; callers filter.
func (k *Kernel) FineLockStats() []LockStat {
	out := make([]LockStat, len(k.vlocks))
	for i := range k.vlocks {
		out[i] = LockStat{
			Name:       k.lockNames[i],
			Acquires:   k.vlocks[i].acquires,
			Contended:  k.vlocks[i].contended,
			WaitCycles: k.vlocks[i].waitCycles,
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Slot resolution.

// slotForID maps a lock kind to the slot the acting CPU c should take
// under the configured model. Under the fine model the scheduler kind
// resolves to c's own run-queue instance and the obj/mmu kinds to the
// current thread's space instances; paths that act on *another* queue or
// space resolve explicitly (runqSlot, spaceObjSlot, spaceMMUSlot).
func (k *Kernel) slotForID(c *CPU, id lockID) int {
	switch k.cfg.LockModel {
	case LockBig:
		return slotBig
	case LockFine:
		switch id {
		case lockSched:
			return numFixedSlots + c.id
		case lockObj:
			if t := c.current; t != nil {
				return k.spaceObjSlot(t.Space)
			}
		case lockMMU:
			if t := c.current; t != nil {
				return k.spaceMMUSlot(t.Space)
			}
		}
		return int(id)
	default:
		return int(id)
	}
}

// runqSlot returns the lock slot guarding CPU cpuID's run queue.
func (k *Kernel) runqSlot(cpuID int) int {
	if k.cfg.LockModel == LockFine {
		return numFixedSlots + cpuID
	}
	if k.cfg.LockModel == LockBig {
		return slotBig
	}
	return slotSched
}

// spaceObjSlot returns the object-space lock slot for s.
func (k *Kernel) spaceObjSlot(s *obj.Space) int {
	if k.cfg.LockModel == LockBig {
		return slotBig
	}
	if k.cfg.LockModel == LockFine && s != nil && s.LockSlot != 0 {
		return s.LockSlot
	}
	return slotObj
}

// spaceMMUSlot returns the MMU lock slot for s.
func (k *Kernel) spaceMMUSlot(s *obj.Space) int {
	if k.cfg.LockModel == LockBig {
		return slotBig
	}
	if k.cfg.LockModel == LockFine && s != nil && s.LockSlot != 0 {
		return s.LockSlot + 1
	}
	return slotMMU
}

// ---------------------------------------------------------------------------
// Acquire / release.

// lockAcquireSlot takes the lock in the given slot on behalf of CPU c.
// Re-acquisition by the same CPU nests (a refcount). A contended acquire
// spins: the CPU's clock advances to the lock's release time and the wait
// is charged as kernel cycles.
func (k *Kernel) lockAcquireSlot(c *CPU, slot int) {
	if c.holds[slot] > 0 {
		c.holds[slot]++
		return
	}
	vl := &k.vlocks[slot]
	vl.acquires++
	kind := k.lockKinds[slot]
	if k.Metrics != nil && !k.shardedPar() {
		k.Metrics.LockAcquires[kind].Inc()
	}
	if k.par == nil {
		now := c.clk.Now()
		if free := vl.clearUntil(now); free > now {
			wait := free - now
			vl.contended++
			vl.waitCycles += wait
			c.stats.KernelCycles += wait
			if k.Metrics != nil {
				k.Metrics.LockContended[kind].Inc()
				k.Metrics.LockWaitCycles[kind].Add(wait)
			}
			c.clk.Advance(wait)
			k.profCharge(c, c.current, profile.PathLockSpin, wait)
		}
	}
	c.holds[slot] = 1
	c.lockSince[slot] = c.clk.Now()
	c.held = append(c.held, int32(slot))
}

// lockReleaseSlot drops one nesting level of the lock in slot, publishing
// the hold interval when the outermost level unlocks.
func (k *Kernel) lockReleaseSlot(c *CPU, slot int) {
	if c.holds[slot] == 0 {
		panic("core: lockRelease of unheld lock " + k.lockNames[slot])
	}
	c.holds[slot]--
	if c.holds[slot] > 0 {
		return
	}
	now := c.clk.Now()
	if k.Metrics != nil && !k.shardedPar() {
		k.Metrics.LockHoldCycles[k.lockKinds[slot]].Observe(now - c.lockSince[slot])
	}
	// Publish this hold so later (possibly clock-behind) acquirers spin
	// past it. Zero-length holds need no entry: no clock can land inside.
	if vl := &k.vlocks[slot]; k.par == nil && now > c.lockSince[slot] {
		vl.spans[vl.next] = holdSpan{from: c.lockSince[slot], until: now}
		vl.next = (vl.next + 1) % len(vl.spans)
	}
	// Drop slot from the held list (near-LIFO in practice; scan from top).
	for i := len(c.held) - 1; i >= 0; i-- {
		if c.held[i] == int32(slot) {
			c.held = append(c.held[:i], c.held[i+1:]...)
			break
		}
	}
}

// lockAcquire takes (the model's slot for) lock kind id on behalf of c.
func (k *Kernel) lockAcquire(c *CPU, id lockID) {
	k.lockAcquireSlot(c, k.slotForID(c, id))
}

// lockRelease drops one nesting level of (the model's slot for) kind id.
// Acquire/release pairs must resolve to the same slot: paths where the
// current thread can change mid-hold use the slot API directly.
func (k *Kernel) lockRelease(c *CPU, id lockID) {
	k.lockReleaseSlot(c, k.slotForID(c, id))
}

// releaseHeld drops every lock the acting CPU still holds — the idempotent
// end-of-episode epilogue. Paths that parked already released (parkRelease),
// so this is a no-op for them; paths that completed or died release here.
func (k *Kernel) releaseHeld() {
	c := k.cur
	for len(c.held) > 0 {
		slot := int(c.held[len(c.held)-1])
		c.holds[slot] = 1 // collapse nesting: the episode is over
		k.lockReleaseSlot(c, slot)
	}
}

// maxHeldSlots bounds how many distinct lock instances one kernel episode
// can hold at once (entry lock + own queue + one remote queue + slack).
const maxHeldSlots = 8

// lockSnap is a parkRelease snapshot: the held slots and their nesting
// counts. It lives on the parked goroutine's stack — threads migrate
// across CPUs between park and resume, so it must not live on the CPU.
type lockSnap struct {
	n     int
	slots [maxHeldSlots]int32
	count [maxHeldSlots]int16
}

// parkRelease releases everything the acting CPU holds before a park,
// returning the snapshot a process-model resume reacquires from.
func (k *Kernel) parkRelease() lockSnap {
	c := k.cur
	var snap lockSnap
	for len(c.held) > 0 {
		slot := int(c.held[len(c.held)-1])
		if snap.n == maxHeldSlots {
			panic("core: parkRelease: too many held lock slots")
		}
		snap.slots[snap.n] = int32(slot)
		snap.count[snap.n] = c.holds[slot]
		snap.n++
		c.holds[slot] = 1
		k.lockReleaseSlot(c, slot)
	}
	return snap
}

// parkReacquire restores a parkRelease snapshot on whatever CPU the
// thread resumed on, paying contention there if the lock moved on.
// Snapshots are slot-resolved, so a fine-model instance reacquires the
// same instance even if the thread's notion of "its" queue changed.
func (k *Kernel) parkReacquire(snap lockSnap) {
	c := k.cur
	for i := snap.n - 1; i >= 0; i-- {
		slot := int(snap.slots[i])
		k.lockAcquireSlot(c, slot)
		c.holds[slot] = snap.count[i]
	}
}
