package core

// The multiprocessor locking models (Config.LockModel). Locks here are
// *virtual*: they serialize simulated kernel execution in virtual time
// rather than host execution. Each lock keeps the virtual time its last
// holder released it (busyUntil); a CPU whose local clock is behind that
// time acquires by spinning — its clock advances to the release point and
// the spin cycles are charged as kernel time. With one CPU a lock can
// never be busy (the same clock both sets and tests busyUntil), so every
// acquire is free and the NumCPUs==1 timeline is bit-identical to the
// uniprocessor kernel under either model — pinned by the multicpu tests.
//
// Lock order (deadlock discipline, enforced by construction):
//
//	big  (outermost; the BigLock mapping of everything)
//	obj  (kernel entry for syscalls) | mmu (kernel entry for faults)
//	sched (innermost; run queues and resched flags)
//
// obj and mmu are never nested: a handler that faults returns KFault, the
// syscall epilogue releases obj, and only then does doFault take mmu.
//
// Blocking releases: a kernel path that parks (block, yieldCPU, the FP
// in-kernel park) releases every lock its CPU holds first — the classic
// "sleep releases the kernel lock" rule — and the process model reacquires
// on resume via a snapshot kept on the parked goroutine's own stack. In
// the interrupt model the unwind discards the snapshot and the next
// kernel entry reacquires from scratch.
//
// In ParallelHost mode the host gate mutex (parallel.go) serializes all
// kernel sections, so the virtual spin waits are disabled (wall-clock
// interleaving, not virtual-time modeling, decides contention there); the
// hold/acquire counters still run.

import "repro/internal/profile"

// lockID names one kernel lock.
type lockID uint8

const (
	lockSched lockID = iota // run queues, resched flags
	lockObj                 // object space: syscall-entry lock
	lockMMU                 // address spaces: fault-entry lock
	lockBig                 // the big kernel lock (LockBig maps everything here)
	numLocks
)

// NumLockKinds is the number of distinct kernel locks (for metrics).
const NumLockKinds = int(numLocks)

// LockKindNames are the lock names in lockID order.
var LockKindNames = [NumLockKinds]string{"sched", "obj", "mmu", "big"}

// lockHistory is how many recent hold intervals each lock remembers. The
// serial interleaver bounds cross-CPU clock skew to roughly one dispatch
// episode, so only the holds of the last few episodes can ever overlap an
// acquirer's local time; older entries are dead weight. Overwriting a
// still-relevant interval errs toward *less* contention, so the ring is
// sized generously relative to the holds a single episode performs.
const lockHistory = 64

// holdSpan is one completed [from, until) hold of a lock in virtual time.
type holdSpan struct {
	from, until uint64
}

// vlock is one virtual lock: a ring of its recent hold intervals plus
// contention counters. All access is serialized (by the deterministic
// scheduler loop, or by the ParallelHost gate).
//
// Intervals — not just the last release time — matter because the serial
// interleaver is coarse: one dispatch can run a CPU's clock far ahead of
// its peers before they get a turn. A peer whose local clock is still
// behind the last release time did not necessarily contend — if no hold
// covered its local instant the lock was free then; the skew is an
// artifact of simulation order, not of simulated time. Contention is
// charged exactly when the acquirer's clock lands inside a remembered
// hold, which is when a real CPU would have spun.
type vlock struct {
	spans      [lockHistory]holdSpan
	next       int // ring write cursor
	acquires   uint64
	contended  uint64
	waitCycles uint64
}

// clearUntil returns the earliest time >= now at which no remembered hold
// of vl covers the clock — the moment a spinning CPU would get the lock.
func (vl *vlock) clearUntil(now uint64) uint64 {
	for {
		hit := false
		for i := range vl.spans {
			if s := &vl.spans[i]; s.from <= now && now < s.until {
				now = s.until
				hit = true
			}
		}
		if !hit {
			return now
		}
	}
}

// LockStat is one lock's contention counters, as reported by LockStats.
type LockStat struct {
	Name       string
	Acquires   uint64
	Contended  uint64
	WaitCycles uint64
}

// LockStats returns the per-lock acquire/contention counters in
// LockKindNames order. Under LockBig only the "big" row moves; under
// LockPerSubsystem the "big" row stays zero.
func (k *Kernel) LockStats() [NumLockKinds]LockStat {
	var out [NumLockKinds]LockStat
	for i := range k.vlocks {
		out[i] = LockStat{
			Name:       LockKindNames[i],
			Acquires:   k.vlocks[i].acquires,
			Contended:  k.vlocks[i].contended,
			WaitCycles: k.vlocks[i].waitCycles,
		}
	}
	return out
}

// mapLock applies the configured lock model: under the big kernel lock
// every subsystem lock is the big lock.
func (k *Kernel) mapLock(id lockID) lockID {
	if k.cfg.LockModel == LockBig {
		return lockBig
	}
	return id
}

// lockAcquire takes (the mapped form of) lock id on behalf of CPU c.
// Re-acquisition by the same CPU nests (a refcount). A contended acquire
// spins: the CPU's clock advances to the lock's release time and the wait
// is charged as kernel cycles.
func (k *Kernel) lockAcquire(c *CPU, id lockID) {
	m := k.mapLock(id)
	if c.holds[m] > 0 {
		c.holds[m]++
		return
	}
	vl := &k.vlocks[m]
	vl.acquires++
	if k.Metrics != nil {
		k.Metrics.LockAcquires[m].Inc()
	}
	if k.par == nil {
		now := c.clk.Now()
		if free := vl.clearUntil(now); free > now {
			wait := free - now
			vl.contended++
			vl.waitCycles += wait
			c.stats.KernelCycles += wait
			if k.Metrics != nil {
				k.Metrics.LockContended[m].Inc()
				k.Metrics.LockWaitCycles[m].Add(wait)
			}
			c.clk.Advance(wait)
			k.profCharge(c, c.current, profile.PathLockSpin, wait)
		}
	}
	c.holds[m] = 1
	c.lockSince[m] = c.clk.Now()
}

// lockRelease drops one nesting level of (the mapped form of) lock id,
// publishing the release time when the outermost level unlocks.
func (k *Kernel) lockRelease(c *CPU, id lockID) {
	m := k.mapLock(id)
	if c.holds[m] == 0 {
		panic("core: lockRelease of unheld lock " + LockKindNames[m])
	}
	c.holds[m]--
	if c.holds[m] > 0 {
		return
	}
	now := c.clk.Now()
	if k.Metrics != nil {
		k.Metrics.LockHoldCycles[m].Observe(now - c.lockSince[m])
	}
	// Publish this hold so later (possibly clock-behind) acquirers spin
	// past it. Zero-length holds need no entry: no clock can land inside.
	if vl := &k.vlocks[m]; k.par == nil && now > c.lockSince[m] {
		vl.spans[vl.next] = holdSpan{from: c.lockSince[m], until: now}
		vl.next = (vl.next + 1) % lockHistory
	}
}

// releaseHeld drops every lock the acting CPU still holds — the idempotent
// end-of-episode epilogue. Paths that parked already released (parkRelease),
// so this is a no-op for them; paths that completed or died release here.
func (k *Kernel) releaseHeld() {
	c := k.cur
	for m := lockID(0); m < numLocks; m++ {
		for c.holds[m] > 0 {
			c.holds[m] = 1 // collapse nesting: the episode is over
			k.lockRelease(c, m)
		}
	}
}

// parkRelease releases everything the acting CPU holds before a park,
// returning the hold counts so a process-model resume can reacquire. The
// snapshot lives on the parked goroutine's stack — threads migrate across
// CPUs between park and resume, so it must not live on the CPU.
func (k *Kernel) parkRelease() [numLocks]int16 {
	c := k.cur
	snap := c.holds
	for m := lockID(0); m < numLocks; m++ {
		if c.holds[m] > 0 {
			c.holds[m] = 1
			k.lockRelease(c, m)
		}
	}
	return snap
}

// parkReacquire restores a parkRelease snapshot on whatever CPU the
// thread resumed on, paying contention there if the lock moved on.
func (k *Kernel) parkReacquire(snap [numLocks]int16) {
	for m := lockID(0); m < numLocks; m++ {
		if snap[m] > 0 {
			c := k.cur
			k.lockAcquire(c, m) // note: already-mapped id maps to itself
			c.holds[m] = snap[m]
		}
	}
}
