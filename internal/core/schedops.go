package core

import (
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/trace"
)

// This file is the only place (besides the CPU struct itself) allowed to
// touch per-CPU scheduler state — the run queues, resched flags, slice
// timers, and resched timestamps. Everything else in internal/core goes
// through these accessors, which wrap each queue touch in the scheduler
// lock of the configured lock model. TestSchedStateAccessRouting enforces
// the routing textually.

// schedEnqueue appends t to the tail of its home CPU's run queue, taking
// that queue's lock (under the fine model a remote enqueue locks the
// *target* queue instance, not the enqueuer's own). Under the sharded
// ParallelHost gate a remote queue is owner-only state, so the enqueue is
// posted to the target CPU's mailbox instead (ordered two-phase: see
// parallel.go).
func (k *Kernel) schedEnqueue(c *CPU, t *obj.Thread) {
	if k.shardedPar() && t.HomeCPU != c.id {
		k.mailPostWake(c, t)
		return
	}
	slot := k.runqSlot(t.HomeCPU)
	k.lockAcquireSlot(c, slot)
	k.cpus[t.HomeCPU].runq.Enqueue(t)
	k.lockReleaseSlot(c, slot)
}

// schedEnqueueFront puts t at the head of the acting CPU's own queue (a
// preempted thread that has not consumed its quantum stays local).
func (k *Kernel) schedEnqueueFront(c *CPU, t *obj.Thread) {
	k.lockAcquire(c, lockSched)
	c.runq.EnqueueFront(t)
	k.lockRelease(c, lockSched)
}

// schedPick takes the best runnable thread off c's own queue.
func (k *Kernel) schedPick(c *CPU) *obj.Thread {
	k.lockAcquire(c, lockSched)
	t := c.runq.Pick()
	k.lockRelease(c, lockSched)
	return t
}

// schedTopPriority reports the most urgent queued priority on c's queue.
func (k *Kernel) schedTopPriority(c *CPU) (int, bool) {
	k.lockAcquire(c, lockSched)
	p, ok := c.runq.TopPriority()
	k.lockRelease(c, lockSched)
	return p, ok
}

// schedRemove unlinks t from whichever CPU's queue holds it. The fine
// model locks one queue instance at a time while probing (home first —
// the overwhelmingly common case — then the rest), never holding two at
// once. Under the sharded gate a remote removal is posted to the owning
// CPU's mailbox; until the owner drains it, the entry sits stale in the
// queue and Pick's runnable check skips it.
func (k *Kernel) schedRemove(c *CPU, t *obj.Thread) {
	if k.shardedPar() {
		if t.HomeCPU != c.id {
			k.mailPostDrop(c, t)
			return
		}
		// Own queue only: ParallelHost pins threads to their home CPU, so
		// the deterministic fallback probe of the other queues would read
		// owner-only state for a thread that cannot be there.
		slot := k.runqSlot(c.id)
		k.lockAcquireSlot(c, slot)
		c.runq.Remove(t)
		k.lockReleaseSlot(c, slot)
		return
	}
	if k.cfg.LockModel != LockFine {
		k.lockAcquire(c, lockSched)
		if !k.cpus[t.HomeCPU].runq.Remove(t) {
			for _, o := range k.cpus {
				if o.id != t.HomeCPU && o.runq.Remove(t) {
					break
				}
			}
		}
		k.lockRelease(c, lockSched)
		return
	}
	home := k.runqSlot(t.HomeCPU)
	k.lockAcquireSlot(c, home)
	found := k.cpus[t.HomeCPU].runq.Remove(t)
	k.lockReleaseSlot(c, home)
	if found {
		return
	}
	for _, o := range k.cpus {
		if o.id == t.HomeCPU {
			continue
		}
		slot := k.runqSlot(o.id)
		k.lockAcquireSlot(c, slot)
		found = o.runq.Remove(t)
		k.lockReleaseSlot(c, slot)
		if found {
			return
		}
	}
}

// schedSteal rebalances: the idle CPU c takes one thread from the tail of
// the victim with the most urgent queued work (ties broken by rotation
// from c.id+1, so a hot CPU 0 is not always the designated victim).
// Deterministic mode only; ParallelHost pins threads to their home CPU.
func (k *Kernel) schedSteal(c *CPU) *obj.Thread {
	// Under the fine model each victim's queue instance is locked around
	// its probe (and the chosen victim's again around the steal) — the
	// steal path pays one short acquire per scanned queue instead of
	// serializing every CPU on one scheduler lock. At most one queue lock
	// is held at a time, so instance ordering cannot deadlock. Coarser
	// models keep the single-acquire scan byte-for-byte (existing seeds).
	fine := k.cfg.LockModel == LockFine
	if !fine {
		k.lockAcquire(c, lockSched)
	}
	var victim *CPU
	best := -1
	n := len(k.cpus)
	for i := 1; i < n; i++ {
		o := k.cpus[(c.id+i)%n]
		if fine {
			k.lockAcquireSlot(c, k.runqSlot(o.id))
		}
		p, ok := o.runq.TopPriority()
		// A staged handoff is stealable work too: during imbalance the
		// donor's CPU may be far ahead in virtual time, and leaving the
		// donation in the slot would idle this CPU until the donor
		// catches up.
		if d := o.runq.Donation(); d != nil && d.Runnable() && (!ok || d.Priority > p) {
			p, ok = d.Priority, true
		}
		if fine {
			k.lockReleaseSlot(c, k.runqSlot(o.id))
		}
		if ok && p > best {
			victim, best = o, p
		}
	}
	var t *obj.Thread
	fromSlot := false
	if victim != nil {
		if fine {
			k.lockAcquireSlot(c, k.runqSlot(victim.id))
		}
		t = victim.runq.Steal()
		if t == nil {
			t = victim.runq.TakeDonation()
			fromSlot = t != nil
		}
		if fine {
			k.lockReleaseSlot(c, k.runqSlot(victim.id))
		}
	}
	if !fine {
		k.lockRelease(c, lockSched)
	}
	if t != nil {
		if fromSlot {
			k.countFastpathFallback()
		}
		c.stats.Steals++
		if k.Metrics != nil {
			k.Metrics.Steals.Inc()
		}
		k.emit(trace.Steal, uint32(victim.id), t.ID)
		// A stolen spanned thread (queued or staged donation) migrates the
		// request to this CPU — a cross-CPU hop on its causal chain.
		k.spanCheckpoint(t, trace.FlowSteal)
	}
	return t
}

// drainMail applies the cross-CPU operations posted to c's mailbox, in
// post order (phase two of the sharded gate's two-phase protocol). Runs
// at the top of each owner loop iteration holding c's gate shard — the
// lock that owns c's queue — but not kmu. A pending kick sets the
// owner's own resched flag, stamping the kicker's clock so the
// preempt-latency histogram keeps its cross-CPU wake-to-dispatch
// meaning.
func (k *Kernel) drainMail(c *CPU) {
	p := k.par
	q := &p.qmu[c.id]
	m := &p.mail[c.id]
	q.Lock()
	if len(m.ops) == 0 && !m.kicked {
		q.Unlock()
		return
	}
	ops := m.ops
	m.ops = m.spare[:0]
	kicked, stamp := m.kicked, m.stamp
	m.kicked = false
	q.Unlock()
	for _, op := range ops {
		if op.drop {
			c.runq.Remove(op.t)
		} else {
			c.runq.Enqueue(op.t)
		}
	}
	m.spare = ops[:0]
	if kicked {
		c.needResched = true
		if k.Metrics != nil && c.reschedSince == 0 {
			c.reschedSince = stamp
		}
	}
}

// runnableQueuedOn reports whether c's queue holds a runnable thread
// (quiescence checks; skips stale entries). A staged handoff counts: the
// donated thread is runnable work even though it bypasses the queue.
func (k *Kernel) runnableQueuedOn(c *CPU) bool {
	if d := c.runq.Donation(); d != nil && d.Runnable() {
		return true
	}
	_, ok := c.runq.TopPriority()
	return ok
}

// ---------------------------------------------------------------------------
// The IPC fast path's donation slot. Staging and consuming a handoff
// touches only the scheduler lock — under per-subsystem locking this is
// the multicore win: the rendezvous completion never serializes on the
// object-space lock the way a queue round trip through wake + pick would.

// schedDonate stages t in the acting CPU c's donation slot for a direct
// handoff, reporting whether the slot was free. On false the caller must
// fall back to a normal enqueue.
func (k *Kernel) schedDonate(c *CPU, t *obj.Thread) bool {
	k.lockAcquire(c, lockSched)
	ok := c.runq.Donate(t)
	k.lockRelease(c, lockSched)
	return ok
}

// schedTakeDonation consumes c's staged handoff target, or nil. A thread
// that went non-runnable while staged is dropped, like stale queue
// entries in Pick.
func (k *Kernel) schedTakeDonation(c *CPU) *obj.Thread {
	k.lockAcquire(c, lockSched)
	t := c.runq.TakeDonation()
	k.lockRelease(c, lockSched)
	return t
}

// schedClaimDispatch returns the next thread for c to run and whether it
// arrived by direct handoff. The staged donation outranks the queue —
// that is the fast path — unless a strictly higher-priority thread is
// queued, in which case the donation is demoted to a normal enqueue (a
// handoff donates the slice, it never inverts priority) and the pick
// proceeds normally.
func (k *Kernel) schedClaimDispatch(c *CPU) (*obj.Thread, bool) {
	if t := k.schedTakeDonation(c); t != nil {
		top, ok := k.schedTopPriority(c)
		if !ok || top <= t.Priority {
			return t, true
		}
		k.countFastpathFallback()
		k.schedEnqueue(c, t)
	}
	return k.schedPick(c), false
}

// donationPending reports whether c's slot holds a staged handoff
// (owner-read, like needsResched: the slot is only written by kernel
// code acting on c, and never in ParallelHost mode).
func (k *Kernel) donationPending(c *CPU) bool { return c.runq.Donation() != nil }

// schedFlushDonation demotes c's staged handoff to a normal enqueue: the
// donor kept running (EINTR, fault remedied, call completed without
// blocking), so the woken peer must compete through the run queue like
// any other wake. Counted as a fast-path fallback.
func (k *Kernel) schedFlushDonation(c *CPU) {
	k.lockAcquire(c, lockSched)
	t := c.runq.TakeDonation()
	k.lockRelease(c, lockSched)
	if t == nil {
		return
	}
	k.countFastpathFallback()
	k.schedEnqueue(c, t)
	k.maybeResched(t)
}

// ---------------------------------------------------------------------------
// Resched flags and the preempt-latency window.

// noteResched flags a pending local reschedule and stamps the request time
// for the preemption-latency histogram (first request wins until serviced).
func (k *Kernel) noteResched(c *CPU) {
	c.needResched = true
	if k.Metrics != nil && c.reschedSince == 0 {
		c.reschedSince = c.clk.Now()
	}
}

// forceResched sets the flag without stamping a latency window (the RunFor
// budget stop is a harness artifact, not a scheduling event).
func (k *Kernel) forceResched(c *CPU) { c.needResched = true }

// clearResched drops the flag; an open latency window stays open until a
// context switch observes it.
func (k *Kernel) clearResched(c *CPU) { c.needResched = false }

// needsResched reads c's flag (owner-read; cross-CPU writes arrive via
// kickCPU, under the gate in ParallelHost mode).
func (k *Kernel) needsResched(c *CPU) bool { return c.needResched }

// observePreemptLatency closes an open reschedule-request window at a
// context switch. A stolen thread can dispatch at a local time before the
// (remote) request stamp; that skew clamps to zero.
func (k *Kernel) observePreemptLatency(c *CPU) {
	if k.Metrics != nil && c.reschedSince != 0 {
		lat := uint64(0)
		if now := c.clk.Now(); now > c.reschedSince {
			lat = now - c.reschedSince
		}
		k.Metrics.PreemptLatency.Observe(lat)
		c.reschedSince = 0
	}
}

// kickCPU is the IPI analogue: CPU c asks target to reschedule (a wake
// landed on target's queue that should preempt or un-idle it). The stamp
// uses the kicker's clock — the latency histogram then measures
// wake-to-dispatch across CPUs.
func (k *Kernel) kickCPU(c *CPU, target *CPU) {
	// Sharded gate: a remote CPU's flag is owner-only state; post the
	// kick to its mailbox instead (the owner sets its own flag on drain).
	if k.shardedPar() && target != c {
		c.stats.IPIs++
		if k.Metrics != nil {
			k.Metrics.IPIs.Inc()
		}
		k.emit(trace.IPI, uint32(target.id), 0)
		k.mailPostKick(target)
		return
	}
	target.needResched = true
	if k.Metrics != nil && target.reschedSince == 0 {
		target.reschedSince = c.clk.Now()
	}
	c.stats.IPIs++
	if k.Metrics != nil {
		k.Metrics.IPIs.Inc()
	}
	k.emit(trace.IPI, uint32(target.id), 0)
	if k.par != nil {
		k.par.wakeIdlers()
	}
}

// ---------------------------------------------------------------------------
// Slice timer.

// armSliceTimer (re)arms c's quantum timer. On expiry, a uniprocessor
// keeps the running thread unless equal-or-higher-priority work is queued
// (the original round-robin rule, preserved bit-exactly); a multiprocessor
// always ends the episode so the serial interleaver regains control and
// other CPUs' virtual time can progress (liveness under work stealing).
func (k *Kernel) armSliceTimer(c *CPU) {
	if c.sliceTimer != nil {
		c.clk.Cancel(c.sliceTimer)
	}
	c.sliceTimer = c.clk.After(k.cfg.Quantum, func(uint64) {
		c.stats.TimerIRQs++
		if k.Metrics != nil {
			k.Metrics.TimerIRQs.Inc()
		}
		cur := c.current
		if cur == nil {
			return
		}
		if len(k.cpus) > 1 {
			k.noteResched(c)
			return
		}
		if p, ok := c.runq.TopPriority(); ok && p >= cur.Priority {
			k.noteResched(c)
		} else if d := c.runq.Donation(); d != nil && d.Priority >= cur.Priority {
			// A staged handoff is queued work too: without this, a quantum
			// expiring between staging and the donor's block would leave
			// the system timer-less while the staged peer waits.
			k.noteResched(c)
		}
	})
}

// ensureSliceTimer arms c's quantum timer only if none is pending — used
// by the direct-handoff switch, where the incoming thread inherits the
// donor's remaining slice and so must NOT get a fresh quantum; but if the
// old timer already fired (or was never armed), running on without one
// would let a handoff chain starve equal-priority queued work.
func (k *Kernel) ensureSliceTimer(c *CPU) {
	if c.sliceTimer == nil || c.sliceTimer.Fired() {
		k.armSliceTimer(c)
	}
}

// ---------------------------------------------------------------------------
// CPU selection for the deterministic serial interleaver.

// chooseCPUScan returns the CPU to run next: smallest local virtual
// time, ties preferring a CPU with queued runnable work, then one with a
// pending timer, then the lowest index. Total order over kernel state ⇒
// the interleaving is a pure function of the initial state.
//
// This is the O(n) reference implementation; RunUntil uses the O(log n)
// clock heap (clockheap.go), which TestClockHeapMatchesScan pins to this
// exact order.
func (k *Kernel) chooseCPUScan() *CPU {
	best := k.cpus[0]
	bestClass := cpuClass(best)
	for _, c := range k.cpus[1:] {
		cn, bn := c.clk.Now(), best.clk.Now()
		if cn < bn {
			best, bestClass = c, cpuClass(c)
			continue
		}
		if cn == bn {
			if cl := cpuClass(c); cl < bestClass {
				best, bestClass = c, cl
			}
		}
	}
	return best
}

// cpuClass ranks same-time CPUs for chooseCPU: runnable work first, then
// pending timers, then idle. A staged handoff counts as runnable work —
// this is load-bearing for liveness: a CPU holding only a donation must
// outrank idle peers at the same virtual time, or the interleaver could
// declare quiescence with a thread still staged in the slot.
func cpuClass(c *CPU) int {
	if d := c.runq.Donation(); d != nil && d.Runnable() {
		return 0
	}
	if _, ok := c.runq.TopPriority(); ok {
		return 0
	}
	if c.clk.Pending() > 0 {
		return 1
	}
	return 2
}

// idleStep advances an idle CPU to the earliest upcoming event anywhere:
// its own next timer, another CPU's clock, or another CPU's deadline —
// whichever is soonest — after which chooseCPU reconsiders. Advancing in
// these conservative steps (rather than leaping straight to the local
// deadline, which can be a full quantum away) keeps an idle CPU's clock
// shadowing the busy CPUs, so it stays eligible to pick up work the
// moment any appears; overshooting would retire it from chooseCPU until
// everyone else caught up. It returns false when the whole system is
// quiescent.
func (k *Kernel) idleStep(c *CPU) bool {
	now := c.clk.Now()
	target, ok := uint64(0), false
	if d, dok := c.clk.NextDeadline(); dok {
		target, ok = d, true // may be overdue (d <= now): fires on advance
	}
	for _, o := range k.cpus {
		if o == c {
			continue
		}
		if t := o.clk.Now(); t > now && (!ok || t < target) {
			target, ok = t, true
		}
		if d, dok := o.clk.NextDeadline(); dok && d > now && (!ok || d < target) {
			target, ok = d, true
		}
	}
	if !ok {
		return false // no runnable work, no timers anywhere: quiescent
	}
	if target > now {
		c.stats.IdleCycles += target - now
		k.profCharge(c, nil, profile.PathIdle, target-now)
	}
	c.clk.AdvanceTo(target)
	return true
}
