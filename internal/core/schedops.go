package core

import (
	"repro/internal/obj"
	"repro/internal/trace"
)

// This file is the only place (besides the CPU struct itself) allowed to
// touch per-CPU scheduler state — the run queues, resched flags, slice
// timers, and resched timestamps. Everything else in internal/core goes
// through these accessors, which wrap each queue touch in the scheduler
// lock of the configured lock model. TestSchedStateAccessRouting enforces
// the routing textually.

// schedEnqueue appends t to the tail of its home CPU's run queue.
func (k *Kernel) schedEnqueue(c *CPU, t *obj.Thread) {
	k.lockAcquire(c, lockSched)
	k.cpus[t.HomeCPU].runq.Enqueue(t)
	k.lockRelease(c, lockSched)
}

// schedEnqueueFront puts t at the head of the acting CPU's own queue (a
// preempted thread that has not consumed its quantum stays local).
func (k *Kernel) schedEnqueueFront(c *CPU, t *obj.Thread) {
	k.lockAcquire(c, lockSched)
	c.runq.EnqueueFront(t)
	k.lockRelease(c, lockSched)
}

// schedPick takes the best runnable thread off c's own queue.
func (k *Kernel) schedPick(c *CPU) *obj.Thread {
	k.lockAcquire(c, lockSched)
	t := c.runq.Pick()
	k.lockRelease(c, lockSched)
	return t
}

// schedTopPriority reports the most urgent queued priority on c's queue.
func (k *Kernel) schedTopPriority(c *CPU) (int, bool) {
	k.lockAcquire(c, lockSched)
	p, ok := c.runq.TopPriority()
	k.lockRelease(c, lockSched)
	return p, ok
}

// schedRemove unlinks t from whichever CPU's queue holds it.
func (k *Kernel) schedRemove(c *CPU, t *obj.Thread) {
	k.lockAcquire(c, lockSched)
	if !k.cpus[t.HomeCPU].runq.Remove(t) {
		for _, o := range k.cpus {
			if o.id != t.HomeCPU && o.runq.Remove(t) {
				break
			}
		}
	}
	k.lockRelease(c, lockSched)
}

// schedSteal rebalances: the idle CPU c takes one thread from the tail of
// the victim with the most urgent queued work (ties broken by rotation
// from c.id+1, so a hot CPU 0 is not always the designated victim).
// Deterministic mode only; ParallelHost pins threads to their home CPU.
func (k *Kernel) schedSteal(c *CPU) *obj.Thread {
	k.lockAcquire(c, lockSched)
	var victim *CPU
	best := -1
	n := len(k.cpus)
	for i := 1; i < n; i++ {
		o := k.cpus[(c.id+i)%n]
		if p, ok := o.runq.TopPriority(); ok && p > best {
			victim, best = o, p
		}
	}
	var t *obj.Thread
	if victim != nil {
		t = victim.runq.Steal()
	}
	k.lockRelease(c, lockSched)
	if t != nil {
		c.stats.Steals++
		if k.Metrics != nil {
			k.Metrics.Steals.Inc()
		}
		k.emit(trace.Steal, uint32(victim.id), t.ID)
	}
	return t
}

// runnableQueuedOn reports whether c's queue holds a runnable thread
// (quiescence checks; skips stale entries).
func (k *Kernel) runnableQueuedOn(c *CPU) bool {
	_, ok := c.runq.TopPriority()
	return ok
}

// ---------------------------------------------------------------------------
// Resched flags and the preempt-latency window.

// noteResched flags a pending local reschedule and stamps the request time
// for the preemption-latency histogram (first request wins until serviced).
func (k *Kernel) noteResched(c *CPU) {
	c.needResched = true
	if k.Metrics != nil && c.reschedSince == 0 {
		c.reschedSince = c.clk.Now()
	}
}

// forceResched sets the flag without stamping a latency window (the RunFor
// budget stop is a harness artifact, not a scheduling event).
func (k *Kernel) forceResched(c *CPU) { c.needResched = true }

// clearResched drops the flag; an open latency window stays open until a
// context switch observes it.
func (k *Kernel) clearResched(c *CPU) { c.needResched = false }

// needsResched reads c's flag (owner-read; cross-CPU writes arrive via
// kickCPU, under the gate in ParallelHost mode).
func (k *Kernel) needsResched(c *CPU) bool { return c.needResched }

// observePreemptLatency closes an open reschedule-request window at a
// context switch. A stolen thread can dispatch at a local time before the
// (remote) request stamp; that skew clamps to zero.
func (k *Kernel) observePreemptLatency(c *CPU) {
	if k.Metrics != nil && c.reschedSince != 0 {
		lat := uint64(0)
		if now := c.clk.Now(); now > c.reschedSince {
			lat = now - c.reschedSince
		}
		k.Metrics.PreemptLatency.Observe(lat)
		c.reschedSince = 0
	}
}

// kickCPU is the IPI analogue: CPU c asks target to reschedule (a wake
// landed on target's queue that should preempt or un-idle it). The stamp
// uses the kicker's clock — the latency histogram then measures
// wake-to-dispatch across CPUs.
func (k *Kernel) kickCPU(c *CPU, target *CPU) {
	target.needResched = true
	if k.Metrics != nil && target.reschedSince == 0 {
		target.reschedSince = c.clk.Now()
	}
	c.stats.IPIs++
	if k.Metrics != nil {
		k.Metrics.IPIs.Inc()
	}
	k.emit(trace.IPI, uint32(target.id), 0)
	if k.par != nil {
		k.par.cond.Broadcast()
	}
}

// ---------------------------------------------------------------------------
// Slice timer.

// armSliceTimer (re)arms c's quantum timer. On expiry, a uniprocessor
// keeps the running thread unless equal-or-higher-priority work is queued
// (the original round-robin rule, preserved bit-exactly); a multiprocessor
// always ends the episode so the serial interleaver regains control and
// other CPUs' virtual time can progress (liveness under work stealing).
func (k *Kernel) armSliceTimer(c *CPU) {
	if c.sliceTimer != nil {
		c.clk.Cancel(c.sliceTimer)
	}
	c.sliceTimer = c.clk.After(k.cfg.Quantum, func(uint64) {
		c.stats.TimerIRQs++
		if k.Metrics != nil {
			k.Metrics.TimerIRQs.Inc()
		}
		cur := c.current
		if cur == nil {
			return
		}
		if len(k.cpus) > 1 {
			k.noteResched(c)
			return
		}
		if p, ok := c.runq.TopPriority(); ok && p >= cur.Priority {
			k.noteResched(c)
		}
	})
}

// ---------------------------------------------------------------------------
// CPU selection for the deterministic serial interleaver.

// chooseCPU returns the CPU to run next: smallest local virtual time,
// ties preferring a CPU with queued runnable work, then one with a
// pending timer, then the lowest index. Total order over kernel state ⇒
// the interleaving is a pure function of the initial state.
func (k *Kernel) chooseCPU() *CPU {
	best := k.cpus[0]
	bestClass := cpuClass(best)
	for _, c := range k.cpus[1:] {
		cn, bn := c.clk.Now(), best.clk.Now()
		if cn < bn {
			best, bestClass = c, cpuClass(c)
			continue
		}
		if cn == bn {
			if cl := cpuClass(c); cl < bestClass {
				best, bestClass = c, cl
			}
		}
	}
	return best
}

// cpuClass ranks same-time CPUs for chooseCPU: runnable work first, then
// pending timers, then idle.
func cpuClass(c *CPU) int {
	if _, ok := c.runq.TopPriority(); ok {
		return 0
	}
	if c.clk.Pending() > 0 {
		return 1
	}
	return 2
}

// idleStep advances an idle CPU: to its next local timer if it has one,
// otherwise to the earliest activity elsewhere (another CPU's clock or
// deadline ahead of ours), after which chooseCPU will pick that CPU. It
// returns false when the whole system is quiescent.
func (k *Kernel) idleStep(c *CPU) bool {
	if d, ok := c.clk.NextDeadline(); ok {
		if now := c.clk.Now(); d > now {
			c.stats.IdleCycles += d - now
		}
		c.clk.AdvanceTo(d)
		return true
	}
	now := c.clk.Now()
	target, ok := uint64(0), false
	for _, o := range k.cpus {
		if o == c {
			continue
		}
		if t := o.clk.Now(); t > now && (!ok || t < target) {
			target, ok = t, true
		}
		if d, dok := o.clk.NextDeadline(); dok && d > now && (!ok || d < target) {
			target, ok = d, true
		}
	}
	if !ok {
		return false // no runnable work, no timers anywhere: quiescent
	}
	c.stats.IdleCycles += target - now
	c.clk.AdvanceTo(target)
	return true
}
