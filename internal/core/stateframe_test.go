package core_test

// Property tests on the exported thread state frame.

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/obj"
)

// TestPropertyStateFrameRoundTrip: for arbitrary register contents,
// Encode(Apply(frame)) == frame for every restorable field.
func TestPropertyStateFrameRoundTrip(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelInterrupt})
	s := k.NewSpace()
	f := func(pc, sp uint32, regs [8]uint32, pr0, pr1, flags uint32, prio uint8, interrupted bool) bool {
		var w [core.ThreadStateWords]uint32
		w[core.TSPc] = pc
		w[core.TSSp] = sp
		for i, v := range regs {
			w[core.TSR0+i] = v
		}
		w[core.TSPr0] = pr0
		w[core.TSPr1] = pr1
		w[core.TSFlags] = flags
		w[core.TSPriority] = uint32(prio % 32)
		if interrupted {
			w[core.TSCtl] = 2
		}
		th := k.NewThread(s, 1) // stopped
		defer k.DestroyThread(th)
		k.ApplyThreadState(th, w)
		got := core.EncodeThreadState(th)
		// The stopped bit is managed by the kernel, not the frame.
		got[core.TSCtl] &^= 1
		return got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyRejectsWildPriority: out-of-range priorities in a frame are
// ignored rather than corrupting the scheduler.
func TestApplyRejectsWildPriority(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelInterrupt})
	s := k.NewSpace()
	th := k.NewThread(s, 7)
	var w [core.ThreadStateWords]uint32
	w[core.TSPriority] = 999
	k.ApplyThreadState(th, w)
	if th.Priority != 7 {
		t.Fatalf("priority %d, want unchanged 7", th.Priority)
	}
}

// TestRelinkRefusesHijack: a frame naming a peer whose connection half is
// already attached to a *live* third thread must not steal it.
func TestRelinkRefusesHijack(t *testing.T) {
	k := core.New(core.Config{Model: core.ModelInterrupt})
	s := k.NewSpace()
	a := k.NewThread(s, 7)
	bTh := k.NewThread(s, 7)
	c := k.NewThread(s, 7)
	// a(client) <-> b(server), both live.
	a.IPCClient.Phase = obj.IPCSend
	a.IPCClient.Peer = bTh
	bTh.IPCServer.Phase = obj.IPCRecv
	bTh.IPCServer.Peer = a

	var w [core.ThreadStateWords]uint32
	w[core.TSIPCPhase] = uint32(obj.IPCSend)
	w[core.TSIPCPeer] = bTh.ID
	k.ApplyThreadState(c, w)
	if c.IPCClient.Peer != nil {
		t.Fatal("relink hijacked a live connection")
	}
	if bTh.IPCServer.Peer != a {
		t.Fatal("victim connection disturbed")
	}
}
