package core

import (
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/sys"
	"repro/internal/trace"
)

// copyChargeBatch is how many words of IPC copy are charged to the clock
// at a time (amortizing accounting overhead without distorting timing).
const copyChargeBatch = 64

// copyCommitWords is how often the copy loop commits its rolled-forward
// progress. Work since the last commit is redone on a fault-induced
// restart — this is the "Cost to Rollback" of Table 3 (a few µs in the
// paper).
const copyCommitWords = 768

// CopyWords transfers min(src.R2, dst.R2) words from src's buffer to dst's
// buffer, advancing both threads' R1/R2 registers word by word exactly as
// the paper's §4.3 example describes ("as the data are transferred, the
// pointer register is incremented and the word count register decremented").
//
// The loop takes the PP preemption point every 8 KB and faults out — with
// both registers rolled forward to the precise word — if either side's
// buffer page is unmapped, so the operation restarts "without redoing any
// transfers".
func (k *Kernel) CopyWords(src, dst *obj.Thread) sys.KErr {
	t := k.cur.current
	if k.Metrics != nil {
		k.Metrics.IPCTransfers.Inc()
	}
	// The whole transfer is the IPC copy path for the profiler (the
	// zero-copy share charges retag per page below); the tag rides
	// through FP parks and is restored on every exit, fault included.
	oldTag := profTag(t, profile.PathIPCCopy)
	defer profRestore(t, oldTag)
	// Data is about to flow src → dst: propagate the causal span before
	// any transfer so even a zero-length rendezvous records the hop.
	k.spanTouch(src, dst, trace.FlowCopy)
	// Under per-subsystem and fine locking the bulk copy runs outside the
	// object-space lock — data transfer touches only the two buffers, so
	// concurrent CPUs can overlap their copies (this is where those
	// models earn their scaling). The lock is retaken before returning to
	// the handler on the success path; fault and preemption exits leave
	// it released, and the restart reacquires at kernel entry. The slot
	// is resolved once up front: under the fine model it is the calling
	// thread's space instance, and the reacquire must hit that same
	// instance even if the thread migrates mid-copy.
	var objHeld int16
	objSlot := -1
	if k.cfg.LockModel != LockBig {
		c := k.cur
		if s := k.slotForID(c, lockObj); c.holds[s] > 0 {
			objSlot = s
			objHeld = c.holds[s]
			c.holds[s] = 1
			k.lockReleaseSlot(c, s)
		}
	}
	reacquire := func() {
		if objSlot >= 0 {
			c := k.cur
			k.lockAcquireSlot(c, objSlot)
			c.holds[objSlot] = objHeld
		}
	}
	if k.par != nil {
		// ParallelHost: a peer space's home CPU may be batch-stepping its
		// threads outside the kernel gate; serialize against it.
		if src.Space != t.Space {
			src.Space.StepMu.Lock()
			defer src.Space.StepMu.Unlock()
		}
		if dst.Space != t.Space && dst.Space != src.Space {
			dst.Space.StepMu.Lock()
			defer dst.Space.StepMu.Unlock()
		}
	}
	// Register-carried small messages: a transfer that fits in the
	// register file end-to-end (≤ FastMsgWords words remaining on the
	// smaller side) moves through registers, not memory, and pays no
	// per-word copy charge. Everything else about the loop — roll-forward,
	// fault exits, commits, preemption points — is byte-identical to the
	// charged path, so restart semantics are unchanged; a fault mid-way is
	// counted as a fast-path fallback and the restarted remainder (still
	// ≤ FastMsgWords) stays register-carried.
	total := src.Regs.R[2]
	if dst.Regs.R[2] < total {
		total = dst.Regs.R[2]
	}
	perWord := uint64(CycCopyWord)
	regCarried := k.ipcFast && total <= FastMsgWords
	if regCarried {
		perWord = 0
	}
	// Zero-copy MMIO screening: the page-share path never runs against a
	// device register window (device stores must see every word), but a
	// space that merely *has* windows — a driver space replying straight
	// out of its DMA region — shares fine from its ordinary pages. The
	// cheap space-level check here only decides whether the per-page
	// MMIOAt probe is needed at all; most transfers skip it entirely.
	zcMMIO := src.Space.AS.HasMMIO() || dst.Space.AS.HasMMIO()
	zcFellBack := false
	zcStreak := false        // a share run is open: its tail page shares too
	words := uint32(0)       // copied but not yet charged/counted
	sincePoint := uint32(0)  // bytes since last preemption point
	sinceCommit := uint32(0) // words since last progress commit
	flush := func() {
		if words > 0 {
			if perWord > 0 {
				k.ChargeKernel(uint64(words) * perWord)
			}
			if k.Metrics != nil {
				k.Metrics.IPCBytes.Add(uint64(words) * 4)
			}
			words = 0
		}
	}
	for src.Regs.R[2] > 0 && dst.Regs.R[2] > 0 {
		// Zero-copy path: when both cursors sit on a page boundary and at
		// least ZeroCopyMinPages whole pages remain on both sides, move
		// the page by sharing the sender's frame into the receiver's
		// region copy-on-write (charged CycPageShare) instead of copying
		// 1024 words. Restart equivalence with the copying path is kept by
		// faulting out at exactly the VA and access the word loop's first
		// touch of this page would raise — src read, then dst write — with
		// the registers rolled forward to the page boundary, so the
		// four-cause fault instruments cannot tell the two paths apart.
		if k.zeroCopy && src.Regs.R[1]%mem.PageSize == 0 && dst.Regs.R[1]%mem.PageSize == 0 {
			rem := src.Regs.R[2]
			if dst.Regs.R[2] < rem {
				rem = dst.Regs.R[2]
			}
			// A run must open with at least ZeroCopyMinPages whole pages
			// to be worth the sharing bookkeeping; once open, it keeps
			// sharing down to and including its final whole page.
			if rem >= ZeroCopyMinPages*PageWords || (zcStreak && rem >= PageWords) {
				srcVA, dstVA := src.Regs.R[1], dst.Regs.R[1]
				dm := dst.Space.AS.MappingAt(dstVA)
				switch {
				case zcMMIO && (src.Space.AS.MMIOAt(srcVA) || dst.Space.AS.MMIOAt(dstVA)),
					dm == nil, dm.Perm&mmu.PermWrite == 0:
					// An MMIO page on either side or an unwritable
					// receiver window: the word loop handles it (storing
					// to a read-only mapping must raise the same fatal
					// fault it always did, and device registers must see
					// every word). Count the demotion once per transfer.
					if !zcFellBack {
						zcFellBack = true
						k.countZeroCopyFallback()
					}
				case !src.Space.AS.Present(srcVA, cpu.Read):
					flush()
					return k.faultOut(t, src.Space, &cpu.Fault{VA: srcVA, Access: cpu.Read})
				case !dst.Space.AS.HasPTE(dstVA):
					// Mirror the word loop's first store: soft if the
					// receiver page is populated, hard if its region
					// needs the pager. The restart resumes sharing here.
					flush()
					return k.faultOut(t, dst.Space, &cpu.Fault{VA: dstVA, Access: cpu.Write})
				default:
					flush()
					c := k.cur
					// The share edits both spaces' translations; under the
					// fine model that is two mmu instances, taken in
					// ascending slot order (coarser models resolve both to
					// the same slot and nest).
					s1, s2 := k.spaceMMUSlot(src.Space), k.spaceMMUSlot(dst.Space)
					if s2 < s1 {
						s1, s2 = s2, s1
					}
					k.lockAcquireSlot(c, s1)
					if s2 != s1 {
						k.lockAcquireSlot(c, s2)
					}
					shared := mmu.ShareCOW(src.Space.AS, srcVA, dst.Space.AS, dstVA)
					if s2 != s1 {
						k.lockReleaseSlot(c, s2)
					}
					k.lockReleaseSlot(c, s1)
					if !shared {
						// Both translations were live yet the share was
						// refused (e.g. the receiver slot is the source
						// page itself mid-overlap); copy this page.
						zcStreak = false
						if !zcFellBack {
							zcFellBack = true
							k.countZeroCopyFallback()
						}
						break
					}
					zcStreak = true
					shareTag := profTag(t, profile.PathIPCShare)
					k.ChargeKernel(CycPageShare)
					profRestore(t, shareTag)
					c = k.cur // ChargeKernel may park and migrate under FP
					src.Regs.R[1] += mem.PageSize
					src.Regs.R[2] -= PageWords
					dst.Regs.R[1] += mem.PageSize
					dst.Regs.R[2] -= PageWords
					c.stats.ZeroCopyShares++
					if k.Metrics != nil {
						k.Metrics.ZeroCopyShares.Inc()
						k.Metrics.IPCBytes.Add(mem.PageSize)
					}
					if k.Tracer != nil {
						pfn := uint32(0)
						if f := dm.Region.FrameAt(dm.RegionOff + (dstVA - dm.Base)); f != nil {
							pfn = f.PFN
						}
						k.emit(trace.Share, dstVA, pfn)
					}
					// Each shared page commits: a later fault must not
					// re-share (and re-charge) pages already delivered.
					sinceCommit = 0
					k.CommitProgress(t)
					sincePoint += mem.PageSize
					if sincePoint >= k.cfg.PreemptPointBytes {
						sincePoint = 0
						if kerr := k.PreemptPoint(); kerr != sys.KOK {
							return kerr
						}
					}
					continue
				}
			}
		}
		// Fast path: copy a run of words through direct page windows.
		// The run is capped at every accounting boundary (charge batch,
		// progress commit, preemption point) so the charge/commit/
		// preemption sequence below fires at exactly the words it would
		// in the word-at-a-time loop — virtual time cannot tell the two
		// apart.
		run := src.Regs.R[2]
		if dst.Regs.R[2] < run {
			run = dst.Regs.R[2]
		}
		if cap := copyChargeBatch - words; cap < run {
			run = cap
		}
		if cap := copyCommitWords - sinceCommit; cap < run {
			run = cap
		}
		if cap := (k.cfg.PreemptPointBytes - sincePoint + 3) / 4; cap < run {
			run = cap
		}
		var n uint32
		if run > 0 && src.Regs.R[1]%4 == 0 && dst.Regs.R[1]%4 == 0 {
			if sw := src.Space.AS.DirectWindow(src.Regs.R[1], cpu.Read, run*4); sw != nil {
				if dw := dst.Space.AS.DirectWindow(dst.Regs.R[1], cpu.Write, uint32(len(sw))); dw != nil {
					n = uint32(copy(dw, sw)) / 4
				}
			}
		}
		if n > 0 {
			src.Regs.R[1] += 4 * n
			src.Regs.R[2] -= n
			dst.Regs.R[1] += 4 * n
			dst.Regs.R[2] -= n
			words += n
			sinceCommit += n
			sincePoint += 4 * n
		} else {
			// Slow path: one word through the MMU, faulting out — with
			// both registers rolled forward to the precise word — when a
			// buffer page is unmapped or misaligned.
			v, f := src.Space.AS.Load32(src.Regs.R[1])
			if f != nil {
				if regCarried {
					k.countFastpathFallback()
				}
				flush()
				return k.faultOut(t, src.Space, f)
			}
			if f := dst.Space.AS.Store32(dst.Regs.R[1], v); f != nil {
				if regCarried {
					k.countFastpathFallback()
				}
				flush()
				return k.faultOut(t, dst.Space, f)
			}
			src.Regs.R[1] += 4
			src.Regs.R[2]--
			dst.Regs.R[1] += 4
			dst.Regs.R[2]--
			words++
			sinceCommit++
			sincePoint += 4
		}
		if words >= copyChargeBatch {
			flush()
		}
		if sinceCommit >= copyCommitWords {
			sinceCommit = 0
			flush()
			k.CommitProgress(t)
		}
		if sincePoint >= k.cfg.PreemptPointBytes {
			sincePoint = 0
			flush()
			k.CommitProgress(t)
			if kerr := k.PreemptPoint(); kerr != sys.KOK {
				return kerr
			}
		}
	}
	flush()
	k.CommitProgress(t)
	reacquire()
	return sys.KOK
}

// ChargeConnect charges the IPC connection-establishment cost.
func (k *Kernel) ChargeConnect() {
	if t := k.cur.current; t != nil {
		oldTag := profTag(t, profile.PathIPCConnect)
		k.ChargeKernel(CycIPCConnect)
		profRestore(t, oldTag)
		return
	}
	k.ChargeKernel(CycIPCConnect)
}
