package core

import (
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/sys"
)

// AnyObjType matches any object type in objAt.
const AnyObjType sys.ObjType = 0xFF

// registerHandlers fills the syscall table. Handlers are written in the
// paper's Figure-4 atomic style: they communicate with user code only
// through the register save area, roll parameters forward to record
// partial progress, and return kernel-internal codes for blocking,
// faulting and preemption.
func (k *Kernel) registerHandlers() {
	// Trivial.
	k.handlers[sys.NNull] = (*Kernel).sysNull
	k.handlers[sys.NThreadSelf] = (*Kernel).sysThreadSelf
	k.handlers[sys.NSpaceSelf] = (*Kernel).sysSpaceSelf
	k.handlers[sys.NClockGet] = (*Kernel).sysClockGet
	k.handlers[sys.NCPUSelf] = (*Kernel).sysCPUSelf
	k.handlers[sys.NAPIVersion] = (*Kernel).sysAPIVersion
	k.handlers[sys.NThreadPrioritySelf] = (*Kernel).sysThreadPrioritySelf
	k.handlers[sys.NPerfRead] = (*Kernel).sysPerfRead

	// The 9x6 common object operations.
	for ot := sys.ObjType(0); ot < sys.NumObjTypes; ot++ {
		for op := sys.CommonOp(0); op < sys.NumCommonOps; op++ {
			ot, op := ot, op
			k.handlers[sys.CommonOpNum(ot, op)] = func(k *Kernel, t *obj.Thread) sys.KErr {
				return k.commonOp(t, ot, op)
			}
		}
	}

	// Type-specific short calls.
	k.handlers[sys.NMutexTrylock] = (*Kernel).sysMutexTrylock
	k.handlers[sys.NMutexUnlock] = (*Kernel).sysMutexUnlock
	k.handlers[sys.NCondSignal] = (*Kernel).sysCondSignal
	k.handlers[sys.NCondBroadcast] = (*Kernel).sysCondBroadcast
	k.handlers[sys.NThreadInterrupt] = (*Kernel).sysThreadInterrupt
	k.handlers[sys.NThreadStop] = (*Kernel).sysThreadStop
	k.handlers[sys.NThreadResume] = (*Kernel).sysThreadResume
	k.handlers[sys.NThreadSetPriority] = (*Kernel).sysThreadSetPriority
	k.handlers[sys.NSchedYield] = (*Kernel).sysSchedYield
	k.handlers[sys.NRegionProtect] = (*Kernel).sysRegionProtect
	k.handlers[sys.NPortsetAdd] = (*Kernel).sysPortsetAdd
	k.handlers[sys.NPortsetRemove] = (*Kernel).sysPortsetRemove
	k.handlers[sys.NMemAllocate] = (*Kernel).sysMemAllocate
	k.handlers[sys.NMemFree] = (*Kernel).sysMemFree

	// Long calls.
	k.handlers[sys.NMutexLock] = (*Kernel).sysMutexLock
	k.handlers[sys.NThreadWait] = (*Kernel).sysThreadWait
	k.handlers[sys.NThreadSleep] = (*Kernel).sysThreadSleep
	k.handlers[sys.NThreadSuspendSelf] = (*Kernel).sysThreadSuspendSelf
	k.handlers[sys.NClockAlarmWait] = (*Kernel).sysClockAlarmWait
	k.handlers[sys.NIRQWait] = (*Kernel).sysIRQWait
	k.handlers[sys.NPortsetWait] = (*Kernel).sysPortsetWait
	k.handlers[sys.NSpaceReapWait] = (*Kernel).sysSpaceReapWait

	// Multi-stage, non-IPC.
	k.handlers[sys.NCondWait] = (*Kernel).sysCondWait
	k.handlers[sys.NRegionSearch] = (*Kernel).sysRegionSearch

	k.registerIPCHandlers()
}

// ---------------------------------------------------------------------------
// User-memory and handle helpers. On a fault they record it on the thread
// and return KFault; the dispatch layer remedies the fault and the syscall
// restarts from its rolled-forward registers.

func (k *Kernel) faultOut(t *obj.Thread, spc *obj.Space, f *cpu.Fault) sys.KErr {
	t.PendingFault = *f
	t.PendingFaultSpace = spc
	return sys.KFault
}

// LoadUser32 reads a user word from spc.
func (k *Kernel) LoadUser32(t *obj.Thread, spc *obj.Space, va uint32) (uint32, sys.KErr) {
	v, f := spc.AS.Load32(va)
	if f != nil {
		return 0, k.faultOut(t, spc, f)
	}
	return v, sys.KOK
}

// StoreUser32 writes a user word into spc.
func (k *Kernel) StoreUser32(t *obj.Thread, spc *obj.Space, va uint32, v uint32) sys.KErr {
	if f := spc.AS.Store32(va, v); f != nil {
		return k.faultOut(t, spc, f)
	}
	return sys.KOK
}

// LoadUser8 reads a user byte from spc.
func (k *Kernel) LoadUser8(t *obj.Thread, spc *obj.Space, va uint32) (byte, sys.KErr) {
	b, f := spc.AS.Load8(va)
	if f != nil {
		return 0, k.faultOut(t, spc, f)
	}
	return b, sys.KOK
}

// objAt resolves the object handle at va in t's space. As in Fluke, the
// handle's page must be mapped: if it is not, the syscall faults and
// restarts after the fault is remedied — this is what makes "short"
// syscalls restartable (paper §4.3's port_reference example).
//
// allowDead permits resolving objects that have been destroyed but whose
// handle is still bound (thread_wait on an exited thread).
func (k *Kernel) objAt(t *obj.Thread, va uint32, want sys.ObjType, allowDead bool) (obj.Obj, sys.Errno, sys.KErr) {
	oldTag := profTag(t, profile.PathObjLookup)
	k.ChargeKernel(CycObjLookup)
	profRestore(t, oldTag)
	if !t.Space.AS.Present(va, cpu.Read) {
		cl, _ := t.Space.AS.Classify(va, cpu.Read)
		if cl == mmu.FaultFatal {
			return nil, sys.ESRCH, sys.KOK
		}
		return nil, 0, k.faultOut(t, t.Space, &cpu.Fault{VA: va, Access: cpu.Read})
	}
	o := t.Space.At(va)
	if o == nil {
		return nil, sys.ESRCH, sys.KOK
	}
	if o.Hdr().Dead && !allowDead {
		return nil, sys.ESRCH, sys.KOK
	}
	if want != AnyObjType && obj.TypeOf(o) != want {
		return nil, sys.ESRCH, sys.KOK
	}
	return o, sys.EOK, sys.KOK
}

// derefRegion accepts a Region handle or a Reference-to-Region handle.
func derefRegion(o obj.Obj) *obj.Region {
	switch x := o.(type) {
	case *obj.Region:
		return x
	case *obj.Ref:
		if r, ok := x.Target.(*obj.Region); ok && !r.Dead {
			return r
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Trivial syscalls: always run to completion without sleeping (Table 1).

func (k *Kernel) sysNull(t *obj.Thread) sys.KErr {
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysThreadSelf(t *obj.Thread) sys.KErr {
	t.Regs.R[1] = t.VA
	t.Regs.R[2] = t.ID
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysSpaceSelf(t *obj.Thread) sys.KErr {
	t.Regs.R[1] = t.Space.VA
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysClockGet(t *obj.Thread) sys.KErr {
	us := k.cur.clk.Now() / 200 // cycles -> µs
	t.Regs.R[1] = uint32(us)
	t.Regs.R[2] = uint32(us >> 32)
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysCPUSelf(t *obj.Thread) sys.KErr {
	t.Regs.R[1] = uint32(k.cur.id)
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysAPIVersion(t *obj.Thread) sys.KErr {
	t.Regs.R[1] = sys.APIVersionValue
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) sysThreadPrioritySelf(t *obj.Thread) sys.KErr {
	t.Regs.R[1] = uint32(t.Priority)
	k.Return(t, sys.EOK)
	return sys.KOK
}

// sysPerfRead returns a kernel performance counter selected by R1:
// 0 syscalls, 1 context switches, 2 restarts, 3 user preemptions.
func (k *Kernel) sysPerfRead(t *obj.Thread) sys.KErr {
	var v uint64
	s := k.Stats()
	switch t.Regs.R[1] {
	case 0:
		v = s.Syscalls
	case 1:
		v = s.ContextSwitches
	case 2:
		v = s.Restarts
	case 3:
		v = s.PreemptsUser
	}
	t.Regs.R[1] = uint32(v)
	t.Regs.R[2] = uint32(v >> 32)
	k.Return(t, sys.EOK)
	return sys.KOK
}

// ---------------------------------------------------------------------------
// The common object operations (create, destroy, rename, reference,
// get_state, set_state) — 54 short syscalls implemented over shared
// machinery, as in Fluke.

func (k *Kernel) commonOp(t *obj.Thread, ot sys.ObjType, op sys.CommonOp) sys.KErr {
	switch op {
	case sys.OpCreate:
		return k.opCreate(t, ot)
	case sys.OpDestroy:
		return k.opDestroy(t, ot)
	case sys.OpRename:
		return k.opRename(t, ot)
	case sys.OpReference:
		return k.opReference(t, ot)
	case sys.OpGetState:
		return k.opGetState(t, ot)
	case sys.OpSetState:
		return k.opSetState(t, ot)
	}
	k.Return(t, sys.EINVAL)
	return sys.KOK
}

// opCreate creates an object of type ot at handle address R1. The handle's
// page must be mapped (fault + restart otherwise). Type-specific
// parameters follow in R2..R5.
func (k *Kernel) opCreate(t *obj.Thread, ot sys.ObjType) sys.KErr {
	va := t.Regs.R[1]
	// The handle lives in user memory: touching it may fault.
	if !t.Space.AS.Present(va, cpu.Write) {
		cl, _ := t.Space.AS.Classify(va, cpu.Write)
		if cl == mmu.FaultFatal {
			k.Return(t, sys.EFAULT)
			return sys.KOK
		}
		return k.faultOut(t, t.Space, &cpu.Fault{VA: va, Access: cpu.Write})
	}

	var o obj.Obj
	switch ot {
	case sys.ObjRegion:
		size := t.Regs.R[2]
		if size == 0 {
			k.Return(t, sys.EINVAL)
			return sys.KOK
		}
		demandZero := t.Regs.R[3]&1 != 0
		o = &obj.Region{Header: obj.Header{Type: ot}, R: mmu.NewRegion(size, demandZero)}
	case sys.ObjMapping:
		src, e, kerr := k.objAt(t, t.Regs.R[2], AnyObjType, false)
		if kerr != sys.KOK {
			return kerr
		}
		if e != sys.EOK {
			k.Return(t, e)
			return sys.KOK
		}
		reg := derefRegion(src)
		if reg == nil {
			k.Return(t, sys.ESRCH)
			return sys.KOK
		}
		mm := &mmu.Mapping{
			Region:    reg.R,
			RegionOff: t.Regs.R[5],
			Base:      t.Regs.R[3],
			Size:      t.Regs.R[4],
			Perm:      mmu.PermRWX,
		}
		if err := t.Space.AS.Map(mm); err != nil {
			k.Return(t, sys.EINVAL)
			return sys.KOK
		}
		o = &obj.Mapping{Header: obj.Header{Type: ot}, M: mm, Dst: t.Space}
	case sys.ObjThread:
		nt := k.makeThread(t.Space, t.Priority)
		o = nt
	case sys.ObjSpace:
		s := k.newSpaceInternal()
		o = s
	default:
		var e sys.Errno
		o, e = obj.New(ot)
		if e != sys.EOK {
			k.Return(t, e)
			return sys.KOK
		}
	}
	if e := t.Space.Insert(va, o); e != sys.EOK {
		// Undo side effects for the heavier types.
		if nt, ok := o.(*obj.Thread); ok {
			k.DestroyThread(nt)
		}
		k.Return(t, e)
		return sys.KOK
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

func (k *Kernel) opDestroy(t *obj.Thread, ot sys.ObjType) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], ot, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	h := o.Hdr()
	switch x := o.(type) {
	case *obj.Mutex:
		h.Dead = true
		k.wakeAll(&x.Waiters) // waiters retry, observe death, get ESRCH
	case *obj.Cond:
		h.Dead = true
		// cond waiters have already been re-pointed at mutex_lock;
		// waking them sends them there (paper §4.3).
		k.wakeAll(&x.Waiters)
	case *obj.Port:
		h.Dead = true
		k.wakeAll(&x.Connectors)
		if x.Set != nil {
			x.Set.RemovePort(x)
		}
	case *obj.Portset:
		h.Dead = true
		k.wakeAll(&x.Servers)
		for _, p := range append([]*obj.Port(nil), x.Ports...) {
			x.RemovePort(p)
		}
	case *obj.Region:
		h.Dead = true
		// Future faults on the region become fatal; wake waiters so
		// they observe it.
		x.R.Pager = nil
		x.R.DemandZero = false
		k.wakeAll(&x.FaultWaiters)
	case *obj.Mapping:
		h.Dead = true
		x.Dst.AS.Unmap(x.M)
	case *obj.Ref:
		if x.Target != nil {
			x.Target.Hdr().Refs--
			x.Target = nil
		}
		h.Dead = true
	case *obj.Thread:
		if x == t {
			t.Space.Remove(h.VA)
			k.Return(t, sys.EOK) // unreachable by the user, but consistent
			k.exitThread(t, 0)
			return sys.KDead
		}
		k.DestroyThread(x)
	case *obj.Space:
		return k.destroySpace(t, x)
	}
	t.Space.Remove(h.VA)
	k.Return(t, sys.EOK)
	return sys.KOK
}

// destroySpace destroys a whole space: every thread in it dies, waiters in
// space_reap_wait wake. If the caller lives in the destroyed space it dies
// too (last).
func (k *Kernel) destroySpace(t *obj.Thread, s *obj.Space) sys.KErr {
	s.Hdr().Dead = true
	suicide := false
	for _, th := range append([]*obj.Thread(nil), s.Threads...) {
		if th == t {
			suicide = true
			continue
		}
		k.DestroyThread(th)
	}
	k.wakeAll(&s.ReapWaiters)
	for va, o := range s.Objects {
		o.Hdr().Dead = true
		delete(s.Objects, va)
	}
	// The space handle stays bound (dead) in the caller's space so
	// space_reap_wait restarts still resolve it — the same rule as dead
	// thread handles for thread_wait.
	if suicide {
		k.exitThread(t, 0)
		return sys.KDead
	}
	k.Return(t, sys.EOK)
	return sys.KOK
}

// opRename reads a name of R3 bytes (max 32) from user address R2 and
// attaches it to the object at R1. The user-memory read makes rename a
// faultable, restartable short call.
func (k *Kernel) opRename(t *obj.Thread, ot sys.ObjType) sys.KErr {
	o, e, kerr := k.objAt(t, t.Regs.R[1], ot, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	n := t.Regs.R[3]
	if n > 32 {
		k.Return(t, sys.EINVAL)
		return sys.KOK
	}
	buf := make([]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		b, kerr := k.LoadUser8(t, t.Space, t.Regs.R[2]+i)
		if kerr != sys.KOK {
			return kerr
		}
		buf = append(buf, b)
	}
	o.Hdr().Name = string(buf)
	k.Return(t, sys.EOK)
	return sys.KOK
}

// opReference points the Reference at R2 at the object of type ot at R1
// (paper §4.3: port_reference "takes a Port object and a Reference object
// and 'points' the reference at the port"). Only Mapping, Region, Port,
// Thread and Space objects can be referenced (Table 2).
func (k *Kernel) opReference(t *obj.Thread, ot sys.ObjType) sys.KErr {
	switch ot {
	case sys.ObjMapping, sys.ObjRegion, sys.ObjPort, sys.ObjThread, sys.ObjSpace:
	default:
		k.Return(t, sys.EINVAL)
		return sys.KOK
	}
	o, e, kerr := k.objAt(t, t.Regs.R[1], ot, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	ro, e, kerr := k.objAt(t, t.Regs.R[2], sys.ObjRef, false)
	if kerr != sys.KOK {
		return kerr
	}
	if e != sys.EOK {
		k.Return(t, e)
		return sys.KOK
	}
	ref := ro.(*obj.Ref)
	if ref.Target != nil {
		ref.Target.Hdr().Refs--
	}
	ref.Target = o
	o.Hdr().Refs++
	k.Return(t, sys.EOK)
	return sys.KOK
}
