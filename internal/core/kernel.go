package core

import (
	"fmt"
	"unsafe"

	"repro/internal/clock"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/sys"
	"repro/internal/trace"
)

// KObjBase is the start of the reserved per-space kernel-handle window the
// boot layer binds kernel-created objects into (the space's self handle,
// initial thread handles). The window is mapped eagerly so those handles
// never fault.
const KObjBase uint32 = 0xFFE0_0000

// KObjPages is the size of the reserved handle window in pages.
const KObjPages = 16

// NumIRQLines is the number of virtual interrupt lines irq_wait serves.
const NumIRQLines = 16

// FaultSide distinguishes whose address space an IPC-time fault hit
// (Table 3's "client-side" vs "server-side" rows).
type FaultSide int

const (
	// FaultSame: the fault was against the current thread's own space.
	FaultSame FaultSide = iota
	// FaultCross: the fault was against the IPC peer's space.
	FaultCross
)

// FaultKey indexes fault statistics: (class, side).
type FaultKey struct {
	Class mmu.FaultClass
	Side  FaultSide
}

// Stats aggregates kernel event counters and the cycle accounting the
// benchmark harness turns into the paper's tables.
type Stats struct {
	Syscalls        uint64
	SyscallsByNum   [sys.NumSyscalls]uint64
	ContextSwitches uint64
	UserCycles      uint64
	KernelCycles    uint64
	IdleCycles      uint64

	Restarts       uint64 // syscall re-entries after a fault
	FaultCount     map[FaultKey]uint64
	FaultRemedy    map[FaultKey]uint64 // cycles spent remedying
	FaultRollback  map[FaultKey]uint64 // cycles of work discarded and redone
	PreemptsUser   uint64              // preemptions taken at user-mode boundaries
	PreemptsPoint  uint64              // preemptions at explicit kernel preemption points
	PreemptsKernel uint64              // full-preemption parks inside the kernel
	Interrupts     uint64              // thread_interrupt deliveries (EINTR)
	TimerIRQs      uint64
	IPIs           uint64 // cross-CPU reschedule requests sent
	Steals         uint64 // threads taken from another CPU's queue

	// IPC fast-path counters (see Config.DisableIPCFastPath): direct
	// handoffs dispatched, rendezvous blocks with no peer ready, and
	// staged handoffs or register-carried transfers that fell back to the
	// slow path.
	FastpathHits      uint64
	FastpathMisses    uint64
	FastpathFallbacks uint64

	// Zero-copy bulk-transfer counters (see Config.DisableZeroCopy):
	// pages shared copy-on-write instead of copied, stores that broke a
	// share by copying the page, and eligible pages that fell back to
	// the copying path.
	ZeroCopyShares    uint64
	ZeroCopyCOWBreaks uint64
	ZeroCopyFallbacks uint64

	// ContinuationsRecognized counts operations the kernel completed by
	// mutating a waiter's explicit continuation instead of re-running it
	// (§2.2 continuation recognition; interrupt model with
	// Config.ContinuationRecognition).
	ContinuationsRecognized uint64
}

func newStats() Stats {
	return Stats{
		FaultCount:    make(map[FaultKey]uint64),
		FaultRemedy:   make(map[FaultKey]uint64),
		FaultRollback: make(map[FaultKey]uint64),
	}
}

// handler is one syscall implementation. It runs with t == Current(), and
// returns a kernel-internal result code; user-visible results are
// delivered only through t.Regs (paper Figure 4).
type handler func(k *Kernel, t *obj.Thread) sys.KErr

// Kernel is one simulated Fluke kernel instance.
type Kernel struct {
	cfg Config

	// Clock is CPU 0's local clock, kept as an exported field for
	// uniprocessor compatibility (host code, tests, benchmarks). With
	// NumCPUs > 1 use Now() for the virtual-time frontier and CPUNow for
	// per-CPU clocks.
	Clock *clock.Clock
	Alloc *mem.Allocator

	// cpus are the simulated processors; cur is the one whose kernel
	// context is executing right now (the ambient CPU). In the
	// deterministic interleaver exactly one CPU acts at a time; in
	// ParallelHost mode cur is only valid under the gate and is re-set at
	// every gate acquisition.
	cpus []*CPU
	cur  *CPU

	// vlocks is the lock-slot table (see locks.go): the four fixed
	// subsystem slots plus, under the fine model, per-run-queue and
	// per-space instances. lockKinds/lockNames parallel it.
	vlocks    []vlock
	lockKinds []lockID
	lockNames []string

	// chooser is the deterministic interleaver's min-clock heap over the
	// CPUs (clockheap.go); built lazily by RunUntil at NumCPUs > 1.
	chooser *clockHeap

	// par is the ParallelHost run state; nil in deterministic mode.
	par *parState

	stopAt uint64 // RunFor budget; forces descheduling of CPU-bound threads

	// nextHome round-robins new threads (and in ParallelHost mode new
	// spaces) across CPUs.
	nextHome      int
	nextSpaceHome int

	nextTID uint32
	threads map[uint32]*obj.Thread
	spaces  []*obj.Space

	irq        [NumIRQLines]obj.WaitQueue
	irqPending [NumIRQLines]bool // latched lines with no waiter

	handlers [sys.NumSyscalls]handler

	// sleepers is the shared wait queue for time-based blocking; timer
	// callbacks wake specific threads from it.
	sleepers obj.WaitQueue

	// Tracer, when non-nil, receives typed kernel events (see
	// internal/trace). Attach before running; costs one branch when nil.
	Tracer *trace.Ring

	// Metrics, when non-nil, receives hot-path instrument updates (see
	// EnableMetrics). Like the tracer it costs one branch when nil and
	// never perturbs virtual time.
	Metrics *KernelMetrics

	// prof, when non-nil, is the cycle-accurate virtual-time profiler:
	// every charge site mirrors its cycles into the acting CPU's shard
	// (profile.go). Like Metrics it costs one branch when nil and never
	// charges cycles itself.
	prof *profile.Profiler

	// spans enables causal IPC span tracking (Config.EnableIPCSpans);
	// nextSpan is the last span ID minted (span.go).
	spans    bool
	nextSpan uint32

	// stacksInUse tracks live kernel stacks for the memory accountant:
	// one per CPU in the interrupt model, one per live thread in the
	// process model.
	stacksInUse int

	// fastExec selects the batched StepN execution loop (see
	// Config.DisableFastPath).
	fastExec bool

	// ipcFast enables the IPC fast path — direct thread handoff with
	// register-carried small messages (see Config.DisableIPCFastPath).
	ipcFast bool

	// zeroCopy enables the zero-copy bulk-transfer path — copy-on-write
	// frame sharing for page-aligned runs (see Config.DisableZeroCopy).
	zeroCopy bool
}

// New creates a kernel with the given configuration. It panics on an
// invalid configuration (interrupt model + full preemption); use
// Config.Validate to check first.
func New(cfg Config) *Kernel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	k := &Kernel{
		cfg:     cfg,
		Alloc:   mem.NewAllocator(cfg.PhysFrames),
		threads: make(map[uint32]*obj.Thread),
		nextTID: 1,
	}
	k.cpus = make([]*CPU, cfg.NumCPUs)
	for i := range k.cpus {
		k.cpus[i] = newCPU(i)
	}
	k.cur = k.cpus[0]
	k.Clock = k.cpus[0].clk
	if cfg.Model == ModelInterrupt {
		k.stacksInUse = cfg.NumCPUs // one kernel stack per simulated CPU
	}
	k.fastExec = !cfg.DisableFastPath
	k.ipcFast = !cfg.DisableIPCFastPath
	k.zeroCopy = !cfg.DisableZeroCopy
	k.spans = cfg.EnableIPCSpans
	if cfg.EnableProfiler {
		k.EnableProfiler()
	}
	if cfg.ParallelHost && cfg.NumCPUs > 1 {
		// The ParallelHost gate lives for the kernel's whole lifetime (not
		// per RunUntil call) so observation snapshots — Stats(),
		// ProfileSnapshot() — can lock it and read live state race-free.
		// Matches RunUntil's runParallel condition exactly: at one CPU the
		// serial loop runs and k.par must stay nil. The fine lock model
		// selects the sharded gate (per-CPU shards + shared kernel mutex).
		k.par = newParState(cfg.NumCPUs, cfg.LockModel == LockFine)
	}
	k.initLockTable()
	k.registerHandlers()
	return k
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Current returns the thread running on the acting CPU (nil inside the
// scheduler).
func (k *Kernel) Current() *obj.Thread { return k.cur.current }

// ---------------------------------------------------------------------------
// Host ("boot loader") API: the operations a bootstrap environment performs
// before handing control to user programs. These do not charge simulated
// time.

// NewSpace creates a space with an empty address space plus the reserved
// kernel-handle window, and binds the space's self handle.
func (k *Kernel) NewSpace() *obj.Space {
	return k.newSpaceInternal()
}

// SetSpaceHome pins a space to CPU cpu: threads created in it afterwards
// inherit that home. Device attach code uses it to put each driver space
// (and so every thread that may touch the device's registers, and every
// timer the device arms on the space's home clock) on one chosen CPU —
// the single-writer discipline that makes MMIO devices safe under
// ParallelHost and lets multi-queue devices spread queues across CPUs.
func (k *Kernel) SetSpaceHome(s *obj.Space, cpu int) {
	if cpu < 0 || cpu >= len(k.cpus) {
		panic("core: SetSpaceHome CPU out of range")
	}
	s.HomeCPU = cpu
}

// CPUClock returns CPU i's local clock — the clock a device serving a
// space homed on CPU i must arm its timers on, so completions fire on
// the goroutine (ParallelHost) or virtual-time stream (deterministic
// interleaver) that owns the device's state.
func (k *Kernel) CPUClock(i int) *clock.Clock { return k.cpus[i].clk }

func (k *Kernel) newSpaceInternal() *obj.Space {
	s := obj.NewSpace(mmu.NewAddrSpaceTLB(k.Alloc, k.cfg.TLBSize))
	if k.fineSpaceLocks() {
		// Fine model: this space gets its own obj/mmu lock instance pair
		// (consecutive slots, obj first — spaceMMUSlot relies on that).
		n := itoa(len(k.spaces))
		s.LockSlot = k.addLockSlot(lockObj, "obj.s"+n, spanRingSize(len(k.cpus)))
		k.addLockSlot(lockMMU, "mmu.s"+n, spanRingSize(len(k.cpus)))
	}
	s.HomeCPU = k.nextSpaceHome
	k.nextSpaceHome = (k.nextSpaceHome + 1) % len(k.cpus)
	if k.cfg.DisableFastPath {
		s.AS.SetFastPaths(false)
	}
	if k.cfg.DisableThreadedCode {
		s.AS.SetThreadedCode(false)
	}
	// Reserved handle window: eagerly-mapped demand-zero pages.
	r := mmu.NewRegion(KObjPages*mem.PageSize, true)
	m := &mmu.Mapping{Region: r, Base: KObjBase, Size: r.Size, Perm: mmu.PermRW}
	if err := s.AS.Map(m); err != nil {
		panic(err)
	}
	for p := uint32(0); p < KObjPages; p++ {
		if err := s.AS.ResolveSoft(KObjBase+p*mem.PageSize, cpu.Write); err != nil {
			panic(err)
		}
	}
	s.Header.Type = sys.ObjSpace
	if e := s.Insert(KObjBase, s); e != sys.EOK {
		panic(e)
	}
	k.spaces = append(k.spaces, s)
	return s
}

// Spaces returns all spaces ever created on this kernel.
func (k *Kernel) Spaces() []*obj.Space { return k.spaces }

// ExecStats sums the decode-cache and fused-block counters across every
// space. Host-side diagnostics only: these never feed back into
// simulated state, so reading them is always safe.
func (k *Kernel) ExecStats() cpu.ExecStats {
	var total cpu.ExecStats
	for _, s := range k.spaces {
		total.Add(s.AS.ExecStats())
	}
	return total
}

// kernelHandleVA hands out slots in the reserved handle window.
func kernelHandleVA(s *obj.Space) uint32 {
	for va := KObjBase + 4; va < KObjBase+KObjPages*mem.PageSize; va += 4 {
		if s.At(va) == nil {
			return va
		}
	}
	panic("core: kernel handle window exhausted")
}

// NewThread creates a thread in space s at the given priority, bound into
// the reserved handle window. The thread starts stopped with zeroed
// registers; set its registers and call StartThread.
func (k *Kernel) NewThread(s *obj.Space, priority int) *obj.Thread {
	t := k.makeThread(s, priority)
	if e := s.Insert(kernelHandleVA(s), t); e != sys.EOK {
		panic(e)
	}
	return t
}

// makeThread builds an unbound, stopped thread: the common substrate of
// the host NewThread and the thread_create syscall.
func (k *Kernel) makeThread(s *obj.Space, priority int) *obj.Thread {
	t := &obj.Thread{
		Header:   obj.Header{Type: sys.ObjThread},
		ID:       k.nextTID,
		Space:    s,
		Priority: priority,
		State:    obj.ThReady,
		Stopped:  true,
		CurSys:   profile.NoSyscall, // outside any syscall
	}
	if k.cfg.ParallelHost {
		// Space affinity: threads of one space all live on the space's
		// home CPU, so a space is only ever stepped by one host goroutine.
		t.HomeCPU = s.HomeCPU
	} else {
		t.HomeCPU = k.nextHome
		k.nextHome = (k.nextHome + 1) % len(k.cpus)
	}
	k.nextTID++
	s.Threads = append(s.Threads, t)
	k.threads[t.ID] = t
	if k.Metrics != nil {
		k.Metrics.ThreadsCreated.Inc()
		k.Metrics.ThreadsLive.Add(1)
	}
	if k.cfg.Model == ModelProcess {
		k.newKctx(t)
		k.stacksInUse++
	}
	return t
}

// Threads returns the live thread table.
func (k *Kernel) Threads() map[uint32]*obj.Thread { return k.threads }

// StartThread makes a (stopped) thread runnable.
func (k *Kernel) StartThread(t *obj.Thread) {
	if t.State == obj.ThDead {
		panic("core: starting dead thread")
	}
	t.Stopped = false
	if t.State == obj.ThReady {
		k.schedEnqueue(k.cur, t)
	}
}

// BindFresh installs an object at a fresh handle slot in the space's
// reserved kernel window and returns the handle VA.
func (k *Kernel) BindFresh(s *obj.Space, o obj.Obj) uint32 {
	va := kernelHandleVA(s)
	if e := s.Insert(va, o); e != sys.EOK {
		panic(e)
	}
	return va
}

// Bind installs an object at a handle VA in a space (host-level Insert).
func (k *Kernel) Bind(s *obj.Space, va uint32, o obj.Obj) error {
	if e := s.Insert(va, o); e != sys.EOK {
		return fmt.Errorf("core: bind %v at %#x: %v", obj.TypeOf(o), va, e)
	}
	return nil
}

// NewBoundRegion creates a Region object of size bytes backed by a
// demand-zero (pager == nil) or pager-backed mmu region, bound at handle
// va in s.
func (k *Kernel) NewBoundRegion(s *obj.Space, va uint32, size uint32, demandZero bool) (*obj.Region, error) {
	r := &obj.Region{
		Header: obj.Header{Type: sys.ObjRegion},
		R:      mmu.NewRegion(size, demandZero),
	}
	if err := k.Bind(s, va, r); err != nil {
		return nil, err
	}
	return r, nil
}

// AttachPager marks port p as the pager for region r: absent pages of r
// become hard faults delivered to p.
func (k *Kernel) AttachPager(r *obj.Region, p *obj.Port) {
	r.R.Pager = p
	r.R.DemandZero = false
	p.FaultRegion = r
}

// MapInto installs a window of region r into space s. The mapping object
// is bound into s's reserved handle window.
func (k *Kernel) MapInto(s *obj.Space, r *obj.Region, base, off, size uint32, perm mmu.Perm) (*obj.Mapping, error) {
	mm := &mmu.Mapping{Region: r.R, RegionOff: off, Base: base, Size: size, Perm: perm}
	if err := s.AS.Map(mm); err != nil {
		return nil, err
	}
	om := &obj.Mapping{Header: obj.Header{Type: sys.ObjMapping}, M: mm, Dst: s}
	if e := s.Insert(kernelHandleVA(s), om); e != sys.EOK {
		return nil, fmt.Errorf("core: bind mapping: %v", e)
	}
	return om, nil
}

// LoadImage creates a demand-zero region of at least len(image) bytes,
// maps it RWX at base in s, and copies the image in (pages become
// present). It returns the backing region object.
func (k *Kernel) LoadImage(s *obj.Space, base uint32, image []byte) (*obj.Region, error) {
	size := mem.PageRound(uint32(len(image)))
	if size == 0 {
		size = mem.PageSize
	}
	r := &obj.Region{Header: obj.Header{Type: sys.ObjRegion}, R: mmu.NewRegion(size, true)}
	if _, err := k.MapInto(s, r, base, 0, size, mmu.PermRWX); err != nil {
		return nil, err
	}
	if err := k.WriteMem(s, base, image); err != nil {
		return nil, err
	}
	return r, nil
}

// SpawnProgram loads an assembled image at base into s and creates a
// started thread entering at base with the given priority.
func (k *Kernel) SpawnProgram(s *obj.Space, base uint32, image []byte, priority int) (*obj.Thread, error) {
	if _, err := k.LoadImage(s, base, image); err != nil {
		return nil, err
	}
	t := k.NewThread(s, priority)
	t.Regs.PC = base
	k.StartThread(t)
	return t, nil
}

// WriteMem copies host bytes into guest memory, resolving soft faults
// directly (boot-loader powers). It fails on hard or fatal faults.
func (k *Kernel) WriteMem(s *obj.Space, va uint32, data []byte) error {
	for i, b := range data {
		a := va + uint32(i)
		if f := s.AS.Store8(a, b); f != nil {
			cl, _ := s.AS.Classify(a, cpu.Write)
			if cl != mmu.FaultSoft {
				return fmt.Errorf("core: WriteMem at %#x: %v fault", a, cl)
			}
			if err := s.AS.ResolveSoft(a, cpu.Write); err != nil {
				return err
			}
			if f := s.AS.Store8(a, b); f != nil {
				return fmt.Errorf("core: WriteMem at %#x: fault persists", a)
			}
		}
	}
	return nil
}

// ReadMem copies guest memory to host bytes, resolving soft faults.
func (k *Kernel) ReadMem(s *obj.Space, va uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		a := va + uint32(i)
		b, f := s.AS.Load8(a)
		if f != nil {
			cl, _ := s.AS.Classify(a, cpu.Read)
			if cl != mmu.FaultSoft {
				return nil, fmt.Errorf("core: ReadMem at %#x: %v fault", a, cl)
			}
			if err := s.AS.ResolveSoft(a, cpu.Read); err != nil {
				return nil, err
			}
			b, f = s.AS.Load8(a)
			if f != nil {
				return nil, fmt.Errorf("core: ReadMem at %#x: fault persists", a)
			}
		}
		out[i] = b
	}
	return out, nil
}

// RaiseIRQ wakes all threads blocked in irq_wait on the given line. The
// line is latched: if nothing is waiting, the next irq_wait completes
// immediately — a driver preempted between programming its device and
// waiting must not lose the edge.
func (k *Kernel) RaiseIRQ(line int) {
	if line < 0 || line >= NumIRQLines {
		panic(fmt.Sprintf("core: IRQ line %d out of range", line))
	}
	k.emit(trace.IRQ, uint32(line), 0)
	if k.irq[line].Len() == 0 {
		k.irqPending[line] = true
		return
	}
	for k.irq[line].Len() > 0 {
		k.wakeOne(&k.irq[line])
	}
}

// Shutdown destroys every remaining thread (unwinding process-model
// kernel-stack contexts so their goroutines exit) and cancels pending
// timers. The kernel is not usable afterwards.
func (k *Kernel) Shutdown() {
	// Collect victims once rather than re-scanning the table per kill —
	// the old loop was O(threads²), which shows at 64-CPU thread counts.
	// DestroyThread can cascade (a dying thread wakes and kills waiters),
	// so re-collect until the table is empty.
	victims := make([]*obj.Thread, 0, len(k.threads))
	for len(k.threads) > 0 {
		victims = victims[:0]
		for _, t := range k.threads {
			victims = append(victims, t)
		}
		for _, t := range victims {
			if _, live := k.threads[t.ID]; live {
				k.DestroyThread(t)
			}
		}
	}
	for _, c := range k.cpus {
		c.stopSliceTimer()
	}
}

// ---------------------------------------------------------------------------
// Memory accounting (paper Table 7).

// TCBSize is the measured size in bytes of this kernel's thread control
// block (the Thread object).
func TCBSize() int {
	return int(unsafe.Sizeof(obj.Thread{}))
}

// MemOverhead reports the kernel's per-thread memory overhead in bytes for
// this configuration: the TCB plus, in the process model, the per-thread
// kernel stack. In the interrupt model the per-CPU stack is not a
// per-thread cost, matching Table 7's "—" entry.
func (k *Kernel) MemOverhead() (tcb, stack, total int) {
	tcb = TCBSize()
	if k.cfg.Model == ModelProcess {
		stack = k.cfg.KernelStackSize
	}
	return tcb, stack, tcb + stack
}

// KernelStackBytes returns the total bytes in kernel stacks right now:
// stacks * configured stack size.
func (k *Kernel) KernelStackBytes() int {
	return k.stacksInUse * k.cfg.KernelStackSize
}

// StacksInUse returns the number of live kernel stacks.
func (k *Kernel) StacksInUse() int { return k.stacksInUse }
