package core_test

// Fault-during-handoff: a register-carried fast-path transfer that takes a
// hard (pager-backed) fault mid-copy must unwind to the slow path with the
// thread's rolled-forward registers consistent, wait for the pager, and
// restart — leaving every user-visible artifact (received payload, reply,
// Table 3 fault/restart accounting) bit-identical to a run that never took
// the fast path (Config.DisableIPCFastPath). The fault is driven through
// every word offset of the message by sliding the receive buffer across a
// page boundary into an unpopulated pager-backed page.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// handoffFaultResult is everything a user program (or Table 3) can see.
// The pager's port/portset handle slots (pgPortVA/pgPsVA) are shared with
// fastpath_core_test.go.
type handoffFaultResult struct {
	payload   [core.FastMsgWords]uint32 // words landed in the server's buffer
	reply     uint32                    // last payload word, echoed back
	faults    map[core.FaultKey]uint64
	rollback  map[core.FaultKey]uint64
	restarts  [4]uint64
	fallbacks uint64
}

// runHandoffFault runs one FastMsgWords-word RPC whose receive buffer
// crosses into an unpopulated pager-backed page at word wordOff, so the
// copy hard-faults exactly there, and returns the observable outcome.
func runHandoffFault(t *testing.T, cfg core.Config, wordOff int) handoffFaultResult {
	t.Helper()
	e := newEnv(t, cfg)
	e.k.EnableMetrics()
	bindIPC(t, e.k, e.s, e.s)

	// The pager pair servicing the region's hard faults.
	po, _ := obj.New(sys.ObjPort)
	pso, _ := obj.New(sys.ObjPortset)
	pgPort := po.(*obj.Port)
	pgPs := pso.(*obj.Portset)
	if err := e.k.Bind(e.s, pgPortVA, pgPort); err != nil {
		t.Fatal(err)
	}
	if err := e.k.Bind(e.s, pgPsVA, pgPs); err != nil {
		t.Fatal(err)
	}
	pgPs.AddPort(pgPort)

	// Two pager-backed pages at pBase; nothing populated until the pager
	// services a fault.
	const pBase = 0x0100_0000
	reg, err := e.k.NewBoundRegion(e.s, regVA, 2*mem.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	e.k.AttachPager(reg, pgPort)
	if _, err := e.k.MapInto(e.s, reg, pBase, 0, 2*mem.PageSize, mmu.PermRW); err != nil {
		t.Fatal(err)
	}

	// Words [0, wordOff) of the receive buffer sit on page 0 (populated by
	// the server's pre-touch below); word wordOff is the first byte of
	// page 1 and hard-faults mid-copy.
	rbuf := uint32(pBase + mem.PageSize - 4*wordOff)
	const (
		repBuf = dataBase + 0x300 // server's reply staging word
		sbuf   = dataBase + 0x100 // client's send buffer
		ackBuf = dataBase + 0x200 // client's reply landing word
	)

	// Echo server: pre-touch page 0, then serve. The receive count is one
	// past the message so the receive completes on the client's
	// message-end, and the reply (the last payload word) is staged in
	// ordinary memory so a retried reply would be idempotent.
	srv := prog.New(codeBase)
	srv.Movi(4, pBase).Movi(5, 0x5a).St(4, 0, 5).
		IPCWaitReceive(rbuf, core.FastMsgWords+1, psVA).
		Label("srv.loop").
		Movi(4, rbuf).Ld(5, 4, uint32(4*(core.FastMsgWords-1))).
		Movi(4, repBuf).St(4, 0, 5).
		IPCReplyWaitReceive(repBuf, 1, psVA, rbuf, core.FastMsgWords+1).
		Jmp("srv.loop")

	// Pager: service fault notifications (two-word messages: offset, kind)
	// by allocating the faulted page.
	const fmBuf = dataBase + 0x400
	pager := prog.New(codeBase + 0x8000)
	pager.Label("pg.loop").
		IPCWaitReceive(fmBuf, 2, pgPsVA).
		Movi(1, regVA).
		Movi(4, fmBuf).Ld(2, 4, 0).
		Movi(3, 1).
		Syscall(sys.NMemAllocate).
		Jmp("pg.loop")

	// Client: send FastMsgWords known words, receive the one-word reply.
	cli := prog.New(codeBase + 0x4000)
	for j := uint32(0); j < core.FastMsgWords; j++ {
		cli.Movi(4, sbuf+4*j).Movi(5, 0x1010+7*j).St(4, 0, 5)
	}
	cli.IPCClientConnectSendOverReceive(sbuf, core.FastMsgWords, refVA, ackBuf, 1).
		IPCClientDisconnect().
		Halt()

	if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.k.LoadImage(e.s, pager.Base(), pager.MustAssemble()); err != nil {
		t.Fatal(err)
	}
	e.spawnAt(pager.Base(), 15) // pager above everything
	e.spawnAt(srv.Base(), 12)
	client := e.spawn(t, cli, 10)
	e.run(t, 400_000_000, client)

	var res handoffFaultResult
	for j := 0; j < core.FastMsgWords; j++ {
		res.payload[j] = e.word(t, rbuf+uint32(4*j))
	}
	res.reply = e.word(t, ackBuf)
	st := e.k.Stats()
	res.faults = st.FaultCount
	res.rollback = st.FaultRollback
	res.restarts = e.k.Metrics.RestartsByCause()
	res.fallbacks = st.FastpathFallbacks
	return res
}

func TestFastPathFaultDuringHandoff(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		for wordOff := 0; wordOff < core.FastMsgWords; wordOff++ {
			on := runHandoffFault(t, cfg, wordOff)
			off := cfg
			off.DisableIPCFastPath = true
			offR := runHandoffFault(t, off, wordOff)

			// The transfer must have arrived intact in both runs.
			for j := 0; j < core.FastMsgWords; j++ {
				if want := uint32(0x1010 + 7*j); on.payload[j] != want {
					t.Fatalf("off=%d word %d = %#x, want %#x (fast path on)",
						wordOff, j, on.payload[j], want)
				}
			}
			wantReply := uint32(0x1010 + 7*(core.FastMsgWords-1))
			if on.reply != wantReply || offR.reply != wantReply {
				t.Fatalf("off=%d reply on=%#x off=%#x, want %#x",
					wordOff, on.reply, offR.reply, wantReply)
			}
			if on.payload != offR.payload {
				t.Fatalf("off=%d payload differs on vs off:\non:  %#x\noff: %#x",
					wordOff, on.payload, offR.payload)
			}
			// Bit-identical unwind accounting: same fault classes, same
			// rolled-back cycles, same Table 3 restart causes.
			if !reflect.DeepEqual(on.faults, offR.faults) {
				t.Fatalf("off=%d fault counts differ: on=%v off=%v",
					wordOff, on.faults, offR.faults)
			}
			// Rollback cycles are the cost of re-doing charged copy work;
			// register-carried words are never charged, so the fast path
			// may only shrink them — never grow them.
			for key, offCyc := range offR.rollback {
				if onCyc := on.rollback[key]; onCyc > offCyc {
					t.Fatalf("off=%d rollback grew with fast path on: %v on=%d off=%d",
						wordOff, key, onCyc, offCyc)
				}
			}
			if on.restarts != offR.restarts {
				t.Fatalf("off=%d restart causes differ: on=%v off=%v",
					wordOff, on.restarts, offR.restarts)
			}
			// The runs must actually have hard-faulted (pre-touch on page
			// 0 plus the mid-transfer fault on page 1) ...
			var hard uint64
			for k, n := range on.faults {
				if k.Class == mmu.FaultHard {
					hard += n
				}
			}
			if hard < 2 {
				t.Fatalf("off=%d only %d hard faults; the transfer never faulted", wordOff, hard)
			}
			// ... through the register-carried path when it was enabled.
			if on.fallbacks == 0 {
				t.Fatalf("off=%d fast path never fell back; fault missed the register-carried copy", wordOff)
			}
			if offR.fallbacks != 0 {
				t.Fatalf("off=%d disabled run counted %d fallbacks", wordOff, offR.fallbacks)
			}
		}
	})
}
