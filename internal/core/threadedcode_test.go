package core_test

// Threaded-code tier equivalence: the fused superinstruction blocks are
// a simulator-side optimization, so they must be invisible to everything
// but wall-clock time. This is the strictest invariant in the repo —
// bit-identical memory, Stats, and final virtual clock with the tier on
// vs off — checked across the full configuration matrix.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestThreadedCodeEquivalence pins memory, Stats, and the clock
// bit-identical with Config.DisableThreadedCode off vs on, across the
// five paper configurations × NumCPUs {1,2,4} × both lock models, and
// guards against vacuous passes by requiring the fused tier to have
// actually executed blocks somewhere in the matrix.
func TestThreadedCodeEquivalence(t *testing.T) {
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	totalHits := uint64(0)
	for _, base := range core.Configurations() {
		for _, ncpu := range []int{1, 2, 4} {
			for _, lm := range []core.LockModel{core.LockBig, core.LockPerSubsystem} {
				cfg := base
				cfg.NumCPUs = ncpu
				cfg.LockModel = lm
				t.Run(fmt.Sprintf("%s/cpus=%d/%s", base.Name(), ncpu, lm), func(t *testing.T) {
					for _, seed := range seeds {
						onMem, onK := runSeed(t, cfg, seed)
						off := cfg
						off.DisableThreadedCode = true
						offMem, offK := runSeed(t, off, seed)
						if !bytes.Equal(onMem, offMem) {
							t.Fatalf("seed %d: observable memory differs with threaded code on vs off", seed)
						}
						if onK.Clock.Now() != offK.Clock.Now() {
							t.Fatalf("seed %d: virtual time differs: on=%d off=%d",
								seed, onK.Clock.Now(), offK.Clock.Now())
						}
						if !reflect.DeepEqual(onK.Stats(), offK.Stats()) {
							t.Fatalf("seed %d: Stats differ with threaded code on vs off:\non:  %+v\noff: %+v",
								seed, onK.Stats(), offK.Stats())
						}
						totalHits += onK.ExecStats().BlockHits
						if es := offK.ExecStats(); es.BlockHits != 0 || es.BlocksBuilt != 0 {
							t.Fatalf("seed %d: disabled run executed fused blocks: %+v", seed, es)
						}
					}
				})
			}
		}
	}
	if totalHits == 0 {
		t.Fatal("no fused block ran anywhere in the matrix; the test is vacuous")
	}
}
