package core_test

// Guest-level tests for the syscalls not covered by core_test.go: the
// remaining long calls, the common-op family via the API itself, and the
// short type-specific calls.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

func TestClockAlarmWait(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		// Absolute wait until t=5000 µs, then record the clock.
		b.Movi(1, 5000).Movi(2, 0).Syscall(sys.NClockAlarmWait).
			ClockGet().
			Movi(6, dataBase).St(6, 0, 1).
			Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 100_000_000, th)
		us := e.word(t, dataBase)
		if us < 5000 || us > 6000 {
			t.Fatalf("woke at %d µs, want ~5000", us)
		}
	})
}

func TestClockAlarmWaitInPastReturnsImmediately(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	b := prog.New(codeBase)
	b.ThreadSleepUS(1000).
		Movi(1, 10).Movi(2, 0).Syscall(sys.NClockAlarmWait). // t=10µs is long past
		Movi(6, dataBase).St(6, 0, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 100_000_000, th)
	if got := e.word(t, dataBase); got != uint32(sys.EOK) {
		t.Fatalf("errno %v", sys.Errno(got))
	}
}

func TestIRQWaitAndRaise(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		// A "device driver" thread: wait for IRQ 3, record, wait again.
		b.IRQWait(3).
			Movi(6, dataBase).St(6, 0, 0). // errno
			ClockGet().
			Movi(6, dataBase).St(6, 4, 1). // time of delivery
			Halt()
		th := e.spawn(t, b, 20)
		e.k.RunFor(1_000_000)
		if th.State != obj.ThBlocked {
			t.Fatalf("driver not blocked: %v", th.State)
		}
		// Raise the line at a known time.
		raisedUS := e.k.Clock.Now() / 200
		e.k.RaiseIRQ(3)
		e.run(t, 100_000_000, th)
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("errno %v", sys.Errno(got))
		}
		us := uint64(e.word(t, dataBase+4))
		if us < raisedUS || us > raisedUS+1000 {
			t.Fatalf("IRQ delivered at %d µs, raised at %d (want prompt dispatch)", us, raisedUS)
		}
	})
}

func TestIRQWaitBadLine(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	b := prog.New(codeBase)
	b.IRQWait(99).
		Movi(6, dataBase).St(6, 0, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 10_000_000, th)
	if got := e.word(t, dataBase); got != uint32(sys.EINVAL) {
		t.Fatalf("errno %v, want EINVAL", sys.Errno(got))
	}
}

func TestPortsetWaitSeesConnector(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		// Watcher: portset_wait then record EOK. (It does not accept, so
		// the client stays queued.)
		w := prog.New(codeBase + 0x8000)
		w.Movi(1, psVA).Syscall(sys.NPortsetWait).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		cli := prog.New(codeBase)
		cli.IPCClientConnectSend(dataBase+0x1000, 1, refVA).Halt()
		if _, err := e.k.LoadImage(e.s, w.Base(), w.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		watcher := e.spawnAt(w.Base(), 10)
		client := e.spawn(t, cli, 10)
		e.run(t, 100_000_000, watcher)
		_ = client
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("portset_wait errno %v", sys.Errno(got))
		}
	})
}

func TestSpaceReapWait(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const childSpace = dataBase + 0x700
		b := prog.New(codeBase)
		// Main: create a space, then destroy it.
		b.Create(sys.ObjSpace, childSpace).
			ThreadSleepUS(2000).
			Destroy(sys.ObjSpace, childSpace).
			Halt()
		// Reaper: wait for the space to die.
		b.Label("reaper").
			ThreadSleepUS(500). // let main create it first
			Movi(1, childSpace).Syscall(sys.NSpaceReapWait).
			Movi(6, dataBase).St(6, 0, 0).
			ClockGet().
			Movi(6, dataBase).St(6, 4, 1).
			Halt()
		main := e.spawn(t, b, 10)
		reaper := e.spawnAt(b.Addr("reaper"), 10)
		e.run(t, 400_000_000, main, reaper)
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("reap errno %v", sys.Errno(got))
		}
		if us := e.word(t, dataBase+4); us < 2000 {
			t.Fatalf("reaper woke at %d µs, before the destroy", us)
		}
	})
}

func TestThreadSuspendResumeViaSyscalls(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		b := prog.New(codeBase)
		// Sleeper suspends itself; the waker resumes it by handle.
		b.Syscall(sys.NThreadSuspendSelf).
			ClockGet().
			Movi(6, dataBase).St(6, 0, 1).
			Halt()
		sleeper := e.spawn(t, b, 10)
		e.k.RunFor(1_000_000)
		if !sleeper.Stopped {
			t.Fatalf("sleeper not stopped (state %v)", sleeper.State)
		}
		w := prog.New(codeBase + 0x8000)
		w.ThreadSleepUS(5000).
			Movi(1, sleeper.VA).Syscall(sys.NThreadResume).
			Halt()
		if _, err := e.k.LoadImage(e.s, w.Base(), w.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		waker := e.spawnAt(w.Base(), 10)
		e.run(t, 400_000_000, sleeper, waker)
		if us := e.word(t, dataBase); us < 5000 {
			t.Fatalf("sleeper resumed at %d µs, before the resume call", us)
		}
	})
}

func TestThreadStopIsPromptAndResumable(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		spin := prog.New(codeBase)
		spin.Movi(6, 0).
			Label("spin").
			Addi(6, 6, 1).
			Movi(4, dataBase).St(4, 0, 6). // progress marker
			Movi(5, 100_000_000).
			Blt(6, 5, "spin").
			Halt()
		victim := e.spawn(t, spin, 10)
		st := prog.New(codeBase + 0x8000)
		st.ThreadSleepUS(1000).
			Movi(1, victim.VA).Syscall(sys.NThreadStop).
			Movi(6, dataBase+0x100).St(6, 0, 0). // stop errno
			ThreadSleepUS(20_000).               // long quiet window
			Movi(1, victim.VA).Syscall(sys.NThreadResume).
			Halt()
		if _, err := e.k.LoadImage(e.s, st.Base(), st.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		controller := e.spawnAt(st.Base(), 20)
		e.k.RunFor(300_000) // past the stop, before the resume
		if got := e.word(t, dataBase+0x100); got != uint32(sys.EOK) {
			t.Fatalf("stop errno %v", sys.Errno(got))
		}
		if !victim.Stopped {
			t.Fatal("victim not stopped")
		}
		frozen := e.word(t, dataBase)
		e.k.RunFor(100_000)
		if e.word(t, dataBase) != frozen {
			t.Fatal("victim made progress while stopped")
		}
		e.k.RunFor(10_000_000)
		_ = controller
		if e.word(t, dataBase) == frozen {
			t.Fatal("victim made no progress after resume")
		}
	})
}

func TestThreadSetPriorityViaSyscall(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	b := prog.New(codeBase)
	b.ThreadSelf(). // R1 = own handle
			Movi(2, 25).Syscall(sys.NThreadSetPriority).
			Movi(6, dataBase).St(6, 0, 0).
			Syscall(sys.NThreadPrioritySelf).
			Movi(6, dataBase).St(6, 4, 1).
		// Out-of-range priority rejected.
		ThreadSelf().
		Movi(2, 99).Syscall(sys.NThreadSetPriority).
		Movi(6, dataBase).St(6, 8, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 50_000_000, th)
	if got := e.word(t, dataBase); got != uint32(sys.EOK) {
		t.Fatalf("set errno %v", sys.Errno(got))
	}
	if got := e.word(t, dataBase+4); got != 25 {
		t.Fatalf("priority %d, want 25", got)
	}
	if got := e.word(t, dataBase+8); got != uint32(sys.EINVAL) {
		t.Fatalf("bad priority errno %v, want EINVAL", sys.Errno(got))
	}
}

func TestRenameAndGetStateViaSyscalls(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const (
			mtx  = dataBase + 0x100
			name = dataBase + 0x200
			buf  = dataBase + 0x300
		)
		b := prog.New(codeBase)
		b.MutexCreate(mtx)
		// Write "flk" at name.
		b.Movi(4, name).Movi(5, 'f').Stb(4, 0, 5).
			Movi(5, 'l').Stb(4, 1, 5).
			Movi(5, 'k').Stb(4, 2, 5)
		// rename(mtx, name, 3)
		b.Movi(1, mtx).Movi(2, name).Movi(3, 3).
			Syscall(sys.CommonOpNum(sys.ObjMutex, sys.OpRename)).
			Movi(6, dataBase).St(6, 0, 0)
		// Lock it, then get_state: words = [locked, holderID, waiters].
		b.MutexTrylock(mtx).
			GetState(sys.ObjMutex, mtx, buf).
			Movi(6, dataBase).St(6, 4, 1). // words written
			Movi(4, buf).Ld(5, 4, 0).
			Movi(6, dataBase).St(6, 8, 5). // locked flag
			Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 100_000_000, th)
		if got := e.word(t, dataBase); got != uint32(sys.EOK) {
			t.Fatalf("rename errno %v", sys.Errno(got))
		}
		if got := e.word(t, dataBase+4); got != 3 {
			t.Fatalf("get_state wrote %d words, want 3", got)
		}
		if got := e.word(t, dataBase+8); got != 1 {
			t.Fatalf("locked flag %d, want 1", got)
		}
		m := e.s.At(mtx)
		if m == nil || m.Hdr().Name != "flk" {
			t.Fatalf("rename did not apply: %+v", m)
		}
	})
}

func TestReferenceCommonOp(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	const (
		port = dataBase + 0x100
		ref  = dataBase + 0x104
		ref2 = dataBase + 0x108
	)
	b := prog.New(codeBase)
	b.Create(sys.ObjPort, port).
		Create(sys.ObjRef, ref).
		Create(sys.ObjRef, ref2).
		// port_reference(port, ref): point ref at port.
		Movi(1, port).Movi(2, ref).
		Syscall(sys.CommonOpNum(sys.ObjPort, sys.OpReference)).
		Movi(6, dataBase).St(6, 0, 0).
		// mutex_reference is invalid per Table 2 (only Mapping, Region,
		// Port, Thread, Space may be referenced).
		Movi(1, port).Movi(2, ref2).
		Syscall(sys.CommonOpNum(sys.ObjMutex, sys.OpReference)).
		Movi(6, dataBase).St(6, 4, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 50_000_000, th)
	if got := e.word(t, dataBase); got != uint32(sys.EOK) {
		t.Fatalf("port_reference errno %v", sys.Errno(got))
	}
	if got := e.word(t, dataBase+4); got != uint32(sys.EINVAL) {
		t.Fatalf("mutex_reference errno %v, want EINVAL", sys.Errno(got))
	}
	r := e.s.At(ref).(*obj.Ref)
	if r.Target == nil || obj.TypeOf(r.Target) != sys.ObjPort {
		t.Fatal("reference not pointed at the port")
	}
	if e.s.At(port).Hdr().Refs != 1 {
		t.Fatal("refcount not bumped")
	}
}

func TestRegionAndMappingCreateViaSyscalls(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const (
			regH = dataBase + 0x100
			mapH = dataBase + 0x104
			win  = 0x0080_0000
		)
		b := prog.New(codeBase)
		// region_create(regH, 4 pages, demand-zero)
		b.Movi(1, regH).Movi(2, 4*mem.PageSize).Movi(3, 1).
			Syscall(sys.CommonOpNum(sys.ObjRegion, sys.OpCreate)).
			Movi(6, dataBase).St(6, 0, 0)
		// mapping_create(mapH, regH, win, 4 pages, off 0)
		b.Movi(1, mapH).Movi(2, regH).Movi(3, win).Movi(4, 4*mem.PageSize).Movi(5, 0).
			Syscall(sys.CommonOpNum(sys.ObjMapping, sys.OpCreate)).
			Movi(6, dataBase).St(6, 4, 0)
		// Touch the new window (demand-zero soft fault + restart).
		b.Movi(4, win).Movi(5, 0x77).St(4, 0, 5).
			Ld(5, 4, 0).
			Movi(6, dataBase).St(6, 8, 5)
		// mem_free page 0 of the region, then re-touch: fresh zero page.
		b.Movi(1, regH).Movi(2, 0).Movi(3, 1).Syscall(sys.NMemFree).
			Movi(4, win).Ld(5, 4, 0).
			Movi(6, dataBase).St(6, 12, 5).
			Halt()
		th := e.spawn(t, b, 10)
		e.run(t, 100_000_000, th)
		for i, want := range []uint32{uint32(sys.EOK), uint32(sys.EOK), 0x77, 0} {
			if got := e.word(t, dataBase+uint32(i)*4); got != want {
				t.Fatalf("step %d = %#x, want %#x", i, got, want)
			}
		}
	})
}

func TestRegionProtectViaSyscall(t *testing.T) {
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	const (
		regH = dataBase + 0x100
		mapH = dataBase + 0x104
		win  = 0x0080_0000
	)
	b := prog.New(codeBase)
	b.Movi(1, regH).Movi(2, mem.PageSize).Movi(3, 1).
		Syscall(sys.CommonOpNum(sys.ObjRegion, sys.OpCreate)).
		Movi(1, mapH).Movi(2, regH).Movi(3, win).Movi(4, mem.PageSize).Movi(5, 0).
		Syscall(sys.CommonOpNum(sys.ObjMapping, sys.OpCreate)).
		Movi(4, win).Movi(5, 9).St(4, 0, 5). // populate page
		// region_protect(mapping, read-only)
		Movi(1, mapH).Movi(2, 1).Syscall(sys.NRegionProtect).
		Movi(6, dataBase).St(6, 0, 0).
		// Reads still work.
		Movi(4, win).Ld(5, 4, 0).
		Movi(6, dataBase).St(6, 4, 5).
		// The next store fatally faults (no mapping permits it).
		Movi(4, win).Movi(5, 1).St(4, 0, 5).
		Halt()
	th := e.spawn(t, b, 10)
	e.k.RunFor(100_000_000)
	if got := e.word(t, dataBase); got != uint32(sys.EOK) {
		t.Fatalf("protect errno %v", sys.Errno(got))
	}
	if got := e.word(t, dataBase+4); got != 9 {
		t.Fatalf("read-after-protect %d, want 9", got)
	}
	if th.State != obj.ThDead || th.Exited && th.ExitCode == 0 {
		t.Fatalf("store to read-only page did not kill the thread (state %v)", th.State)
	}
}

func TestThreadCreateSetStateResumeViaSyscalls(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const (
			childH = dataBase + 0x100
			frame  = dataBase + 0x400
		)
		b := prog.New(codeBase)
		// Child body: store 0x42 and halt.
		b.Label("child").
			Movi(4, dataBase).Movi(5, 0x42).St(4, 4, 5).
			Halt()
		// Parent: create a thread, build a state frame with
		// PC = child entry, set_state, resume, join.
		b.Label("parent").
			Create(sys.ObjThread, childH).
			Movi(6, dataBase).St(6, 0, 0)
		// frame[0] = PC; other words zero (the window is demand-zero).
		b.Movi(4, frame).Movi(5, 0).St(4, 0, 5) // touch page
		b.Movi(4, frame).Movi(5, 0).Movi(2, core.TSPriority*4)
		b.Movi(5, 10).Add(3, 4, 2).St(3, 0, 5) // priority word
		b.Movi(4, frame)
		// PC word: child entry address.
		b.Movi(5, 0).Addi(5, 5, 0) // placeholder; patched below via imm
		b.Label("patchpc")
		b.St(4, 0, 5).
			SetState(sys.ObjThread, childH, frame).
			Movi(6, dataBase).St(6, 8, 0).
			Movi(1, childH).Syscall(sys.NThreadResume).
			Movi(1, childH).Syscall(sys.NThreadWait).
			Movi(6, dataBase).St(6, 12, 0).
			Halt()
		img := b.MustAssemble()
		if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
			t.Fatal(err)
		}
		// Patch the placeholder movi imm (two instructions before
		// "patchpc") with the child's entry PC.
		patch := b.Addr("patchpc") - 2*cpu.InstrSize + 4
		pc := b.Addr("child")
		if err := e.k.WriteMem(e.s, patch, []byte{byte(pc), byte(pc >> 8), byte(pc >> 16), byte(pc >> 24)}); err != nil {
			t.Fatal(err)
		}
		parent := e.spawnAt(b.Addr("parent"), 10)
		e.run(t, 200_000_000, parent)
		for _, off := range []uint32{0, 8, 12} {
			if got := e.word(t, dataBase+off); got != uint32(sys.EOK) {
				t.Fatalf("step at +%d errno %v", off, sys.Errno(got))
			}
		}
		if got := e.word(t, dataBase+4); got != 0x42 {
			t.Fatalf("child marker %#x, want 0x42", got)
		}
	})
}

func TestRegionSearchInterruptible(t *testing.T) {
	// region_search over a huge range is a multi-stage call: a pending
	// thread_interrupt is consumed at a stage boundary and the registers
	// show exactly how much range remains.
	e := newEnv(t, core.Config{Model: core.ModelInterrupt})
	b := prog.New(codeBase)
	b.RegionSearch(0x4000_0000, 512<<20). // 512 MB: 131072 pages of scanning
						Movi(6, dataBase).St(6, 0, 0).
						Movi(6, dataBase).St(6, 4, 2). // R2: remaining words
						Halt()
	th := e.spawn(t, b, 10)
	// A pending interrupt is consumed at the first stage boundary of the
	// multi-stage call.
	th.Interrupted = true
	e.k.RunFor(400_000_000)
	if !th.Exited {
		t.Fatalf("search never returned (pc=%#x)", th.Regs.PC)
	}
	if got := e.word(t, dataBase); got != uint32(sys.EINTR) {
		t.Fatalf("errno %v, want EINTR", sys.Errno(got))
	}
	if rem := e.word(t, dataBase+4); rem == 0 || rem == 512<<20 {
		t.Fatalf("remaining range %d: registers not rolled forward", rem)
	}
}

func TestSpaceCreateRunsThreads(t *testing.T) {
	// space_create via syscall gives a fresh space; the host can then
	// populate it. (Guests cannot load code cross-space; that is a
	// manager operation, done here host-side.)
	e := newEnv(t, core.Config{Model: core.ModelProcess})
	const spcH = dataBase + 0x100
	b := prog.New(codeBase)
	b.Create(sys.ObjSpace, spcH).
		Movi(6, dataBase).St(6, 0, 0).
		Halt()
	th := e.spawn(t, b, 10)
	e.run(t, 50_000_000, th)
	if got := e.word(t, dataBase); got != uint32(sys.EOK) {
		t.Fatalf("space_create errno %v", sys.Errno(got))
	}
	sp, ok := e.s.At(spcH).(*obj.Space)
	if !ok {
		t.Fatal("no space object bound")
	}
	// Host loads a trivial program into the new space and runs it.
	nb := prog.New(codeBase)
	nb.Movi(1, 7).Halt()
	nt, err := e.k.SpawnProgram(sp, codeBase, nb.MustAssemble(), 10)
	if err != nil {
		t.Fatal(err)
	}
	e.k.RunFor(10_000_000)
	if !nt.Exited || nt.ExitCode != 7 {
		t.Fatalf("thread in new space: exited=%v code=%d", nt.Exited, nt.ExitCode)
	}
}

func TestMutexDestroyWakesWaiters(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const mtx = dataBase + 0x100
		b := prog.New(codeBase)
		b.MutexCreate(mtx).
			MutexLock(mtx).
			MutexLock(mtx). // blocks forever
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		waiter := e.spawn(t, b, 10)
		d := prog.New(codeBase + 0x8000)
		d.ThreadSleepUS(1000).
			Destroy(sys.ObjMutex, mtx).
			Halt()
		if _, err := e.k.LoadImage(e.s, d.Base(), d.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		destroyer := e.spawnAt(d.Base(), 10)
		e.run(t, 100_000_000, waiter, destroyer)
		if got := e.word(t, dataBase); got != uint32(sys.ESRCH) {
			t.Fatalf("waiter errno %v, want ESRCH (object died)", sys.Errno(got))
		}
	})
}

func TestCondBroadcastWakesAllWaiters(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		const (
			mtx = dataBase + 0x100
			cnd = dataBase + 0x104
			ctr = dataBase + 0x200
		)
		b := prog.New(codeBase)
		// Waiter: lock; cond_wait once; count; unlock; halt.
		b.Label("waiter").
			MutexLock(mtx).
			CondWait(cnd, mtx).
			Movi(4, ctr).Ld(5, 4, 0).Addi(5, 5, 1).St(4, 0, 5).
			MutexUnlock(mtx).
			Halt()
		b.Label("caster").
			MutexCreate(mtx).CondCreate(cnd).
			ThreadSleepUS(2000). // let waiters block
			CondBroadcast(cnd).
			Halt()
		caster := e.spawnAt(codeBase, 0) // placeholder, replaced below
		e.k.DestroyThread(caster)
		img := b.MustAssemble()
		if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
			t.Fatal(err)
		}
		// Creator must run first to create the objects.
		c := e.spawnAt(b.Addr("caster"), 12)
		var waiters []*obj.Thread
		for i := 0; i < 3; i++ {
			waiters = append(waiters, e.spawnAt(b.Addr("waiter"), 10))
		}
		e.run(t, 400_000_000, append(waiters, c)...)
		if got := e.word(t, ctr); got != 3 {
			t.Fatalf("woken waiters %d, want 3", got)
		}
	})
}

func TestIPCClientAlertInterruptsPeer(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := newEnv(t, cfg)
		bindIPC(t, e.k, e.s, e.s)
		const srvBuf = dataBase + 0x2000
		// Server: accept, then wait for more data that never comes; the
		// client's alert breaks it out with EINTR.
		srv := prog.New(codeBase + 0x8000)
		srv.IPCWaitReceive(srvBuf, 64, psVA).
			Movi(6, dataBase).St(6, 0, 0).
			Halt()
		cli := prog.New(codeBase)
		cli.Movi(4, dataBase+0x1000).Movi(5, 1).St(4, 0, 5).
			IPCClientConnectSend(dataBase+0x1000, 1, refVA).
			ThreadSleepUS(2000).
			Syscall(sys.NIPCClientAlert).
			Movi(6, dataBase).St(6, 4, 0).
			ThreadSleepUS(1_000_000).
			Halt()
		if _, err := e.k.LoadImage(e.s, srv.Base(), srv.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		server := e.spawnAt(srv.Base(), 10)
		client := e.spawn(t, cli, 10)
		_ = client
		e.run(t, 900_000_000, server)
		if got := e.word(t, dataBase); got != uint32(sys.EINTR) {
			t.Fatalf("server errno %v, want EINTR (alert)", sys.Errno(got))
		}
		if got := e.word(t, dataBase+4); got != uint32(sys.EOK) {
			t.Fatalf("alert errno %v", sys.Errno(got))
		}
	})
}
