package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/prog"
	"repro/internal/sys"
)

// observeProgram exercises every instrumented hot path under all five
// configurations: a mutex handle on an untouched demand-zero page (soft
// fault + syscall restart), a run of null syscalls, a cond wait/signal
// rendezvous (voluntary block + wake), and a timed sleep (timer wake).
// Thread 2 enters at label "t2".
func observeProgram() *prog.Builder {
	const (
		mtx  = dataBase + 8*mem.PageSize // first touch of this page faults
		cnd  = dataBase + 0x104
		flag = dataBase + 0x200
	)
	b := prog.New(codeBase)
	b.MutexCreate(mtx).CondCreate(cnd).
		Null().Null().Null().
		MutexLock(mtx).
		Label("check").
		Movi(4, flag).Ld(5, 4, 0).
		Movi(6, 0)
	b.Bne(5, 6, "got")
	b.CondWait(cnd, mtx).
		Jmp("check").
		Label("got").
		MutexUnlock(mtx).
		Halt()
	b.Label("t2").
		ThreadSleepUS(500).
		MutexLock(mtx).
		Movi(4, flag).Movi(5, 1).St(4, 0, 5).
		CondSignal(cnd).
		MutexUnlock(mtx).
		Halt()
	return b
}

func runObserve(t *testing.T, cfg core.Config, instrument bool) *env {
	t.Helper()
	e := newEnv(t, cfg)
	if instrument {
		e.k.EnableMetrics()
	}
	b := observeProgram()
	t1 := e.spawn(t, b, 10)
	t2 := e.spawnAt(b.Addr("t2"), 10)
	e.run(t, 400_000_000, t1, t2)
	return e
}

// TestMetricsDoNotPerturbVirtualTime pins the observability contract:
// attaching a metrics registry never charges cycles, so the simulated
// timeline — and every Stats aggregate derived from it — is bit-identical
// with and without instrumentation.
func TestMetricsDoNotPerturbVirtualTime(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		plain := runObserve(t, cfg, false)
		inst := runObserve(t, cfg, true)
		if p, i := plain.k.Clock.Now(), inst.k.Clock.Now(); p != i {
			t.Fatalf("final virtual time diverged: plain=%d instrumented=%d", p, i)
		}
		pss, iss := plain.k.Stats(), inst.k.Stats()
		ps, is := &pss, &iss
		if ps.Syscalls != is.Syscalls || ps.ContextSwitches != is.ContextSwitches ||
			ps.Restarts != is.Restarts {
			t.Fatalf("event counts diverged: plain=%+v instrumented=%+v", ps, is)
		}
		if ps.UserCycles != is.UserCycles || ps.KernelCycles != is.KernelCycles ||
			ps.IdleCycles != is.IdleCycles {
			t.Fatalf("cycle accounting diverged: plain u=%d k=%d i=%d, instrumented u=%d k=%d i=%d",
				ps.UserCycles, ps.KernelCycles, ps.IdleCycles,
				is.UserCycles, is.KernelCycles, is.IdleCycles)
		}
	})
}

// TestMetricsMatchStats cross-checks every counter against the Stats
// aggregates the benchmark harness already trusts.
func TestMetricsMatchStats(t *testing.T) {
	// FaultCauseNames order: soft.client, soft.server, hard.client, hard.server.
	causeKeys := [core.NumFaultCauses]core.FaultKey{
		{Class: mmu.FaultSoft, Side: core.FaultSame},
		{Class: mmu.FaultSoft, Side: core.FaultCross},
		{Class: mmu.FaultHard, Side: core.FaultSame},
		{Class: mmu.FaultHard, Side: core.FaultCross},
	}
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		e := runObserve(t, cfg, true)
		es := e.k.Stats()
		m, st := e.k.Metrics, &es

		if got, want := m.CtxSwitches.Value(), st.ContextSwitches; got != want {
			t.Errorf("sched.context_switches = %d, Stats.ContextSwitches = %d", got, want)
		}
		if got, want := m.RestartsTotal.Value(), st.Restarts; got != want {
			t.Errorf("syscall.restarts = %d, Stats.Restarts = %d", got, want)
		}
		if got, want := m.PreemptsUser.Value(), st.PreemptsUser; got != want {
			t.Errorf("preempts.user_boundary = %d, Stats = %d", got, want)
		}
		if got, want := m.PreemptsPoint.Value(), st.PreemptsPoint; got != want {
			t.Errorf("preempts.explicit_point = %d, Stats = %d", got, want)
		}
		if got, want := m.PreemptsKernel.Value(), st.PreemptsKernel; got != want {
			t.Errorf("preempts.in_kernel = %d, Stats = %d", got, want)
		}

		// Null never blocks, so every dispatch episode completes and is
		// observed by the latency histogram.
		if got, want := m.SyscallLatency[sys.NNull].Count(), st.SyscallsByNum[sys.NNull]; got != want {
			t.Errorf("null latency observations = %d, SyscallsByNum = %d", got, want)
		}
		var observed uint64
		for n := 0; n < sys.NumSyscalls; n++ {
			observed += m.SyscallLatency[n].Count()
		}
		if observed == 0 || observed > st.Syscalls {
			t.Errorf("latency episodes observed = %d, Stats.Syscalls = %d", observed, st.Syscalls)
		}

		restarts := m.RestartsByCause()
		for i, key := range causeKeys {
			name := core.FaultCauseNames[i]
			if got, want := restarts[i], st.FaultCount[key]; got != want {
				t.Errorf("fault.restarts.%s = %d, Stats.FaultCount = %d", name, got, want)
			}
			if got, want := m.RollbackCycles[i].Value(), st.FaultRollback[key]; got != want {
				t.Errorf("fault.rollback_cycles.%s = %d, Stats.FaultRollback = %d", name, got, want)
			}
			if got, want := m.RemedyCycles[i].Value(), st.FaultRemedy[key]; got != want {
				t.Errorf("fault.remedy_cycles.%s = %d, Stats.FaultRemedy = %d", name, got, want)
			}
		}
		if restarts[0] == 0 {
			t.Error("workload should have produced at least one soft.client restart")
		}
		if m.FaultsFatal.Value() != 0 {
			t.Errorf("fault.fatal = %d, want 0", m.FaultsFatal.Value())
		}

		if m.Wakes.Value() == 0 {
			t.Error("no wakes counted despite sleep and cond_signal")
		}
		if got := m.ThreadsCreated.Value(); got != 2 {
			t.Errorf("threads.created = %d, want 2", got)
		}
		if got := m.ThreadsLive.Value(); got != 0 {
			t.Errorf("threads.live = %d after both exited, want 0", got)
		}
	})
}
