package core
