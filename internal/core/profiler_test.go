package core_test

// Tests for the cycle-accurate profiler and causal IPC spans (PR 6).
//
// The load-bearing invariant is double-entry accounting: the profiler is
// fed by mirroring the exact cycle counts at the seven Stats charge sites,
// so the attributed total must equal Stats.TotalCycles to the cycle — any
// charge site that forgets the mirror (or mirrors a different amount)
// breaks the equality. And because the profiler only reads the timeline,
// enabling it must leave user memory, Stats, and the virtual clock
// bit-identical.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/trace"
)

// TestProfilerEquivalence pins the observability tentpole invariant
// across all five paper configurations × NumCPUs {1,2,4} × both lock
// models: with the profiler and IPC spans enabled, observable memory,
// Stats, and the virtual-time frontier are bit-identical to the disabled
// run, and every attributed cycle sums exactly to Stats.TotalCycles.
// A third run per seed profiles with the threaded-code tier disabled:
// fused blocks must charge cycles to exactly the same
// (path × syscall × guest-PC) keys as single-step execution, so the
// folded profiles must be byte-identical.
func TestProfilerEquivalence(t *testing.T) {
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, base := range core.Configurations() {
		for _, ncpu := range []int{1, 2, 4} {
			for _, lm := range []core.LockModel{core.LockBig, core.LockPerSubsystem} {
				cfg := base
				cfg.NumCPUs = ncpu
				cfg.LockModel = lm
				t.Run(fmt.Sprintf("%s/cpus=%d/%s", base.Name(), ncpu, lm), func(t *testing.T) {
					for _, seed := range seeds {
						offMem, offK := runSeed(t, cfg, seed)
						on := cfg
						on.EnableProfiler = true
						on.EnableIPCSpans = true
						onMem, onK := runSeed(t, on, seed)
						if !bytes.Equal(onMem, offMem) {
							t.Fatalf("seed %d: observable memory differs with profiler on vs off", seed)
						}
						if onK.Now() != offK.Now() {
							t.Fatalf("seed %d: virtual time differs: on=%d off=%d",
								seed, onK.Now(), offK.Now())
						}
						if !reflect.DeepEqual(onK.Stats(), offK.Stats()) {
							t.Fatalf("seed %d: Stats differ with profiler on vs off:\non:  %+v\noff: %+v",
								seed, onK.Stats(), offK.Stats())
						}
						// Double-entry accounting: attributed == charged, exactly.
						snap := onK.ProfileSnapshot()
						if got, want := snap.TotalCycles(), onK.Stats().TotalCycles(); got != want {
							t.Fatalf("seed %d: attributed cycles %d != Stats.TotalCycles %d (drift %d)",
								seed, got, want, int64(want)-int64(got))
						}
						if snap.TotalCycles() == 0 {
							t.Fatalf("seed %d: profiler attributed nothing; test is vacuous", seed)
						}
						if offK.ProfileEnabled() {
							t.Fatalf("seed %d: disabled run grew a profiler", seed)
						}
						// Threaded code on vs off: identical attribution.
						noTC := on
						noTC.DisableThreadedCode = true
						_, noTCK := runSeed(t, noTC, seed)
						var tcF, noTCF bytes.Buffer
						if err := snap.WriteFolded(&tcF); err != nil {
							t.Fatal(err)
						}
						if err := noTCK.ProfileSnapshot().WriteFolded(&noTCF); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(tcF.Bytes(), noTCF.Bytes()) {
							t.Fatalf("seed %d: profile attribution differs with threaded code on vs off:\non:\n%s\noff:\n%s",
								seed, tcF.Bytes(), noTCF.Bytes())
						}
					}
				})
			}
		}
	}
}

// TestProfilerDeterministicPerSeed: the same seed and configuration must
// produce byte-identical folded stacks and pprof output on every run —
// the profile is a pure function of the simulated timeline.
func TestProfilerDeterministicPerSeed(t *testing.T) {
	cfg := core.Configurations()[0]
	cfg.EnableProfiler = true
	var folded, pb []byte
	for i := 0; i < 2; i++ {
		_, k := runSeed(t, cfg, 42)
		snap := k.ProfileSnapshot()
		var fb, pbuf bytes.Buffer
		if err := snap.WriteFolded(&fb); err != nil {
			t.Fatal(err)
		}
		if err := snap.WritePprof(&pbuf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			folded, pb = fb.Bytes(), pbuf.Bytes()
			if len(folded) == 0 {
				t.Fatal("empty folded output")
			}
			continue
		}
		if !bytes.Equal(fb.Bytes(), folded) {
			t.Fatal("folded output differs between identical runs")
		}
		if !bytes.Equal(pbuf.Bytes(), pb) {
			t.Fatal("pprof output differs between identical runs")
		}
	}
}

// TestProfilerAttributesIPCPaths: a syscall-heavy echo workload must show
// up in the profile — samples tagged with ipc_* syscalls, the IPC copy
// path, and the syscall entry path all present, and the pprof encoding
// round-trips through the decoder with the same total.
func TestProfilerAttributesIPCPaths(t *testing.T) {
	cfg := core.Configurations()[0]
	cfg.EnableProfiler = true
	// The fast path carries the 1-word echo messages in registers with no
	// per-word charge, leaving nothing for PathIPCCopy to attribute; turn
	// it off so the copy loop pays (and the profiler sees) CycCopyWord.
	cfg.DisableIPCFastPath = true
	_, k := runSeed(t, cfg, 7)
	snap := k.ProfileSnapshot()
	var sawIPCSys, sawCopy, sawEntry bool
	for _, s := range snap.Samples {
		if len(s.SysName()) > 4 && s.SysName()[:4] == "ipc_" {
			sawIPCSys = true
		}
		if s.Path == profile.PathIPCCopy {
			sawCopy = true
		}
		if s.Path == profile.PathSyscallEntry {
			sawEntry = true
		}
	}
	if !sawIPCSys || !sawCopy || !sawEntry {
		t.Fatalf("missing attribution: ipcSys=%v copy=%v entry=%v", sawIPCSys, sawCopy, sawEntry)
	}
	var pbuf bytes.Buffer
	if err := snap.WritePprof(&pbuf); err != nil {
		t.Fatal(err)
	}
	dec, err := profile.DecodePprof(pbuf.Bytes())
	if err != nil {
		t.Fatalf("pprof round-trip: %v", err)
	}
	var decTotal uint64
	for _, d := range dec {
		decTotal += uint64(d.Cycles)
	}
	if decTotal != snap.TotalCycles() {
		t.Fatalf("decoded total %d != snapshot total %d", decTotal, snap.TotalCycles())
	}
}

// TestIPCSpanFlowEvents runs a three-round echo RPC with spans enabled
// and checks the causal chain: every span begins exactly once and ends
// exactly once, with its begin first and end last, and the client→server
// hop (copy or wake) appears in between on the request spans.
func TestIPCSpanFlowEvents(t *testing.T) {
	cfg := core.Config{Model: core.ModelInterrupt, EnableIPCSpans: true}
	e := newEnv(t, cfg)
	e.k.Tracer = trace.NewRing(1 << 16)
	bindIPC(t, e.k, e.s, e.s)

	const (
		sbuf = dataBase + 0x100
		rbuf = dataBase + 0x200
		ebuf = dataBase + 0x300
		erep = dataBase + 0x380
	)
	b := prog.New(codeBase)
	b.Label("echo").
		IPCWaitReceive(ebuf, 2, psVA).
		Label("echo.loop").
		Movi(4, ebuf).Ld(5, 4, 0).Add(5, 5, 5).
		Movi(4, erep).St(4, 0, 5).
		IPCReplyWaitReceive(erep, 1, psVA, ebuf, 2).
		Jmp("echo.loop")
	b.Label("client")
	for i := 0; i < 3; i++ {
		b.Movi(4, sbuf).Movi(5, uint32(100+i)).St(4, 0, 5).
			IPCClientConnectSendOverReceive(sbuf, 1, refVA, rbuf, 1).
			IPCClientDisconnect()
	}
	b.Halt()
	img := b.MustAssemble()
	if _, err := e.k.LoadImage(e.s, codeBase, img); err != nil {
		t.Fatal(err)
	}
	e.spawnAt(b.Addr("echo"), 12)
	cl := e.spawnAt(b.Addr("client"), 10)
	e.run(t, 1_000_000_000, cl)

	type spanStat struct {
		begins, ends, hops int
		firstBegin         bool // FlowBegin was this span's first event
	}
	spans := map[uint32]*spanStat{}
	for _, ev := range e.k.Tracer.Events() {
		if ev.Kind != trace.Flow {
			continue
		}
		st := spans[ev.A]
		if st == nil {
			st = &spanStat{firstBegin: ev.B == trace.FlowBegin}
			spans[ev.A] = st
		}
		switch ev.B {
		case trace.FlowBegin:
			st.begins++
		case trace.FlowEnd:
			st.ends++
			if st.begins != 1 {
				t.Fatalf("span %d ended with %d begins", ev.A, st.begins)
			}
		case trace.FlowCopy, trace.FlowWake, trace.FlowHandoff, trace.FlowSteal:
			st.hops++
		}
	}
	if len(spans) < 3 {
		t.Fatalf("expected at least 3 spans (one per RPC round), got %d", len(spans))
	}
	hopSpans := 0
	for id, st := range spans {
		if st.begins != 1 || st.ends != 1 {
			t.Errorf("span %d: begins=%d ends=%d (want 1/1)", id, st.begins, st.ends)
		}
		if !st.firstBegin {
			t.Errorf("span %d: first flow event was not FlowBegin", id)
		}
		if st.hops > 0 {
			hopSpans++
		}
	}
	if hopSpans == 0 {
		t.Fatal("no span recorded a copy/wake/handoff hop; propagation is broken")
	}

	// Spans must not leak: no thread still owns one after quiescence.
	for _, th := range e.k.Threads() {
		if th.Span != 0 && th.SpanOwner {
			t.Fatalf("thread %d still owns span %d after quiescence", th.ID, th.Span)
		}
	}
}
