package core_test

// Core-level checks for the simulator fast paths: the page-run IPC copy
// (CopyWords via DirectWindow) must preserve exact word-granularity
// fault-out and roll-forward, and must observe fresh translations after a
// pager populates the faulted page.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/obj"
	"repro/internal/prog"
	"repro/internal/sys"
)

// Extra handle slots for the pager's private port/portset.
const (
	pgPortVA = core.KObjBase + 0x410
	pgPsVA   = core.KObjBase + 0x414
)

// TestIPCCopyFaultsIntoPagerBackedBuffer: the client streams four words
// into a server receive buffer that straddles two untouched pages of a
// pager-backed region. The bulk copy must fault out at the exact faulting
// word, queue the fault for the pager, and — after mem_allocate populates
// the page — restart with a fresh translation (the populated frame, not a
// stale window). Two pages means the sequence happens twice per transfer.
func TestIPCCopyFaultsIntoPagerBackedBuffer(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg core.Config) {
		k := core.New(cfg)
		sSrv := k.NewSpace()
		sCli := k.NewSpace()
		bindIPC(t, k, sSrv, sCli)

		mkData := func(s *obj.Space) {
			r, err := k.NewBoundRegion(s, kernelDataHandle(), dataSize, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := k.MapInto(s, r, dataBase, 0, dataSize, mmu.PermRW); err != nil {
				t.Fatal(err)
			}
		}
		mkData(sSrv)
		mkData(sCli)

		// The pager's own channel, separate from the IPC service port.
		po, _ := obj.New(sys.ObjPort)
		pso, _ := obj.New(sys.ObjPortset)
		pgPort := po.(*obj.Port)
		pgPs := pso.(*obj.Portset)
		if err := k.Bind(sSrv, pgPortVA, pgPort); err != nil {
			t.Fatal(err)
		}
		if err := k.Bind(sSrv, pgPsVA, pgPs); err != nil {
			t.Fatal(err)
		}
		pgPs.AddPort(pgPort)

		// A pager-backed region whose pages start absent.
		const pBase = 0x0100_0000
		reg, err := k.NewBoundRegion(sSrv, regVA, 8*mem.PageSize, false)
		if err != nil {
			t.Fatal(err)
		}
		k.AttachPager(reg, pgPort)
		if _, err := k.MapInto(sSrv, reg, pBase, 0, 8*mem.PageSize, mmu.PermRW); err != nil {
			t.Fatal(err)
		}

		// Receive buffer straddling the first two (absent) pages.
		const rbuf = pBase + mem.PageSize - 8

		srv := prog.New(codeBase)
		srv.IPCWaitReceive(rbuf, 4, psVA).
			Movi(4, rbuf).Movi(6, dataBase)
		for i := uint32(0); i < 4; i++ {
			srv.Ld(5, 4, i*4).St(6, i*4, 5)
		}
		srv.Halt()

		const fmBuf = dataBase + 0x2000
		pager := prog.New(codeBase + 0x8000)
		pager.Label("loop").
			IPCWaitReceive(fmBuf, 2, pgPsVA).
			Movi(1, regVA).
			Movi(4, fmBuf).Ld(2, 4, 0).
			Movi(3, 1).
			Syscall(sys.NMemAllocate).
			Jmp("loop")

		const cliBuf = dataBase + 0x1000
		cli := prog.New(codeBase)
		cli.Movi(4, cliBuf)
		for i, v := range []uint32{0x11, 0x22, 0x33, 0x44} {
			cli.Movi(5, v).St(4, uint32(i*4), 5)
		}
		cli.IPCClientConnectSend(cliBuf, 4, refVA).Halt()

		if _, err := k.LoadImage(sSrv, pager.Base(), pager.MustAssemble()); err != nil {
			t.Fatal(err)
		}
		pt := k.NewThread(sSrv, 15)
		pt.Regs.PC = pager.Base()
		k.StartThread(pt)
		srvTh, err := k.SpawnProgram(sSrv, codeBase, srv.MustAssemble(), 12)
		if err != nil {
			t.Fatal(err)
		}
		cliTh, err := k.SpawnProgram(sCli, codeBase, cli.MustAssemble(), 10)
		if err != nil {
			t.Fatal(err)
		}

		k.RunFor(400_000_000)
		if !cliTh.Exited || !srvTh.Exited {
			t.Fatalf("client exited=%v server exited=%v (srv pc=%#x state=%v)",
				cliTh.Exited, srvTh.Exited, srvTh.Regs.PC, srvTh.State)
		}
		got, err := k.ReadMem(sSrv, dataBase, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []byte{0x11, 0x22, 0x33, 0x44} {
			if got[i*4] != want {
				t.Fatalf("received word %d = %#x, want %#x", i, got[i*4], want)
			}
		}
		hard := k.Stats().FaultCount[core.FaultKey{Class: mmu.FaultHard, Side: core.FaultSame}] +
			k.Stats().FaultCount[core.FaultKey{Class: mmu.FaultHard, Side: core.FaultCross}]
		if hard < 2 {
			t.Fatalf("hard faults = %d, want >= 2 (one per straddled page)", hard)
		}
	})
}
