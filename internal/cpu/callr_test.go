package cpu

import "testing"

func TestCallRIndirect(t *testing.T) {
	m := &flatMem{data: make([]byte, 4096)}
	load(m,
		Instr{Op: OpMovi, Rd: 2, Imm: 4 * InstrSize}, // target
		Instr{Op: OpCallR, Rs: 2},
		Instr{Op: OpHalt}, // return lands here
		Instr{Op: OpNop},
		Instr{Op: OpMovi, Rd: 0, Imm: 7}, // fn:
		Instr{Op: OpRet},
	)
	var r Regs
	tr := run(t, &r, m, 100)
	if tr.Kind != TrapHalt || r.R[0] != 7 {
		t.Fatalf("trap=%v R0=%d", tr.Kind, r.R[0])
	}
	if r.R[LR] != 2*InstrSize {
		t.Fatalf("LR=%#x", r.R[LR])
	}
}

func TestBrkAdvancesPC(t *testing.T) {
	m := &flatMem{data: make([]byte, 4096)}
	load(m,
		Instr{Op: OpBrk},
		Instr{Op: OpHalt},
	)
	var r Regs
	_, tr := Step(&r, m)
	if tr.Kind != TrapBreak {
		t.Fatalf("trap=%v", tr.Kind)
	}
	if r.PC != InstrSize {
		t.Fatalf("PC=%#x, want past the brk", r.PC)
	}
}

func TestFetchFaultReportsExec(t *testing.T) {
	m := &flatMem{data: make([]byte, 64)}
	var r Regs
	r.PC = 4096 // out of range
	_, tr := Step(&r, m)
	if tr.Kind != TrapFault || tr.Fault.Access != Exec {
		t.Fatalf("trap=%v fault=%+v", tr.Kind, tr.Fault)
	}
}
