// Package cpu implements the simulated processor the Fluke reproduction
// runs user code on: an explicit register file, a small fixed-width ISA,
// precise traps, and a cycle-charging interpreter.
//
// The design deliberately mirrors the properties the paper leans on:
//
//   - All user-visible thread state is the register file plus memory. A
//     thread's registers are its continuation (paper §5.1).
//   - Two "pseudo-registers" PR0/PR1 extend the architectural state, exactly
//     as Fluke added pseudo-registers on the register-starved x86 (§4.4).
//   - System calls are entered by transferring control into a reserved
//     syscall-entry page; the entry address names the operation, so the
//     kernel can re-point a thread at a different entrypoint by rewriting
//     its PC (the cond_wait → mutex_lock trick of §4.3).
//   - Faults are precise: when a load/store faults, the PC still points at
//     the faulting instruction and no architectural state has changed, like
//     the restartable string instructions of §4.2.
package cpu

import "fmt"

// Access describes the kind of memory access that faulted.
type Access uint8

const (
	// Read is a data load.
	Read Access = iota
	// Write is a data store.
	Write
	// Exec is an instruction fetch.
	Exec
)

func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Exec:
		return "exec"
	}
	return "access?"
}

// Fault describes a memory access the MMU could not translate. A nil *Fault
// means success.
type Fault struct {
	VA     uint32
	Access Access
}

func (f *Fault) Error() string {
	return fmt.Sprintf("fault: %s at %#x", f.Access, f.VA)
}

// Memory is the CPU's view of the current address space. Implementations
// (the MMU) return a Fault when a translation is missing; the CPU turns it
// into a precise trap.
type Memory interface {
	Load32(va uint32) (uint32, *Fault)
	Store32(va uint32, v uint32) *Fault
	Load8(va uint32) (byte, *Fault)
	Store8(va uint32, v byte) *Fault
	Fetch32(va uint32) (uint32, *Fault)
}

// NumRegs is the number of general-purpose registers.
const NumRegs = 8

// LR is the conventional link register (holds the return address after
// CALL, and the user-mode resume address during a system call).
const LR = 7

// Regs is the complete explicit user-visible state of a thread, exportable
// and restorable at any time (the "correctness" property of §4.1). PR0 and
// PR1 are the kernel-implemented pseudo-registers that carry intermediate
// IPC state in the exported thread state (§4.4).
type Regs struct {
	PC    uint32
	SP    uint32
	R     [NumRegs]uint32
	PR0   uint32
	PR1   uint32
	Flags uint32
}

// SyscallBase is the virtual address of the system-call entry page. A
// control transfer to SyscallBase + n*InstrSize invokes system call n.
// User code reaches it with CALL, which leaves the resume address in LR.
const SyscallBase uint32 = 0xFFF0_0000

// MaxSyscalls bounds the number of entrypoints in the syscall page.
const MaxSyscalls = 256

// InstrSize is the size of one encoded instruction in bytes: one opcode
// word and one immediate word.
const InstrSize = 8

// SyscallEntry returns the entry address for syscall n.
func SyscallEntry(n int) uint32 {
	if n < 0 || n >= MaxSyscalls {
		panic(fmt.Sprintf("cpu: syscall number %d out of range", n))
	}
	return SyscallBase + uint32(n)*InstrSize
}

// SyscallNum returns the syscall number a PC in the entry page names, or -1.
func SyscallNum(pc uint32) int {
	if pc < SyscallBase || pc >= SyscallBase+MaxSyscalls*InstrSize {
		return -1
	}
	if (pc-SyscallBase)%InstrSize != 0 {
		return -1
	}
	return int(pc-SyscallBase) / InstrSize
}

// TrapKind classifies why the interpreter stopped.
type TrapKind uint8

const (
	// TrapNone: the instruction retired normally.
	TrapNone TrapKind = iota
	// TrapSyscall: control transferred into the syscall entry page.
	TrapSyscall
	// TrapFault: a precise memory fault; Regs unchanged, PC at the
	// faulting instruction.
	TrapFault
	// TrapHalt: the thread executed HALT (thread exit).
	TrapHalt
	// TrapBreak: BRK instruction (debugger breakpoint).
	TrapBreak
	// TrapIllegal: undecodable instruction.
	TrapIllegal
)

func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapSyscall:
		return "syscall"
	case TrapFault:
		return "fault"
	case TrapHalt:
		return "halt"
	case TrapBreak:
		return "break"
	case TrapIllegal:
		return "illegal"
	}
	return "trap?"
}

// Trap is the outcome of one Step.
type Trap struct {
	Kind  TrapKind
	Sys   int   // syscall number when Kind == TrapSyscall
	Fault Fault // fault details when Kind == TrapFault
}

// Per-instruction cycle costs, chosen so realistic instruction mixes run at
// roughly 1 cycle/instruction with memory operations costing extra, like
// the in-order Pentium Pro pipeline the paper measured on (in spirit).
const (
	CycInstr = 1 // base cost of any instruction
	CycMem   = 2 // additional cost of a data memory access
	CycBr    = 1 // additional cost of a taken branch
)

// Step executes exactly one instruction of the thread whose register file
// is r against memory m. It returns the cycles consumed and the trap that
// ended the instruction (TrapNone for normal retirement).
//
// Faults are precise: on TrapFault no register has been modified and r.PC
// still addresses the faulting instruction, so resolving the fault and
// re-entering Step resumes transparently.
func Step(r *Regs, m Memory) (uint64, Trap) {
	if n := SyscallNum(r.PC); n >= 0 {
		return 0, Trap{Kind: TrapSyscall, Sys: n}
	}
	w0, f := m.Fetch32(r.PC)
	if f != nil {
		return CycInstr, Trap{Kind: TrapFault, Fault: *f}
	}
	imm, f := m.Fetch32(r.PC + 4)
	if f != nil {
		return CycInstr, Trap{Kind: TrapFault, Fault: *f}
	}
	op := Opcode(w0 >> 24)
	rd := int(w0>>20) & 0xF
	rs := int(w0>>16) & 0xF
	rt := int(w0>>12) & 0xF
	if rd >= NumRegs || rs >= NumRegs || rt >= NumRegs {
		return CycInstr, Trap{Kind: TrapIllegal}
	}
	next := r.PC + InstrSize
	cycles := uint64(CycInstr)

	switch op {
	case OpNop:
	case OpHalt:
		return cycles, Trap{Kind: TrapHalt}
	case OpBrk:
		r.PC = next
		return cycles, Trap{Kind: TrapBreak}
	case OpMovi:
		r.R[rd] = imm
	case OpMov:
		r.R[rd] = r.R[rs]
	case OpAdd:
		r.R[rd] = r.R[rs] + r.R[rt]
	case OpSub:
		r.R[rd] = r.R[rs] - r.R[rt]
	case OpAnd:
		r.R[rd] = r.R[rs] & r.R[rt]
	case OpOr:
		r.R[rd] = r.R[rs] | r.R[rt]
	case OpXor:
		r.R[rd] = r.R[rs] ^ r.R[rt]
	case OpShl:
		r.R[rd] = r.R[rs] << (r.R[rt] & 31)
	case OpShr:
		r.R[rd] = r.R[rs] >> (r.R[rt] & 31)
	case OpMul:
		r.R[rd] = r.R[rs] * r.R[rt]
		cycles += 3
	case OpAddi:
		r.R[rd] = r.R[rs] + imm
	case OpLd:
		v, f := m.Load32(r.R[rs] + imm)
		if f != nil {
			return cycles, Trap{Kind: TrapFault, Fault: *f}
		}
		r.R[rd] = v
		cycles += CycMem
	case OpSt:
		if f := m.Store32(r.R[rs]+imm, r.R[rt]); f != nil {
			return cycles, Trap{Kind: TrapFault, Fault: *f}
		}
		cycles += CycMem
	case OpLdb:
		v, f := m.Load8(r.R[rs] + imm)
		if f != nil {
			return cycles, Trap{Kind: TrapFault, Fault: *f}
		}
		r.R[rd] = uint32(v)
		cycles += CycMem
	case OpStb:
		if f := m.Store8(r.R[rs]+imm, byte(r.R[rt])); f != nil {
			return cycles, Trap{Kind: TrapFault, Fault: *f}
		}
		cycles += CycMem
	case OpBeq:
		if r.R[rs] == r.R[rt] {
			next = imm
			cycles += CycBr
		}
	case OpBne:
		if r.R[rs] != r.R[rt] {
			next = imm
			cycles += CycBr
		}
	case OpBlt:
		if r.R[rs] < r.R[rt] {
			next = imm
			cycles += CycBr
		}
	case OpBge:
		if r.R[rs] >= r.R[rt] {
			next = imm
			cycles += CycBr
		}
	case OpJmp:
		next = imm
		cycles += CycBr
	case OpCall:
		r.R[LR] = next
		next = imm
		cycles += CycBr
	case OpCallR:
		r.R[LR] = next
		next = r.R[rs]
		cycles += CycBr
	case OpRet:
		next = r.R[LR]
		cycles += CycBr
	default:
		return cycles, Trap{Kind: TrapIllegal}
	}
	r.PC = next
	return cycles, Trap{Kind: TrapNone}
}

// Opcode identifies an instruction.
type Opcode uint8

// The instruction set. Two words per instruction:
//
//	word0: opcode(8) | rd(4) | rs(4) | rt(4) | reserved(12)
//	word1: imm(32)
const (
	OpNop Opcode = iota
	OpHalt
	OpBrk
	OpMovi // rd = imm
	OpMov  // rd = rs
	OpAdd  // rd = rs + rt
	OpSub  // rd = rs - rt
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMul
	OpAddi // rd = rs + imm
	OpLd   // rd = mem32[rs+imm]
	OpSt   // mem32[rs+imm] = rt
	OpLdb  // rd = mem8[rs+imm]
	OpStb  // mem8[rs+imm] = rt (low byte)
	OpBeq  // if rs == rt: PC = imm
	OpBne
	OpBlt  // unsigned <
	OpBge  // unsigned >=
	OpJmp  // PC = imm
	OpCall // LR = PC+8; PC = imm
	OpCallR
	OpRet // PC = LR
	opMax
)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt", OpBrk: "brk", OpMovi: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpMul: "mul", OpAddi: "addi",
	OpLd: "ld", OpSt: "st", OpLdb: "ldb", OpStb: "stb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpCall: "call", OpCallR: "callr", OpRet: "ret",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Instr is a decoded instruction, used by the assembler in internal/prog
// and by the disassembler.
type Instr struct {
	Op         Opcode
	Rd, Rs, Rt int
	Imm        uint32
}

// Encode packs the instruction into its two memory words.
func (i Instr) Encode() (uint32, uint32) {
	w0 := uint32(i.Op)<<24 | uint32(i.Rd&0xF)<<20 | uint32(i.Rs&0xF)<<16 | uint32(i.Rt&0xF)<<12
	return w0, i.Imm
}

// Decode unpacks two memory words into an instruction.
func Decode(w0, imm uint32) Instr {
	return Instr{
		Op:  Opcode(w0 >> 24),
		Rd:  int(w0>>20) & 0xF,
		Rs:  int(w0>>16) & 0xF,
		Rt:  int(w0>>12) & 0xF,
		Imm: imm,
	}
}

func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt, OpBrk, OpRet:
		return i.Op.String()
	case OpMovi:
		return fmt.Sprintf("movi r%d, %#x", i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Rs)
	case OpAddi:
		return fmt.Sprintf("addi r%d, r%d, %#x", i.Rd, i.Rs, i.Imm)
	case OpLd, OpLdb:
		return fmt.Sprintf("%s r%d, [r%d+%#x]", i.Op, i.Rd, i.Rs, i.Imm)
	case OpSt, OpStb:
		return fmt.Sprintf("%s [r%d+%#x], r%d", i.Op, i.Rs, i.Imm, i.Rt)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %#x", i.Op, i.Rs, i.Rt, i.Imm)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %#x", i.Op, i.Imm)
	case OpCallR:
		return fmt.Sprintf("callr r%d", i.Rs)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	}
}
