// Simulator fast path: a per-page decoded-instruction cache and a batch
// interpreter (StepN) that executes straight-line and loop code without
// re-fetching or re-decoding retired instructions.
//
// Correctness contract: StepN(r, m, n) must be observably identical to
// calling Step(r, m) repeatedly until a trap occurs or the accumulated
// cycles reach n — same register file, same memory writes, same cycle
// total, same trap. The caches here change only wall-clock cost, never
// simulated state: they are invisible to virtual time.
package cpu

import "repro/internal/mem"

// decSlots is one decode slot per possible (4-byte aligned) instruction
// start in a page. The last slot is never cached: its immediate word lives
// in the next page, so it always takes the Step slow path.
const decSlots = mem.PageSize / 4

// decIllegal marks a slot whose words do not decode to a valid
// instruction (bad opcode or register field); executing it raises
// TrapIllegal, exactly as Step would.
const decIllegal = 0xFF

// decoded is one pre-decoded instruction. op1 is Opcode+1 so the zero
// value means "not decoded yet" (a real OpNop decodes to op1 == 1).
type decoded struct {
	op1        uint8
	rd, rs, rt uint8
	imm        uint32
}

// DecodedPage caches the decoded instructions of one executable page. It
// validates against the backing frame's store generation: any write to the
// frame (through the MMU, DMA, or frame recycling) bumps the generation
// and makes the page stale, so self-modifying code can never execute a
// stale decode.
//
// Alongside the decode slots it caches fused blocks (threaded.go), one
// per possible entry slot, dropped by the same Reset: the store
// generation is the single invalidation signal for both tiers.
type DecodedPage struct {
	slots [decSlots]decoded
	gen   *uint64 // the backing frame's store-generation counter
	snap  uint64  // generation when the slots were (re)initialized

	// NoBlocks disables the threaded-code tier for this page (set by the
	// owner after Reset when Config.DisableThreadedCode is on).
	NoBlocks bool
	blocks   [decSlots]*block // fused blocks keyed by entry slot
	built    int              // real blocks in blocks (excludes noBlock)
}

// Reset drops all cached decodes and fused blocks and revalidates the
// page against gen. NoBlocks is sticky: the owner decides it per space,
// not per generation.
func (p *DecodedPage) Reset(gen *uint64) {
	clear(p.slots[:])
	clear(p.blocks[:])
	p.built = 0
	p.gen = gen
	p.snap = *gen
}

// BuiltBlocks returns the number of fused blocks currently cached, so
// callers about to Reset the page can account the invalidations.
func (p *DecodedPage) BuiltBlocks() int { return p.built }

// Stale reports whether the backing frame has been written since Reset.
func (p *DecodedPage) Stale() bool { return *p.gen != p.snap }

// DecodedSource is the memory view StepN runs against: ordinary Memory
// plus a probe for the decoded-page cache. DecodedPageFor must be a pure
// probe — no faults counted, no translations installed — and may return
// nil to force the Step slow path for that page. ExecStats returns the
// source's decode/block counters; it must be non-nil and stable for the
// duration of a StepN call.
type DecodedSource interface {
	Memory
	DecodedPageFor(pc uint32) *DecodedPage
	ExecStats() *ExecStats
}

// syscallSpan is the byte size of the syscall entry page's active window.
const syscallSpan = MaxSyscalls * InstrSize

// StepN executes instructions until a trap occurs or the accumulated
// cycle count reaches maxCycles, and returns the cycles consumed, the
// number of normally-retired instructions, and the ending trap (TrapNone
// when the cycle budget ended the batch). It is observably identical to a
// Step loop with the same budget; see the package comment.
//
// retired counts only TrapNone retirements — a trapping instruction is
// not "retired" even when (like BRK) it advances the PC.
func StepN(r *Regs, m DecodedSource, maxCycles uint64) (uint64, uint64, Trap) {
	var cycles, retired uint64
	var dp *DecodedPage
	st := m.ExecStats()
	pageVPN := ^uint32(0)
	// pc shadows r.PC across the loop; every return path writes it back
	// (r.PC = pc) so the register file is always consistent on exit.
	pc := r.PC

	for {
		// Page-crossing work hoists out of the straight-line path: the
		// syscall-page check need only run when the VPN changes, because
		// control can only enter the syscall page by crossing into it
		// (and pageVPN starts invalid, so batch entry always checks).
		// Staleness is checked by DecodedPageFor at acquisition and
		// re-checked after every store — the only in-batch event that
		// can change a frame's store generation.
		if vpn := pc >> mem.PageShift; dp == nil || vpn != pageVPN {
			if pc-SyscallBase < syscallSpan {
				if n := SyscallNum(pc); n >= 0 {
					r.PC = pc
					return cycles, retired, Trap{Kind: TrapSyscall, Sys: n}
				}
			}
			dp = m.DecodedPageFor(pc)
			pageVPN = vpn
		}

		slot := (pc >> 2) & (decSlots - 1)
		if dp == nil || pc&3 != 0 || slot == decSlots-1 {
			// Slow path: no decode cache for this page, misaligned PC
			// (Fetch32 must raise the fault), or an instruction whose
			// immediate straddles into the next page.
			r.PC = pc
			cyc, trap := Step(r, m)
			pc = r.PC
			dp = nil // a slow-path store may have dirtied any page
			if trap.Kind != TrapNone {
				return cycles + cyc, retired, trap
			}
			cycles += cyc
			retired++
			if cycles >= maxCycles {
				return cycles, retired, Trap{Kind: TrapNone}
			}
			continue
		}

		// Threaded-code tier: run a fused block when one exists (building
		// it on first visit) and the remaining budget covers its worst
		// case. Anything else — un-fusable entries, tight budgets, block
		// tails after a stale-store bail — falls through to the
		// single-step path below, which shares dp.slots with the builder.
		if !dp.NoBlocks {
			b := dp.blocks[slot]
			if b == nil {
				b = dp.buildBlock(m, st, pc, slot)
			}
			if b.maxCyc != 0 {
				if cycles+b.maxCyc <= maxCycles {
					cyc, ret, hits, next, out, trap := b.run(r, m, dp, maxCycles-cycles)
					st.BlockHits += hits
					cycles += cyc
					retired += ret
					if out == blockTrap {
						return cycles, retired, trap
					}
					pc = next
					if out == blockStale {
						// The block stored into its own page: committed
						// through that store, now re-validate before
						// decoding another word.
						st.BlockBails++
						dp = nil
					}
					if cycles >= maxCycles {
						r.PC = pc
						return cycles, retired, Trap{Kind: TrapNone}
					}
					continue
				}
				// Budget cannot cover the worst case: single-step the
				// tail so a timer deadline or stopAt lands cycle-exact.
				st.BlockBails++
			}
		}

		d := &dp.slots[slot]
		if d.op1 == 0 {
			r.PC = pc
			w0, f := m.Fetch32(pc)
			if f != nil {
				return cycles + CycInstr, retired, Trap{Kind: TrapFault, Fault: *f}
			}
			imm, f := m.Fetch32(pc + 4)
			if f != nil {
				return cycles + CycInstr, retired, Trap{Kind: TrapFault, Fault: *f}
			}
			op := uint8(w0 >> 24)
			rd := uint8(w0>>20) & 0xF
			rs := uint8(w0>>16) & 0xF
			rt := uint8(w0>>12) & 0xF
			if op >= uint8(opMax) || rd >= NumRegs || rs >= NumRegs || rt >= NumRegs {
				*d = decoded{op1: decIllegal}
			} else {
				*d = decoded{op1: op + 1, rd: rd, rs: rs, rt: rt, imm: imm}
			}
		}

		rd, rs, rt := int(d.rd), int(d.rs), int(d.rt)
		imm := d.imm
		next := pc + InstrSize
		c := uint64(CycInstr)

		switch Opcode(d.op1 - 1) {
		case OpNop:
		case OpHalt:
			r.PC = pc
			return cycles + c, retired, Trap{Kind: TrapHalt}
		case OpBrk:
			r.PC = next
			return cycles + c, retired, Trap{Kind: TrapBreak}
		case OpMovi:
			r.R[rd] = imm
		case OpMov:
			r.R[rd] = r.R[rs]
		case OpAdd:
			r.R[rd] = r.R[rs] + r.R[rt]
		case OpSub:
			r.R[rd] = r.R[rs] - r.R[rt]
		case OpAnd:
			r.R[rd] = r.R[rs] & r.R[rt]
		case OpOr:
			r.R[rd] = r.R[rs] | r.R[rt]
		case OpXor:
			r.R[rd] = r.R[rs] ^ r.R[rt]
		case OpShl:
			r.R[rd] = r.R[rs] << (r.R[rt] & 31)
		case OpShr:
			r.R[rd] = r.R[rs] >> (r.R[rt] & 31)
		case OpMul:
			r.R[rd] = r.R[rs] * r.R[rt]
			c += 3
		case OpAddi:
			r.R[rd] = r.R[rs] + imm
		case OpLd:
			v, f := m.Load32(r.R[rs] + imm)
			if f != nil {
				r.PC = pc
				return cycles + c, retired, Trap{Kind: TrapFault, Fault: *f}
			}
			r.R[rd] = v
			c += CycMem
		case OpSt:
			if f := m.Store32(r.R[rs]+imm, r.R[rt]); f != nil {
				r.PC = pc
				return cycles + c, retired, Trap{Kind: TrapFault, Fault: *f}
			}
			c += CycMem
			if dp.Stale() {
				dp = nil // self-modifying store: re-validate the page
			}
		case OpLdb:
			v, f := m.Load8(r.R[rs] + imm)
			if f != nil {
				r.PC = pc
				return cycles + c, retired, Trap{Kind: TrapFault, Fault: *f}
			}
			r.R[rd] = uint32(v)
			c += CycMem
		case OpStb:
			if f := m.Store8(r.R[rs]+imm, byte(r.R[rt])); f != nil {
				r.PC = pc
				return cycles + c, retired, Trap{Kind: TrapFault, Fault: *f}
			}
			c += CycMem
			if dp.Stale() {
				dp = nil
			}
		case OpBeq:
			if r.R[rs] == r.R[rt] {
				next = imm
				c += CycBr
			}
		case OpBne:
			if r.R[rs] != r.R[rt] {
				next = imm
				c += CycBr
			}
		case OpBlt:
			if r.R[rs] < r.R[rt] {
				next = imm
				c += CycBr
			}
		case OpBge:
			if r.R[rs] >= r.R[rt] {
				next = imm
				c += CycBr
			}
		case OpJmp:
			next = imm
			c += CycBr
		case OpCall:
			r.R[LR] = next
			next = imm
			c += CycBr
		case OpCallR:
			r.R[LR] = next
			next = r.R[rs]
			c += CycBr
		case OpRet:
			next = r.R[LR]
			c += CycBr
		default: // decIllegal
			r.PC = pc
			return cycles + CycInstr, retired, Trap{Kind: TrapIllegal}
		}

		pc = next
		cycles += c
		retired++
		if cycles >= maxCycles {
			r.PC = pc
			return cycles, retired, Trap{Kind: TrapNone}
		}
	}
}
