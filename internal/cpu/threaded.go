// Threaded-code tier: superinstruction fusion of straight-line runs.
//
// On top of the per-page decode cache (fastpath.go), a block builder
// walks from an entry PC to the next control transfer (branch, call,
// return), halt/break/illegal instruction, or page boundary, and fuses
// the run into a block: a flat slice of pre-decoded instructions executed
// back to back with one cycle-budget check before entry and one trap
// check at the end. Fused execution skips the per-instruction dispatch
// overhead of StepN's switch loop — no page/slot lookup, no budget
// compare, no cycle accumulation per retired instruction (costs are
// precomputed as prefix sums).
//
// Blocks are cached per DecodedPage alongside the decode slots, so the
// existing frame store-generation machinery invalidates them for free:
// self-modifying code, DMA writes, and frame recycling all bump the
// generation, DecodedPageFor resets the page, and Reset drops blocks
// together with the slots. A store *inside* a block re-checks staleness
// immediately (the only in-block event that can dirty code) and bails to
// single-step at the next instruction boundary, cycle-exact.
//
// The correctness contract is the same as StepN's: bit-identical
// registers, memory, cycles, and traps versus a Step loop. The budget
// gate makes this easy to see: a block runs only when the remaining
// budget covers its worst-case cycles, and since every instruction costs
// at least one cycle, every intermediate boundary inside the block is
// strictly below the budget — the reference loop would not have stopped
// there either. Tails that would cross the budget fall back to the
// single-step path.
package cpu

import "repro/internal/mem"

// ExecStats counts decode-cache and threaded-code events for one
// DecodedSource. Counters are monotonic and host-side only: they are
// diagnostics, never inputs to simulated state.
type ExecStats struct {
	PagesDecoded       uint64 // DecodedPage resets for new/changed pages
	StaleResets        uint64 // resets forced by a store-generation bump
	BlocksBuilt        uint64 // fused blocks compiled
	BlockHits          uint64 // fused block executions
	BlockBails         uint64 // block runs cut short or skipped (budget, stale store)
	BlockInvalidations uint64 // built blocks dropped by a page reset
}

// Add accumulates other into s (for kernel-wide aggregation).
func (s *ExecStats) Add(o *ExecStats) {
	s.PagesDecoded += o.PagesDecoded
	s.StaleResets += o.StaleResets
	s.BlocksBuilt += o.BlocksBuilt
	s.BlockHits += o.BlockHits
	s.BlockBails += o.BlockBails
	s.BlockInvalidations += o.BlockInvalidations
}

// block is one fused straight-line run. body holds the non-control
// instructions in order; term, when termOp != 0, is the single control
// instruction (branch/jump/call/ret) that ends the run. pfx[i] is the
// exact cycle cost of body[0..i-1], so a fault or stale-store bail at
// body index i charges pfx[i] (+CycInstr for the faulting op) without
// per-instruction accumulation. maxCyc is the worst-case cost of the
// whole block (body + terminator with its taken-branch surcharge); the
// zero value (the noBlock sentinel) is never runnable since every real
// block costs at least one cycle.
type block struct {
	body   []decoded
	pfx    []uint16 // len(body)+1 prefix cycle sums; pfx[len(body)] = body total
	term   decoded
	termOp Opcode // valid iff != 0 (OpNop can never terminate a block)
	entry  uint32 // PC of body[0]
	endPC  uint32 // PC after the body: the terminator's PC, or the resume PC
	maxCyc uint64

	// Accumulator-loop superinstruction (see specializeAcc): when accOp
	// != 0 the whole block is `acc = acc OP src; branch back while COND`
	// and runAcc executes it with the live values in scalars, free of
	// the register-array store/load dependency chain that limits the
	// generic walk.
	accOp     Opcode // normalized body op (OpAddi folds into OpAdd)
	accSrcImm bool   // src is d.imm rather than a register
	accEq     bool   // terminator compares ==/!= (else </>=)
	accWant   bool   // loop continues while compare == accWant
}

// noBlock marks entries where fusion is pointless (a control transfer,
// halt/break/illegal, or page-straddling first instruction): maxCyc == 0
// keeps it un-runnable and the dispatch loop falls through to
// single-step immediately.
var noBlock = &block{}

// maxBlockLen caps a block's body so worst-case cost stays well under
// typical batch budgets; a page holds at most PageSize/InstrSize = 512
// instructions anyway.
const maxBlockLen = 256

// minBlockLen is the minimum fused run (body + terminator) worth a
// block; shorter runs stay on the single-step path (see buildBlock).
const minBlockLen = 3

// instrCost returns the static cycle cost of a fused body instruction.
func instrCost(op Opcode) uint16 {
	switch op {
	case OpLd, OpSt, OpLdb, OpStb:
		return CycInstr + CycMem
	case OpMul:
		return CycInstr + 3
	}
	return CycInstr
}

// isControl reports whether op transfers control (ends a block as its
// terminator).
func isControl(op Opcode) bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall, OpCallR, OpRet:
		return true
	}
	return false
}

// decodeSlot fills d from the two instruction words at pc, marking the
// slot decIllegal when they do not form a valid instruction. It reports
// whether the fetch succeeded; a fetch fault leaves d untouched so the
// single-step path raises the fault with full precision.
func decodeSlot(m DecodedSource, pc uint32, d *decoded) bool {
	w0, f := m.Fetch32(pc)
	if f != nil {
		return false
	}
	imm, f := m.Fetch32(pc + 4)
	if f != nil {
		return false
	}
	op := uint8(w0 >> 24)
	rd := uint8(w0>>20) & 0xF
	rs := uint8(w0>>16) & 0xF
	rt := uint8(w0>>12) & 0xF
	if op >= uint8(opMax) || rd >= NumRegs || rs >= NumRegs || rt >= NumRegs {
		*d = decoded{op1: decIllegal}
	} else {
		*d = decoded{op1: op + 1, rd: rd, rs: rs, rt: rt, imm: imm}
	}
	return true
}

// buildBlock fuses the straight-line run starting at pc into a block,
// caches it in p.blocks[slot], and returns it. Unfusable entries cache
// the noBlock sentinel so the walk happens once per slot per page
// generation. The walk shares p.slots with the single-step path: every
// instruction it decodes lands in the decode cache too.
//
// All fetches stay within pc's page, whose executable translation the
// caller just validated via DecodedPageFor, so they cannot fault in
// practice; if one does anyway the walk simply stops and single-step
// execution raises the fault precisely.
func (p *DecodedPage) buildBlock(m DecodedSource, st *ExecStats, pc uint32, slot uint32) *block {
	b := &block{entry: pc}
	page := pc >> mem.PageShift
	cur := pc
	for len(b.body) < maxBlockLen {
		if cur>>mem.PageShift != page {
			break // next instruction starts on the next page
		}
		s := (cur >> 2) & (decSlots - 1)
		if s == decSlots-1 {
			break // immediate word straddles into the next page
		}
		d := &p.slots[s]
		if d.op1 == 0 && !decodeSlot(m, cur, d) {
			break
		}
		if d.op1 == decIllegal {
			break
		}
		op := Opcode(d.op1 - 1)
		if isControl(op) {
			b.term = *d
			b.termOp = op
			break
		}
		if op == OpHalt || op == OpBrk {
			break
		}
		b.body = append(b.body, *d)
		cur += InstrSize
	}
	if len(b.body) == 0 {
		// Nothing to fuse: the entry is itself a control transfer,
		// halt/break/illegal, or straddles the page. A terminator-only
		// "block" would just re-dispatch one instruction through the
		// heavier block executor — measurably slower than the
		// single-step switch on branch-dense code — so cache noBlock.
		p.blocks[slot] = noBlock
		return noBlock
	}
	b.endPC = cur
	b.pfx = make([]uint16, len(b.body)+1)
	var sum uint16
	for i := range b.body {
		b.pfx[i] = sum
		sum += instrCost(Opcode(b.body[i].op1 - 1))
	}
	b.pfx[len(b.body)] = sum
	b.maxCyc = uint64(sum)
	termN := 0
	if b.termOp != 0 {
		b.maxCyc += CycInstr + CycBr
		termN = 1
	}
	b.specializeAcc()
	if b.accOp == 0 && len(b.body)+termN < minBlockLen {
		// Too short to amortize the block executor's entry/exit cost:
		// on branch-dense code a 2-instruction fused run is slower than
		// two single-step dispatches. The accumulator self-loop is the
		// exception — it is 2 instructions but runs many passes per
		// dispatch in host scalars.
		p.blocks[slot] = noBlock
		return noBlock
	}
	p.blocks[slot] = b
	p.built++
	st.BlocksBuilt++
	return b
}

// specializeAcc recognizes the accumulator self-loop shape — a single
// pure-ALU body instruction updating one register in place, and a
// conditional branch on that register back to the block's own entry:
//
//	loop: acc = acc OP src
//	      bCC  acc, lim, loop
//
// — the inner loop of counters, delays, and reductions. runAcc executes
// it with acc, src, and lim in host scalars; the generic walk keeps the
// register file in memory, so the loop-carried dependency costs a
// store-to-load forward per pass, which this removes.
func (b *block) specializeAcc() {
	if len(b.body) != 1 || b.term.imm != b.entry {
		return
	}
	switch b.termOp {
	case OpBeq, OpBne, OpBlt, OpBge:
	default:
		return
	}
	d := &b.body[0]
	op := Opcode(d.op1 - 1)
	switch op {
	case OpAddi:
		op = OpAdd
		b.accSrcImm = true
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul:
		if d.rt == d.rd {
			return // src must be loop-invariant
		}
	default:
		return
	}
	if d.rs != d.rd || b.term.rs != d.rd || b.term.rt == d.rd {
		return // not acc-shaped, or the limit is not loop-invariant
	}
	b.accOp = op
	b.accEq = b.termOp == OpBeq || b.termOp == OpBne
	b.accWant = b.termOp == OpBeq || b.termOp == OpBlt
}

// runAcc executes an accumulator self-loop (see specializeAcc) entirely
// in scalars, pass after pass, until the branch falls through or the
// budget cannot cover another worst-case pass. Cycle and retirement
// accounting is identical to the generic walk: every pass charges body +
// branch (+CycBr when taken) and retires two instructions. The body is
// pure ALU, so no faults and no staleness checks can occur mid-pass.
func (b *block) runAcc(r *Regs, budget uint64) (uint64, uint64, uint64, uint32, int, Trap) {
	d := &b.body[0]
	acc := r.R[d.rd&7]
	src := d.imm
	if !b.accSrcImm {
		src = r.R[d.rt&7]
	}
	lim := r.R[b.term.rt&7]
	op := b.accOp
	eq, want := b.accEq, b.accWant
	base := uint64(b.pfx[1]) + CycInstr // body + untaken branch
	maxCyc := b.maxCyc
	var cycles, retired, hits uint64
	for {
		hits++
		switch op {
		case OpAdd:
			acc += src
		case OpSub:
			acc -= src
		case OpAnd:
			acc &= src
		case OpOr:
			acc |= src
		case OpXor:
			acc ^= src
		case OpShl:
			acc <<= src & 31
		case OpShr:
			acc >>= src & 31
		case OpMul:
			acc *= src
		}
		cycles += base
		retired += 2
		var stay bool
		if eq {
			stay = (acc == lim) == want
		} else {
			stay = (acc < lim) == want
		}
		if !stay {
			r.R[d.rd&7] = acc
			return cycles, retired, hits, b.endPC + InstrSize, blockOK, Trap{}
		}
		cycles += CycBr
		if cycles+maxCyc > budget {
			r.R[d.rd&7] = acc
			return cycles, retired, hits, b.entry, blockOK, Trap{}
		}
	}
}

// Block run outcomes.
const (
	blockOK    = iota // ran to the end; continue at nextPC
	blockStale        // a body store dirtied this page; re-acquire and demote
	blockTrap         // trap raised; r.PC is set, return from StepN
)

// run executes the fused block against r and m, looping in place while
// the terminator branches back to the block's own entry and budget
// covers another worst-case pass (the hot-self-loop case: a counted loop
// fused into one block runs to budget exhaustion without ever returning
// to the dispatch loop). The caller must have checked that budget covers
// b.maxCyc once. It returns the exact cycles consumed, the instructions
// retired, the number of block passes (for cpu.blocks.hits), the next PC
// (blockOK and blockStale), the outcome, and the trap (blockTrap only).
//
// Fault and bail sequencing is cycle- and word-exact versus single-step:
// a faulting memory op charges only CycInstr on top of the retired
// prefix, leaves registers untouched, and r.PC addresses it precisely; a
// store that bumps this page's generation commits fully (it retired) and
// ends the block at the next instruction boundary.
func (b *block) run(r *Regs, m DecodedSource, dp *DecodedPage, budget uint64) (uint64, uint64, uint64, uint32, int, Trap) {
	if b.accOp != 0 {
		return b.runAcc(r, budget)
	}
	// The register file lives in a local array for the duration of the
	// block: the compiler then knows the interface calls (Load32 etc.)
	// cannot alias it, so values stay hot across memory ops. Every
	// return path writes it back first; fault precision is preserved
	// because R holds exactly the state after the last retired
	// instruction.
	R := r.R
	body := b.body
	n := len(body)
	bodyCyc := uint64(b.pfx[n])
	bodyRet := uint64(n)
	term := b.term
	termOp := b.termOp
	fall := b.endPC + InstrSize
	var cycles, retired, hits uint64
	for {
		hits++
		for i := range body {
			d := &body[i]
			switch Opcode(d.op1 - 1) {
			case OpNop:
			case OpMovi:
				R[d.rd&7] = d.imm
			case OpMov:
				R[d.rd&7] = R[d.rs&7]
			case OpAdd:
				R[d.rd&7] = R[d.rs&7] + R[d.rt&7]
			case OpSub:
				R[d.rd&7] = R[d.rs&7] - R[d.rt&7]
			case OpAnd:
				R[d.rd&7] = R[d.rs&7] & R[d.rt&7]
			case OpOr:
				R[d.rd&7] = R[d.rs&7] | R[d.rt&7]
			case OpXor:
				R[d.rd&7] = R[d.rs&7] ^ R[d.rt&7]
			case OpShl:
				R[d.rd&7] = R[d.rs&7] << (R[d.rt&7] & 31)
			case OpShr:
				R[d.rd&7] = R[d.rs&7] >> (R[d.rt&7] & 31)
			case OpMul:
				R[d.rd&7] = R[d.rs&7] * R[d.rt&7]
			case OpAddi:
				R[d.rd&7] = R[d.rs&7] + d.imm
			case OpLd:
				v, f := m.Load32(R[d.rs&7] + d.imm)
				if f != nil {
					r.R = R
					r.PC = b.entry + uint32(i)*InstrSize
					return cycles + uint64(b.pfx[i]) + CycInstr, retired + uint64(i), hits, 0, blockTrap, Trap{Kind: TrapFault, Fault: *f}
				}
				R[d.rd&7] = v
			case OpSt:
				if f := m.Store32(R[d.rs&7]+d.imm, R[d.rt&7]); f != nil {
					r.R = R
					r.PC = b.entry + uint32(i)*InstrSize
					return cycles + uint64(b.pfx[i]) + CycInstr, retired + uint64(i), hits, 0, blockTrap, Trap{Kind: TrapFault, Fault: *f}
				}
				if dp.Stale() {
					r.R = R
					return cycles + uint64(b.pfx[i+1]), retired + uint64(i+1), hits, b.entry + uint32(i+1)*InstrSize, blockStale, Trap{}
				}
			case OpLdb:
				v, f := m.Load8(R[d.rs&7] + d.imm)
				if f != nil {
					r.R = R
					r.PC = b.entry + uint32(i)*InstrSize
					return cycles + uint64(b.pfx[i]) + CycInstr, retired + uint64(i), hits, 0, blockTrap, Trap{Kind: TrapFault, Fault: *f}
				}
				R[d.rd&7] = uint32(v)
			case OpStb:
				if f := m.Store8(R[d.rs&7]+d.imm, byte(R[d.rt&7])); f != nil {
					r.R = R
					r.PC = b.entry + uint32(i)*InstrSize
					return cycles + uint64(b.pfx[i]) + CycInstr, retired + uint64(i), hits, 0, blockTrap, Trap{Kind: TrapFault, Fault: *f}
				}
				if dp.Stale() {
					r.R = R
					return cycles + uint64(b.pfx[i+1]), retired + uint64(i+1), hits, b.entry + uint32(i+1)*InstrSize, blockStale, Trap{}
				}
			}
		}
		cycles += bodyCyc
		retired += bodyRet
		if termOp == 0 {
			r.R = R
			return cycles, retired, hits, b.endPC, blockOK, Trap{}
		}
		next := fall
		cycles += CycInstr
		switch termOp {
		case OpBeq:
			if R[term.rs&7] == R[term.rt&7] {
				next = term.imm
				cycles += CycBr
			}
		case OpBne:
			if R[term.rs&7] != R[term.rt&7] {
				next = term.imm
				cycles += CycBr
			}
		case OpBlt:
			if R[term.rs&7] < R[term.rt&7] {
				next = term.imm
				cycles += CycBr
			}
		case OpBge:
			if R[term.rs&7] >= R[term.rt&7] {
				next = term.imm
				cycles += CycBr
			}
		case OpJmp:
			next = term.imm
			cycles += CycBr
		case OpCall:
			R[LR] = next
			next = term.imm
			cycles += CycBr
		case OpCallR:
			R[LR] = next
			next = R[term.rs&7]
			cycles += CycBr
		case OpRet:
			next = R[LR]
			cycles += CycBr
		}
		retired++
		if next != b.entry || cycles+b.maxCyc > budget {
			r.R = R
			return cycles, retired, hits, next, blockOK, Trap{}
		}
	}
}
