package cpu

import "testing"

// benchLoop builds the canonical counted loop (Addi/Blt) over n passes.
func benchLoop(n uint32, noBlocks bool) (*fakeMem, Regs) {
	m := newFakeMem(3)
	m.noBlocks = noBlocks
	emitAt(m, 0, Instr{Op: OpMovi, Rd: 6, Imm: 0})
	emitAt(m, 8, Instr{Op: OpMovi, Rd: 5, Imm: n})
	emitAt(m, 16, Instr{Op: OpAddi, Rd: 6, Rs: 6, Imm: 1})
	emitAt(m, 24, Instr{Op: OpBlt, Rs: 6, Rt: 5, Imm: 16})
	emitAt(m, 32, Instr{Op: OpHalt})
	resetGens(m)
	return m, Regs{}
}

// BenchmarkStepNCountedLoop is the cpu-level counterpart of the
// top-level BenchmarkInterpreter: one loop pass (2 instructions) per op,
// fused block tier on.
func BenchmarkStepNCountedLoop(b *testing.B) {
	m, r := benchLoop(uint32(b.N), false)
	b.ResetTimer()
	for {
		if _, _, trap := StepN(&r, m, 1<<62); trap.Kind == TrapHalt {
			break
		}
	}
}

// BenchmarkStepNCountedLoopNoBlocks measures the same loop with the
// threaded-code tier disabled (decode-cache tier only) and reports
// allocations: the disabled path must not allocate.
func BenchmarkStepNCountedLoopNoBlocks(b *testing.B) {
	m, r := benchLoop(uint32(b.N), true)
	b.ReportAllocs()
	b.ResetTimer()
	for {
		if _, _, trap := StepN(&r, m, 1<<62); trap.Kind == TrapHalt {
			break
		}
	}
}
