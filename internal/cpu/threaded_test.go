package cpu

import (
	"math/rand"
	"testing"
)

// emitAt writes one encoded instruction into m at pc.
func emitAt(m *fakeMem, pc uint32, in Instr) {
	w0, imm := in.Encode()
	m.Store32(pc, w0)
	m.Store32(pc+4, imm)
}

// resetGens zeroes the store generations after program loading so the
// image itself does not look self-modified.
func resetGens(m *fakeMem) {
	for i := range m.gens {
		m.gens[i] = 0
	}
}

// TestAccLoopEquivalence drives every accumulator-superinstruction shape
// (ALU op × conditional branch) through StepN and the reference loop
// with randomized budgets, and checks the specialized executor actually
// engaged. This is the directed complement to the random fuzz: the
// acc-loop pattern is what runAcc scalarizes, so every combination must
// be cycle-, retirement- and register-exact.
func TestAccLoopEquivalence(t *testing.T) {
	ops := []Opcode{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpAddi}
	brs := []Opcode{OpBeq, OpBne, OpBlt, OpBge}
	rng := rand.New(rand.NewSource(7))
	for _, op := range ops {
		for _, br := range brs {
			for trial := 0; trial < 8; trial++ {
				m := newFakeMem(2)
				// r1 = acc, r2 = src, r3 = lim. Loop at 16.
				emitAt(m, 0, Instr{Op: OpMovi, Rd: 1, Imm: rng.Uint32() % 64})
				emitAt(m, 8, Instr{Op: OpMovi, Rd: 3, Imm: rng.Uint32() % 4096})
				in := Instr{Op: op, Rd: 1, Rs: 1, Rt: 2, Imm: 1 + rng.Uint32()%4}
				emitAt(m, 16, in)
				emitAt(m, 24, Instr{Op: br, Rs: 1, Rt: 3, Imm: 16})
				emitAt(m, 32, Instr{Op: OpHalt})
				resetGens(m)

				ref := m.clone()
				var rF, rR Regs
				rF.R[2], rR.R[2] = 3, 3 // src register for reg-reg ops
				for round := 0; round < 6; round++ {
					budget := uint64(1 + rng.Intn(3000))
					fc, fr, ft := StepN(&rF, m, budget)
					rc, rr, rt := stepRef(&rR, ref, budget)
					if fc != rc || fr != rr || ft != rt || rF != rR {
						t.Fatalf("%v/%v trial %d round %d: fast=(%d,%d,%+v) %+v ref=(%d,%d,%+v) %+v",
							op, br, trial, round, fc, fr, ft, rF, rc, rr, rt, rR)
					}
					if ft.Kind != TrapNone {
						break
					}
				}
			}
		}
	}
}

// TestAccLoopSpecialized pins that the canonical counted loop actually
// takes the scalar superinstruction path (block built and hit once per
// pass), so a regression in specializeAcc shows up as a test failure,
// not a silent performance cliff.
func TestAccLoopSpecialized(t *testing.T) {
	m := newFakeMem(2)
	emitAt(m, 0, Instr{Op: OpMovi, Rd: 6, Imm: 0})
	emitAt(m, 8, Instr{Op: OpMovi, Rd: 5, Imm: 1000})
	emitAt(m, 16, Instr{Op: OpAddi, Rd: 6, Rs: 6, Imm: 1})
	emitAt(m, 24, Instr{Op: OpBlt, Rs: 6, Rt: 5, Imm: 16})
	emitAt(m, 32, Instr{Op: OpHalt})
	resetGens(m)

	var r Regs
	_, retired, trap := StepN(&r, m, 1<<40)
	if trap.Kind != TrapHalt {
		t.Fatalf("trap = %+v, want halt", trap)
	}
	if retired != 2+2*1000 {
		t.Fatalf("retired = %d, want %d", retired, 2+2*1000)
	}
	dp := m.DecodedPageFor(16)
	b := dp.blocks[(16>>2)&(decSlots-1)]
	if b == nil || b.accOp == 0 {
		t.Fatalf("counted loop not specialized: %+v", b)
	}
	if m.exec.BlockHits < 1000 {
		t.Fatalf("BlockHits = %d, want >= 1000 (one per loop pass)", m.exec.BlockHits)
	}
}

// TestBlockBudgetTail: when the remaining budget cannot cover a block's
// worst case, the tail must single-step with exact charge/commit
// sequencing. Sweep every small budget against the reference.
func TestBlockBudgetTail(t *testing.T) {
	build := func() *fakeMem {
		m := newFakeMem(2)
		pc := uint32(0)
		for i := 0; i < 6; i++ { // straight line: 6 ALU + ld/st mix
			emitAt(m, pc, Instr{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1})
			pc += InstrSize
		}
		emitAt(m, pc, Instr{Op: OpSt, Rs: 0, Rt: 1, Imm: 0x1000})
		pc += InstrSize
		emitAt(m, pc, Instr{Op: OpLd, Rd: 2, Rs: 0, Imm: 0x1000})
		pc += InstrSize
		emitAt(m, pc, Instr{Op: OpHalt})
		resetGens(m)
		return m
	}
	for budget := uint64(1); budget <= 40; budget++ {
		mF, mR := build(), build()
		var rF, rR Regs
		for {
			fc, fr, ft := StepN(&rF, mF, budget)
			rc, rr, rt := stepRef(&rR, mR, budget)
			if fc != rc || fr != rr || ft != rt || rF != rR {
				t.Fatalf("budget %d: fast=(%d,%d,%+v) ref=(%d,%d,%+v)", budget, fc, fr, ft, rc, rr, rt)
			}
			if ft.Kind != TrapNone {
				break
			}
		}
	}
}

// TestBlockDMAInvalidation: a direct write to a code page that bypasses
// the CPU store path (DMA, kernel copies) and bumps the store generation
// must invalidate fused blocks before their next execution.
func TestBlockDMAInvalidation(t *testing.T) {
	m := newFakeMem(2)
	emitAt(m, 0, Instr{Op: OpMovi, Rd: 1, Imm: 7})
	emitAt(m, 8, Instr{Op: OpMovi, Rd: 2, Imm: 1})
	emitAt(m, 16, Instr{Op: OpMovi, Rd: 3, Imm: 2})
	emitAt(m, 24, Instr{Op: OpHalt})
	resetGens(m)

	var r Regs
	if _, _, trap := StepN(&r, m, 1<<20); trap.Kind != TrapHalt {
		t.Fatalf("first run: trap = %+v", trap)
	}
	if r.R[1] != 7 {
		t.Fatalf("first run: r1 = %d", r.R[1])
	}

	// DMA-style overwrite: mutate the bytes directly and bump the page's
	// generation, exactly as mem.Frame.Bump does for device writes.
	w0, imm := Instr{Op: OpMovi, Rd: 1, Imm: 9}.Encode()
	m.data[0], m.data[1], m.data[2], m.data[3] = byte(w0), byte(w0>>8), byte(w0>>16), byte(w0>>24)
	m.data[4], m.data[5], m.data[6], m.data[7] = byte(imm), byte(imm>>8), byte(imm>>16), byte(imm>>24)
	m.gens[0]++

	r = Regs{}
	if _, _, trap := StepN(&r, m, 1<<20); trap.Kind != TrapHalt {
		t.Fatalf("second run: trap = %+v", trap)
	}
	if r.R[1] != 9 {
		t.Fatalf("r1 = %d after DMA overwrite: stale fused block executed", r.R[1])
	}
	if m.exec.BlockInvalidations == 0 {
		t.Fatal("BlockInvalidations = 0, want > 0")
	}
}

// TestStepNDisabledPathNoAllocs: with the threaded-code tier off, StepN
// must not allocate — the decode-cache path is allocation-free and
// disabling blocks must not regress that.
func TestStepNDisabledPathNoAllocs(t *testing.T) {
	m := newFakeMem(2)
	m.noBlocks = true
	emitAt(m, 0, Instr{Op: OpMovi, Rd: 6, Imm: 0})
	emitAt(m, 8, Instr{Op: OpMovi, Rd: 5, Imm: 100})
	emitAt(m, 16, Instr{Op: OpAddi, Rd: 6, Rs: 6, Imm: 1})
	emitAt(m, 24, Instr{Op: OpBlt, Rs: 6, Rt: 5, Imm: 16})
	emitAt(m, 32, Instr{Op: OpJmp, Imm: 0})
	resetGens(m)
	// Warm the decode cache outside the measured region.
	var r Regs
	StepN(&r, m, 1000)

	allocs := testing.AllocsPerRun(10, func() {
		r = Regs{}
		if _, _, trap := StepN(&r, m, 2000); trap.Kind != TrapNone {
			t.Fatalf("trap = %+v", trap)
		}
	})
	if allocs != 0 {
		t.Fatalf("StepN with threaded code disabled allocated %v times per run", allocs)
	}
	if m.exec.BlockHits != 0 || m.exec.BlocksBuilt != 0 {
		t.Fatalf("blocks ran while disabled: %+v", m.exec)
	}
}
